package tokencoherence_test

// This file is the extension API's proof of openness: it registers a
// custom destination-set predictor (a new token performance policy) and
// a custom interconnect fabric (a bidirectional ring) using only the
// public tokencoherence package — no tokencoherence/internal import
// appears anywhere — and runs them together as a first-class protocol,
// token-conservation audit and coherence oracle included.

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"tokencoherence"
)

// ringTopology is a bidirectional ring: each node has a clockwise and a
// counterclockwise outgoing link, and unicasts take the shorter
// direction (ties go clockwise). Deterministic single-direction routing
// means the union of one source's paths is a tree, which is what the
// interconnect's multicast bandwidth accounting requires. A ring
// imposes no total order on broadcasts, so Ordered is false and the
// engine will refuse to pair it with traditional snooping.
type ringTopology struct {
	n int
}

func (r ringTopology) Name() string  { return "ring" }
func (r ringTopology) Nodes() int    { return r.n }
func (r ringTopology) Ordered() bool { return false }

// Each node owns two directed links: 2*node is clockwise (toward
// node+1), 2*node+1 is counterclockwise (toward node-1).
func (r ringTopology) NumLinks() int { return 2 * r.n }

func (r ringTopology) Path(src, dst tokencoherence.NodeID) []tokencoherence.LinkID {
	if src == dst {
		return nil
	}
	cw := (int(dst) - int(src) + r.n) % r.n
	ccw := (int(src) - int(dst) + r.n) % r.n
	var path []tokencoherence.LinkID
	at := int(src)
	if cw <= ccw {
		for i := 0; i < cw; i++ {
			path = append(path, tokencoherence.LinkID(2*at))
			at = (at + 1) % r.n
		}
	} else {
		for i := 0; i < ccw; i++ {
			path = append(path, tokencoherence.LinkID(2*at+1))
			at = (at - 1 + r.n) % r.n
		}
	}
	return path
}

// lastSupplierPolicy is a minimal destination-set predictor in the
// spirit of the paper's §7 TokenM sketch: it remembers, per block, the
// last cache that supplied tokens, and sends first-issue transient
// requests to that cache plus the home. A reissue falls back to full
// broadcast. The predictor can be arbitrarily wrong — the substrate's
// token counting keeps every guess safe; mispredictions only cost
// reissues.
type lastSupplierPolicy struct {
	last map[tokencoherence.Block]tokencoherence.NodeID
}

func (p *lastSupplierPolicy) Name() string { return "tokenlast" }

func (p *lastSupplierPolicy) Observe(c *tokencoherence.TokenController, m *tokencoherence.Message) {
	if m.Src.Unit == tokencoherence.UnitCache {
		p.last[tokencoherence.BlockOf(m.Addr)] = m.Src.Node
	}
}

func (p *lastSupplierPolicy) Destinations(c *tokencoherence.TokenController, m *tokencoherence.MSHR, reissue bool, buf []tokencoherence.Port) []tokencoherence.Port {
	if reissue {
		// Mispredicted: broadcast to everyone plus the home.
		for i := 0; i < c.Cfg.Procs; i++ {
			if tokencoherence.NodeID(i) != c.ID {
				buf = append(buf, tokencoherence.Port{Node: tokencoherence.NodeID(i), Unit: tokencoherence.UnitCache})
			}
		}
		return append(buf, c.HomePort(m.Block))
	}
	buf = append(buf, c.HomePort(m.Block))
	if n, ok := p.last[m.Block]; ok && n != c.ID {
		buf = append(buf, tokencoherence.Port{Node: n, Unit: tokencoherence.UnitCache})
	}
	return buf
}

// Example_extension registers the custom policy and the ring through
// the public API, then runs the resulting protocol on the resulting
// fabric. The run passes the same token-conservation audit and
// coherence oracle as the built-ins.
func Example_extension() {
	tokencoherence.RegisterPolicy(tokencoherence.PolicySpec{
		Name:  "tokenlast",
		Hints: true, // home memories redirect using soft-state hints
		New: func() tokencoherence.Policy {
			return &lastSupplierPolicy{last: make(map[tokencoherence.Block]tokencoherence.NodeID)}
		},
	})
	tokencoherence.RegisterTopology(tokencoherence.TopologySpec{
		Name:    "ring",
		Ordered: false,
		New:     func(procs int) tokencoherence.Topology { return ringTopology{n: procs} },
	})

	run, err := tokencoherence.Simulate(tokencoherence.Point{
		Protocol: "tokenlast",
		Topo:     "ring",
		Workload: "oltp",
		Procs:    8,
		Ops:      600,
		Warmup:   1200,
		Seed:     1,
	})
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}

	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	c := tokencoherence.Components()
	fmt.Println("policy registered as protocol:", has(c.Protocols, "tokenlast") && has(c.Policies, "tokenlast"))
	fmt.Println("ring registered:", has(c.Topologies, "ring"))
	fmt.Println("tokens conserved over a real run:", run.Transactions > 0 && run.Misses.Issued > 0)

	// The capability flag still guards the new fabric: snooping needs a
	// total order the ring cannot provide.
	err = tokencoherence.Point{Protocol: tokencoherence.ProtoSnooping, Topo: "ring"}.Validate()
	fmt.Println("snooping on the ring rejected:", err != nil)

	// Output:
	// policy registered as protocol: true
	// ring registered: true
	// tokens conserved over a real run: true
	// snooping on the ring rejected: true
}

// Example_probe registers a measurement probe through the public API —
// again without touching tokencoherence/internal — that subscribes to
// miss-completion events and derives a metric the fixed statistics do
// not carry: the fraction of misses slower than 1 microsecond (the
// reissue/persistent tail the paper's adaptive timeout reacts to). The
// probe's metrics join the run's named schema, so they select into CSV
// output by name exactly like the built-ins.
func Example_probe() {
	tokencoherence.RegisterProbe(tokencoherence.ProbeSpec{
		Name: "tail-latency",
		// New runs once per simulation with that run's MetricSet; metrics
		// registered here are zeroed automatically at the warmup boundary.
		New: func(ms *tokencoherence.MetricSet) *tokencoherence.Observer {
			tail := ms.Counter(tokencoherence.MetricDesc{
				Name: "tail_misses", Unit: "count", Fmt: "%.0f",
				Help: "misses slower than 1us",
			})
			hist := ms.Histogram(tokencoherence.MetricDesc{
				Name: "probe_miss_latency", Unit: "ns",
				Help: "miss latency distribution rebuilt from observer events",
			})
			return &tokencoherence.Observer{
				MissCompleted: func(proc int, block tokencoherence.Block, reissues int, persistent bool, latency tokencoherence.Time) {
					hist.Observe(latency)
					if latency > tokencoherence.Microsecond {
						tail.Inc()
					}
				},
			}
		},
	})

	// The probe appears in the component listing and its metrics in the
	// schema of every protocol.
	has := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	fmt.Println("probe registered:", has(tokencoherence.Components().Probes, "tail-latency"))
	descs, err := tokencoherence.MetricSchema(tokencoherence.Point{Protocol: tokencoherence.ProtoTokenB})
	if err != nil {
		fmt.Println("schema:", err)
		return
	}
	schema := make([]string, len(descs))
	for i, d := range descs {
		schema[i] = d.Name
	}
	fmt.Println("probe metrics in schema:", has(schema, "tail_misses") && has(schema, "probe_miss_latency"))

	// Select the derived metric into CSV output by name, next to the
	// built-in columns, over a two-seed plan.
	var buf bytes.Buffer
	sink := &tokencoherence.CSVSink{W: &buf, Columns: tokencoherence.ColumnsByName(
		[]string{"seed", "cycles_per_txn", "tail_misses"})}
	plan := tokencoherence.Plan{
		Variants: []tokencoherence.Variant{{Point: tokencoherence.Point{
			Protocol: tokencoherence.ProtoTokenB, Workload: "oltp", Procs: 8,
		}}},
		Seeds: []uint64{1, 2},
		Ops:   400, Warmup: 800,
	}
	if _, err := (tokencoherence.Engine{}).Execute(context.Background(), plan, sink); err != nil {
		fmt.Println("execute:", err)
		return
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	fmt.Println("csv header:", lines[0])
	fmt.Println("csv rows with probe metric:", len(lines) == 3)

	// The same numbers are readable programmatically from the snapshot,
	// consistent with what the probe's own histogram observed.
	run, snap, err := tokencoherence.SimulateMetrics(tokencoherence.Point{
		Protocol: tokencoherence.ProtoTokenB, Workload: "oltp",
		Procs: 8, Ops: 400, Warmup: 800, Seed: 1,
	})
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	tail, ok := snap.Value("tail_misses")
	mean, ok2 := snap.Value("probe_miss_latency")
	fmt.Println("snapshot carries probe metrics:", ok && ok2)
	fmt.Println("probe histogram mean matches run:", mean == run.AvgMissLatency().Nanoseconds())
	fmt.Println("tail within misses:", tail >= 0 && uint64(tail) <= run.Misses.Issued)

	// Output:
	// probe registered: true
	// probe metrics in schema: true
	// csv header: seed,cycles_per_txn,tail_misses
	// csv rows with probe metric: true
	// snapshot carries probe metrics: true
	// probe histogram mean matches run: true
	// tail within misses: true
}
