// Package resultstore is the durable half of sweep-as-a-service: a
// content-addressed archive of completed experiment results. Entries
// are keyed by engine.PointKey — a hash over a point's fully-resolved
// inputs salted with the simulator's code version — so any sweep whose
// grid overlaps an earlier one recalls the shared points instead of
// recomputing them, a killed sweep resumes where it died, and shards of
// one plan running on separate processes share a single archive with no
// coordination beyond the filesystem.
//
// Layout: one JSON file per result at DIR/objects/<key[:2]>/<key>.json
// (the two-character fan-out keeps directories small at archive sizes
// where a flat directory would degrade). Writes go to a temp file in
// the final directory followed by an atomic rename, so a SIGKILL at any
// instant leaves either a complete entry or none — never a torn one —
// which is what makes kill-and-resume byte-identical to an
// uninterrupted run.
//
// The encoding is the stats package's exact JSON round-trip (see
// internal/stats codec): integer counters stay exact, float metric
// values travel as shortest-round-trip strings, so a recalled result
// reproduces every CSV cell and JSONL field of the computed one.
package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"tokencoherence/internal/stats"
)

// envelope is one stored entry — and also the sweepd wire format (see
// Encode/Decode): a worker streams exactly the bytes the coordinator
// archives, so duplicate deliveries can be compared byte for byte. The
// key is repeated inside the file so a misplaced or hand-renamed entry
// is detected at Get instead of silently satisfying the wrong point.
// Version records the code-version salt the entry was computed under:
// the key hash already mixes the salt in, but a hash cannot be inverted,
// so without the explicit field stale archives from before a version
// bump are indistinguishable from live ones and accumulate forever (see
// GC).
type envelope struct {
	Key     string          `json:"key"`
	Version string          `json:"version,omitempty"`
	Run     *stats.Run      `json:"run"`
	Metrics *stats.Snapshot `json:"metrics"`
}

// Encode renders one result as its canonical envelope bytes: the store's
// on-disk file content and sweepd's wire format. The encoding is
// deterministic for equal inputs (struct field order is fixed, the stats
// codecs are exact), which is what lets the sweepd coordinator demand
// byte-identical envelopes from duplicate deliveries of one key.
func Encode(key, version string, run *stats.Run, metrics *stats.Snapshot) ([]byte, error) {
	if run == nil || metrics == nil {
		return nil, fmt.Errorf("resultstore: refusing to encode incomplete result for %s", key)
	}
	raw, err := json.Marshal(envelope{Key: key, Version: version, Run: run, Metrics: metrics})
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return append(raw, '\n'), nil
}

// Decode parses and validates envelope bytes (see Encode), rejecting
// incomplete or malformed entries loudly.
func Decode(raw []byte) (key, version string, run *stats.Run, metrics *stats.Snapshot, err error) {
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return "", "", nil, nil, fmt.Errorf("resultstore: corrupt envelope: %w", err)
	}
	if env.Run == nil || env.Metrics == nil {
		return "", "", nil, nil, fmt.Errorf("resultstore: incomplete envelope for key %q", env.Key)
	}
	return env.Key, env.Version, env.Run, env.Metrics, nil
}

// Store is a file-backed content-addressed result archive implementing
// engine.Store. All methods are safe for concurrent use — by the
// engine's workers and by cooperating processes sharing the directory.
type Store struct {
	dir     string
	version string

	// Telemetry counters, exported to cmd/sweep's expvar endpoint.
	hits   atomic.Uint64
	misses atomic.Uint64
	bytes  atomic.Uint64
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetVersion records the code-version salt stamped into every envelope
// this store writes (callers pass engine.CodeVersion; the store cannot
// import the engine package itself without a cycle through the engine's
// tests). The stamp is what lets GC tell a live entry from one archived
// under an earlier simulator version.
func (s *Store) SetVersion(v string) { s.version = v }

// path maps a key to its object file.
func (s *Store) path(key string) string {
	fan := key
	if len(fan) > 2 {
		fan = key[:2]
	}
	return filepath.Join(s.dir, "objects", fan, key+".json")
}

// Get implements engine.Store: it returns the archived result for key,
// found=false on a clean miss, or an error for a store-level failure
// (unreadable or corrupt entry, key mismatch).
func (s *Store) Get(key string) (*stats.Run, *stats.Snapshot, bool, error) {
	raw, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		s.misses.Add(1)
		return nil, nil, false, nil
	}
	if err != nil {
		return nil, nil, false, fmt.Errorf("resultstore: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, nil, false, fmt.Errorf("resultstore: corrupt entry %s: %w", key, err)
	}
	if env.Key != key {
		return nil, nil, false, fmt.Errorf("resultstore: entry %s carries key %s (misplaced object file)", key, env.Key)
	}
	if env.Run == nil || env.Metrics == nil {
		return nil, nil, false, fmt.Errorf("resultstore: entry %s is incomplete", key)
	}
	s.hits.Add(1)
	s.bytes.Add(uint64(len(raw)))
	return env.Run, env.Metrics, true, nil
}

// Put implements engine.Store: it archives one computed result under
// key, atomically (temp file + rename in the final directory). Two
// writers racing on one key write identical content, so last rename
// winning is correct.
func (s *Store) Put(key string, run *stats.Run, metrics *stats.Snapshot) error {
	raw, err := Encode(key, s.version, run, metrics)
	if err != nil {
		return err
	}
	return s.PutRaw(key, raw)
}

// PutRaw archives pre-encoded envelope bytes (see Encode) under key with
// the same atomic temp-file+rename discipline as Put. The sweepd
// coordinator uses it to persist a worker's envelope byte-exactly, so
// the archived file, the wire bytes, and the duplicate-delivery
// comparison all name one encoding.
func (s *Store) PutRaw(key string, raw []byte) error {
	final := s.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), ".tmp-"+key[:min(8, len(key))]+"-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	s.bytes.Add(uint64(len(raw)))
	return nil
}

// Len counts the archived entries (a directory walk; telemetry and
// tests only, not a hot path).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// Hits reports the archived results this process recalled.
func (s *Store) Hits() uint64 { return s.hits.Load() }

// Misses reports the clean lookup misses this process saw.
func (s *Store) Misses() uint64 { return s.misses.Load() }

// Bytes reports the store bytes this process read plus wrote.
func (s *Store) Bytes() uint64 { return s.bytes.Load() }

// GCStats reports what one GC pass found and (unless it was a dry run)
// reclaimed.
type GCStats struct {
	// Kept counts entries whose embedded version matches.
	Kept int
	// Pruned counts stale entries: version mismatch, missing version
	// stamp (archived before stamping existed — unverifiable, so treated
	// as stale), or unreadable/corrupt files that could never satisfy a
	// Get anyway.
	Pruned int
	// PrunedBytes sums the pruned entries' file sizes.
	PrunedBytes int64
	// Temps counts orphaned temp files (crashed writers) removed.
	Temps int
}

// GC prunes archived envelopes whose embedded version stamp no longer
// matches version — entries computed under an earlier engine.CodeVersion
// can never be recalled again (the salt is mixed into every key), so
// they only accumulate across version bumps. Entries without a stamp and
// entries that fail to parse are pruned too: neither can be proven
// current, and a cache may always recompute. Orphaned temp files from
// crashed writers are swept as well. With dryRun, GC only counts.
func (s *Store) GC(version string, dryRun bool) (GCStats, error) {
	var st GCStats
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			st.Temps++
			if dryRun {
				return nil
			}
			return os.Remove(path)
		}
		if filepath.Ext(path) != ".json" {
			return nil
		}
		stale := false
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			stale = true // unreadable: could never satisfy a Get
		} else {
			var env envelope
			if json.Unmarshal(raw, &env) != nil || env.Version != version {
				stale = true
			}
		}
		if !stale {
			st.Kept++
			return nil
		}
		st.Pruned++
		st.PrunedBytes += int64(len(raw))
		if dryRun {
			return nil
		}
		return os.Remove(path)
	})
	return st, err
}
