// Package resultstore is the durable half of sweep-as-a-service: a
// content-addressed archive of completed experiment results. Entries
// are keyed by engine.PointKey — a hash over a point's fully-resolved
// inputs salted with the simulator's code version — so any sweep whose
// grid overlaps an earlier one recalls the shared points instead of
// recomputing them, a killed sweep resumes where it died, and shards of
// one plan running on separate processes share a single archive with no
// coordination beyond the filesystem.
//
// Layout: one JSON file per result at DIR/objects/<key[:2]>/<key>.json
// (the two-character fan-out keeps directories small at archive sizes
// where a flat directory would degrade). Writes go to a temp file in
// the final directory followed by an atomic rename, so a SIGKILL at any
// instant leaves either a complete entry or none — never a torn one —
// which is what makes kill-and-resume byte-identical to an
// uninterrupted run.
//
// The encoding is the stats package's exact JSON round-trip (see
// internal/stats codec): integer counters stay exact, float metric
// values travel as shortest-round-trip strings, so a recalled result
// reproduces every CSV cell and JSONL field of the computed one.
package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"tokencoherence/internal/stats"
)

// envelope is one stored entry. The key is repeated inside the file so
// a misplaced or hand-renamed entry is detected at Get instead of
// silently satisfying the wrong point.
type envelope struct {
	Key     string          `json:"key"`
	Run     *stats.Run      `json:"run"`
	Metrics *stats.Snapshot `json:"metrics"`
}

// Store is a file-backed content-addressed result archive implementing
// engine.Store. All methods are safe for concurrent use — by the
// engine's workers and by cooperating processes sharing the directory.
type Store struct {
	dir string

	// Telemetry counters, exported to cmd/sweep's expvar endpoint.
	hits   atomic.Uint64
	misses atomic.Uint64
	bytes  atomic.Uint64
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its object file.
func (s *Store) path(key string) string {
	fan := key
	if len(fan) > 2 {
		fan = key[:2]
	}
	return filepath.Join(s.dir, "objects", fan, key+".json")
}

// Get implements engine.Store: it returns the archived result for key,
// found=false on a clean miss, or an error for a store-level failure
// (unreadable or corrupt entry, key mismatch).
func (s *Store) Get(key string) (*stats.Run, *stats.Snapshot, bool, error) {
	raw, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		s.misses.Add(1)
		return nil, nil, false, nil
	}
	if err != nil {
		return nil, nil, false, fmt.Errorf("resultstore: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, nil, false, fmt.Errorf("resultstore: corrupt entry %s: %w", key, err)
	}
	if env.Key != key {
		return nil, nil, false, fmt.Errorf("resultstore: entry %s carries key %s (misplaced object file)", key, env.Key)
	}
	if env.Run == nil || env.Metrics == nil {
		return nil, nil, false, fmt.Errorf("resultstore: entry %s is incomplete", key)
	}
	s.hits.Add(1)
	s.bytes.Add(uint64(len(raw)))
	return env.Run, env.Metrics, true, nil
}

// Put implements engine.Store: it archives one computed result under
// key, atomically (temp file + rename in the final directory). Two
// writers racing on one key write identical content, so last rename
// winning is correct.
func (s *Store) Put(key string, run *stats.Run, metrics *stats.Snapshot) error {
	if run == nil || metrics == nil {
		return fmt.Errorf("resultstore: refusing to archive incomplete result for %s", key)
	}
	raw, err := json.Marshal(envelope{Key: key, Run: run, Metrics: metrics})
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	raw = append(raw, '\n')
	final := s.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), ".tmp-"+key[:min(8, len(key))]+"-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	s.bytes.Add(uint64(len(raw)))
	return nil
}

// Len counts the archived entries (a directory walk; telemetry and
// tests only, not a hot path).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// Hits reports the archived results this process recalled.
func (s *Store) Hits() uint64 { return s.hits.Load() }

// Misses reports the clean lookup misses this process saw.
func (s *Store) Misses() uint64 { return s.misses.Load() }

// Bytes reports the store bytes this process read plus wrote.
func (s *Store) Bytes() uint64 { return s.bytes.Load() }
