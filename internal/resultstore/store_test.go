package resultstore

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tokencoherence/internal/stats"
)

func sampleResult() (*stats.Run, *stats.Snapshot) {
	run := &stats.Run{
		Misses:       stats.Misses{Issued: 10, ReissuedOnce: 1},
		Transactions: 42,
		Elapsed:      12345,
	}
	ms := stats.NewMetricSet()
	ms.Gauge(stats.Desc{Name: "g", Unit: "x", Help: "h"}).Set(1.0 / 3.0)
	ms.Gauge(stats.Desc{Name: "inf", Unit: "x", Help: "h"}).Set(math.Inf(1))
	return run, ms.Snapshot()
}

const key = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12"

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()

	if _, _, found, err := st.Get(key); err != nil || found {
		t.Fatalf("empty store: found=%v err=%v", found, err)
	}
	if st.Misses() != 1 {
		t.Errorf("misses = %d, want 1", st.Misses())
	}
	if err := st.Put(key, run, snap); err != nil {
		t.Fatal(err)
	}
	gotRun, gotSnap, found, err := st.Get(key)
	if err != nil || !found {
		t.Fatalf("after put: found=%v err=%v", found, err)
	}
	if !reflect.DeepEqual(run, gotRun) {
		t.Errorf("run did not round-trip: %+v vs %+v", run, gotRun)
	}
	if v, _ := gotSnap.Value("g"); v != 1.0/3.0 {
		t.Errorf("snapshot value lost: %v", v)
	}
	if v, _ := gotSnap.Value("inf"); !math.IsInf(v, 1) {
		t.Errorf("non-finite snapshot value lost: %v", v)
	}
	if st.Hits() != 1 || st.Bytes() == 0 {
		t.Errorf("hits=%d bytes=%d, want 1 hit and nonzero bytes", st.Hits(), st.Bytes())
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v, want 1", n, err)
	}
}

// TestNoTempFilesSurvive: Put must leave only the renamed object, so a
// store directory never accumulates garbage under normal operation.
func TestNoTempFilesSurvive(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()
	if err := st.Put(key, run, snap); err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("temp file survived: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCorruptEntryIsLoud: a torn or edited entry must fail the lookup
// with an error, not silently miss (recomputing would mask corruption)
// and not return garbage.
func TestCorruptEntryIsLoud(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()
	if err := st.Put(key, run, snap); err != nil {
		t.Fatal(err)
	}
	path := st.path(key)
	if err := os.WriteFile(path, []byte(`{"key":"`+key+`","run"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Get(key); err == nil {
		t.Error("want error for truncated entry")
	}
	// A complete entry filed under the wrong key must also be loud.
	other := strings.Repeat("ff", 32)
	if err := st.Put(other, run, snap); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.path(other), path); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Get(key); err == nil || !strings.Contains(err.Error(), "misplaced") {
		t.Errorf("want misplaced-object error, got %v", err)
	}
}

// TestConcurrentPutGet exercises the store the way the engine does:
// many workers writing and reading disjoint and shared keys at once.
func TestConcurrentPutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := strings.Repeat("0123456789abcdef"[i%16:i%16+1], 64)
				if err := st.Put(k, run, snap); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, _, found, err := st.Get(k); err != nil || !found {
					t.Errorf("get: found=%v err=%v", found, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, err := st.Len(); err != nil || n != 16 {
		t.Errorf("Len = %d, %v, want 16", n, err)
	}
}

// TestCrossProcessPutRace simulates two cooperating processes (two Store
// instances over one directory — the same syscall sequence two real
// processes would issue) racing Put on the same key while readers poll:
// every observed state must be complete-or-absent, never torn, and the
// file that survives must carry the full expected content. This is the
// atomic-rename contract sweepd's at-least-once execution leans on.
func TestCrossProcessPutRace(t *testing.T) {
	dir := t.TempDir()
	stA, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()
	want, err := Encode(key, "", run, snap)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for _, st := range []*Store{stA, stB} {
		writers.Add(1)
		go func(st *Store) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				if err := st.Put(key, run, snap); err != nil {
					t.Errorf("racing put: %v", err)
					return
				}
			}
		}(st)
	}
	// Readers on both handles: a Get mid-race must either miss cleanly
	// (before the first rename lands) or return the complete result —
	// an error here means a torn or partial entry became visible.
	for _, st := range []*Store{stA, stB} {
		readers.Add(1)
		go func(st *Store) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				gotRun, _, found, err := st.Get(key)
				if err != nil {
					t.Errorf("racing get: %v", err)
					return
				}
				if found && !reflect.DeepEqual(gotRun, run) {
					t.Errorf("racing get returned different content: %+v", gotRun)
					return
				}
			}
		}(st)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	raw, err := os.ReadFile(stA.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(want) {
		t.Errorf("surviving file differs from canonical encoding:\n got %q\nwant %q", raw, want)
	}
	// No temp-file debris from either "process".
	if st, err := stA.GC("", true); err != nil || st.Temps != 0 {
		t.Errorf("temp files survived the race: %+v err=%v", st, err)
	}
}

// TestGC: entries stamped with the current version survive; entries
// stamped with an older version, entries with no stamp, and corrupt
// files are pruned with their byte counts reported, and orphaned temp
// files are swept. A dry run counts the same set but removes nothing.
func TestGC(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()

	st.SetVersion("v2")
	live := strings.Repeat("aa", 32)
	if err := st.Put(live, run, snap); err != nil {
		t.Fatal(err)
	}
	st.SetVersion("v1")
	stale := strings.Repeat("bb", 32)
	if err := st.Put(stale, run, snap); err != nil {
		t.Fatal(err)
	}
	st.SetVersion("")
	unstamped := strings.Repeat("cc", 32)
	if err := st.Put(unstamped, run, snap); err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Repeat("dd", 32)
	if err := st.PutRaw(corrupt, []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "objects", "aa", ".tmp-crashed-123")
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	dry, err := st.GC("v2", true)
	if err != nil {
		t.Fatal(err)
	}
	if dry.Kept != 1 || dry.Pruned != 3 || dry.Temps != 1 || dry.PrunedBytes == 0 {
		t.Errorf("dry run: %+v, want 1 kept, 3 pruned, 1 temp, nonzero bytes", dry)
	}
	if n, _ := st.Len(); n != 4 {
		t.Errorf("dry run removed entries: Len=%d, want 4", n)
	}

	got, err := st.GC("v2", false)
	if err != nil {
		t.Fatal(err)
	}
	if got != dry {
		t.Errorf("real run found %+v, dry run found %+v", got, dry)
	}
	if n, _ := st.Len(); n != 1 {
		t.Errorf("after GC: Len=%d, want 1", n)
	}
	if _, _, found, err := st.Get(live); err != nil || !found {
		t.Errorf("live entry lost: found=%v err=%v", found, err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp file survived GC: %v", err)
	}
}

// TestEncodeDecodeRoundTrip pins the wire contract sweepd relies on:
// Decode(Encode(x)) == x, and encoding the decoded value reproduces the
// original bytes exactly (duplicate-delivery comparison is byte-level).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	run, snap := sampleResult()
	raw, err := Encode(key, "v9", run, snap)
	if err != nil {
		t.Fatal(err)
	}
	k, v, gotRun, gotSnap, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if k != key || v != "v9" {
		t.Errorf("key/version did not round-trip: %q %q", k, v)
	}
	if !reflect.DeepEqual(gotRun, run) {
		t.Errorf("run did not round-trip")
	}
	again, err := Encode(k, v, gotRun, gotSnap)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(raw) {
		t.Errorf("re-encoding decoded envelope changed bytes:\n%q\n%q", raw, again)
	}
	if _, _, _, _, err := Decode([]byte(`{"key":"x"}`)); err == nil {
		t.Error("want error decoding incomplete envelope")
	}
}
