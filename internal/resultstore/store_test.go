package resultstore

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tokencoherence/internal/stats"
)

func sampleResult() (*stats.Run, *stats.Snapshot) {
	run := &stats.Run{
		Misses:       stats.Misses{Issued: 10, ReissuedOnce: 1},
		Transactions: 42,
		Elapsed:      12345,
	}
	ms := stats.NewMetricSet()
	ms.Gauge(stats.Desc{Name: "g", Unit: "x", Help: "h"}).Set(1.0 / 3.0)
	ms.Gauge(stats.Desc{Name: "inf", Unit: "x", Help: "h"}).Set(math.Inf(1))
	return run, ms.Snapshot()
}

const key = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12"

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()

	if _, _, found, err := st.Get(key); err != nil || found {
		t.Fatalf("empty store: found=%v err=%v", found, err)
	}
	if st.Misses() != 1 {
		t.Errorf("misses = %d, want 1", st.Misses())
	}
	if err := st.Put(key, run, snap); err != nil {
		t.Fatal(err)
	}
	gotRun, gotSnap, found, err := st.Get(key)
	if err != nil || !found {
		t.Fatalf("after put: found=%v err=%v", found, err)
	}
	if !reflect.DeepEqual(run, gotRun) {
		t.Errorf("run did not round-trip: %+v vs %+v", run, gotRun)
	}
	if v, _ := gotSnap.Value("g"); v != 1.0/3.0 {
		t.Errorf("snapshot value lost: %v", v)
	}
	if v, _ := gotSnap.Value("inf"); !math.IsInf(v, 1) {
		t.Errorf("non-finite snapshot value lost: %v", v)
	}
	if st.Hits() != 1 || st.Bytes() == 0 {
		t.Errorf("hits=%d bytes=%d, want 1 hit and nonzero bytes", st.Hits(), st.Bytes())
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v, want 1", n, err)
	}
}

// TestNoTempFilesSurvive: Put must leave only the renamed object, so a
// store directory never accumulates garbage under normal operation.
func TestNoTempFilesSurvive(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()
	if err := st.Put(key, run, snap); err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("temp file survived: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCorruptEntryIsLoud: a torn or edited entry must fail the lookup
// with an error, not silently miss (recomputing would mask corruption)
// and not return garbage.
func TestCorruptEntryIsLoud(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()
	if err := st.Put(key, run, snap); err != nil {
		t.Fatal(err)
	}
	path := st.path(key)
	if err := os.WriteFile(path, []byte(`{"key":"`+key+`","run"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Get(key); err == nil {
		t.Error("want error for truncated entry")
	}
	// A complete entry filed under the wrong key must also be loud.
	other := strings.Repeat("ff", 32)
	if err := st.Put(other, run, snap); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.path(other), path); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Get(key); err == nil || !strings.Contains(err.Error(), "misplaced") {
		t.Errorf("want misplaced-object error, got %v", err)
	}
}

// TestConcurrentPutGet exercises the store the way the engine does:
// many workers writing and reading disjoint and shared keys at once.
func TestConcurrentPutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run, snap := sampleResult()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := strings.Repeat("0123456789abcdef"[i%16:i%16+1], 64)
				if err := st.Put(k, run, snap); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, _, found, err := st.Get(k); err != nil || !found {
					t.Errorf("get: found=%v err=%v", found, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, err := st.Len(); err != nil || n != 16 {
		t.Errorf("Len = %d, %v, want 16", n, err)
	}
}
