// Package cache implements the set-associative cache structures used by
// every coherence controller: LRU replacement, per-line coherence
// metadata (protocol-defined state plus token-coherence token counts),
// and the two-level (L1 filter over L2) latency hierarchy of Table 1.
package cache

import (
	"fmt"

	"tokencoherence/internal/msg"
)

// Line is one cache line. The coherence protocol owns the interpretation
// of State; Token Coherence additionally uses Tokens/Owner/Valid.
type Line struct {
	Block msg.Block
	// State is a protocol-defined stable-state tag (MOSI etc.).
	State int
	// Tokens is the token count held for the block, including the owner
	// token when Owner is set (Token Coherence only).
	Tokens int
	// Owner marks possession of the owner token.
	Owner bool
	// Valid marks that Data holds a valid copy (distinct from tag
	// validity; a line may hold tokens without data under the optimized
	// invariants).
	Valid bool
	// Dirty marks data modified relative to memory (drives writeback
	// decisions); it travels with the owner token.
	Dirty bool
	// Written marks that this node itself wrote the block while holding
	// it. The migratory-sharing optimization triggers only on blocks the
	// responder wrote, so Written never travels in messages.
	Written bool
	// Epoch is a protocol-defined ordering tag (the directory protocol
	// stores the home transaction number of the fill so stale
	// invalidations can be recognized).
	Epoch uint64
	// Data is the block payload, modelled as a write version.
	Data uint64

	lru  uint64
	used bool
}

// Reset clears a line for reuse, preserving nothing.
func (l *Line) Reset() {
	*l = Line{}
}

// Cache is a set-associative cache with LRU replacement. It tracks tags
// and metadata only; timing is the caller's concern.
type Cache struct {
	sets    int
	assoc   int
	lines   []Line // sets*assoc, set-major
	tick    uint64
	entries int
}

// New builds a cache of the given total size in bytes and associativity,
// with msg.BlockSize lines. Size must divide evenly into sets.
func New(sizeBytes, assoc int) *Cache {
	if sizeBytes <= 0 || assoc <= 0 {
		panic("cache: size and associativity must be positive")
	}
	blocks := sizeBytes / msg.BlockSize
	if blocks == 0 || blocks%assoc != 0 {
		panic(fmt.Sprintf("cache: %d bytes / %d-way does not form whole sets", sizeBytes, assoc))
	}
	return &Cache{
		sets:  blocks / assoc,
		assoc: assoc,
		lines: make([]Line, blocks),
	}
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc reports the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Len reports the number of resident lines.
func (c *Cache) Len() int { return c.entries }

func (c *Cache) set(b msg.Block) []Line {
	s := int(uint64(b) % uint64(c.sets))
	return c.lines[s*c.assoc : (s+1)*c.assoc]
}

// Lookup returns the line holding b, or nil. It does not update LRU
// state; call Touch on use.
func (c *Cache) Lookup(b msg.Block) *Line {
	set := c.set(b)
	for i := range set {
		if set[i].used && set[i].Block == b {
			return &set[i]
		}
	}
	return nil
}

// Touch marks the line most-recently-used.
func (c *Cache) Touch(l *Line) {
	c.tick++
	l.lru = c.tick
}

// Allocate returns a line for b, evicting the LRU line of the set if the
// set is full. The returned victim holds the evicted line's contents (or
// ok=false if no eviction occurred). The new line is zeroed apart from
// its Block and is already touched. Allocating a block that is present
// panics — the caller must Lookup first.
func (c *Cache) Allocate(b msg.Block) (line *Line, victim Line, evicted bool) {
	return c.AllocateAvoiding(b, nil)
}

// AllocateAvoiding is Allocate with a victim-selection filter: lines for
// which avoid returns true are evicted only when every line of the set
// is marked avoid. Coherence controllers use it to keep lines with
// in-flight transactions resident when possible.
func (c *Cache) AllocateAvoiding(b msg.Block, avoid func(msg.Block) bool) (line *Line, victim Line, evicted bool) {
	set := c.set(b)
	var free *Line
	var lruPreferred, lruAny *Line
	for i := range set {
		l := &set[i]
		if l.used && l.Block == b {
			panic(fmt.Sprintf("cache: Allocate of resident block %d", b))
		}
		if !l.used {
			if free == nil {
				free = l
			}
			continue
		}
		if lruAny == nil || l.lru < lruAny.lru {
			lruAny = l
		}
		if avoid == nil || !avoid(l.Block) {
			if lruPreferred == nil || l.lru < lruPreferred.lru {
				lruPreferred = l
			}
		}
	}
	if free == nil {
		lru := lruPreferred
		if lru == nil {
			lru = lruAny
		}
		victim = *lru
		evicted = true
		lru.Reset()
		free = lru
		c.entries--
	}
	free.used = true
	free.Block = b
	c.entries++
	c.Touch(free)
	return free, victim, evicted
}

// Remove evicts b without replacement (e.g., on invalidation). It is a
// no-op if b is absent.
func (c *Cache) Remove(b msg.Block) {
	if l := c.Lookup(b); l != nil {
		l.Reset()
		c.entries--
	}
}

// VictimFor returns the line that Allocate(b) would evict, or nil when a
// free way exists. Callers use it to issue writebacks before allocating.
func (c *Cache) VictimFor(b msg.Block) *Line {
	set := c.set(b)
	var lru *Line
	for i := range set {
		l := &set[i]
		if !l.used {
			return nil
		}
		if lru == nil || l.lru < lru.lru {
			lru = l
		}
	}
	return lru
}

// ForEach visits every resident line. The callback must not allocate or
// remove lines.
func (c *Cache) ForEach(f func(*Line)) {
	for i := range c.lines {
		if c.lines[i].used {
			f(&c.lines[i])
		}
	}
}
