package cache

import (
	"testing"
	"testing/quick"

	"tokencoherence/internal/msg"
)

func TestNewGeometry(t *testing.T) {
	c := New(4<<20, 4) // the paper's L2: 4MB 4-way
	if c.Sets() != 16384 {
		t.Errorf("Sets() = %d, want 16384", c.Sets())
	}
	if c.Assoc() != 4 {
		t.Errorf("Assoc() = %d, want 4", c.Assoc())
	}
}

func TestLookupMissOnEmpty(t *testing.T) {
	c := New(1024, 2)
	if c.Lookup(5) != nil {
		t.Error("Lookup on empty cache returned a line")
	}
}

func TestAllocateThenLookup(t *testing.T) {
	c := New(1024, 2)
	l, _, evicted := c.Allocate(5)
	if evicted {
		t.Error("unexpected eviction in empty cache")
	}
	l.State = 3
	l.Tokens = 7
	got := c.Lookup(5)
	if got == nil || got.State != 3 || got.Tokens != 7 {
		t.Fatalf("Lookup after Allocate = %+v", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c.Len())
	}
}

func TestAllocateResidentPanics(t *testing.T) {
	c := New(1024, 2)
	c.Allocate(5)
	defer func() {
		if recover() == nil {
			t.Error("Allocate of resident block did not panic")
		}
	}()
	c.Allocate(5)
}

func TestLRUEviction(t *testing.T) {
	c := New(2*msg.BlockSize, 2) // one set, two ways
	a, _, _ := c.Allocate(0)
	_ = a
	c.Allocate(1)
	// Touch block 0 so block 1 becomes LRU.
	c.Touch(c.Lookup(0))
	_, victim, evicted := c.Allocate(2)
	if !evicted {
		t.Fatal("expected an eviction from a full set")
	}
	if victim.Block != 1 {
		t.Errorf("evicted block %d, want 1 (LRU)", victim.Block)
	}
	if c.Lookup(1) != nil {
		t.Error("evicted block still resident")
	}
	if c.Lookup(0) == nil || c.Lookup(2) == nil {
		t.Error("resident blocks missing after eviction")
	}
}

func TestVictimContentsPreserved(t *testing.T) {
	c := New(msg.BlockSize, 1) // single line
	l, _, _ := c.Allocate(10)
	l.Dirty = true
	l.Data = 42
	l.Tokens = 3
	l.Owner = true
	_, victim, evicted := c.Allocate(11)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if !victim.Dirty || victim.Data != 42 || victim.Tokens != 3 || !victim.Owner {
		t.Errorf("victim lost contents: %+v", victim)
	}
}

func TestRemove(t *testing.T) {
	c := New(1024, 2)
	c.Allocate(9)
	c.Remove(9)
	if c.Lookup(9) != nil {
		t.Error("Remove left block resident")
	}
	if c.Len() != 0 {
		t.Errorf("Len() = %d, want 0", c.Len())
	}
	c.Remove(9) // no-op must not panic
}

func TestVictimFor(t *testing.T) {
	c := New(2*msg.BlockSize, 2)
	if c.VictimFor(0) != nil {
		t.Error("VictimFor on empty set should be nil")
	}
	c.Allocate(0)
	c.Allocate(1)
	c.Touch(c.Lookup(1)) // 0 is now LRU... touch order: 0,1,1 -> LRU is 0
	v := c.VictimFor(2)
	if v == nil || v.Block != 0 {
		t.Errorf("VictimFor = %+v, want block 0", v)
	}
}

func TestConflictOnlyWithinSet(t *testing.T) {
	c := New(4*msg.BlockSize, 1) // 4 sets, direct-mapped
	// Blocks 0..3 map to distinct sets; no evictions.
	for b := msg.Block(0); b < 4; b++ {
		if _, _, evicted := c.Allocate(b); evicted {
			t.Errorf("block %d evicted something in a distinct set", b)
		}
	}
	// Block 4 conflicts with block 0.
	_, victim, evicted := c.Allocate(4)
	if !evicted || victim.Block != 0 {
		t.Errorf("expected block 0 evicted, got %+v (evicted=%v)", victim, evicted)
	}
}

func TestForEach(t *testing.T) {
	c := New(1024, 4)
	want := map[msg.Block]bool{2: true, 7: true, 11: true}
	for b := range want {
		c.Allocate(b)
	}
	got := map[msg.Block]bool{}
	c.ForEach(func(l *Line) { got[l.Block] = true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d lines, want %d", len(got), len(want))
	}
	for b := range want {
		if !got[b] {
			t.Errorf("ForEach missed block %d", b)
		}
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 4) },
		func() { New(1024, 0) },
		func() { New(msg.BlockSize*3, 2) }, // 3 blocks, 2-way: ragged
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: after any sequence of allocations the cache never exceeds
// capacity, Len matches residency, and every resident block is findable.
func TestPropertyCapacityAndResidency(t *testing.T) {
	f := func(blocks []uint16) bool {
		c := New(16*msg.BlockSize, 2) // 8 sets x 2 ways = 16 lines
		resident := map[msg.Block]bool{}
		for _, raw := range blocks {
			b := msg.Block(raw % 64)
			if c.Lookup(b) != nil {
				c.Touch(c.Lookup(b))
				continue
			}
			_, victim, evicted := c.Allocate(b)
			if evicted {
				delete(resident, victim.Block)
			}
			resident[b] = true
		}
		if c.Len() != len(resident) {
			return false
		}
		count := 0
		c.ForEach(func(*Line) { count++ })
		if count != len(resident) || count > 16 {
			return false
		}
		for b := range resident {
			if c.Lookup(b) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LRU evicts the least-recently-used line in a fully touched set.
func TestPropertyLRUOrder(t *testing.T) {
	f := func(touches []uint8) bool {
		c := New(4*msg.BlockSize, 4) // one set of 4 ways
		for b := msg.Block(0); b < 4; b++ {
			c.Allocate(b)
		}
		last := map[msg.Block]int{0: 0, 1: 1, 2: 2, 3: 3}
		step := 4
		for _, raw := range touches {
			b := msg.Block(raw % 4)
			c.Touch(c.Lookup(b))
			last[b] = step
			step++
		}
		// Expected LRU: the block with smallest last-touch step.
		wantVictim := msg.Block(0)
		for b, s := range last {
			if s < last[wantVictim] {
				wantVictim = b
			}
		}
		_, victim, evicted := c.Allocate(99)
		return evicted && victim.Block == wantVictim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
