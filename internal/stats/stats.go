// Package stats collects the measurements the paper reports: traffic on
// the interconnect broken down by message category (Figures 4b, 5b),
// miss/reissue/persistent-request classification (Table 2), and runtime
// in cycles per transaction (Figures 4a, 5a).
package stats

import (
	"fmt"
	"math"
	"sort"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// Traffic accumulates bytes placed on interconnect links, weighted by the
// number of link traversals (a broadcast pays once per multicast-tree
// edge, exactly as the paper charges it).
type Traffic struct {
	bytes    [msg.NumCategories]uint64
	messages [msg.NumCategories]uint64
}

// Record notes that m crossed `links` interconnect links.
func (t *Traffic) Record(m *msg.Message, links int) {
	if links <= 0 {
		return // local (same-node) delivery costs no interconnect bytes
	}
	t.bytes[m.Cat] += uint64(m.Bytes()) * uint64(links)
	t.messages[m.Cat] += uint64(links)
}

// Bytes reports the bytes recorded for one category.
func (t *Traffic) Bytes(c msg.Category) uint64 { return t.bytes[c] }

// Messages reports link-traversal count for one category.
func (t *Traffic) Messages(c msg.Category) uint64 { return t.messages[c] }

// TotalBytes reports all bytes across categories.
func (t *Traffic) TotalBytes() uint64 {
	var sum uint64
	for _, b := range t.bytes {
		sum += b
	}
	return sum
}

// Misses classifies coherence misses as the paper's Table 2 does.
type Misses struct {
	// Issued counts coherence misses (first-issue transient or protocol
	// requests).
	Issued uint64
	// ReissuedOnce counts misses whose request was reissued exactly once.
	ReissuedOnce uint64
	// ReissuedMore counts misses reissued more than once (but that did
	// not escalate to a persistent request).
	ReissuedMore uint64
	// Persistent counts misses that escalated to a persistent request.
	Persistent uint64
}

// NotReissued reports misses satisfied by their first request.
func (m *Misses) NotReissued() uint64 {
	return m.Issued - m.ReissuedOnce - m.ReissuedMore - m.Persistent
}

// Frac returns n as a percentage of issued misses.
func (m *Misses) Frac(n uint64) float64 {
	if m.Issued == 0 {
		return 0
	}
	return 100 * float64(n) / float64(m.Issued)
}

// Run aggregates one simulation run.
type Run struct {
	Traffic Traffic
	Misses  Misses

	// Hits and accesses for cache behaviour sanity checks.
	L1Hits    uint64
	L2Hits    uint64
	Accesses  uint64
	Upgrades  uint64
	Writeback uint64

	// Transactions completed and the simulated time consumed.
	Transactions uint64
	Elapsed      sim.Time

	// MissLatencySum/Count give average miss latency; MissLatencies
	// buckets the distribution (the reissue tail is what the adaptive
	// timeout reacts to).
	MissLatencySum   sim.Time
	MissLatencyCount uint64
	MissLatencies    Histogram
}

// Reset zeroes all counters (used at the end of cache warmup so the
// measured interval reflects steady state, as the paper's checkpointed
// runs do).
func (r *Run) Reset() {
	*r = Run{}
}

// Merge folds o into r: every counter, traffic category and histogram
// bucket is summed. All Run fields are commutative counts except
// Elapsed, which the caller owns (island shards of one run share a
// clock, so summing it would be wrong); Merge leaves r.Elapsed alone.
func (r *Run) Merge(o *Run) {
	for c := 0; c < msg.NumCategories; c++ {
		r.Traffic.bytes[c] += o.Traffic.bytes[c]
		r.Traffic.messages[c] += o.Traffic.messages[c]
	}
	r.Misses.Issued += o.Misses.Issued
	r.Misses.ReissuedOnce += o.Misses.ReissuedOnce
	r.Misses.ReissuedMore += o.Misses.ReissuedMore
	r.Misses.Persistent += o.Misses.Persistent
	r.L1Hits += o.L1Hits
	r.L2Hits += o.L2Hits
	r.Accesses += o.Accesses
	r.Upgrades += o.Upgrades
	r.Writeback += o.Writeback
	r.Transactions += o.Transactions
	r.MissLatencySum += o.MissLatencySum
	r.MissLatencyCount += o.MissLatencyCount
	r.MissLatencies.Merge(&o.MissLatencies)
}

// CyclesPerTransaction reports runtime in 1 GHz cycles (= ns) per
// completed transaction, the paper's runtime metric.
func (r *Run) CyclesPerTransaction() float64 {
	if r.Transactions == 0 {
		return math.Inf(1)
	}
	return r.Elapsed.Nanoseconds() / float64(r.Transactions)
}

// BytesPerMiss reports interconnect bytes per coherence miss, the paper's
// traffic metric.
func (r *Run) BytesPerMiss() float64 {
	if r.Misses.Issued == 0 {
		return 0
	}
	return float64(r.Traffic.TotalBytes()) / float64(r.Misses.Issued)
}

// CategoryBytesPerMiss reports one category's bytes per miss.
func (r *Run) CategoryBytesPerMiss(c msg.Category) float64 {
	if r.Misses.Issued == 0 {
		return 0
	}
	return float64(r.Traffic.Bytes(c)) / float64(r.Misses.Issued)
}

// AvgMissLatency reports the mean coherence-miss latency.
func (r *Run) AvgMissLatency() sim.Time {
	if r.MissLatencyCount == 0 {
		return 0
	}
	return r.MissLatencySum / sim.Time(r.MissLatencyCount)
}

// Sample summarizes repeated runs of one configuration with different
// seeds (the paper simulates each design point multiple times and shows
// one standard deviation).
type Sample struct {
	Values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.Values = append(s.Values, v) }

// Mean reports the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// StdDev reports the sample standard deviation (n-1 denominator).
func (s *Sample) StdDev() float64 {
	n := len(s.Values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.Values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median reports the sample median.
func (s *Sample) Median() float64 {
	n := len(s.Values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func (s *Sample) String() string {
	return fmt.Sprintf("%.1f ± %.1f (n=%d)", s.Mean(), s.StdDev(), len(s.Values))
}
