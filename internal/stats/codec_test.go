package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// TestRunRoundTrip pins the store's correctness premise: a Run encoded
// to JSON and decoded back is identical field for field, including the
// unexported traffic and histogram internals, so every metric a sink
// derives from it (cycles/txn, bytes/miss, quantiles) is bit-identical.
func TestRunRoundTrip(t *testing.T) {
	var run Run
	m := &msg.Message{Cat: msg.CatData, Kind: msg.KindData}
	run.Traffic.Record(m, 3)
	m2 := &msg.Message{Cat: msg.CatRequest, Kind: msg.KindGetS}
	run.Traffic.Record(m2, 7)
	run.Misses = Misses{Issued: 100, ReissuedOnce: 7, ReissuedMore: 2, Persistent: 1}
	run.L1Hits, run.L2Hits, run.Accesses = 12345, 678, 99999
	run.Upgrades, run.Writeback = 11, 22
	run.Transactions = 400
	run.Elapsed = 123456789 * sim.Nanosecond
	run.MissLatencySum = 5555 * sim.Nanosecond
	run.MissLatencyCount = 107
	for _, d := range []sim.Time{0, 1, 100, 1000, 1 << 20} {
		run.MissLatencies.Observe(d * sim.Nanosecond)
	}

	b, err := json.Marshal(&run)
	if err != nil {
		t.Fatal(err)
	}
	var got Run
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, got) {
		t.Errorf("run did not round-trip:\n  in  %+v\n  out %+v", run, got)
	}
	if got.CyclesPerTransaction() != run.CyclesPerTransaction() ||
		got.BytesPerMiss() != run.BytesPerMiss() ||
		got.AvgMissLatency() != run.AvgMissLatency() ||
		got.MissLatencies.Quantile(0.99) != run.MissLatencies.Quantile(0.99) {
		t.Error("derived metrics differ after round-trip")
	}
}

// TestSnapshotRoundTrip covers the values JSON numbers cannot carry: a
// transaction-less run's +Inf, NaN, negative zero, and floats needing
// all 17 digits must all come back bit-identical, with the schema (and
// its CSV format verbs) intact.
func TestSnapshotRoundTrip(t *testing.T) {
	ms := NewMetricSet()
	g1 := ms.Gauge(Desc{Name: "plain", Unit: "x", Help: "plain value", Fmt: "%.2f"})
	g1.Set(1.0 / 3.0)
	g2 := ms.Gauge(Desc{Name: "inf", Unit: "x", Help: "positive infinity"})
	g2.Set(math.Inf(1))
	g3 := ms.Gauge(Desc{Name: "nan", Unit: "x", Help: "not a number"})
	g3.Set(math.NaN())
	g4 := ms.Gauge(Desc{Name: "negzero", Unit: "x", Help: "negative zero"})
	g4.Set(math.Copysign(0, -1))
	ms.Counter(Desc{Name: "big", Unit: "n", Help: "large count"}).Add(1<<53 + 1)

	snap := ms.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Descs(), got.Descs()) {
		t.Errorf("schema did not round-trip:\n  in  %+v\n  out %+v", snap.Descs(), got.Descs())
	}
	for _, name := range snap.Names() {
		want, _ := snap.Value(name)
		have, ok := got.Value(name)
		if !ok {
			t.Errorf("metric %q lost in round-trip", name)
			continue
		}
		if math.Float64bits(want) != math.Float64bits(have) {
			t.Errorf("metric %q: %v (bits %x) round-tripped to %v (bits %x)",
				name, want, math.Float64bits(want), have, math.Float64bits(have))
		}
		ws, _ := snap.Formatted(name)
		hs, _ := got.Formatted(name)
		if ws != hs {
			t.Errorf("metric %q: formatted %q round-tripped to %q", name, ws, hs)
		}
	}
}

// TestSnapshotDecodeRejectsMismatch guards the decoder against torn or
// hand-edited store entries.
func TestSnapshotDecodeRejectsMismatch(t *testing.T) {
	var s Snapshot
	if err := json.Unmarshal([]byte(`{"descs":[{"Name":"a"}],"values":[]}`), &s); err == nil {
		t.Error("want error for desc/value length mismatch")
	}
	if err := json.Unmarshal([]byte(`{"descs":[{"Name":"a"}],"values":["zzz"]}`), &s); err == nil {
		t.Error("want error for unparseable value")
	}
	var h Histogram
	if err := json.Unmarshal([]byte(`{"buckets":[1,2],"count":3}`), &h); err == nil {
		t.Error("want error for wrong bucket count")
	}
	var tr Traffic
	if err := json.Unmarshal([]byte(`{"bytes":[1],"messages":[1]}`), &tr); err == nil {
		t.Error("want error for wrong category count")
	}
}
