package stats

import (
	"math"
	"reflect"
	"testing"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

func TestMetricSetRegistrationOrderAndSchema(t *testing.T) {
	ms := NewMetricSet()
	c := ms.Counter(Desc{Name: "c", Unit: "count", Help: "a counter"})
	g := ms.Gauge(Desc{Name: "g", Unit: "ratio"})
	h := ms.Histogram(Desc{Name: "h", Unit: "ns"})
	ms.Derived(Desc{Name: "d", Unit: "x", Fmt: "%.2f"}, func() float64 { return 42.5 })

	if got, want := ms.Names(), []string{"c", "g", "h", "d"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	descs := ms.Descs()
	if descs[0].Kind != KindCounter || descs[1].Kind != KindGauge ||
		descs[2].Kind != KindHistogram || descs[3].Kind != KindDerived {
		t.Fatalf("kinds wrong: %+v", descs)
	}
	if descs[0].Fmt != "%g" {
		t.Errorf("default Fmt = %q, want %%g", descs[0].Fmt)
	}

	c.Add(3)
	c.Inc()
	g.Set(1.5)
	h.Observe(100 * sim.Nanosecond)
	h.Observe(300 * sim.Nanosecond)

	if v, ok := ms.Value("c"); !ok || v != 4 {
		t.Errorf("Value(c) = %v, %v", v, ok)
	}
	if v, ok := ms.Value("g"); !ok || v != 1.5 {
		t.Errorf("Value(g) = %v, %v", v, ok)
	}
	if v, ok := ms.Value("h"); !ok || v != 200 {
		t.Errorf("Value(h) = %v, %v (want histogram mean in ns)", v, ok)
	}
	if _, ok := ms.Value("missing"); ok {
		t.Error("Value(missing) reported ok")
	}
	if d, ok := ms.Lookup("d"); !ok || d.Unit != "x" {
		t.Errorf("Lookup(d) = %+v, %v", d, ok)
	}
}

func TestMetricSetSharedRegistration(t *testing.T) {
	// Per-node components register the same metric once each; identical
	// descriptors must return the shared instance.
	ms := NewMetricSet()
	d := Desc{Name: "acts", Unit: "count", Fmt: "%.0f"}
	a, b := ms.Counter(d), ms.Counter(d)
	if a != b {
		t.Fatal("identical counter registrations did not share storage")
	}
	a.Inc()
	b.Inc()
	if v, _ := ms.Value("acts"); v != 2 {
		t.Errorf("shared counter = %v, want 2", v)
	}
	if n := len(ms.Names()); n != 1 {
		t.Errorf("Names() has %d entries, want 1", n)
	}
}

func TestMetricSetConflictPanics(t *testing.T) {
	for name, register := range map[string]func(ms *MetricSet){
		"different descriptor": func(ms *MetricSet) {
			ms.Counter(Desc{Name: "m", Unit: "count"})
			ms.Counter(Desc{Name: "m", Unit: "bytes"})
		},
		"different kind": func(ms *MetricSet) {
			ms.Counter(Desc{Name: "m"})
			ms.Gauge(Desc{Name: "m"})
		},
		"derived re-registration": func(ms *MetricSet) {
			ms.Derived(Desc{Name: "m"}, func() float64 { return 0 })
			ms.Derived(Desc{Name: "m"}, func() float64 { return 0 })
		},
		"empty name": func(ms *MetricSet) {
			ms.Counter(Desc{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			register(NewMetricSet())
		}()
	}
}

func TestMetricSetReset(t *testing.T) {
	ms := NewMetricSet()
	c := ms.Counter(Desc{Name: "c"})
	g := ms.Gauge(Desc{Name: "g"})
	h := ms.Histogram(Desc{Name: "h"})
	ext := 7.0
	ms.Derived(Desc{Name: "d"}, func() float64 { return ext })

	c.Add(10)
	g.Set(3)
	h.Observe(5 * sim.Nanosecond)
	ms.Reset()

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("owned metrics not zeroed: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
	if v, _ := ms.Value("d"); v != 7 {
		t.Errorf("derived metric disturbed by Reset: %v", v)
	}
	// The returned handles stay live after Reset.
	c.Inc()
	if v, _ := ms.Value("c"); v != 1 {
		t.Errorf("counter dead after Reset: %v", v)
	}
}

func TestSnapshotCapturesAndFormats(t *testing.T) {
	ms := NewMetricSet()
	c := ms.Counter(Desc{Name: "c", Fmt: "%.0f"})
	ms.Derived(Desc{Name: "pi", Fmt: "%.2f"}, func() float64 { return 3.14159 })
	c.Add(5)

	snap := ms.Snapshot()
	c.Add(100) // must not affect the captured value
	if v, ok := snap.Value("c"); !ok || v != 5 {
		t.Errorf("snapshot Value(c) = %v, %v", v, ok)
	}
	if s, ok := snap.Formatted("pi"); !ok || s != "3.14" {
		t.Errorf("Formatted(pi) = %q, %v", s, ok)
	}
	if _, ok := snap.Formatted("nope"); ok {
		t.Error("Formatted(nope) reported ok")
	}
	if got, want := snap.Names(), []string{"c", "pi"}; !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot Names() = %v, want %v", got, want)
	}
	if d, ok := snap.Desc("pi"); !ok || d.Fmt != "%.2f" {
		t.Errorf("snapshot Desc(pi) = %+v, %v", d, ok)
	}
	if snap.Len() != 2 {
		t.Errorf("Len = %d", snap.Len())
	}
}

func TestSnapshotFiniteMapFiltersNonFinite(t *testing.T) {
	ms := NewMetricSet()
	ms.Derived(Desc{Name: "inf"}, func() float64 { return math.Inf(1) })
	ms.Derived(Desc{Name: "nan"}, func() float64 { return math.NaN() })
	ms.Derived(Desc{Name: "ok"}, func() float64 { return 1 })
	m := ms.Snapshot().FiniteMap()
	if !reflect.DeepEqual(m, map[string]float64{"ok": 1}) {
		t.Errorf("FiniteMap = %v", m)
	}
}

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	// Every dispatcher must be a no-op on a nil observer and on an
	// observer with unset fields.
	o.OnMissIssued(0, 1, true, 0)
	o.OnMissCompleted(0, 1, 0, false, 0)
	o.OnReissued(0, 1, 1, 0)
	o.OnPersistentActivated(0, 1, 0)
	o.OnTokensTransferred(0, 1, 1, 0)
	o.OnNetworkHop(0, 0, 8, 0)
	empty := &Observer{}
	empty.OnMissIssued(0, 1, true, 0)
	empty.OnNetworkHop(0, 0, 8, 0)
}

func TestMergeObservers(t *testing.T) {
	if MergeObservers(nil, nil) != nil {
		t.Error("merging two nils should stay nil")
	}
	a := &Observer{MissIssued: func(proc int, block msg.Block, write bool, at sim.Time) {}}
	if MergeObservers(a, nil) != a || MergeObservers(nil, a) != a {
		t.Error("merging with nil should return the other observer unchanged")
	}

	var order []string
	mk := func(name string) *Observer {
		return &Observer{
			MissIssued: func(proc int, block msg.Block, write bool, at sim.Time) {
				order = append(order, name+"-issue")
			},
			NetworkHop: func(link int, cat msg.Category, bytes int, at sim.Time) {
				order = append(order, name+"-hop")
			},
		}
	}
	merged := MergeObservers(MergeObservers(mk("a"), mk("b")), mk("c"))
	merged.OnMissIssued(1, 2, true, 3)
	merged.OnNetworkHop(0, msg.CatData, 72, 4)
	want := []string{"a-issue", "b-issue", "c-issue", "a-hop", "b-hop", "c-hop"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("fan-out order = %v, want %v", order, want)
	}

	// A merged chain containing an observer with an unset field must not
	// fire nor crash for that event.
	order = nil
	partial := MergeObservers(mk("a"), &Observer{})
	partial.OnReissued(0, 1, 1, 0)
	partial.OnMissIssued(0, 1, false, 0)
	if !reflect.DeepEqual(order, []string{"a-issue"}) {
		t.Errorf("partial fan-out = %v", order)
	}
	// Events neither operand subscribes to stay unsubscribed in the
	// merged observer, preserving the event sites' nil fast path.
	if partial.Reissued != nil || partial.MissCompleted != nil || partial.TokensTransferred != nil || partial.PersistentActivated != nil {
		t.Error("merge subscribed to events neither operand watches")
	}
	if partial.MissIssued == nil || partial.NetworkHop == nil {
		t.Error("merge dropped subscribed events")
	}
}
