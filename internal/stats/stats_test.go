package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

func TestTrafficRecordWeightsByLinks(t *testing.T) {
	var tr Traffic
	req := &msg.Message{Kind: msg.KindGetS, Cat: msg.CatRequest}
	data := &msg.Message{Kind: msg.KindData, Cat: msg.CatData, HasData: true}
	tr.Record(req, 5)  // broadcast over 5 links
	tr.Record(data, 2) // data over 2 links
	if got := tr.Bytes(msg.CatRequest); got != 40 {
		t.Errorf("request bytes = %d, want 40 (8B x 5 links)", got)
	}
	if got := tr.Bytes(msg.CatData); got != 144 {
		t.Errorf("data bytes = %d, want 144 (72B x 2 links)", got)
	}
	if got := tr.TotalBytes(); got != 184 {
		t.Errorf("total = %d, want 184", got)
	}
	if got := tr.Messages(msg.CatRequest); got != 5 {
		t.Errorf("request traversals = %d, want 5", got)
	}
}

func TestTrafficLocalDeliveryFree(t *testing.T) {
	var tr Traffic
	tr.Record(&msg.Message{Cat: msg.CatData, HasData: true}, 0)
	if tr.TotalBytes() != 0 {
		t.Error("local delivery must not count interconnect bytes")
	}
}

func TestMissesClassification(t *testing.T) {
	m := Misses{Issued: 1000, ReissuedOnce: 30, ReissuedMore: 5, Persistent: 2}
	if got := m.NotReissued(); got != 963 {
		t.Errorf("NotReissued = %d, want 963", got)
	}
	if got := m.Frac(m.ReissuedOnce); got != 3.0 {
		t.Errorf("Frac = %v, want 3.0", got)
	}
}

func TestMissesFracEmpty(t *testing.T) {
	var m Misses
	if m.Frac(10) != 0 {
		t.Error("Frac with zero misses must be 0")
	}
}

func TestRunMetrics(t *testing.T) {
	r := Run{Transactions: 50, Elapsed: 100 * sim.Microsecond}
	r.Misses.Issued = 200
	r.Traffic.Record(&msg.Message{Cat: msg.CatData, HasData: true}, 200)
	if got := r.CyclesPerTransaction(); got != 2000 {
		t.Errorf("CyclesPerTransaction = %v, want 2000", got)
	}
	if got := r.BytesPerMiss(); got != 72 {
		t.Errorf("BytesPerMiss = %v, want 72", got)
	}
	if got := r.CategoryBytesPerMiss(msg.CatData); got != 72 {
		t.Errorf("CategoryBytesPerMiss = %v, want 72", got)
	}
}

func TestRunZeroGuards(t *testing.T) {
	var r Run
	if !math.IsInf(r.CyclesPerTransaction(), 1) {
		t.Error("zero transactions should yield +Inf cycles/txn")
	}
	if r.BytesPerMiss() != 0 {
		t.Error("zero misses should yield 0 bytes/miss")
	}
	if r.AvgMissLatency() != 0 {
		t.Error("zero misses should yield 0 latency")
	}
}

func TestAvgMissLatency(t *testing.T) {
	r := Run{MissLatencySum: 300 * sim.Nanosecond, MissLatencyCount: 3}
	if got := r.AvgMissLatency(); got != 100*sim.Nanosecond {
		t.Errorf("AvgMissLatency = %v, want 100ns", got)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if got := s.Median(); got != 4.5 {
		t.Errorf("Median = %v, want 4.5", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Median() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleMedianOdd(t *testing.T) {
	s := Sample{Values: []float64{9, 1, 5}}
	if got := s.Median(); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestSampleMedianEven(t *testing.T) {
	// Even n: the median averages the two central order statistics, and
	// Median must not disturb the sample's own ordering.
	s := Sample{Values: []float64{9, 1, 5, 3}}
	if got := s.Median(); got != 4 {
		t.Errorf("Median = %v, want 4", got)
	}
	if !reflect.DeepEqual(s.Values, []float64{9, 1, 5, 3}) {
		t.Errorf("Median mutated Values: %v", s.Values)
	}
	two := Sample{Values: []float64{10, 20}}
	if got := two.Median(); got != 15 {
		t.Errorf("Median of two = %v, want 15", got)
	}
}

func TestSampleSingleValueStdDev(t *testing.T) {
	// n=1 has no dispersion estimate; the n-1 denominator must not
	// divide by zero.
	s := Sample{Values: []float64{42}}
	if got := s.StdDev(); got != 0 {
		t.Errorf("StdDev of single value = %v, want 0", got)
	}
	if got := s.Mean(); got != 42 {
		t.Errorf("Mean = %v, want 42", got)
	}
	if got := s.Median(); got != 42 {
		t.Errorf("Median = %v, want 42", got)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	if got := s.String(); got != "0.0 ± 0.0 (n=0)" {
		t.Errorf("empty String = %q", got)
	}
	s.Add(2)
	s.Add(4)
	if got := s.String(); got != "3.0 ± 1.4 (n=2)" {
		t.Errorf("String = %q", got)
	}
}

// Property: traffic totals equal the sum of category bytes.
func TestPropertyTrafficTotal(t *testing.T) {
	f := func(counts [4]uint8) bool {
		var tr Traffic
		cats := []msg.Category{msg.CatRequest, msg.CatReissue, msg.CatControl, msg.CatData}
		for i, c := range cats {
			for j := 0; j < int(counts[i]); j++ {
				tr.Record(&msg.Message{Cat: c}, 1)
			}
		}
		var sum uint64
		for _, c := range cats {
			sum += tr.Bytes(c)
		}
		return sum == tr.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
