package stats

import (
	"strings"
	"testing"

	"tokencoherence/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.String() != "histogram: empty" {
		t.Errorf("String() = %q", h.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{10, 20, 40, 80, 160} {
		h.Observe(sim.Time(ns) * sim.Nanosecond)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Mean() != 62*sim.Nanosecond {
		t.Errorf("Mean = %v, want 62ns", h.Mean())
	}
	if h.Max() != 160*sim.Nanosecond {
		t.Errorf("Max = %v, want 160ns", h.Max())
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(sim.Time(i) * sim.Nanosecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	if p50 > p99 {
		t.Errorf("p50 (%v) > p99 (%v)", p50, p99)
	}
	// p50 of 1..1000ns lies in the [512,1024) bucket's range; the
	// estimate returns a power-of-two upper bound containing >= half.
	if p50 < 256*sim.Nanosecond || p50 > 1024*sim.Nanosecond {
		t.Errorf("p50 = %v, out of plausible range", p50)
	}
}

func TestHistogramQuantileValues(t *testing.T) {
	var h Histogram
	// 90 fast samples at ~100ns (bucket [64, 128)) and 10 slow ones at
	// ~10us (bucket [8192, 16384)): the paper's bimodal reissue tail.
	for i := 0; i < 90; i++ {
		h.Observe(100 * sim.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * sim.Microsecond)
	}
	// Quantiles report the containing bucket's upper bound.
	if got := h.Quantile(0.5); got != 128*sim.Nanosecond {
		t.Errorf("p50 = %v, want 128ns", got)
	}
	if got := h.Quantile(0.90); got != 128*sim.Nanosecond {
		t.Errorf("p90 = %v, want 128ns", got)
	}
	if got := h.Quantile(0.95); got != 16384*sim.Nanosecond {
		t.Errorf("p95 = %v, want 16.384us", got)
	}
	if got := h.Quantile(1.0); got != 16384*sim.Nanosecond {
		t.Errorf("p100 = %v, want 16.384us", got)
	}
	// q<=0 and the empty histogram report zero.
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q=0 = %v, want 0", got)
	}
	var empty Histogram
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	samples := []sim.Time{3 * sim.Nanosecond, 90 * sim.Nanosecond, 2 * sim.Microsecond, 40 * sim.Nanosecond}
	for i, d := range samples {
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		all.Observe(d)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Mean() != all.Mean() || a.Max() != all.Max() {
		t.Fatalf("merged n=%d mean=%v max=%v, want n=%d mean=%v max=%v",
			a.Count(), a.Mean(), a.Max(), all.Count(), all.Mean(), all.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q%.2f: merged %v, direct %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	if a.String() != all.String() {
		t.Errorf("merged String differs:\n%s\nvs\n%s", a.String(), all.String())
	}
	// Merging nil or an empty histogram is a no-op.
	before := a
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a != before {
		t.Error("merging nil/empty changed the histogram")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5 * sim.Nanosecond)
	if h.Count() != 1 || h.Max() != 0 {
		t.Errorf("negative sample mishandled: %+v", h)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(100 * sim.Nanosecond)
	h.Observe(3 * sim.Microsecond)
	s := h.String()
	if !strings.Contains(s, "n=2") {
		t.Errorf("String missing count: %q", s)
	}
	if strings.Count(s, "%") != 2 {
		t.Errorf("String should show two buckets: %q", s)
	}
}

func TestHistogramHugeSample(t *testing.T) {
	var h Histogram
	h.Observe(5 * sim.Second) // far beyond the last bucket boundary
	if h.Count() != 1 {
		t.Error("huge sample dropped")
	}
	if q := h.Quantile(1.0); q != 5*sim.Second && q < sim.Second {
		t.Errorf("Quantile(1.0) = %v, want the max-ish", q)
	}
}
