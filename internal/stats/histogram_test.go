package stats

import (
	"strings"
	"testing"

	"tokencoherence/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.String() != "histogram: empty" {
		t.Errorf("String() = %q", h.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{10, 20, 40, 80, 160} {
		h.Observe(sim.Time(ns) * sim.Nanosecond)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Mean() != 62*sim.Nanosecond {
		t.Errorf("Mean = %v, want 62ns", h.Mean())
	}
	if h.Max() != 160*sim.Nanosecond {
		t.Errorf("Max = %v, want 160ns", h.Max())
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(sim.Time(i) * sim.Nanosecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	if p50 > p99 {
		t.Errorf("p50 (%v) > p99 (%v)", p50, p99)
	}
	// p50 of 1..1000ns lies in the [512,1024) bucket's range; the
	// estimate returns a power-of-two upper bound containing >= half.
	if p50 < 256*sim.Nanosecond || p50 > 1024*sim.Nanosecond {
		t.Errorf("p50 = %v, out of plausible range", p50)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5 * sim.Nanosecond)
	if h.Count() != 1 || h.Max() != 0 {
		t.Errorf("negative sample mishandled: %+v", h)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(100 * sim.Nanosecond)
	h.Observe(3 * sim.Microsecond)
	s := h.String()
	if !strings.Contains(s, "n=2") {
		t.Errorf("String missing count: %q", s)
	}
	if strings.Count(s, "%") != 2 {
		t.Errorf("String should show two buckets: %q", s)
	}
}

func TestHistogramHugeSample(t *testing.T) {
	var h Histogram
	h.Observe(5 * sim.Second) // far beyond the last bucket boundary
	if h.Count() != 1 {
		t.Error("huge sample dropped")
	}
	if q := h.Quantile(1.0); q != 5*sim.Second && q < sim.Second {
		t.Errorf("Quantile(1.0) = %v, want the max-ish", q)
	}
}
