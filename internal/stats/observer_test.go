package stats

import (
	"testing"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// TestMergeAllObserversDegenerate checks the cheap paths: no operands,
// all-nil operands, and a single live operand returned unchanged.
func TestMergeAllObserversDegenerate(t *testing.T) {
	if MergeAllObservers() != nil {
		t.Error("empty merge should be nil")
	}
	if MergeAllObservers(nil, nil, nil) != nil {
		t.Error("all-nil merge should be nil")
	}
	o := &Observer{MissIssued: func(int, msg.Block, bool, sim.Time) {}}
	if got := MergeAllObservers(nil, o, nil); got != o {
		t.Error("single live operand should be returned unchanged")
	}
	if got := MergeObservers(nil, o); got != o {
		t.Error("pairwise merge with nil should return the live operand")
	}
}

// TestMergeAllObserversFanOut checks every hook fans out to every
// subscriber, in operand order, exactly once per event.
func TestMergeAllObserversFanOut(t *testing.T) {
	var order []string
	sub := func(name string) *Observer {
		return &Observer{
			MissIssued:            func(int, msg.Block, bool, sim.Time) { order = append(order, name+".issued") },
			MissCompleted:         func(int, msg.Block, int, bool, sim.Time) { order = append(order, name+".completed") },
			Reissued:              func(int, msg.Block, int, sim.Time) { order = append(order, name+".reissued") },
			PersistentActivated:   func(int, msg.Block, sim.Time) { order = append(order, name+".activated") },
			PersistentDeactivated: func(int, msg.Block, sim.Time) { order = append(order, name+".deactivated") },
			TokensTransferred:     func(int, msg.Block, int, sim.Time) { order = append(order, name+".tokens") },
			NetworkHop:            func(int, msg.Category, int, sim.Time) { order = append(order, name+".hop") },
			MeasurementStarted:    func(sim.Time) { order = append(order, name+".started") },
		}
	}
	m := MergeAllObservers(sub("a"), nil, sub("b"))
	m.OnMissIssued(0, 0, false, 0)
	m.OnMissCompleted(0, 0, 0, false, 0)
	m.OnReissued(0, 0, 1, 0)
	m.OnPersistentActivated(0, 0, 0)
	m.OnPersistentDeactivated(0, 0, 0)
	m.OnTokensTransferred(0, 0, 1, 0)
	m.OnNetworkHop(0, msg.CatRequest, 8, 0)
	m.OnMeasurementStarted(0)
	want := []string{
		"a.issued", "b.issued",
		"a.completed", "b.completed",
		"a.reissued", "b.reissued",
		"a.activated", "b.activated",
		"a.deactivated", "b.deactivated",
		"a.tokens", "b.tokens",
		"a.hop", "b.hop",
		"a.started", "b.started",
	}
	if len(order) != len(want) {
		t.Fatalf("got %d calls %v, want %d", len(order), order, len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("call %d = %s, want %s (full: %v)", i, order[i], want[i], order)
		}
	}
}

// TestMergeAllObserversSparseSubscription checks the merged observer
// subscribes only to events some operand watches: unwatched events must
// keep the nil-field fast path even after merging.
func TestMergeAllObserversSparseSubscription(t *testing.T) {
	a := &Observer{MissIssued: func(int, msg.Block, bool, sim.Time) {}}
	b := &Observer{Reissued: func(int, msg.Block, int, sim.Time) {}}
	m := MergeAllObservers(a, b)
	if m.MissIssued == nil || m.Reissued == nil {
		t.Error("merged observer dropped a watched event")
	}
	if m.NetworkHop != nil || m.MissCompleted != nil || m.MeasurementStarted != nil {
		t.Error("merged observer subscribed to events nobody watches")
	}
	// Single-subscriber fields pass the original function through rather
	// than wrapping it in a one-element loop.
	called := false
	c := &Observer{MissIssued: func(int, msg.Block, bool, sim.Time) { called = true }}
	d := &Observer{Reissued: func(int, msg.Block, int, sim.Time) {}}
	MergeAllObservers(c, d).OnMissIssued(0, 0, false, 0)
	if !called {
		t.Error("single-subscriber field did not dispatch")
	}
}

// TestMergeAllObserversFlat checks that merging N observers yields one
// fan-out level: re-merging the merged observer with another one still
// dispatches all three (the machine rebuilds the merge from the full
// observer list on every Observe, so chains never nest in practice).
func TestMergeAllObserversFlat(t *testing.T) {
	count := 0
	sub := func() *Observer {
		return &Observer{MissIssued: func(int, msg.Block, bool, sim.Time) { count++ }}
	}
	all := []*Observer{sub(), sub(), sub(), sub(), sub()}
	MergeAllObservers(all...).OnMissIssued(0, 0, false, 0)
	if count != 5 {
		t.Errorf("fan-out reached %d of 5 subscribers", count)
	}
}
