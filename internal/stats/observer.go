package stats

import (
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// Observer subscribes to simulation events so probes can derive metrics
// the fixed Run counters do not carry (latency CDFs, per-block heat,
// inter-reissue intervals, ...). Every field is optional; a nil Observer
// is valid and free. The simulation fires events through the nil-safe
// On* methods, so with no observer attached — the default — the hot path
// pays a single nil check per event site and allocates nothing.
//
// Events fire during warmup too; metrics a probe registers in the run's
// MetricSet are zeroed automatically at the warmup boundary (see
// MetricSet.Reset), so most probes need no warmup handling of their own.
// Probes that buffer events instead of registering metrics — the
// transaction tracer — subscribe to MeasurementStarted and discard their
// pre-boundary buffer themselves.
type Observer struct {
	// MissIssued fires when a processor's access misses and a new
	// coherence transaction starts.
	MissIssued func(proc int, block msg.Block, write bool, at sim.Time)
	// MissCompleted fires when the miss commits, with its reissue count,
	// whether it escalated to a persistent request, and its latency.
	MissCompleted func(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time)
	// Reissued fires when a Token Coherence transient request times out
	// and is reissued (attempt counts from 1).
	Reissued func(proc int, block msg.Block, attempt int, at sim.Time)
	// PersistentActivated fires when a home arbiter activates a
	// persistent request (the starvation-avoidance mechanism engaging).
	PersistentActivated func(home int, block msg.Block, at sim.Time)
	// PersistentDeactivated fires when a home arbiter finishes a
	// persistent request's deactivation handshake and retires it (the
	// starvation-avoidance mechanism disengaging).
	PersistentDeactivated func(home int, block msg.Block, at sim.Time)
	// TokensTransferred fires when a cache controller receives a
	// token-carrying message.
	TokensTransferred func(proc int, block msg.Block, tokens int, at sim.Time)
	// NetworkHop fires for every interconnect link traversal (unicast
	// hops and multicast tree edges; local same-node deliveries cross no
	// link and fire nothing).
	NetworkHop func(link int, cat msg.Category, bytes int, at sim.Time)
	// MeasurementStarted fires once, at the warmup boundary, when every
	// processor has finished its cache-warming operations and the run's
	// statistics reset: everything after it is the measured interval.
	// Runs without warmup never fire it.
	MeasurementStarted func(at sim.Time)
}

// OnMissIssued fires MissIssued if subscribed. Safe on a nil receiver.
func (o *Observer) OnMissIssued(proc int, block msg.Block, write bool, at sim.Time) {
	if o != nil && o.MissIssued != nil {
		o.MissIssued(proc, block, write, at)
	}
}

// OnMissCompleted fires MissCompleted if subscribed. Safe on a nil receiver.
func (o *Observer) OnMissCompleted(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time) {
	if o != nil && o.MissCompleted != nil {
		o.MissCompleted(proc, block, reissues, persistent, latency)
	}
}

// OnReissued fires Reissued if subscribed. Safe on a nil receiver.
func (o *Observer) OnReissued(proc int, block msg.Block, attempt int, at sim.Time) {
	if o != nil && o.Reissued != nil {
		o.Reissued(proc, block, attempt, at)
	}
}

// OnPersistentActivated fires PersistentActivated if subscribed. Safe on
// a nil receiver.
func (o *Observer) OnPersistentActivated(home int, block msg.Block, at sim.Time) {
	if o != nil && o.PersistentActivated != nil {
		o.PersistentActivated(home, block, at)
	}
}

// OnPersistentDeactivated fires PersistentDeactivated if subscribed.
// Safe on a nil receiver.
func (o *Observer) OnPersistentDeactivated(home int, block msg.Block, at sim.Time) {
	if o != nil && o.PersistentDeactivated != nil {
		o.PersistentDeactivated(home, block, at)
	}
}

// OnTokensTransferred fires TokensTransferred if subscribed. Safe on a
// nil receiver.
func (o *Observer) OnTokensTransferred(proc int, block msg.Block, tokens int, at sim.Time) {
	if o != nil && o.TokensTransferred != nil {
		o.TokensTransferred(proc, block, tokens, at)
	}
}

// OnNetworkHop fires NetworkHop if subscribed. Safe on a nil receiver.
func (o *Observer) OnNetworkHop(link int, cat msg.Category, bytes int, at sim.Time) {
	if o != nil && o.NetworkHop != nil {
		o.NetworkHop(link, cat, bytes, at)
	}
}

// OnMeasurementStarted fires MeasurementStarted if subscribed. Safe on a
// nil receiver.
func (o *Observer) OnMeasurementStarted(at sim.Time) {
	if o != nil && o.MeasurementStarted != nil {
		o.MeasurementStarted(at)
	}
}

// MergeObservers fans events out to both observers (either may be nil;
// merging with nil returns the other unchanged). It is the pairwise
// special case of MergeAllObservers; attachment sites that collect
// several observers should call MergeAllObservers once instead of
// chaining pairwise merges, which builds a wrapper per merge level.
func MergeObservers(a, b *Observer) *Observer {
	return MergeAllObservers(a, b)
}

// MergeAllObservers flattens any number of observers (nils skipped) into
// one whose every event dispatches through a single fan-out loop — no
// matter how many operands, subscribers sit one call below the event
// site, where chained pairwise merges would build a linked chain of
// wrappers per merge level. The merged observer subscribes to an event
// only when at least one operand does, so events nobody watches keep
// their single-nil-check fast path. Zero or all-nil operands merge to
// nil; a single live operand is returned unchanged.
func MergeAllObservers(obs ...*Observer) *Observer {
	live := make([]*Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	m := &Observer{}
	var missIssued []func(int, msg.Block, bool, sim.Time)
	var missCompleted []func(int, msg.Block, int, bool, sim.Time)
	var reissued []func(int, msg.Block, int, sim.Time)
	var activated, deactivated []func(int, msg.Block, sim.Time)
	var tokens []func(int, msg.Block, int, sim.Time)
	var hops []func(int, msg.Category, int, sim.Time)
	var started []func(sim.Time)
	for _, o := range live {
		if o.MissIssued != nil {
			missIssued = append(missIssued, o.MissIssued)
		}
		if o.MissCompleted != nil {
			missCompleted = append(missCompleted, o.MissCompleted)
		}
		if o.Reissued != nil {
			reissued = append(reissued, o.Reissued)
		}
		if o.PersistentActivated != nil {
			activated = append(activated, o.PersistentActivated)
		}
		if o.PersistentDeactivated != nil {
			deactivated = append(deactivated, o.PersistentDeactivated)
		}
		if o.TokensTransferred != nil {
			tokens = append(tokens, o.TokensTransferred)
		}
		if o.NetworkHop != nil {
			hops = append(hops, o.NetworkHop)
		}
		if o.MeasurementStarted != nil {
			started = append(started, o.MeasurementStarted)
		}
	}
	if len(missIssued) == 1 {
		m.MissIssued = missIssued[0]
	} else if len(missIssued) > 1 {
		m.MissIssued = func(proc int, block msg.Block, write bool, at sim.Time) {
			for _, f := range missIssued {
				f(proc, block, write, at)
			}
		}
	}
	if len(missCompleted) == 1 {
		m.MissCompleted = missCompleted[0]
	} else if len(missCompleted) > 1 {
		m.MissCompleted = func(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time) {
			for _, f := range missCompleted {
				f(proc, block, reissues, persistent, latency)
			}
		}
	}
	if len(reissued) == 1 {
		m.Reissued = reissued[0]
	} else if len(reissued) > 1 {
		m.Reissued = func(proc int, block msg.Block, attempt int, at sim.Time) {
			for _, f := range reissued {
				f(proc, block, attempt, at)
			}
		}
	}
	if len(activated) == 1 {
		m.PersistentActivated = activated[0]
	} else if len(activated) > 1 {
		m.PersistentActivated = func(home int, block msg.Block, at sim.Time) {
			for _, f := range activated {
				f(home, block, at)
			}
		}
	}
	if len(deactivated) == 1 {
		m.PersistentDeactivated = deactivated[0]
	} else if len(deactivated) > 1 {
		m.PersistentDeactivated = func(home int, block msg.Block, at sim.Time) {
			for _, f := range deactivated {
				f(home, block, at)
			}
		}
	}
	if len(tokens) == 1 {
		m.TokensTransferred = tokens[0]
	} else if len(tokens) > 1 {
		m.TokensTransferred = func(proc int, block msg.Block, n int, at sim.Time) {
			for _, f := range tokens {
				f(proc, block, n, at)
			}
		}
	}
	if len(hops) == 1 {
		m.NetworkHop = hops[0]
	} else if len(hops) > 1 {
		m.NetworkHop = func(link int, cat msg.Category, bytes int, at sim.Time) {
			for _, f := range hops {
				f(link, cat, bytes, at)
			}
		}
	}
	if len(started) == 1 {
		m.MeasurementStarted = started[0]
	} else if len(started) > 1 {
		m.MeasurementStarted = func(at sim.Time) {
			for _, f := range started {
				f(at)
			}
		}
	}
	return m
}
