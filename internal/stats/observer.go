package stats

import (
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// Observer subscribes to simulation events so probes can derive metrics
// the fixed Run counters do not carry (latency CDFs, per-block heat,
// inter-reissue intervals, ...). Every field is optional; a nil Observer
// is valid and free. The simulation fires events through the nil-safe
// On* methods, so with no observer attached — the default — the hot path
// pays a single nil check per event site and allocates nothing.
//
// Events fire during warmup too; metrics a probe registers in the run's
// MetricSet are zeroed automatically at the warmup boundary (see
// MetricSet.Reset), so most probes need no warmup handling of their own.
type Observer struct {
	// MissIssued fires when a processor's access misses and a new
	// coherence transaction starts.
	MissIssued func(proc int, block msg.Block, write bool, at sim.Time)
	// MissCompleted fires when the miss commits, with its reissue count,
	// whether it escalated to a persistent request, and its latency.
	MissCompleted func(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time)
	// Reissued fires when a Token Coherence transient request times out
	// and is reissued (attempt counts from 1).
	Reissued func(proc int, block msg.Block, attempt int, at sim.Time)
	// PersistentActivated fires when a home arbiter activates a
	// persistent request (the starvation-avoidance mechanism engaging).
	PersistentActivated func(home int, block msg.Block, at sim.Time)
	// TokensTransferred fires when a cache controller receives a
	// token-carrying message.
	TokensTransferred func(proc int, block msg.Block, tokens int, at sim.Time)
	// NetworkHop fires for every interconnect link traversal (unicast
	// hops and multicast tree edges; local same-node deliveries cross no
	// link and fire nothing).
	NetworkHop func(link int, cat msg.Category, bytes int, at sim.Time)
}

// OnMissIssued fires MissIssued if subscribed. Safe on a nil receiver.
func (o *Observer) OnMissIssued(proc int, block msg.Block, write bool, at sim.Time) {
	if o != nil && o.MissIssued != nil {
		o.MissIssued(proc, block, write, at)
	}
}

// OnMissCompleted fires MissCompleted if subscribed. Safe on a nil receiver.
func (o *Observer) OnMissCompleted(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time) {
	if o != nil && o.MissCompleted != nil {
		o.MissCompleted(proc, block, reissues, persistent, latency)
	}
}

// OnReissued fires Reissued if subscribed. Safe on a nil receiver.
func (o *Observer) OnReissued(proc int, block msg.Block, attempt int, at sim.Time) {
	if o != nil && o.Reissued != nil {
		o.Reissued(proc, block, attempt, at)
	}
}

// OnPersistentActivated fires PersistentActivated if subscribed. Safe on
// a nil receiver.
func (o *Observer) OnPersistentActivated(home int, block msg.Block, at sim.Time) {
	if o != nil && o.PersistentActivated != nil {
		o.PersistentActivated(home, block, at)
	}
}

// OnTokensTransferred fires TokensTransferred if subscribed. Safe on a
// nil receiver.
func (o *Observer) OnTokensTransferred(proc int, block msg.Block, tokens int, at sim.Time) {
	if o != nil && o.TokensTransferred != nil {
		o.TokensTransferred(proc, block, tokens, at)
	}
}

// OnNetworkHop fires NetworkHop if subscribed. Safe on a nil receiver.
func (o *Observer) OnNetworkHop(link int, cat msg.Category, bytes int, at sim.Time) {
	if o != nil && o.NetworkHop != nil {
		o.NetworkHop(link, cat, bytes, at)
	}
}

// MergeObservers fans events out to both observers (either may be nil;
// merging with nil returns the other unchanged). Attaching n probes
// builds a chain of depth n once, before the simulation starts. The
// merged observer subscribes to an event only when at least one operand
// does, so events nobody watches keep their single-nil-check fast path.
func MergeObservers(a, b *Observer) *Observer {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	m := &Observer{}
	if a.MissIssued != nil || b.MissIssued != nil {
		m.MissIssued = func(proc int, block msg.Block, write bool, at sim.Time) {
			a.OnMissIssued(proc, block, write, at)
			b.OnMissIssued(proc, block, write, at)
		}
	}
	if a.MissCompleted != nil || b.MissCompleted != nil {
		m.MissCompleted = func(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time) {
			a.OnMissCompleted(proc, block, reissues, persistent, latency)
			b.OnMissCompleted(proc, block, reissues, persistent, latency)
		}
	}
	if a.Reissued != nil || b.Reissued != nil {
		m.Reissued = func(proc int, block msg.Block, attempt int, at sim.Time) {
			a.OnReissued(proc, block, attempt, at)
			b.OnReissued(proc, block, attempt, at)
		}
	}
	if a.PersistentActivated != nil || b.PersistentActivated != nil {
		m.PersistentActivated = func(home int, block msg.Block, at sim.Time) {
			a.OnPersistentActivated(home, block, at)
			b.OnPersistentActivated(home, block, at)
		}
	}
	if a.TokensTransferred != nil || b.TokensTransferred != nil {
		m.TokensTransferred = func(proc int, block msg.Block, tokens int, at sim.Time) {
			a.OnTokensTransferred(proc, block, tokens, at)
			b.OnTokensTransferred(proc, block, tokens, at)
		}
	}
	if a.NetworkHop != nil || b.NetworkHop != nil {
		m.NetworkHop = func(link int, cat msg.Category, bytes int, at sim.Time) {
			a.OnNetworkHop(link, cat, bytes, at)
			b.OnNetworkHop(link, cat, bytes, at)
		}
	}
	return m
}
