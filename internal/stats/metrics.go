package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// MetricKind distinguishes how a metric's value is produced.
type MetricKind uint8

const (
	// KindCounter is a monotonically increasing event count owned by the
	// MetricSet and zeroed by Reset (the warmup boundary).
	KindCounter MetricKind = iota
	// KindGauge is a point-in-time value owned by the MetricSet.
	KindGauge
	// KindHistogram is a latency distribution owned by the MetricSet; its
	// scalar snapshot value is the distribution mean in nanoseconds.
	KindHistogram
	// KindDerived is computed on demand from state owned elsewhere (the
	// Run struct, the network, a protocol controller).
	KindDerived
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindDerived:
		return "derived"
	}
	return fmt.Sprintf("MetricKind(%d)", uint8(k))
}

// Desc is one metric's schema entry: the stable name sinks and column
// selectors use, the unit and help text discovery surfaces show, and the
// CSV format verb that keeps text output stable. Kind is filled by the
// MetricSet registration method.
type Desc struct {
	Name string
	Unit string
	Help string
	// Fmt is the fmt verb used to render the value in CSV columns
	// (default "%g").
	Fmt  string
	Kind MetricKind
}

func (d Desc) withDefaults(kind MetricKind) Desc {
	if d.Fmt == "" {
		d.Fmt = "%g"
	}
	d.Kind = kind
	return d
}

// Counter is a monotonically increasing event count. The nil Counter is
// valid and discards increments, so components may count unconditionally
// whether or not they were wired to a MetricSet.
//
// Increments are atomic: a counter registered once and shared by many
// components (one per cache controller, say) may be bumped from several
// islands of a parallel run concurrently. Addition commutes, so the
// final value is identical at any island count.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		atomic.AddUint64(&c.n, 1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		atomic.AddUint64(&c.n, n)
	}
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return atomic.LoadUint64(&c.n)
}

// Gauge is a point-in-time value. The nil Gauge is valid and inert.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value reports the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// metric is one registered entry: its schema plus exactly one value
// source according to Kind.
type metric struct {
	desc Desc
	ctr  *Counter
	gge  *Gauge
	hist *Histogram
	read func() float64
}

func (m *metric) value() float64 {
	switch m.desc.Kind {
	case KindCounter:
		return float64(m.ctr.Value())
	case KindGauge:
		return m.gge.Value()
	case KindHistogram:
		return m.hist.Mean().Nanoseconds()
	default:
		return m.read()
	}
}

// MetricSet is a run's named-metric registry: every component of a
// simulation publishes its measurements here under a stable name, and
// sinks, column selectors, and the -list-metrics discovery surface read
// them back by name. Names list in registration order, which is
// deterministic for a fixed component set, so schemas — like the
// component registry's Names() — are reproducible run to run.
//
// A MetricSet belongs to one simulated System and is not safe for
// concurrent use; the engine gives every point its own.
type MetricSet struct {
	names   []string
	metrics map[string]*metric
}

// NewMetricSet returns an empty set.
func NewMetricSet() *MetricSet {
	return &MetricSet{metrics: make(map[string]*metric)}
}

// add registers m under its name. Re-registering the same name is
// allowed only when the descriptor matches exactly and the kind owns
// shared storage (counter/gauge/histogram): per-node components (16
// cache controllers, 16 arbiters) then share one instance. A name
// collision with a different descriptor is mis-wiring and panics, like
// the component registry's duplicate names.
func (ms *MetricSet) add(m *metric) *metric {
	if m.desc.Name == "" {
		panic("stats: metric with empty name")
	}
	if prev, ok := ms.metrics[m.desc.Name]; ok {
		if m.desc.Kind == KindDerived {
			panic(fmt.Sprintf("stats: derived metric %q registered twice; derived metrics have no shared storage to dedupe onto (previously registered as %+v)",
				m.desc.Name, prev.desc))
		}
		if prev.desc != m.desc {
			panic(fmt.Sprintf("stats: metric %q re-registered with a different descriptor (%+v vs %+v)",
				m.desc.Name, prev.desc, m.desc))
		}
		return prev
	}
	ms.metrics[m.desc.Name] = m
	ms.names = append(ms.names, m.desc.Name)
	return m
}

// Counter registers (or, for an identical descriptor, returns the
// already-registered) counter metric.
func (ms *MetricSet) Counter(d Desc) *Counter {
	m := ms.add(&metric{desc: d.withDefaults(KindCounter), ctr: &Counter{}})
	return m.ctr
}

// Gauge registers (or returns the already-registered) gauge metric.
func (ms *MetricSet) Gauge(d Desc) *Gauge {
	m := ms.add(&metric{desc: d.withDefaults(KindGauge), gge: &Gauge{}})
	return m.gge
}

// Histogram registers (or returns the already-registered) histogram
// metric. The metric's scalar snapshot value is the distribution mean in
// nanoseconds; register Derived companions for quantiles.
func (ms *MetricSet) Histogram(d Desc) *Histogram {
	m := ms.add(&metric{desc: d.withDefaults(KindHistogram), hist: &Histogram{}})
	return m.hist
}

// Derived registers a metric computed by read at snapshot time, for
// measurements whose storage lives elsewhere (Run fields, ratios).
func (ms *MetricSet) Derived(d Desc, read func() float64) {
	if read == nil {
		panic(fmt.Sprintf("stats: derived metric %q with nil read function", d.Name))
	}
	ms.add(&metric{desc: d.withDefaults(KindDerived), read: read})
}

// Names lists the registered metric names in registration order.
func (ms *MetricSet) Names() []string {
	out := make([]string, len(ms.names))
	copy(out, ms.names)
	return out
}

// Descs lists the full schema in registration order.
func (ms *MetricSet) Descs() []Desc {
	out := make([]Desc, len(ms.names))
	for i, name := range ms.names {
		out[i] = ms.metrics[name].desc
	}
	return out
}

// Lookup returns the named metric's schema entry.
func (ms *MetricSet) Lookup(name string) (Desc, bool) {
	m, ok := ms.metrics[name]
	if !ok {
		return Desc{}, false
	}
	return m.desc, true
}

// Value reads the named metric's current scalar value.
func (ms *MetricSet) Value(name string) (float64, bool) {
	m, ok := ms.metrics[name]
	if !ok {
		return 0, false
	}
	return m.value(), true
}

// Reset zeroes every counter, gauge, and histogram the set owns; derived
// metrics reset with the state they read. The machine calls this at the
// end of cache warmup together with Run.Reset, so probe-registered
// metrics observe exactly the measured interval without any bookkeeping
// in the probe.
func (ms *MetricSet) Reset() {
	for _, name := range ms.names {
		m := ms.metrics[name]
		switch m.desc.Kind {
		case KindCounter:
			atomic.StoreUint64(&m.ctr.n, 0)
		case KindGauge:
			m.gge.v = 0
		case KindHistogram:
			*m.hist = Histogram{}
		}
	}
}

// Snapshot captures every metric's value. The engine snapshots each
// point's MetricSet after its run so sinks and column selectors read
// stable values regardless of emission timing.
func (ms *MetricSet) Snapshot() *Snapshot {
	s := &Snapshot{
		descs:  make([]Desc, len(ms.names)),
		values: make([]float64, len(ms.names)),
		index:  make(map[string]int, len(ms.names)),
	}
	for i, name := range ms.names {
		m := ms.metrics[name]
		s.descs[i] = m.desc
		s.values[i] = m.value()
		s.index[name] = i
	}
	return s
}

// Snapshot is an immutable capture of a MetricSet: the schema plus one
// scalar value per metric, in registration order.
type Snapshot struct {
	descs  []Desc
	values []float64
	index  map[string]int
}

// Len reports the number of captured metrics.
func (s *Snapshot) Len() int { return len(s.descs) }

// Names lists the captured metric names in schema order.
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.descs))
	for i, d := range s.descs {
		out[i] = d.Name
	}
	return out
}

// Descs lists the captured schema in order.
func (s *Snapshot) Descs() []Desc {
	out := make([]Desc, len(s.descs))
	copy(out, s.descs)
	return out
}

// Value returns the named metric's captured value.
func (s *Snapshot) Value(name string) (float64, bool) {
	i, ok := s.index[name]
	if !ok {
		return 0, false
	}
	return s.values[i], true
}

// Desc returns the named metric's schema entry.
func (s *Snapshot) Desc(name string) (Desc, bool) {
	i, ok := s.index[name]
	if !ok {
		return Desc{}, false
	}
	return s.descs[i], true
}

// Formatted renders the named metric with its declared CSV format verb.
func (s *Snapshot) Formatted(name string) (string, bool) {
	i, ok := s.index[name]
	if !ok {
		return "", false
	}
	return fmt.Sprintf(s.descs[i].Fmt, s.values[i]), true
}

// FiniteMap returns name → value for every metric whose value is finite,
// for JSON serialization (JSON has no encoding for Inf/NaN, which e.g.
// cycles_per_txn reports when a run completes no transactions).
func (s *Snapshot) FiniteMap() map[string]float64 {
	out := make(map[string]float64, len(s.descs))
	for i, d := range s.descs {
		if v := s.values[i]; !math.IsInf(v, 0) && !math.IsNaN(v) {
			out[d.Name] = v
		}
	}
	return out
}
