package stats

import (
	"fmt"
	"strings"

	"tokencoherence/internal/sim"
)

// Histogram is a power-of-two-bucketed latency histogram. Bucket i
// counts samples in [2^i, 2^(i+1)) nanoseconds, with bucket 0 also
// absorbing sub-nanosecond samples. It separates the fast common case
// from the reissue/persistent tail that Token Coherence's adaptive
// timeout must adapt to.
type Histogram struct {
	buckets [32]uint64
	count   uint64
	sum     sim.Time
	max     sim.Time
}

// Observe records one latency sample.
func (h *Histogram) Observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d / sim.Nanosecond)
	b := 0
	for ns > 1 && b < len(h.buckets)-1 {
		ns >>= 1
		b++
	}
	h.buckets[b]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Merge folds other's samples into h (bucket-wise), so per-seed
// distributions can aggregate into one grid-cell distribution.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Mean reports the mean latency.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Max reports the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Quantile approximates the q-quantile (0 < q <= 1) from the buckets,
// returning the upper bound of the bucket containing it.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 || q <= 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			return sim.Time(uint64(1)<<uint(i+1)) * sim.Nanosecond
		}
	}
	return h.max
}

// String renders the non-empty buckets as a compact table.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram: empty"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram: n=%d mean=%v max=%v\n", h.count, h.Mean(), h.max)
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := uint64(1) << uint(i)
		if i == 0 {
			lo = 0
		}
		fmt.Fprintf(&sb, "  [%4dns, %4dns): %6d (%5.1f%%)\n",
			lo, uint64(1)<<uint(i+1), c, 100*float64(c)/float64(h.count))
	}
	return strings.TrimRight(sb.String(), "\n")
}
