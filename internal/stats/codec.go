package stats

import (
	"encoding/json"
	"fmt"
	"strconv"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// This file makes a run's results durable: Traffic, Histogram, and
// Snapshot (and therefore Run, whose remaining fields are plain exported
// integers) round-trip through JSON exactly. The result store
// (internal/resultstore) persists completed points in this encoding and
// the engine replays decoded results through the normal sink path, so a
// recalled point must reproduce every CSV cell and JSONL field byte for
// byte. Integer counters are exact in JSON; float64 metric values are
// encoded as strings via strconv's shortest round-trip form because JSON
// numbers cannot carry the Inf/NaN a transaction-less run legitimately
// reports.

// floatString encodes f in the shortest form that parses back to the
// identical float64, including the non-finite values JSON numbers cannot
// express.
func floatString(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func parseFloatString(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// trafficJSON is Traffic's wire form: per-category byte and
// link-traversal counts in category order.
type trafficJSON struct {
	Bytes    []uint64 `json:"bytes"`
	Messages []uint64 `json:"messages"`
}

// MarshalJSON implements json.Marshaler.
func (t Traffic) MarshalJSON() ([]byte, error) {
	return json.Marshal(trafficJSON{Bytes: t.bytes[:], Messages: t.messages[:]})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Traffic) UnmarshalJSON(data []byte) error {
	var w trafficJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Bytes) != msg.NumCategories || len(w.Messages) != msg.NumCategories {
		return fmt.Errorf("stats: traffic with %d/%d categories, want %d (stale store entry?)",
			len(w.Bytes), len(w.Messages), msg.NumCategories)
	}
	*t = Traffic{}
	copy(t.bytes[:], w.Bytes)
	copy(t.messages[:], w.Messages)
	return nil
}

// histogramJSON is Histogram's wire form.
type histogramJSON struct {
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     sim.Time `json:"sum"`
	Max     sim.Time `json:"max"`
}

// MarshalJSON implements json.Marshaler.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Buckets: h.buckets[:], Count: h.count, Sum: h.sum, Max: h.max})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Buckets) != len(h.buckets) {
		return fmt.Errorf("stats: histogram with %d buckets, want %d (stale store entry?)",
			len(w.Buckets), len(h.buckets))
	}
	*h = Histogram{count: w.Count, sum: w.Sum, max: w.Max}
	copy(h.buckets[:], w.Buckets)
	return nil
}

// snapshotJSON is Snapshot's wire form: the schema in registration order
// plus one string-encoded value per metric (see floatString).
type snapshotJSON struct {
	Descs  []Desc   `json:"descs"`
	Values []string `json:"values"`
}

// MarshalJSON implements json.Marshaler.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	w := snapshotJSON{Descs: s.descs, Values: make([]string, len(s.values))}
	for i, v := range s.values {
		w.Values[i] = floatString(v)
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var w snapshotJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Descs) != len(w.Values) {
		return fmt.Errorf("stats: snapshot with %d descs but %d values", len(w.Descs), len(w.Values))
	}
	*s = Snapshot{
		descs:  w.Descs,
		values: make([]float64, len(w.Values)),
		index:  make(map[string]int, len(w.Descs)),
	}
	for i, raw := range w.Values {
		v, err := parseFloatString(raw)
		if err != nil {
			return fmt.Errorf("stats: snapshot value %d (%s): %w", i, w.Descs[i].Name, err)
		}
		s.values[i] = v
		s.index[w.Descs[i].Name] = i
	}
	return nil
}
