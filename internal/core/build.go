package core

import (
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
)

// TokenSystem bundles the per-node components of a Token Coherence
// machine so tests and the harness can audit them after a run.
type TokenSystem struct {
	Caches   []*TokenB
	Mems     []*Memory
	Arbiters []*Arbiter
	Ledger   *Ledger
}

// WithPolicy returns a constructor that raises a performance policy to
// a complete protocol on the correctness substrate: token-counting cache
// and home memory controllers, persistent-request arbiters, and the
// conservation ledger, with the policy deciding where transient requests
// go. Every cache controller receives a fresh policy from newPolicy, so
// stateful predictors need no synchronization. hints enables the home
// memory's soft-state hint tracking (TokenD/TokenM-style redirection of
// home-bound requests to probable holders).
//
// This is the paper's decoupling as an API: because the substrate
// guarantees safety and starvation freedom regardless of destination
// sets, any Policy — however speculative — yields a correct protocol.
func WithPolicy(newPolicy func() Policy, hints bool) func(*machine.System) *TokenSystem {
	return func(sys *machine.System) *TokenSystem { return build(sys, newPolicy, hints) }
}

// BuildTokenB constructs the complete Token Coherence system on sys: a
// TokenB cache controller, a token-holding home memory controller, and a
// persistent-request arbiter per node, all registered on the network.
func BuildTokenB(sys *machine.System) *TokenSystem {
	return WithPolicy(NewBroadcastPolicy, false)(sys)
}

// BuildTokenD constructs the directory-like performance protocol of §7:
// transient requests go to the home, whose soft-state hints redirect
// them to probable holders. Same substrate, a fraction of the request
// bandwidth.
func BuildTokenD(sys *machine.System) *TokenSystem {
	return WithPolicy(NewHomePolicy, true)(sys)
}

// BuildTokenM constructs the destination-set-prediction performance
// protocol of §7: multicast to predicted holders plus the home, with
// broadcast fallback on reissue.
func BuildTokenM(sys *machine.System) *TokenSystem {
	return WithPolicy(NewPredictPolicy, true)(sys)
}

func build(sys *machine.System, policy func() Policy, hints bool) *TokenSystem {
	n := sys.Cfg.Procs
	ts := &TokenSystem{Ledger: NewLedger(sys.Cfg.TokensPerBlock)}
	// byNode is resolved lazily: only scoped policies need cluster
	// metadata, and engine validation rejects scoped protocols on
	// topologies without it before construction starts.
	var byNode []machine.Scope
	for i := 0; i < n; i++ {
		id := msg.NodeID(i)
		p := policy()
		if sp, ok := p.(ScopedPolicy); ok {
			if byNode == nil {
				var err error
				_, byNode, err = sys.ScopesFor()
				if err != nil {
					panic(err)
				}
			}
			sp.BindScope(byNode[i])
		}
		ts.Caches = append(ts.Caches, NewTokenController(sys, id, ts.Ledger, p))
		mem := NewMemory(sys, id, ts.Ledger)
		if hints {
			mem.EnableHints()
		}
		ts.Mems = append(ts.Mems, mem)
		ts.Arbiters = append(ts.Arbiters, NewArbiter(sys, id))
	}
	return ts
}

// Controllers adapts the cache controllers for machine.System.Execute.
func (ts *TokenSystem) Controllers() []machine.Controller {
	out := make([]machine.Controller, len(ts.Caches))
	for i, c := range ts.Caches {
		out[i] = c
	}
	return out
}

// Audit verifies global token conservation (invariant #1') for every
// block the system touched: tokens held in caches and memories plus
// tokens in flight must equal T, with exactly one owner token. Combined
// with the per-message checks, a nil result means the substrate's safety
// invariants held for the whole run.
func (ts *TokenSystem) Audit() error {
	type held struct {
		tokens int
		owners int
	}
	sums := make(map[msg.Block]held)
	// Gather cache-held tokens.
	for _, c := range ts.Caches {
		c.ForEachLine(func(b msg.Block, tokens int, owner bool) {
			h := sums[b]
			h.tokens += tokens
			if owner {
				h.owners++
			}
			sums[b] = h
		})
	}
	// Gather memory-held tokens.
	for _, m := range ts.Mems {
		for b, l := range m.lines {
			h := sums[b]
			h.tokens += l.tokens
			if l.owner {
				h.owners++
			}
			sums[b] = h
		}
	}
	for _, b := range ts.Ledger.Blocks() {
		h := sums[b]
		ts.Ledger.CheckConservation(b, h.tokens, h.owners)
	}
	return ts.Ledger.Err()
}
