package core

import (
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

// nullPolicy never sends transient requests anywhere: every miss must
// time out and be rescued by the correctness substrate's persistent
// requests. The paper: "A null or random performance protocol would
// perform poorly but not incorrectly."
type nullPolicy struct{}

func (nullPolicy) Name() string                  { return "null" }
func (nullPolicy) Observe(*TokenB, *msg.Message) {}
func (nullPolicy) Destinations(_ *TokenB, _ *machine.MSHR, _ bool, buf []msg.Port) []msg.Port {
	return buf
}

// randomPolicy sends each request to a random subset of nodes — often
// the wrong ones. Correctness must be unaffected.
type randomPolicy struct {
	rng *sim.Source
}

func (*randomPolicy) Name() string                  { return "random" }
func (*randomPolicy) Observe(*TokenB, *msg.Message) {}

func (p *randomPolicy) Destinations(c *TokenB, m *machine.MSHR, _ bool, buf []msg.Port) []msg.Port {
	dsts := buf
	for i := 0; i < c.Cfg.Procs; i++ {
		if msg.NodeID(i) != c.ID && p.rng.Bool(0.3) {
			dsts = append(dsts, msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache})
		}
	}
	if p.rng.Bool(0.5) {
		dsts = append(dsts, c.HomePort(m.Block))
	}
	return dsts
}

// buildWithPolicy assembles a token system whose caches all use the
// given policy.
func buildWithPolicy(sys *machine.System, policy func() Policy) *TokenSystem {
	n := sys.Cfg.Procs
	ts := &TokenSystem{Ledger: NewLedger(sys.Cfg.TokensPerBlock)}
	for i := 0; i < n; i++ {
		id := msg.NodeID(i)
		ts.Caches = append(ts.Caches, NewTokenController(sys, id, ts.Ledger, policy()))
		ts.Mems = append(ts.Mems, NewMemory(sys, id, ts.Ledger))
		ts.Arbiters = append(ts.Arbiters, NewArbiter(sys, id))
	}
	return ts
}

// TestNullPerformanceProtocolIsCorrect is the paper's §4.1 claim made
// executable: with no transient requests at all, every miss escalates to
// a persistent request, yet all operations complete coherently.
func TestNullPerformanceProtocolIsCorrect(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Procs = 4
	cfg.TokensPerBlock = 4
	// Keep timeouts short so the test does not crawl through 5 timeouts
	// per miss at full length.
	cfg.MaxReissues = 0
	cfg.BackoffFactor = 0
	sys := machine.NewSystem(cfg, topology.NewTorusFor(4), 11)
	ts := buildWithPolicy(sys, func() Policy { return nullPolicy{} })
	gen := &uniformGen{blocks: 8, pWrite: 0.5, think: 5 * sim.Nanosecond}
	run, err := sys.Execute(ts.Controllers(), gen, 40)
	if err != nil {
		t.Fatalf("null policy broke correctness: %v", err)
	}
	if err := ts.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if run.Misses.Persistent != run.Misses.Issued {
		t.Errorf("persistent=%d of %d misses; with a null policy every miss must be rescued by the substrate",
			run.Misses.Persistent, run.Misses.Issued)
	}
}

// TestRandomPerformanceProtocolIsCorrect fuzzes the request policy:
// random destination sets may starve transiently but never corrupt.
func TestRandomPerformanceProtocolIsCorrect(t *testing.T) {
	for _, seed := range []uint64{5, 6, 7} {
		seed := seed
		t.Run("", func(t *testing.T) {
			cfg := machine.DefaultConfig()
			cfg.Procs = 8
			cfg.TokensPerBlock = 8
			cfg.MaxReissues = 1
			cfg.BackoffFactor = 1
			sys := machine.NewSystem(cfg, topology.NewTorusFor(8), seed)
			rng := sim.NewSource(seed * 977)
			ts := buildWithPolicy(sys, func() Policy { return &randomPolicy{rng: rng.Split()} })
			gen := &uniformGen{blocks: 12, pWrite: 0.4, think: 4 * sim.Nanosecond}
			if _, err := sys.Execute(ts.Controllers(), gen, 60); err != nil {
				t.Fatalf("random policy broke correctness: %v", err)
			}
			if err := ts.Audit(); err != nil {
				t.Fatalf("audit: %v", err)
			}
		})
	}
}

// TestPolicyNamesAreDistinct keeps the registry honest.
func TestPolicyNamesAreDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Policy{broadcastPolicy{}, homePolicy{}, newPredictPolicy(), nullPolicy{}, &randomPolicy{}} {
		if names[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
}
