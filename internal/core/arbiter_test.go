package core

import (
	"testing"

	"tokencoherence/internal/interconnect"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

// arbiterRig wires an Arbiter to stub cache/memory handlers so its state
// machine can be unit-tested without full protocol controllers.
type arbiterRig struct {
	sys  *machine.System
	arb  *Arbiter
	acts []msg.Message // activations observed (any node)
	deas []msg.Message // deactivations observed
	// autoAck controls whether stubs acknowledge immediately.
	autoAck bool
}

func newArbiterRig(t *testing.T, procs int) *arbiterRig {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Procs = procs
	cfg.TokensPerBlock = procs
	sys := machine.NewSystem(cfg, topology.NewTorusFor(procs), 1)
	r := &arbiterRig{sys: sys, autoAck: true}
	r.arb = NewArbiter(sys, 0)
	stub := func(port msg.Port) interconnect.Handler {
		return interconnect.HandlerFunc(func(m *msg.Message) {
			switch m.Kind {
			case msg.KindPersistentActivate:
				r.acts = append(r.acts, *m)
				if r.autoAck {
					r.ack(port, m, msg.KindPersistentActivateAck)
				}
			case msg.KindPersistentDeactivate:
				r.deas = append(r.deas, *m)
				if r.autoAck {
					r.ack(port, m, msg.KindPersistentDeactivateAck)
				}
			}
		})
	}
	for i := 0; i < procs; i++ {
		p := msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache}
		sys.Net.Register(p, stub(p))
	}
	memPort := msg.Port{Node: 0, Unit: msg.UnitMem}
	sys.Net.Register(memPort, stub(memPort))
	return r
}

func (r *arbiterRig) ack(from msg.Port, m *msg.Message, kind msg.Kind) {
	r.sys.Net.Send(&msg.Message{
		Kind: kind, Src: from, Dst: m.Src, Addr: m.Addr, Seq: m.Seq,
	})
}

func (r *arbiterRig) request(starver msg.NodeID, b msg.Block) {
	p := msg.Port{Node: starver, Unit: msg.UnitCache}
	r.sys.Net.Send(&msg.Message{
		Kind: msg.KindPersistentReq, Src: p, Dst: r.arb.Port(),
		Addr: b.Base(), Requester: p,
	})
}

func (r *arbiterRig) deactivate(starver msg.NodeID, b msg.Block) {
	p := msg.Port{Node: starver, Unit: msg.UnitCache}
	r.sys.Net.Send(&msg.Message{
		Kind: msg.KindPersistentDeactivate, Src: p, Dst: r.arb.Port(),
		Addr: b.Base(),
	})
}

func TestArbiterActivatesAndInformsEveryNode(t *testing.T) {
	r := newArbiterRig(t, 4)
	r.request(2, 16) // block 16: home is node 0 (16 % 4 == 0)
	r.sys.K.Run()
	// 4 caches + home memory = 5 activation deliveries.
	if len(r.acts) != 5 {
		t.Fatalf("activation reached %d ports, want 5", len(r.acts))
	}
	for _, a := range r.acts {
		if a.Requester.Node != 2 {
			t.Errorf("activation names requester %v, want node 2", a.Requester)
		}
	}
	if r.arb.phase != arbActive {
		t.Errorf("arbiter phase = %d, want active", r.arb.phase)
	}
	if r.arb.Activations != 1 {
		t.Errorf("Activations = %d, want 1", r.arb.Activations)
	}
}

func TestArbiterDeactivationRoundTrip(t *testing.T) {
	r := newArbiterRig(t, 4)
	r.request(1, 16)
	r.sys.K.Run()
	r.deactivate(1, 16)
	r.sys.K.Run()
	if len(r.deas) != 5 {
		t.Fatalf("deactivation reached %d ports, want 5", len(r.deas))
	}
	if r.arb.phase != arbIdle || r.arb.QueueLen() != 0 {
		t.Errorf("arbiter not idle after deactivation: phase=%d queue=%d", r.arb.phase, r.arb.QueueLen())
	}
}

func TestArbiterServesQueueInFIFOOrder(t *testing.T) {
	r := newArbiterRig(t, 4)
	r.request(1, 16)
	r.request(3, 20) // queued behind node 1's request
	r.sys.K.Run()
	if r.arb.QueueLen() != 1 {
		t.Fatalf("queue length = %d, want 1 (one active, one queued)", r.arb.QueueLen())
	}
	if r.acts[0].Requester.Node != 1 {
		t.Fatalf("first activation for node %d, want 1 (FIFO)", r.acts[0].Requester.Node)
	}
	first := len(r.acts)
	r.deactivate(1, 16)
	r.sys.K.Run()
	if len(r.acts) != first+5 {
		t.Fatalf("second request not activated after first deactivated")
	}
	if r.acts[first].Requester.Node != 3 {
		t.Errorf("second activation for node %d, want 3", r.acts[first].Requester.Node)
	}
	if r.arb.Activations != 2 {
		t.Errorf("Activations = %d, want 2", r.arb.Activations)
	}
}

func TestArbiterDeactivateWhileActivating(t *testing.T) {
	// Withhold automatic acks so the arbiter stays in the activating
	// phase, then deliver the deactivation request: it must be held until
	// all activate acks arrive (the paper's "to avoid races" acks).
	r := newArbiterRig(t, 4)
	r.autoAck = false
	r.request(2, 16)
	r.sys.K.Run()
	if r.arb.phase != arbActivating {
		t.Fatalf("phase = %d, want activating (acks withheld)", r.arb.phase)
	}
	r.deactivate(2, 16)
	r.sys.K.Run()
	if r.arb.phase != arbActivating || len(r.deas) != 0 {
		t.Fatal("deactivation broadcast before activation was fully acknowledged")
	}
	// Now deliver the missing acks.
	for _, a := range r.acts {
		r.ack(a.Dst, &a, msg.KindPersistentActivateAck)
	}
	r.autoAck = true
	r.sys.K.Run()
	if len(r.deas) != 5 {
		t.Fatalf("deactivation did not proceed after acks: %d deliveries", len(r.deas))
	}
	if r.arb.phase != arbIdle {
		t.Errorf("phase = %d, want idle", r.arb.phase)
	}
}

func TestArbiterRejectsMismatchedDeactivation(t *testing.T) {
	r := newArbiterRig(t, 4)
	r.request(1, 16)
	r.sys.K.Run()
	defer func() {
		if recover() == nil {
			t.Error("mismatched deactivation did not panic")
		}
	}()
	// Node 3 never held the active request.
	r.deactivate(3, 16)
	r.sys.K.Run()
}

func TestArbiterRejectsSpuriousDeactivation(t *testing.T) {
	r := newArbiterRig(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("deactivation with no active request did not panic")
		}
	}()
	r.deactivate(1, 16)
	r.sys.K.Run()
}

func TestArbiterHandlesManyBlocksSequentially(t *testing.T) {
	// One arbiter serializes persistent requests even for different
	// blocks (the paper's simple centralized-per-home scheme); all must
	// eventually activate.
	r := newArbiterRig(t, 4)
	blocks := []msg.Block{16, 20, 24, 28}
	for i, b := range blocks {
		r.request(msg.NodeID(i%4), b)
	}
	for _, b := range blocks {
		r.sys.K.Run()
		// Deactivate whatever is currently active.
		cur := r.acts[len(r.acts)-1]
		if msg.BlockOf(cur.Addr) != b {
			t.Fatalf("activation order mismatch: got block %d, want %d", msg.BlockOf(cur.Addr), b)
		}
		r.deactivate(cur.Requester.Node, b)
	}
	r.sys.K.Run()
	if r.arb.Activations != 4 {
		t.Errorf("Activations = %d, want 4", r.arb.Activations)
	}
	_ = sim.Time(0)
}
