package core

import (
	"math/bits"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// trailingZeros64 is a tiny alias keeping the redirect loop readable.
func trailingZeros64(v uint64) int { return bits.TrailingZeros64(v) }

// memLine is the home memory's token state for one block. The paper
// stores it in ECC bits (valid bit, owner bit, token count: 2+log2(T)
// bits per block); we model the state, not the encoding.
type memLine struct {
	tokens int
	owner  bool
	valid  bool
	data   uint64
	dirty  bool
}

// Memory is the Token Coherence home memory controller for one node's
// slice of the address space. It participates in the substrate exactly
// like a cache: it holds tokens, responds to transient requests by
// policy, forwards tokens for active persistent requests, and accepts
// writebacks and redirected tokens unconditionally.
type Memory struct {
	sys *machine.System
	// isle is the controller's island context; event-time message
	// allocation and sends go through its network view.
	isle   *machine.Isle
	id     msg.NodeID
	ledger *Ledger
	lines  map[msg.Block]*memLine
	// persist tracks active persistent requests (block -> starver).
	persist map[msg.Block]msg.Port
	// hints, when enabled (TokenD/TokenM), holds soft-state directory
	// hints: a probable owner and probable sharers per block. Hints may
	// be stale; a bad redirect only delays a transient request.
	hints map[msg.Block]*hintLine
}

// hintLine is the soft-state directory entry for one block.
type hintLine struct {
	owner    msg.NodeID
	hasOwner bool
	sharers  uint64
}

// NewMemory builds the home memory controller for node id and registers
// it on the network.
func NewMemory(sys *machine.System, id msg.NodeID, ledger *Ledger) *Memory {
	m := &Memory{
		sys:     sys,
		isle:    sys.IsleFor(int(id)),
		id:      id,
		ledger:  ledger,
		lines:   make(map[msg.Block]*memLine),
		persist: make(map[msg.Block]msg.Port),
	}
	sys.Net.Register(m.Port(), m)
	return m
}

// Port returns the memory controller's network port.
func (m *Memory) Port() msg.Port { return msg.Port{Node: m.id, Unit: msg.UnitMem} }

// line returns the state for b, lazily creating it with all T tokens
// (system initialization: "the block's home memory module holds all
// tokens").
func (m *Memory) line(b msg.Block) *memLine {
	if l, ok := m.lines[b]; ok {
		return l
	}
	if m.sys.Scope.Home(b) != m.id {
		panic("core: memory accessed for block with a different home")
	}
	m.ledger.InitBlock(b)
	l := &memLine{tokens: m.ledger.T, owner: true, valid: true}
	m.lines[b] = l
	return l
}

// Tokens reports the tokens currently held for b (0 if untouched by this
// home). Used by the conservation audit and tests.
func (m *Memory) Tokens(b msg.Block) (tokens int, owner bool) {
	if l, ok := m.lines[b]; ok {
		return l.tokens, l.owner
	}
	return 0, false
}

// Handle implements interconnect.Handler.
func (m *Memory) Handle(mm *msg.Message) {
	switch mm.Kind {
	case msg.KindGetS, msg.KindGetM:
		m.handleTransient(mm)
	case msg.KindData, msg.KindTokens:
		m.receiveTokens(mm)
	case msg.KindPersistentActivate:
		m.handleActivate(mm)
	case msg.KindPersistentDeactivate:
		m.handleDeactivate(mm)
	default:
		panic("core: memory received unexpected " + mm.Kind.String())
	}
}

// respond builds and sends a token-carrying response after the memory
// access latency. State is mutated immediately (the tokens are committed
// to the message) so a racing request cannot double-send them.
func (m *Memory) respond(to msg.Port, b msg.Block, tokens int, owner bool, data uint64, dirty bool, lat sim.Time) {
	kind := msg.KindTokens
	cat := msg.CatControl
	hasData := owner // memory sends data exactly when the owner token moves
	if hasData {
		kind = msg.KindData
		cat = msg.CatData
	}
	m.ledger.Sent(b, tokens, owner, hasData)
	out := m.isle.Net.NewMessage()
	*out = msg.Message{
		Kind: kind, Cat: cat,
		Src: m.Port(), Dst: to, Addr: b.Base(),
		Tokens: tokens, Owner: owner, HasData: hasData, Data: data, Dirty: dirty,
	}
	m.isle.Net.SendAfter(out, lat)
}

// EnableHints turns on the soft-state redirect directory (TokenD and
// TokenM memories).
func (m *Memory) EnableHints() {
	m.hints = make(map[msg.Block]*hintLine)
}

func (m *Memory) hint(b msg.Block) *hintLine {
	h, ok := m.hints[b]
	if !ok {
		h = &hintLine{}
		m.hints[b] = h
	}
	return h
}

// redirect forwards a transient request towards probable token holders
// and updates the soft state. Hints can go stale (a migratory GetS moves
// ownership without the home seeing it), so a reissued request is
// forwarded to every node: the second attempt always reaches the real
// holders, keeping escalation to persistent requests rare.
func (m *Memory) redirect(mm *msg.Message, served bool) {
	b := msg.BlockOf(mm.Addr)
	h := m.hint(b)
	reqNode := mm.Requester.Node
	var targets []msg.Port
	addTarget := func(n msg.NodeID) {
		if n == reqNode {
			return
		}
		for _, t := range targets {
			if t.Node == n {
				return
			}
		}
		targets = append(targets, msg.Port{Node: n, Unit: msg.UnitCache})
	}
	if mm.Cat == msg.CatReissue {
		for _, n := range m.sys.Scope.Members(b) {
			addTarget(n)
		}
	} else {
		switch mm.Kind {
		case msg.KindGetS:
			// Data must come from the owner; redirect unless we served it.
			if !served && h.hasOwner {
				addTarget(h.owner)
			}
		case msg.KindGetM:
			// Every probable holder must give up tokens.
			if h.hasOwner {
				addTarget(h.owner)
			}
			for set := h.sharers; set != 0; {
				n := msg.NodeID(trailingZeros64(set))
				set &^= 1 << uint(n)
				addTarget(n)
			}
		}
	}
	if len(targets) > 0 {
		fwd := m.isle.Net.CloneMessage(mm)
		fwd.Src = m.Port()
		fwd.Cat = msg.CatRequest
		m.isle.Net.MulticastAfter(fwd, targets, m.sys.Cfg.CtrlLatency)
	}
	// Update soft state from the request stream.
	switch mm.Kind {
	case msg.KindGetS:
		h.sharers |= 1 << uint(reqNode)
	case msg.KindGetM:
		h.owner = reqNode
		h.hasOwner = true
		h.sharers = 0
	}
}

func (m *Memory) handleTransient(mm *msg.Message) {
	b := msg.BlockOf(mm.Addr)
	if _, active := m.persist[b]; active {
		return // tokens are pledged to the persistent requester
	}
	l := m.line(b)
	if m.hints != nil {
		served := l.owner && l.tokens > 0
		defer m.redirect(mm, served)
	}
	if l.tokens == 0 {
		return
	}
	cfg := m.sys.Cfg
	switch mm.Kind {
	case msg.KindGetS:
		if !l.owner {
			return // non-owner holders ignore shared requests
		}
		if l.tokens == 1 {
			// Only the owner token remains: it must move (with data).
			m.respond(mm.Requester, b, 1, true, l.data, l.dirty, cfg.CtrlLatency+cfg.MemLatency)
			l.tokens, l.owner, l.valid, l.dirty = 0, false, false, false
			return
		}
		// Keep the owner token, hand out one plain token with data.
		m.ledger.Sent(b, 1, false, true)
		out := m.isle.Net.NewMessage()
		*out = msg.Message{
			Kind: msg.KindData, Cat: msg.CatData,
			Src: m.Port(), Dst: mm.Requester, Addr: mm.Addr,
			Tokens: 1, HasData: true, Data: l.data, Dirty: l.dirty,
		}
		l.tokens--
		m.isle.Net.SendAfter(out, cfg.CtrlLatency+cfg.MemLatency)
	case msg.KindGetM:
		tokens, owner := l.tokens, l.owner
		lat := cfg.CtrlLatency
		if owner {
			lat += cfg.MemLatency // data read
		}
		m.respond(mm.Requester, b, tokens, owner, l.data, l.dirty, lat)
		l.tokens, l.owner, l.valid, l.dirty = 0, false, false, false
	}
}

func (m *Memory) receiveTokens(mm *msg.Message) {
	b := msg.BlockOf(mm.Addr)
	m.ledger.Received(b, mm.Tokens, mm.Owner)
	if starver, active := m.persist[b]; active {
		// Forward everything to the starving processor, per the
		// persistent-request rules.
		m.ledger.Sent(b, mm.Tokens, mm.Owner, mm.HasData)
		fwd := m.isle.Net.CloneMessage(mm)
		fwd.Src = m.Port()
		fwd.Dst = starver
		fwd.Cat = msg.CatControl
		if fwd.HasData {
			fwd.Cat = msg.CatData
		}
		m.isle.Net.SendAfter(fwd, m.sys.Cfg.CtrlLatency)
		return
	}
	l := m.line(b)
	l.tokens += mm.Tokens
	if mm.Owner {
		l.owner = true
		if m.hints != nil {
			m.hint(b).hasOwner = false // the memory owns again
		}
	}
	if mm.HasData {
		l.valid = true
		l.data = mm.Data
		l.dirty = false // data is now home; the memory copy is clean
	}
	if l.tokens == 0 {
		l.valid = false
	}
}

func (m *Memory) handleActivate(mm *msg.Message) {
	b := msg.BlockOf(mm.Addr)
	m.persist[b] = mm.Requester
	// Flush current tokens to the starver. The line is created lazily
	// here too: a persistent request may be the block's first-ever
	// coherence activity (e.g., under a performance protocol that sends
	// no transient requests at all).
	if l := m.line(b); l.tokens > 0 {
		m.respond(mm.Requester, b, l.tokens, l.owner, l.data, l.dirty, m.sys.Cfg.CtrlLatency+m.sys.Cfg.MemLatency)
		l.tokens, l.owner, l.valid, l.dirty = 0, false, false, false
	}
	m.ack(mm, msg.KindPersistentActivateAck)
}

func (m *Memory) handleDeactivate(mm *msg.Message) {
	delete(m.persist, msg.BlockOf(mm.Addr))
	m.ack(mm, msg.KindPersistentDeactivateAck)
}

func (m *Memory) ack(mm *msg.Message, kind msg.Kind) {
	out := m.isle.Net.NewMessage()
	*out = msg.Message{
		Kind: kind, Cat: msg.CatReissue,
		Src: m.Port(), Dst: mm.Src, Addr: mm.Addr, Seq: mm.Seq,
	}
	m.isle.Net.SendAfter(out, m.sys.Cfg.CtrlLatency)
}
