package core

import (
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
)

// Policy decides where a performance protocol sends transient requests.
// Because the correctness substrate guarantees safety and starvation
// freedom regardless, a policy can be aggressive (broadcast), frugal
// (home only), or predictive (multicast to a guessed destination set) —
// exactly the design space §7 of the paper describes. A policy that
// guesses wrong merely causes reissues, never incorrectness.
type Policy interface {
	// Destinations appends the ports a transient request is sent to onto
	// buf and returns the result. The caller owns buf and reuses it per
	// request, so implementations must not retain the returned slice.
	Destinations(c *TokenB, m *machine.MSHR, reissue bool, buf []msg.Port) []msg.Port
	// Observe trains the policy on an incoming token-carrying message.
	Observe(c *TokenB, mm *msg.Message)
	// Name identifies the resulting protocol.
	Name() string
}

// ScopedPolicy is a Policy that additionally wants the issuing node's
// cluster scope (the coherence realm derived from topology cluster
// metadata). The builder binds it once at construction time, before any
// traffic, so Destinations can consult cluster membership without
// re-deriving it per request.
type ScopedPolicy interface {
	Policy
	BindScope(machine.Scope)
}

// NewBroadcastPolicy returns TokenB's policy: broadcast every transient
// request to all other caches plus the home memory.
func NewBroadcastPolicy() Policy { return broadcastPolicy{} }

// NewHomePolicy returns TokenD's policy: send transient requests only to
// the home memory, whose soft-state hints redirect them (enable the
// hints with WithPolicy or TokenPolicy.Hints).
func NewHomePolicy() Policy { return homePolicy{} }

// NewPredictPolicy returns TokenM's policy: multicast to the predicted
// holders of the block's macro-region plus the home, with broadcast
// fallback on reissue.
func NewPredictPolicy() Policy { return newPredictPolicy() }

// broadcastPolicy is TokenB: every transient request goes to all other
// caches plus the home memory.
type broadcastPolicy struct{}

func (broadcastPolicy) Name() string { return "tokenb" }

func (broadcastPolicy) Observe(*TokenB, *msg.Message) {}

func (broadcastPolicy) Destinations(c *TokenB, m *machine.MSHR, _ bool, buf []msg.Port) []msg.Port {
	for _, n := range c.Scope.Members(m.Block) {
		if n != c.ID {
			buf = append(buf, msg.Port{Node: n, Unit: msg.UnitCache})
		}
	}
	return append(buf, c.HomePort(m.Block))
}

// homePolicy is TokenD, the directory-like performance protocol of §7:
// transient requests go only to the home memory, which redirects them to
// probable holders using soft-state hints. Bandwidth approaches a
// directory protocol's; stale hints cost only reissues.
type homePolicy struct{}

func (homePolicy) Name() string { return "tokend" }

func (homePolicy) Observe(*TokenB, *msg.Message) {}

func (homePolicy) Destinations(c *TokenB, m *machine.MSHR, _ bool, buf []msg.Port) []msg.Port {
	return append(buf, c.HomePort(m.Block))
}

// predictPolicy is TokenM, the destination-set prediction protocol of
// §7: first-issue requests are multicast to the nodes that recently
// supplied tokens for the block's macro-region plus the home; a reissue
// falls back to full broadcast. It trades a little latency on
// mispredictions for most of TokenB's latency at a fraction of its
// request bandwidth.
type predictPolicy struct {
	// regionShift groups blocks into macro-regions for prediction
	// (paper-style spatial predictors use 1KB regions: 4 blocks).
	regionShift uint
	// holders remembers the recent token suppliers per region.
	holders map[msg.Block]*holderSet
}

// holderSet is a tiny LRU of predicted destination nodes.
type holderSet struct {
	nodes [4]msg.NodeID
	n     int
}

func (h *holderSet) add(n msg.NodeID) {
	for i := 0; i < h.n; i++ {
		if h.nodes[i] == n {
			return
		}
	}
	if h.n < len(h.nodes) {
		h.nodes[h.n] = n
		h.n++
		return
	}
	copy(h.nodes[:], h.nodes[1:])
	h.nodes[len(h.nodes)-1] = n
}

func newPredictPolicy() *predictPolicy {
	return &predictPolicy{regionShift: 2, holders: make(map[msg.Block]*holderSet)}
}

func (p *predictPolicy) Name() string { return "tokenm" }

func (p *predictPolicy) region(b msg.Block) msg.Block { return b >> p.regionShift }

func (p *predictPolicy) Observe(c *TokenB, mm *msg.Message) {
	if mm.Src.Unit != msg.UnitCache {
		return
	}
	r := p.region(msg.BlockOf(mm.Addr))
	hs, ok := p.holders[r]
	if !ok {
		hs = &holderSet{}
		p.holders[r] = hs
	}
	hs.add(mm.Src.Node)
}

func (p *predictPolicy) Destinations(c *TokenB, m *machine.MSHR, reissue bool, buf []msg.Port) []msg.Port {
	if reissue {
		// Mispredicted: fall back to broadcast.
		return broadcastPolicy{}.Destinations(c, m, true, buf)
	}
	buf = append(buf, c.HomePort(m.Block))
	if hs, ok := p.holders[p.region(m.Block)]; ok {
		for i := 0; i < hs.n; i++ {
			if hs.nodes[i] != c.ID {
				buf = append(buf, msg.Port{Node: hs.nodes[i], Unit: msg.UnitCache})
			}
		}
	}
	return buf
}
