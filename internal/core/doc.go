// Package core implements Token Coherence (Martin, Hill & Wood, ISCA
// 2003): the correctness substrate that enforces safety by token
// counting and prevents starvation with persistent requests, and the
// TokenB performance protocol that broadcasts unordered transient
// requests.
//
// # Correctness substrate
//
// Every block has exactly T tokens (Config.TokensPerBlock), one of which
// is the owner token. The substrate maintains the paper's optimized
// invariants:
//
//	#1' Each block has T tokens in the system, one of them the owner.
//	#2' A processor may write a block only holding all T tokens.
//	#3' A processor may read a block only holding >=1 token and valid data.
//	#4' A message carrying the owner token must carry data.
//
// The Ledger audits these invariants at runtime: token sends and
// receives are counted per block, so created/destroyed tokens, negative
// in-flight counts, or owner tokens travelling without data are detected
// immediately, and an end-of-run audit checks global conservation.
//
// Starvation freedom comes from persistent requests: a processor that
// has reissued its transient request MaxReissues times invokes a
// persistent request at the block's home arbiter. The arbiter activates
// at most one persistent request at a time, informing every node; nodes
// acknowledge, record the activation in a table, and forward all present
// and future tokens for the block to the starving processor until the
// processor deactivates the request.
//
// # TokenB performance protocol
//
// TokenB broadcasts transient GetS/GetM requests to all other nodes and
// the home memory, responds like a MOSI snooping protocol (with the
// migratory-sharing optimization), and reissues requests after an
// adaptive timeout (twice the recent average miss latency plus a
// randomized exponential backoff).
//
// The package also provides TokenD and TokenM, two further performance
// protocols the paper sketches in Section 7, demonstrating that the
// substrate admits multiple performance policies unchanged. The design
// space is open: WithPolicy raises any user-written Policy to a complete
// protocol on the unmodified substrate, and internal/registry publishes
// such policies by name so the engine can run them like the built-ins.
package core
