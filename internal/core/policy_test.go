package core

import (
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

func newPolicySystem(t *testing.T, buildFn func(*machine.System) *TokenSystem, procs int, seed uint64) (*machine.System, *TokenSystem) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Procs = procs
	if cfg.TokensPerBlock < procs {
		cfg.TokensPerBlock = procs
	}
	sys := machine.NewSystem(cfg, topology.NewTorusFor(procs), seed)
	return sys, buildFn(sys)
}

func runPolicyStress(t *testing.T, buildFn func(*machine.System) *TokenSystem, seed uint64) *machine.System {
	t.Helper()
	sys, ts := newPolicySystem(t, buildFn, 16, seed)
	gen := &uniformGen{blocks: 24, pWrite: 0.4, think: 5 * sim.Nanosecond}
	if _, err := sys.Execute(ts.Controllers(), gen, 300); err != nil {
		t.Fatalf("execute: %v", err)
	}
	if err := ts.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	return sys
}

func TestTokenDStressIsCorrect(t *testing.T) {
	runPolicyStress(t, BuildTokenD, 101)
}

func TestTokenMStressIsCorrect(t *testing.T) {
	runPolicyStress(t, BuildTokenM, 102)
}

func TestTokenDBasicSharing(t *testing.T) {
	sys, ts := newPolicySystem(t, BuildTokenD, 4, 103)
	const addr = msg.Addr(0x1000)
	w := access(sys, ts.Caches[0], addr, true)
	finish(t, sys, ts, w)
	// The home's soft state now knows cache 0 owns the block; a read from
	// cache 2 must be redirected there and succeed.
	r := access(sys, ts.Caches[2], addr, false)
	finish(t, sys, ts, r)
	l := ts.Caches[2].L2.Lookup(msg.BlockOf(addr))
	if l == nil || l.Tokens == 0 || !l.Valid {
		t.Fatalf("redirected read failed: %+v", l)
	}
}

func TestTokenDUsesLessRequestTrafficThanTokenB(t *testing.T) {
	trafficOf := func(buildFn func(*machine.System) *TokenSystem) uint64 {
		sys, ts := newPolicySystem(t, buildFn, 16, 104)
		gen := &uniformGen{blocks: 512, pWrite: 0.3, think: 5 * sim.Nanosecond}
		if _, err := sys.Execute(ts.Controllers(), gen, 200); err != nil {
			t.Fatalf("execute: %v", err)
		}
		return sys.Run.Traffic.Bytes(msg.CatRequest)
	}
	b := trafficOf(BuildTokenB)
	d := trafficOf(BuildTokenD)
	if float64(d) > 0.5*float64(b) {
		t.Errorf("TokenD request bytes (%d) should be well under half of TokenB (%d)", d, b)
	}
}

func TestTokenMTrafficBetweenTokenDAndTokenB(t *testing.T) {
	trafficOf := func(buildFn func(*machine.System) *TokenSystem) uint64 {
		sys, ts := newPolicySystem(t, buildFn, 16, 105)
		gen := &uniformGen{blocks: 64, pWrite: 0.3, think: 5 * sim.Nanosecond}
		if _, err := sys.Execute(ts.Controllers(), gen, 200); err != nil {
			t.Fatalf("execute: %v", err)
		}
		return sys.Run.Traffic.Bytes(msg.CatRequest)
	}
	b := trafficOf(BuildTokenB)
	m := trafficOf(BuildTokenM)
	if m >= b {
		t.Errorf("TokenM request bytes (%d) not below TokenB (%d)", m, b)
	}
}

func TestHolderSetLRU(t *testing.T) {
	var h holderSet
	for _, n := range []msg.NodeID{1, 2, 3, 4} {
		h.add(n)
	}
	h.add(2) // duplicate: no change
	if h.n != 4 {
		t.Fatalf("n = %d, want 4", h.n)
	}
	h.add(5) // evicts 1
	found := map[msg.NodeID]bool{}
	for i := 0; i < h.n; i++ {
		found[h.nodes[i]] = true
	}
	if found[1] || !found[5] || !found[2] {
		t.Errorf("holder set after overflow = %v", h.nodes)
	}
}

func TestPredictPolicyFallsBackToBroadcastOnReissue(t *testing.T) {
	sys, ts := newPolicySystem(t, BuildTokenM, 4, 106)
	c := ts.Caches[0]
	m := &machine.MSHR{Block: 5}
	first := c.policy.Destinations(c, m, false, nil)
	re := c.policy.Destinations(c, m, true, nil)
	if len(first) != 1 {
		t.Errorf("untrained prediction sent to %d ports, want home only", len(first))
	}
	if len(re) != 4 { // 3 other caches + home
		t.Errorf("reissue sent to %d ports, want broadcast (4)", len(re))
	}
	_ = sys
}
