package core

import (
	"fmt"

	"tokencoherence/internal/cache"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// TokenB is the Token-Coherence-using-Broadcast performance protocol
// cache controller (paper §4.2): it broadcasts transient requests to all
// other nodes plus the home memory, responds to others' transient
// requests like a MOSI snooping protocol (with the migratory-sharing
// optimization), reissues unsatisfied requests after an adaptive
// randomized timeout, and escalates to a persistent request after
// Config.MaxReissues reissues.
type TokenB struct {
	machine.CacheBase
	ledger *Ledger
	policy Policy

	// reissues and tokenMsgs are the substrate's named metrics, shared
	// by every controller of the run (the MetricSet deduplicates the
	// per-node registrations).
	reissues  *stats.Counter
	tokenMsgs *stats.Counter

	// persist maps blocks with an active persistent request to the
	// starving processor's port (the node's hardware table).
	persist map[msg.Block]msg.Port
	// mineActive records, per block, the epoch of our own active
	// persistent request (0 = none). Epochs disambiguate a fresh request
	// from the tail of an earlier request's deactivation cycle.
	mineActive map[msg.Block]uint64
	// starving maps blocks to the MSHR that invoked a persistent request
	// (and its epoch) so satisfaction can be matched to deactivation.
	starving    map[msg.Block]*machine.MSHR
	starvingSeq map[msg.Block]uint64
	persistSeq  uint64

	// dsts is the transient-request destination scratch buffer, reused
	// across broadcasts (Multicast copies what it keeps).
	dsts []msg.Port
}

// NewTokenB builds node id's TokenB controller and registers it on the
// network.
func NewTokenB(sys *machine.System, id msg.NodeID, ledger *Ledger) *TokenB {
	return NewTokenController(sys, id, ledger, broadcastPolicy{})
}

// NewTokenController builds a Token Coherence cache controller with an
// arbitrary transient-request policy (TokenB, TokenD, TokenM, ...).
func NewTokenController(sys *machine.System, id msg.NodeID, ledger *Ledger, policy Policy) *TokenB {
	c := &TokenB{
		ledger:      ledger,
		policy:      policy,
		persist:     make(map[msg.Block]msg.Port),
		mineActive:  make(map[msg.Block]uint64),
		starving:    make(map[msg.Block]*machine.MSHR),
		starvingSeq: make(map[msg.Block]uint64),
	}
	c.InitBase(sys, id, c)
	c.reissues = sys.Metrics.Counter(stats.Desc{
		Name: "reissues", Unit: "count", Fmt: "%.0f",
		Help: "transient-request reissue broadcasts (Token Coherence)",
	})
	c.tokenMsgs = sys.Metrics.Counter(stats.Desc{
		Name: "token_transfers", Unit: "count", Fmt: "%.0f",
		Help: "token-carrying messages received by cache controllers",
	})
	sys.Net.Register(c.CachePort(), c)
	return c
}

// HasPermission implements machine.CacheHooks: reads need a token and
// valid data (invariant #3'), writes need all T tokens (invariant #2').
func (c *TokenB) HasPermission(l *cache.Line, write bool) bool {
	if write {
		return l.Tokens == c.ledger.T && l.Valid
	}
	return l.Tokens >= 1 && l.Valid
}

// StartMiss implements machine.CacheHooks: broadcast a transient request
// and arm the reissue timer.
func (c *TokenB) StartMiss(m *machine.MSHR) {
	c.broadcastTransient(m, msg.CatRequest)
	c.armTimer(m)
}

// broadcastTransient sends the transient request to the destinations the
// performance policy chooses (all nodes for TokenB, the home for TokenD,
// a predicted set for TokenM).
func (c *TokenB) broadcastTransient(m *machine.MSHR, cat msg.Category) {
	kind := msg.KindGetS
	if m.Write {
		kind = msg.KindGetM
	}
	req := c.Net.NewMessage()
	*req = msg.Message{
		Kind: kind, Cat: cat,
		Src: c.CachePort(), Addr: m.Block.Base(), Requester: c.CachePort(),
	}
	c.dsts = c.policy.Destinations(c, m, cat == msg.CatReissue, c.dsts[:0])
	c.Net.Multicast(req, c.dsts)
}

// maxReissueTimeout bounds the adaptive timeout so a burst of very slow
// (persistently-resolved) misses cannot feed back into ever-longer
// timeouts.
const maxReissueTimeout = 20 * sim.Microsecond

// armTimer schedules the reissue/starvation timeout: twice the recent
// average miss latency plus a randomized exponential backoff.
func (c *TokenB) armTimer(m *machine.MSHR) {
	shift := m.Reissues
	if shift > 6 {
		shift = 6
	}
	timeout := sim.Time(c.Cfg.BackoffFactor)*c.AvgMiss + c.Rng.Duration(c.Cfg.BackoffBase<<shift)
	if timeout > maxReissueTimeout {
		timeout = maxReissueTimeout
	}
	m.Timer = c.K.After(timeout, func() {
		m.Timer = nil
		c.onTimeout(m)
	})
}

func (c *TokenB) onTimeout(m *machine.MSHR) {
	if c.Outstanding[m.Block] != m {
		return // resolved in the same tick; timer raced with completion
	}
	if m.Reissues >= c.Cfg.MaxReissues {
		c.goPersistent(m)
		return
	}
	m.Reissues++
	c.reissues.Inc()
	if o := c.Isle.Obs; o != nil {
		o.OnReissued(int(c.ID), m.Block, m.Reissues, c.K.Now())
	}
	c.broadcastTransient(m, msg.CatReissue)
	c.armTimer(m)
}

// goPersistent invokes the correctness substrate's starvation-avoidance
// mechanism: a persistent request sent to the block's home arbiter,
// stamped with a per-node epoch so late activations of earlier requests
// cannot be confused with this one.
func (c *TokenB) goPersistent(m *machine.MSHR) {
	m.Persistent = true
	c.persistSeq++
	c.starving[m.Block] = m
	c.starvingSeq[m.Block] = c.persistSeq
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindPersistentReq, Cat: msg.CatReissue,
		Src:  c.CachePort(),
		Dst:  c.ArbiterPort(m.Block),
		Addr: m.Block.Base(), Requester: c.CachePort(),
		Acks: int(c.persistSeq),
	}
	c.Net.Send(out)
}

// EvictL2 implements machine.CacheHooks: evicted tokens (and data when
// the owner token moves) return to the home memory — unless an active
// persistent request redirects them to the starving processor.
func (c *TokenB) EvictL2(v cache.Line) {
	if v.Tokens == 0 {
		return // tag-only line (miss in progress); nothing to write back
	}
	dst := c.HomePort(v.Block)
	if starver, active := c.persist[v.Block]; active && starver != c.CachePort() {
		dst = starver
	}
	c.sendTokens(dst, v.Block, v.Tokens, v.Owner, v.Owner, v.Data, v.Dirty, 0)
}

// sendTokens emits a token-carrying message, keeping the ledger and
// invariant #4' (owner implies data) honest. State must already be
// deducted by the caller.
func (c *TokenB) sendTokens(to msg.Port, b msg.Block, tokens int, owner, hasData bool, data uint64, dirty bool, lat sim.Time) {
	if owner && !hasData {
		panic("core: owner token without data")
	}
	kind, cat := msg.KindTokens, msg.CatControl
	if hasData {
		kind, cat = msg.KindData, msg.CatData
	}
	c.ledger.Sent(b, tokens, owner, hasData)
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: kind, Cat: cat,
		Src: c.CachePort(), Dst: to, Addr: b.Base(),
		Tokens: tokens, Owner: owner, HasData: hasData, Data: data, Dirty: dirty,
	}
	if lat == 0 {
		c.Net.Send(out)
		return
	}
	c.Net.SendAfter(out, lat)
}

// Handle implements interconnect.Handler.
func (c *TokenB) Handle(m *msg.Message) {
	switch m.Kind {
	case msg.KindGetS, msg.KindGetM:
		c.handleTransient(m)
	case msg.KindData, msg.KindTokens:
		c.receiveTokens(m)
	case msg.KindPersistentActivate:
		c.handleActivate(m)
	case msg.KindPersistentDeactivate:
		c.handleDeactivate(m)
	default:
		panic("core: TokenB received unexpected " + m.Kind.String())
	}
}

// handleTransient applies the paper's MOSI response policy. Responses
// pay the L2 access latency; state is committed immediately so racing
// requests cannot double-send tokens.
func (c *TokenB) handleTransient(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	if _, active := c.persist[b]; active {
		return // active persistent request overrides the policy
	}
	l := c.L2.Lookup(b)
	if l == nil || l.Tokens == 0 {
		return // state I: ignore
	}
	lat := c.Cfg.L2Latency
	switch m.Kind {
	case msg.KindGetS:
		if !l.Owner {
			return // state S ignores shared requests
		}
		if c.Cfg.Migratory && l.Tokens == c.ledger.T && l.Written {
			// Migratory-sharing optimization: a modified block moves
			// wholesale, granting read/write permission.
			c.sendTokens(m.Requester, b, l.Tokens, true, true, l.Data, l.Dirty, lat)
			c.dropLine(b)
			return
		}
		if l.Tokens > 1 {
			// Keep the owner token; send data and one plain token.
			c.sendTokens(m.Requester, b, 1, false, true, l.Data, l.Dirty, lat)
			l.Tokens--
			return
		}
		// Only the owner token remains; it moves (with data).
		c.sendTokens(m.Requester, b, 1, true, true, l.Data, l.Dirty, lat)
		c.dropLine(b)
	case msg.KindGetM:
		if l.Owner {
			c.sendTokens(m.Requester, b, l.Tokens, true, true, l.Data, l.Dirty, lat)
		} else {
			// State S: all tokens leave in a dataless message (like an
			// invalidation acknowledgment).
			c.sendTokens(m.Requester, b, l.Tokens, false, false, 0, false, lat)
		}
		c.dropLine(b)
	}
}

// dropLine removes a block from both cache levels (tokens gone).
func (c *TokenB) dropLine(b msg.Block) {
	c.L2.Remove(b)
	c.DropL1(b)
}

func (c *TokenB) receiveTokens(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	c.ledger.Received(b, m.Tokens, m.Owner)
	c.tokenMsgs.Inc()
	if o := c.Isle.Obs; o != nil {
		o.OnTokensTransferred(int(c.ID), b, m.Tokens, c.K.Now())
	}
	c.policy.Observe(c, m)
	if starver, active := c.persist[b]; active && starver != c.CachePort() {
		// Tokens arriving while another node's persistent request is
		// active are forwarded to the starver, present and future alike.
		c.forwardTokens(starver, m)
		return
	}
	mshr := c.Outstanding[b]
	var l *cache.Line
	if mshr != nil {
		l = c.EnsureL2(b)
	} else {
		l = c.L2.Lookup(b)
	}
	if l == nil {
		// Unsolicited tokens with no resident line: redirect to the home
		// memory rather than pollute the cache.
		c.forwardTokens(c.HomePort(b), m)
		return
	}
	c.merge(l, m)
	if mshr != nil && c.satisfied(mshr, l) {
		c.completeTokenMiss(mshr)
	}
}

func (c *TokenB) forwardTokens(to msg.Port, m *msg.Message) {
	c.ledger.Sent(msg.BlockOf(m.Addr), m.Tokens, m.Owner, m.HasData)
	fwd := c.Net.CloneMessage(m)
	fwd.Src = c.CachePort()
	fwd.Dst = to
	fwd.Cat = msg.CatControl
	if fwd.HasData {
		fwd.Cat = msg.CatData
	}
	c.Net.SendAfter(fwd, c.Cfg.CtrlLatency)
}

// merge folds an arriving token message into a resident line.
func (c *TokenB) merge(l *cache.Line, m *msg.Message) {
	l.Tokens += m.Tokens
	if l.Tokens > c.ledger.T {
		panic(fmt.Sprintf("core: block %d accumulated %d tokens > T=%d", l.Block, l.Tokens, c.ledger.T))
	}
	if m.Owner {
		l.Owner = true
	}
	if m.HasData {
		if !l.Valid {
			l.Valid = true
			l.Data = m.Data
		}
		if m.Dirty {
			l.Dirty = true
		}
	}
}

func (c *TokenB) satisfied(m *machine.MSHR, l *cache.Line) bool {
	return c.HasPermission(l, m.Write)
}

func (c *TokenB) completeTokenMiss(m *machine.MSHR) {
	b := m.Block
	c.CompleteMiss(m)
	// Deactivate only when OUR epoch is the one currently active; if the
	// activation has not arrived yet (or an older epoch is still
	// draining), the deactivation is sent when the activation shows up.
	if m.Persistent && c.starving[b] == m && c.mineActive[b] == c.starvingSeq[b] && c.mineActive[b] != 0 {
		c.sendDeactivate(b)
		delete(c.starving, b)
		delete(c.starvingSeq, b)
	}
}

func (c *TokenB) sendDeactivate(b msg.Block) {
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindPersistentDeactivate, Cat: msg.CatReissue,
		Src:  c.CachePort(),
		Dst:  c.ArbiterPort(b),
		Addr: b.Base(),
	}
	c.Net.Send(out)
}

func (c *TokenB) handleActivate(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	c.persist[b] = m.Requester
	if m.Requester == c.CachePort() {
		epoch := uint64(m.Acks)
		c.mineActive[b] = epoch
		sm := c.starving[b]
		switch {
		case sm != nil && c.starvingSeq[b] == epoch && c.Outstanding[b] == sm:
			// Our starving miss is still outstanding; tokens will flow
			// and completion will deactivate.
		case sm != nil && c.starvingSeq[b] == epoch:
			// The starving miss was satisfied by a late transient
			// response before activation; deactivate immediately.
			c.sendDeactivate(b)
			delete(c.starving, b)
			delete(c.starvingSeq, b)
		default:
			// Activation of an older epoch whose miss resolved (and whose
			// bookkeeping was superseded by a newer request): release it.
			c.sendDeactivate(b)
		}
	} else if l := c.L2.Lookup(b); l != nil && l.Tokens > 0 {
		// Flush all tokens (and data with the owner token) to the
		// starving processor.
		c.sendTokens(m.Requester, b, l.Tokens, l.Owner, l.Owner, l.Data, l.Dirty, c.Cfg.L2Latency)
		c.dropLine(b)
	}
	c.ackArbiter(m, msg.KindPersistentActivateAck)
}

func (c *TokenB) handleDeactivate(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	delete(c.persist, b)
	if m.Requester == c.CachePort() && c.mineActive[b] == uint64(m.Acks) {
		delete(c.mineActive, b)
	}
	c.ackArbiter(m, msg.KindPersistentDeactivateAck)
}

// ForEachLine visits every resident L2 line's token state, for the
// conservation audit.
func (c *TokenB) ForEachLine(f func(b msg.Block, tokens int, owner bool)) {
	c.L2.ForEach(func(l *cache.Line) { f(l.Block, l.Tokens, l.Owner) })
}

func (c *TokenB) ackArbiter(m *msg.Message, kind msg.Kind) {
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: kind, Cat: msg.CatReissue,
		Src: c.CachePort(), Dst: m.Src, Addr: m.Addr, Seq: m.Seq,
	}
	c.Net.Send(out)
}
