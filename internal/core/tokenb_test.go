package core

import (
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

// newTokenSystem builds a TokenB machine on a 4x4 torus (or a smaller
// torus for fewer procs) with test-friendly defaults.
func newTokenSystem(t *testing.T, procs int, seed uint64, mutate func(*machine.Config)) (*machine.System, *TokenSystem) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Procs = procs
	if cfg.TokensPerBlock < procs {
		cfg.TokensPerBlock = procs
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys := machine.NewSystem(cfg, topology.NewTorusFor(procs), seed)
	return sys, BuildTokenB(sys)
}

// access drives one memory operation and returns a completion flag.
func access(sys *machine.System, c *TokenB, addr msg.Addr, write bool) *bool {
	done := new(bool)
	c.Access(machine.Op{Addr: addr, Write: write}, func() { *done = true })
	return done
}

func finish(t *testing.T, sys *machine.System, ts *TokenSystem, done ...*bool) {
	t.Helper()
	sys.K.Run()
	for i, d := range done {
		if !*d {
			t.Fatalf("operation %d did not complete (deadlock)", i)
		}
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if err := ts.Audit(); err != nil {
		t.Fatalf("token audit: %v", err)
	}
}

func TestSingleWriteThenRead(t *testing.T) {
	sys, ts := newTokenSystem(t, 4, 1, nil)
	c := ts.Caches[0]
	const addr = msg.Addr(0x1000)
	w := access(sys, c, addr, true)
	finish(t, sys, ts, w)
	// The writer must now hold all tokens.
	l := c.L2.Lookup(msg.BlockOf(addr))
	if l == nil || l.Tokens != ts.Ledger.T || !l.Owner || !l.Valid || !l.Dirty {
		t.Fatalf("writer line = %+v, want all %d tokens, owner, valid, dirty", l, ts.Ledger.T)
	}
	r := access(sys, c, addr, false)
	finish(t, sys, ts, r)
	if sys.Run.Misses.Issued != 1 {
		t.Errorf("misses = %d, want 1 (read hits after write)", sys.Run.Misses.Issued)
	}
}

func TestReadFromMemoryGrantsOneTokenPath(t *testing.T) {
	sys, ts := newTokenSystem(t, 4, 2, nil)
	const addr = msg.Addr(0x2000)
	r := access(sys, ts.Caches[1], addr, false)
	finish(t, sys, ts, r)
	l := ts.Caches[1].L2.Lookup(msg.BlockOf(addr))
	if l == nil || l.Tokens < 1 || !l.Valid {
		t.Fatalf("reader line = %+v, want >=1 token with valid data", l)
	}
	if l.Tokens == ts.Ledger.T {
		t.Errorf("clean read from memory took all %d tokens; memory should keep some", l.Tokens)
	}
}

func TestCacheToCacheTransferOnWrite(t *testing.T) {
	sys, ts := newTokenSystem(t, 4, 3, nil)
	const addr = msg.Addr(0x3000)
	b := msg.BlockOf(addr)
	w0 := access(sys, ts.Caches[0], addr, true)
	finish(t, sys, ts, w0)
	w1 := access(sys, ts.Caches[1], addr, true)
	finish(t, sys, ts, w1)
	if l := ts.Caches[0].L2.Lookup(b); l != nil && l.Tokens != 0 {
		t.Errorf("old writer still holds %d tokens", l.Tokens)
	}
	l := ts.Caches[1].L2.Lookup(b)
	if l == nil || l.Tokens != ts.Ledger.T {
		t.Fatalf("new writer line = %+v, want all tokens", l)
	}
	if got := sys.Oracle.Latest(b); got != 2 {
		t.Errorf("block version = %d, want 2", got)
	}
}

func TestMultipleReadersShareTokens(t *testing.T) {
	sys, ts := newTokenSystem(t, 8, 4, nil)
	const addr = msg.Addr(0x4000)
	b := msg.BlockOf(addr)
	w := access(sys, ts.Caches[0], addr, true)
	finish(t, sys, ts, w)
	// Several readers: the first takes the migratory grant; later ones
	// pull single tokens from the new owner.
	var dones []*bool
	for i := 1; i < 5; i++ {
		dones = append(dones, access(sys, ts.Caches[i], addr, false))
		finish(t, sys, ts, dones...)
	}
	readers := 0
	for _, c := range ts.Caches {
		if l := c.L2.Lookup(b); l != nil && l.Tokens > 0 && l.Valid {
			readers++
		}
	}
	if readers < 3 {
		t.Errorf("only %d caches hold readable copies, want >=3 concurrent readers", readers)
	}
}

func TestMigratoryOptimizationGrantsAllTokens(t *testing.T) {
	sys, ts := newTokenSystem(t, 4, 5, nil)
	const addr = msg.Addr(0x5000)
	b := msg.BlockOf(addr)
	w := access(sys, ts.Caches[0], addr, true)
	finish(t, sys, ts, w)
	// A GetS hitting a dirty M-state block receives ALL tokens
	// (migratory-sharing optimization), so the reader can write next
	// without another miss.
	r := access(sys, ts.Caches[2], addr, false)
	finish(t, sys, ts, r)
	l := ts.Caches[2].L2.Lookup(b)
	if l == nil || l.Tokens != ts.Ledger.T {
		t.Fatalf("migratory reader got %+v, want all %d tokens", l, ts.Ledger.T)
	}
	if lw := ts.Caches[0].L2.Lookup(b); lw != nil && lw.Tokens > 0 {
		t.Errorf("old writer kept %d tokens after migratory grant", lw.Tokens)
	}
}

func TestCleanSharedReadIsNotMigratory(t *testing.T) {
	sys, ts := newTokenSystem(t, 4, 6, nil)
	const addr = msg.Addr(0x6000)
	b := msg.BlockOf(addr)
	// Reader 1 gets data from memory (clean).
	r1 := access(sys, ts.Caches[1], addr, false)
	finish(t, sys, ts, r1)
	// Reader 2 should get a single token, not the whole block.
	r2 := access(sys, ts.Caches[2], addr, false)
	finish(t, sys, ts, r2)
	l1 := ts.Caches[1].L2.Lookup(b)
	l2 := ts.Caches[2].L2.Lookup(b)
	if l1 == nil || l1.Tokens == 0 {
		t.Error("reader 1 lost its copy after a clean shared read")
	}
	if l2 == nil || l2.Tokens == 0 || l2.Tokens == ts.Ledger.T {
		t.Errorf("reader 2 tokens = %+v, want a partial share", l2)
	}
}

// TestFigure2Race reproduces the paper's motivating example: a GetM from
// P0 racing a GetS from P1 on the same block. Token counting resolves it
// without any interconnect ordering; both operations complete and the
// oracle observes coherent data.
func TestFigure2Race(t *testing.T) {
	sys, ts := newTokenSystem(t, 4, 7, nil)
	const addr = msg.Addr(0x7000)
	var w, r *bool
	sys.K.Schedule(0, func() { w = access(sys, ts.Caches[0], addr, true) })
	sys.K.Schedule(0, func() { r = access(sys, ts.Caches[1], addr, false) })
	sys.K.Run()
	if !*w || !*r {
		t.Fatal("racing requests did not both complete")
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if err := ts.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestWriterInvalidatesAllReaders(t *testing.T) {
	sys, ts := newTokenSystem(t, 8, 8, nil)
	const addr = msg.Addr(0x8000)
	b := msg.BlockOf(addr)
	var dones []*bool
	for i := 1; i < 6; i++ {
		dones = append(dones, access(sys, ts.Caches[i], addr, false))
	}
	finish(t, sys, ts, dones...)
	w := access(sys, ts.Caches[0], addr, true)
	finish(t, sys, ts, w)
	for i, c := range ts.Caches {
		l := c.L2.Lookup(b)
		if i == 0 {
			if l == nil || l.Tokens != ts.Ledger.T {
				t.Fatalf("writer holds %+v, want all tokens", l)
			}
			continue
		}
		if l != nil && l.Tokens > 0 {
			t.Errorf("cache %d still holds %d tokens after exclusive write", i, l.Tokens)
		}
	}
}

func TestEvictionWritesBackToMemory(t *testing.T) {
	sys, ts := newTokenSystem(t, 4, 9, func(c *machine.Config) {
		c.L2Size = 2 * msg.BlockSize // two lines total
		c.L2Assoc = 1
		c.L1Size = msg.BlockSize
		c.L1Assoc = 1
	})
	c := ts.Caches[0]
	// Write block A, then write conflicting blocks to force eviction.
	a := msg.Addr(0)                     // set 0
	bAddr := msg.Addr(2 * msg.BlockSize) // set 0 again (2 sets, stride 2)
	w1 := access(sys, c, a, true)
	finish(t, sys, ts, w1)
	w2 := access(sys, c, bAddr, true)
	finish(t, sys, ts, w2)
	// Block A must have been written back to its home with its data.
	home := ts.Mems[msg.HomeOf(msg.BlockOf(a), 4)]
	tokens, owner := home.Tokens(msg.BlockOf(a))
	if tokens != ts.Ledger.T || !owner {
		t.Fatalf("home holds %d tokens (owner=%v) after eviction, want all", tokens, owner)
	}
	// Reading A again must return the written version.
	r := access(sys, ts.Caches[1], a, false)
	finish(t, sys, ts, r)
}

func TestPersistentRequestEscalation(t *testing.T) {
	// MaxReissues=0 and BackoffFactor=0 make every timed-out miss
	// escalate straight to a persistent request, exercising the arbiter
	// under heavy contention.
	sys, ts := newTokenSystem(t, 8, 10, func(c *machine.Config) {
		c.MaxReissues = 0
		c.BackoffFactor = 0
	})
	const addr = msg.Addr(0x9000)
	var dones []*bool
	for i := 0; i < 8; i++ {
		i := i
		sys.K.Schedule(sim.Time(i)*sim.Nanosecond, func() {
			dones = append(dones, access(sys, ts.Caches[i], addr, true))
		})
	}
	sys.K.Run()
	for i, d := range dones {
		if !*d {
			t.Fatalf("writer %d starved", i)
		}
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if err := ts.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	var activations uint64
	for _, a := range ts.Arbiters {
		activations += a.Activations
	}
	if activations == 0 {
		t.Error("no persistent requests were activated; test lost its purpose")
	}
	if got := sys.Oracle.Latest(msg.BlockOf(addr)); got != 8 {
		t.Errorf("final version = %d, want 8 (all writes committed)", got)
	}
}

func TestUpgradeFromSharedToModified(t *testing.T) {
	sys, ts := newTokenSystem(t, 4, 11, nil)
	const addr = msg.Addr(0xa000)
	r1 := access(sys, ts.Caches[1], addr, false)
	finish(t, sys, ts, r1)
	r2 := access(sys, ts.Caches[2], addr, false)
	finish(t, sys, ts, r2)
	// Cache 1 upgrades: must gather every token including cache 2's.
	w := access(sys, ts.Caches[1], addr, true)
	finish(t, sys, ts, w)
	l := ts.Caches[1].L2.Lookup(msg.BlockOf(addr))
	if l == nil || l.Tokens != ts.Ledger.T {
		t.Fatalf("upgraded line = %+v, want all tokens", l)
	}
}

func TestConcurrentMixedStress(t *testing.T) {
	seeds := []uint64{21, 22, 23}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			sys, ts := newTokenSystem(t, 16, seed, nil)
			gen := &uniformGen{blocks: 24, pWrite: 0.4, think: 5 * sim.Nanosecond}
			run, err := sys.Execute(ts.Controllers(), gen, 400)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if err := ts.Audit(); err != nil {
				t.Fatalf("audit: %v", err)
			}
			if run.Misses.Issued == 0 {
				t.Error("stress run produced no coherence misses")
			}
		})
	}
}

func TestHighContentionSingleBlock(t *testing.T) {
	sys, ts := newTokenSystem(t, 16, 33, nil)
	gen := &uniformGen{blocks: 2, pWrite: 0.6, think: 1 * sim.Nanosecond}
	run, err := sys.Execute(ts.Controllers(), gen, 150)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if err := ts.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	reissued := run.Misses.ReissuedOnce + run.Misses.ReissuedMore + run.Misses.Persistent
	if reissued == 0 {
		t.Error("pathological contention produced no reissues; races untested")
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() (sim.Time, uint64) {
		sys, ts := newTokenSystem(t, 16, 99, nil)
		gen := &uniformGen{blocks: 16, pWrite: 0.3, think: 4 * sim.Nanosecond}
		run, err := sys.Execute(ts.Controllers(), gen, 200)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		return run.Elapsed, run.Traffic.TotalBytes()
	}
	e1, b1 := runOnce()
	e2, b2 := runOnce()
	if e1 != e2 || b1 != b2 {
		t.Errorf("replay diverged: elapsed %v/%v bytes %d/%d", e1, e2, b1, b2)
	}
}

// uniformGen is a minimal workload for protocol tests: uniform random
// block selection from a small pool with a fixed write fraction.
type uniformGen struct {
	blocks int
	pWrite float64
	think  sim.Time
}

func (g *uniformGen) Next(proc int, rng *sim.Source) machine.Op {
	return machine.Op{
		Addr:  msg.Addr(rng.Intn(g.blocks)) * msg.BlockSize,
		Write: rng.Bool(g.pWrite),
		Think: g.think,
	}
}
