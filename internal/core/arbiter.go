package core

import (
	"fmt"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/stats"
)

// arbPhase is the arbiter state machine of Figure 3c.
type arbPhase uint8

const (
	arbIdle arbPhase = iota
	arbActivating
	arbActive
	arbDeactivating
)

// Arbiter is the persistent-request arbiter co-located with each home
// memory module. It serializes persistent requests (FIFO, hence fair),
// activates at most one at a time by informing every node, collects
// acknowledgments to avoid activation/deactivation races, and deactivates
// when the starving processor reports satisfaction.
type Arbiter struct {
	sys *machine.System
	// isle is the arbiter's island context; event-time sends, clock reads,
	// and observations must go through it, not the system-level handles.
	isle  *machine.Isle
	id    msg.NodeID
	phase arbPhase

	queue []arbEntry
	// targets caches the static activation broadcast set.
	targets []msg.Port
	// acksPending counts outstanding activate/deactivate acknowledgments.
	acksPending int
	// deactRequested remembers a deactivation that arrived while the
	// activation broadcast was still being acknowledged.
	deactRequested bool
	seq            uint64

	// Activations counts served persistent requests (for tests/stats).
	Activations uint64
	// activations is the same count as a named metric, shared by every
	// arbiter of the run.
	activations *stats.Counter
}

type arbEntry struct {
	requester msg.Port
	addr      msg.Addr
	// epoch is the starver's per-node persistent-request number, echoed
	// in activations/deactivations so the starver can match them.
	epoch int
}

// NewArbiter builds node id's arbiter and registers it on the network.
func NewArbiter(sys *machine.System, id msg.NodeID) *Arbiter {
	a := &Arbiter{sys: sys, isle: sys.IsleFor(int(id)), id: id}
	a.activations = sys.Metrics.Counter(stats.Desc{
		Name: "persistent_activations", Unit: "count", Fmt: "%.0f",
		Help: "persistent requests activated by home arbiters",
	})
	sys.Net.Register(a.Port(), a)
	return a
}

// Port returns the arbiter's network port.
func (a *Arbiter) Port() msg.Port { return msg.Port{Node: a.id, Unit: msg.UnitArbiter} }

// QueueLen reports persistent requests waiting behind the active one.
func (a *Arbiter) QueueLen() int {
	if a.phase == arbIdle {
		return len(a.queue)
	}
	return len(a.queue) - 1
}

// Handle implements interconnect.Handler.
func (a *Arbiter) Handle(m *msg.Message) {
	switch m.Kind {
	case msg.KindPersistentReq:
		a.queue = append(a.queue, arbEntry{requester: m.Requester, addr: m.Addr, epoch: m.Acks})
		if a.phase == arbIdle {
			a.startActivation()
		}
	case msg.KindPersistentActivateAck:
		a.collectAck(m, arbActivating)
	case msg.KindPersistentDeactivate:
		a.handleDeactivateRequest(m)
	case msg.KindPersistentDeactivateAck:
		a.collectAck(m, arbDeactivating)
	default:
		panic("core: arbiter received unexpected " + m.Kind.String())
	}
}

// broadcastTargets returns every port that tracks persistent requests:
// all cache controllers of the root scope plus this home's memory
// controller. Persistent requests are the machine-wide mechanism, so
// the set always spans the root scope's members (block-invariant for
// the built-in scopes), never a cluster.
func (a *Arbiter) broadcastTargets() []msg.Port {
	members := a.sys.Scope.Members(0)
	ports := make([]msg.Port, 0, len(members)+1)
	for _, n := range members {
		ports = append(ports, msg.Port{Node: n, Unit: msg.UnitCache})
	}
	ports = append(ports, msg.Port{Node: a.id, Unit: msg.UnitMem})
	return ports
}

func (a *Arbiter) broadcast(kind msg.Kind, e arbEntry) {
	a.seq++
	a.acksPending = len(a.broadcastTargetsCached())
	m := a.isle.Net.NewMessage()
	*m = msg.Message{
		Kind: kind, Cat: msg.CatReissue,
		Src: a.Port(), Addr: e.addr, Requester: e.requester, Seq: a.seq,
		Acks: e.epoch,
	}
	a.isle.Net.MulticastAfter(m, a.broadcastTargetsCached(), a.sys.Cfg.CtrlLatency)
}

// broadcastTargetsCached memoizes the static activation broadcast set.
func (a *Arbiter) broadcastTargetsCached() []msg.Port {
	if a.targets == nil {
		a.targets = a.broadcastTargets()
	}
	return a.targets
}

func (a *Arbiter) startActivation() {
	if len(a.queue) == 0 || a.phase != arbIdle {
		panic("core: startActivation in wrong state")
	}
	a.phase = arbActivating
	a.deactRequested = false
	a.Activations++
	a.activations.Inc()
	if o := a.isle.Obs; o != nil {
		o.OnPersistentActivated(int(a.id), msg.BlockOf(a.queue[0].addr), a.isle.K.Now())
	}
	a.broadcast(msg.KindPersistentActivate, a.queue[0])
}

func (a *Arbiter) startDeactivation() {
	a.phase = arbDeactivating
	a.broadcast(msg.KindPersistentDeactivate, a.queue[0])
}

func (a *Arbiter) handleDeactivateRequest(m *msg.Message) {
	if len(a.queue) == 0 || a.phase == arbIdle {
		panic("core: deactivation with no active persistent request")
	}
	cur := a.queue[0]
	if cur.requester != m.Src || msg.BlockOf(cur.addr) != msg.BlockOf(m.Addr) {
		panic(fmt.Sprintf("core: deactivation from %v for block %d does not match active %v/%d",
			m.Src, msg.BlockOf(m.Addr), cur.requester, msg.BlockOf(cur.addr)))
	}
	switch a.phase {
	case arbActivating:
		a.deactRequested = true // finish collecting activate acks first
	case arbActive:
		a.startDeactivation()
	case arbDeactivating:
		panic("core: duplicate deactivation")
	}
}

func (a *Arbiter) collectAck(m *msg.Message, expect arbPhase) {
	if a.phase != expect || m.Seq != a.seq {
		panic(fmt.Sprintf("core: stray ack %v (phase %d, seq %d/%d)", m.Kind, a.phase, m.Seq, a.seq))
	}
	a.acksPending--
	if a.acksPending > 0 {
		return
	}
	switch a.phase {
	case arbActivating:
		a.phase = arbActive
		if a.deactRequested {
			a.startDeactivation()
		}
	case arbDeactivating:
		done := a.queue[0]
		a.queue = a.queue[1:]
		a.phase = arbIdle
		if o := a.isle.Obs; o != nil {
			o.OnPersistentDeactivated(int(a.id), msg.BlockOf(done.addr), a.isle.K.Now())
		}
		if len(a.queue) > 0 {
			a.startActivation()
		}
	}
}
