package core

import (
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

// newRegionFilterSystem builds the token substrate with the region
// filter on the 16-processor tree, whose root subtrees give four
// 4-node clusters.
func newRegionFilterSystem(t *testing.T, seed uint64) (*machine.System, *TokenSystem) {
	t.Helper()
	cfg := machine.DefaultConfig()
	sys := machine.NewSystem(cfg, topology.NewTree(cfg.Procs), seed)
	return sys, WithPolicy(NewRegionFilterPolicy, false)(sys)
}

func TestRegionFilterDestinationSets(t *testing.T) {
	_, ts := newRegionFilterSystem(t, 1)
	c := ts.Caches[0] // cluster {0,1,2,3}
	m := &machine.MSHR{Block: 5}

	// A never-observed region multicasts to the cluster plus the
	// machine-wide home: 3 peer caches + home.
	first := c.policy.Destinations(c, m, false, nil)
	if len(first) != 4 {
		t.Errorf("cluster-private first issue sent to %d ports, want 4", len(first))
	}
	for _, p := range first[:len(first)-1] {
		if p.Node > 3 || p.Node == c.ID || p.Unit != msg.UnitCache {
			t.Errorf("unexpected cluster destination %+v", p)
		}
	}
	if home := first[len(first)-1]; home != c.HomePort(m.Block) {
		t.Errorf("last destination %+v, want machine-wide home %+v", home, c.HomePort(m.Block))
	}

	// Reissues always broadcast: 15 peer caches + home.
	if re := c.policy.Destinations(c, m, true, nil); len(re) != 16 {
		t.Errorf("reissue sent to %d ports, want broadcast (16)", len(re))
	}

	// Token supply from a cache outside the cluster stickily marks the
	// whole 16-block region external; first issues broadcast from then on.
	c.policy.Observe(c, &msg.Message{
		Src:  msg.Port{Node: 7, Unit: msg.UnitCache},
		Addr: msg.Addr(m.Block) << msg.BlockShift,
	})
	if after := c.policy.Destinations(c, m, false, nil); len(after) != 16 {
		t.Errorf("externally-shared first issue sent to %d ports, want broadcast (16)", len(after))
	}
	other := &machine.MSHR{Block: 5 ^ 8} // same 16-block region
	if sib := c.policy.Destinations(c, other, false, nil); len(sib) != 16 {
		t.Errorf("region sibling sent to %d ports, want broadcast (16)", len(sib))
	}
	far := &machine.MSHR{Block: 5 + 16} // next region: still private
	if out := c.policy.Destinations(c, far, false, nil); len(out) != 4 {
		t.Errorf("neighboring region sent to %d ports, want 4", len(out))
	}

	// In-cluster supply must not poison the region.
	c.policy.Observe(c, &msg.Message{
		Src:  msg.Port{Node: 2, Unit: msg.UnitCache},
		Addr: msg.Addr(far.Block) << msg.BlockShift,
	})
	if out := c.policy.Destinations(c, far, false, nil); len(out) != 4 {
		t.Errorf("in-cluster supply poisoned the region: %d ports, want 4", len(out))
	}
}

func TestRegionFilterStressIsCorrect(t *testing.T) {
	sys, ts := newRegionFilterSystem(t, 107)
	gen := &uniformGen{blocks: 24, pWrite: 0.4, think: 5 * sim.Nanosecond}
	if _, err := sys.Execute(ts.Controllers(), gen, 300); err != nil {
		t.Fatalf("execute: %v", err)
	}
	if err := ts.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}
