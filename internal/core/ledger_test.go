package core

import (
	"strings"
	"testing"
)

func TestLedgerCleanFlow(t *testing.T) {
	l := NewLedger(4)
	l.InitBlock(1)
	l.Sent(1, 4, true, true)
	l.Received(1, 4, true)
	l.CheckConservation(1, 4, 1)
	if err := l.Err(); err != nil {
		t.Fatalf("clean flow reported %v", err)
	}
}

func TestLedgerDetectsDoubleInit(t *testing.T) {
	l := NewLedger(4)
	l.InitBlock(1)
	l.InitBlock(1)
	if l.Err() == nil {
		t.Error("double init not detected")
	}
}

func TestLedgerDetectsOwnerWithoutData(t *testing.T) {
	l := NewLedger(4)
	l.InitBlock(1)
	l.Sent(1, 1, true, false)
	if err := l.Err(); err == nil || !strings.Contains(err.Error(), "invariant #4'") {
		t.Errorf("owner-without-data not detected: %v", err)
	}
}

func TestLedgerDetectsOverReceive(t *testing.T) {
	l := NewLedger(4)
	l.InitBlock(1)
	l.Sent(1, 1, false, false)
	l.Received(1, 2, false)
	if l.Err() == nil {
		t.Error("token creation (over-receive) not detected")
	}
}

func TestLedgerDetectsTwoOwnersInFlight(t *testing.T) {
	l := NewLedger(8)
	l.InitBlock(1)
	l.Sent(1, 1, true, true)
	l.Sent(1, 1, true, true)
	if l.Err() == nil {
		t.Error("duplicate owner token not detected")
	}
}

func TestLedgerDetectsConservationViolation(t *testing.T) {
	l := NewLedger(4)
	l.InitBlock(1)
	l.CheckConservation(1, 3, 1) // one token missing
	if l.Err() == nil {
		t.Error("lost token not detected")
	}
}

func TestLedgerDetectsUninitializedTokens(t *testing.T) {
	l := NewLedger(4)
	l.Sent(7, 1, false, false)
	if l.Err() == nil {
		t.Error("tokens before initialization not detected")
	}
}

func TestLedgerDetectsSendingMoreThanT(t *testing.T) {
	l := NewLedger(4)
	l.InitBlock(1)
	l.Sent(1, 5, false, false)
	if l.Err() == nil {
		t.Error("sending more than T tokens not detected")
	}
}

func TestLedgerDetectsNonPositiveSends(t *testing.T) {
	l := NewLedger(4)
	l.InitBlock(1)
	l.Sent(1, 0, false, false)
	l.Received(1, -1, false)
	if len(l.Violations()) != 2 {
		t.Errorf("expected 2 violations, got %d", len(l.Violations()))
	}
}

func TestLedgerUntouchedBlockConservation(t *testing.T) {
	l := NewLedger(4)
	l.CheckConservation(9, 0, 0)
	if l.Err() != nil {
		t.Error("untouched block with no tokens should be fine")
	}
	l.CheckConservation(9, 2, 0)
	if l.Err() == nil {
		t.Error("tokens held for uninitialized block not detected")
	}
}

func TestLedgerInFlightAccounting(t *testing.T) {
	l := NewLedger(8)
	l.InitBlock(2)
	l.Sent(2, 3, false, false)
	l.Sent(2, 2, false, false)
	if l.InFlight(2) != 5 {
		t.Errorf("InFlight = %d, want 5", l.InFlight(2))
	}
	l.Received(2, 3, false)
	if l.InFlight(2) != 2 {
		t.Errorf("InFlight = %d, want 2", l.InFlight(2))
	}
}

func TestLedgerBlocks(t *testing.T) {
	l := NewLedger(4)
	l.InitBlock(1)
	l.InitBlock(5)
	got := l.Blocks()
	if len(got) != 2 {
		t.Fatalf("Blocks() = %v, want 2 entries", got)
	}
}

func TestNewLedgerPanicsOnNonPositiveT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLedger(0) did not panic")
		}
	}()
	NewLedger(0)
}
