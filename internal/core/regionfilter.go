package core

import (
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
)

// NewRegionFilterPolicy returns the region-coherence-filter policy
// ("regionfilter"): a scope-aware destination-set policy on the
// unmodified token substrate. It tracks coarse-grain (1KB-region)
// sharing and multicasts first-issue requests only within the issuing
// node's cluster (plus the machine-wide home) while a region has never
// been observed to supply tokens from outside the cluster; regions with
// observed external holders — and all reissues — fall back to full
// broadcast. A wrong guess (an unobserved external holder) costs one
// reissue timeout, never correctness: the substrate's token counting
// and persistent requests guarantee safety and starvation freedom for
// any destination set.
func NewRegionFilterPolicy() Policy { return newRegionFilter() }

// regionFilter suppresses broadcasts for regions private to the
// issuing node's cluster. The external mark is sticky: once a region is
// seen crossing the cluster boundary it broadcasts forever, trading
// filter coverage for never re-learning a stale privacy guess.
type regionFilter struct {
	// regionShift groups blocks into 1KB regions (16 blocks) for
	// coarse-grain sharing tracking.
	regionShift uint
	// external marks regions that supplied tokens from outside the
	// cluster.
	external map[msg.Block]bool
	// scope is the issuing node's cluster realm, bound by the builder;
	// nil (unbound, e.g. direct substrate construction outside the
	// engine) degrades to plain broadcast.
	scope machine.Scope
	// inCluster caches the bound scope's membership.
	inCluster map[msg.NodeID]bool
}

func newRegionFilter() *regionFilter {
	return &regionFilter{regionShift: 4, external: make(map[msg.Block]bool)}
}

func (p *regionFilter) Name() string { return "regionfilter" }

// BindScope implements ScopedPolicy.
func (p *regionFilter) BindScope(s machine.Scope) {
	p.scope = s
	p.inCluster = make(map[msg.NodeID]bool)
	for _, n := range s.Members(0) {
		p.inCluster[n] = true
	}
}

func (p *regionFilter) region(b msg.Block) msg.Block { return b >> p.regionShift }

func (p *regionFilter) Observe(c *TokenB, mm *msg.Message) {
	// Only cache-to-cache supply marks a region shared: the machine-wide
	// home sits outside most clusters by construction and is always in
	// the destination set anyway.
	if mm.Src.Unit != msg.UnitCache {
		return
	}
	if p.scope == nil || p.inCluster[mm.Src.Node] {
		return
	}
	p.external[p.region(msg.BlockOf(mm.Addr))] = true
}

func (p *regionFilter) Destinations(c *TokenB, m *machine.MSHR, reissue bool, buf []msg.Port) []msg.Port {
	if reissue || p.scope == nil || p.external[p.region(m.Block)] {
		return broadcastPolicy{}.Destinations(c, m, reissue, buf)
	}
	for _, n := range p.scope.Members(m.Block) {
		if n != c.ID {
			buf = append(buf, msg.Port{Node: n, Unit: msg.UnitCache})
		}
	}
	// The cache keeps the root scope, so the home is the machine-wide
	// one: tokens parked at memory are always reachable on first issue.
	return append(buf, c.HomePort(m.Block))
}
