package core

import (
	"fmt"
	"sync"

	"tokencoherence/internal/msg"
)

// Ledger audits the token-counting invariants at runtime. Every
// component reports token sends and receives; the ledger tracks in-flight
// counts per block and records violations instead of panicking so tests
// can report them cleanly.
type Ledger struct {
	// T is the fixed token count per block (invariant #1').
	T int

	// mu serializes reports from different islands of a parallel run.
	// Token messages cross islands with at least one link latency of
	// delay — beyond the lookahead window — so a Sent always lands in an
	// earlier window than its Received and the audited counts cannot
	// depend on island interleaving.
	mu sync.Mutex

	inflight      map[msg.Block]int
	inflightOwner map[msg.Block]int
	initialized   map[msg.Block]bool
	errs          []error
}

// NewLedger builds a ledger for T tokens per block.
func NewLedger(t int) *Ledger {
	if t <= 0 {
		panic("core: token count must be positive")
	}
	return &Ledger{
		T:             t,
		inflight:      make(map[msg.Block]int),
		inflightOwner: make(map[msg.Block]int),
		initialized:   make(map[msg.Block]bool),
	}
}

func (l *Ledger) fail(format string, args ...any) {
	if len(l.errs) < 32 {
		l.errs = append(l.errs, fmt.Errorf(format, args...))
	}
}

// InitBlock records the lazy creation of a block's T tokens at its home
// memory. Initializing twice is a violation.
func (l *Ledger) InitBlock(b msg.Block) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.initialized[b] {
		l.fail("block %d initialized twice", b)
		return
	}
	l.initialized[b] = true
}

// Initialized reports whether the block's tokens exist yet.
func (l *Ledger) Initialized(b msg.Block) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.initialized[b]
}

// Sent records tokens leaving a component in a message. It checks
// invariant #4' (owner token implies data).
func (l *Ledger) Sent(b msg.Block, tokens int, owner, hasData bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case tokens <= 0:
		l.fail("block %d: sent message with %d tokens", b, tokens)
		return
	case owner && !hasData:
		l.fail("block %d: owner token sent without data (invariant #4')", b)
	case !l.initialized[b]:
		l.fail("block %d: tokens sent before initialization", b)
	case tokens > l.T:
		l.fail("block %d: sent %d tokens, more than T=%d", b, tokens, l.T)
	}
	l.inflight[b] += tokens
	if owner {
		l.inflightOwner[b]++
		if l.inflightOwner[b] > 1 {
			l.fail("block %d: two owner tokens in flight", b)
		}
	}
}

// Received records tokens arriving at a component.
func (l *Ledger) Received(b msg.Block, tokens int, owner bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tokens <= 0 {
		l.fail("block %d: received message with %d tokens", b, tokens)
		return
	}
	l.inflight[b] -= tokens
	if l.inflight[b] < 0 {
		l.fail("block %d: more tokens received than sent (in-flight %d)", b, l.inflight[b])
	}
	if owner {
		l.inflightOwner[b]--
		if l.inflightOwner[b] < 0 {
			l.fail("block %d: owner token received but not in flight", b)
		}
	}
}

// InFlight reports tokens currently in transit for b.
func (l *Ledger) InFlight(b msg.Block) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight[b]
}

// Blocks returns every initialized block (order unspecified).
func (l *Ledger) Blocks() []msg.Block {
	out := make([]msg.Block, 0, len(l.initialized))
	for b := range l.initialized {
		out = append(out, b)
	}
	return out
}

// CheckConservation verifies invariant #1' for block b given the total
// tokens and owner count held by all components.
func (l *Ledger) CheckConservation(b msg.Block, held, owners int) {
	if !l.initialized[b] {
		if held != 0 || l.inflight[b] != 0 {
			l.fail("block %d: tokens exist without initialization", b)
		}
		return
	}
	if total := held + l.inflight[b]; total != l.T {
		l.fail("block %d: %d tokens held + %d in flight = %d, want T=%d",
			b, held, l.inflight[b], total, l.T)
	}
	if total := owners + l.inflightOwner[b]; total != 1 {
		l.fail("block %d: %d owner tokens (held+flight), want exactly 1", b, total)
	}
}

// Err summarizes recorded violations (nil when clean).
func (l *Ledger) Err() error {
	if len(l.errs) == 0 {
		return nil
	}
	return fmt.Errorf("ledger: %d invariant violations, first: %w", len(l.errs), l.errs[0])
}

// Violations exposes all recorded violations.
func (l *Ledger) Violations() []error { return l.errs }
