// Package snooping implements the traditional MOSI broadcast snooping
// baseline (paper §5.1): a split-transaction protocol that relies on the
// totally-ordered broadcast tree. Every request (GetS, GetM, PutM) is
// broadcast through the tree's root, so all nodes — including the
// requester itself — observe all requests in one global order, which is
// what resolves every race:
//
//   - A requester's transaction is ordered when its own broadcast
//     arrives back at its node.
//   - Exactly one component is the logical owner of each block at every
//     point in the ordered stream: either one cache (state M or O,
//     possibly still waiting for its data, possibly holding the line in
//     a writeback buffer) or the home memory (tracked with a single
//     owner bit, as in Synapse-style memory-owned snooping [16]).
//   - The owner responds with data; sharers invalidate silently on GetM.
//   - A node whose own ordered request is still awaiting data defers
//     later-ordered foreign requests for that block and services them —
//     in order — once its data arrives (ownership chaining).
//   - An evicted owner line sits in a writeback buffer until the PutM
//     broadcast is ordered; if ownership was lost in the meantime the
//     node tells the memory the writeback is stale.
//
// The migratory-sharing optimization (responding to GetS on a
// self-written modified block with an exclusive grant) is implemented,
// matching the other protocols.
package snooping

import (
	"fmt"

	"tokencoherence/internal/cache"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// MOSI stable states stored in cache.Line.State.
const (
	stateI = iota
	stateS
	stateO
	stateM
)

// wbEntry holds an evicted owner line until its PutM broadcast is
// ordered.
type wbEntry struct {
	data    uint64
	dirty   bool
	owner   bool // cleared if a foreign GetM is ordered first
	written bool
}

// Cache is the snooping cache controller for one node.
type Cache struct {
	machine.CacheBase
	// wb maps blocks awaiting writeback ordering.
	wb map[msg.Block]*wbEntry
	// deferred holds foreign requests ordered between this node's own
	// ordered request and its data arrival.
	deferred map[msg.Block][]*msg.Message
	// dsts is the broadcast destination scratch buffer, reused across
	// broadcasts (Multicast copies what it keeps).
	dsts []msg.Port
	// broadcasts is the protocol's named metric: address transactions
	// placed on the ordered fabric (requests and PutMs).
	broadcasts *stats.Counter
}

// NewCache builds node id's snooping controller and registers it.
func NewCache(sys *machine.System, id msg.NodeID) *Cache {
	c := &Cache{
		wb:       make(map[msg.Block]*wbEntry),
		deferred: make(map[msg.Block][]*msg.Message),
	}
	c.InitBase(sys, id, c)
	c.broadcasts = sys.Metrics.Counter(stats.Desc{
		Name: "snoop_broadcasts", Unit: "count", Fmt: "%.0f",
		Help: "address transactions broadcast on the ordered fabric",
	})
	sys.Net.Register(c.CachePort(), c)
	return c
}

// HasPermission implements machine.CacheHooks.
func (c *Cache) HasPermission(l *cache.Line, write bool) bool {
	if write {
		return l.State == stateM && l.Valid
	}
	return l.State >= stateS && l.Valid
}

// StartMiss implements machine.CacheHooks: broadcast the request on the
// ordered fabric. No timers are needed; the total order guarantees
// service.
func (c *Cache) StartMiss(m *machine.MSHR) {
	kind := msg.KindGetS
	if m.Write {
		kind = msg.KindGetM
	}
	c.broadcast(kind, m.Block)
}

// broadcast sends an address transaction to every cache (including this
// one, to establish its place in the total order) plus the home memory.
func (c *Cache) broadcast(kind msg.Kind, b msg.Block) {
	c.broadcasts.Inc()
	req := c.Net.NewMessage()
	*req = msg.Message{
		Kind: kind, Cat: msg.CatRequest,
		Src: c.CachePort(), Addr: b.Base(), Requester: c.CachePort(),
	}
	n := c.Cfg.Procs
	dsts := c.dsts[:0]
	for i := 0; i < n; i++ {
		dsts = append(dsts, msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache})
	}
	dsts = append(dsts, c.HomePort(b))
	c.dsts = dsts
	c.Net.Multicast(req, dsts)
}

// EvictL2 implements machine.CacheHooks: owner lines enter the writeback
// buffer and broadcast a PutM; shared lines are dropped silently.
func (c *Cache) EvictL2(v cache.Line) {
	if v.State != stateM && v.State != stateO {
		return
	}
	if _, dup := c.wb[v.Block]; dup {
		panic("snooping: evicted block already in writeback buffer")
	}
	c.wb[v.Block] = &wbEntry{data: v.Data, dirty: v.Dirty, owner: true, written: v.Written}
	c.broadcast(msg.KindPutM, v.Block)
}

// Handle implements interconnect.Handler.
func (c *Cache) Handle(m *msg.Message) {
	switch m.Kind {
	case msg.KindGetS, msg.KindGetM, msg.KindPutM:
		c.ordered(m)
	case msg.KindData:
		c.onData(m)
	default:
		panic("snooping: cache received unexpected " + m.Kind.String())
	}
}

// ordered processes one address transaction in the global order.
func (c *Cache) ordered(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	if m.Requester == c.CachePort() {
		c.ownOrdered(m, b)
		return
	}
	if mshr, ok := c.Outstanding[b]; ok && mshr.Ordered {
		// This node's own ordered request precedes m; it may end up the
		// owner (GetM, or a migratory GetS grant), so m's disposition is
		// decided when the data arrives.
		c.deferred[b] = append(c.deferred[b], m.Retain())
		return
	}
	c.foreign(m, b)
}

// ownOrdered handles this node's own transaction reaching its place in
// the total order.
func (c *Cache) ownOrdered(m *msg.Message, b msg.Block) {
	if m.Kind == msg.KindPutM {
		e := c.wb[b]
		if e == nil {
			panic("snooping: own PutM ordered with no writeback entry")
		}
		delete(c.wb, b)
		home := c.HomePort(b)
		out := c.Net.NewMessage()
		if e.owner {
			*out = msg.Message{
				Kind: msg.KindPutM, Cat: msg.CatData,
				Src: c.CachePort(), Dst: home, Addr: b.Base(),
				HasData: true, Data: e.data, Dirty: e.dirty,
			}
		} else {
			*out = msg.Message{
				Kind: msg.KindWBStale, Cat: msg.CatControl,
				Src: c.CachePort(), Dst: home, Addr: b.Base(),
			}
		}
		c.send(out, c.Cfg.L2Latency)
		return
	}
	mshr := c.Outstanding[b]
	if mshr == nil {
		panic("snooping: own request ordered with no MSHR")
	}
	if e, ok := c.wb[b]; ok && e.owner {
		// This node evicted the block after issuing the request and is
		// still its owner (the PutM is ordered later): nobody else will
		// respond, so self-serve from the writeback buffer. The eventual
		// PutM order point then reports a stale writeback.
		l := c.EnsureL2(b)
		l.Valid = true
		l.Data = e.data
		l.Dirty = e.dirty
		if m.Kind == msg.KindGetM {
			l.State = stateM
		} else {
			l.State = stateO
		}
		e.owner = false
		c.CompleteMiss(mshr)
		return
	}
	if m.Kind == msg.KindGetM {
		if l := c.L2.Lookup(b); l != nil && l.State == stateO && l.Valid {
			// Upgrade from O: this node is the block's owner at its own
			// order point, so no component will send data — exclusivity
			// is established right here, and every sharer invalidates on
			// seeing this GetM. (An S-state upgrader still receives data
			// from the owner or memory, which cannot tell it has a copy.)
			l.State = stateM
			c.CompleteMiss(mshr)
			return
		}
	}
	mshr.Ordered = true // data will come from the owner
}

// foreign applies the stable-state MOSI response policy; it is also used
// to drain deferred requests once ownership is established.
func (c *Cache) foreign(m *msg.Message, b msg.Block) {
	if e, ok := c.wb[b]; ok && e.owner {
		switch m.Kind {
		case msg.KindGetS:
			// Respond from the writeback buffer and remain responsible.
			c.respondData(m.Requester, b, e.data, false, false, 0)
		case msg.KindGetM:
			c.respondData(m.Requester, b, e.data, true, e.dirty, 0)
			e.owner = false // the writeback is now stale
		}
		return
	}
	l := c.L2.Lookup(b)
	if l == nil || l.State == stateI {
		return
	}
	switch m.Kind {
	case msg.KindGetS:
		switch l.State {
		case stateM:
			if c.Cfg.Migratory && l.Written {
				// Migratory-sharing optimization: hand over exclusively.
				c.respondData(m.Requester, b, l.Data, true, l.Dirty, 0)
				c.dropLine(b)
				return
			}
			c.respondData(m.Requester, b, l.Data, false, false, 0)
			l.State = stateO
		case stateO:
			c.respondData(m.Requester, b, l.Data, false, false, 0)
		}
	case msg.KindGetM:
		if l.State == stateM || l.State == stateO {
			c.respondData(m.Requester, b, l.Data, true, l.Dirty, 0)
		}
		c.dropLine(b)
	}
}

// respondData sends a data response. grantOwner marks transfers of
// ownership (GetM responses and migratory GetS grants).
func (c *Cache) respondData(to msg.Port, b msg.Block, data uint64, grantOwner, dirty bool, extra sim.Time) {
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindData, Cat: msg.CatData,
		Src: c.CachePort(), Dst: to, Addr: b.Base(),
		HasData: true, Data: data, Owner: grantOwner, Dirty: dirty,
	}
	c.send(out, c.Cfg.L2Latency+extra)
}

func (c *Cache) send(m *msg.Message, lat sim.Time) {
	if lat == 0 {
		c.Net.Send(m)
		return
	}
	c.Net.SendAfter(m, lat)
}

func (c *Cache) dropLine(b msg.Block) {
	c.L2.Remove(b)
	c.DropL1(b)
}

// onData completes an ordered miss and drains any requests that were
// deferred behind it.
func (c *Cache) onData(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	mshr := c.Outstanding[b]
	if mshr == nil || !mshr.Ordered {
		panic(fmt.Sprintf("snooping: node %d got unexpected data for block %d", c.ID, b))
	}
	l := c.EnsureL2(b)
	l.Valid = true
	l.Data = m.Data
	l.Dirty = m.Dirty
	if mshr.Write || m.Owner {
		l.State = stateM
	} else {
		l.State = stateS
	}
	c.CompleteMiss(mshr)
	defs := c.deferred[b]
	delete(c.deferred, b)
	for _, d := range defs {
		c.foreign(d, b)
		c.Net.FreeMessage(d)
	}
}

// memLine is the home memory's view of one block.
type memLine struct {
	ownerBit  bool // memory is the block's owner
	data      uint64
	wbPending int
	deferred  []*msg.Message
}

// Memory is the snooping home memory controller: it snoops the ordered
// request stream for its blocks, responds when its owner bit is set, and
// sequences writebacks with the wbPending/deferred mechanism.
type Memory struct {
	sys *machine.System
	// isle is the controller's island context; event-time message
	// allocation and sends go through its network view.
	isle  *machine.Isle
	id    msg.NodeID
	lines map[msg.Block]*memLine
}

// NewMemory builds and registers node id's memory controller.
func NewMemory(sys *machine.System, id msg.NodeID) *Memory {
	m := &Memory{sys: sys, isle: sys.IsleFor(int(id)), id: id, lines: make(map[msg.Block]*memLine)}
	sys.Net.Register(m.Port(), m)
	return m
}

// Port returns the memory controller's network port.
func (m *Memory) Port() msg.Port { return msg.Port{Node: m.id, Unit: msg.UnitMem} }

func (m *Memory) line(b msg.Block) *memLine {
	if l, ok := m.lines[b]; ok {
		return l
	}
	l := &memLine{ownerBit: true}
	m.lines[b] = l
	return l
}

// OwnerBit reports the owner bit for tests.
func (m *Memory) OwnerBit(b msg.Block) bool { return m.line(b).ownerBit }

// Handle implements interconnect.Handler.
func (m *Memory) Handle(mm *msg.Message) {
	b := msg.BlockOf(mm.Addr)
	l := m.line(b)
	switch mm.Kind {
	case msg.KindGetS, msg.KindGetM:
		if l.wbPending > 0 {
			l.deferred = append(l.deferred, mm.Retain())
			return
		}
		m.serve(l, mm)
	case msg.KindPutM:
		if !mm.HasData {
			// The ordered PutM broadcast: a writeback (real or stale) is
			// on its way; hold responses until it resolves.
			l.wbPending++
			return
		}
		// The writeback data itself.
		l.data = mm.Data
		l.ownerBit = true
		m.resolveWB(l)
	case msg.KindWBStale:
		m.resolveWB(l)
	default:
		panic("snooping: memory received unexpected " + mm.Kind.String())
	}
}

func (m *Memory) resolveWB(l *memLine) {
	l.wbPending--
	if l.wbPending < 0 {
		panic("snooping: writeback resolution without pending writeback")
	}
	if l.wbPending > 0 {
		return
	}
	defs := l.deferred
	l.deferred = nil
	for i, d := range defs {
		if l.wbPending > 0 {
			// A drained request cannot re-raise wbPending, but keep the
			// guard for safety: re-defer the remainder (still retained).
			l.deferred = append(l.deferred, defs[i:]...)
			return
		}
		m.serve(l, d)
		m.isle.Net.FreeMessage(d)
	}
}

// serve answers one ordered request when the memory owns the block.
func (m *Memory) serve(l *memLine, mm *msg.Message) {
	if !l.ownerBit {
		return // a cache owner will respond
	}
	cfg := m.sys.Cfg
	out := m.isle.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindData, Cat: msg.CatData,
		Src: m.Port(), Dst: mm.Requester, Addr: mm.Addr,
		HasData: true, Data: l.data,
	}
	if mm.Kind == msg.KindGetM {
		out.Owner = true
		l.ownerBit = false
	}
	m.isle.Net.SendAfter(out, cfg.CtrlLatency+cfg.MemLatency)
}

// System bundles the snooping machine's components.
type System struct {
	Caches []*Cache
	Mems   []*Memory
}

// Build constructs the snooping protocol on sys. The topology must be
// totally ordered (the tree); building on an unordered fabric panics, as
// the paper notes snooping is "not applicable" there.
func Build(sys *machine.System) *System {
	if !sys.Topo.Ordered() {
		panic("snooping: requires a totally-ordered interconnect")
	}
	s := &System{}
	for i := 0; i < sys.Cfg.Procs; i++ {
		s.Caches = append(s.Caches, NewCache(sys, msg.NodeID(i)))
		s.Mems = append(s.Mems, NewMemory(sys, msg.NodeID(i)))
	}
	return s
}

// Controllers adapts the caches for machine.System.Execute.
func (s *System) Controllers() []machine.Controller {
	out := make([]machine.Controller, len(s.Caches))
	for i, c := range s.Caches {
		out[i] = c
	}
	return out
}
