package snooping

import (
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

func newSnoopSystem(t *testing.T, seed uint64, mutate func(*machine.Config)) (*machine.System, *System) {
	t.Helper()
	cfg := machine.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	sys := machine.NewSystem(cfg, topology.NewTree(cfg.Procs), seed)
	return sys, Build(sys)
}

func access(sys *machine.System, c *Cache, addr msg.Addr, write bool) *bool {
	done := new(bool)
	c.Access(machine.Op{Addr: addr, Write: write}, func() { *done = true })
	return done
}

func finish(t *testing.T, sys *machine.System, done ...*bool) {
	t.Helper()
	sys.K.Run()
	for i, d := range done {
		if !*d {
			t.Fatalf("operation %d did not complete", i)
		}
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

func TestBuildRequiresOrderedFabric(t *testing.T) {
	cfg := machine.DefaultConfig()
	sys := machine.NewSystem(cfg, topology.NewTorus(4, 4), 1)
	defer func() {
		if recover() == nil {
			t.Error("snooping on a torus did not panic")
		}
	}()
	Build(sys)
}

func TestColdWriteGetsMFromMemory(t *testing.T) {
	sys, s := newSnoopSystem(t, 1, nil)
	const addr = msg.Addr(0x100)
	w := access(sys, s.Caches[0], addr, true)
	finish(t, sys, w)
	l := s.Caches[0].L2.Lookup(msg.BlockOf(addr))
	if l == nil || l.State != stateM {
		t.Fatalf("writer line = %+v, want M", l)
	}
	// Memory gave up ownership.
	home := s.Mems[msg.HomeOf(msg.BlockOf(addr), 16)]
	if home.OwnerBit(msg.BlockOf(addr)) {
		t.Error("memory still owner after GetM")
	}
}

func TestReadAfterRemoteWriteTransfersCacheToCache(t *testing.T) {
	sys, s := newSnoopSystem(t, 2, nil)
	const addr = msg.Addr(0x200)
	b := msg.BlockOf(addr)
	w := access(sys, s.Caches[3], addr, true)
	finish(t, sys, w)
	r := access(sys, s.Caches[7], addr, false)
	finish(t, sys, r)
	// Migratory optimization: the written block moves exclusively.
	l := s.Caches[7].L2.Lookup(b)
	if l == nil || l.State != stateM {
		t.Fatalf("reader line = %+v, want M (migratory grant)", l)
	}
	if lw := s.Caches[3].L2.Lookup(b); lw != nil && lw.State != stateI {
		t.Errorf("old writer line = %+v, want gone/I", lw)
	}
}

func TestNonMigratoryGetSGoesToO(t *testing.T) {
	sys, s := newSnoopSystem(t, 3, nil)
	const addr = msg.Addr(0x300)
	b := msg.BlockOf(addr)
	w := access(sys, s.Caches[0], addr, true)
	finish(t, sys, w)
	// First GetS migrates (written). The new holder has not written, so a
	// second GetS must produce O + S sharing.
	r1 := access(sys, s.Caches[1], addr, false)
	finish(t, sys, r1)
	r2 := access(sys, s.Caches[2], addr, false)
	finish(t, sys, r2)
	l1 := s.Caches[1].L2.Lookup(b)
	l2 := s.Caches[2].L2.Lookup(b)
	if l1 == nil || l1.State != stateO {
		t.Fatalf("cache 1 line = %+v, want O", l1)
	}
	if l2 == nil || l2.State != stateS {
		t.Fatalf("cache 2 line = %+v, want S", l2)
	}
}

func TestUpgradeCompletesAtOrderPoint(t *testing.T) {
	sys, s := newSnoopSystem(t, 4, nil)
	const addr = msg.Addr(0x400)
	b := msg.BlockOf(addr)
	r := access(sys, s.Caches[1], addr, false)
	finish(t, sys, r)
	w := access(sys, s.Caches[1], addr, true)
	finish(t, sys, w)
	l := s.Caches[1].L2.Lookup(b)
	if l == nil || l.State != stateM {
		t.Fatalf("upgraded line = %+v, want M", l)
	}
	if sys.Run.Misses.Issued != 2 {
		t.Errorf("misses = %d, want 2", sys.Run.Misses.Issued)
	}
}

func TestGetMInvalidatesSharers(t *testing.T) {
	sys, s := newSnoopSystem(t, 5, nil)
	const addr = msg.Addr(0x500)
	b := msg.BlockOf(addr)
	var dones []*bool
	for i := 1; i < 6; i++ {
		dones = append(dones, access(sys, s.Caches[i], addr, false))
		finish(t, sys, dones...)
	}
	w := access(sys, s.Caches[0], addr, true)
	finish(t, sys, w)
	for i := 1; i < 6; i++ {
		if l := s.Caches[i].L2.Lookup(b); l != nil && l.State != stateI {
			t.Errorf("cache %d line = %+v after remote GetM, want invalid", i, l)
		}
	}
}

func TestWritebackReachesMemory(t *testing.T) {
	sys, s := newSnoopSystem(t, 6, func(c *machine.Config) {
		c.L2Size = 2 * msg.BlockSize
		c.L2Assoc = 1
		c.L1Size = msg.BlockSize
		c.L1Assoc = 1
	})
	c := s.Caches[0]
	a := msg.Addr(0)
	conflict := msg.Addr(2 * msg.BlockSize)
	w1 := access(sys, c, a, true)
	finish(t, sys, w1)
	w2 := access(sys, c, conflict, true) // evicts block of a
	finish(t, sys, w2)
	home := s.Mems[msg.HomeOf(msg.BlockOf(a), 16)]
	if !home.OwnerBit(msg.BlockOf(a)) {
		t.Fatal("memory did not regain ownership after writeback")
	}
	// A later read must see the written data (served by memory).
	r := access(sys, s.Caches[5], a, false)
	finish(t, sys, r)
}

func TestRacingWritesSameBlock(t *testing.T) {
	sys, s := newSnoopSystem(t, 7, nil)
	const addr = msg.Addr(0x700)
	var dones []*bool
	for i := 0; i < 8; i++ {
		dones = append(dones, access(sys, s.Caches[i], addr, true))
	}
	finish(t, sys, dones...)
	if got := sys.Oracle.Latest(msg.BlockOf(addr)); got != 8 {
		t.Errorf("final version = %d, want 8", got)
	}
	// Exactly one M owner at the end.
	owners := 0
	for _, c := range s.Caches {
		if l := c.L2.Lookup(msg.BlockOf(addr)); l != nil && l.State == stateM {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("%d M-state owners after racing writes, want 1", owners)
	}
}

func TestRacingReadersAndWriter(t *testing.T) {
	sys, s := newSnoopSystem(t, 8, nil)
	const addr = msg.Addr(0x800)
	var dones []*bool
	dones = append(dones, access(sys, s.Caches[0], addr, true))
	for i := 1; i < 8; i++ {
		dones = append(dones, access(sys, s.Caches[i], addr, false))
	}
	finish(t, sys, dones...)
}

func TestStress(t *testing.T) {
	for _, seed := range []uint64{31, 32, 33} {
		seed := seed
		t.Run("", func(t *testing.T) {
			sys, s := newSnoopSystem(t, seed, nil)
			gen := &uniformGen{blocks: 24, pWrite: 0.4, think: 5 * sim.Nanosecond}
			run, err := sys.Execute(s.Controllers(), gen, 300)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if run.Misses.Issued == 0 {
				t.Error("no misses in stress run")
			}
			// Snooping never reissues.
			if run.Misses.ReissuedOnce+run.Misses.ReissuedMore+run.Misses.Persistent != 0 {
				t.Error("snooping reported reissued/persistent misses")
			}
		})
	}
}

func TestStressHighContention(t *testing.T) {
	sys, s := newSnoopSystem(t, 40, nil)
	gen := &uniformGen{blocks: 2, pWrite: 0.6, think: 1 * sim.Nanosecond}
	if _, err := sys.Execute(s.Controllers(), gen, 150); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

func TestStressTinyCachesWritebackRaces(t *testing.T) {
	sys, s := newSnoopSystem(t, 41, func(c *machine.Config) {
		c.L2Size = 4 * msg.BlockSize
		c.L2Assoc = 1
		c.L1Size = msg.BlockSize
		c.L1Assoc = 1
	})
	gen := &uniformGen{blocks: 12, pWrite: 0.5, think: 2 * sim.Nanosecond}
	if _, err := sys.Execute(s.Controllers(), gen, 250); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

type uniformGen struct {
	blocks int
	pWrite float64
	think  sim.Time
}

func (g *uniformGen) Next(proc int, rng *sim.Source) machine.Op {
	return machine.Op{
		Addr:  msg.Addr(rng.Intn(g.blocks)) * msg.BlockSize,
		Write: rng.Bool(g.pWrite),
		Think: g.think,
	}
}
