package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/resultstore"
	"tokencoherence/internal/stats"
)

// Worker is the execution half of sweepd: a daemon that fetches the
// coordinator's plan description, rebuilds the plan locally (closures
// never travel — see PlanSpec), verifies the fingerprint, and then loops
// leasing points, simulating them through the normal engine path, and
// streaming result envelopes back with retry and exponential backoff.
// A heartbeat goroutine renews every active lease; if the worker dies,
// the renewals stop and the coordinator re-issues its points.
type Worker struct {
	// ID names this worker to the coordinator (stable across requests).
	ID string
	// BaseURL is the coordinator's address, e.g. "http://host:8080".
	BaseURL string
	// Resolve rebuilds the plan a PlanSpec names — typically a thin
	// wrapper over sweeps.ByKind. The resolved plan must expand to the
	// coordinator's exact job sequence; Run verifies via Fingerprint.
	Resolve func(spec PlanSpec) (engine.Plan, error)
	// Parallel is the number of points simulated concurrently (≤ 0 = 1).
	Parallel int
	// Store, when set, is this worker's local content-addressed archive:
	// computed points are written through, and with Reuse, archived
	// points are recalled instead of re-simulated (a worker that shares
	// a filesystem store with earlier sweeps serves them instantly).
	Store *resultstore.Store
	Reuse bool
	// Client defaults to http.DefaultClient.
	Client *http.Client
	// Log, when set, receives operational notices.
	Log io.Writer
	// RetryBase/RetryMax bound the exponential backoff for coordinator
	// requests (defaults 100ms / 5s); RetryBudget caps how long one
	// delivery retries before the worker gives up (default 60s) — a
	// coordinator that stays unreachable that long is gone.
	RetryBase, RetryMax, RetryBudget time.Duration

	mu     sync.Mutex
	active map[string]bool // lease IDs currently held, for heartbeats
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, format, args...)
	}
}

func (w *Worker) retryBase() time.Duration {
	if w.RetryBase > 0 {
		return w.RetryBase
	}
	return 100 * time.Millisecond
}

func (w *Worker) retryMax() time.Duration {
	if w.RetryMax > 0 {
		return w.RetryMax
	}
	return 5 * time.Second
}

func (w *Worker) retryBudget() time.Duration {
	if w.RetryBudget > 0 {
		return w.RetryBudget
	}
	return 60 * time.Second
}

// fatalStatusError marks an HTTP response that must not be retried: the
// coordinator rejected the request for cause (divergence, bad plan), not
// because of a transient failure.
type fatalStatusError struct {
	status int
	body   string
}

func (e *fatalStatusError) Error() string {
	return fmt.Sprintf("coordinator rejected request (%d): %s", e.status, e.body)
}

// postJSON issues one POST and decodes the response into out (when
// non-nil). 4xx responses return a *fatalStatusError; network failures
// and 5xx responses return retryable errors.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return &fatalStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
		}
		return err
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postRetry wraps postJSON in exponential backoff until success, a fatal
// (4xx) rejection, ctx cancellation, or the retry budget running out.
func (w *Worker) postRetry(ctx context.Context, path string, in, out any) error {
	delay := w.retryBase()
	deadline := time.Now().Add(w.retryBudget())
	for {
		err := w.postJSON(ctx, path, in, out)
		if err == nil {
			return nil
		}
		var fatal *fatalStatusError
		if errors.As(err, &fatal) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sweepd worker: giving up on %s after %s: %w", path, w.retryBudget(), err)
		}
		w.logf("sweepd worker %s: %s failed (%v); retrying in %s\n", w.ID, path, err, delay)
		if !sleepCtx(ctx, delay) {
			return ctx.Err()
		}
		if delay *= 2; delay > w.retryMax() {
			delay = w.retryMax()
		}
	}
}

// sleepCtx sleeps d or until ctx is done, reporting whether it slept
// the full duration.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// fetchPlan retrieves and verifies the coordinator's plan, returning the
// locally expanded jobs and per-job keys.
func (w *Worker) fetchPlan(ctx context.Context) (PlanInfo, []engine.Job, []string, error) {
	var info PlanInfo
	delay := w.retryBase()
	deadline := time.Now().Add(w.retryBudget())
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.BaseURL+"/plan", nil)
		if err != nil {
			return info, nil, nil, err
		}
		resp, err := w.client().Do(req)
		if err == nil {
			func() {
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("/plan: HTTP %d", resp.StatusCode)
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&info)
			}()
			if err == nil {
				break
			}
		}
		if ctx.Err() != nil {
			return info, nil, nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return info, nil, nil, fmt.Errorf("sweepd worker: coordinator %s unreachable for %s: %w", w.BaseURL, w.retryBudget(), err)
		}
		w.logf("sweepd worker %s: waiting for coordinator %s (%v)\n", w.ID, w.BaseURL, err)
		if !sleepCtx(ctx, delay) {
			return info, nil, nil, ctx.Err()
		}
		if delay *= 2; delay > w.retryMax() {
			delay = w.retryMax()
		}
	}

	if info.CodeVersion != engine.CodeVersion {
		return info, nil, nil, fmt.Errorf("sweepd worker: coordinator runs %s but this binary is %s; refusing to compute points under a different simulator version",
			info.CodeVersion, engine.CodeVersion)
	}
	plan, err := w.Resolve(info.Spec)
	if err != nil {
		return info, nil, nil, fmt.Errorf("sweepd worker: cannot resolve advertised plan %+v: %w", info.Spec, err)
	}
	jobs, err := plan.Jobs()
	if err != nil {
		return info, nil, nil, err
	}
	fp, keys, err := Fingerprint(jobs)
	if err != nil {
		return info, nil, nil, err
	}
	if len(jobs) != info.Total || fp != info.Fingerprint {
		return info, nil, nil, fmt.Errorf("sweepd worker: local plan expansion (%d jobs, fingerprint %.12s…) does not match the coordinator's (%d jobs, %.12s…); are the binaries identical?",
			len(jobs), fp, info.Total, info.Fingerprint)
	}
	return info, jobs, keys, nil
}

// Run executes the worker loop until the plan completes, the context is
// cancelled, or a fatal disagreement with the coordinator surfaces.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		return fmt.Errorf("sweepd worker: empty ID")
	}
	if w.Resolve == nil {
		return fmt.Errorf("sweepd worker: no Resolve function")
	}
	info, jobs, keys, err := w.fetchPlan(ctx)
	if err != nil {
		return err
	}
	w.logf("sweepd worker %s: joined %s: plan %q/%q, %d points, lease TTL %dms\n",
		w.ID, w.BaseURL, info.Spec.Kind, info.Spec.Workload, info.Total, info.LeaseTTLMillis)

	w.mu.Lock()
	w.active = make(map[string]bool)
	w.mu.Unlock()

	// Heartbeats renew every active lease at a third of the TTL: two
	// beats may be lost before the lease expires.
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	var hbWG sync.WaitGroup
	ttl := time.Duration(info.LeaseTTLMillis) * time.Millisecond
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx, ttl/3)
	}()

	slots := w.Parallel
	if slots < 1 {
		slots = 1
	}
	errCh := make(chan error, slots)
	slotCtx, stopSlots := context.WithCancel(ctx)
	defer stopSlots()
	for s := 0; s < slots; s++ {
		go func() { errCh <- w.slotLoop(slotCtx, jobs, keys) }()
	}
	var firstErr error
	for s := 0; s < slots; s++ {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
			stopSlots() // one fatal slot stops the rest
		}
	}
	stopHB()
	hbWG.Wait()
	return firstErr
}

// heartbeatLoop renews the active leases until ctx is done. Renewal
// failures are logged, not fatal: a missed beat only narrows the expiry
// margin, and the run stays correct either way (at-least-once).
func (w *Worker) heartbeatLoop(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		w.mu.Lock()
		leases := make([]string, 0, len(w.active))
		for id := range w.active {
			leases = append(leases, id)
		}
		w.mu.Unlock()
		if len(leases) == 0 {
			continue
		}
		var resp HeartbeatResponse
		if err := w.postJSON(ctx, "/heartbeat", HeartbeatRequest{Worker: w.ID, Leases: leases}, &resp); err != nil {
			w.logf("sweepd worker %s: heartbeat failed: %v\n", w.ID, err)
			continue
		}
		for _, id := range resp.Expired {
			// The point was re-issued; keep computing anyway — the
			// coordinator accepts late byte-identical duplicates.
			w.logf("sweepd worker %s: lease %s expired under us; finishing anyway (duplicate is safe)\n", w.ID, id)
		}
	}
}

// slotLoop is one execution slot: lease a point, run it, deliver the
// envelope, repeat until the coordinator reports the plan done.
func (w *Worker) slotLoop(ctx context.Context, jobs []engine.Job, keys []string) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var resp LeaseResponse
		if err := w.postRetry(ctx, "/lease", LeaseRequest{Worker: w.ID, Max: 1}, &resp); err != nil {
			return err
		}
		if len(resp.Assignments) == 0 {
			if resp.Done {
				return nil
			}
			wait := time.Duration(resp.WaitMillis) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return ctx.Err()
			}
			continue
		}
		for _, a := range resp.Assignments {
			if err := w.runAssignment(ctx, a, jobs, keys); err != nil {
				return err
			}
		}
	}
}

// runAssignment computes one leased point and streams its envelope back.
func (w *Worker) runAssignment(ctx context.Context, a Assignment, jobs []engine.Job, keys []string) error {
	if a.Index < 0 || a.Index >= len(jobs) {
		return fmt.Errorf("sweepd worker: leased index %d outside plan [0, %d)", a.Index, len(jobs))
	}
	w.mu.Lock()
	w.active[a.Lease] = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.active, a.Lease)
		w.mu.Unlock()
	}()

	job, key := jobs[a.Index], keys[a.Index]
	run, snap, err := w.runPoint(job, key)
	req := ResultRequest{Worker: w.ID, Lease: a.Lease, Index: a.Index}
	if err != nil {
		req.Error = err.Error()
		w.logf("sweepd worker %s: point %d failed: %v\n", w.ID, a.Index, err)
	} else {
		env, err := resultstore.Encode(key, engine.CodeVersion, run, snap)
		if err != nil {
			req.Error = err.Error()
		} else {
			req.Envelope = env
		}
	}
	return w.postRetry(ctx, "/result", req, nil)
}

// runPoint executes one point with engine-style panic isolation,
// consulting and filling the worker's local store when one is attached.
func (w *Worker) runPoint(job engine.Job, key string) (run *stats.Run, snap *stats.Snapshot, err error) {
	if w.Store != nil && w.Reuse && key != "" {
		r, s, found, gerr := w.Store.Get(key)
		if gerr != nil {
			return nil, nil, fmt.Errorf("sweepd worker: store get %s: %w", key, gerr)
		}
		if found {
			return r, s, nil
		}
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweepd worker: point %s/%s/%s panicked: %v\n%s",
				job.Point.Protocol, job.Point.Topo, job.Point.Workload, r, debug.Stack())
		}
	}()
	run, snap, err = engine.RunPointMetrics(job.Point)
	if err == nil && w.Store != nil && key != "" {
		if perr := w.Store.Put(key, run, snap); perr != nil {
			return nil, nil, fmt.Errorf("sweepd worker: store put %s: %w", key, perr)
		}
	}
	return run, snap, err
}
