package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/resultstore"
)

// testPlan is the suite's toy grid: 2 protocols x 2 seeds of tiny
// 4-processor points — real simulations, so envelopes are genuine, but
// milliseconds each.
func testPlan() engine.Plan {
	return engine.Plan{
		Variants: []engine.Variant{
			{Name: "tokenb-torus", Point: engine.Point{Protocol: "tokenb", Topo: "torus", Procs: 4}},
			{Name: "directory-torus", Point: engine.Point{Protocol: "directory", Topo: "torus", Procs: 4}},
		},
		Workloads: []string{"oltp"},
		Seeds:     []uint64{1, 2},
		Ops:       60,
		Warmup:    20,
	}
}

// fakeClock is the injectable time source: lease expiry in these tests
// is driven by advance(), never by sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// envelopes computes every job's result out-of-band: the reference
// payloads tests deliver to the coordinator by hand.
func envelopes(t *testing.T, plan engine.Plan) (jobs []engine.Job, keys []string, envs [][]byte) {
	t.Helper()
	jobs, err := plan.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	_, keys, err = Fingerprint(jobs)
	if err != nil {
		t.Fatal(err)
	}
	envs = make([][]byte, len(jobs))
	for i, job := range jobs {
		run, snap, err := engine.RunPointMetrics(job.Point)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		envs[i], err = resultstore.Encode(keys[i], engine.CodeVersion, run, snap)
		if err != nil {
			t.Fatal(err)
		}
	}
	return jobs, keys, envs
}

// serialJSONL runs the plan through the in-process engine: the byte
// reference every distributed execution must reproduce.
func serialJSONL(t *testing.T, plan engine.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	eng := engine.Engine{Workers: 1}
	if _, err := eng.Execute(context.Background(), plan, &engine.JSONLSink{W: &buf}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// do drives one coordinator endpoint directly (no network).
func do(t *testing.T, h http.Handler, method, path string, in, out any) int {
	t.Helper()
	var body *bytes.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(raw)
	} else {
		body = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func leaseAll(t *testing.T, h http.Handler, worker string, max int) LeaseResponse {
	t.Helper()
	var resp LeaseResponse
	if code := do(t, h, "POST", "/lease", LeaseRequest{Worker: worker, Max: max}, &resp); code != http.StatusOK {
		t.Fatalf("lease: HTTP %d", code)
	}
	return resp
}

// TestLeaseLifecycle covers the full lease state machine with an
// injected clock: issue, heartbeat renewal, expiry, re-issue to another
// worker, late delivery from the original holder, and the idempotent
// byte-identical duplicate — ending with output byte-identical to a
// serial run.
func TestLeaseLifecycle(t *testing.T) {
	plan := testPlan()
	_, _, envs := envelopes(t, plan)
	ref := serialJSONL(t, plan)

	clk := newFakeClock()
	ttl := 10 * time.Second
	var out bytes.Buffer
	var logBuf bytes.Buffer
	c := &Coordinator{Plan: plan, LeaseTTL: ttl, Now: clk.now, Log: &logBuf}
	if err := c.Init(&engine.JSONLSink{W: &out}); err != nil {
		t.Fatal(err)
	}
	h := c.Handler()

	// Worker A takes the whole plan.
	respA := leaseAll(t, h, "A", 10)
	if len(respA.Assignments) != 4 || respA.Done {
		t.Fatalf("A leased %d assignments (done=%v), want 4", len(respA.Assignments), respA.Done)
	}
	var health Health
	do(t, h, "GET", "/healthz", nil, &health)
	if health.Leased != 4 || health.Workers != 1 {
		t.Fatalf("healthz after lease: %+v", health)
	}

	// Half a TTL later A heartbeats; the leases survive past their
	// original deadline.
	clk.advance(ttl / 2)
	var ids []string
	for _, a := range respA.Assignments {
		ids = append(ids, a.Lease)
	}
	var hb HeartbeatResponse
	if code := do(t, h, "POST", "/heartbeat", HeartbeatRequest{Worker: "A", Leases: ids}, &hb); code != http.StatusOK {
		t.Fatalf("heartbeat: HTTP %d", code)
	}
	if len(hb.Expired) != 0 {
		t.Fatalf("heartbeat reported expired leases %v before the TTL", hb.Expired)
	}
	clk.advance(3 * ttl / 4) // past the original deadline, inside the renewed one
	if resp := leaseAll(t, h, "B", 10); len(resp.Assignments) != 0 || resp.WaitMillis <= 0 {
		t.Fatalf("B got %d assignments while A's renewed leases live (wait=%d)", len(resp.Assignments), resp.WaitMillis)
	}

	// A goes silent. One TTL later its leases expire lazily at B's next
	// request and every point re-issues.
	clk.advance(ttl + time.Second)
	respB := leaseAll(t, h, "B", 10)
	if len(respB.Assignments) != 4 {
		t.Fatalf("B got %d re-issued assignments, want 4", len(respB.Assignments))
	}
	do(t, h, "GET", "/healthz", nil, &health)
	if health.Expired != 4 {
		t.Fatalf("expired = %d, want 4", health.Expired)
	}
	if !strings.Contains(logBuf.String(), "expired; re-issuing") {
		t.Errorf("expiry was not logged: %q", logBuf.String())
	}
	// A's heartbeat now learns its leases are gone.
	hb = HeartbeatResponse{}
	do(t, h, "POST", "/heartbeat", HeartbeatRequest{Worker: "A", Leases: ids}, &hb)
	if len(hb.Expired) != 4 {
		t.Fatalf("A's heartbeat reported %d expired, want 4", len(hb.Expired))
	}

	// A's late delivery for point 0 is still accepted (at-least-once):
	// deterministic results make it exactly the envelope B would send.
	if code := do(t, h, "POST", "/result", ResultRequest{Worker: "A", Lease: ids[0], Index: 0, Envelope: envs[0]}, nil); code != http.StatusOK {
		t.Fatalf("late result: HTTP %d", code)
	}
	// B's byte-identical duplicate is idempotent.
	var lease0 string
	for _, a := range respB.Assignments {
		if a.Index == 0 {
			lease0 = a.Lease
		}
	}
	if code := do(t, h, "POST", "/result", ResultRequest{Worker: "B", Lease: lease0, Index: 0, Envelope: envs[0]}, nil); code != http.StatusOK {
		t.Fatalf("duplicate result: HTTP %d", code)
	}
	// B finishes the rest.
	for _, a := range respB.Assignments {
		if a.Index == 0 {
			continue
		}
		if code := do(t, h, "POST", "/result", ResultRequest{Worker: "B", Lease: a.Lease, Index: a.Index, Envelope: envs[a.Index]}, nil); code != http.StatusOK {
			t.Fatalf("result %d: HTTP %d", a.Index, code)
		}
	}
	if resp := leaseAll(t, h, "B", 1); !resp.Done {
		t.Error("lease after completion should report done")
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), ref) {
		t.Errorf("distributed output differs from serial run:\n got: %s\nwant: %s", out.Bytes(), ref)
	}
}

// TestDuplicateDivergenceIsFatal: a duplicate envelope whose bytes
// differ from the first accepted one must stop the coordinator loudly —
// never last-write-wins.
func TestDuplicateDivergenceIsFatal(t *testing.T) {
	plan := testPlan()
	jobs, keys, envs := envelopes(t, plan)

	clk := newFakeClock()
	c := &Coordinator{Plan: plan, Now: clk.now}
	if err := c.Init(&engine.JSONLSink{W: &bytes.Buffer{}}); err != nil {
		t.Fatal(err)
	}
	h := c.Handler()
	resp := leaseAll(t, h, "A", 1)
	idx := resp.Assignments[0].Index
	if code := do(t, h, "POST", "/result", ResultRequest{Worker: "A", Lease: resp.Assignments[0].Lease, Index: idx, Envelope: envs[idx]}, nil); code != http.StatusOK {
		t.Fatalf("first result: HTTP %d", code)
	}

	// A "divergent" second delivery: same key, different run contents.
	run, snap, err := engine.RunPointMetrics(jobs[idx].Point)
	if err != nil {
		t.Fatal(err)
	}
	run.Transactions++
	bad, err := resultstore.Encode(keys[idx], engine.CodeVersion, run, snap)
	if err != nil {
		t.Fatal(err)
	}
	if code := do(t, h, "POST", "/result", ResultRequest{Worker: "B", Lease: "bogus", Index: idx, Envelope: bad}, nil); code != http.StatusConflict {
		t.Fatalf("divergent duplicate: HTTP %d, want %d", code, http.StatusConflict)
	}
	var health Health
	if code := do(t, h, "GET", "/healthz", nil, &health); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after divergence: HTTP %d, want 503", code)
	}
	if code := do(t, h, "POST", "/lease", LeaseRequest{Worker: "B", Max: 1}, nil); code != http.StatusConflict {
		t.Errorf("lease after divergence: HTTP %d, want 409", code)
	}
	err = c.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "DIVERGES") {
		t.Errorf("Wait = %v, want divergence error", err)
	}
}

// TestResultKeyMismatchIsFatal: an envelope keyed for a different point
// than the index names means the worker expanded a different plan.
func TestResultKeyMismatchIsFatal(t *testing.T) {
	plan := testPlan()
	_, _, envs := envelopes(t, plan)
	c := &Coordinator{Plan: plan, Now: newFakeClock().now}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	h := c.Handler()
	resp := leaseAll(t, h, "A", 1)
	wrong := envs[resp.Assignments[0].Index+1]
	if code := do(t, h, "POST", "/result", ResultRequest{Worker: "A", Lease: resp.Assignments[0].Lease, Index: resp.Assignments[0].Index, Envelope: wrong}, nil); code != http.StatusConflict {
		t.Fatalf("mismatched key: HTTP %d, want 409", code)
	}
	if err := c.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "plan divergence") {
		t.Errorf("Wait = %v, want plan-divergence error", err)
	}
}

// TestFailedPointCompletesPlan: a deterministic point failure is
// recorded like the engine records it — the plan still completes, the
// failed row is not emitted, and Wait surfaces the error.
func TestFailedPointCompletesPlan(t *testing.T) {
	plan := testPlan()
	_, _, envs := envelopes(t, plan)
	var out bytes.Buffer
	c := &Coordinator{Plan: plan, Now: newFakeClock().now}
	if err := c.Init(&engine.JSONLSink{W: &out}); err != nil {
		t.Fatal(err)
	}
	h := c.Handler()
	resp := leaseAll(t, h, "A", 10)
	for i, a := range resp.Assignments {
		req := ResultRequest{Worker: "A", Lease: a.Lease, Index: a.Index}
		if i == 0 {
			req.Error = "synthetic failure"
		} else {
			req.Envelope = envs[a.Index]
		}
		if code := do(t, h, "POST", "/result", req, nil); code != http.StatusOK {
			t.Fatalf("result %d: HTTP %d", a.Index, code)
		}
	}
	err := c.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("Wait = %v, want the point's failure", err)
	}
	var health Health
	do(t, h, "GET", "/healthz", nil, &health)
	if health.Done != 4 || health.Failed != 1 {
		t.Errorf("healthz: %+v, want done=4 failed=1", health)
	}
	if n := bytes.Count(out.Bytes(), []byte("\n")); n != 3 {
		t.Errorf("emitted %d rows, want 3 (failed row is skipped)", n)
	}
}

// TestReusePreload: with a store and Reuse, archived points complete at
// Init without ever being leased, and the emitted rows are still the
// serial reference bytes.
func TestReusePreload(t *testing.T) {
	plan := testPlan()
	_, keys, envs := envelopes(t, plan)
	ref := serialJSONL(t, plan)

	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, env := range envs {
		if err := st.PutRaw(keys[i], env); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	c := &Coordinator{Plan: plan, Store: st, Reuse: true, Now: newFakeClock().now}
	if err := c.Init(&engine.JSONLSink{W: &out}); err != nil {
		t.Fatal(err)
	}
	if resp := leaseAll(t, c.Handler(), "A", 10); !resp.Done || len(resp.Assignments) != 0 {
		t.Fatalf("fully-archived plan still leased work: %+v", resp)
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), ref) {
		t.Errorf("preloaded output differs from serial run")
	}
	var health Health
	do(t, c.Handler(), "GET", "/healthz", nil, &health)
	if health.Cached != 4 || health.Done != 4 {
		t.Errorf("healthz: %+v, want cached=4 done=4", health)
	}
}

// TestWorkerStatsAndLiveness: the per-worker telemetry map tracks
// leases, completions, failures, and heartbeat age; LiveWorkers drops a
// worker two TTLs after its last contact.
func TestWorkerStatsAndLiveness(t *testing.T) {
	plan := testPlan()
	_, _, envs := envelopes(t, plan)
	clk := newFakeClock()
	ttl := 10 * time.Second
	c := &Coordinator{Plan: plan, LeaseTTL: ttl, Now: clk.now}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	h := c.Handler()
	respA := leaseAll(t, h, "A", 2)
	leaseAll(t, h, "B", 1)
	do(t, h, "POST", "/result", ResultRequest{Worker: "A", Lease: respA.Assignments[0].Lease, Index: respA.Assignments[0].Index, Envelope: envs[respA.Assignments[0].Index]}, nil)

	stats := c.WorkerStats()
	if len(stats) != 2 || stats[0].ID != "A" || stats[1].ID != "B" {
		t.Fatalf("WorkerStats = %+v", stats)
	}
	if stats[0].Leases != 1 || stats[0].Completed != 1 {
		t.Errorf("A: %+v, want 1 lease held and 1 completed", stats[0])
	}
	if got := c.LiveWorkers(); got != 2 {
		t.Errorf("LiveWorkers = %d, want 2", got)
	}
	clk.advance(3 * ttl)
	if got := c.LiveWorkers(); got != 0 {
		t.Errorf("LiveWorkers after silence = %d, want 0", got)
	}
	if age := c.WorkerStats()[0].LastSeenSec; age < (3 * ttl).Seconds() {
		t.Errorf("LastSeenSec = %v, want >= %v", age, (3 * ttl).Seconds())
	}
}

// TestWorkerRejectsForeignPlan: a worker whose local expansion differs
// from the coordinator's fingerprint must refuse to take work.
func TestWorkerRejectsForeignPlan(t *testing.T) {
	plan := testPlan()
	c := &Coordinator{Plan: plan, Now: newFakeClock().now}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	w := &Worker{
		ID:      "w1",
		BaseURL: srv.URL,
		Resolve: func(PlanSpec) (engine.Plan, error) {
			p := testPlan()
			p.Ops = 999 // a genuinely different plan
			return p, nil
		},
		RetryBase: time.Millisecond, RetryBudget: time.Second,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := w.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("Run = %v, want fingerprint mismatch", err)
	}
}

// TestFingerprintStability: equal plans agree, different plans differ,
// and the fingerprint covers mutation effects (hashed by value through
// PointKey's effective config).
func TestFingerprintStability(t *testing.T) {
	jobsA, err := testPlan().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	jobsB, err := testPlan().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	fpA, keysA, err := Fingerprint(jobsA)
	if err != nil {
		t.Fatal(err)
	}
	fpB, _, err := Fingerprint(jobsB)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Error("equal plans produced different fingerprints")
	}
	if len(keysA) != len(jobsA) {
		t.Fatalf("got %d keys for %d jobs", len(keysA), len(jobsA))
	}
	for i, k := range keysA {
		if k == "" {
			t.Errorf("job %d has no key; test plan should be fully cacheable", i)
		}
	}
	other := testPlan()
	other.Seeds = []uint64{1, 3}
	jobsC, err := other.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	fpC, _, err := Fingerprint(jobsC)
	if err != nil {
		t.Fatal(err)
	}
	if fpC == fpA {
		t.Error("different plans share a fingerprint")
	}
}
