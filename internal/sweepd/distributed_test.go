package sweepd

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/resultstore"
)

// TestDistributedByteIdentity is the subsystem's acceptance test: a
// coordinator with real in-process workers over real HTTP, plus a
// worker that leases points and dies without delivering them, must
// still produce JSONL byte-identical to a single-process serial run —
// with the dead worker's leases demonstrably expired and rebalanced.
func TestDistributedByteIdentity(t *testing.T) {
	plan := testPlan()
	plan.Seeds = []uint64{1, 2, 3} // 6 points: enough to spread across workers
	ref := serialJSONL(t, plan)

	var out bytes.Buffer
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.SetVersion(engine.CodeVersion)
	c := &Coordinator{
		Plan:     plan,
		Spec:     PlanSpec{Kind: "test"},
		Store:    store,
		LeaseTTL: 200 * time.Millisecond,
		Log:      io.Discard,
	}
	if err := c.Init(&engine.JSONLSink{W: &out}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// The casualty: grab two leases over the real API and never
	// heartbeat or deliver — exactly what a kill -9'd worker looks like
	// from the coordinator's side.
	dead := leaseAll(t, c.Handler(), "dead-worker", 2)
	if len(dead.Assignments) != 2 {
		t.Fatalf("dead worker leased %d points, want 2", len(dead.Assignments))
	}

	resolve := func(PlanSpec) (engine.Plan, error) { return plan, nil }
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, parallel := range []int{1, 2} {
		w := &Worker{
			ID:        []string{"w1", "w2"}[i],
			BaseURL:   srv.URL,
			Resolve:   resolve,
			Parallel:  parallel,
			RetryBase: 10 * time.Millisecond,
			Log:       io.Discard,
		}
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(out.Bytes(), ref) {
		t.Errorf("distributed output differs from serial run:\n got: %s\nwant: %s", out.Bytes(), ref)
	}
	var health Health
	do(t, c.Handler(), "GET", "/healthz", nil, &health)
	if health.Done != 6 || health.Failed != 0 {
		t.Errorf("healthz: %+v, want 6 done, 0 failed", health)
	}
	if health.Expired < 2 {
		t.Errorf("expired = %d, want >= 2 (the dead worker held 2 leases)", health.Expired)
	}
	// Every point was archived in the coordinator's store.
	if n, err := store.Len(); err != nil || n != 6 {
		t.Errorf("store Len = %d, %v, want 6", n, err)
	}
}

// TestDistributedResume: a second distributed run over the same store
// completes entirely from the archive — workers connect, see done, and
// exit without simulating — and still emits the reference bytes.
func TestDistributedResume(t *testing.T) {
	plan := testPlan()
	ref := serialJSONL(t, plan)
	_, keys, envs := envelopes(t, plan)

	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := range envs {
		if err := store.PutRaw(keys[i], envs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	c := &Coordinator{Plan: plan, Store: store, Reuse: true, LeaseTTL: 200 * time.Millisecond}
	if err := c.Init(&engine.JSONLSink{W: &out}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	w := &Worker{
		ID:      "w1",
		BaseURL: srv.URL,
		Resolve: func(PlanSpec) (engine.Plan, error) { return plan, nil },
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), ref) {
		t.Errorf("resumed output differs from serial run")
	}
	var health Health
	do(t, c.Handler(), "GET", "/healthz", nil, &health)
	if health.Cached != 4 || health.Expired != 0 {
		t.Errorf("healthz: %+v, want 4 cached, 0 expired", health)
	}
}
