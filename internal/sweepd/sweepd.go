// Package sweepd distributes one sweep plan across machines: a
// coordinator expands the plan once and serves its points as leases over
// HTTP/JSON (stdlib only), and workers request leases, run points
// through the normal engine path, and stream completed result envelopes
// back.
//
// The design leans entirely on the correctness substrate the rest of the
// harness already provides — every point is an independent deterministic
// simulation addressed by engine.PointKey — so distribution can be
// arbitrarily aggressive without risking output fidelity:
//
//   - Points never travel over the wire. A plan's closures (mutations,
//     generators) cannot be serialized, so the coordinator advertises the
//     PlanSpec it was built from plus a fingerprint over every job's
//     PointKey; each worker rebuilds the plan from the spec with its own
//     binary and refuses to serve a coordinator whose fingerprint (or
//     engine.CodeVersion) differs. A lease is then just plan indices.
//
//   - Execution is at-least-once. Leases carry deadlines renewed by
//     heartbeats; when a worker dies or goes silent its leases expire and
//     the points are re-issued to live workers. A point computed twice is
//     harmless because results are deterministic — the coordinator
//     demands that duplicate envelopes for one key be byte-identical and
//     fails loudly on divergence rather than silently keeping one.
//
//   - Output is byte-identical to a single-process run. The coordinator
//     archives every envelope in its own content-addressed store and
//     emits rows through the engine's plan-order sinks, holding results
//     until their contiguous prefix is complete exactly as the in-process
//     engine does.
package sweepd

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"tokencoherence/internal/engine"
)

// PlanSpec names a plan in terms every cooperating process can resolve
// locally: the sweep kind and its scalar parameters. It is the unit of
// worker/coordinator agreement — closures stay inside each binary, the
// spec travels.
type PlanSpec struct {
	Kind     string `json:"kind"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Ops      int    `json:"ops"`
	Warmup   int    `json:"warmup"`
	Islands  int    `json:"islands"`
}

// PlanInfo is the GET /plan response: everything a worker needs to
// rebuild and verify the coordinator's plan before taking work.
type PlanInfo struct {
	// CodeVersion is the coordinator binary's engine.CodeVersion; a
	// worker built from different simulator code must not run points.
	CodeVersion string   `json:"code_version"`
	Spec        PlanSpec `json:"spec"`
	// Total is the plan's deterministic job count.
	Total int `json:"total"`
	// Fingerprint commits the coordinator to its exact job sequence (see
	// Fingerprint); workers recompute and compare it.
	Fingerprint string `json:"fingerprint"`
	// LeaseTTLMillis tells workers the heartbeat budget: a lease not
	// renewed within this window expires and its point is re-issued.
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
}

// LeaseRequest asks for up to Max points. Worker identifies the daemon
// for telemetry and lease accounting; it must be stable across requests.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// Assignment is one leased point.
type Assignment struct {
	// Lease is the opaque lease ID heartbeats and the result delivery
	// must name.
	Lease string `json:"lease"`
	// Index is the point's plan-wide index.
	Index int `json:"index"`
}

// LeaseResponse carries zero or more assignments. Done reports that
// every point has completed — workers exit. An empty, not-done response
// means all remaining points are leased elsewhere; the worker should
// poll again after WaitMillis (a dead peer's leases expire and re-enter
// the pending queue).
type LeaseResponse struct {
	Assignments []Assignment `json:"assignments,omitempty"`
	Done        bool         `json:"done,omitempty"`
	WaitMillis  int64        `json:"wait_millis,omitempty"`
}

// HeartbeatRequest renews the named leases.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Leases []string `json:"leases,omitempty"`
}

// HeartbeatResponse lists the requested leases that no longer exist —
// they expired (and were or will be re-issued) before the renewal
// arrived. The worker may keep computing them: its late result is still
// correct and the coordinator accepts it idempotently.
type HeartbeatResponse struct {
	Expired []string `json:"expired,omitempty"`
}

// ResultRequest streams one completed point back. Exactly one of
// Envelope (success: the resultstore wire encoding of the run, see
// resultstore.Encode) and Error (the point failed deterministically;
// retrying elsewhere would fail identically) is set.
type ResultRequest struct {
	Worker   string `json:"worker"`
	Lease    string `json:"lease"`
	Index    int    `json:"index"`
	Error    string `json:"error,omitempty"`
	Envelope []byte `json:"envelope,omitempty"`
}

// WorkerStatus is one row of the coordinator's per-worker telemetry map.
type WorkerStatus struct {
	ID        string `json:"id"`
	Leases    int    `json:"leases"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// LastSeenSec is the age of the worker's last request or heartbeat.
	LastSeenSec float64 `json:"last_seen_sec"`
}

// Health is the GET /healthz response.
type Health struct {
	// Status is "ok" while the coordinator accepts work, "fatal" after a
	// divergent duplicate envelope stopped the run.
	Status  string `json:"status"`
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
	Cached  int    `json:"cached"`
	Workers int    `json:"workers"`
	Leased  int    `json:"leased"`
	// Expired counts leases that timed out and had their points
	// re-issued — the rebalancing activity counter.
	Expired int `json:"expired"`
}

// Fingerprint commits a job sequence to a single hash: engine
// CodeVersion, job count, and per-job plan coordinates plus PointKey.
// Two processes that compute equal fingerprints from a PlanSpec will
// compute byte-identical results for every index, which is what makes a
// lease — a bare index — a safe unit of work distribution. Jobs whose
// points are uncacheable (engine.ErrUncacheable) contribute their plan
// coordinates only; such plans still distribute, with correspondingly
// weaker cross-binary verification. The per-job keys are returned too
// ("" for uncacheable jobs) since every caller needs them next.
func Fingerprint(jobs []engine.Job) (string, []string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "version=%s\njobs=%d\n", engine.CodeVersion, len(jobs))
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		k, err := engine.PointKey(j.Point)
		if err != nil && !errors.Is(err, engine.ErrUncacheable) {
			return "", nil, fmt.Errorf("sweepd: job %d: %w", j.Index, err)
		}
		keys[i] = k
		fmt.Fprintf(h, "%d %s %s %s %d %s\n",
			j.Index, j.Variant, j.Mutation, j.Point.Workload, j.Point.Seed, k)
	}
	return hex.EncodeToString(h.Sum(nil)), keys, nil
}
