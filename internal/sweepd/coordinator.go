package sweepd

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/resultstore"
)

// jobPhase tracks one point through the lease lifecycle.
type jobPhase uint8

const (
	jobPending jobPhase = iota // waiting in the queue
	jobLeased                  // held by a live lease
	jobDone                    // envelope accepted (or failure recorded)
)

// lease is one outstanding assignment.
type lease struct {
	worker   string
	index    int
	deadline time.Time
}

// workerInfo is the coordinator's view of one worker daemon.
type workerInfo struct {
	leases    int
	completed int
	failed    int
	lastSeen  time.Time
}

// Coordinator owns one plan's distributed execution: it expands the plan
// once, serves points as leases, collects result envelopes, archives
// them, and emits rows through the engine's plan-order sinks. Configure
// the exported fields, call Init, serve Handler, and Wait.
//
// All state transitions happen under one mutex on HTTP handler
// goroutines; there is no background timer — lease expiry is evaluated
// lazily whenever a worker asks for work (an idle cluster has nobody to
// hand an expired point to anyway), which also makes expiry fully
// testable with an injected clock.
type Coordinator struct {
	// Plan is the expanded-once source of truth for job identity.
	Plan engine.Plan
	// Spec is the plan's serializable name, advertised to workers.
	Spec PlanSpec
	// Store, when set, archives every accepted envelope under its
	// PointKey (byte-exactly, via PutRaw); with Reuse, archived points
	// are recalled at Init and never leased at all.
	Store *resultstore.Store
	Reuse bool
	// LeaseTTL is the heartbeat budget; an unrenewed lease expires and
	// its point is re-issued. Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Now is the injectable clock (nil = time.Now).
	Now func() time.Time
	// Progress, when set, is called after each point completes, under
	// the coordinator's lock — same contract as engine.Engine.Progress
	// (calls never overlap).
	Progress func(engine.Progress)
	// Log, when set, receives loud operational notices: expired leases,
	// re-issued points, divergence. Each notice is one Write.
	Log io.Writer

	mu       sync.Mutex
	jobs     []engine.Job
	keys     []string // per-job PointKey, "" when uncacheable
	phase    []jobPhase
	results  []engine.Result
	digests  map[int][32]byte // canonical envelope digest per done index
	pending  []int            // FIFO of re-issuable/unissued indices
	leases   map[string]*lease
	workers  map[string]*workerInfo
	sinks    []engine.Sink
	emitNext int
	done     int
	failed   int
	cached   int
	expired  int
	leaseSeq int
	fatalErr error
	sinkErr  error
	finished chan struct{}
	ended    bool
	info     PlanInfo
}

// DefaultLeaseTTL is the heartbeat budget when Coordinator.LeaseTTL is
// unset: long enough that a healthy worker mid-point renews several
// times, short enough that a dead worker's points re-issue promptly.
const DefaultLeaseTTL = 15 * time.Second

func (c *Coordinator) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Coordinator) ttl() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format, args...)
	}
}

// Init expands the plan, fingerprints it, begins the sinks, and (in
// Reuse mode) recalls every already-archived point so only the missing
// ones are leased. It must be called once before Handler or Wait.
func (c *Coordinator) Init(sinks ...engine.Sink) error {
	jobs, err := c.Plan.Jobs()
	if err != nil {
		return err
	}
	fp, keys, err := Fingerprint(jobs)
	if err != nil {
		return err
	}
	c.jobs, c.keys = jobs, keys
	c.phase = make([]jobPhase, len(jobs))
	c.results = make([]engine.Result, len(jobs))
	for i, job := range jobs {
		c.results[i] = engine.Result{Job: job}
	}
	c.digests = make(map[int][32]byte)
	c.leases = make(map[string]*lease)
	c.workers = make(map[string]*workerInfo)
	c.finished = make(chan struct{})
	c.sinks = sinks
	c.info = PlanInfo{
		CodeVersion:    engine.CodeVersion,
		Spec:           c.Spec,
		Total:          len(jobs),
		Fingerprint:    fp,
		LeaseTTLMillis: c.ttl().Milliseconds(),
	}
	for _, s := range sinks {
		if err := s.Begin(len(jobs)); err != nil {
			return err
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range jobs {
		if c.Reuse && c.Store != nil && keys[i] != "" {
			run, snap, found, err := c.Store.Get(keys[i])
			if err != nil {
				return fmt.Errorf("sweepd: store get %s: %w", keys[i], err)
			}
			if found {
				c.results[i].Run, c.results[i].Metrics, c.results[i].Cached = run, snap, true
				c.cached++
				c.completeLocked(i)
				continue
			}
		}
		c.pending = append(c.pending, i)
	}
	return nil
}

// Handler returns the coordinator's HTTP API: /plan, /lease, /heartbeat,
// /result, and /healthz.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /plan", c.handlePlan)
	mux.HandleFunc("POST /lease", c.handleLease)
	mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /result", c.handleResult)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

// Wait blocks until every point has completed or ctx is cancelled, then
// gives each sink its one End call (flushing buffered output on every
// exit path, like engine.Execute). It returns the divergence error if
// distributed execution produced non-identical duplicates, else the
// context's error if cancelled, else the lowest-index job error, else
// the first sink error.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.finished:
	case <-ctx.Done():
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ended {
		c.ended = true
		for _, s := range c.sinks {
			if es, ok := s.(engine.EndSink); ok {
				if err := es.End(); err != nil && c.sinkErr == nil {
					c.sinkErr = err
				}
			}
		}
	}
	if c.fatalErr != nil {
		return c.fatalErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range c.results {
		if err := c.results[i].Err; err != nil {
			return err
		}
	}
	return c.sinkErr
}

// Results returns the completed results in plan order (valid after Wait).
func (c *Coordinator) Results() []engine.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.results
}

// WorkerStats snapshots the per-worker telemetry map, sorted by ID.
func (c *Coordinator) WorkerStats() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]WorkerStatus, 0, len(c.workers))
	for id, w := range c.workers {
		out = append(out, WorkerStatus{
			ID:          id,
			Leases:      w.leases,
			Completed:   w.completed,
			Failed:      w.failed,
			LastSeenSec: now.Sub(w.lastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LiveWorkers counts workers seen within two lease TTLs — the capacity
// figure the ETA model divides by.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(c.now())
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	cutoff := now.Add(-2 * c.ttl())
	n := 0
	for _, w := range c.workers {
		if !w.lastSeen.Before(cutoff) {
			n++
		}
	}
	return n
}

// health assembles the /healthz body under the lock.
func (c *Coordinator) health() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	status := "ok"
	if c.fatalErr != nil {
		status = "fatal"
	}
	return Health{
		Status:  status,
		Total:   len(c.jobs),
		Done:    c.done,
		Failed:  c.failed,
		Cached:  c.cached,
		Workers: len(c.workers),
		Leased:  len(c.leases),
		Expired: c.expired,
	}
}

// touchLocked records worker activity (and creates the stats row).
func (c *Coordinator) touchLocked(id string, now time.Time) *workerInfo {
	w := c.workers[id]
	if w == nil {
		w = &workerInfo{}
		c.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// sweepExpiredLocked returns every overdue lease's point to the pending
// queue. Called lazily from the request handlers — the coordinator needs
// no timer of its own.
func (c *Coordinator) sweepExpiredLocked(now time.Time) {
	for id, l := range c.leases {
		if l.deadline.After(now) {
			continue
		}
		delete(c.leases, id)
		if w := c.workers[l.worker]; w != nil {
			w.leases--
		}
		if c.phase[l.index] == jobLeased {
			c.phase[l.index] = jobPending
			c.pending = append(c.pending, l.index)
		}
		c.expired++
		c.logf("sweepd: lease %s (point %d, worker %s) expired; re-issuing\n", id, l.index, l.worker)
	}
}

// completeLocked marks index done and emits the contiguous prefix of
// completed results to the sinks, exactly as the in-process engine does,
// so distributed output is byte-identical to a serial run. Failed
// results occupy their slot but emit nothing.
func (c *Coordinator) completeLocked(index int) {
	if c.phase[index] == jobDone {
		return
	}
	c.phase[index] = jobDone
	c.done++
	if c.results[index].Err != nil {
		c.failed++
	}
	for c.emitNext < len(c.jobs) && c.phase[c.emitNext] == jobDone {
		r := c.results[c.emitNext]
		if r.Err == nil && c.sinkErr == nil {
			for _, s := range c.sinks {
				if err := s.Emit(r); err != nil {
					c.sinkErr = err
					break
				}
			}
		}
		c.emitNext++
	}
	if c.Progress != nil {
		c.Progress(engine.Progress{
			Done: c.done, Total: len(c.jobs), Failed: c.failed, Last: &c.results[index],
			Workers: c.liveWorkersLocked(c.now()),
		})
	}
	if c.done == len(c.jobs) {
		close(c.finished)
	}
}

// failLocked stops the run: duplicate divergence means the determinism
// contract is broken somewhere and no output can be trusted.
func (c *Coordinator) failLocked(err error) {
	if c.fatalErr != nil {
		return
	}
	c.fatalErr = err
	c.logf("sweepd: FATAL: %v\n", err)
	if c.done < len(c.jobs) {
		close(c.finished)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

func (c *Coordinator) handlePlan(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.info)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := c.health()
	status := http.StatusOK
	if h.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "bad lease request", http.StatusBadRequest)
		return
	}
	if req.Max < 1 {
		req.Max = 1
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatalErr != nil {
		http.Error(w, c.fatalErr.Error(), http.StatusConflict)
		return
	}
	wi := c.touchLocked(req.Worker, now)
	c.sweepExpiredLocked(now)
	var resp LeaseResponse
	for len(resp.Assignments) < req.Max && len(c.pending) > 0 {
		idx := c.pending[0]
		c.pending = c.pending[1:]
		if c.phase[idx] != jobPending {
			continue // completed while queued (late result beat the re-issue)
		}
		c.leaseSeq++
		id := fmt.Sprintf("l%d", c.leaseSeq)
		c.leases[id] = &lease{worker: req.Worker, index: idx, deadline: now.Add(c.ttl())}
		c.phase[idx] = jobLeased
		wi.leases++
		resp.Assignments = append(resp.Assignments, Assignment{Lease: id, Index: idx})
	}
	resp.Done = c.done == len(c.jobs)
	if len(resp.Assignments) == 0 && !resp.Done {
		// Everything left is leased elsewhere; poll again within a
		// fraction of the TTL so an expiry is picked up promptly.
		resp.WaitMillis = c.ttl().Milliseconds() / 4
		if resp.WaitMillis > 500 {
			resp.WaitMillis = 500
		}
		if resp.WaitMillis < 10 {
			resp.WaitMillis = 10
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "bad heartbeat request", http.StatusBadRequest)
		return
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(req.Worker, now)
	var resp HeartbeatResponse
	for _, id := range req.Leases {
		l := c.leases[id]
		if l == nil || l.worker != req.Worker {
			resp.Expired = append(resp.Expired, id)
			continue
		}
		l.deadline = now.Add(c.ttl())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResult accepts one completed point. Acceptance is deliberately
// lenient about leases — a result delivered after its lease expired (or
// for a point completed elsewhere) is still a correct result, because
// points are deterministic; at-least-once execution is made safe by the
// byte-identity check, not by fencing. What is never lenient: a
// duplicate envelope for a key that differs byte-for-byte from the first
// accepted one is a fatal coordinator error, not last-write-wins.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "bad result request", http.StatusBadRequest)
		return
	}
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Index < 0 || req.Index >= len(c.jobs) {
		http.Error(w, fmt.Sprintf("point %d out of range [0, %d)", req.Index, len(c.jobs)), http.StatusBadRequest)
		return
	}
	if c.fatalErr != nil {
		http.Error(w, c.fatalErr.Error(), http.StatusConflict)
		return
	}
	wi := c.touchLocked(req.Worker, now)
	if l := c.leases[req.Lease]; l != nil && l.index == req.Index {
		delete(c.leases, req.Lease)
		if lw := c.workers[l.worker]; lw != nil {
			lw.leases--
		}
	}

	if req.Error != "" {
		// Deterministic point failure: re-running it elsewhere would fail
		// identically, so record it like the engine does (the slot stays,
		// nothing is emitted) instead of retrying forever.
		if c.phase[req.Index] != jobDone {
			c.results[req.Index].Err = fmt.Errorf("sweepd: point %d failed on worker %s: %s", req.Index, req.Worker, req.Error)
			wi.failed++
			c.completeLocked(req.Index)
		}
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}

	key, _, run, snap, err := resultstore.Decode(req.Envelope)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if want := c.keys[req.Index]; want != "" && key != want {
		// The worker computed a different point than this index names —
		// plan divergence that the fingerprint should have caught.
		c.failLocked(fmt.Errorf("sweepd: point %d: worker %s delivered key %s, coordinator expects %s (plan divergence)",
			req.Index, req.Worker, key, want))
		http.Error(w, c.fatalErr.Error(), http.StatusConflict)
		return
	}
	digest := sha256.Sum256(req.Envelope)
	if prev, dup := c.digests[req.Index]; dup {
		if prev != digest {
			c.failLocked(fmt.Errorf("sweepd: duplicate envelope for point %d (key %s) from worker %s DIVERGES from the first accepted one: distributed execution is not deterministic, refusing to pick a winner",
				req.Index, key, req.Worker))
			http.Error(w, c.fatalErr.Error(), http.StatusConflict)
			return
		}
		// Byte-identical duplicate from a re-issued point: idempotent.
		wi.completed++
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}
	if c.phase[req.Index] == jobDone {
		// Completed from the store at Init; nothing recorded a digest, so
		// verify against the archive's canonical bytes instead.
		if c.results[req.Index].Err == nil && key != "" {
			if want, err := resultstore.Encode(key, envelopeVersion(req.Envelope), c.results[req.Index].Run, c.results[req.Index].Metrics); err == nil {
				if sha256.Sum256(want) != digest {
					c.failLocked(fmt.Errorf("sweepd: point %d (key %s): worker %s's envelope diverges from the archived result", req.Index, key, req.Worker))
					http.Error(w, c.fatalErr.Error(), http.StatusConflict)
					return
				}
			}
		}
		wi.completed++
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}

	if c.Store != nil && key != "" {
		if err := c.Store.PutRaw(key, req.Envelope); err != nil {
			// Loud, like the engine: a silently degraded archive would
			// defeat the resume guarantee.
			c.results[req.Index].Err = fmt.Errorf("sweepd: store put %s: %w", key, err)
			wi.failed++
			c.completeLocked(req.Index)
			writeJSON(w, http.StatusOK, struct{}{})
			return
		}
	}
	c.digests[req.Index] = digest
	c.results[req.Index].Run, c.results[req.Index].Metrics = run, snap
	wi.completed++
	c.completeLocked(req.Index)
	writeJSON(w, http.StatusOK, struct{}{})
}

// envelopeVersion peeks the version stamp out of raw envelope bytes.
func envelopeVersion(raw []byte) string {
	var v struct {
		Version string `json:"version"`
	}
	json.Unmarshal(raw, &v) //nolint:errcheck // raw already decoded once
	return v.Version
}
