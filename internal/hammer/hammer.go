// Package hammer implements a reverse-engineered approximation of AMD's
// Hammer (Opteron) coherence protocol (paper §5.1), representing systems
// that broadcast on unordered interconnects without directory state:
//
//   - A requester sends its GetS/GetM to the block's home node.
//   - The home serializes transactions per block (busy + queue, no
//     nacks) and broadcasts a probe to every other node; in parallel it
//     fetches the block from memory.
//   - Every probed node responds directly to the requester: the owner
//     with data, everyone else with an acknowledgment — the
//     all-processors-acknowledge traffic that Figure 5b highlights.
//   - The requester completes after collecting all N-1 probe responses
//     plus the memory response (preferring owner data over the possibly
//     stale memory copy) and unblocks the home.
//
// Writebacks are serialized through the home as well: the evictor sends
// an intent, the home grants the writeback slot, and the evictor then
// supplies the data — or cancels, if a probe took ownership away in the
// meantime. This keeps memory's copy current whenever no cache owner
// exists, which is what makes the memory response safe to use.
//
// Hammer avoids the directory lookup (lower latency than Directory for
// cache-to-cache misses) but pays indirection through the home and heavy
// acknowledgment traffic, exactly the trade-off the paper measures.
package hammer

import (
	"fmt"

	"tokencoherence/internal/cache"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/stats"
)

// MOSI stable states in cache.Line.State.
const (
	stateI = iota
	stateS
	stateO
	stateM
)

// wbEntry holds an evicted owner line until the home grants the
// writeback slot.
type wbEntry struct {
	data    uint64
	dirty   bool
	owner   bool
	written bool
}

// Cache is the Hammer cache controller.
type Cache struct {
	machine.CacheBase
	wb map[msg.Block][]*wbEntry
}

// NewCache builds node id's Hammer controller.
func NewCache(sys *machine.System, id msg.NodeID) *Cache {
	c := &Cache{wb: make(map[msg.Block][]*wbEntry)}
	c.InitBase(sys, id, c)
	sys.Net.Register(c.CachePort(), c)
	return c
}

// HasPermission implements machine.CacheHooks.
func (c *Cache) HasPermission(l *cache.Line, write bool) bool {
	if write {
		return l.State == stateM && l.Valid
	}
	return l.State >= stateS && l.Valid
}

// StartMiss implements machine.CacheHooks.
func (c *Cache) StartMiss(m *machine.MSHR) {
	// Expect one response from every other node plus the memory.
	m.AcksNeeded = c.Cfg.Procs
	kind := msg.KindGetS
	if m.Write {
		kind = msg.KindGetM
	}
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: kind, Cat: msg.CatRequest,
		Src: c.CachePort(), Dst: c.HomePort(m.Block),
		Addr: m.Block.Base(), Requester: c.CachePort(),
	}
	c.Net.Send(out)
}

// EvictL2 implements machine.CacheHooks: owner evictions announce intent
// to the home and park the line in the writeback buffer until the home
// grants the slot.
func (c *Cache) EvictL2(v cache.Line) {
	if v.State != stateM && v.State != stateO {
		return
	}
	for _, e := range c.wb[v.Block] {
		if e.owner {
			panic("hammer: evicting while an older writeback still owns the block")
		}
	}
	c.wb[v.Block] = append(c.wb[v.Block], &wbEntry{
		data: v.Data, dirty: v.Dirty, owner: true, written: v.Written,
	})
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindPutM, Cat: msg.CatControl,
		Src: c.CachePort(), Dst: c.HomePort(v.Block), Addr: v.Block.Base(),
	}
	c.Net.Send(out)
}

// ownerWB returns the writeback entry that still owns b, if any.
func (c *Cache) ownerWB(b msg.Block) *wbEntry {
	entries := c.wb[b]
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].owner {
			return entries[i]
		}
	}
	return nil
}

// Handle implements interconnect.Handler.
func (c *Cache) Handle(m *msg.Message) {
	switch m.Kind {
	case msg.KindProbe:
		c.onProbe(m)
	case msg.KindProbeData, msg.KindProbeAck, msg.KindMemData:
		c.onResponse(m)
	case msg.KindWBAck:
		c.onWBProceed(m)
	default:
		panic("hammer: cache received unexpected " + m.Kind.String())
	}
}

// onProbe answers a home broadcast. Probes are totally serialized by the
// home, so they always find stable state (or the writeback buffer).
func (c *Cache) onProbe(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	exclusive := m.Owner // probe for a GetM
	if e := c.ownerWB(b); e != nil {
		if exclusive {
			c.respond(m.Requester, b, msg.KindProbeData, e.data, true, e.dirty)
			e.owner = false
		} else {
			c.respond(m.Requester, b, msg.KindProbeData, e.data, false, false)
		}
		return
	}
	l := c.L2.Lookup(b)
	if l == nil || l.State == stateI {
		c.respond(m.Requester, b, msg.KindProbeAck, 0, false, false)
		return
	}
	switch {
	case exclusive && l.State >= stateO:
		c.respond(m.Requester, b, msg.KindProbeData, l.Data, true, l.Dirty)
		c.dropLine(b)
	case exclusive: // shared copy: invalidate and ack
		c.dropLine(b)
		c.respond(m.Requester, b, msg.KindProbeAck, 0, false, false)
	case c.Cfg.Migratory && l.State == stateM && l.Written:
		// Migratory-sharing optimization.
		c.respond(m.Requester, b, msg.KindProbeData, l.Data, true, l.Dirty)
		c.dropLine(b)
	case l.State == stateM:
		c.respond(m.Requester, b, msg.KindProbeData, l.Data, false, false)
		l.State = stateO
	case l.State == stateO:
		c.respond(m.Requester, b, msg.KindProbeData, l.Data, false, false)
	default: // S on a GetS probe
		c.respond(m.Requester, b, msg.KindProbeAck, 0, false, false)
	}
}

func (c *Cache) respond(to msg.Port, b msg.Block, kind msg.Kind, data uint64, grantOwner, dirty bool) {
	cat := msg.CatControl
	hasData := kind == msg.KindProbeData
	if hasData {
		cat = msg.CatData
	}
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: kind, Cat: cat,
		Src: c.CachePort(), Dst: to, Addr: b.Base(),
		HasData: hasData, Data: data, Owner: grantOwner, Dirty: dirty,
	}
	c.Net.SendAfter(out, c.Cfg.L2Latency)
}

// onResponse collects probe responses and the memory response.
func (c *Cache) onResponse(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	mshr := c.Outstanding[b]
	if mshr == nil {
		panic(fmt.Sprintf("hammer: node %d stray %v for block %d", c.ID, m.Kind, b))
	}
	mshr.AcksGot++
	if m.Kind == msg.KindProbeData {
		// Owner data beats the (possibly stale) memory copy.
		c.setFill(mshr, m)
		mshr.GotData = true
	} else if m.Kind == msg.KindMemData && !mshr.GotData {
		c.setFill(mshr, m)
	}
	if mshr.AcksGot < mshr.AcksNeeded {
		if mshr.Fill == m {
			// More responses are coming: keep this fill alive past the
			// handler call; CompleteMiss (or a better fill) recycles it.
			m.Retain()
			mshr.FillKept = true
		}
		return
	}
	// All responses in: pick the best data and fill.
	fill := mshr.Fill
	if fill == nil {
		panic("hammer: transaction completed without any data")
	}
	data, dirty, owner := fill.Data, fill.Dirty, fill.Owner
	written := false
	if e := c.ownerWB(b); e != nil {
		// Our own evicted copy is the real owner copy (self-race).
		data, dirty, owner, written = e.data, e.dirty, true, e.written
		e.owner = false
	}
	l := c.EnsureL2(b)
	l.Valid = true
	l.Data = data
	l.Dirty = dirty
	l.Written = written
	if mshr.Write || owner {
		l.State = stateM
	} else {
		l.State = stateS
	}
	c.CompleteMiss(mshr)
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindUnblock, Cat: msg.CatControl,
		Src: c.CachePort(), Dst: c.HomePort(b), Addr: b.Base(),
	}
	c.Net.Send(out)
}

// setFill records the transaction's best data response so far, recycling
// a previously kept fill it supersedes.
func (c *Cache) setFill(mshr *machine.MSHR, m *msg.Message) {
	if mshr.Fill != nil && mshr.FillKept {
		c.Net.FreeMessage(mshr.Fill)
	}
	mshr.Fill = m
	mshr.FillKept = false
}

// onWBProceed supplies the writeback data (or cancels a stale one).
func (c *Cache) onWBProceed(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	entries := c.wb[b]
	if len(entries) == 0 {
		panic("hammer: writeback grant with no pending writeback")
	}
	e := entries[0]
	if len(entries) == 1 {
		delete(c.wb, b)
	} else {
		c.wb[b] = entries[1:]
	}
	out := c.Net.NewMessage()
	if e.owner {
		*out = msg.Message{
			Kind: msg.KindPutM, Cat: msg.CatData,
			Src: c.CachePort(), Dst: c.HomePort(b), Addr: b.Base(),
			HasData: true, Data: e.data, Dirty: e.dirty,
		}
	} else {
		*out = msg.Message{
			Kind: msg.KindWBStale, Cat: msg.CatControl,
			Src: c.CachePort(), Dst: c.HomePort(b), Addr: b.Base(),
		}
	}
	c.Net.Send(out)
}

func (c *Cache) dropLine(b msg.Block) {
	c.L2.Remove(b)
	c.DropL1(b)
}

// homeLine is the per-block serialization state at the home.
type homeLine struct {
	data  uint64
	busy  bool
	queue []*msg.Message
}

// Memory is the Hammer home node controller: a per-block transaction
// queue and the DRAM copy, with no directory state at all.
type Memory struct {
	sys *machine.System
	// isle is the controller's island context; event-time message
	// allocation and sends go through its network view.
	isle  *machine.Isle
	id    msg.NodeID
	lines map[msg.Block]*homeLine
	// probeDsts caches, per requesting node, the static probe broadcast
	// set (every cache but the requester's).
	probeDsts [][]msg.Port
	// homeReqs is the protocol's named metric: transactions serialized
	// at home controllers.
	homeReqs *stats.Counter
}

// NewMemory builds and registers node id's home controller.
func NewMemory(sys *machine.System, id msg.NodeID) *Memory {
	m := &Memory{sys: sys, isle: sys.IsleFor(int(id)), id: id, lines: make(map[msg.Block]*homeLine)}
	m.homeReqs = sys.Metrics.Counter(stats.Desc{
		Name: "hammer_home_requests", Unit: "count", Fmt: "%.0f",
		Help: "transactions serialized at home controllers",
	})
	sys.Net.Register(m.Port(), m)
	return m
}

// Port returns the home controller's network port.
func (m *Memory) Port() msg.Port { return msg.Port{Node: m.id, Unit: msg.UnitMem} }

func (m *Memory) line(b msg.Block) *homeLine {
	if l, ok := m.lines[b]; ok {
		return l
	}
	l := &homeLine{}
	m.lines[b] = l
	return l
}

// Handle implements interconnect.Handler.
func (m *Memory) Handle(mm *msg.Message) {
	b := msg.BlockOf(mm.Addr)
	l := m.line(b)
	switch mm.Kind {
	case msg.KindGetS, msg.KindGetM:
		if l.busy {
			l.queue = append(l.queue, mm.Retain())
			return
		}
		m.startGet(l, mm)
	case msg.KindPutM:
		if mm.HasData {
			// Writeback data for the granted slot.
			l.data = mm.Data
			m.finish(l)
			return
		}
		if l.busy {
			l.queue = append(l.queue, mm.Retain())
			return
		}
		m.startPut(l, mm)
	case msg.KindWBStale:
		m.finish(l)
	case msg.KindUnblock:
		m.finish(l)
	default:
		panic("hammer: home received unexpected " + mm.Kind.String())
	}
}

// probeTargets returns the cached probe destination set for a requester.
func (m *Memory) probeTargets(req msg.NodeID) []msg.Port {
	if m.probeDsts == nil {
		m.probeDsts = make([][]msg.Port, m.sys.Cfg.Procs)
	}
	if m.probeDsts[req] == nil {
		dsts := make([]msg.Port, 0, m.sys.Cfg.Procs-1)
		for i := 0; i < m.sys.Cfg.Procs; i++ {
			if msg.NodeID(i) != req {
				dsts = append(dsts, msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache})
			}
		}
		m.probeDsts[req] = dsts
	}
	return m.probeDsts[req]
}

// startGet broadcasts probes to every node except the requester and
// fetches the memory copy in parallel.
func (m *Memory) startGet(l *homeLine, mm *msg.Message) {
	m.homeReqs.Inc()
	l.busy = true
	cfg := m.sys.Cfg
	probe := m.isle.Net.NewMessage()
	*probe = msg.Message{
		Kind: msg.KindProbe, Cat: msg.CatRequest,
		Src: m.Port(), Addr: mm.Addr, Requester: mm.Requester,
		Owner: mm.Kind == msg.KindGetM, // exclusive probe
	}
	m.isle.Net.MulticastAfter(probe, m.probeTargets(mm.Requester.Node), cfg.CtrlLatency)
	memData := m.isle.Net.NewMessage()
	*memData = msg.Message{
		Kind: msg.KindMemData, Cat: msg.CatData,
		Src: m.Port(), Dst: mm.Requester, Addr: mm.Addr,
		HasData: true, Data: l.data,
	}
	m.isle.Net.SendAfter(memData, cfg.CtrlLatency+cfg.MemLatency)
}

// startPut grants the writeback slot.
func (m *Memory) startPut(l *homeLine, mm *msg.Message) {
	m.homeReqs.Inc()
	l.busy = true
	out := m.isle.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindWBAck, Cat: msg.CatControl,
		Src: m.Port(), Dst: mm.Src, Addr: mm.Addr,
	}
	m.isle.Net.SendAfter(out, m.sys.Cfg.CtrlLatency)
}

// finish completes the current transaction and starts the next.
func (m *Memory) finish(l *homeLine) {
	if !l.busy {
		panic("hammer: completion on idle line")
	}
	l.busy = false
	if len(l.queue) == 0 {
		return
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	switch next.Kind {
	case msg.KindGetS, msg.KindGetM:
		m.startGet(l, next)
	case msg.KindPutM:
		m.startPut(l, next)
	}
	m.isle.Net.FreeMessage(next)
}

// System bundles the Hammer machine's components.
type System struct {
	Caches []*Cache
	Mems   []*Memory
}

// Build constructs the Hammer protocol on sys (any topology).
func Build(sys *machine.System) *System {
	s := &System{}
	for i := 0; i < sys.Cfg.Procs; i++ {
		s.Caches = append(s.Caches, NewCache(sys, msg.NodeID(i)))
		s.Mems = append(s.Mems, NewMemory(sys, msg.NodeID(i)))
	}
	return s
}

// Controllers adapts the caches for machine.System.Execute.
func (s *System) Controllers() []machine.Controller {
	out := make([]machine.Controller, len(s.Caches))
	for i, c := range s.Caches {
		out[i] = c
	}
	return out
}
