package hammer

import (
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

func newHammerSystem(t *testing.T, seed uint64, mutate func(*machine.Config)) (*machine.System, *System) {
	t.Helper()
	cfg := machine.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	sys := machine.NewSystem(cfg, topology.NewTorusFor(cfg.Procs), seed)
	return sys, Build(sys)
}

func access(sys *machine.System, c *Cache, addr msg.Addr, write bool) *bool {
	done := new(bool)
	c.Access(machine.Op{Addr: addr, Write: write}, func() { *done = true })
	return done
}

func finish(t *testing.T, sys *machine.System, done ...*bool) {
	t.Helper()
	sys.K.Run()
	for i, d := range done {
		if !*d {
			t.Fatalf("operation %d did not complete", i)
		}
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

func TestColdReadUsesMemoryData(t *testing.T) {
	sys, s := newHammerSystem(t, 1, nil)
	const addr = msg.Addr(0x100)
	r := access(sys, s.Caches[2], addr, false)
	finish(t, sys, r)
	l := s.Caches[2].L2.Lookup(msg.BlockOf(addr))
	if l == nil || l.State != stateS {
		t.Fatalf("reader line = %+v, want S", l)
	}
}

func TestEveryProcessorAcknowledges(t *testing.T) {
	sys, s := newHammerSystem(t, 2, nil)
	const addr = msg.Addr(0x200)
	w := access(sys, s.Caches[0], addr, true)
	finish(t, sys, w)
	// 15 probe responses (all acks, nobody had data) must have crossed
	// the interconnect: that is Hammer's defining overhead.
	if got := sys.Run.Traffic.Messages(msg.CatControl); got < 15 {
		t.Errorf("control traversals = %d, want >= 15 (one ack per probed node)", got)
	}
}

func TestOwnerDataBeatsStaleMemory(t *testing.T) {
	sys, s := newHammerSystem(t, 3, nil)
	const addr = msg.Addr(0x300)
	b := msg.BlockOf(addr)
	w := access(sys, s.Caches[1], addr, true)
	finish(t, sys, w)
	// Memory's copy is stale (version 0); the reader must get version 1
	// from the owner's probe response. The oracle verifies freshness.
	r := access(sys, s.Caches[2], addr, false)
	finish(t, sys, r)
	l := s.Caches[2].L2.Lookup(b)
	if l == nil || l.Data != 1 {
		t.Fatalf("reader got %+v, want owner's version 1", l)
	}
	if l.State != stateM {
		t.Errorf("written block should migrate exclusively, got state %d", l.State)
	}
}

func TestNonMigratorySharing(t *testing.T) {
	sys, s := newHammerSystem(t, 4, nil)
	const addr = msg.Addr(0x400)
	b := msg.BlockOf(addr)
	w := access(sys, s.Caches[0], addr, true)
	finish(t, sys, w)
	r1 := access(sys, s.Caches[1], addr, false) // migratory -> M at 1
	finish(t, sys, r1)
	r2 := access(sys, s.Caches[2], addr, false) // 1 has not written -> O/S
	finish(t, sys, r2)
	l1 := s.Caches[1].L2.Lookup(b)
	l2 := s.Caches[2].L2.Lookup(b)
	if l1 == nil || l1.State != stateO {
		t.Fatalf("cache 1 = %+v, want O", l1)
	}
	if l2 == nil || l2.State != stateS {
		t.Fatalf("cache 2 = %+v, want S", l2)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	sys, s := newHammerSystem(t, 5, nil)
	const addr = msg.Addr(0x500)
	b := msg.BlockOf(addr)
	var dones []*bool
	for i := 1; i < 6; i++ {
		dones = append(dones, access(sys, s.Caches[i], addr, false))
		finish(t, sys, dones...)
	}
	w := access(sys, s.Caches[0], addr, true)
	finish(t, sys, w)
	for i := 1; i < 6; i++ {
		if l := s.Caches[i].L2.Lookup(b); l != nil && l.State != stateI {
			t.Errorf("cache %d = %+v after exclusive probe", i, l)
		}
	}
}

func TestWritebackKeepsMemoryCurrent(t *testing.T) {
	sys, s := newHammerSystem(t, 6, func(c *machine.Config) {
		c.L2Size = 2 * msg.BlockSize
		c.L2Assoc = 1
		c.L1Size = msg.BlockSize
		c.L1Assoc = 1
	})
	c := s.Caches[0]
	a := msg.Addr(0)
	conflict := msg.Addr(2 * msg.BlockSize)
	w1 := access(sys, c, a, true)
	finish(t, sys, w1)
	w2 := access(sys, c, conflict, true)
	finish(t, sys, w2)
	// After the writeback nobody owns block a; a read must get the
	// written version from memory (the oracle checks freshness).
	r := access(sys, s.Caches[9], a, false)
	finish(t, sys, r)
	l := s.Caches[9].L2.Lookup(msg.BlockOf(a))
	if l == nil || l.Data != 1 {
		t.Fatalf("memory served %+v, want written version 1", l)
	}
}

func TestRacingWrites(t *testing.T) {
	sys, s := newHammerSystem(t, 7, nil)
	const addr = msg.Addr(0x700)
	var dones []*bool
	for i := 0; i < 10; i++ {
		dones = append(dones, access(sys, s.Caches[i], addr, true))
	}
	finish(t, sys, dones...)
	if got := sys.Oracle.Latest(msg.BlockOf(addr)); got != 10 {
		t.Errorf("final version = %d, want 10", got)
	}
}

func TestStress(t *testing.T) {
	for _, seed := range []uint64{71, 72, 73} {
		seed := seed
		t.Run("", func(t *testing.T) {
			sys, s := newHammerSystem(t, seed, nil)
			gen := &uniformGen{blocks: 24, pWrite: 0.4, think: 5 * sim.Nanosecond}
			run, err := sys.Execute(s.Controllers(), gen, 300)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if run.Misses.Issued == 0 {
				t.Error("no misses in stress run")
			}
		})
	}
}

func TestStressHighContention(t *testing.T) {
	sys, s := newHammerSystem(t, 80, nil)
	gen := &uniformGen{blocks: 2, pWrite: 0.6, think: 1 * sim.Nanosecond}
	if _, err := sys.Execute(s.Controllers(), gen, 150); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

func TestStressTinyCachesWritebackRaces(t *testing.T) {
	sys, s := newHammerSystem(t, 81, func(c *machine.Config) {
		c.L2Size = 4 * msg.BlockSize
		c.L2Assoc = 1
		c.L1Size = msg.BlockSize
		c.L1Assoc = 1
	})
	gen := &uniformGen{blocks: 12, pWrite: 0.5, think: 2 * sim.Nanosecond}
	if _, err := sys.Execute(s.Controllers(), gen, 250); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

type uniformGen struct {
	blocks int
	pWrite float64
	think  sim.Time
}

func (g *uniformGen) Next(proc int, rng *sim.Source) machine.Op {
	return machine.Op{
		Addr:  msg.Addr(rng.Intn(g.blocks)) * msg.BlockSize,
		Write: rng.Bool(g.pWrite),
		Think: g.think,
	}
}
