package machine

import (
	"fmt"
	"sync"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// Oracle is the safety checker. It verifies the property every protocol
// in this repository must provide — cache coherence, i.e. per-block
// sequential consistency:
//
//  1. Writes to a block are totally ordered (versions 1, 2, 3, ...).
//  2. A read returns a version that actually exists (no phantom data).
//  3. Each processor's accesses to a block observe non-decreasing
//     versions: once a processor has seen (read or written) version v,
//     it must never read an older version.
//  4. Write propagation: a read may not return a version that was
//     overwritten more than StaleLimit of simulated time before the
//     read committed (catches missed invalidations that rule 3 cannot
//     see for read-only sharers).
//
// Rules 1–3 are exact; rule 4 is a bounded-staleness net whose limit is
// far larger than any legitimate miss latency. Split-transaction
// protocols legally commit a read slightly after a racing write's
// wall-clock commit (the read is ordered earlier in coherence order), so
// a pure "latest version at commit time" check would raise false alarms;
// this oracle accepts those schedules while still failing on stale data.
type Oracle struct {
	// mu serializes commits and checks arriving from different islands of
	// a parallel run. The verdicts cannot depend on island interleaving:
	// a token (and with it write permission) crosses islands only through
	// the interconnect, at least one link latency after the previous
	// holder released it, so racing CommitWrite calls for one block are
	// impossible, and the StaleLimit slack (1 ms) dwarfs the lookahead
	// window (~15 ns) within which reads may reorder against writes.
	mu     sync.Mutex
	latest map[msg.Block]uint64
	// commitTime[b][i] is when version (first[b] + i + 1) committed.
	commitTime map[msg.Block][]sim.Time
	first      map[msg.Block]uint64
	seen       map[procBlock]uint64
	reads      uint64
	writes     uint64
	errs       []error

	// StaleLimit bounds rule 4 (default 1 ms).
	StaleLimit sim.Time
	// MaxErrors bounds recorded violations (default 16).
	MaxErrors int
}

type procBlock struct {
	proc  int
	block msg.Block
}

// NewOracle returns an empty oracle; all blocks start at version 0.
func NewOracle() *Oracle {
	return &Oracle{
		latest:     make(map[msg.Block]uint64),
		commitTime: make(map[msg.Block][]sim.Time),
		first:      make(map[msg.Block]uint64),
		seen:       make(map[procBlock]uint64),
		StaleLimit: sim.Millisecond,
	}
}

func (o *Oracle) fail(format string, args ...any) {
	max := o.MaxErrors
	if max == 0 {
		max = 16
	}
	if len(o.errs) < max {
		o.errs = append(o.errs, fmt.Errorf(format, args...))
	}
}

// CommitWrite records that proc committed a store to b at time now and
// returns the new version the writer must place in its copy.
func (o *Oracle) CommitWrite(proc int, b msg.Block, now sim.Time) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.writes++
	v := o.latest[b] + 1
	o.latest[b] = v
	o.commitTime[b] = append(o.commitTime[b], now)
	o.prune(b, now)
	o.seen[procBlock{proc, b}] = v
	return v
}

// prune drops commit-time history far older than the staleness window.
func (o *Oracle) prune(b msg.Block, now sim.Time) {
	times := o.commitTime[b]
	if len(times) < 4096 {
		return
	}
	horizon := now - 4*o.StaleLimit
	drop := 0
	for drop < len(times)-1 && times[drop] < horizon {
		drop++
	}
	if drop > 0 {
		o.commitTime[b] = append([]sim.Time(nil), times[drop:]...)
		o.first[b] += uint64(drop)
	}
}

// versionCommit returns when version v of b committed (ok=false when the
// history was pruned or v is 0/unknown).
func (o *Oracle) versionCommit(b msg.Block, v uint64) (sim.Time, bool) {
	if v == 0 {
		return 0, true
	}
	first := o.first[b]
	times := o.commitTime[b]
	if v <= first || v > first+uint64(len(times)) {
		return 0, false
	}
	return times[v-first-1], true
}

// CheckRead verifies that proc's completed load of b observed version v
// at time now.
func (o *Oracle) CheckRead(proc int, b msg.Block, v uint64, now sim.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.reads++
	latest := o.latest[b]
	if v > latest {
		o.fail("phantom read of block %d: got v%d, latest committed is v%d", b, v, latest)
		return
	}
	key := procBlock{proc, b}
	if prev := o.seen[key]; v < prev {
		o.fail("proc %d read block %d going backwards: got v%d after seeing v%d", proc, b, v, prev)
		return
	}
	o.seen[key] = v
	if v < latest {
		// The value was overwritten; allow it only within the staleness
		// window (split-transaction completion skew).
		next, ok := o.versionCommit(b, v+1)
		if !ok {
			o.fail("proc %d read block %d version v%d so old its history was pruned", proc, b, v)
			return
		}
		if now-next > o.StaleLimit {
			o.fail("proc %d stale read of block %d: v%d overwritten at %v, read at %v", proc, b, v, next, now)
		}
	}
}

// Latest reports the current committed version of b.
func (o *Oracle) Latest(b msg.Block) uint64 { return o.latest[b] }

// Image returns a copy of the final memory image: the last committed
// version of every block ever written. Two runs that executed the same
// operation stream — regardless of protocol, topology, or timing — must
// produce identical images; the cross-protocol differential test relies
// on this.
func (o *Oracle) Image() map[msg.Block]uint64 {
	img := make(map[msg.Block]uint64, len(o.latest))
	for b, v := range o.latest {
		img[b] = v
	}
	return img
}

// Reads and Writes report how many operations were checked.
func (o *Oracle) Reads() uint64  { return o.reads }
func (o *Oracle) Writes() uint64 { return o.writes }

// Err returns nil if no violation was observed, else a summary error.
func (o *Oracle) Err() error {
	if len(o.errs) == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %d coherence violations, first: %w", len(o.errs), o.errs[0])
}

// Violations returns all recorded violations.
func (o *Oracle) Violations() []error { return o.errs }
