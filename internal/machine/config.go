// Package machine provides the protocol-independent pieces of the target
// system: the Table 1 configuration, the timing processor model, the
// MSHR-based cache-controller base that all four protocols build on, the
// write-version safety oracle, and system wiring.
package machine

import (
	"io"

	"tokencoherence/internal/interconnect"
	"tokencoherence/internal/sim"
)

// Config holds the coherent-memory-system parameters of Table 1 plus the
// processor-model knobs this reproduction substitutes for the paper's
// out-of-order cores.
type Config struct {
	// Procs is the number of nodes (processor + caches + memory slice).
	Procs int

	// L1 split I/D caches: 128 kB, 4-way, 2 ns. We model a unified
	// latency-filter tag array of the combined size.
	L1Size    int
	L1Assoc   int
	L1Latency sim.Time

	// Unified L2: 4 MB, 4-way, 6 ns.
	L2Size    int
	L2Assoc   int
	L2Latency sim.Time

	// MemLatency is the DRAM access time (80 ns).
	MemLatency sim.Time
	// CtrlLatency is the memory/directory controller occupancy (6 ns).
	CtrlLatency sim.Time
	// DirLatency is the directory-lookup latency for the directory
	// protocol: MemLatency when the full map lives in DRAM, 0 for the
	// "perfect directory cache" variant.
	DirLatency sim.Time

	// MSHRs bounds outstanding coherence misses per processor,
	// approximating the memory-level parallelism of the paper's
	// 128-entry-ROB dynamically scheduled cores.
	MSHRs int
	// MaxLoads bounds outstanding loads: a dynamically scheduled core
	// soon blocks on a missing load's consumers, so load misses are
	// mostly exposed while store misses overlap (store buffering /
	// speculative SC, as in the paper's processors).
	MaxLoads int

	// TokensPerBlock is T in the correctness substrate; it must be at
	// least Procs.
	TokensPerBlock int

	// Migratory enables the migratory-sharing optimization (paper §4.2);
	// it is on by default in all four protocols, matching the paper's
	// methodology, and exists as a knob for the ablation benchmarks.
	Migratory bool

	// Reissue policy (paper §4.2): reissue after BackoffFactor x the
	// recent average miss latency plus a randomized exponential backoff
	// seeded at BackoffBase; escalate to a persistent request after
	// MaxReissues reissues.
	MaxReissues   int
	BackoffFactor int
	BackoffBase   sim.Time

	// Net holds the interconnect parameters.
	Net interconnect.Config

	// Islands is the number of conservative-parallel islands the system's
	// event kernel runs on (0 or 1 = single island). Above one requires a
	// topology implementing topology.Partitioned. Outputs are
	// byte-identical at any island count; see internal/sim.Cluster.
	Islands int

	// Flight-recorder knobs (see internal/trace). Every system arms a
	// fixed-size ring of recent protocol events that dumps when the run
	// fails or a transaction exceeds the starvation deadline; recording
	// is allocation-free, so always-on costs nothing measurable.

	// RecorderSize is the flight-recorder ring capacity in events
	// (0 = trace.DefaultRecorderSize; negative disables the recorder).
	RecorderSize int
	// StarvationDeadline is the transaction latency at which the armed
	// recorder dumps (0 = trace.DefaultStarvationDeadline; negative
	// disables the deadline but keeps the recorder armed for failures).
	StarvationDeadline sim.Time
	// DebugLog receives flight-recorder dumps (nil = stderr). Each dump
	// is a single Write, so parallel sweeps sharing a destination wrap it
	// in trace.NewSyncWriter and dumps never tear.
	DebugLog io.Writer
}

// DefaultConfig returns the paper's target system (Table 1).
func DefaultConfig() Config {
	return Config{
		Procs:          16,
		L1Size:         128 << 10,
		L1Assoc:        4,
		L1Latency:      2 * sim.Nanosecond,
		L2Size:         4 << 20,
		L2Assoc:        4,
		L2Latency:      6 * sim.Nanosecond,
		MemLatency:     80 * sim.Nanosecond,
		CtrlLatency:    6 * sim.Nanosecond,
		DirLatency:     80 * sim.Nanosecond,
		MSHRs:          16,
		MaxLoads:       2,
		TokensPerBlock: 32,
		Migratory:      true,
		MaxReissues:    4,
		BackoffFactor:  2,
		BackoffBase:    50 * sim.Nanosecond,
		Net:            interconnect.DefaultConfig(),
	}
}

// Validate panics on configurations that cannot work; called by
// NewSystem.
func (c Config) Validate() {
	switch {
	case c.Procs <= 0:
		panic("machine: Procs must be positive")
	case c.TokensPerBlock < c.Procs:
		panic("machine: TokensPerBlock must be at least Procs (paper invariant)")
	case c.MSHRs <= 0:
		panic("machine: MSHRs must be positive")
	case c.MaxLoads <= 0:
		panic("machine: MaxLoads must be positive")
	case c.MaxReissues < 0:
		panic("machine: MaxReissues must be non-negative")
	case c.Islands < 0:
		panic("machine: Islands must be non-negative")
	case c.Islands > c.Procs:
		panic("machine: Islands must not exceed Procs")
	}
}
