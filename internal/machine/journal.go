package machine

import (
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// Observation journaling. In an island run, protocol events fire on
// island goroutines, but observers (probes, the tracer, the flight
// recorder) are written for single-threaded, globally-ordered delivery.
// Each island therefore appends its events to a private journal,
// tagging every record with the executing event's (time, actor, seq)
// stamp plus an emission index; at each window barrier the coordinator
// merges the journals in stamp order and replays them into the real
// observer. Stamps are partition-invariant (see sim.Cluster), so the
// replayed stream — and everything derived from it: traces, recorder
// dumps, probe metrics — is byte-identical at any island count.

type jkind uint8

const (
	jMissIssued jkind = iota
	jMissCompleted
	jReissued
	jPersistentActivated
	jPersistentDeactivated
	jTokensTransferred
	jNetworkHop
)

// jrec is one journaled observation. idx orders records emitted by the
// same event (same stamp); records with equal stamps always come from
// one island, so the order within its journal is authoritative.
type jrec struct {
	at   sim.Time
	seq  uint64
	t    sim.Time // event-specific time payload (issue time, latency, departure)
	blk  msg.Block
	by   int32
	a    int32 // proc / home / link
	b    int32 // reissues / attempt / tokens / bytes
	cat  msg.Category
	kind jkind
	flag bool // write / persistent
}

// journal buffers one island's observations between barriers.
type journal struct {
	k    *sim.Kernel
	recs []jrec
}

func (j *journal) push(r jrec) {
	r.at, r.by, r.seq = j.k.CurStamp()
	j.recs = append(j.recs, r)
}

// observerFor builds the island-side observer that journals exactly the
// events target subscribes to, mirroring the sparse-subscription rule
// of stats.MergeAllObservers so unobserved events keep their
// single-nil-check fast path. MeasurementStarted is not journaled: the
// coordinator fires it directly at the warmup barrier.
func (j *journal) observerFor(target *stats.Observer) *stats.Observer {
	if target == nil {
		return nil
	}
	o := &stats.Observer{}
	if target.MissIssued != nil {
		o.MissIssued = func(proc int, block msg.Block, write bool, at sim.Time) {
			j.push(jrec{kind: jMissIssued, a: int32(proc), blk: block, flag: write, t: at})
		}
	}
	if target.MissCompleted != nil {
		o.MissCompleted = func(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time) {
			j.push(jrec{kind: jMissCompleted, a: int32(proc), blk: block, b: int32(reissues), flag: persistent, t: latency})
		}
	}
	if target.Reissued != nil {
		o.Reissued = func(proc int, block msg.Block, attempt int, at sim.Time) {
			j.push(jrec{kind: jReissued, a: int32(proc), blk: block, b: int32(attempt), t: at})
		}
	}
	if target.PersistentActivated != nil {
		o.PersistentActivated = func(home int, block msg.Block, at sim.Time) {
			j.push(jrec{kind: jPersistentActivated, a: int32(home), blk: block, t: at})
		}
	}
	if target.PersistentDeactivated != nil {
		o.PersistentDeactivated = func(home int, block msg.Block, at sim.Time) {
			j.push(jrec{kind: jPersistentDeactivated, a: int32(home), blk: block, t: at})
		}
	}
	if target.TokensTransferred != nil {
		o.TokensTransferred = func(proc int, block msg.Block, tokens int, at sim.Time) {
			j.push(jrec{kind: jTokensTransferred, a: int32(proc), blk: block, b: int32(tokens), t: at})
		}
	}
	if target.NetworkHop != nil {
		o.NetworkHop = func(link int, cat msg.Category, bytes int, at sim.Time) {
			j.push(jrec{kind: jNetworkHop, a: int32(link), cat: cat, b: int32(bytes), t: at})
		}
	}
	return o
}

// stampLess orders journal records by the stamp of the emitting event.
func stampLess(a, b *jrec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.by != b.by {
		return a.by < b.by
	}
	return a.seq < b.seq
}

// replayJournals merges the islands' journals in stamp order and
// replays them into s.Obs. Called at every barrier, on the coordinator,
// while no island runs. The replay clock (simNow) tracks the emitting
// event's time so observers that read "now" — the flight recorder's
// starvation deadline — see simulated time, not barrier time.
func (s *System) replayJournals() {
	if s.Obs == nil {
		return
	}
	if s.jidx == nil {
		s.jidx = make([]int, len(s.Isles))
	}
	idx := s.jidx
	for i := range idx {
		idx[i] = 0
	}
	s.replaying = true
	for {
		var r *jrec
		best := -1
		for i, isle := range s.Isles {
			recs := isle.jr.recs
			if idx[i] >= len(recs) {
				continue
			}
			c := &recs[idx[i]]
			if best < 0 || stampLess(c, r) {
				best, r = i, c
			}
		}
		if best < 0 {
			break
		}
		idx[best]++
		s.replayNow = r.at
		o := s.Obs
		switch r.kind {
		case jMissIssued:
			o.OnMissIssued(int(r.a), r.blk, r.flag, r.t)
		case jMissCompleted:
			o.OnMissCompleted(int(r.a), r.blk, int(r.b), r.flag, r.t)
		case jReissued:
			o.OnReissued(int(r.a), r.blk, int(r.b), r.t)
		case jPersistentActivated:
			o.OnPersistentActivated(int(r.a), r.blk, r.t)
		case jPersistentDeactivated:
			o.OnPersistentDeactivated(int(r.a), r.blk, r.t)
		case jTokensTransferred:
			o.OnTokensTransferred(int(r.a), r.blk, int(r.b), r.t)
		case jNetworkHop:
			o.OnNetworkHop(int(r.a), r.cat, int(r.b), r.t)
		}
	}
	s.replaying = false
	for _, isle := range s.Isles {
		isle.jr.recs = isle.jr.recs[:0]
	}
}
