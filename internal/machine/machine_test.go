package machine

import (
	"strings"
	"testing"

	"tokencoherence/internal/cache"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.Procs != 16 {
		t.Errorf("Procs = %d, want 16", c.Procs)
	}
	if c.L1Size != 128<<10 || c.L1Assoc != 4 || c.L1Latency != 2*sim.Nanosecond {
		t.Errorf("L1 config mismatch: %+v", c)
	}
	if c.L2Size != 4<<20 || c.L2Assoc != 4 || c.L2Latency != 6*sim.Nanosecond {
		t.Errorf("L2 config mismatch: %+v", c)
	}
	if c.MemLatency != 80*sim.Nanosecond || c.CtrlLatency != 6*sim.Nanosecond {
		t.Errorf("memory latencies mismatch: %+v", c)
	}
	if c.Net.LinkBandwidth != 3.2e9 || c.Net.LinkLatency != 15*sim.Nanosecond {
		t.Errorf("link config mismatch: %+v", c.Net)
	}
	c.Validate() // must not panic
}

func TestConfigValidatePanics(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Procs = 0 },
		func(c *Config) { c.TokensPerBlock = c.Procs - 1 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.MaxReissues = -1 },
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config did not panic", i)
				}
			}()
			c := DefaultConfig()
			mutate(&c)
			c.Validate()
		}()
	}
}

func TestOracleHappyPath(t *testing.T) {
	o := NewOracle()
	v1 := o.CommitWrite(0, 5, 10)
	if v1 != 1 {
		t.Errorf("first write version = %d, want 1", v1)
	}
	o.CheckRead(1, 5, v1, 20)
	v2 := o.CommitWrite(1, 5, 30)
	o.CheckRead(0, 5, v2, 40)
	if err := o.Err(); err != nil {
		t.Fatalf("clean sequence flagged: %v", err)
	}
	if o.Reads() != 2 || o.Writes() != 2 {
		t.Errorf("counts = %d reads/%d writes, want 2/2", o.Reads(), o.Writes())
	}
}

func TestOracleCatchesBackwardsRead(t *testing.T) {
	o := NewOracle()
	o.CommitWrite(0, 5, 10)
	v2 := o.CommitWrite(0, 5, 20)
	o.CheckRead(1, 5, v2, 30)   // proc 1 sees v2
	o.CheckRead(1, 5, v2-1, 40) // ... then reads v1: coherence violation
	err := o.Err()
	if err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("backwards read not caught: %v", err)
	}
}

func TestOracleAllowsRecentlyOverwrittenRead(t *testing.T) {
	// Split-transaction skew: a read ordered before a racing write may
	// commit shortly after it in wall-clock time. That is legal.
	o := NewOracle()
	v1 := o.CommitWrite(0, 5, 10)
	o.CommitWrite(0, 5, 100)
	o.CheckRead(1, 5, v1, 150) // 50 ps after overwrite: fine
	if err := o.Err(); err != nil {
		t.Fatalf("windowed read flagged: %v", err)
	}
}

func TestOracleCatchesLongStaleRead(t *testing.T) {
	o := NewOracle()
	v1 := o.CommitWrite(0, 5, 10)
	o.CommitWrite(0, 5, 20)
	o.CheckRead(1, 5, v1, 20+2*sim.Millisecond) // way past StaleLimit
	err := o.Err()
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("long-stale read not caught: %v", err)
	}
}

func TestOracleUnwrittenBlockReadsZero(t *testing.T) {
	o := NewOracle()
	o.CheckRead(0, 9, 0, 5)
	if o.Err() != nil {
		t.Error("reading version 0 of unwritten block must be fine")
	}
	o.CheckRead(0, 9, 1, 6)
	if o.Err() == nil {
		t.Error("phantom read not caught")
	}
}

func TestOracleErrorCap(t *testing.T) {
	o := NewOracle()
	o.CommitWrite(0, 1, 1)
	for i := 0; i < 100; i++ {
		o.CheckRead(0, 1, 999, 2)
	}
	if len(o.Violations()) > 16 {
		t.Errorf("recorded %d violations, cap is 16", len(o.Violations()))
	}
}

func TestOraclePruneKeepsWindowUsable(t *testing.T) {
	o := NewOracle()
	var now sim.Time
	for i := 0; i < 10000; i++ {
		now += sim.Microsecond
		o.CommitWrite(0, 7, now)
	}
	// Reading the latest is always fine even after pruning.
	o.CheckRead(1, 7, o.Latest(7), now)
	if err := o.Err(); err != nil {
		t.Fatalf("post-prune read flagged: %v", err)
	}
	// Reading an ancient pruned version must be flagged.
	o.CheckRead(2, 7, 1, now)
	if o.Err() == nil {
		t.Error("ancient pruned read not caught")
	}
}

// fakeCtrl is a trivially correct controller: every access completes
// after a fixed delay with full permission.
type fakeCtrl struct {
	k     *sim.Kernel
	delay sim.Time
	seen  int
}

func (f *fakeCtrl) Access(op Op, done func()) {
	f.seen++
	f.k.After(f.delay, done)
}

// fixedGen issues alternating read/write ops with constant think time.
type fixedGen struct{ think sim.Time }

func (g fixedGen) Next(proc int, rng *sim.Source) Op {
	return Op{Addr: msg.Addr(proc) * msg.BlockSize, Write: rng.Bool(0.5), Think: g.think, EndTxn: true}
}

// storeGen issues only stores so MSHR limits are exercised without the
// outstanding-load bound interfering.
type storeGen struct{ think sim.Time }

func (g storeGen) Next(proc int, rng *sim.Source) Op {
	return Op{Addr: msg.Addr(proc) * msg.BlockSize, Write: true, Think: g.think, EndTxn: true}
}

func TestProcessorIssuesAllOps(t *testing.T) {
	k := sim.NewKernel()
	ctrl := &fakeCtrl{k: k, delay: 10 * sim.Nanosecond}
	cfg := DefaultConfig()
	doneCalled := false
	p := NewProcessor(k, 0, fixedGen{think: 1 * sim.Nanosecond}, ctrl, cfg, sim.NewSource(1), newRun(), 50, func() { doneCalled = true })
	p.Start()
	k.Run()
	if !p.Done() || !doneCalled {
		t.Fatal("processor did not finish")
	}
	if ctrl.seen != 50 || p.Completed() != 50 {
		t.Errorf("ops seen=%d completed=%d, want 50", ctrl.seen, p.Completed())
	}
}

// slowCtrl never completes, to test MSHR stalling.
type slowCtrl struct{ seen int }

func (s *slowCtrl) Access(op Op, done func()) { s.seen++ }

func TestProcessorStallsAtMSHRLimit(t *testing.T) {
	k := sim.NewKernel()
	ctrl := &slowCtrl{}
	cfg := DefaultConfig()
	cfg.MSHRs = 4
	p := NewProcessor(k, 0, storeGen{think: 1 * sim.Nanosecond}, ctrl, cfg, sim.NewSource(2), newRun(), 100, nil)
	p.Start()
	k.Run()
	if ctrl.seen != 4 {
		t.Errorf("issued %d store ops with MSHRs=4, want exactly 4", ctrl.seen)
	}
	if p.Done() {
		t.Error("processor claims done while stalled")
	}
}

func TestProcessorStallsAtLoadLimit(t *testing.T) {
	k := sim.NewKernel()
	ctrl := &slowCtrl{}
	cfg := DefaultConfig()
	cfg.MaxLoads = 2
	// Loads only: the processor must stop after MaxLoads outstanding.
	p := NewProcessor(k, 0, loadGen{think: sim.Nanosecond}, ctrl, cfg, sim.NewSource(2), newRun(), 100, nil)
	p.Start()
	k.Run()
	if ctrl.seen != 2 {
		t.Errorf("issued %d load ops with MaxLoads=2, want exactly 2", ctrl.seen)
	}
}

// loadGen issues only loads.
type loadGen struct{ think sim.Time }

func (g loadGen) Next(proc int, rng *sim.Source) Op {
	return Op{Addr: msg.Addr(proc) * msg.BlockSize, Write: false, Think: g.think, EndTxn: true}
}

func TestProcessorCountsTransactions(t *testing.T) {
	k := sim.NewKernel()
	run := newRun()
	ctrl := &fakeCtrl{k: k, delay: sim.Nanosecond}
	p := NewProcessor(k, 0, fixedGen{think: sim.Nanosecond}, ctrl, DefaultConfig(), sim.NewSource(3), run, 25, nil)
	p.Start()
	k.Run()
	if run.Transactions != 25 {
		t.Errorf("transactions = %d, want 25 (every op ends one)", run.Transactions)
	}
}

func TestSystemRejectsMismatchedTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 8
	defer func() {
		if recover() == nil {
			t.Error("mismatched topology did not panic")
		}
	}()
	NewSystem(cfg, topology.NewTorus(4, 4), 1)
}

func TestSystemExecuteDetectsDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 4
	sys := NewSystem(cfg, topology.NewTorusFor(4), 1)
	ctrls := make([]Controller, 4)
	for i := range ctrls {
		ctrls[i] = &slowCtrl{}
	}
	_, err := sys.Execute(ctrls, fixedGen{think: sim.Nanosecond}, 10)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not reported: %v", err)
	}
}

func TestSystemExecuteControllerCountMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 4
	sys := NewSystem(cfg, topology.NewTorusFor(4), 1)
	if _, err := sys.Execute(nil, fixedGen{}, 1); err == nil {
		t.Error("controller count mismatch not reported")
	}
}

// hookRecorder implements CacheHooks for CacheBase unit tests: every
// line grants permission matching its State field (0=none,1=read,2=write).
type hookRecorder struct {
	base    *CacheBase
	misses  []*MSHR
	evicted []cache.Line
}

func (h *hookRecorder) HasPermission(l *cache.Line, write bool) bool {
	if write {
		return l.State >= 2
	}
	return l.State >= 1
}
func (h *hookRecorder) StartMiss(m *MSHR)    { h.misses = append(h.misses, m) }
func (h *hookRecorder) EvictL2(v cache.Line) { h.evicted = append(h.evicted, v) }

func newTestBase(t *testing.T) (*sim.Kernel, *CacheBase, *hookRecorder) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Procs = 4
	sys := NewSystem(cfg, topology.NewTorusFor(4), 7)
	h := &hookRecorder{}
	b := &CacheBase{}
	b.InitBase(sys, 0, h)
	h.base = b
	return sys.K, b, h
}

func TestCacheBaseHitPath(t *testing.T) {
	k, b, h := newTestBase(t)
	l := b.EnsureL2(5)
	l.State = 2
	l.Valid = true
	completed := false
	b.Access(Op{Addr: msg.Block(5).Base(), Write: false}, func() { completed = true })
	k.Run()
	if !completed {
		t.Fatal("hit did not complete")
	}
	if len(h.misses) != 0 {
		t.Error("hit path started a miss")
	}
	if b.Run.L2Hits != 1 {
		t.Errorf("L2Hits = %d, want 1 (first touch misses L1)", b.Run.L2Hits)
	}
	// Second access should now hit L1.
	b.Access(Op{Addr: msg.Block(5).Base()}, func() {})
	k.Run()
	if b.Run.L1Hits != 1 {
		t.Errorf("L1Hits = %d, want 1", b.Run.L1Hits)
	}
}

func TestCacheBaseMissMergesWaiters(t *testing.T) {
	k, b, h := newTestBase(t)
	var done1, done2 bool
	blk := msg.Block(9)
	b.Access(Op{Addr: blk.Base()}, func() { done1 = true })
	b.Access(Op{Addr: blk.Base()}, func() { done2 = true })
	if len(h.misses) != 1 {
		t.Fatalf("issued %d misses for same block, want 1 (merged)", len(h.misses))
	}
	if b.Run.Misses.Issued != 1 {
		t.Errorf("Misses.Issued = %d, want 1", b.Run.Misses.Issued)
	}
	// Resolve the miss: grant read permission and complete.
	l := b.EnsureL2(blk)
	l.State = 1
	l.Valid = true
	b.CompleteMiss(h.misses[0])
	k.Run()
	if !done1 || !done2 {
		t.Errorf("waiters not replayed: %v %v", done1, done2)
	}
}

func TestCacheBaseUpgradeMissAfterReadMiss(t *testing.T) {
	k, b, h := newTestBase(t)
	blk := msg.Block(3)
	var wDone bool
	b.Access(Op{Addr: blk.Base()}, func() {})
	b.Access(Op{Addr: blk.Base(), Write: true}, func() { wDone = true })
	// First resolution grants read-only; the write waiter must issue a
	// second (upgrade) miss.
	l := b.EnsureL2(blk)
	l.State = 1
	l.Valid = true
	b.CompleteMiss(h.misses[0])
	k.RunUntil(k.Now() + sim.Microsecond)
	if len(h.misses) != 2 {
		t.Fatalf("expected an upgrade miss, have %d misses", len(h.misses))
	}
	if !h.misses[1].Write {
		t.Error("upgrade miss is not a write miss")
	}
	l.State = 2
	b.CompleteMiss(h.misses[1])
	k.Run()
	if !wDone {
		t.Error("write never completed")
	}
}

func TestCacheBaseMissLatencyEWMA(t *testing.T) {
	k, b, h := newTestBase(t)
	before := b.AvgMiss
	b.Access(Op{Addr: msg.Block(4).Base()}, func() {})
	k.RunUntil(400 * sim.Nanosecond)
	l := b.EnsureL2(4)
	l.State = 2
	l.Valid = true
	b.CompleteMiss(h.misses[0])
	k.Run()
	if b.AvgMiss == before {
		t.Error("AvgMiss not updated after a miss")
	}
	if b.Run.MissLatencyCount != 1 {
		t.Errorf("MissLatencyCount = %d, want 1", b.Run.MissLatencyCount)
	}
}

func TestCacheBaseEvictionHook(t *testing.T) {
	_, b, h := newTestBase(t)
	// Shrink L2 to 1 line by allocating conflicting blocks directly.
	small := cache.New(msg.BlockSize, 1)
	b.L2 = small
	l := b.EnsureL2(1)
	l.Tokens = 3
	b.EnsureL2(2)
	if len(h.evicted) != 1 || h.evicted[0].Block != 1 || h.evicted[0].Tokens != 3 {
		t.Fatalf("eviction hook got %+v", h.evicted)
	}
}

func TestCompleteMissUnknownPanics(t *testing.T) {
	_, b, _ := newTestBase(t)
	defer func() {
		if recover() == nil {
			t.Error("CompleteMiss of unknown MSHR did not panic")
		}
	}()
	b.CompleteMiss(&MSHR{Block: 77})
}

// newRun builds an empty stats record for processor tests.
func newRun() *stats.Run { return &stats.Run{} }

// warmCtrl completes every access after a fixed delay and counts them.
type warmCtrl struct {
	k    *sim.Kernel
	seen int
}

func (c *warmCtrl) Access(op Op, done func()) {
	c.seen++
	c.k.After(5*sim.Nanosecond, done)
}

func TestExecuteWarmResetsStatistics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 4
	sys := NewSystem(cfg, topology.NewTorusFor(4), 3)
	ctrls := make([]Controller, 4)
	for i := range ctrls {
		ctrls[i] = &warmCtrl{k: sys.K}
	}
	const warmup, ops = 30, 50
	run, err := sys.ExecuteWarm(ctrls, fixedGen{think: sim.Nanosecond}, warmup, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Transactions measured must reflect only the post-warmup interval
	// (some slack: processors cross the warmup boundary at different
	// times, so a few of other processors' ops may land pre-reset).
	if run.Transactions < ops*4/2 || run.Transactions > (warmup+ops)*4 {
		t.Errorf("Transactions = %d, want about %d", run.Transactions, ops*4)
	}
	if run.Transactions >= (warmup+ops)*4 {
		t.Error("warmup interval was not excluded from statistics")
	}
	if run.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want positive post-warmup interval", run.Elapsed)
	}
}

func TestExecuteWithoutWarmupCountsEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 2
	// NewTorusFor rejects sizes below 2x2; an explicit degenerate ring
	// is fine for this two-controller wiring test.
	sys := NewSystem(cfg, topology.NewTorus(2, 1), 3)
	ctrls := []Controller{&warmCtrl{k: sys.K}, &warmCtrl{k: sys.K}}
	run, err := sys.Execute(ctrls, fixedGen{think: sim.Nanosecond}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if run.Transactions != 50 {
		t.Errorf("Transactions = %d, want 50", run.Transactions)
	}
}
