package machine

import (
	"fmt"

	"tokencoherence/internal/interconnect"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
)

// System assembles one simulated multiprocessor: kernel, interconnect,
// statistics, safety oracle, and the per-run random stream. Protocol
// packages build their controllers against a System; Execute then drives
// a workload through them.
type System struct {
	K      *sim.Kernel
	Cfg    Config
	Topo   topology.Topology
	Net    *interconnect.Network
	Run    *stats.Run
	Oracle *Oracle
	Rng    *sim.Source
}

// NewSystem wires an empty system. The topology's node count must match
// cfg.Procs.
func NewSystem(cfg Config, topo topology.Topology, seed uint64) *System {
	cfg.Validate()
	if topo.Nodes() != cfg.Procs {
		panic(fmt.Sprintf("machine: topology has %d nodes, config %d procs", topo.Nodes(), cfg.Procs))
	}
	k := sim.NewKernel()
	run := &stats.Run{}
	return &System{
		K:      k,
		Cfg:    cfg,
		Topo:   topo,
		Net:    interconnect.New(k, topo, cfg.Net, &run.Traffic),
		Run:    run,
		Oracle: NewOracle(),
		Rng:    sim.NewSource(seed ^ 0x5bf0_3635_dcf5_9e11),
	}
}

// Execute drives opsPerProc operations from gen through each controller
// and returns the populated statistics. It fails if the simulation
// deadlocks (event queue drains with operations incomplete) or the
// safety oracle observed a violation.
func (s *System) Execute(ctrls []Controller, gen Generator, opsPerProc int) (*stats.Run, error) {
	return s.ExecuteWarm(ctrls, gen, 0, opsPerProc)
}

// ExecuteWarm first runs warmup operations per processor to populate the
// caches, then resets the statistics and measures opsPerProc operations,
// mirroring the paper's warmed-checkpoint methodology. Statistics reset
// once every processor has completed its warmup.
func (s *System) ExecuteWarm(ctrls []Controller, gen Generator, warmup, opsPerProc int) (*stats.Run, error) {
	if len(ctrls) != s.Cfg.Procs {
		return nil, fmt.Errorf("machine: %d controllers for %d procs", len(ctrls), s.Cfg.Procs)
	}
	remaining := len(ctrls)
	cold := len(ctrls)
	var warmStart sim.Time
	procs := make([]*Processor, len(ctrls))
	for i, c := range ctrls {
		p := NewProcessor(s.K, i, gen, c, s.Cfg, s.Rng.Split(), s.Run, warmup+opsPerProc, func() {
			remaining--
			if remaining == 0 {
				s.K.Stop()
			}
		})
		if warmup > 0 {
			p.onWarm = func() {
				cold--
				if cold == 0 {
					s.Run.Reset()
					warmStart = s.K.Now()
				}
			}
			p.warmupOps = warmup
		}
		procs[i] = p
	}
	for _, p := range procs {
		p.Start()
	}
	s.K.Run()
	s.Run.Elapsed = s.K.Now() - warmStart
	if remaining > 0 {
		issued, completed := 0, 0
		for _, p := range procs {
			issued += p.Issued()
			completed += p.Completed()
		}
		return s.Run, fmt.Errorf("machine: deadlock, %d/%d processors incomplete (%d issued, %d completed)",
			remaining, len(procs), issued, completed)
	}
	return s.Run, s.Oracle.Err()
}
