package machine

import (
	"fmt"

	"tokencoherence/internal/interconnect"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/trace"
)

// System assembles one simulated multiprocessor: kernel, interconnect,
// statistics, safety oracle, and the per-run random stream. Protocol
// packages build their controllers against a System; Execute then drives
// a workload through them.
type System struct {
	K      *sim.Kernel
	Cfg    Config
	Topo   topology.Topology
	Net    *interconnect.Network
	Run    *stats.Run
	Oracle *Oracle
	Rng    *sim.Source

	// Metrics is the run's named-metric registry. NewSystem publishes the
	// machine, kernel, and interconnect measurements; protocol packages
	// add theirs at Build; probes add derived metrics when they attach.
	Metrics *stats.MetricSet
	// Obs fans simulation events out to the attached observers; nil (the
	// default) keeps every event site a single pointer check. Attach
	// observers with Observe, never by writing the field.
	Obs *stats.Observer
	// Recorder is the always-armed flight recorder NewSystem wires from
	// the Cfg knobs (nil when Cfg.RecorderSize is negative). It dumps the
	// recent protocol-event history when the run deadlocks, the safety
	// oracle fails, or a transaction overruns the starvation deadline.
	Recorder *trace.FlightRecorder

	observers []*stats.Observer
}

// Observe attaches an observer and propagates the merged fan-out to the
// interconnect. All attached observers are flattened in one pass
// (stats.MergeAllObservers), so every event dispatches through a single
// loop no matter how many probes attach. Attach before Execute; events
// fired earlier are lost. A nil observer is a no-op, so probes that only
// register derived metrics can return nil.
func (s *System) Observe(o *stats.Observer) {
	if o == nil {
		return
	}
	s.observers = append(s.observers, o)
	s.Obs = stats.MergeAllObservers(s.observers...)
	s.Net.SetObserver(s.Obs)
}

// NewSystem wires an empty system. The topology's node count must match
// cfg.Procs.
func NewSystem(cfg Config, topo topology.Topology, seed uint64) *System {
	cfg.Validate()
	if topo.Nodes() != cfg.Procs {
		panic(fmt.Sprintf("machine: topology has %d nodes, config %d procs", topo.Nodes(), cfg.Procs))
	}
	k := sim.NewKernel()
	run := &stats.Run{}
	s := &System{
		K:       k,
		Cfg:     cfg,
		Topo:    topo,
		Net:     interconnect.New(k, topo, cfg.Net, &run.Traffic),
		Run:     run,
		Oracle:  NewOracle(),
		Rng:     sim.NewSource(seed ^ 0x5bf0_3635_dcf5_9e11),
		Metrics: stats.NewMetricSet(),
	}
	s.publishMetrics()
	s.Net.PublishMetrics(s.Metrics)
	if cfg.RecorderSize >= 0 {
		s.Recorder = trace.NewFlightRecorder(trace.RecorderConfig{
			Size:     cfg.RecorderSize,
			Deadline: cfg.StarvationDeadline,
			Out:      cfg.DebugLog,
			Now:      k.Now,
		})
		s.Observe(s.Recorder.Observer())
	}
	return s
}

// publishMetrics registers the machine layer's measurements — everything
// the Run struct accumulates, plus the kernel's event counts — as named
// metrics. Registration order is fixed, so the schema is deterministic
// (see the engine's schema golden test).
func (s *System) publishMetrics() {
	ms, r := s.Metrics, s.Run
	derived := func(name, unit, format, help string, read func() float64) {
		ms.Derived(stats.Desc{Name: name, Unit: unit, Fmt: format, Help: help}, read)
	}
	derived("elapsed_ns", "ns", "%.0f", "measured simulated interval",
		func() float64 { return r.Elapsed.Nanoseconds() })
	derived("transactions", "count", "%.0f", "workload transactions completed",
		func() float64 { return float64(r.Transactions) })
	derived("cycles_per_txn", "cycles/txn", "%.2f", "runtime in 1 GHz cycles per completed transaction",
		func() float64 { return r.CyclesPerTransaction() })
	derived("accesses", "count", "%.0f", "memory operations performed",
		func() float64 { return float64(r.Accesses) })
	derived("l1_hits", "count", "%.0f", "accesses satisfied by the L1 latency filter",
		func() float64 { return float64(r.L1Hits) })
	derived("l2_hits", "count", "%.0f", "accesses satisfied by the L2",
		func() float64 { return float64(r.L2Hits) })
	derived("upgrades", "count", "%.0f", "write misses on a resident readable line",
		func() float64 { return float64(r.Upgrades) })
	derived("writebacks", "count", "%.0f", "L2 victim lines evicted through the protocol",
		func() float64 { return float64(r.Writeback) })
	derived("misses", "count", "%.0f", "coherence misses issued",
		func() float64 { return float64(r.Misses.Issued) })
	derived("misses_not_reissued", "count", "%.0f", "misses satisfied by their first request",
		func() float64 { return float64(r.Misses.NotReissued()) })
	derived("misses_reissued_once", "count", "%.0f", "misses reissued exactly once",
		func() float64 { return float64(r.Misses.ReissuedOnce) })
	derived("misses_reissued_more", "count", "%.0f", "misses reissued more than once",
		func() float64 { return float64(r.Misses.ReissuedMore) })
	derived("misses_persistent", "count", "%.0f", "misses escalated to a persistent request",
		func() float64 { return float64(r.Misses.Persistent) })
	derived("reissued_pct", "percent", "%.2f", "percentage of misses reissued at least once",
		func() float64 { return r.Misses.Frac(r.Misses.ReissuedOnce + r.Misses.ReissuedMore) })
	derived("persistent_pct", "percent", "%.3f", "percentage of misses resolved persistently",
		func() float64 { return r.Misses.Frac(r.Misses.Persistent) })
	derived("avg_miss_ns", "ns", "%.1f", "mean coherence-miss latency",
		func() float64 { return r.AvgMissLatency().Nanoseconds() })
	derived("miss_latency_p50_ns", "ns", "%.0f", "median miss latency (histogram bucket upper bound)",
		func() float64 { return r.MissLatencies.Quantile(0.50).Nanoseconds() })
	derived("miss_latency_p99_ns", "ns", "%.0f", "99th-percentile miss latency (histogram bucket upper bound)",
		func() float64 { return r.MissLatencies.Quantile(0.99).Nanoseconds() })
	derived("miss_latency_max_ns", "ns", "%.0f", "largest observed miss latency",
		func() float64 { return r.MissLatencies.Max().Nanoseconds() })
	derived("bytes_per_miss", "bytes/miss", "%.1f", "interconnect bytes per coherence miss",
		func() float64 { return r.BytesPerMiss() })
	for c := 0; c < msg.NumCategories; c++ {
		cat := msg.Category(c)
		derived("bytes_per_miss_"+cat.Slug(), "bytes/miss", "%.1f",
			"category "+cat.String()+" bytes per coherence miss",
			func() float64 { return r.CategoryBytesPerMiss(cat) })
	}
	derived("events_scheduled", "count", "%.0f", "kernel events scheduled over the whole run (warmup included)",
		func() float64 { return float64(s.K.Scheduled()) })
	derived("events_executed", "count", "%.0f", "kernel events fired over the whole run (warmup included)",
		func() float64 { return float64(s.K.Executed()) })
}

// Execute drives opsPerProc operations from gen through each controller
// and returns the populated statistics. It fails if the simulation
// deadlocks (event queue drains with operations incomplete) or the
// safety oracle observed a violation.
func (s *System) Execute(ctrls []Controller, gen Generator, opsPerProc int) (*stats.Run, error) {
	return s.ExecuteWarm(ctrls, gen, 0, opsPerProc)
}

// ExecuteWarm first runs warmup operations per processor to populate the
// caches, then resets the statistics and measures opsPerProc operations,
// mirroring the paper's warmed-checkpoint methodology. Statistics reset
// once every processor has completed its warmup.
func (s *System) ExecuteWarm(ctrls []Controller, gen Generator, warmup, opsPerProc int) (*stats.Run, error) {
	if len(ctrls) != s.Cfg.Procs {
		return nil, fmt.Errorf("machine: %d controllers for %d procs", len(ctrls), s.Cfg.Procs)
	}
	remaining := len(ctrls)
	cold := len(ctrls)
	var warmStart sim.Time
	procs := make([]*Processor, len(ctrls))
	for i, c := range ctrls {
		p := NewProcessor(s.K, i, gen, c, s.Cfg, s.Rng.Split(), s.Run, warmup+opsPerProc, func() {
			remaining--
			if remaining == 0 {
				s.K.Stop()
			}
		})
		if warmup > 0 {
			p.onWarm = func() {
				cold--
				if cold == 0 {
					s.Run.Reset()
					s.Metrics.Reset()
					warmStart = s.K.Now()
					s.Obs.OnMeasurementStarted(warmStart)
				}
			}
			p.warmupOps = warmup
		}
		procs[i] = p
	}
	for _, p := range procs {
		p.Start()
	}
	s.K.Run()
	s.Run.Elapsed = s.K.Now() - warmStart
	if remaining > 0 {
		issued, completed := 0, 0
		for _, p := range procs {
			issued += p.Issued()
			completed += p.Completed()
		}
		err := fmt.Errorf("machine: deadlock, %d/%d processors incomplete (%d issued, %d completed)",
			remaining, len(procs), issued, completed)
		s.Recorder.Trip(err.Error())
		return s.Run, err
	}
	if err := s.Oracle.Err(); err != nil {
		s.Recorder.Trip("safety oracle failed: " + err.Error())
		return s.Run, err
	}
	return s.Run, nil
}
