package machine

import (
	"fmt"
	"sync/atomic"

	"tokencoherence/internal/interconnect"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/trace"
)

// System assembles one simulated multiprocessor: kernel cluster,
// interconnect, statistics, safety oracle, and the per-run random
// stream. Protocol packages build their controllers against a System;
// Execute then drives a workload through them.
//
// A system always runs on a sim.Cluster of Cfg.Islands islands (one by
// default): processors and switches are partitioned along the
// topology's link graph, each island executes on its own goroutine, and
// the cluster synchronizes every link-latency window. Every component
// is wired to its island's Isle (kernel, network view, statistics
// shard, observer journal); the coordinator merges shards and replays
// observation journals at the barriers, so outputs are byte-identical
// at any island count.
type System struct {
	K      *sim.Kernel // island 0's kernel; construction-time context
	Cfg    Config
	Topo   topology.Topology
	Net    *interconnect.Network // island 0's view; fabric-wide queries
	Run    *stats.Run            // merged after Execute; shards live per Isle
	Oracle *Oracle
	Rng    *sim.Source

	// Scope is the machine-wide root coherence realm: all nodes, homes
	// block-interleaved (msg.HomeOf). Flat protocols resolve every
	// transaction in it; hierarchical protocols derive cluster scopes
	// whose Parent chain ends here (see ScopesFor).
	Scope Scope

	// Cluster coordinates the island kernels; Isles holds the per-island
	// wiring. IsleFor maps a node to its island.
	Cluster *sim.Cluster
	Isles   []*Isle

	// Metrics is the run's named-metric registry. NewSystem publishes the
	// machine, kernel, and interconnect measurements; protocol packages
	// add theirs at Build; probes add derived metrics when they attach.
	Metrics *stats.MetricSet
	// Obs fans simulation events out to the attached observers; nil (the
	// default) keeps every event site a single pointer check. Attach
	// observers with Observe, never by writing the field. Events reach it
	// through the per-island journals (see journal.go), merged and
	// replayed in deterministic stamp order at every window barrier.
	Obs *stats.Observer
	// Recorder is the always-armed flight recorder NewSystem wires from
	// the Cfg knobs (nil when Cfg.RecorderSize is negative). It dumps the
	// recent protocol-event history when the run deadlocks, the safety
	// oracle fails, or a transaction overruns the starvation deadline.
	Recorder *trace.FlightRecorder

	observers []*stats.Observer

	// CutLinks reports how many directed links cross island boundaries
	// (0 for single-island runs): the hand-off traffic the barrier pays.
	CutLinks int

	// Journal replay state (see replayJournals).
	jidx      []int
	replaying bool
	replayNow sim.Time
}

// Isle is one island's execution context: its kernel, its view of the
// interconnect fabric, its statistics shard, and the journaling
// observer protocol events on this island must fire into. Components
// are wired to their node's Isle at construction.
type Isle struct {
	K   *sim.Kernel
	Net *interconnect.Network
	Run *stats.Run
	// Obs journals this island's protocol events for barrier replay; nil
	// when no observer is attached to the system. Event sites read it at
	// event time (it is armed when Execute starts).
	Obs *stats.Observer

	jr journal
}

// IsleFor returns the island context owning node (= actor) id.
func (s *System) IsleFor(id int) *Isle {
	return s.Isles[s.Cluster.IslandOf(id)]
}

// Observe attaches an observer and propagates the merged fan-out to the
// interconnect. All attached observers are flattened in one pass
// (stats.MergeAllObservers), so every event dispatches through a single
// loop no matter how many probes attach. Attach before Execute; events
// fired earlier are lost. A nil observer is a no-op, so probes that only
// register derived metrics can return nil.
func (s *System) Observe(o *stats.Observer) {
	if o == nil {
		return
	}
	s.observers = append(s.observers, o)
	s.Obs = stats.MergeAllObservers(s.observers...)
	s.armIsles()
}

// armIsles (re)builds each island's journaling observer to mirror the
// current merged subscription and points the island's network view at
// it. Events fired on an island land in its journal; replayJournals
// delivers them to s.Obs at the barriers.
func (s *System) armIsles() {
	for _, isle := range s.Isles {
		isle.Obs = isle.jr.observerFor(s.Obs)
		isle.Net.SetObserver(isle.Obs)
	}
}

// NewSystem wires an empty system. The topology's node count must match
// cfg.Procs. Cfg.Islands above one requires a topology implementing
// topology.Partitioned (both builtins do).
func NewSystem(cfg Config, topo topology.Topology, seed uint64) *System {
	cfg.Validate()
	if topo.Nodes() != cfg.Procs {
		panic(fmt.Sprintf("machine: topology has %d nodes, config %d procs", topo.Nodes(), cfg.Procs))
	}
	islands := cfg.Islands
	if islands <= 0 {
		islands = 1
	}
	// The actor assignment is computed from the same partition metadata
	// at every island count (including one), so event stamps — and with
	// them every output byte — do not depend on Cfg.Islands.
	var assign []int32
	cut := 0
	if pt, ok := topo.(topology.Partitioned); ok {
		assign, cut = topology.PartitionActors(pt, islands)
	} else if islands > 1 {
		panic(fmt.Sprintf("machine: topology %q does not expose partition metadata for %d islands", topo.Name(), islands))
	} else {
		assign = make([]int32, topo.Nodes())
	}
	cluster := sim.NewCluster(islands, assign, cfg.Net.LinkLatency)
	run := &stats.Run{}
	s := &System{
		K:        cluster.Kernel(0),
		Cfg:      cfg,
		Topo:     topo,
		Run:      run,
		Oracle:   NewOracle(),
		Rng:      sim.NewSource(seed ^ 0x5bf0_3635_dcf5_9e11),
		Scope:    NewFlatScope(cfg.Procs),
		Cluster:  cluster,
		Metrics:  stats.NewMetricSet(),
		CutLinks: cut,
	}
	s.Isles = make([]*Isle, islands)
	kernels := make([]*sim.Kernel, islands)
	traffics := make([]*stats.Traffic, islands)
	for i := range s.Isles {
		// Single-island systems share the top-level Run so code that
		// drives the kernel by hand (tests, tools) reads statistics
		// without an explicit merge step; multi-island systems shard.
		ir := run
		if islands > 1 {
			ir = &stats.Run{}
		}
		isle := &Isle{K: cluster.Kernel(i), Run: ir}
		isle.jr.k = isle.K
		s.Isles[i] = isle
		kernels[i] = isle.K
		traffics[i] = &isle.Run.Traffic
	}
	s.Net = interconnect.New(kernels[0], topo, cfg.Net, traffics[0])
	for i, v := range s.Net.Split(assign, kernels, traffics) {
		s.Isles[i].Net = v
	}
	s.publishMetrics()
	s.Net.PublishMetricsFor(s.Metrics, &run.Traffic)
	if cfg.RecorderSize >= 0 {
		s.Recorder = trace.NewFlightRecorder(trace.RecorderConfig{
			Size:     cfg.RecorderSize,
			Deadline: cfg.StarvationDeadline,
			Out:      cfg.DebugLog,
			Now:      s.simNow,
		})
		s.Observe(s.Recorder.Observer())
	}
	return s
}

// simNow is the observers' clock: the stamp time of the journal record
// being replayed, or island 0's clock outside replay (construction and
// post-run queries).
func (s *System) simNow() sim.Time {
	if s.replaying {
		return s.replayNow
	}
	return s.K.Now()
}

// publishMetrics registers the machine layer's measurements — everything
// the Run struct accumulates, plus the kernel's event counts — as named
// metrics. Registration order is fixed, so the schema is deterministic
// (see the engine's schema golden test).
func (s *System) publishMetrics() {
	ms, r := s.Metrics, s.Run
	derived := func(name, unit, format, help string, read func() float64) {
		ms.Derived(stats.Desc{Name: name, Unit: unit, Fmt: format, Help: help}, read)
	}
	derived("elapsed_ns", "ns", "%.0f", "measured simulated interval",
		func() float64 { return r.Elapsed.Nanoseconds() })
	derived("transactions", "count", "%.0f", "workload transactions completed",
		func() float64 { return float64(r.Transactions) })
	derived("cycles_per_txn", "cycles/txn", "%.2f", "runtime in 1 GHz cycles per completed transaction",
		func() float64 { return r.CyclesPerTransaction() })
	derived("accesses", "count", "%.0f", "memory operations performed",
		func() float64 { return float64(r.Accesses) })
	derived("l1_hits", "count", "%.0f", "accesses satisfied by the L1 latency filter",
		func() float64 { return float64(r.L1Hits) })
	derived("l2_hits", "count", "%.0f", "accesses satisfied by the L2",
		func() float64 { return float64(r.L2Hits) })
	derived("upgrades", "count", "%.0f", "write misses on a resident readable line",
		func() float64 { return float64(r.Upgrades) })
	derived("writebacks", "count", "%.0f", "L2 victim lines evicted through the protocol",
		func() float64 { return float64(r.Writeback) })
	derived("misses", "count", "%.0f", "coherence misses issued",
		func() float64 { return float64(r.Misses.Issued) })
	derived("misses_not_reissued", "count", "%.0f", "misses satisfied by their first request",
		func() float64 { return float64(r.Misses.NotReissued()) })
	derived("misses_reissued_once", "count", "%.0f", "misses reissued exactly once",
		func() float64 { return float64(r.Misses.ReissuedOnce) })
	derived("misses_reissued_more", "count", "%.0f", "misses reissued more than once",
		func() float64 { return float64(r.Misses.ReissuedMore) })
	derived("misses_persistent", "count", "%.0f", "misses escalated to a persistent request",
		func() float64 { return float64(r.Misses.Persistent) })
	derived("reissued_pct", "percent", "%.2f", "percentage of misses reissued at least once",
		func() float64 { return r.Misses.Frac(r.Misses.ReissuedOnce + r.Misses.ReissuedMore) })
	derived("persistent_pct", "percent", "%.3f", "percentage of misses resolved persistently",
		func() float64 { return r.Misses.Frac(r.Misses.Persistent) })
	derived("avg_miss_ns", "ns", "%.1f", "mean coherence-miss latency",
		func() float64 { return r.AvgMissLatency().Nanoseconds() })
	derived("miss_latency_p50_ns", "ns", "%.0f", "median miss latency (histogram bucket upper bound)",
		func() float64 { return r.MissLatencies.Quantile(0.50).Nanoseconds() })
	derived("miss_latency_p99_ns", "ns", "%.0f", "99th-percentile miss latency (histogram bucket upper bound)",
		func() float64 { return r.MissLatencies.Quantile(0.99).Nanoseconds() })
	derived("miss_latency_max_ns", "ns", "%.0f", "largest observed miss latency",
		func() float64 { return r.MissLatencies.Max().Nanoseconds() })
	derived("bytes_per_miss", "bytes/miss", "%.1f", "interconnect bytes per coherence miss",
		func() float64 { return r.BytesPerMiss() })
	for c := 0; c < msg.NumCategories; c++ {
		cat := msg.Category(c)
		derived("bytes_per_miss_"+cat.Slug(), "bytes/miss", "%.1f",
			"category "+cat.String()+" bytes per coherence miss",
			func() float64 { return r.CategoryBytesPerMiss(cat) })
	}
	derived("events_scheduled", "count", "%.0f", "kernel events scheduled over the whole run (warmup included)",
		func() float64 {
			var n uint64
			for _, isle := range s.Isles {
				n += isle.K.Scheduled()
			}
			return float64(n)
		})
	derived("events_executed", "count", "%.0f", "kernel events fired over the whole run (warmup included)",
		func() float64 {
			var n uint64
			for _, isle := range s.Isles {
				n += isle.K.Executed()
			}
			return float64(n)
		})
}

// Execute drives opsPerProc operations from gen through each controller
// and returns the populated statistics. It fails if the simulation
// deadlocks (event queue drains with operations incomplete) or the
// safety oracle observed a violation.
func (s *System) Execute(ctrls []Controller, gen Generator, opsPerProc int) (*stats.Run, error) {
	return s.ExecuteWarm(ctrls, gen, 0, opsPerProc)
}

// ExecuteWarm first runs warmup operations per processor to populate the
// caches, then resets the statistics and measures opsPerProc operations,
// mirroring the paper's warmed-checkpoint methodology. Statistics reset
// once every processor has completed its warmup.
func (s *System) ExecuteWarm(ctrls []Controller, gen Generator, warmup, opsPerProc int) (*stats.Run, error) {
	if len(ctrls) != s.Cfg.Procs {
		return nil, fmt.Errorf("machine: %d controllers for %d procs", len(ctrls), s.Cfg.Procs)
	}
	// Completion and warmup are global transitions; island goroutines only
	// decrement these counters, and the coordinator acts on them at the
	// next window barrier. Barrier times are partition-invariant, so the
	// measured interval — and every statistic — is identical at any
	// island count.
	remaining := int32(len(ctrls))
	cold := int32(len(ctrls))
	procs := make([]*Processor, len(ctrls))
	for i, c := range ctrls {
		isle := s.IsleFor(i)
		p := NewProcessor(isle.K, i, gen, c, s.Cfg, s.Rng.Split(), isle.Run, warmup+opsPerProc, func() {
			atomic.AddInt32(&remaining, -1)
		})
		if warmup > 0 {
			p.onWarm = func() {
				atomic.AddInt32(&cold, -1)
			}
			p.warmupOps = warmup
		}
		procs[i] = p
	}
	s.armIsles()
	for i, p := range procs {
		s.IsleFor(i).K.SetExecActor(int32(i))
		p.Start()
	}
	warmed := warmup <= 0
	var warmStart sim.Time
	end := s.Cluster.Run(func(t sim.Time) bool {
		s.replayJournals()
		if !warmed && atomic.LoadInt32(&cold) == 0 {
			warmed = true
			for _, isle := range s.Isles {
				isle.Run.Reset()
			}
			s.Run.Reset()
			s.Metrics.Reset()
			warmStart = t
			s.replaying, s.replayNow = true, t
			s.Obs.OnMeasurementStarted(t)
			s.replaying = false
		}
		return atomic.LoadInt32(&remaining) == 0
	})
	for _, isle := range s.Isles {
		if isle.Run != s.Run {
			s.Run.Merge(isle.Run)
		}
	}
	s.Run.Elapsed = end - warmStart
	if atomic.LoadInt32(&remaining) > 0 {
		issued, completed := 0, 0
		for _, p := range procs {
			issued += p.Issued()
			completed += p.Completed()
		}
		err := fmt.Errorf("machine: deadlock, %d/%d processors incomplete (%d issued, %d completed)",
			remaining, len(procs), issued, completed)
		s.Recorder.Trip(err.Error())
		return s.Run, err
	}
	if err := s.Oracle.Err(); err != nil {
		s.Recorder.Trip("safety oracle failed: " + err.Error())
		return s.Run, err
	}
	return s.Run, nil
}
