package machine

import (
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// Processor is the timing processor model: it issues the workload's
// memory operations with their think times, sustains up to Config.MSHRs
// outstanding coherence misses (approximating the memory-level
// parallelism of the paper's dynamically scheduled cores), and counts
// completed transactions.
type Processor struct {
	k    *sim.Kernel
	id   int
	gen  Generator
	ctrl Controller
	cfg  Config
	rng  *sim.Source
	run  *stats.Run

	limit        int
	issued       int
	completed    int
	outstanding  int
	loads        int
	held         *Op
	stalled      bool
	issuePending bool
	done         bool
	onDone       func()

	// warmupOps, when positive, marks the cache-warming prefix; onWarm
	// fires once when this processor completes it.
	warmupOps int
	warmed    bool
	onWarm    func()

	// issueFire is the issue callback, bound once so the issue loop
	// schedules without allocating a closure per event.
	issueFire  func()
	freeTokens *opToken
}

// opToken is a pooled completion callback for one in-flight operation.
// Its fire closure is bound once when the token is first allocated.
type opToken struct {
	p    *Processor
	op   Op
	fire func()
	next *opToken
}

// run recycles the token before completing, so the issue the completion
// unblocks can reuse it.
func (t *opToken) run() {
	p, op := t.p, t.op
	t.next = p.freeTokens
	p.freeTokens = t
	p.opDone(op)
}

// NewProcessor builds a processor that will issue limit operations.
func NewProcessor(k *sim.Kernel, id int, gen Generator, ctrl Controller, cfg Config, rng *sim.Source, run *stats.Run, limit int, onDone func()) *Processor {
	p := &Processor{
		k: k, id: id, gen: gen, ctrl: ctrl, cfg: cfg, rng: rng, run: run,
		limit: limit, onDone: onDone,
	}
	p.issueFire = p.issueTick
	return p
}

func (p *Processor) issueTick() {
	p.issuePending = false
	p.issueNext()
}

// Start schedules the first issue with a small random stagger so the
// processors do not march in lockstep.
func (p *Processor) Start() {
	p.scheduleIssue(p.rng.Duration(10 * sim.Nanosecond))
}

// Done reports whether all operations have completed.
func (p *Processor) Done() bool { return p.done }

// Issued reports operations issued so far.
func (p *Processor) Issued() int { return p.issued }

// Completed reports operations completed so far.
func (p *Processor) Completed() int { return p.completed }

func (p *Processor) scheduleIssue(d sim.Time) {
	if p.issuePending {
		return
	}
	p.issuePending = true
	p.k.After(d, p.issueFire)
}

func (p *Processor) issueNext() {
	if p.issued >= p.limit {
		return
	}
	var op Op
	if p.held != nil {
		op = *p.held
	} else {
		op = p.gen.Next(p.id, p.rng)
	}
	if p.outstanding >= p.cfg.MSHRs || (!op.Write && p.loads >= p.cfg.MaxLoads) {
		// Hold the operation until an outstanding one (or load) retires.
		held := op
		p.held = &held
		p.stalled = true
		return
	}
	p.held = nil
	p.issued++
	p.outstanding++
	if !op.Write {
		p.loads++
	}
	t := p.freeTokens
	if t == nil {
		t = &opToken{p: p}
		t.fire = t.run
	} else {
		p.freeTokens = t.next
	}
	t.op = op
	p.ctrl.Access(op, t.fire)
	if p.issued < p.limit {
		p.scheduleIssue(op.Think)
	}
}

func (p *Processor) opDone(op Op) {
	p.outstanding--
	if !op.Write {
		p.loads--
	}
	p.completed++
	if op.EndTxn {
		p.run.Transactions++
	}
	if p.warmupOps > 0 && !p.warmed && p.completed >= p.warmupOps {
		p.warmed = true
		if p.onWarm != nil {
			p.onWarm()
		}
	}
	if p.stalled && p.issued < p.limit {
		p.stalled = false
		p.scheduleIssue(0)
	}
	if p.completed == p.limit && !p.done {
		p.done = true
		if p.onDone != nil {
			p.onDone()
		}
	}
}
