package machine

import (
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// Processor is the timing processor model: it issues the workload's
// memory operations with their think times, sustains up to Config.MSHRs
// outstanding coherence misses (approximating the memory-level
// parallelism of the paper's dynamically scheduled cores), and counts
// completed transactions.
type Processor struct {
	k    *sim.Kernel
	id   int
	gen  Generator
	ctrl Controller
	cfg  Config
	rng  *sim.Source
	run  *stats.Run

	limit        int
	issued       int
	completed    int
	outstanding  int
	loads        int
	held         *Op
	stalled      bool
	issuePending bool
	done         bool
	onDone       func()

	// warmupOps, when positive, marks the cache-warming prefix; onWarm
	// fires once when this processor completes it.
	warmupOps int
	warmed    bool
	onWarm    func()
}

// NewProcessor builds a processor that will issue limit operations.
func NewProcessor(k *sim.Kernel, id int, gen Generator, ctrl Controller, cfg Config, rng *sim.Source, run *stats.Run, limit int, onDone func()) *Processor {
	return &Processor{
		k: k, id: id, gen: gen, ctrl: ctrl, cfg: cfg, rng: rng, run: run,
		limit: limit, onDone: onDone,
	}
}

// Start schedules the first issue with a small random stagger so the
// processors do not march in lockstep.
func (p *Processor) Start() {
	p.scheduleIssue(p.rng.Duration(10 * sim.Nanosecond))
}

// Done reports whether all operations have completed.
func (p *Processor) Done() bool { return p.done }

// Issued reports operations issued so far.
func (p *Processor) Issued() int { return p.issued }

// Completed reports operations completed so far.
func (p *Processor) Completed() int { return p.completed }

func (p *Processor) scheduleIssue(d sim.Time) {
	if p.issuePending {
		return
	}
	p.issuePending = true
	p.k.After(d, func() {
		p.issuePending = false
		p.issueNext()
	})
}

func (p *Processor) issueNext() {
	if p.issued >= p.limit {
		return
	}
	var op Op
	if p.held != nil {
		op = *p.held
	} else {
		op = p.gen.Next(p.id, p.rng)
	}
	if p.outstanding >= p.cfg.MSHRs || (!op.Write && p.loads >= p.cfg.MaxLoads) {
		// Hold the operation until an outstanding one (or load) retires.
		held := op
		p.held = &held
		p.stalled = true
		return
	}
	p.held = nil
	p.issued++
	p.outstanding++
	if !op.Write {
		p.loads++
	}
	p.ctrl.Access(op, func() { p.opDone(op) })
	if p.issued < p.limit {
		p.scheduleIssue(op.Think)
	}
}

func (p *Processor) opDone(op Op) {
	p.outstanding--
	if !op.Write {
		p.loads--
	}
	p.completed++
	if op.EndTxn {
		p.run.Transactions++
	}
	if p.warmupOps > 0 && !p.warmed && p.completed >= p.warmupOps {
		p.warmed = true
		if p.onWarm != nil {
			p.onWarm()
		}
	}
	if p.stalled && p.issued < p.limit {
		p.stalled = false
		p.scheduleIssue(0)
	}
	if p.completed == p.limit && !p.done {
		p.done = true
		if p.onDone != nil {
			p.onDone()
		}
	}
}
