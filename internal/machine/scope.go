package machine

import (
	"fmt"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/topology"
)

// Scope is a coherence realm: the set of nodes a protocol transaction
// for a block is resolved among, and the home node that serializes it.
// The root scope spans the whole machine (today's flat protocols); a
// hierarchical protocol additionally works in cluster scopes whose
// Parent chain escalates toward the root.
//
// Members may return an internally cached slice; callers must not
// mutate or retain it across calls.
type Scope interface {
	// Home returns the node serializing transactions for the block
	// within this scope.
	Home(b msg.Block) msg.NodeID
	// Members returns the scope's nodes for the block, in ascending
	// order. For the built-in scopes the set is block-independent.
	Members(b msg.Block) []msg.NodeID
	// Parent returns the enclosing scope, or nil for the root.
	Parent() Scope
}

// flatScope is the root realm: all n nodes, with the historical
// block-interleaved home mapping (msg.HomeOf). It reproduces the flat
// protocols' destination sets byte-identically.
type flatScope struct {
	n       int
	members []msg.NodeID
}

// NewFlatScope returns the machine-wide root scope over n nodes.
func NewFlatScope(n int) Scope {
	s := &flatScope{n: n, members: make([]msg.NodeID, n)}
	for i := range s.members {
		s.members[i] = msg.NodeID(i)
	}
	return s
}

func (s *flatScope) Home(b msg.Block) msg.NodeID    { return msg.HomeOf(b, s.n) }
func (s *flatScope) Members(msg.Block) []msg.NodeID { return s.members }
func (s *flatScope) Parent() Scope                  { return nil }

// clusterScope is one cluster's realm: a fixed member set with homes
// block-interleaved across the members, escalating to parent.
type clusterScope struct {
	members []msg.NodeID
	parent  Scope
}

// NewClusterScope returns a scope over the given members (ascending)
// escalating to parent. It panics on an empty member set.
func NewClusterScope(members []msg.NodeID, parent Scope) Scope {
	if len(members) == 0 {
		panic("machine: cluster scope needs at least one member")
	}
	return &clusterScope{members: members, parent: parent}
}

func (s *clusterScope) Home(b msg.Block) msg.NodeID {
	return s.members[uint64(b)%uint64(len(s.members))]
}
func (s *clusterScope) Members(msg.Block) []msg.NodeID { return s.members }
func (s *clusterScope) Parent() Scope                  { return s.parent }

// ClusterScopes derives one scope per cluster of a Clustered topology,
// each escalating to parent (normally the system's root scope), plus a
// per-node index: byNode[n] is the scope of the cluster containing node
// n. Hierarchical protocols call this at build time.
func ClusterScopes(ct topology.Clustered, parent Scope) (scopes []Scope, byNode []Scope) {
	clusters := topology.Clusters(ct)
	scopes = make([]Scope, len(clusters))
	byNode = make([]Scope, ct.Nodes())
	for c, members := range clusters {
		scopes[c] = NewClusterScope(members, parent)
		for _, n := range members {
			byNode[n] = scopes[c]
		}
	}
	return scopes, byNode
}

// ScopesFor resolves the system's cluster scopes, or an error naming the
// topology when it exposes no cluster metadata. Protocol build functions
// use it so a scope-requiring protocol on a flat topology fails with a
// diagnosable message even when constructed outside the engine's
// validation path.
func (s *System) ScopesFor() (scopes []Scope, byNode []Scope, err error) {
	ct, ok := s.Topo.(topology.Clustered)
	if !ok {
		return nil, nil, fmt.Errorf("machine: topology %q exposes no cluster metadata (topology.Clustered) required by scoped protocols", s.Topo.Name())
	}
	scopes, byNode = ClusterScopes(ct, s.Scope)
	return scopes, byNode, nil
}
