package machine

import (
	"tokencoherence/internal/cache"
	"tokencoherence/internal/interconnect"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// Op is one memory operation issued by a processor.
type Op struct {
	Addr msg.Addr
	// Write distinguishes stores from loads.
	Write bool
	// Think is the non-memory work modelled between this operation's
	// issue and the next one.
	Think sim.Time
	// EndTxn marks the last operation of a workload transaction; the
	// runtime metric is cycles per completed transaction.
	EndTxn bool
}

// Generator produces the memory-operation stream for one processor.
// Implementations must be deterministic given the rng stream.
type Generator interface {
	Next(proc int, rng *sim.Source) Op
}

// Controller is the processor-facing side of a coherence controller.
type Controller interface {
	// Access performs a load or store, invoking done when the operation
	// has committed (permission obtained and data read/written).
	Access(op Op, done func())
}

// MSHR tracks one outstanding coherence miss.
type MSHR struct {
	Block  msg.Block
	Write  bool
	Issued sim.Time
	// Waiters re-execute their access when the miss resolves.
	Waiters []func()

	// Reissues counts transient-request reissues (Token Coherence).
	Reissues int
	// Persistent marks escalation to a persistent request.
	Persistent bool
	// Timer is the pending reissue/starvation timer, if any.
	Timer *sim.Event

	// Ordered marks that the request has reached its serialization point
	// (its place in the snooping total order, or acceptance at the
	// directory/home).
	Ordered bool

	// Generic transaction scratch space used by the directory and hammer
	// protocols.
	AcksNeeded int
	AcksGot    int
	GotData    bool
	// Fill holds the data response until the transaction can commit
	// (e.g., while invalidation acknowledgments are still outstanding).
	Fill *msg.Message
	// FillKept marks a Fill the protocol retained from the network's
	// message pool (the fill arrived in an earlier handler call);
	// CompleteMiss recycles it. A fill consumed within the handler that
	// delivered it is recycled by the network instead.
	FillKept bool
	// Grant marks a dataless exclusivity grant (the requester upgrades
	// its own resident copy instead of filling from Fill).
	Grant bool
}

// CacheHooks is what a protocol supplies to specialize CacheBase.
type CacheHooks interface {
	// HasPermission reports whether the resident L2 line grants the
	// access (read needs a readable copy, write an exclusive one).
	HasPermission(l *cache.Line, write bool) bool
	// StartMiss begins the protocol transaction for a newly allocated
	// MSHR.
	StartMiss(m *MSHR)
	// EvictL2 disposes of an evicted L2 victim line (writeback, token
	// return, ...). The line has already been removed from the cache.
	EvictL2(v cache.Line)
}

// CacheBase implements the protocol-independent half of a cache
// controller: the L1 latency filter, the L2 tag/state array, MSHR
// allocation and merging, hit/miss timing, the safety-oracle calls, and
// miss-latency bookkeeping. Protocol controllers embed it and provide
// CacheHooks.
type CacheBase struct {
	K      *sim.Kernel
	Net    *interconnect.Network
	ID     msg.NodeID
	Cfg    Config
	Run    *stats.Run
	Oracle *Oracle
	Rng    *sim.Source
	Hooks  CacheHooks
	// Sys is the owning system. Isle is this node's island context; event
	// sites read Isle.Obs through it so observers attached after protocol
	// construction are still seen (events journal on the island and replay
	// into Sys.Obs at the barriers).
	Sys  *System
	Isle *Isle

	// Scope is the coherence realm this controller resolves misses in.
	// InitBase wires the system's root scope (the flat machine-wide
	// realm); hierarchical protocols re-point it at the node's cluster
	// scope, rerouting HomePort at the per-cluster tier.
	Scope Scope

	L1          *cache.Cache
	L2          *cache.Cache
	Outstanding map[msg.Block]*MSHR

	// AvgMiss is an exponentially weighted moving average of recent miss
	// latencies, used by Token Coherence's adaptive reissue timeout.
	AvgMiss sim.Time

	freeWaiters *waiter
}

// waiter is a pooled re-execution record for an access waiting on an
// in-flight miss. Its fire closure is bound once when the record is
// first allocated, so queueing waiters on the hot path allocates
// nothing in steady state.
type waiter struct {
	b    *CacheBase
	op   Op
	done func()
	fire func()
	next *waiter
}

// run recycles the record before re-executing so the re-executed access
// can reuse it for its own waiter.
func (w *waiter) run() {
	b, op, done := w.b, w.op, w.done
	w.done = nil
	w.next = b.freeWaiters
	b.freeWaiters = w
	b.Access(op, done)
}

// waiterFor returns a bound callback that re-executes Access(op, done).
func (b *CacheBase) waiterFor(op Op, done func()) func() {
	w := b.freeWaiters
	if w == nil {
		w = &waiter{b: b}
		w.fire = w.run
	} else {
		b.freeWaiters = w.next
	}
	w.op = op
	w.done = done
	return w.fire
}

// InitBase wires the shared state; protocol constructors call it.
func (b *CacheBase) InitBase(sys *System, id msg.NodeID, hooks CacheHooks) {
	b.Sys = sys
	b.Scope = sys.Scope
	b.Isle = sys.IsleFor(int(id))
	b.K = b.Isle.K
	b.Net = b.Isle.Net
	b.ID = id
	b.Cfg = sys.Cfg
	b.Run = b.Isle.Run
	b.Oracle = sys.Oracle
	b.Rng = sys.Rng.Split()
	b.Hooks = hooks
	b.L1 = cache.New(sys.Cfg.L1Size, sys.Cfg.L1Assoc)
	b.L2 = cache.New(sys.Cfg.L2Size, sys.Cfg.L2Assoc)
	b.Outstanding = make(map[msg.Block]*MSHR)
	b.AvgMiss = 150 * sim.Nanosecond
}

// CachePort returns this controller's network port.
func (b *CacheBase) CachePort() msg.Port { return msg.Port{Node: b.ID, Unit: msg.UnitCache} }

// HomePort returns the home memory port for a block within this
// controller's scope (the machine-wide home under the root scope, the
// cluster home under a cluster scope).
func (b *CacheBase) HomePort(blk msg.Block) msg.Port {
	return msg.Port{Node: b.Scope.Home(blk), Unit: msg.UnitMem}
}

// ArbiterPort returns the persistent-request arbiter port for a block.
// Arbiters always live at the root scope's home: persistent requests are
// the machine-wide starvation-freedom mechanism, so their arbitration
// point never moves into a cluster.
func (b *CacheBase) ArbiterPort(blk msg.Block) msg.Port {
	return msg.Port{Node: b.Sys.Scope.Home(blk), Unit: msg.UnitArbiter}
}

// Access implements Controller.
func (b *CacheBase) Access(op Op, done func()) {
	blk := msg.BlockOf(op.Addr)
	if l2 := b.L2.Lookup(blk); l2 != nil && b.Hooks.HasPermission(l2, op.Write) {
		b.L2.Touch(l2)
		lat := b.Cfg.L1Latency
		if b.L1.Lookup(blk) != nil {
			b.Run.L1Hits++
		} else {
			lat += b.Cfg.L2Latency
			b.Run.L2Hits++
			b.fillL1(blk)
		}
		b.commit(op, l2)
		b.Run.Accesses++
		b.K.After(lat, done)
		return
	}
	// Coherence miss: merge into an outstanding transaction when one
	// exists; the waiter re-executes the access after it resolves (and
	// issues a fresh upgrade miss if the resolved permission is too
	// weak).
	if m, ok := b.Outstanding[blk]; ok {
		m.Waiters = append(m.Waiters, b.waiterFor(op, done))
		return
	}
	m := &MSHR{Block: blk, Write: op.Write, Issued: b.K.Now()}
	m.Waiters = append(m.Waiters, b.waiterFor(op, done))
	b.Outstanding[blk] = m
	b.Run.Misses.Issued++
	if o := b.Isle.Obs; o != nil {
		o.OnMissIssued(int(b.ID), blk, op.Write, m.Issued)
	}
	if op.Write && b.L2.Lookup(blk) != nil {
		b.Run.Upgrades++
	}
	b.Hooks.StartMiss(m)
}

// commit applies the operation to the line and informs the oracle.
func (b *CacheBase) commit(op Op, l *cache.Line) {
	if op.Write {
		l.Data = b.Oracle.CommitWrite(int(b.ID), l.Block, b.K.Now())
		l.Dirty = true
		l.Written = true
	} else {
		b.Oracle.CheckRead(int(b.ID), l.Block, l.Data, b.K.Now())
	}
}

func (b *CacheBase) fillL1(blk msg.Block) {
	if b.L1.Lookup(blk) == nil {
		b.L1.Allocate(blk) // L1 victims drop silently (latency filter)
	}
}

// DropL1 removes a block's L1 tag (called on invalidation/downgrade).
func (b *CacheBase) DropL1(blk msg.Block) { b.L1.Remove(blk) }

// EnsureL2 returns the L2 line for blk, allocating (and evicting a
// victim through the protocol hook) when absent. Victim selection avoids
// lines with in-flight transactions unless the whole set is in flight.
func (b *CacheBase) EnsureL2(blk msg.Block) *cache.Line {
	if l := b.L2.Lookup(blk); l != nil {
		return l
	}
	l, victim, evicted := b.L2.AllocateAvoiding(blk, func(other msg.Block) bool {
		_, busy := b.Outstanding[other]
		return busy
	})
	if evicted {
		b.DropL1(victim.Block)
		b.Run.Writeback++
		b.Hooks.EvictL2(victim)
	}
	return l
}

// CompleteMiss retires an MSHR: cancels its timer, records latency,
// classifies the miss for Table 2, and replays the waiting accesses.
func (b *CacheBase) CompleteMiss(m *MSHR) {
	if b.Outstanding[m.Block] != m {
		panic("machine: CompleteMiss for unknown MSHR")
	}
	delete(b.Outstanding, m.Block)
	if m.Timer != nil {
		b.K.Cancel(m.Timer)
		m.Timer = nil
	}
	if m.Fill != nil {
		if m.FillKept {
			b.Net.FreeMessage(m.Fill)
		}
		m.Fill = nil
		m.FillKept = false
	}
	lat := b.K.Now() - m.Issued
	b.Run.MissLatencySum += lat
	b.Run.MissLatencyCount++
	b.Run.MissLatencies.Observe(lat)
	b.AvgMiss += (lat - b.AvgMiss) / 8
	switch {
	case m.Persistent:
		b.Run.Misses.Persistent++
	case m.Reissues == 1:
		b.Run.Misses.ReissuedOnce++
	case m.Reissues > 1:
		b.Run.Misses.ReissuedMore++
	}
	if o := b.Isle.Obs; o != nil {
		o.OnMissCompleted(int(b.ID), m.Block, m.Reissues, m.Persistent, lat)
	}
	waiters := m.Waiters
	m.Waiters = nil
	for _, w := range waiters {
		w()
	}
}
