package directory

import (
	"strings"
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

// newDir2System builds the two-level directory on the fanout-4 tree,
// whose root-child subtrees give 16 processors four 4-node clusters.
func newDir2System(t *testing.T, seed uint64, mutate func(*machine.Config)) (*machine.System, *System2) {
	t.Helper()
	cfg := machine.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	sys := machine.NewSystem(cfg, topology.NewTree(cfg.Procs), seed)
	s, err := Build2(sys)
	if err != nil {
		t.Fatal(err)
	}
	return sys, s
}

// clusterHomeOf returns the node serving block b in node n's cluster.
func clusterHomeOf(s *System2, n msg.NodeID, b msg.Block) msg.NodeID {
	return s.Caches[n].Scope.Home(b)
}

// auditDir2 checks the two tiers agree at quiescence: no transaction in
// flight anywhere, and every held authority is claimed by exactly the
// cluster home the global tier granted it to.
func auditDir2(t *testing.T, s *System2) {
	t.Helper()
	holders := make(map[msg.Block]msg.NodeID)
	for _, g := range s.Global {
		for b, e := range g.lines {
			if e.busy {
				t.Errorf("block %d: authority recall still in flight at quiescence", b)
			}
			if e.held {
				holders[b] = e.holder
			}
		}
	}
	claims := make(map[msg.Block][]msg.NodeID)
	for _, h := range s.Homes {
		for b, a := range h.auths {
			if a.acquiring || a.recalling || a.pendingRecall {
				t.Errorf("block %d: cluster home %d still mid-transition at quiescence", b, h.id)
			}
			if a.have {
				claims[b] = append(claims[b], h.id)
			}
		}
	}
	for b, holder := range holders {
		cs := claims[b]
		if len(cs) != 1 || cs[0] != holder {
			t.Errorf("block %d: global tier granted node %d but cluster claims are %v", b, holder, cs)
		}
	}
	for b, cs := range claims {
		if _, held := holders[b]; !held {
			t.Errorf("block %d: claimed by %v but the global tier shows it released", b, cs)
		}
	}
}

func TestDir2ClusterPrivateRead(t *testing.T) {
	sys, s := newDir2System(t, 1, nil)
	const addr = msg.Addr(0x100)
	b := msg.BlockOf(addr)
	done := new(bool)
	s.Caches[2].Access(machine.Op{Addr: addr}, func() { *done = true })
	sys.K.Run()
	if !*done {
		t.Fatal("read did not complete")
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if l := s.Caches[2].L2.Lookup(b); l == nil || l.State != stateS {
		t.Fatalf("reader line = %+v, want S", l)
	}
	home := clusterHomeOf(s, 2, b)
	if home < 0 || home > 3 {
		t.Fatalf("cluster home %d for node 2 is outside cluster {0..3}", home)
	}
	have, _, _ := s.Homes[home].Authority(b)
	if !have {
		t.Errorf("cluster home %d did not acquire authority for block %d", home, b)
	}
	held, holder := s.Global[msg.HomeOf(b, 16)].Holder(b)
	if !held || holder != home {
		t.Errorf("global authority (held=%v holder=%d), want held by %d", held, holder, home)
	}
	auditDir2(t, s)
}

func TestDir2CrossClusterWriteRecallsAuthority(t *testing.T) {
	sys, s := newDir2System(t, 2, nil)
	const addr = msg.Addr(0x100) // block 4: cluster homes at nodes 0 and 4
	b := msg.BlockOf(addr)
	d0 := new(bool)
	s.Caches[0].Access(machine.Op{Addr: addr, Write: true}, func() { *d0 = true })
	sys.K.Run()
	d1 := new(bool)
	s.Caches[4].Access(machine.Op{Addr: addr, Write: true}, func() { *d1 = true })
	sys.K.Run()
	if !*d0 || !*d1 {
		t.Fatal("writes did not complete")
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	home0, home1 := clusterHomeOf(s, 0, b), clusterHomeOf(s, 4, b)
	if have, _, _ := s.Homes[home0].Authority(b); have {
		t.Errorf("cluster home %d kept authority across the recall", home0)
	}
	if have, _, _ := s.Homes[home1].Authority(b); !have {
		t.Errorf("cluster home %d did not gain authority", home1)
	}
	if held, holder := s.Global[msg.HomeOf(b, 16)].Holder(b); !held || holder != home1 {
		t.Errorf("global authority (held=%v holder=%d), want held by %d", held, holder, home1)
	}
	// The recall invalidated the first writer's copy.
	if l := s.Caches[0].L2.Lookup(b); l != nil && l.Valid {
		t.Errorf("node 0 still holds a valid copy after the recall: %+v", l)
	}
	auditDir2(t, s)
}

func TestDir2Stress(t *testing.T) {
	for _, seed := range []uint64{71, 72, 73} {
		t.Run("", func(t *testing.T) {
			sys, s := newDir2System(t, seed, nil)
			gen := &uniformGen{blocks: 24, pWrite: 0.4, think: 5 * sim.Nanosecond}
			run, err := sys.Execute(s.Controllers(), gen, 300)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if run.Misses.Issued == 0 {
				t.Error("no misses in stress run")
			}
			auditDir2(t, s)
		})
	}
}

func TestDir2StressHighContention(t *testing.T) {
	sys, s := newDir2System(t, 80, nil)
	gen := &uniformGen{blocks: 2, pWrite: 0.6, think: 1 * sim.Nanosecond}
	if _, err := sys.Execute(s.Controllers(), gen, 150); err != nil {
		t.Fatalf("execute: %v", err)
	}
	auditDir2(t, s)
}

func TestDir2StressTinyCachesWritebackRaces(t *testing.T) {
	sys, s := newDir2System(t, 81, func(c *machine.Config) {
		c.L2Size = 4 * msg.BlockSize
		c.L2Assoc = 1
		c.L1Size = msg.BlockSize
		c.L1Assoc = 1
	})
	gen := &uniformGen{blocks: 12, pWrite: 0.5, think: 2 * sim.Nanosecond}
	if _, err := sys.Execute(s.Controllers(), gen, 250); err != nil {
		t.Fatalf("execute: %v", err)
	}
	auditDir2(t, s)
}

func TestDir2RejectsOversizedClusters(t *testing.T) {
	// A 256-processor binary tree has two 128-node root subtrees, past
	// the sharer bitset's 64-node capacity.
	cfg := machine.DefaultConfig()
	cfg.Procs = 256
	cfg.TokensPerBlock = 2 * cfg.Procs
	sys := machine.NewSystem(cfg, topology.NewTreeFanout(cfg.Procs, 2), 1)
	if _, err := Build2(sys); err == nil {
		t.Fatal("Build2 accepted 256-node clusters")
	} else if !strings.Contains(err.Error(), "sharer-bitset capacity") {
		t.Fatalf("unexpected error: %v", err)
	}
}
