package directory

// This file is the two-level directory protocol ("dir2"): the homeCore
// MOSI state machine replicated per cluster, under a machine-wide
// authority tier.
//
// Every node runs a ClusterHome for its cluster's slice of the address
// space (homes block-interleaved across the cluster's members, see
// machine.NewClusterScope), so a miss that stays cluster-private is
// serialized one or two hops away instead of crossing the machine. A
// cluster home may only serve a block while it holds that block's
// authority, granted by the GlobalAuth tier at the block's machine-wide
// home. When another cluster wants the block, the global tier recalls
// the authority: the holding cluster home invalidates every cached copy
// in its cluster, gathers the current data, and returns both. Authority
// transfers are FIFO at the global tier, so cross-cluster sharing is
// starvation-free; each tenure serves at least the requests queued when
// the grant arrived.

import (
	"fmt"
	"math/bits"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/stats"
)

// MaxClusterNodes is the sharer-bitset capacity of one cluster tier.
const MaxClusterNodes = 64

// authLine is a cluster home's authority state for one block.
type authLine struct {
	// have marks held authority: the homeCore line is live and may
	// serialize requests for the block.
	have bool
	// acquiring marks an AuthReq in flight to the global tier.
	acquiring bool
	// pendingRecall marks a recall that arrived while a forwarded
	// transaction was in flight; the unblock path starts it.
	pendingRecall bool
	// recalling marks an in-progress recall: cluster copies are being
	// invalidated and gathered before the authority returns.
	recalling bool
	// recallAcks counts outstanding invalidation acks of the recall.
	recallAcks int
	// needData marks a recall waiting for the cluster owner's data.
	needData bool
}

// ClusterHome is the per-cluster directory tier of the two-level
// protocol: node id's homeCore over its cluster's members, serving only
// while it holds the block's authority from the global tier.
type ClusterHome struct {
	homeCore
	id    msg.NodeID
	scope machine.Scope
	auths map[msg.Block]*authLine
	// acquires counts authority acquisitions (cluster-level misses that
	// escalated to the global tier).
	acquires *stats.Counter
}

// NewClusterHome builds and registers node id's cluster directory tier
// over scope (the cluster containing id).
func NewClusterHome(sys *machine.System, id msg.NodeID, scope machine.Scope) *ClusterHome {
	h := &ClusterHome{
		homeCore: newHomeCore(sys, msg.Port{Node: id, Unit: msg.UnitMem}, scope.Members(0)),
		id:       id,
		scope:    scope,
		auths:    make(map[msg.Block]*authLine),
	}
	h.onIdle = h.idleHook
	h.acquires = sys.Metrics.Counter(stats.Desc{
		Name: "dir2_authority_acquires", Unit: "count", Fmt: "%.0f",
		Help: "block authorities acquired by cluster homes from the global tier",
	})
	sys.Net.Register(h.Port(), h)
	return h
}

// Port returns the cluster home's network port.
func (h *ClusterHome) Port() msg.Port { return h.port }

func (h *ClusterHome) auth(b msg.Block) *authLine {
	a, ok := h.auths[b]
	if !ok {
		a = &authLine{}
		h.auths[b] = a
	}
	return a
}

// Authority reports the block's authority state for tests.
func (h *ClusterHome) Authority(b msg.Block) (have, acquiring, recalling bool) {
	a := h.auth(b)
	return a.have, a.acquiring, a.recalling || a.pendingRecall
}

// globalPort returns the block's global authority port: the machine-wide
// home node's arbiter unit (free in dir2, which runs no persistent
// requests).
func (h *ClusterHome) globalPort(b msg.Block) msg.Port {
	return msg.Port{Node: h.sys.Scope.Home(b), Unit: msg.UnitArbiter}
}

// Handle implements interconnect.Handler.
func (h *ClusterHome) Handle(mm *msg.Message) {
	b := msg.BlockOf(mm.Addr)
	switch mm.Kind {
	case msg.KindGetS, msg.KindGetM, msg.KindPutM:
		l := h.line(b)
		a := h.auth(b)
		if !a.have || a.acquiring || a.recalling || a.pendingRecall || l.busy {
			l.queue = append(l.queue, mm.Retain())
			h.ensureAuthority(b, a)
			return
		}
		h.process(l, mm)
	case msg.KindUnblock:
		h.unblock(h.line(b), mm)
	case msg.KindAuthGrant:
		h.onGrant(b, mm)
	case msg.KindRecall:
		h.onRecall(b)
	case msg.KindData:
		h.onRecallData(b, mm)
	case msg.KindAck:
		h.onRecallAck(b)
	default:
		panic("directory: cluster home received unexpected " + mm.Kind.String())
	}
}

// ensureAuthority escalates to the global tier when the cluster neither
// holds nor is already requesting the block's authority.
func (h *ClusterHome) ensureAuthority(b msg.Block, a *authLine) {
	if a.have || a.acquiring {
		return
	}
	a.acquiring = true
	h.acquires.Inc()
	h.send(h.newMessage(msg.Message{
		Kind: msg.KindAuthReq, Cat: msg.CatRequest,
		Src: h.port, Dst: h.globalPort(b), Addr: b.Base(),
	}), h.sys.Cfg.CtrlLatency)
}

func (h *ClusterHome) onGrant(b msg.Block, mm *msg.Message) {
	a := h.auth(b)
	if !a.acquiring || a.have {
		panic("directory: stray authority grant")
	}
	l := h.line(b)
	if l.state != dirI || l.sharers != 0 || l.busy {
		panic("directory: authority granted over live cluster state")
	}
	a.acquiring = false
	a.have = true
	l.data = mm.Data
	for len(l.queue) > 0 && !l.busy {
		next := l.queue[0]
		l.queue = l.queue[1:]
		h.process(l, next)
		h.isle.Net.FreeMessage(next)
	}
}

func (h *ClusterHome) onRecall(b msg.Block) {
	a := h.auth(b)
	// Grants and recalls share the global->cluster-home path with equal
	// latency, so FIFO delivery guarantees a recall always finds the
	// authority held, never still in flight.
	if !a.have || a.acquiring || a.recalling || a.pendingRecall {
		panic("directory: recall without held authority")
	}
	l := h.line(b)
	if l.busy {
		a.pendingRecall = true // the unblock path starts the recall
		return
	}
	h.startRecall(b, l, a)
}

// idleHook is the homeCore onIdle hook: a recall that arrived during the
// just-completed transaction runs before any queued requests, taking
// queue ownership (the queue drains after the authority is re-acquired).
func (h *ClusterHome) idleHook(l *dirLine, b msg.Block) bool {
	a := h.auth(b)
	if !a.pendingRecall {
		return false
	}
	a.pendingRecall = false
	h.startRecall(b, l, a)
	return true
}

// startRecall invalidates every cached copy in the cluster and gathers
// the current data, running as its own pseudo-transaction (a fresh line
// seq) so racing fills order themselves against it like any other.
func (h *ClusterHome) startRecall(b msg.Block, l *dirLine, a *authLine) {
	a.recalling = true
	l.seq++
	seq := l.seq
	switch l.state {
	case dirI, dirS:
		// The cluster home's copy is current; drop any read-only sharers.
		set := l.sharers
		a.needData = false
		a.recallAcks = bits.OnesCount64(set)
		h.sendInvals(set, b.Base(), h.port, seq)
	case dirM, dirO:
		// Pull the data from the cluster owner and drop the rest.
		others := l.sharers &^ (1 << h.idx(l.owner))
		a.needData = true
		a.recallAcks = bits.OnesCount64(others)
		h.send(h.newMessage(msg.Message{
			Kind: msg.KindFwdGetM, Cat: msg.CatRequest,
			Src: h.port, Dst: msg.Port{Node: l.owner, Unit: msg.UnitCache},
			Addr: b.Base(), Requester: h.port, Acks: a.recallAcks, Seq: seq,
		}), h.dirLat())
		h.sendInvals(others, b.Base(), h.port, seq)
	}
	h.maybeFinishRecall(b, l, a)
}

func (h *ClusterHome) onRecallData(b msg.Block, mm *msg.Message) {
	a := h.auth(b)
	if !a.recalling || !a.needData {
		panic("directory: cluster home received data outside a recall")
	}
	l := h.line(b)
	l.data = mm.Data
	a.needData = false
	h.maybeFinishRecall(b, l, a)
}

func (h *ClusterHome) onRecallAck(b msg.Block) {
	a := h.auth(b)
	if !a.recalling || a.recallAcks <= 0 {
		panic("directory: cluster home received a stray invalidation ack")
	}
	a.recallAcks--
	h.maybeFinishRecall(b, h.line(b), a)
}

func (h *ClusterHome) maybeFinishRecall(b msg.Block, l *dirLine, a *authLine) {
	if !a.recalling || a.needData || a.recallAcks > 0 {
		return
	}
	a.recalling = false
	a.have = false
	// Every cluster copy is gone; reset the realm to I. The line seq
	// keeps counting so messages from before the recall stay ordered
	// against the next tenure's.
	l.state = dirI
	l.owner = 0
	l.sharers = 0
	h.send(h.newMessage(msg.Message{
		Kind: msg.KindRecallAck, Cat: msg.CatData,
		Src: h.port, Dst: h.globalPort(b), Addr: b.Base(),
		HasData: true, Data: l.data,
	}), h.sys.Cfg.CtrlLatency)
	if len(l.queue) > 0 {
		h.ensureAuthority(b, a)
	}
}

// authEntry is the global tier's per-block authority record.
type authEntry struct {
	held   bool
	holder msg.NodeID // cluster home currently holding the authority
	busy   bool       // recall in flight to holder
	data   uint64     // current data while no cluster holds the authority
	queue  []msg.NodeID
}

// GlobalAuth is the machine-wide authority tier of the two-level
// directory: one per node, at the block-interleaved machine home,
// serving block authorities to cluster homes FIFO and recalling them on
// conflicting requests. It registers on the arbiter unit, which dir2
// leaves free (the protocol runs no persistent requests).
type GlobalAuth struct {
	sys   *machine.System
	isle  *machine.Isle
	id    msg.NodeID
	lines map[msg.Block]*authEntry
	// recalls counts authority recalls (cross-cluster conflicts).
	recalls *stats.Counter
}

// NewGlobalAuth builds and registers node id's global authority tier.
func NewGlobalAuth(sys *machine.System, id msg.NodeID) *GlobalAuth {
	g := &GlobalAuth{
		sys:   sys,
		isle:  sys.IsleFor(int(id)),
		id:    id,
		lines: make(map[msg.Block]*authEntry),
	}
	g.recalls = sys.Metrics.Counter(stats.Desc{
		Name: "dir2_authority_recalls", Unit: "count", Fmt: "%.0f",
		Help: "block authorities recalled from cluster homes on cross-cluster conflicts",
	})
	sys.Net.Register(g.Port(), g)
	return g
}

// Port returns the global authority's network port.
func (g *GlobalAuth) Port() msg.Port { return msg.Port{Node: g.id, Unit: msg.UnitArbiter} }

func (g *GlobalAuth) line(b msg.Block) *authEntry {
	e, ok := g.lines[b]
	if !ok {
		e = &authEntry{}
		g.lines[b] = e
	}
	return e
}

// Holder reports the block's authority holder for tests.
func (g *GlobalAuth) Holder(b msg.Block) (held bool, holder msg.NodeID) {
	e := g.line(b)
	return e.held, e.holder
}

// Handle implements interconnect.Handler.
func (g *GlobalAuth) Handle(mm *msg.Message) {
	b := msg.BlockOf(mm.Addr)
	e := g.line(b)
	switch mm.Kind {
	case msg.KindAuthReq:
		req := mm.Src.Node
		if !e.held && !e.busy {
			g.grant(e, b, req)
			return
		}
		e.queue = append(e.queue, req)
		if !e.busy {
			g.recall(e, b)
		}
	case msg.KindRecallAck:
		if !e.held || !e.busy {
			panic("directory: recall ack without an outstanding recall")
		}
		e.data = mm.Data
		e.held = false
		e.busy = false
		next := e.queue[0]
		e.queue = e.queue[1:]
		g.grant(e, b, next)
		if len(e.queue) > 0 {
			g.recall(e, b) // FIFO: the grant precedes this on the same path
		}
	default:
		panic("directory: global authority received unexpected " + mm.Kind.String())
	}
}

func (g *GlobalAuth) grant(e *authEntry, b msg.Block, to msg.NodeID) {
	e.held = true
	e.holder = to
	out := g.isle.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindAuthGrant, Cat: msg.CatData,
		Src: g.Port(), Dst: msg.Port{Node: to, Unit: msg.UnitMem}, Addr: b.Base(),
		HasData: true, Data: e.data,
	}
	g.isle.Net.SendAfter(out, g.sys.Cfg.CtrlLatency)
}

func (g *GlobalAuth) recall(e *authEntry, b msg.Block) {
	e.busy = true
	g.recalls.Inc()
	out := g.isle.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindRecall, Cat: msg.CatRequest,
		Src: g.Port(), Dst: msg.Port{Node: e.holder, Unit: msg.UnitMem}, Addr: b.Base(),
	}
	g.isle.Net.SendAfter(out, g.sys.Cfg.CtrlLatency)
}

// System2 bundles the two-level directory machine's components.
type System2 struct {
	Caches []*Cache
	Homes  []*ClusterHome
	Global []*GlobalAuth
}

// Build2 constructs the two-level directory protocol on sys. The
// topology must expose cluster metadata (topology.Clustered), and no
// cluster may exceed the sharer bitset's 64-node capacity.
func Build2(sys *machine.System) (*System2, error) {
	scopes, byNode, err := sys.ScopesFor()
	if err != nil {
		return nil, err
	}
	for _, sc := range scopes {
		if n := len(sc.Members(0)); n > MaxClusterNodes {
			return nil, fmt.Errorf("directory: cluster of %d nodes exceeds the two-level directory's %d-node sharer-bitset capacity", n, MaxClusterNodes)
		}
	}
	s := &System2{}
	for i := 0; i < sys.Cfg.Procs; i++ {
		id := msg.NodeID(i)
		c := NewCache(sys, id)
		// Re-point the cache at its cluster realm: requests, writebacks
		// and unblocks go to the cluster home instead of the machine home.
		c.Scope = byNode[i]
		s.Caches = append(s.Caches, c)
		s.Homes = append(s.Homes, NewClusterHome(sys, id, byNode[i]))
		s.Global = append(s.Global, NewGlobalAuth(sys, id))
	}
	return s, nil
}

// Controllers adapts the caches for machine.System.Execute.
func (s *System2) Controllers() []machine.Controller {
	out := make([]machine.Controller, len(s.Caches))
	for i, c := range s.Caches {
		out[i] = c
	}
	return out
}
