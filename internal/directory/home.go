package directory

import (
	"math/bits"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// Directory states at the home.
type dirState uint8

const (
	dirI dirState = iota // memory owns; no cached copies known
	dirS                 // memory owns; read-only sharers
	dirO                 // a cache owns; possibly sharers
	dirM                 // a cache owns exclusively
)

type dirLine struct {
	state   dirState
	owner   msg.NodeID
	sharers uint64 // bitset over sharer indices (see homeCore.idx)
	data    uint64
	busy    bool
	// seq numbers this block's home transactions; every outgoing data,
	// grant, forward and invalidation is stamped with it so caches can
	// order messages that raced on the unordered fabric.
	seq uint64
	// ownerSeq is the transaction that made the current cache owner the
	// owner; a PutM is genuine only if it carries this epoch.
	ownerSeq uint64
	txnSeq   uint64
	queue    []*msg.Message
	// txn records the in-flight forwarded transaction.
	txnKind msg.Kind
	txnReq  msg.Port
}

// homeCore is the per-block MOSI home directory state machine, reusable
// across coherence realms: the flat machine-wide home (Memory) embeds it
// over all nodes, and the two-level protocol's per-cluster tier
// (ClusterHome) embeds it over one cluster's members. The embedding
// wrapper owns message reception, queueing policy, and network
// registration; the core owns the line state, request processing, and
// the unblock path.
type homeCore struct {
	sys  *machine.System
	isle *machine.Isle
	// port is the home's own network port; every outgoing message is
	// stamped with it as Src.
	port  msg.Port
	lines map[msg.Block]*dirLine
	// homeReqs is the protocol's named metric: transactions serialized
	// at home directories (shared by every home of the run).
	homeReqs *stats.Counter

	// members maps sharer-bitset indices to node IDs when the home
	// serves a cluster realm. Nil selects the machine-wide identity
	// mapping (bit i == node i), the flat directory's historical layout.
	members []msg.NodeID
	// mindex inverts members (node -> bitset index, -1 for non-members);
	// nil together with members.
	mindex []int

	// onIdle, when non-nil, runs in the unblock path after a transaction
	// completes (the line just went idle) and before the queue drains.
	// Returning true transfers queue ownership to the wrapper, which
	// leaves the queue untouched here (the hierarchical home uses this
	// to start a pending authority recall ahead of queued requests).
	onIdle func(l *dirLine, b msg.Block) bool
}

// newHomeCore builds a home state machine sending from port. members
// selects the sharer-bitset index space: nil for the machine-wide
// identity mapping, or a cluster's node list (at most 64 nodes).
func newHomeCore(sys *machine.System, port msg.Port, members []msg.NodeID) homeCore {
	hc := homeCore{
		sys:   sys,
		isle:  sys.IsleFor(int(port.Node)),
		port:  port,
		lines: make(map[msg.Block]*dirLine),
	}
	hc.homeReqs = sys.Metrics.Counter(stats.Desc{
		Name: "dir_home_requests", Unit: "count", Fmt: "%.0f",
		Help: "requests serialized at home directories",
	})
	if members != nil {
		hc.members = members
		hc.mindex = make([]int, sys.Cfg.Procs)
		for i := range hc.mindex {
			hc.mindex[i] = -1
		}
		for i, n := range members {
			hc.mindex[n] = i
		}
	}
	return hc
}

// idx maps a node to its sharer-bitset index.
func (m *homeCore) idx(n msg.NodeID) uint {
	if m.mindex == nil {
		return uint(n)
	}
	i := m.mindex[n]
	if i < 0 {
		panic("directory: request from a node outside the home's realm")
	}
	return uint(i)
}

// nodeAt maps a sharer-bitset index back to its node.
func (m *homeCore) nodeAt(i int) msg.NodeID {
	if m.members == nil {
		return msg.NodeID(i)
	}
	return m.members[i]
}

func (m *homeCore) line(b msg.Block) *dirLine {
	if l, ok := m.lines[b]; ok {
		return l
	}
	l := &dirLine{state: dirI}
	m.lines[b] = l
	return l
}

// latencies: actions that read memory data pay controller + DRAM; pure
// directory actions pay controller + directory lookup.
func (m *homeCore) dataLat() sim.Time { return m.sys.Cfg.CtrlLatency + m.sys.Cfg.MemLatency }
func (m *homeCore) dirLat() sim.Time  { return m.sys.Cfg.CtrlLatency + m.sys.Cfg.DirLatency }

// newMessage allocates an outgoing message from the network's pool.
func (m *homeCore) newMessage(t msg.Message) *msg.Message {
	out := m.isle.Net.NewMessage()
	*out = t
	return out
}

func (m *homeCore) send(out *msg.Message, lat sim.Time) {
	m.isle.Net.SendAfter(out, lat)
}

func (m *homeCore) process(l *dirLine, mm *msg.Message) {
	m.homeReqs.Inc()
	req := mm.Requester
	l.seq++
	seq := l.seq
	switch mm.Kind {
	case msg.KindGetS:
		switch l.state {
		case dirI, dirS:
			l.state = dirS
			l.sharers |= 1 << m.idx(req.Node)
			m.send(m.newMessage(msg.Message{
				Kind: msg.KindData, Cat: msg.CatData,
				Src: m.port, Dst: req, Addr: mm.Addr,
				HasData: true, Data: l.data, Seq: seq,
			}), m.dataLat())
		case dirM, dirO:
			l.busy = true
			l.txnKind = msg.KindGetS
			l.txnReq = req
			l.txnSeq = seq
			m.send(m.newMessage(msg.Message{
				Kind: msg.KindFwdGetS, Cat: msg.CatRequest,
				Src: m.port, Dst: msg.Port{Node: l.owner, Unit: msg.UnitCache},
				Addr: mm.Addr, Requester: req, Seq: seq,
			}), m.dirLat())
		}
	case msg.KindGetM:
		switch l.state {
		case dirI:
			l.state = dirM
			l.owner = req.Node
			l.ownerSeq = seq
			l.sharers = 0
			m.send(m.newMessage(msg.Message{
				Kind: msg.KindData, Cat: msg.CatData,
				Src: m.port, Dst: req, Addr: mm.Addr,
				HasData: true, Data: l.data, Owner: true, Seq: seq,
			}), m.dataLat())
		case dirS:
			others := l.sharers &^ (1 << m.idx(req.Node))
			n := bits.OnesCount64(others)
			l.state = dirM
			l.owner = req.Node
			l.ownerSeq = seq
			l.sharers = 0
			m.send(m.newMessage(msg.Message{
				Kind: msg.KindData, Cat: msg.CatData,
				Src: m.port, Dst: req, Addr: mm.Addr,
				HasData: true, Data: l.data, Owner: true, Acks: n, Seq: seq,
			}), m.dataLat())
			m.sendInvals(others, mm.Addr, req, seq)
		case dirM, dirO:
			if l.owner == req.Node {
				// Upgrade by the current owner: dataless grant plus
				// invalidations; the directory moves to M immediately.
				others := l.sharers &^ (1 << m.idx(req.Node))
				n := bits.OnesCount64(others)
				l.state = dirM
				l.ownerSeq = seq
				l.sharers = 0
				m.send(m.newMessage(msg.Message{
					Kind: msg.KindAck, Cat: msg.CatControl,
					Src: m.port, Dst: req, Addr: mm.Addr, Acks: n, Seq: seq,
				}), m.dirLat())
				m.sendInvals(others, mm.Addr, req, seq)
				return
			}
			others := l.sharers &^ ((1 << m.idx(req.Node)) | (1 << m.idx(l.owner)))
			n := bits.OnesCount64(others)
			l.busy = true
			l.txnKind = msg.KindGetM
			l.txnReq = req
			l.txnSeq = seq
			m.send(m.newMessage(msg.Message{
				Kind: msg.KindFwdGetM, Cat: msg.CatRequest,
				Src: m.port, Dst: msg.Port{Node: l.owner, Unit: msg.UnitCache},
				Addr: mm.Addr, Requester: req, Acks: n, Seq: seq,
			}), m.dirLat())
			m.sendInvals(others, mm.Addr, req, seq)
		}
	case msg.KindPutM:
		if (l.state == dirM || l.state == dirO) && l.owner == mm.Src.Node && l.ownerSeq == mm.Seq {
			l.data = mm.Data
			if l.state == dirM {
				l.state = dirI
			} else {
				l.state = dirS
			}
			l.owner = 0
			m.send(m.newMessage(msg.Message{
				Kind: msg.KindWBAck, Cat: msg.CatControl,
				Src: m.port, Dst: mm.Src, Addr: mm.Addr,
			}), m.dirLat())
		} else {
			m.send(m.newMessage(msg.Message{
				Kind: msg.KindWBStale, Cat: msg.CatControl,
				Src: m.port, Dst: mm.Src, Addr: mm.Addr,
			}), m.dirLat())
		}
	}
}

func (m *homeCore) sendInvals(set uint64, addr msg.Addr, req msg.Port, seq uint64) {
	for set != 0 {
		i := bits.TrailingZeros64(set)
		set &^= 1 << uint(i)
		m.send(m.newMessage(msg.Message{
			Kind: msg.KindInv, Cat: msg.CatRequest,
			Src: m.port, Dst: msg.Port{Node: m.nodeAt(i), Unit: msg.UnitCache},
			Addr: addr, Requester: req, Seq: seq,
		}), m.dirLat())
	}
}

func (m *homeCore) unblock(l *dirLine, mm *msg.Message) {
	if !l.busy {
		panic("directory: unblock on idle line")
	}
	req := l.txnReq
	switch l.txnKind {
	case msg.KindGetS:
		if mm.Owner {
			// Migratory handover: the requester took exclusive ownership.
			l.state = dirM
			l.owner = req.Node
			l.ownerSeq = l.txnSeq
			l.sharers = 0
		} else {
			if l.state == dirM {
				l.sharers = 0
			}
			l.state = dirO
			l.sharers |= 1 << m.idx(req.Node)
			// owner unchanged
		}
	case msg.KindGetM:
		l.state = dirM
		l.owner = req.Node
		l.ownerSeq = l.txnSeq
		l.sharers = 0
	}
	l.busy = false
	if m.onIdle != nil && m.onIdle(l, msg.BlockOf(mm.Addr)) {
		return // queue ownership transferred to the wrapper
	}
	// Drain queued requests until one blocks again.
	for len(l.queue) > 0 && !l.busy {
		next := l.queue[0]
		l.queue = l.queue[1:]
		m.process(l, next)
		m.isle.Net.FreeMessage(next)
	}
}
