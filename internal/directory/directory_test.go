package directory

import (
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
)

func newDirSystem(t *testing.T, seed uint64, mutate func(*machine.Config)) (*machine.System, *System) {
	t.Helper()
	cfg := machine.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	sys := machine.NewSystem(cfg, topology.NewTorusFor(cfg.Procs), seed)
	return sys, Build(sys)
}

func access(sys *machine.System, c *Cache, addr msg.Addr, write bool) *bool {
	done := new(bool)
	c.Access(machine.Op{Addr: addr, Write: write}, func() { *done = true })
	return done
}

func finish(t *testing.T, sys *machine.System, done ...*bool) {
	t.Helper()
	sys.K.Run()
	for i, d := range done {
		if !*d {
			t.Fatalf("operation %d did not complete", i)
		}
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

func TestColdReadFromMemory(t *testing.T) {
	sys, s := newDirSystem(t, 1, nil)
	const addr = msg.Addr(0x100)
	b := msg.BlockOf(addr)
	r := access(sys, s.Caches[2], addr, false)
	finish(t, sys, r)
	l := s.Caches[2].L2.Lookup(b)
	if l == nil || l.State != stateS {
		t.Fatalf("reader line = %+v, want S", l)
	}
	state, _, sharers := s.Mems[msg.HomeOf(b, 16)].State(b)
	if dirState(state) != dirS || sharers != 1 {
		t.Errorf("dir = (%d, sharers=%d), want (dirS, 1)", state, sharers)
	}
}

func TestColdWriteGetsExclusive(t *testing.T) {
	sys, s := newDirSystem(t, 2, nil)
	const addr = msg.Addr(0x200)
	b := msg.BlockOf(addr)
	w := access(sys, s.Caches[0], addr, true)
	finish(t, sys, w)
	l := s.Caches[0].L2.Lookup(b)
	if l == nil || l.State != stateM {
		t.Fatalf("writer line = %+v, want M", l)
	}
	state, owner, _ := s.Mems[msg.HomeOf(b, 16)].State(b)
	if dirState(state) != dirM || owner != 0 {
		t.Errorf("dir = (%d, owner=%d), want (dirM, 0)", state, owner)
	}
}

func TestCacheToCacheForwarding(t *testing.T) {
	sys, s := newDirSystem(t, 3, nil)
	const addr = msg.Addr(0x300)
	b := msg.BlockOf(addr)
	w := access(sys, s.Caches[1], addr, true)
	finish(t, sys, w)
	// GetS forwarded to owner; migratory (written) -> exclusive handover.
	r := access(sys, s.Caches[4], addr, false)
	finish(t, sys, r)
	l := s.Caches[4].L2.Lookup(b)
	if l == nil || l.State != stateM {
		t.Fatalf("reader line = %+v, want M (migratory)", l)
	}
	state, owner, _ := s.Mems[msg.HomeOf(b, 16)].State(b)
	if dirState(state) != dirM || owner != 4 {
		t.Errorf("dir = (%d, owner=%d), want (dirM, 4)", state, owner)
	}
}

func TestNonMigratoryGetSCreatesOwnerAndSharer(t *testing.T) {
	sys, s := newDirSystem(t, 4, nil)
	const addr = msg.Addr(0x400)
	b := msg.BlockOf(addr)
	w := access(sys, s.Caches[1], addr, true)
	finish(t, sys, w)
	r1 := access(sys, s.Caches[2], addr, false) // migratory -> M at cache 2
	finish(t, sys, r1)
	r2 := access(sys, s.Caches[3], addr, false) // cache 2 has not written: -> O/S
	finish(t, sys, r2)
	l2 := s.Caches[2].L2.Lookup(b)
	l3 := s.Caches[3].L2.Lookup(b)
	if l2 == nil || l2.State != stateO {
		t.Fatalf("cache 2 line = %+v, want O", l2)
	}
	if l3 == nil || l3.State != stateS {
		t.Fatalf("cache 3 line = %+v, want S", l3)
	}
	state, owner, sharers := s.Mems[msg.HomeOf(b, 16)].State(b)
	if dirState(state) != dirO || owner != 2 || sharers != 1 {
		t.Errorf("dir = (%d, owner=%d, sharers=%d), want (dirO, 2, 1)", state, owner, sharers)
	}
}

func TestWriteInvalidatesSharersWithAcks(t *testing.T) {
	sys, s := newDirSystem(t, 5, nil)
	const addr = msg.Addr(0x500)
	b := msg.BlockOf(addr)
	var dones []*bool
	for i := 1; i < 6; i++ {
		dones = append(dones, access(sys, s.Caches[i], addr, false))
		finish(t, sys, dones...)
	}
	w := access(sys, s.Caches[0], addr, true)
	finish(t, sys, w)
	for i := 1; i < 6; i++ {
		if l := s.Caches[i].L2.Lookup(b); l != nil && l.State != stateI {
			t.Errorf("cache %d = %+v after invalidation", i, l)
		}
	}
	state, owner, _ := s.Mems[msg.HomeOf(b, 16)].State(b)
	if dirState(state) != dirM || owner != 0 {
		t.Errorf("dir = (%d, owner=%d), want (dirM, 0)", state, owner)
	}
}

func TestUpgradeFromOwnerUsesGrant(t *testing.T) {
	sys, s := newDirSystem(t, 6, nil)
	const addr = msg.Addr(0x600)
	b := msg.BlockOf(addr)
	w := access(sys, s.Caches[1], addr, true)
	finish(t, sys, w)
	r1 := access(sys, s.Caches[2], addr, false) // migratory -> M at 2
	finish(t, sys, r1)
	r2 := access(sys, s.Caches[3], addr, false) // 2 -> O, 3 -> S
	finish(t, sys, r2)
	// Cache 2 (owner, O) writes: dataless grant + invalidation of 3.
	w2 := access(sys, s.Caches[2], addr, true)
	finish(t, sys, w2)
	l := s.Caches[2].L2.Lookup(b)
	if l == nil || l.State != stateM {
		t.Fatalf("upgraded line = %+v, want M", l)
	}
	if l3 := s.Caches[3].L2.Lookup(b); l3 != nil && l3.State != stateI {
		t.Errorf("sharer not invalidated: %+v", l3)
	}
}

func TestWritebackToHome(t *testing.T) {
	sys, s := newDirSystem(t, 7, func(c *machine.Config) {
		c.L2Size = 2 * msg.BlockSize
		c.L2Assoc = 1
		c.L1Size = msg.BlockSize
		c.L1Assoc = 1
	})
	c := s.Caches[0]
	a := msg.Addr(0)
	conflict := msg.Addr(2 * msg.BlockSize)
	w1 := access(sys, c, a, true)
	finish(t, sys, w1)
	w2 := access(sys, c, conflict, true)
	finish(t, sys, w2)
	b := msg.BlockOf(a)
	state, _, _ := s.Mems[msg.HomeOf(b, 16)].State(b)
	if dirState(state) != dirI {
		t.Fatalf("dir state after writeback = %d, want dirI", state)
	}
	r := access(sys, s.Caches[9], a, false)
	finish(t, sys, r)
}

func TestRacingWrites(t *testing.T) {
	sys, s := newDirSystem(t, 8, nil)
	const addr = msg.Addr(0x800)
	var dones []*bool
	for i := 0; i < 10; i++ {
		dones = append(dones, access(sys, s.Caches[i], addr, true))
	}
	finish(t, sys, dones...)
	if got := sys.Oracle.Latest(msg.BlockOf(addr)); got != 10 {
		t.Errorf("final version = %d, want 10", got)
	}
}

func TestRacingReadersWithWriter(t *testing.T) {
	sys, s := newDirSystem(t, 9, nil)
	const addr = msg.Addr(0x900)
	var dones []*bool
	dones = append(dones, access(sys, s.Caches[0], addr, true))
	for i := 1; i < 10; i++ {
		dones = append(dones, access(sys, s.Caches[i], addr, false))
	}
	finish(t, sys, dones...)
}

func TestPerfectDirectoryCacheLatency(t *testing.T) {
	// With DirLatency=0 the forwarded path is faster; both must be correct.
	slow, sSlow := newDirSystem(t, 10, nil)
	fast, sFast := newDirSystem(t, 10, func(c *machine.Config) { c.DirLatency = 0 })
	gen := &uniformGen{blocks: 8, pWrite: 0.5, think: 4 * sim.Nanosecond}
	runSlow, err := slow.Execute(sSlow.Controllers(), gen, 200)
	if err != nil {
		t.Fatalf("slow: %v", err)
	}
	genF := &uniformGen{blocks: 8, pWrite: 0.5, think: 4 * sim.Nanosecond}
	runFast, err := fast.Execute(sFast.Controllers(), genF, 200)
	if err != nil {
		t.Fatalf("fast: %v", err)
	}
	if runFast.Elapsed >= runSlow.Elapsed {
		t.Errorf("perfect directory (%v) not faster than DRAM directory (%v)", runFast.Elapsed, runSlow.Elapsed)
	}
}

func TestStress(t *testing.T) {
	for _, seed := range []uint64{51, 52, 53} {
		seed := seed
		t.Run("", func(t *testing.T) {
			sys, s := newDirSystem(t, seed, nil)
			gen := &uniformGen{blocks: 24, pWrite: 0.4, think: 5 * sim.Nanosecond}
			run, err := sys.Execute(s.Controllers(), gen, 300)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			if run.Misses.Issued == 0 {
				t.Error("no misses in stress run")
			}
		})
	}
}

func TestStressHighContention(t *testing.T) {
	sys, s := newDirSystem(t, 60, nil)
	gen := &uniformGen{blocks: 2, pWrite: 0.6, think: 1 * sim.Nanosecond}
	if _, err := sys.Execute(s.Controllers(), gen, 150); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

func TestStressTinyCachesWritebackRaces(t *testing.T) {
	sys, s := newDirSystem(t, 61, func(c *machine.Config) {
		c.L2Size = 4 * msg.BlockSize
		c.L2Assoc = 1
		c.L1Size = msg.BlockSize
		c.L1Assoc = 1
	})
	gen := &uniformGen{blocks: 12, pWrite: 0.5, think: 2 * sim.Nanosecond}
	if _, err := sys.Execute(s.Controllers(), gen, 250); err != nil {
		t.Fatalf("execute: %v", err)
	}
}

type uniformGen struct {
	blocks int
	pWrite float64
	think  sim.Time
}

func (g *uniformGen) Next(proc int, rng *sim.Source) machine.Op {
	return machine.Op{
		Addr:  msg.Addr(rng.Intn(g.blocks)) * msg.BlockSize,
		Write: rng.Bool(g.pWrite),
		Think: g.think,
	}
}
