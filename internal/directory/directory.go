// Package directory implements the full-map MOSI directory baseline
// (paper §5.1), modelled on the SGI Origin 2000 and Alpha 21364: every
// request goes to the block's home node, whose directory orders requests
// per block, forwards them to the owner, issues invalidations, and
// queues (never nacks) requests that hit a busy block. The directory
// state lives in DRAM (Config.DirLatency = MemLatency) or in a perfect
// directory cache (DirLatency = 0).
//
// The price of the design is the paper's central observation: every
// cache-to-cache miss crosses the interconnect three times (requester ->
// home -> owner -> requester) and pays the directory lookup.
package directory

import (
	"fmt"
	"math/bits"

	"tokencoherence/internal/cache"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
)

// MOSI stable states in cache.Line.State.
const (
	stateI = iota
	stateS
	stateO
	stateM
)

// wbEntry holds an evicted owner line until the home acknowledges the
// writeback (WBAck) or declares it stale (WBStale). A block can have
// several pending entries when ownership is lost and re-acquired while
// writebacks are in flight; they resolve in FIFO order.
type wbEntry struct {
	data    uint64
	dirty   bool
	owner   bool
	written bool
	// epoch is the home transaction that made this node owner of the
	// evicted copy; the home accepts the writeback only if it matches.
	epoch uint64
}

// Cache is the directory protocol's cache controller.
type Cache struct {
	machine.CacheBase
	wb       map[msg.Block][]*wbEntry
	deferred map[msg.Block][]*msg.Message
	// invAfterFill records, per block being filled, the newest home
	// transaction number of an invalidation that overtook the fill; the
	// fill is consumed once and then invalidated if it is older.
	invAfterFill map[msg.Block]uint64
	// pendingAcks buffers invalidation acks that arrive before the data
	// response reveals the transaction they belong to.
	pendingAcks map[msg.Block][]uint64
}

// NewCache builds node id's directory cache controller.
func NewCache(sys *machine.System, id msg.NodeID) *Cache {
	c := &Cache{
		wb:           make(map[msg.Block][]*wbEntry),
		deferred:     make(map[msg.Block][]*msg.Message),
		invAfterFill: make(map[msg.Block]uint64),
		pendingAcks:  make(map[msg.Block][]uint64),
	}
	c.InitBase(sys, id, c)
	sys.Net.Register(c.CachePort(), c)
	return c
}

// HasPermission implements machine.CacheHooks.
func (c *Cache) HasPermission(l *cache.Line, write bool) bool {
	if write {
		return l.State == stateM && l.Valid
	}
	return l.State >= stateS && l.Valid
}

// StartMiss implements machine.CacheHooks: a unicast request to the
// block's home directory.
func (c *Cache) StartMiss(m *machine.MSHR) {
	c.sendRequest(m)
}

func (c *Cache) sendRequest(m *machine.MSHR) {
	kind := msg.KindGetS
	if m.Write {
		kind = msg.KindGetM
	}
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: kind, Cat: msg.CatRequest,
		Src: c.CachePort(), Dst: c.HomePort(m.Block),
		Addr: m.Block.Base(), Requester: c.CachePort(),
	}
	c.Net.Send(out)
}

// EvictL2 implements machine.CacheHooks.
func (c *Cache) EvictL2(v cache.Line) {
	if v.State != stateM && v.State != stateO {
		return // shared lines evict silently; the directory list stays a superset
	}
	for _, e := range c.wb[v.Block] {
		if e.owner {
			panic("directory: evicting while an older writeback still owns the block")
		}
	}
	c.wb[v.Block] = append(c.wb[v.Block], &wbEntry{
		data: v.Data, dirty: v.Dirty, owner: true, written: v.Written, epoch: v.Epoch,
	})
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindPutM, Cat: msg.CatData,
		Src: c.CachePort(), Dst: c.HomePort(v.Block),
		Addr: v.Block.Base(), HasData: true, Data: v.Data, Dirty: v.Dirty, Seq: v.Epoch,
	}
	c.Net.Send(out)
}

// Handle implements interconnect.Handler.
func (c *Cache) Handle(m *msg.Message) {
	switch m.Kind {
	case msg.KindData:
		c.onData(m)
	case msg.KindAck:
		if m.Src.Unit == msg.UnitMem {
			c.onGrant(m)
		} else {
			c.onInvAck(m)
		}
	case msg.KindInv:
		c.onInv(m)
	case msg.KindFwdGetS, msg.KindFwdGetM:
		c.onFwd(m)
	case msg.KindWBAck:
		c.onWBAck(m)
	case msg.KindWBStale:
		c.onWBStale(m)
	default:
		panic("directory: cache received unexpected " + m.Kind.String())
	}
}

func (c *Cache) onData(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	mshr := c.Outstanding[b]
	if mshr == nil {
		panic(fmt.Sprintf("directory: node %d data for block %d with no MSHR", c.ID, b))
	}
	mshr.GotData = true
	mshr.Fill = m
	mshr.AcksNeeded = m.Acks
	c.absorbPendingAcks(mshr)
	c.maybeComplete(mshr)
	if mshr.Fill == m {
		// Invalidation acks are still outstanding: keep the fill alive
		// past this handler call; CompleteMiss recycles it.
		m.Retain()
		mshr.FillKept = true
	}
}

// absorbPendingAcks counts buffered early acks that match the fill's
// transaction and discards the rest (aborted transactions).
func (c *Cache) absorbPendingAcks(mshr *machine.MSHR) {
	b := mshr.Block
	for _, seq := range c.pendingAcks[b] {
		if seq == mshr.Fill.Seq {
			mshr.AcksGot++
		}
	}
	delete(c.pendingAcks, b)
}

func (c *Cache) onInvAck(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	mshr := c.Outstanding[b]
	if mshr == nil {
		// An ack from an aborted (grant/writeback-race) transaction; the
		// retried request counted only acks matching its own fill.
		return
	}
	if !mshr.GotData {
		c.pendingAcks[b] = append(c.pendingAcks[b], m.Seq)
		return
	}
	if m.Seq == mshr.Fill.Seq {
		mshr.AcksGot++
		c.maybeComplete(mshr)
	}
}

// onGrant handles a dataless exclusivity grant: the directory saw this
// node as the block's owner, so only invalidation acks are needed.
func (c *Cache) onGrant(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	mshr := c.Outstanding[b]
	if mshr == nil {
		panic(fmt.Sprintf("directory: node %d stray grant for block %d", c.ID, b))
	}
	l := c.L2.Lookup(b)
	if l == nil || !l.Valid {
		// The grant raced with this node's own writeback: the line moved
		// to the writeback buffer, whose data is still the current copy
		// (the grant proves no other transaction intervened). Refill from
		// it; the in-flight PutM will be declared stale by its epoch.
		e := c.ownerWB(b)
		if e == nil {
			panic("directory: grant with neither line nor owned writeback")
		}
		l = c.EnsureL2(b)
		l.Valid = true
		l.Data = e.data
		l.Dirty = e.dirty
		l.Written = e.written
		l.State = stateO
		e.owner = false
	}
	mshr.GotData = true
	mshr.Grant = true
	mshr.Fill = m
	mshr.AcksNeeded = m.Acks
	c.absorbPendingAcks(mshr)
	c.maybeComplete(mshr)
	if mshr.Fill == m {
		m.Retain()
		mshr.FillKept = true
	}
}

// maybeComplete commits the transaction once data (or grant) and all
// invalidation acks have arrived.
func (c *Cache) maybeComplete(m *machine.MSHR) {
	if !m.GotData || m.AcksGot < m.AcksNeeded {
		return
	}
	b := m.Block
	var becameM bool
	var fromCache bool
	if m.Grant {
		l := c.L2.Lookup(b)
		if l == nil {
			panic("directory: granted line vanished")
		}
		l.State = stateM
		l.Epoch = m.Fill.Seq
		becameM = true
	} else {
		fill := m.Fill
		l := c.EnsureL2(b)
		l.Valid = true
		l.Data = fill.Data
		l.Dirty = fill.Dirty
		l.Epoch = fill.Seq
		if m.Write || fill.Owner {
			l.State = stateM
			becameM = true
		} else {
			l.State = stateS
		}
		fromCache = fill.Src.Unit == msg.UnitCache
	}
	c.CompleteMiss(m)
	// Drain requests the directory forwarded to us while we were filling.
	defs := c.deferred[b]
	delete(c.deferred, b)
	for _, d := range defs {
		c.serveFwd(d, b)
		c.Net.FreeMessage(d)
	}
	// An invalidation from a home transaction newer than this fill
	// overtook the data; the fill satisfied the waiting accesses once
	// and dies here.
	if invSeq, pending := c.invAfterFill[b]; pending {
		delete(c.invAfterFill, b)
		if l := c.L2.Lookup(b); l != nil && invSeq > l.Epoch {
			c.dropLine(b)
		}
	}
	// Forward-served transactions unblock the home (it is busy waiting).
	if fromCache {
		out := c.Net.NewMessage()
		*out = msg.Message{
			Kind: msg.KindUnblock, Cat: msg.CatControl,
			Src: c.CachePort(), Dst: c.HomePort(b), Addr: b.Base(),
			Owner: becameM,
		}
		c.Net.Send(out)
	}
}

func (c *Cache) onInv(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	if l := c.L2.Lookup(b); l != nil {
		// Drop the copy only if the invalidation comes from a home
		// transaction newer than the fill that produced this line; a
		// stale invalidation (reordered behind a later fill) is ignored.
		if m.Seq > l.Epoch {
			c.dropLine(b)
		}
	} else if _, outstanding := c.Outstanding[b]; outstanding {
		// Fill in flight: remember the invalidation; the fill may satisfy
		// the waiting accesses once if it is newer, then die.
		if m.Seq > c.invAfterFill[b] {
			c.invAfterFill[b] = m.Seq
		}
	}
	// Always acknowledge, directly to the requesting writer, echoing the
	// home transaction number so the writer can match acks to its fill.
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindAck, Cat: msg.CatControl,
		Src: c.CachePort(), Dst: m.Requester, Addr: m.Addr, Seq: m.Seq,
	}
	c.Net.SendAfter(out, c.Cfg.L2Latency)
}

func (c *Cache) onFwd(m *msg.Message) {
	b := msg.BlockOf(m.Addr)
	// A writeback buffer entry answers first: its data is authoritative
	// and deferring here would deadlock the home behind our queued PutM.
	if c.ownerWB(b) != nil {
		c.serveFwd(m, b)
		return
	}
	if mshr, outstanding := c.Outstanding[b]; outstanding {
		if mshr.GotData {
			if m.Seq > mshr.Fill.Seq {
				// Our own transaction is ordered before this forward at
				// the home; we are the owner-to-be, so serve it after
				// completion (ownership chaining).
				c.deferred[b] = append(c.deferred[b], m.Retain())
				return
			}
			c.serveFwd(m, b)
			return
		}
		if l := c.L2.Lookup(b); l != nil && l.State >= stateO && l.Valid {
			// The forward's transaction is ordered before our queued
			// upgrade; answer from the stable owner line (deferring would
			// deadlock behind our own queued GetM).
			c.serveFwd(m, b)
			return
		}
		// Our fill is still in flight; chain the forward to completion.
		c.deferred[b] = append(c.deferred[b], m.Retain())
		return
	}
	c.serveFwd(m, b)
}

// ownerWB returns the writeback entry that still owns b, if any (at
// most one entry can be the owner, and it is always the newest).
func (c *Cache) ownerWB(b msg.Block) *wbEntry {
	entries := c.wb[b]
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].owner {
			return entries[i]
		}
	}
	return nil
}

// serveFwd answers a forwarded request from stable state or the
// writeback buffer.
func (c *Cache) serveFwd(m *msg.Message, b msg.Block) {
	if e := c.ownerWB(b); e != nil {
		switch m.Kind {
		case msg.KindFwdGetS:
			c.respondData(m.Requester, b, e.data, false, false, 0, m.Seq)
		case msg.KindFwdGetM:
			c.respondData(m.Requester, b, e.data, true, e.dirty, m.Acks, m.Seq)
			e.owner = false
		}
		return
	}
	l := c.L2.Lookup(b)
	if l == nil || l.State < stateO {
		panic(fmt.Sprintf("directory: node %d forwarded %v for block %d but is not owner", c.ID, m.Kind, b))
	}
	switch m.Kind {
	case msg.KindFwdGetS:
		if c.Cfg.Migratory && l.State == stateM && l.Written {
			// Migratory-sharing optimization: exclusive handover.
			c.respondData(m.Requester, b, l.Data, true, l.Dirty, 0, m.Seq)
			c.dropLine(b)
			return
		}
		c.respondData(m.Requester, b, l.Data, false, false, 0, m.Seq)
		l.State = stateO
	case msg.KindFwdGetM:
		c.respondData(m.Requester, b, l.Data, true, l.Dirty, m.Acks, m.Seq)
		c.dropLine(b)
	}
}

func (c *Cache) respondData(to msg.Port, b msg.Block, data uint64, grantOwner, dirty bool, acks int, seq uint64) {
	out := c.Net.NewMessage()
	*out = msg.Message{
		Kind: msg.KindData, Cat: msg.CatData,
		Src: c.CachePort(), Dst: to, Addr: b.Base(),
		HasData: true, Data: data, Owner: grantOwner, Dirty: dirty, Acks: acks, Seq: seq,
	}
	c.Net.SendAfter(out, c.Cfg.L2Latency)
}

func (c *Cache) onWBAck(m *msg.Message) { c.popWB(msg.BlockOf(m.Addr)) }

func (c *Cache) onWBStale(m *msg.Message) { c.popWB(msg.BlockOf(m.Addr)) }

// popWB retires the oldest pending writeback (acks arrive in PutM order).
func (c *Cache) popWB(b msg.Block) {
	entries := c.wb[b]
	if len(entries) == 0 {
		panic("directory: writeback ack with no pending writeback")
	}
	if len(entries) == 1 {
		delete(c.wb, b)
	} else {
		c.wb[b] = entries[1:]
	}
}

func (c *Cache) dropLine(b msg.Block) {
	c.L2.Remove(b)
	c.DropL1(b)
}

// Memory is the flat home directory controller for one node's slice of
// the machine-wide address space: the homeCore state machine (see
// home.go) over the root coherence realm, with the historical identity
// sharer-bitset layout.
type Memory struct {
	homeCore
	id msg.NodeID
}

// NewMemory builds and registers node id's directory controller.
func NewMemory(sys *machine.System, id msg.NodeID) *Memory {
	m := &Memory{
		homeCore: newHomeCore(sys, msg.Port{Node: id, Unit: msg.UnitMem}, nil),
		id:       id,
	}
	sys.Net.Register(m.Port(), m)
	return m
}

// Port returns the directory controller's network port.
func (m *Memory) Port() msg.Port { return m.port }

// State reports the directory state for tests.
func (m *Memory) State(b msg.Block) (state uint8, owner msg.NodeID, sharers int) {
	l := m.line(b)
	return uint8(l.state), l.owner, bits.OnesCount64(l.sharers)
}

// Handle implements interconnect.Handler.
func (m *Memory) Handle(mm *msg.Message) {
	b := msg.BlockOf(mm.Addr)
	l := m.line(b)
	switch mm.Kind {
	case msg.KindGetS, msg.KindGetM, msg.KindPutM:
		if l.busy {
			l.queue = append(l.queue, mm.Retain())
			return
		}
		m.process(l, mm)
	case msg.KindUnblock:
		m.unblock(l, mm)
	default:
		panic("directory: home received unexpected " + mm.Kind.String())
	}
}

// System bundles the directory machine's components.
type System struct {
	Caches []*Cache
	Mems   []*Memory
}

// Build constructs the directory protocol on sys (any topology).
func Build(sys *machine.System) *System {
	s := &System{}
	for i := 0; i < sys.Cfg.Procs; i++ {
		s.Caches = append(s.Caches, NewCache(sys, msg.NodeID(i)))
		s.Mems = append(s.Mems, NewMemory(sys, msg.NodeID(i)))
	}
	return s
}

// Controllers adapts the caches for machine.System.Execute.
func (s *System) Controllers() []machine.Controller {
	out := make([]machine.Controller, len(s.Caches))
	for i, c := range s.Caches {
		out[i] = c
	}
	return out
}
