package trace

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// DefaultRecorderSize is the flight recorder ring capacity when the
// configuration leaves it zero: large enough to hold the full causal
// neighborhood of a failure (a 256-proc broadcast and its responses fit
// several times over), small enough that the always-armed recorder costs
// ~20 kB per system.
const DefaultRecorderSize = 512

// DefaultStarvationDeadline is the per-transaction latency at which the
// recorder trips when the configuration leaves the deadline zero. Token
// Coherence bounds every miss by the persistent-request mechanism, so in
// a healthy run even the most contended miss resolves in microseconds;
// 50 simulated milliseconds is three-plus orders of magnitude past any
// latency the Table 1 machine produces and only a starved or livelocked
// transaction can reach it.
const DefaultStarvationDeadline = 50 * sim.Millisecond

// RecorderConfig parameterizes NewFlightRecorder. The zero value is a
// usable default (512-record ring, 50 ms starvation deadline, dumps to
// stderr, protocol events only).
type RecorderConfig struct {
	// Size is the ring capacity in records (0 = DefaultRecorderSize).
	Size int
	// Deadline trips a dump when a completed transaction's latency
	// reaches it (0 = DefaultStarvationDeadline, negative = no deadline).
	Deadline sim.Time
	// Out receives dumps (nil = os.Stderr). Each dump is one Write call,
	// so a shared Out needs only per-Write serialization (NewSyncWriter).
	Out io.Writer
	// Label identifies the run in dump headers, e.g. the sweep point.
	Label string
	// Hops also records per-link NetworkHop events. Off by default: hops
	// outnumber protocol events ~100:1 and would evict the transaction
	// history a dump exists to show.
	Hops bool
	// MaxDumps bounds how many times the recorder dumps (0 = 1). One
	// failing run then produces one dump, not one per starved miss.
	MaxDumps int
	// Now supplies event timestamps (normally the kernel's clock); with
	// nil Now records carry time zero.
	Now func() sim.Time
}

// FlightRecorder keeps the last Size protocol events in a fixed ring so
// that when a run fails — safety-oracle violation, deadlock, starvation
// deadline — the events leading up to the failure can be dumped without
// having traced the run from the start. It is cheap enough to arm
// always: recording is two field copies into a preallocated ring record,
// with zero steady-state allocations (verified by an AllocsPerRun gate),
// and events nobody recorded stay on the observer's single-nil-check
// fast path.
//
// A FlightRecorder belongs to one System and, like the rest of a
// system's single-threaded simulation, is not safe for concurrent use.
// The nil *FlightRecorder is valid and inert.
type FlightRecorder struct {
	ring     []Record
	total    uint64
	deadline sim.Time
	out      io.Writer
	label    string
	hops     bool
	dumps    int
	now      func() sim.Time
}

// NewFlightRecorder builds a recorder; see RecorderConfig for defaults.
func NewFlightRecorder(cfg RecorderConfig) *FlightRecorder {
	size := cfg.Size
	if size == 0 {
		size = DefaultRecorderSize
	}
	if size < 0 {
		panic("trace: negative recorder size (disable by not constructing one)")
	}
	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = DefaultStarvationDeadline
	}
	if deadline < 0 {
		deadline = 0 // no deadline
	}
	dumps := cfg.MaxDumps
	if dumps == 0 {
		dumps = 1
	}
	return &FlightRecorder{
		ring:     make([]Record, size),
		deadline: deadline,
		out:      cfg.Out,
		label:    cfg.Label,
		hops:     cfg.Hops,
		dumps:    dumps,
		now:      cfg.Now,
	}
}

// SetLabel sets the identity printed in dump headers. The engine labels
// each point's recorder with the point's protocol/topology/workload/seed
// once the system is assembled.
func (r *FlightRecorder) SetLabel(label string) {
	if r != nil {
		r.label = label
	}
}

// Observer returns the recorder's event subscription for System.Observe.
func (r *FlightRecorder) Observer() *stats.Observer {
	if r == nil {
		return nil
	}
	o := &stats.Observer{
		MissIssued:            r.missIssued,
		MissCompleted:         r.missCompleted,
		Reissued:              r.reissued,
		PersistentActivated:   r.persistentActivated,
		PersistentDeactivated: r.persistentDeactivated,
		TokensTransferred:     r.tokensTransferred,
		MeasurementStarted:    r.measurementStarted,
	}
	if r.hops {
		o.NetworkHop = r.networkHop
	}
	return o
}

// push claims the next ring slot, evicting the oldest record on wrap.
func (r *FlightRecorder) push() *Record {
	rec := &r.ring[r.total%uint64(len(r.ring))]
	r.total++
	return rec
}

// clock reads the wired clock, for the one hook (MissCompleted) that
// does not carry its own timestamp.
func (r *FlightRecorder) clock() sim.Time {
	if r.now != nil {
		return r.now()
	}
	return 0
}

func (r *FlightRecorder) missIssued(proc int, block msg.Block, write bool, at sim.Time) {
	rec := r.push()
	rec.Aux, rec.Block, rec.Node, rec.N = 0, block, int32(proc), 0
	rec.Kind, rec.Cat, rec.Flag = KindMissIssued, 0, write
	rec.At = at
}

func (r *FlightRecorder) missCompleted(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time) {
	rec := r.push()
	rec.Aux, rec.Block, rec.Node, rec.N = latency, block, int32(proc), int32(reissues)
	rec.Kind, rec.Cat, rec.Flag = KindMissCompleted, 0, persistent
	rec.At = r.clock()
	if r.deadline > 0 && latency >= r.deadline {
		r.Trip(fmt.Sprintf("transaction exceeded starvation deadline: proc %d block %#x took %s (deadline %s, reissues %d, persistent %t)",
			proc, uint64(block), usString(latency), usString(r.deadline), reissues, persistent))
	}
}

func (r *FlightRecorder) reissued(proc int, block msg.Block, attempt int, at sim.Time) {
	rec := r.push()
	rec.Aux, rec.Block, rec.Node, rec.N = 0, block, int32(proc), int32(attempt)
	rec.Kind, rec.Cat, rec.Flag = KindReissued, 0, false
	rec.At = at
}

func (r *FlightRecorder) persistentActivated(home int, block msg.Block, at sim.Time) {
	rec := r.push()
	rec.Aux, rec.Block, rec.Node, rec.N = 0, block, int32(home), 0
	rec.Kind, rec.Cat, rec.Flag = KindPersistentActivated, 0, false
	rec.At = at
}

func (r *FlightRecorder) persistentDeactivated(home int, block msg.Block, at sim.Time) {
	rec := r.push()
	rec.Aux, rec.Block, rec.Node, rec.N = 0, block, int32(home), 0
	rec.Kind, rec.Cat, rec.Flag = KindPersistentDeactivated, 0, false
	rec.At = at
}

func (r *FlightRecorder) tokensTransferred(proc int, block msg.Block, tokens int, at sim.Time) {
	rec := r.push()
	rec.Aux, rec.Block, rec.Node, rec.N = 0, block, int32(proc), int32(tokens)
	rec.Kind, rec.Cat, rec.Flag = KindTokensTransferred, 0, false
	rec.At = at
}

func (r *FlightRecorder) networkHop(link int, cat msg.Category, bytes int, at sim.Time) {
	rec := r.push()
	rec.Aux, rec.Block, rec.Node, rec.N = 0, 0, int32(link), int32(bytes)
	rec.Kind, rec.Cat, rec.Flag = KindNetworkHop, cat, false
	rec.At = at
}

func (r *FlightRecorder) measurementStarted(at sim.Time) {
	rec := r.push()
	rec.Aux, rec.Block, rec.Node, rec.N = 0, 0, 0, 0
	rec.Kind, rec.Cat, rec.Flag = KindMeasurementStarted, 0, false
	rec.At = at
}

// Len reports how many records the ring currently holds.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	if r.total < uint64(len(r.ring)) {
		return int(r.total)
	}
	return len(r.ring)
}

// Total reports how many events were recorded over the recorder's life,
// including those the ring has since evicted.
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Records returns a copy of the retained records, oldest first.
func (r *FlightRecorder) Records() []Record {
	n := r.Len()
	out := make([]Record, n)
	for i := 0; i < n; i++ {
		out[i] = *r.at(i)
	}
	return out
}

// at returns the i-th retained record, oldest first.
func (r *FlightRecorder) at(i int) *Record {
	start := uint64(0)
	if r.total > uint64(len(r.ring)) {
		start = r.total % uint64(len(r.ring))
	}
	return &r.ring[(start+uint64(i))%uint64(len(r.ring))]
}

// Trip dumps the ring to the configured output if the recorder still has
// dump budget. The machine trips it on deadlock and on safety-oracle
// failure; the recorder trips itself on a starvation-deadline overrun.
// The whole dump is issued as one Write so concurrent runs sharing an
// output (through NewSyncWriter) interleave dumps, never lines. Safe on
// a nil receiver.
func (r *FlightRecorder) Trip(reason string) {
	if r == nil || r.dumps <= 0 {
		return
	}
	r.dumps--
	var buf bytes.Buffer
	r.WriteTo(&buf, reason)
	out := r.out
	if out == nil {
		out = os.Stderr
	}
	out.Write(buf.Bytes()) //nolint:errcheck // best-effort failure diagnostics
}

// WriteTo renders the dump: a header with the reason and run label, then
// the retained records oldest first. Output is deterministic for a
// deterministic event history.
func (r *FlightRecorder) WriteTo(w io.Writer, reason string) {
	if r == nil {
		return
	}
	b := make([]byte, 0, 64*(r.Len()+3))
	b = append(b, "flight recorder: "...)
	b = append(b, reason...)
	b = append(b, '\n')
	if r.label != "" {
		b = fmt.Appendf(b, "  point: %s\n", r.label)
	}
	b = fmt.Appendf(b, "  last %d of %d protocol events, oldest first:\n", r.Len(), r.total)
	for i := 0; i < r.Len(); i++ {
		b = r.at(i).appendTo(b)
	}
	w.Write(b) //nolint:errcheck // best-effort failure diagnostics
}
