package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// TracerConfig parameterizes NewTracer. The zero value traces protocol
// events only.
type TracerConfig struct {
	// Hops also emits an instant event per interconnect link traversal.
	// Off by default: a traced point's hop events outnumber its protocol
	// events ~100:1 and inflate the JSON accordingly.
	Hops bool
}

// Tracer stitches a system's observer event stream into per-transaction
// spans and exports them as Chrome trace-event JSON (the format
// chrome://tracing and Perfetto load). Each coherence miss becomes one
// complete ("X") span on the issuing processor's row, opened by
// MissIssued and closed by MissCompleted, keyed by (proc, block) — a
// processor's MSHRs never hold two misses for one block, so the key is
// unique among open transactions. Reissues and token arrivals for an
// open transaction, persistent (de)activations at the arbiters, and
// (optionally) link hops appear as instant events alongside.
//
// A tracer buffers events in memory and honors the warmup boundary: when
// MeasurementStarted fires it discards everything buffered, so the
// exported spans are exactly the measured interval's misses and
// Spans() equals the run's misses metric. Attach before Execute via
// System.Observe. Like the system it observes, a Tracer is
// single-threaded; under the parallel engine each point gets its own.
type Tracer struct {
	hops   bool
	events []tEvent
	// open maps an in-flight transaction to its span's index in events;
	// openPreReset marks transactions issued before the warmup boundary,
	// whose spans were discarded and whose completion must not count.
	open  map[spanKey]int
	spans int
}

const openPreReset = -1

type spanKey struct {
	proc  int32
	block msg.Block
}

// tEvent is one buffered trace event; dur < 0 marks a span still open.
type tEvent struct {
	at    sim.Time
	dur   sim.Time
	block msg.Block
	node  int32
	n     int32
	kind  Kind
	cat   msg.Category
	write bool
	pers  bool
}

// NewTracer builds an empty tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	return &Tracer{hops: cfg.Hops, open: make(map[spanKey]int)}
}

// Observer returns the tracer's event subscription for System.Observe.
func (t *Tracer) Observer() *stats.Observer {
	if t == nil {
		return nil
	}
	o := &stats.Observer{
		MissIssued:            t.missIssued,
		MissCompleted:         t.missCompleted,
		Reissued:              t.reissued,
		PersistentActivated:   t.persistentActivated,
		PersistentDeactivated: t.persistentDeactivated,
		TokensTransferred:     t.tokensTransferred,
		MeasurementStarted:    t.measurementStarted,
	}
	if t.hops {
		o.NetworkHop = t.networkHop
	}
	return o
}

func (t *Tracer) missIssued(proc int, block msg.Block, write bool, at sim.Time) {
	t.open[spanKey{int32(proc), block}] = len(t.events)
	t.events = append(t.events, tEvent{
		at: at, dur: -1, block: block, node: int32(proc),
		kind: KindMissIssued, write: write,
	})
}

func (t *Tracer) missCompleted(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time) {
	key := spanKey{int32(proc), block}
	idx, ok := t.open[key]
	if !ok {
		return // issued before the tracer attached
	}
	delete(t.open, key)
	if idx == openPreReset {
		return // issued before the warmup boundary: not a measured miss
	}
	ev := &t.events[idx]
	ev.dur = latency
	ev.n = int32(reissues)
	ev.pers = persistent
	t.spans++
}

func (t *Tracer) reissued(proc int, block msg.Block, attempt int, at sim.Time) {
	if idx, ok := t.open[spanKey{int32(proc), block}]; ok && idx == openPreReset {
		return
	}
	t.events = append(t.events, tEvent{
		at: at, block: block, node: int32(proc), n: int32(attempt),
		kind: KindReissued,
	})
}

func (t *Tracer) persistentActivated(home int, block msg.Block, at sim.Time) {
	t.events = append(t.events, tEvent{
		at: at, block: block, node: int32(home), kind: KindPersistentActivated,
	})
}

func (t *Tracer) persistentDeactivated(home int, block msg.Block, at sim.Time) {
	t.events = append(t.events, tEvent{
		at: at, block: block, node: int32(home), kind: KindPersistentDeactivated,
	})
}

func (t *Tracer) tokensTransferred(proc int, block msg.Block, tokens int, at sim.Time) {
	// Token arrivals matter on a timeline as the resolution of an open
	// transaction; arrivals outside any transaction (writeback acks,
	// background token shuffling) would only add noise.
	if idx, ok := t.open[spanKey{int32(proc), block}]; !ok || idx == openPreReset {
		return
	}
	t.events = append(t.events, tEvent{
		at: at, block: block, node: int32(proc), n: int32(tokens),
		kind: KindTokensTransferred,
	})
}

func (t *Tracer) networkHop(link int, cat msg.Category, bytes int, at sim.Time) {
	t.events = append(t.events, tEvent{
		at: at, node: int32(link), n: int32(bytes), kind: KindNetworkHop, cat: cat,
	})
}

func (t *Tracer) measurementStarted(at sim.Time) {
	// Warmup traffic is methodology, not measurement: discard it and
	// remember which transactions straddle the boundary so their
	// completions do not count as measured spans.
	t.events = t.events[:0]
	t.spans = 0
	for key := range t.open {
		t.open[key] = openPreReset
	}
	t.events = append(t.events, tEvent{at: at, kind: KindMeasurementStarted})
}

// Spans reports the number of completed transaction spans buffered, i.e.
// the misses completed since the warmup boundary. It equals the misses
// metric once the run finishes (every measured miss completes — the run
// would otherwise have deadlocked).
func (t *Tracer) Spans() int { return t.spans }

// Events reports the total number of buffered trace events.
func (t *Tracer) Events() int { return len(t.events) }

// Process/thread IDs structuring the exported trace: processors (one
// thread per proc), arbiters (one thread per home), and — with Hops —
// the interconnect (one thread per link).
const (
	pidProcs = 0
	pidArbs  = 1
	pidNet   = 2
)

// chromeEvent is one trace-event object in Chrome's JSON format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   json.Number    `json:"ts"`
	Dur  json.Number    `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// tsNumber renders a picosecond time as the trace format's microsecond
// timestamp, exactly (decimal string, never floating point), so emitted
// traces are byte-deterministic.
func tsNumber(t sim.Time) json.Number {
	return json.Number(fmt.Sprintf("%d.%06d", int64(t)/1_000_000, int64(t)%1_000_000))
}

// Export serializes the buffered events as a Chrome trace-event JSON
// object. Events appear in buffer order (simulation order), timestamps
// are exact decimal microseconds, and JSON object keys are emitted in a
// fixed order, so for a fixed (point, seed) the bytes are identical at
// any engine parallelism. Spans still open at serialization time — only
// possible in a failed run — are emitted as unclosed "B" events, which
// Perfetto renders as unfinished slices.
func (t *Tracer) Export(w io.Writer) error {
	out := chromeTrace{
		DisplayTimeUnit: "ns",
		TraceEvents:     make([]chromeEvent, 0, len(t.events)+3),
	}
	meta := func(pid int, name string) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Ts: "0", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(pidProcs, "processors")
	meta(pidArbs, "arbiters")
	if t.hops {
		meta(pidNet, "network")
	}
	for i := range t.events {
		ev := &t.events[i]
		var ce chromeEvent
		switch ev.kind {
		case KindMissIssued:
			name := "GetS"
			if ev.write {
				name = "GetM"
			}
			ce = chromeEvent{
				Name: fmt.Sprintf("%s %#x", name, uint64(ev.block)),
				Cat:  "miss", Ts: tsNumber(ev.at), Pid: pidProcs, Tid: int(ev.node),
				Args: map[string]any{"block": uint64(ev.block), "write": ev.write},
			}
			if ev.dur >= 0 {
				ce.Ph = "X"
				ce.Dur = tsNumber(ev.dur)
				ce.Args["reissues"] = ev.n
				ce.Args["persistent"] = ev.pers
			} else {
				ce.Ph = "B" // still open: unfinished slice
			}
		case KindReissued:
			ce = chromeEvent{
				Name: fmt.Sprintf("reissue #%d", ev.n),
				Cat:  "reissue", Ph: "i", S: "t",
				Ts: tsNumber(ev.at), Pid: pidProcs, Tid: int(ev.node),
				Args: map[string]any{"block": uint64(ev.block)},
			}
		case KindPersistentActivated, KindPersistentDeactivated:
			verb := "activate"
			if ev.kind == KindPersistentDeactivated {
				verb = "deactivate"
			}
			ce = chromeEvent{
				Name: fmt.Sprintf("persistent %s %#x", verb, uint64(ev.block)),
				Cat:  "persistent", Ph: "i", S: "t",
				Ts: tsNumber(ev.at), Pid: pidArbs, Tid: int(ev.node),
				Args: map[string]any{"block": uint64(ev.block)},
			}
		case KindTokensTransferred:
			ce = chromeEvent{
				Name: fmt.Sprintf("tokens +%d", ev.n),
				Cat:  "tokens", Ph: "i", S: "t",
				Ts: tsNumber(ev.at), Pid: pidProcs, Tid: int(ev.node),
				Args: map[string]any{"block": uint64(ev.block), "tokens": ev.n},
			}
		case KindNetworkHop:
			ce = chromeEvent{
				Name: ev.cat.Slug(),
				Cat:  "hop", Ph: "i", S: "t",
				Ts: tsNumber(ev.at), Pid: pidNet, Tid: int(ev.node),
				Args: map[string]any{"bytes": ev.n},
			}
		case KindMeasurementStarted:
			ce = chromeEvent{
				Name: "measurement start", Cat: "machine", Ph: "i", S: "g",
				Ts: tsNumber(ev.at), Pid: pidProcs, Tid: 0,
			}
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc, err := json.Marshal(out)
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}
