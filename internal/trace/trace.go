// Package trace is the simulator's transaction-level observability
// layer, built entirely on the stats.Observer hooks:
//
//   - Tracer stitches the per-miss event stream (MissIssued → Reissued*
//     → TokensTransferred → MissCompleted, with persistent-request
//     activity and optional per-link hops alongside) into spans keyed by
//     (proc, block) and exports Chrome/Perfetto trace-event JSON, so a
//     single transaction's causal life is visible on a timeline.
//   - FlightRecorder is an always-armed, fixed-size ring buffer of the
//     most recent protocol events. Recording is allocation-free after
//     construction; the ring is dumped — once, human-readably, in a
//     single Write — when a run fails its safety checks or a
//     transaction exceeds a starvation deadline.
//
// Both attach through System.Observe and therefore compose with metric
// probes and with each other; neither perturbs simulated time, so traced
// runs remain byte-identical to untraced ones.
package trace

import (
	"fmt"
	"io"
	"sync"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// Kind identifies which observer event a Record captured.
type Kind uint8

// Record kinds, one per stats.Observer hook.
const (
	KindMissIssued Kind = iota
	KindMissCompleted
	KindReissued
	KindPersistentActivated
	KindPersistentDeactivated
	KindTokensTransferred
	KindNetworkHop
	KindMeasurementStarted
)

func (k Kind) String() string {
	switch k {
	case KindMissIssued:
		return "MissIssued"
	case KindMissCompleted:
		return "MissCompleted"
	case KindReissued:
		return "Reissued"
	case KindPersistentActivated:
		return "PersistentActivated"
	case KindPersistentDeactivated:
		return "PersistentDeactivated"
	case KindTokensTransferred:
		return "TokensTransferred"
	case KindNetworkHop:
		return "NetworkHop"
	case KindMeasurementStarted:
		return "MeasurementStarted"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one protocol event in the flight recorder's ring: a fixed-
// size struct so the ring is a single allocation and recording is a
// field copy. Field meaning varies by Kind (see appendTo).
type Record struct {
	// At is the simulation time the event fired (0 when the recorder has
	// no clock wired).
	At sim.Time
	// Aux is the MissCompleted latency or the NetworkHop queueing start.
	Aux   sim.Time
	Block msg.Block
	// Node is the proc (miss/token events), home (persistent events), or
	// link (hop events) the event concerns.
	Node int32
	// N is the reissue attempt, tokens moved, total reissues, or payload
	// bytes, by Kind.
	N    int32
	Kind Kind
	Cat  msg.Category
	// Flag is MissIssued's write bit or MissCompleted's persistent bit.
	Flag bool
}

// appendTo renders the record as one human-readable dump line.
func (r *Record) appendTo(b []byte) []byte {
	b = append(b, "    t="...)
	b = append(b, usString(r.At)...)
	b = append(b, ' ')
	b = append(b, r.Kind.String()...)
	switch r.Kind {
	case KindMissIssued:
		op := "read"
		if r.Flag {
			op = "write"
		}
		b = fmt.Appendf(b, " proc=%d block=%#x %s", r.Node, uint64(r.Block), op)
	case KindMissCompleted:
		b = fmt.Appendf(b, " proc=%d block=%#x reissues=%d persistent=%t latency=%s",
			r.Node, uint64(r.Block), r.N, r.Flag, usString(r.Aux))
	case KindReissued:
		b = fmt.Appendf(b, " proc=%d block=%#x attempt=%d", r.Node, uint64(r.Block), r.N)
	case KindPersistentActivated, KindPersistentDeactivated:
		b = fmt.Appendf(b, " home=%d block=%#x", r.Node, uint64(r.Block))
	case KindTokensTransferred:
		b = fmt.Appendf(b, " proc=%d block=%#x tokens=%d", r.Node, uint64(r.Block), r.N)
	case KindNetworkHop:
		b = fmt.Appendf(b, " link=%d cat=%s bytes=%d", r.Node, r.Cat.Slug(), r.N)
	}
	return append(b, '\n')
}

// usString formats a picosecond time as decimal microseconds with fixed
// six-digit precision. Unlike floating-point formatting it is exact, so
// trace output derived from it is byte-deterministic.
func usString(t sim.Time) string {
	return fmt.Sprintf("%d.%06dus", int64(t)/1_000_000, int64(t)%1_000_000)
}

// syncWriter serializes whole-buffer writes from concurrent goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// NewSyncWriter wraps w so that each Write call runs under a mutex.
// Writers that emit whole lines (or whole dumps) in a single Write can
// then share it across goroutines without tearing each other's output:
// the sweep command hands one to the engine's progress printer and to
// every point's flight recorder, which otherwise race from the collector
// and worker goroutines respectively. Wrapping an already-wrapped writer
// returns it unchanged.
func NewSyncWriter(w io.Writer) io.Writer {
	if sw, ok := w.(*syncWriter); ok {
		return sw
	}
	return &syncWriter{w: w}
}
