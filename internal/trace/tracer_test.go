package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// decodeTrace parses an exported trace back into its top-level shape.
func decodeTrace(t *testing.T, b []byte) struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   json.Number    `json:"ts"`
		Dur  json.Number    `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
} {
	t.Helper()
	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   json.Number    `json:"ts"`
			Dur  json.Number    `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, b)
	}
	return out
}

// TestTracerSpanStitching checks one miss's event sequence becomes one
// complete span with its reissues and token arrivals as instants.
func TestTracerSpanStitching(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	o := tr.Observer()
	o.OnMissIssued(3, 42, true, 1_234_567*sim.Picosecond)
	o.OnReissued(3, 42, 1, 2*sim.Microsecond)
	o.OnTokensTransferred(3, 42, 5, 3*sim.Microsecond)
	o.OnTokensTransferred(9, 42, 1, 3*sim.Microsecond) // no open miss: dropped
	o.OnMissCompleted(3, 42, 1, false, 2*sim.Microsecond)
	if tr.Spans() != 1 {
		t.Fatalf("Spans = %d, want 1", tr.Spans())
	}

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, buf.Bytes())
	if out.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	var spans, instants int
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			spans++
			if ev.Name != "GetM 0x2a" || ev.Cat != "miss" || ev.Pid != pidProcs || ev.Tid != 3 {
				t.Errorf("span event = %+v", ev)
			}
			if string(ev.Ts) != "1.234567" {
				t.Errorf("ts = %s, want exact microseconds 1.234567", ev.Ts)
			}
			if string(ev.Dur) != "2.000000" {
				t.Errorf("dur = %s, want 2.000000", ev.Dur)
			}
			if ev.Args["reissues"] != float64(1) || ev.Args["persistent"] != false {
				t.Errorf("span args = %v", ev.Args)
			}
		case "i":
			instants++
		case "B":
			t.Errorf("unexpected open span %+v", ev)
		}
	}
	if spans != 1 {
		t.Errorf("exported %d X spans, want 1", spans)
	}
	if instants != 2 { // reissue + the open transaction's token arrival
		t.Errorf("exported %d instants, want 2", instants)
	}
}

// TestTracerWarmupBoundary checks MeasurementStarted discards warmup
// events and pre-boundary transactions never become measured spans.
func TestTracerWarmupBoundary(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	o := tr.Observer()
	o.OnMissIssued(0, 1, false, 1*sim.Microsecond) // warmup miss
	o.OnMissIssued(1, 2, false, 2*sim.Microsecond) // straddles the boundary
	o.OnMissCompleted(0, 1, 0, false, sim.Microsecond)
	o.OnMeasurementStarted(5 * sim.Microsecond)
	o.OnReissued(1, 2, 1, 6*sim.Microsecond)             // pre-boundary span: dropped
	o.OnMissCompleted(1, 2, 1, false, 5*sim.Microsecond) // pre-boundary: no span
	o.OnMissIssued(1, 2, true, 7*sim.Microsecond)        // measured miss, same key
	o.OnMissCompleted(1, 2, 0, false, 2*sim.Microsecond) // measured span
	if tr.Spans() != 1 {
		t.Fatalf("Spans = %d, want 1 (only the post-boundary miss)", tr.Spans())
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, buf.Bytes())
	var spans, marks int
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "X":
			spans++
			if string(ev.Ts) != "7.000000" {
				t.Errorf("measured span ts = %s, want 7.000000", ev.Ts)
			}
		case ev.Name == "measurement start":
			marks++
			if ev.S != "g" {
				t.Errorf("measurement mark scope = %q, want g", ev.S)
			}
		case ev.Ph == "i" || ev.Ph == "B":
			t.Errorf("pre-boundary event leaked into the export: %+v", ev)
		}
	}
	if spans != 1 || marks != 1 {
		t.Errorf("spans/marks = %d/%d, want 1/1", spans, marks)
	}
}

// TestTracerOpenSpan checks a transaction still in flight exports as an
// unclosed "B" slice (a failed run's starving miss stays visible).
func TestTracerOpenSpan(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	o := tr.Observer()
	o.OnMissIssued(2, 7, false, sim.Microsecond)
	if tr.Spans() != 0 {
		t.Fatalf("Spans = %d, want 0 while open", tr.Spans())
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, buf.Bytes())
	open := 0
	for _, ev := range out.TraceEvents {
		if ev.Ph == "B" {
			open++
			if ev.Name != "GetS 0x7" {
				t.Errorf("open span name = %q", ev.Name)
			}
		}
	}
	if open != 1 {
		t.Errorf("exported %d open spans, want 1", open)
	}
}

// TestTracerArbiterAndHops checks persistent events land on the arbiter
// process row and hops (opt-in) on the network row.
func TestTracerArbiterAndHops(t *testing.T) {
	tr := NewTracer(TracerConfig{Hops: true})
	o := tr.Observer()
	if o.NetworkHop == nil {
		t.Fatal("Hops tracer does not subscribe to NetworkHop")
	}
	o.OnPersistentActivated(4, 9, sim.Microsecond)
	o.OnPersistentDeactivated(4, 9, 2*sim.Microsecond)
	o.OnNetworkHop(12, msg.CatReissue, 8, 3*sim.Microsecond)
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, buf.Bytes())
	var sawAct, sawDeact, sawHop bool
	for _, ev := range out.TraceEvents {
		switch ev.Name {
		case "persistent activate 0x9":
			sawAct = ev.Pid == pidArbs && ev.Tid == 4
		case "persistent deactivate 0x9":
			sawDeact = ev.Pid == pidArbs && ev.Tid == 4
		case msg.CatReissue.Slug():
			if ev.Cat == "hop" {
				sawHop = ev.Pid == pidNet && ev.Tid == 12 && ev.Args["bytes"] == float64(8)
			}
		}
	}
	if !sawAct || !sawDeact || !sawHop {
		t.Errorf("activate/deactivate/hop placement = %v/%v/%v", sawAct, sawDeact, sawHop)
	}
	if o2 := NewTracer(TracerConfig{}).Observer(); o2.NetworkHop != nil {
		t.Error("default tracer subscribes to NetworkHop")
	}
}

// TestTracerExportDeterministic checks identical event histories export
// byte-identical JSON — the property the engine-level parallelism test
// relies on per job.
func TestTracerExportDeterministic(t *testing.T) {
	render := func() []byte {
		tr := NewTracer(TracerConfig{})
		o := tr.Observer()
		for i := 0; i < 50; i++ {
			blk := msg.Block(i % 16)
			o.OnMissIssued(i%8, blk, i%3 == 0, sim.Time(i)*sim.Microsecond)
			if i%5 == 0 {
				o.OnReissued(i%8, blk, 1, sim.Time(i)*sim.Microsecond+sim.Nanosecond)
			}
			o.OnMissCompleted(i%8, blk, i%5, i%7 == 0, 3*sim.Microsecond)
		}
		var buf bytes.Buffer
		if err := tr.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Error("identical histories exported different bytes")
	}
}
