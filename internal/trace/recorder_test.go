package trace

import (
	"bytes"
	"strings"
	"testing"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// feed drives a deterministic little event history through an observer.
func feed(o *stats.Observer, n int) {
	for i := 1; i <= n; i++ {
		at := sim.Time(i) * 10 * sim.Nanosecond
		o.OnMissIssued(i%4, msg.Block(i%8), i%2 == 0, at)
		o.OnReissued(i%4, msg.Block(i%8), 1, at+sim.Nanosecond)
		o.OnTokensTransferred(i%4, msg.Block(i%8), 3, at+2*sim.Nanosecond)
		o.OnMissCompleted(i%4, msg.Block(i%8), 1, false, 5*sim.Nanosecond)
	}
}

// TestRecorderRingWrap checks the ring keeps exactly the newest Size
// records, oldest first, and counts evicted events in Total.
func TestRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Size: 4, Deadline: -1})
	o := r.Observer()
	for i := 1; i <= 10; i++ {
		o.OnReissued(0, msg.Block(1), i, sim.Time(i)*sim.Nanosecond)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	recs := r.Records()
	for i, want := range []int32{7, 8, 9, 10} {
		if recs[i].Kind != KindReissued || recs[i].N != want {
			t.Errorf("record %d = %+v, want attempt %d", i, recs[i], want)
		}
	}
}

// TestRecorderPartialFill checks a ring that never wrapped dumps only
// what it holds.
func TestRecorderPartialFill(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Size: 64, Deadline: -1})
	feed(r.Observer(), 3)
	if r.Len() != 12 || r.Total() != 12 {
		t.Fatalf("Len/Total = %d/%d, want 12/12", r.Len(), r.Total())
	}
	if recs := r.Records(); recs[0].Kind != KindMissIssued {
		t.Errorf("first retained record = %v, want MissIssued", recs[0].Kind)
	}
}

// TestRecorderDeadlineTrip checks a transaction over the starvation
// deadline dumps the ring exactly once (the default dump budget).
func TestRecorderDeadlineTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewFlightRecorder(RecorderConfig{Size: 16, Deadline: 100 * sim.Nanosecond, Out: &buf, Label: "unit/test"})
	o := r.Observer()
	o.OnMissIssued(2, 5, true, 10*sim.Nanosecond)
	o.OnMissCompleted(2, 5, 0, false, 50*sim.Nanosecond) // under deadline
	if buf.Len() != 0 {
		t.Fatalf("dumped under the deadline:\n%s", buf.String())
	}
	o.OnMissIssued(3, 6, false, 60*sim.Nanosecond)
	o.OnMissCompleted(3, 6, 2, true, 250*sim.Nanosecond) // over deadline
	dump := buf.String()
	if dump == "" {
		t.Fatal("no dump after exceeding the deadline")
	}
	for _, want := range []string{
		"flight recorder: transaction exceeded starvation deadline",
		"proc 3 block 0x6",
		"point: unit/test",
		"last 4 of 4 protocol events",
		"MissIssued proc=2 block=0x5 write",
		"MissCompleted proc=3 block=0x6 reissues=2 persistent=true",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump lacks %q:\n%s", want, dump)
		}
	}
	// Budget spent: a second overrun must not dump again.
	buf.Reset()
	o.OnMissCompleted(3, 6, 3, true, 300*sim.Nanosecond)
	if buf.Len() != 0 {
		t.Errorf("second dump despite exhausted budget:\n%s", buf.String())
	}
}

// TestRecorderDumpDeterministic checks identical event histories render
// byte-identical dumps.
func TestRecorderDumpDeterministic(t *testing.T) {
	render := func() string {
		r := NewFlightRecorder(RecorderConfig{Size: 32, Deadline: -1, Label: "det/test"})
		feed(r.Observer(), 10)
		var buf bytes.Buffer
		r.WriteTo(&buf, "forced")
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("dumps differ:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "TokensTransferred proc=1 block=0x1 tokens=3") {
		t.Errorf("unexpected dump content:\n%s", a)
	}
}

// TestRecorderZeroAllocs is the flight-recorder half of the alloc gate:
// with the recorder armed, steady-state recording allocates nothing.
func TestRecorderZeroAllocs(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Size: DefaultRecorderSize, Hops: true})
	o := r.Observer()
	feed(o, 8) // warm any lazy paths
	allocs := testing.AllocsPerRun(100, func() {
		o.OnMissIssued(1, 2, true, 30*sim.Nanosecond)
		o.OnReissued(1, 2, 1, 31*sim.Nanosecond)
		o.OnPersistentActivated(0, 2, 32*sim.Nanosecond)
		o.OnPersistentDeactivated(0, 2, 33*sim.Nanosecond)
		o.OnTokensTransferred(1, 2, 4, 34*sim.Nanosecond)
		o.OnNetworkHop(7, msg.CatData, 72, 35*sim.Nanosecond)
		o.OnMissCompleted(1, 2, 1, false, 5*sim.Nanosecond)
		o.OnMeasurementStarted(36 * sim.Nanosecond)
	})
	if allocs != 0 {
		t.Errorf("recording allocates %.1f per event burst, want 0", allocs)
	}
}

// TestRecorderNilSafety checks the nil recorder is valid and inert, as
// the machine relies on when the recorder is disabled.
func TestRecorderNilSafety(t *testing.T) {
	var r *FlightRecorder
	r.Trip("nothing should happen")
	r.SetLabel("ignored")
	if r.Observer() != nil {
		t.Error("nil recorder returned a non-nil observer")
	}
	if r.Len() != 0 || r.Total() != 0 || len(r.Records()) != 0 {
		t.Error("nil recorder reports retained records")
	}
}

// TestRecorderHopsOptIn checks hop recording is off by default (hops
// would evict the protocol history) and available on request.
func TestRecorderHopsOptIn(t *testing.T) {
	if o := NewFlightRecorder(RecorderConfig{}).Observer(); o.NetworkHop != nil {
		t.Error("default recorder subscribes to NetworkHop")
	}
	o := NewFlightRecorder(RecorderConfig{Hops: true}).Observer()
	if o.NetworkHop == nil {
		t.Fatal("Hops recorder does not subscribe to NetworkHop")
	}
}
