package trace_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/trace"
)

// tracedPlan is the acceptance configuration: a tokenb 16-processor
// point with warmup, over a few seeds.
func tracedPlan(seeds []uint64) engine.Plan {
	return engine.Plan{
		Variants: []engine.Variant{{
			Name:  "tokenb-torus",
			Point: engine.Point{Protocol: engine.ProtoTokenB, Topo: engine.TopoTorus, Workload: "oltp"},
		}},
		Seeds:  seeds,
		Ops:    300,
		Warmup: 300,
		Procs:  16,
	}
}

// runTraced executes the plan with a tracer per job and returns each
// job's exported trace bytes plus its result, in plan order.
func runTraced(t *testing.T, plan engine.Plan, workers int) ([][]byte, []engine.Result) {
	t.Helper()
	var mu sync.Mutex
	tracers := make(map[int]*trace.Tracer)
	eng := engine.Engine{
		Workers: workers,
		Attach: func(job engine.Job) func(*machine.System) {
			tr := trace.NewTracer(trace.TracerConfig{})
			mu.Lock()
			tracers[job.Index] = tr
			mu.Unlock()
			return func(sys *machine.System) { sys.Observe(tr.Observer()) }
		},
	}
	results, err := eng.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(results))
	for i := range results {
		var buf bytes.Buffer
		if err := tracers[i].Export(&buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out, results
}

// TestTraceSpanCountMatchesMisses is the acceptance criterion: for a
// tokenb 16p point, the exported trace's span count equals the run's
// misses metric — the warmup boundary discards exactly the unmeasured
// transactions.
func TestTraceSpanCountMatchesMisses(t *testing.T) {
	traces, results := runTraced(t, tracedPlan([]uint64{1}), 1)
	misses, ok := results[0].Metrics.Value("misses")
	if !ok {
		t.Fatal("no misses metric")
	}
	if misses == 0 {
		t.Fatal("run completed zero misses; the test workload is too small")
	}
	spans := bytes.Count(traces[0], []byte(`"ph":"X"`))
	if float64(spans) != misses {
		t.Errorf("trace has %d spans, misses metric is %.0f", spans, misses)
	}
	if open := bytes.Count(traces[0], []byte(`"ph":"B"`)); open != 0 {
		t.Errorf("successful run exported %d open spans", open)
	}
}

// TestTraceParallelDeterminism is the other acceptance criterion: trace
// files for a fixed (point, seed) are byte-identical whether the engine
// ran with one worker or many.
func TestTraceParallelDeterminism(t *testing.T) {
	plan := tracedPlan([]uint64{1, 2, 3})
	serial, _ := runTraced(t, plan, 1)
	parallel, _ := runTraced(t, plan, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("job counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("job %d: trace bytes differ between -parallel 1 and -parallel 4", i)
		}
	}
}

// TestRecorderForcedFailureDeterministic forces a starvation-deadline
// trip with a 1 ps deadline (every completed miss overruns it) and
// checks the armed recorder's dump is identical across runs and across
// engine parallelism — the seeded simulation replays the same event
// history every time.
func TestRecorderForcedFailureDeterministic(t *testing.T) {
	dump := func(workers int) string {
		var buf bytes.Buffer
		out := trace.NewSyncWriter(&buf)
		plan := tracedPlan([]uint64{7})
		pt := &plan.Variants[0].Point
		pt.Mutate = func(c *machine.Config) {
			c.StarvationDeadline = sim.Picosecond
			c.DebugLog = out
		}
		eng := engine.Engine{Workers: workers}
		if _, err := eng.Execute(context.Background(), plan); err != nil {
			t.Fatal(err) // a deadline trip dumps but does not fail the run
		}
		return buf.String()
	}
	first := dump(1)
	if first == "" {
		t.Fatal("1 ps deadline produced no dump")
	}
	if !strings.Contains(first, "transaction exceeded starvation deadline") {
		t.Errorf("dump lacks the deadline reason:\n%.400s", first)
	}
	if !strings.Contains(first, "tokenb/torus/oltp procs=16 seed=7") {
		t.Errorf("dump lacks the engine-assigned point label:\n%.400s", first)
	}
	if second := dump(4); first != second {
		t.Error("forced-failure dumps differ between runs")
	}
}

// TestRecorderDisabled checks a negative RecorderSize builds a system
// with no recorder at all.
func TestRecorderDisabled(t *testing.T) {
	plan := tracedPlan([]uint64{1})
	pt := &plan.Variants[0].Point
	pt.Mutate = func(c *machine.Config) { c.RecorderSize = -1 }
	var sawRecorder *trace.FlightRecorder
	eng := engine.Engine{Attach: func(job engine.Job) func(*machine.System) {
		return func(sys *machine.System) { sawRecorder = sys.Recorder }
	}}
	if _, err := eng.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if sawRecorder != nil {
		t.Error("RecorderSize<0 still armed a recorder")
	}
}
