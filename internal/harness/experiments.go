package harness

import (
	"fmt"
	"io"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/workload"
)

// --- Table 2: overhead due to reissued requests ------------------------

// Table2Row is one workload's miss classification (percent of misses).
type Table2Row struct {
	Workload     string
	NotReissued  float64
	ReissuedOnce float64
	ReissuedMore float64
	Persistent   float64
}

// Table2 runs TokenB on the torus for each commercial workload and
// classifies misses as the paper's Table 2 does.
func Table2(opt Options) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range workload.Names() {
		runs, err := averaged(Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: name}, opt)
		if err != nil {
			return nil, err
		}
		var agg stats.Misses
		for _, r := range runs {
			agg.Issued += r.Misses.Issued
			agg.ReissuedOnce += r.Misses.ReissuedOnce
			agg.ReissuedMore += r.Misses.ReissuedMore
			agg.Persistent += r.Misses.Persistent
		}
		rows = append(rows, Table2Row{
			Workload:     name,
			NotReissued:  agg.Frac(agg.NotReissued()),
			ReissuedOnce: agg.Frac(agg.ReissuedOnce),
			ReissuedMore: agg.Frac(agg.ReissuedMore),
			Persistent:   agg.Frac(agg.Persistent),
		})
	}
	return rows, nil
}

// PrintTable2 formats rows like the paper's Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: Overhead due to reissued requests (TokenB, torus)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "Workload", "NotReissued", "Once", ">Once", "Persistent")
	var avg Table2Row
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
			r.Workload, r.NotReissued, r.ReissuedOnce, r.ReissuedMore, r.Persistent)
		avg.NotReissued += r.NotReissued
		avg.ReissuedOnce += r.ReissuedOnce
		avg.ReissuedMore += r.ReissuedMore
		avg.Persistent += r.Persistent
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(w, "%-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
			"Average", avg.NotReissued/n, avg.ReissuedOnce/n, avg.ReissuedMore/n, avg.Persistent/n)
	}
}

// --- Runtime figures (4a and 5a) ----------------------------------------

// RuntimeBar is one bar of a runtime figure: cycles per transaction for
// a (workload, configuration) pair, with the unlimited-bandwidth value.
type RuntimeBar struct {
	Workload  string
	Config    string
	Cycles    float64 // limited bandwidth
	CyclesInf float64 // unlimited bandwidth
}

// runtimePair measures one config with limited and unlimited bandwidth.
func runtimePair(pt Point, opt Options) (lim, inf float64, err error) {
	runs, err := averaged(pt, opt)
	if err != nil {
		return 0, 0, err
	}
	lim = meanCPT(runs)
	pt.Unlimited = true
	runs, err = averaged(pt, opt)
	if err != nil {
		return 0, 0, err
	}
	return lim, meanCPT(runs), nil
}

// Fig4a compares Snooping on the tree against TokenB on both fabrics
// (paper Figure 4a). Snooping-on-torus is impossible (no total order),
// exactly as the paper's "not applicable" bar.
func Fig4a(opt Options) ([]RuntimeBar, error) {
	configs := []struct {
		label string
		pt    Point
	}{
		{"tokenb-tree", Point{Protocol: ProtoTokenB, Topo: TopoTree}},
		{"snooping-tree", Point{Protocol: ProtoSnooping, Topo: TopoTree}},
		{"tokenb-torus", Point{Protocol: ProtoTokenB, Topo: TopoTorus}},
	}
	var bars []RuntimeBar
	for _, name := range workload.Names() {
		for _, c := range configs {
			pt := c.pt
			pt.Workload = name
			lim, inf, err := runtimePair(pt, opt)
			if err != nil {
				return nil, err
			}
			bars = append(bars, RuntimeBar{Workload: name, Config: c.label, Cycles: lim, CyclesInf: inf})
		}
	}
	return bars, nil
}

// Fig5a compares TokenB, Hammer and Directory on the torus (paper
// Figure 5a), including the directory-access-latency effect.
func Fig5a(opt Options) ([]RuntimeBar, error) {
	configs := []struct {
		label string
		pt    Point
	}{
		{"tokenb", Point{Protocol: ProtoTokenB, Topo: TopoTorus}},
		{"hammer", Point{Protocol: ProtoHammer, Topo: TopoTorus}},
		{"directory", Point{Protocol: ProtoDirectory, Topo: TopoTorus}},
		{"directory-perfect", Point{Protocol: ProtoDirectory, Topo: TopoTorus, PerfectDir: true}},
	}
	var bars []RuntimeBar
	for _, name := range workload.Names() {
		for _, c := range configs {
			pt := c.pt
			pt.Workload = name
			lim, inf, err := runtimePair(pt, opt)
			if err != nil {
				return nil, err
			}
			bars = append(bars, RuntimeBar{Workload: name, Config: c.label, Cycles: lim, CyclesInf: inf})
		}
	}
	return bars, nil
}

// PrintRuntime formats runtime bars normalized per workload to the named
// baseline configuration (the paper normalizes each workload's group).
func PrintRuntime(w io.Writer, title, baseline string, bars []RuntimeBar) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-10s %-18s %14s %14s %11s %11s\n",
		"Workload", "Config", "cyc/txn", "cyc/txn(inf)", "norm", "norm(inf)")
	base := map[string]float64{}
	for _, b := range bars {
		if b.Config == baseline {
			base[b.Workload] = b.Cycles
		}
	}
	for _, b := range bars {
		norm, normInf := 0.0, 0.0
		if v := base[b.Workload]; v > 0 {
			norm = b.Cycles / v
			normInf = b.CyclesInf / v
		}
		fmt.Fprintf(w, "%-10s %-18s %14.1f %14.1f %11.3f %11.3f\n",
			b.Workload, b.Config, b.Cycles, b.CyclesInf, norm, normInf)
	}
}

// --- Traffic figures (4b and 5b) ----------------------------------------

// TrafficBar is one traffic bar: bytes per miss by category.
type TrafficBar struct {
	Workload string
	Config   string
	// PerCategory is indexed by msg.Category.
	PerCategory [msg.NumCategories]float64
	Total       float64
}

func trafficBar(pt Point, opt Options) (TrafficBar, error) {
	runs, err := averaged(pt, opt)
	if err != nil {
		return TrafficBar{}, err
	}
	var bar TrafficBar
	for _, r := range runs {
		for c := 0; c < msg.NumCategories; c++ {
			bar.PerCategory[c] += r.CategoryBytesPerMiss(msg.Category(c))
		}
		bar.Total += r.BytesPerMiss()
	}
	n := float64(len(runs))
	for c := range bar.PerCategory {
		bar.PerCategory[c] /= n
	}
	bar.Total /= n
	return bar, nil
}

// Fig4b compares TokenB and Snooping traffic on the tree (paper
// Figure 4b).
func Fig4b(opt Options) ([]TrafficBar, error) {
	configs := []struct {
		label string
		pt    Point
	}{
		{"tokenb", Point{Protocol: ProtoTokenB, Topo: TopoTree}},
		{"snooping", Point{Protocol: ProtoSnooping, Topo: TopoTree}},
	}
	return trafficBars(configs, opt)
}

// Fig5b compares TokenB, Hammer and Directory traffic on the torus
// (paper Figure 5b).
func Fig5b(opt Options) ([]TrafficBar, error) {
	configs := []struct {
		label string
		pt    Point
	}{
		{"tokenb", Point{Protocol: ProtoTokenB, Topo: TopoTorus}},
		{"hammer", Point{Protocol: ProtoHammer, Topo: TopoTorus}},
		{"directory", Point{Protocol: ProtoDirectory, Topo: TopoTorus}},
	}
	return trafficBars(configs, opt)
}

func trafficBars(configs []struct {
	label string
	pt    Point
}, opt Options) ([]TrafficBar, error) {
	var bars []TrafficBar
	for _, name := range workload.Names() {
		for _, c := range configs {
			pt := c.pt
			pt.Workload = name
			bar, err := trafficBar(pt, opt)
			if err != nil {
				return nil, err
			}
			bar.Workload = name
			bar.Config = c.label
			bars = append(bars, bar)
		}
	}
	return bars, nil
}

// PrintTraffic formats traffic bars with the paper's category breakdown.
func PrintTraffic(w io.Writer, title string, bars []TrafficBar) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-10s %-12s %10s %10s %10s %10s %10s\n",
		"Workload", "Config", "reissue+p", "requests", "control", "data", "total")
	for _, b := range bars {
		fmt.Fprintf(w, "%-10s %-12s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			b.Workload, b.Config,
			b.PerCategory[msg.CatReissue], b.PerCategory[msg.CatRequest],
			b.PerCategory[msg.CatControl], b.PerCategory[msg.CatData], b.Total)
	}
}

// --- Scalability (question 5) -------------------------------------------

// ScalingRow reports traffic per miss at one system size.
type ScalingRow struct {
	Procs          int
	TokenBPerMiss  float64
	DirPerMiss     float64
	TrafficRatio   float64
	TokenBCycles   float64
	DirectoryCyc   float64
	RuntimeRatioTB float64
}

// Scaling runs the uniform-sharing microbenchmark from 4 to maxProcs
// processors (paper §6 question 5: at 64 processors TokenB uses roughly
// twice Directory's interconnect bandwidth).
func Scaling(opt Options, maxProcs int) ([]ScalingRow, error) {
	if maxProcs == 0 {
		maxProcs = 64
	}
	var rows []ScalingRow
	for procs := 4; procs <= maxProcs; procs *= 2 {
		mkGen := func() *workload.Uniform {
			return workload.NewUniform(2048, 0.3, 5*sim.Nanosecond, procs)
		}
		o := opt
		o.Procs = procs
		tb, err := averaged(Point{Protocol: ProtoTokenB, Topo: TopoTorus, Gen: mkGen()}, o)
		if err != nil {
			return nil, err
		}
		// A fresh generator keeps the directory run independent.
		dir, err := averaged(Point{Protocol: ProtoDirectory, Topo: TopoTorus, Gen: mkGen()}, o)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Procs: procs}
		for _, r := range tb {
			row.TokenBPerMiss += r.BytesPerMiss() / float64(len(tb))
			row.TokenBCycles += r.CyclesPerTransaction() / float64(len(tb))
		}
		for _, r := range dir {
			row.DirPerMiss += r.BytesPerMiss() / float64(len(dir))
			row.DirectoryCyc += r.CyclesPerTransaction() / float64(len(dir))
		}
		if row.DirPerMiss > 0 {
			row.TrafficRatio = row.TokenBPerMiss / row.DirPerMiss
		}
		if row.TokenBCycles > 0 {
			row.RuntimeRatioTB = row.DirectoryCyc / row.TokenBCycles
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintScaling formats the scalability study.
func PrintScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scalability microbenchmark (question 5): TokenB vs Directory, torus")
	fmt.Fprintf(w, "%6s %16s %16s %14s %16s\n", "procs", "tokenB B/miss", "dir B/miss", "traffic ratio", "dir/tokenB time")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %16.1f %16.1f %14.2f %16.2f\n",
			r.Procs, r.TokenBPerMiss, r.DirPerMiss, r.TrafficRatio, r.RuntimeRatioTB)
	}
}

// --- Convenience ---------------------------------------------------------

// Experiments lists the experiment names RunExperiment accepts.
func Experiments() []string {
	return []string{"table2", "fig4a", "fig4b", "fig5a", "fig5b", "scaling"}
}

// RunExperiment runs one experiment by name and prints it to w.
func RunExperiment(w io.Writer, name string, opt Options) error {
	switch name {
	case "table2":
		rows, err := Table2(opt)
		if err != nil {
			return err
		}
		PrintTable2(w, rows)
	case "fig4a":
		bars, err := Fig4a(opt)
		if err != nil {
			return err
		}
		PrintRuntime(w, "Figure 4a: runtime, Snooping vs TokenB (normalized to snooping-tree)", "snooping-tree", bars)
	case "fig4b":
		bars, err := Fig4b(opt)
		if err != nil {
			return err
		}
		PrintTraffic(w, "Figure 4b: traffic, Snooping vs TokenB (tree, bytes/miss)", bars)
	case "fig5a":
		bars, err := Fig5a(opt)
		if err != nil {
			return err
		}
		PrintRuntime(w, "Figure 5a: runtime, Directory & Hammer vs TokenB (normalized to tokenb)", "tokenb", bars)
	case "fig5b":
		bars, err := Fig5b(opt)
		if err != nil {
			return err
		}
		PrintTraffic(w, "Figure 5b: traffic, Directory & Hammer vs TokenB (torus, bytes/miss)", bars)
	case "scaling":
		rows, err := Scaling(opt, 64)
		if err != nil {
			return err
		}
		PrintScaling(w, rows)
	default:
		return fmt.Errorf("harness: unknown experiment %q (have %v)", name, Experiments())
	}
	return nil
}
