package harness

import (
	"context"
	"fmt"
	"io"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/workload"
)

// runAggregate executes a plan on the options' worker pool and collapses
// the seed axis into per-cell aggregates.
func runAggregate(plan engine.Plan, opt Options) (*engine.AggregateSink, error) {
	var agg engine.AggregateSink
	if _, err := opt.engine().Execute(context.Background(), plan, &agg); err != nil {
		return nil, err
	}
	return &agg, nil
}

// --- Table 2: overhead due to reissued requests ------------------------

// Table2Row is one workload's miss classification (percent of misses).
type Table2Row struct {
	Workload     string
	NotReissued  float64
	ReissuedOnce float64
	ReissuedMore float64
	Persistent   float64
}

// Table2 runs TokenB on the torus for each registered workload and
// classifies misses as the paper's Table 2 does.
func Table2(opt Options) ([]Table2Row, error) {
	plan := opt.plan([]engine.Variant{
		{Name: "tokenb-torus", Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus}},
	})
	plan.Workloads = registry.WorkloadNames()
	agg, err := runAggregate(plan, opt)
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, cell := range agg.Cells() {
		m := cell.SumMisses()
		rows = append(rows, Table2Row{
			Workload:     cell.Workload,
			NotReissued:  m.Frac(m.NotReissued()),
			ReissuedOnce: m.Frac(m.ReissuedOnce),
			ReissuedMore: m.Frac(m.ReissuedMore),
			Persistent:   m.Frac(m.Persistent),
		})
	}
	return rows, nil
}

// PrintTable2 formats rows like the paper's Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: Overhead due to reissued requests (TokenB, torus)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "Workload", "NotReissued", "Once", ">Once", "Persistent")
	var avg Table2Row
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
			r.Workload, r.NotReissued, r.ReissuedOnce, r.ReissuedMore, r.Persistent)
		avg.NotReissued += r.NotReissued
		avg.ReissuedOnce += r.ReissuedOnce
		avg.ReissuedMore += r.ReissuedMore
		avg.Persistent += r.Persistent
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(w, "%-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
			"Average", avg.NotReissued/n, avg.ReissuedOnce/n, avg.ReissuedMore/n, avg.Persistent/n)
	}
}

// --- Runtime figures (4a and 5a) ----------------------------------------

// RuntimeBar is one bar of a runtime figure: cycles per transaction for
// a (workload, configuration) pair, with the unlimited-bandwidth value.
type RuntimeBar struct {
	Workload  string
	Config    string
	Cycles    float64 // limited bandwidth
	CyclesInf float64 // unlimited bandwidth
}

// runtimeBars measures every variant on every registered workload with
// limited and unlimited bandwidth, averaged over seeds.
func runtimeBars(variants []engine.Variant, opt Options) ([]RuntimeBar, error) {
	plan := opt.plan(variants)
	plan.Workloads = registry.WorkloadNames()
	plan.Unlimited = []bool{false, true}
	agg, err := runAggregate(plan, opt)
	if err != nil {
		return nil, err
	}
	var bars []RuntimeBar
	for _, name := range registry.WorkloadNames() {
		for _, v := range variants {
			lim := agg.Find(v.Name, name, "", false)
			inf := agg.Find(v.Name, name, "", true)
			bars = append(bars, RuntimeBar{
				Workload:  name,
				Config:    v.Name,
				Cycles:    lim.MeanCyclesPerTxn(),
				CyclesInf: inf.MeanCyclesPerTxn(),
			})
		}
	}
	return bars, nil
}

// Fig4a compares Snooping on the tree against TokenB on both fabrics
// (paper Figure 4a). Snooping-on-torus is impossible (no total order),
// exactly as the paper's "not applicable" bar.
func Fig4a(opt Options) ([]RuntimeBar, error) {
	return runtimeBars([]engine.Variant{
		{Name: "tokenb-tree", Point: Point{Protocol: ProtoTokenB, Topo: TopoTree}},
		{Name: "snooping-tree", Point: Point{Protocol: ProtoSnooping, Topo: TopoTree}},
		{Name: "tokenb-torus", Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus}},
	}, opt)
}

// Fig5a compares TokenB, Hammer and Directory on the torus (paper
// Figure 5a), including the directory-access-latency effect.
func Fig5a(opt Options) ([]RuntimeBar, error) {
	return runtimeBars([]engine.Variant{
		{Name: "tokenb", Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus}},
		{Name: "hammer", Point: Point{Protocol: ProtoHammer, Topo: TopoTorus}},
		{Name: "directory", Point: Point{Protocol: ProtoDirectory, Topo: TopoTorus}},
		{Name: "directory-perfect", Point: Point{Protocol: ProtoDirectory, Topo: TopoTorus, PerfectDir: true}},
	}, opt)
}

// PrintRuntime formats runtime bars normalized per workload to the named
// baseline configuration (the paper normalizes each workload's group).
func PrintRuntime(w io.Writer, title, baseline string, bars []RuntimeBar) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-10s %-18s %14s %14s %11s %11s\n",
		"Workload", "Config", "cyc/txn", "cyc/txn(inf)", "norm", "norm(inf)")
	base := map[string]float64{}
	for _, b := range bars {
		if b.Config == baseline {
			base[b.Workload] = b.Cycles
		}
	}
	for _, b := range bars {
		norm, normInf := 0.0, 0.0
		if v := base[b.Workload]; v > 0 {
			norm = b.Cycles / v
			normInf = b.CyclesInf / v
		}
		fmt.Fprintf(w, "%-10s %-18s %14.1f %14.1f %11.3f %11.3f\n",
			b.Workload, b.Config, b.Cycles, b.CyclesInf, norm, normInf)
	}
}

// --- Traffic figures (4b and 5b) ----------------------------------------

// TrafficBar is one traffic bar: bytes per miss by category.
type TrafficBar struct {
	Workload string
	Config   string
	// PerCategory is indexed by msg.Category.
	PerCategory [msg.NumCategories]float64
	Total       float64
}

// trafficBars measures every variant's traffic on every registered
// workload, averaged over seeds.
func trafficBars(variants []engine.Variant, opt Options) ([]TrafficBar, error) {
	plan := opt.plan(variants)
	plan.Workloads = registry.WorkloadNames()
	agg, err := runAggregate(plan, opt)
	if err != nil {
		return nil, err
	}
	var bars []TrafficBar
	for _, name := range registry.WorkloadNames() {
		for _, v := range variants {
			cell := agg.Find(v.Name, name, "", false)
			bar := TrafficBar{Workload: name, Config: v.Name, Total: cell.MeanBytesPerMiss()}
			for c := 0; c < msg.NumCategories; c++ {
				bar.PerCategory[c] = cell.MeanCategoryBytesPerMiss(msg.Category(c))
			}
			bars = append(bars, bar)
		}
	}
	return bars, nil
}

// Fig4b compares TokenB and Snooping traffic on the tree (paper
// Figure 4b).
func Fig4b(opt Options) ([]TrafficBar, error) {
	return trafficBars([]engine.Variant{
		{Name: "tokenb", Point: Point{Protocol: ProtoTokenB, Topo: TopoTree}},
		{Name: "snooping", Point: Point{Protocol: ProtoSnooping, Topo: TopoTree}},
	}, opt)
}

// Fig5b compares TokenB, Hammer and Directory traffic on the torus
// (paper Figure 5b).
func Fig5b(opt Options) ([]TrafficBar, error) {
	return trafficBars([]engine.Variant{
		{Name: "tokenb", Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus}},
		{Name: "hammer", Point: Point{Protocol: ProtoHammer, Topo: TopoTorus}},
		{Name: "directory", Point: Point{Protocol: ProtoDirectory, Topo: TopoTorus}},
	}, opt)
}

// PrintTraffic formats traffic bars with the paper's category breakdown.
func PrintTraffic(w io.Writer, title string, bars []TrafficBar) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-10s %-12s %10s %10s %10s %10s %10s\n",
		"Workload", "Config", "reissue+p", "requests", "control", "data", "total")
	for _, b := range bars {
		fmt.Fprintf(w, "%-10s %-12s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			b.Workload, b.Config,
			b.PerCategory[msg.CatReissue], b.PerCategory[msg.CatRequest],
			b.PerCategory[msg.CatControl], b.PerCategory[msg.CatData], b.Total)
	}
}

// --- Scalability (question 5) -------------------------------------------

// ScalingRow reports traffic per miss and runtime at one system size,
// for TokenB, Directory, Hammer and the two hierarchical protocols on
// the torus plus the traditional snooping baseline on the ordered
// broadcast tree.
type ScalingRow struct {
	Procs int

	// Bytes per miss, per configuration.
	TokenBPerMiss float64
	DirPerMiss    float64
	HammerPerMiss float64
	SnoopPerMiss  float64 // snooping on the tree
	Dir2PerMiss   float64 // two-level directory over torus rows
	RegionPerMiss float64 // region-filtered token broadcast

	// Cycles per transaction, per configuration.
	TokenBCycles float64
	DirectoryCyc float64
	HammerCycles float64
	SnoopCycles  float64 // snooping on the tree
	Dir2Cycles   float64
	RegionCycles float64

	// TrafficRatio is TokenB/Directory bytes per miss (the paper's ~2x
	// at 64 processors); RuntimeRatioTB is Directory/TokenB runtime.
	TrafficRatio   float64
	RuntimeRatioTB float64
}

// uniformGen builds a fresh uniform-sharing microbenchmark generator per
// job, so the grid stays race-free and deterministic under parallelism.
func uniformGen(procs int) machine.Generator {
	return workload.NewUniform(2048, 0.3, 5*sim.Nanosecond, procs)
}

// scalingConfigs are the protocol/fabric pairs the scalability study
// sweeps across system sizes: the paper's TokenB-vs-Directory torus
// comparison, extended with Hammer on the torus and the traditional
// snooping baseline on the multi-level ordered tree (possible beyond 16
// processors now that the tree is un-capped).
var scalingConfigs = []struct{ proto, topo string }{
	{ProtoTokenB, TopoTorus},
	{ProtoDirectory, TopoTorus},
	{ProtoHammer, TopoTorus},
	{ProtoSnooping, TopoTree},
	{ProtoDir2, TopoTorus},
	{ProtoRegionFilter, TopoTorus},
}

// Scaling runs the uniform-sharing microbenchmark from 4 to maxProcs
// processors (paper §6 question 5: at 64 processors TokenB uses roughly
// twice Directory's interconnect bandwidth). maxProcs may extend to 256;
// zero defaults to the options' MaxProcs (64 when unset).
func Scaling(opt Options, maxProcs int) ([]ScalingRow, error) {
	if maxProcs == 0 {
		maxProcs = opt.maxProcs()
	}
	var sizes []int
	var variants []engine.Variant
	for procs := 4; procs <= maxProcs; procs *= 2 {
		sizes = append(sizes, procs)
		for _, cfg := range scalingConfigs {
			variants = append(variants, engine.Variant{
				Name: fmt.Sprintf("%s-%dp", cfg.proto, procs),
				Point: Point{
					Protocol: cfg.proto, Topo: cfg.topo,
					NewGen: uniformGen, Procs: procs,
				},
			})
		}
	}
	plan := opt.plan(variants)
	plan.Procs = 0 // the system size is the swept axis; keep per-variant Procs
	agg, err := runAggregate(plan, opt)
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, procs := range sizes {
		cell := func(proto string) *engine.Aggregate {
			return agg.Find(fmt.Sprintf("%s-%dp", proto, procs), "", "", false)
		}
		tb, dir := cell(ProtoTokenB), cell(ProtoDirectory)
		ham, snp := cell(ProtoHammer), cell(ProtoSnooping)
		d2, rf := cell(ProtoDir2), cell(ProtoRegionFilter)
		row := ScalingRow{
			Procs:         procs,
			TokenBPerMiss: tb.MeanBytesPerMiss(),
			TokenBCycles:  tb.MeanCyclesPerTxn(),
			DirPerMiss:    dir.MeanBytesPerMiss(),
			DirectoryCyc:  dir.MeanCyclesPerTxn(),
			HammerPerMiss: ham.MeanBytesPerMiss(),
			HammerCycles:  ham.MeanCyclesPerTxn(),
			SnoopPerMiss:  snp.MeanBytesPerMiss(),
			SnoopCycles:   snp.MeanCyclesPerTxn(),
			Dir2PerMiss:   d2.MeanBytesPerMiss(),
			Dir2Cycles:    d2.MeanCyclesPerTxn(),
			RegionPerMiss: rf.MeanBytesPerMiss(),
			RegionCycles:  rf.MeanCyclesPerTxn(),
		}
		if row.DirPerMiss > 0 {
			row.TrafficRatio = row.TokenBPerMiss / row.DirPerMiss
		}
		if row.TokenBCycles > 0 {
			row.RuntimeRatioTB = row.DirectoryCyc / row.TokenBCycles
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintScaling formats the scalability study.
func PrintScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scalability microbenchmark (question 5): TokenB vs Directory vs Hammer vs Dir2 vs RegionFilter (torus), Snooping (tree)")
	fmt.Fprintf(w, "%6s %14s %14s %14s %14s %14s %14s %14s %16s\n",
		"procs", "tokenB B/miss", "dir B/miss", "hammer B/miss", "snoop B/miss", "dir2 B/miss", "region B/miss", "traffic ratio", "dir/tokenB time")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %14.1f %14.1f %14.1f %14.1f %14.1f %14.1f %14.2f %16.2f\n",
			r.Procs, r.TokenBPerMiss, r.DirPerMiss, r.HammerPerMiss, r.SnoopPerMiss,
			r.Dir2PerMiss, r.RegionPerMiss, r.TrafficRatio, r.RuntimeRatioTB)
	}
}

// --- Convenience ---------------------------------------------------------

// experiment is one reproducible paper table or figure: a name plus the
// function that computes it and prints the paper-style rows.
type experiment struct {
	name string
	run  func(w io.Writer, opt Options) error
}

// experiments is the ordered table RunExperiment and Experiments resolve
// through, in the paper's presentation order.
var experiments = []experiment{
	{"table2", func(w io.Writer, opt Options) error {
		rows, err := Table2(opt)
		if err != nil {
			return err
		}
		PrintTable2(w, rows)
		return nil
	}},
	{"fig4a", func(w io.Writer, opt Options) error {
		bars, err := Fig4a(opt)
		if err != nil {
			return err
		}
		PrintRuntime(w, "Figure 4a: runtime, Snooping vs TokenB (normalized to snooping-tree)", "snooping-tree", bars)
		return nil
	}},
	{"fig4b", func(w io.Writer, opt Options) error {
		bars, err := Fig4b(opt)
		if err != nil {
			return err
		}
		PrintTraffic(w, "Figure 4b: traffic, Snooping vs TokenB (tree, bytes/miss)", bars)
		return nil
	}},
	{"fig5a", func(w io.Writer, opt Options) error {
		bars, err := Fig5a(opt)
		if err != nil {
			return err
		}
		PrintRuntime(w, "Figure 5a: runtime, Directory & Hammer vs TokenB (normalized to tokenb)", "tokenb", bars)
		return nil
	}},
	{"fig5b", func(w io.Writer, opt Options) error {
		bars, err := Fig5b(opt)
		if err != nil {
			return err
		}
		PrintTraffic(w, "Figure 5b: traffic, Directory & Hammer vs TokenB (torus, bytes/miss)", bars)
		return nil
	}},
	{"scaling", func(w io.Writer, opt Options) error {
		rows, err := Scaling(opt, 0) // sweeps up to opt.MaxProcs (default 64)
		if err != nil {
			return err
		}
		PrintScaling(w, rows)
		return nil
	}},
}

// Experiments lists the experiment names RunExperiment accepts.
func Experiments() []string {
	out := make([]string, len(experiments))
	for i, e := range experiments {
		out[i] = e.name
	}
	return out
}

// RunExperiment runs one experiment by name and prints it to w.
func RunExperiment(w io.Writer, name string, opt Options) error {
	for _, e := range experiments {
		if e.name == name {
			return e.run(w, opt)
		}
	}
	return fmt.Errorf("harness: unknown experiment %q (have %v)", name, Experiments())
}
