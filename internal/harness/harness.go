// Package harness assembles complete simulated machines and runs the
// paper's experiments: Table 2 (reissue/persistent-request rates),
// Figure 4 (Snooping vs TokenB runtime and traffic), Figure 5 (Directory
// and Hammer vs TokenB runtime and traffic), and the §6 question 5
// scalability microbenchmark. Each experiment has a structured-result
// function (for tests and benchmarks) and a printer that emits the
// paper-style rows.
package harness

import (
	"fmt"

	"tokencoherence/internal/core"
	"tokencoherence/internal/directory"
	"tokencoherence/internal/hammer"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/snooping"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/workload"
)

// Protocol names.
const (
	ProtoTokenB    = "tokenb"
	ProtoSnooping  = "snooping"
	ProtoDirectory = "directory"
	ProtoHammer    = "hammer"
	ProtoTokenD    = "tokend"
	ProtoTokenM    = "tokenm"
)

// Topology names.
const (
	TopoTree  = "tree"
	TopoTorus = "torus"
)

// Point is one simulation configuration.
type Point struct {
	Protocol string
	Topo     string
	Workload string // commercial workload name, or "" to use Gen
	Gen      machine.Generator
	Procs    int
	Ops      int // operations per processor (measured)
	Warmup   int // cache-warming operations per processor (unmeasured)
	Seed     uint64

	// Unlimited removes the bandwidth limit (infinite links).
	Unlimited bool
	// PerfectDir sets the directory lookup latency to zero.
	PerfectDir bool
	// Mutate optionally adjusts the configuration last.
	Mutate func(*machine.Config)
}

// Run executes one point and returns its statistics. Token Coherence
// points are additionally audited for token conservation.
func Run(pt Point) (*stats.Run, error) {
	if pt.Procs == 0 {
		pt.Procs = 16
	}
	if pt.Ops == 0 {
		pt.Ops = 4000
	}
	cfg := machine.DefaultConfig()
	cfg.Procs = pt.Procs
	if cfg.TokensPerBlock < pt.Procs {
		cfg.TokensPerBlock = pt.Procs * 2
	}
	if pt.Unlimited {
		cfg.Net = cfg.Net.Unlimited()
	}
	if pt.PerfectDir {
		cfg.DirLatency = 0
	}
	if pt.Mutate != nil {
		pt.Mutate(&cfg)
	}

	var topo topology.Topology
	switch pt.Topo {
	case TopoTree, "":
		if pt.Topo == TopoTree || pt.Protocol == ProtoSnooping {
			topo = topology.NewTree(pt.Procs)
		} else {
			topo = topology.NewTorusFor(pt.Procs)
		}
	case TopoTorus:
		topo = topology.NewTorusFor(pt.Procs)
	default:
		return nil, fmt.Errorf("harness: unknown topology %q", pt.Topo)
	}

	gen := pt.Gen
	if gen == nil {
		params, err := workload.Commercial(pt.Workload)
		if err != nil {
			return nil, err
		}
		gen = workload.NewGenerator(params, pt.Procs)
	}

	sys := machine.NewSystem(cfg, topo, pt.Seed)
	var ctrls []machine.Controller
	var audit func() error
	switch pt.Protocol {
	case ProtoTokenB:
		ts := core.BuildTokenB(sys)
		ctrls = ts.Controllers()
		audit = ts.Audit
	case ProtoTokenD:
		ts := core.BuildTokenD(sys)
		ctrls = ts.Controllers()
		audit = ts.Audit
	case ProtoTokenM:
		ts := core.BuildTokenM(sys)
		ctrls = ts.Controllers()
		audit = ts.Audit
	case ProtoSnooping:
		ctrls = snooping.Build(sys).Controllers()
	case ProtoDirectory:
		ctrls = directory.Build(sys).Controllers()
	case ProtoHammer:
		ctrls = hammer.Build(sys).Controllers()
	default:
		return nil, fmt.Errorf("harness: unknown protocol %q", pt.Protocol)
	}

	run, err := sys.ExecuteWarm(ctrls, gen, pt.Warmup, pt.Ops)
	if err != nil {
		return run, fmt.Errorf("%s/%s/%s: %w", pt.Protocol, pt.Topo, pt.Workload, err)
	}
	if audit != nil {
		if err := audit(); err != nil {
			return run, fmt.Errorf("%s/%s/%s: %w", pt.Protocol, pt.Topo, pt.Workload, err)
		}
	}
	return run, nil
}

// Options tunes experiment size; the zero value gives quick defaults.
type Options struct {
	// Ops per processor (default 4000).
	Ops int
	// Warmup ops per processor before measurement (default 2x Ops).
	Warmup int
	// Seeds to average over (default {1}).
	Seeds []uint64
	// Procs (default 16).
	Procs int
}

func (o Options) ops() int {
	if o.Ops == 0 {
		return 4000
	}
	return o.Ops
}

func (o Options) warmup() int {
	if o.Warmup == 0 {
		return 2 * o.ops()
	}
	return o.Warmup
}

func (o Options) seeds() []uint64 {
	if len(o.Seeds) == 0 {
		return []uint64{1}
	}
	return o.Seeds
}

func (o Options) procs() int {
	if o.Procs == 0 {
		return 16
	}
	return o.Procs
}

// averaged runs a point once per seed and returns per-seed runs.
func averaged(pt Point, opt Options) ([]*stats.Run, error) {
	var runs []*stats.Run
	for _, seed := range opt.seeds() {
		pt.Seed = seed
		pt.Ops = opt.ops()
		pt.Warmup = opt.warmup()
		pt.Procs = opt.procs()
		run, err := Run(pt)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

func meanCPT(runs []*stats.Run) float64 {
	var s stats.Sample
	for _, r := range runs {
		s.Add(r.CyclesPerTransaction())
	}
	return s.Mean()
}
