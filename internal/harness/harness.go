// Package harness reproduces the paper's experiments: Table 2
// (reissue/persistent-request rates), Figure 4 (Snooping vs TokenB
// runtime and traffic), Figure 5 (Directory and Hammer vs TokenB
// runtime and traffic), and the §6 question 5 scalability
// microbenchmark. Each experiment has a structured-result function (for
// tests and benchmarks) and a printer that emits the paper-style rows.
//
// The experiments are expressed as declarative engine.Plan grids and
// executed on the parallel engine (see internal/engine); every grid
// point is an independent deterministic simulation, so results are
// identical at any parallelism. Component names in the grids — and the
// workload axis the per-workload experiments iterate — resolve through
// internal/registry, so experiments automatically cover workloads
// registered beyond the built-ins, and RunExperiment itself resolves
// experiment names through an ordered table rather than a switch.
package harness

import (
	"tokencoherence/internal/engine"
	"tokencoherence/internal/stats"
)

// Protocol names.
const (
	ProtoTokenB    = engine.ProtoTokenB
	ProtoSnooping  = engine.ProtoSnooping
	ProtoDirectory = engine.ProtoDirectory
	ProtoHammer    = engine.ProtoHammer
	ProtoTokenD    = engine.ProtoTokenD
	ProtoTokenM    = engine.ProtoTokenM

	// Hierarchical protocols (built from topology cluster metadata).
	ProtoDir2         = engine.ProtoDir2
	ProtoRegionFilter = engine.ProtoRegionFilter
)

// Topology names.
const (
	TopoTree  = engine.TopoTree
	TopoTorus = engine.TopoTorus
)

// Point is one simulation configuration.
type Point = engine.Point

// NoWarmup requests an explicitly cold start (zero warmup operations)
// where a zero Warmup would mean "unset, use the default".
const NoWarmup = engine.NoWarmup

// Run executes one point and returns its statistics. Token Coherence
// points are additionally audited for token conservation.
func Run(pt Point) (*stats.Run, error) { return engine.RunPoint(pt) }

// RunMetrics executes one point and additionally returns its metric
// snapshot — every named metric the machine, interconnect, protocol,
// and registered probes published.
func RunMetrics(pt Point) (*stats.Run, *stats.Snapshot, error) { return engine.RunPointMetrics(pt) }

// Options tunes experiment size; the zero value gives quick defaults.
type Options struct {
	// Ops per processor (default 4000).
	Ops int
	// Warmup ops per processor before measurement (default 2x Ops; set
	// NoWarmup for an explicitly cold-cache measurement — a plain zero
	// means "unset").
	Warmup int
	// Seeds to average over (default {1}).
	Seeds []uint64
	// Procs (default 16).
	Procs int
	// MaxProcs caps the largest system size the scaling experiment
	// sweeps (default 64, the paper's §6 endpoint; up to 256).
	MaxProcs int
	// Parallel bounds the worker pool that executes the experiment grid
	// (default 0 = one worker per CPU). Results do not depend on it.
	Parallel int
	// Islands splits each point across this many conservative-parallel
	// kernel islands (default 0 = serial kernel). Like Parallel, it is
	// an execution knob: results do not depend on it.
	Islands int
}

func (o Options) ops() int {
	if o.Ops == 0 {
		return 4000
	}
	return o.Ops
}

// warmup resolves the warmup axis: NoWarmup (negative) is explicitly
// cold, zero is unset (default 2x Ops).
func (o Options) warmup() int {
	if o.Warmup < 0 {
		return 0
	}
	if o.Warmup == 0 {
		return 2 * o.ops()
	}
	return o.Warmup
}

// planWarmup encodes warmup() for engine.Plan, where zero means "keep
// the variant's": an explicitly cold run becomes the NoWarmup sentinel.
func (o Options) planWarmup() int {
	if w := o.warmup(); w != 0 {
		return w
	}
	return engine.NoWarmup
}

func (o Options) maxProcs() int {
	if o.MaxProcs == 0 {
		return 64
	}
	return o.MaxProcs
}

func (o Options) seeds() []uint64 {
	if len(o.Seeds) == 0 {
		return []uint64{1}
	}
	return o.Seeds
}

func (o Options) procs() int {
	if o.Procs == 0 {
		return 16
	}
	return o.Procs
}

// engine returns the worker pool the experiments run on.
func (o Options) engine() engine.Engine {
	return engine.Engine{Workers: o.Parallel}
}

// plan wraps variants in a grid carrying the options' sizing, seeds and
// any extra axes the caller sets afterwards.
func (o Options) plan(variants []engine.Variant) engine.Plan {
	return engine.Plan{
		Variants: variants,
		Seeds:    o.seeds(),
		Ops:      o.ops(),
		Warmup:   o.planWarmup(),
		Procs:    o.procs(),
		Islands:  o.Islands,
	}
}
