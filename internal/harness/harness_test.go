package harness

import (
	"bytes"
	"strings"
	"testing"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/workload"
)

// testOpt keeps experiment tests fast; the shapes asserted below are
// robust at this size.
func testOpt() Options {
	return Options{Ops: 1200, Warmup: 3000, Seeds: []uint64{1}}
}

func testPoint(proto, topo, wl string) Point {
	return Point{Protocol: proto, Topo: topo, Workload: wl, Ops: 1200, Warmup: 3000, Seed: 1}
}

func TestRunRejectsUnknownProtocol(t *testing.T) {
	if _, err := Run(Point{Protocol: "nope", Topo: TopoTorus, Workload: "oltp"}); err == nil {
		t.Error("unknown protocol not rejected")
	}
}

func TestRunRejectsUnknownTopology(t *testing.T) {
	if _, err := Run(Point{Protocol: ProtoTokenB, Topo: "ring", Workload: "oltp"}); err == nil {
		t.Error("unknown topology not rejected")
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if _, err := Run(Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "nope"}); err == nil {
		t.Error("unknown workload not rejected")
	}
}

func TestEveryProtocolRunsEveryWorkload(t *testing.T) {
	protos := []struct{ proto, topo string }{
		{ProtoTokenB, TopoTorus},
		{ProtoTokenD, TopoTorus},
		{ProtoTokenM, TopoTorus},
		{ProtoSnooping, TopoTree},
		{ProtoDirectory, TopoTorus},
		{ProtoHammer, TopoTorus},
	}
	for _, p := range protos {
		for _, wl := range workload.Names() {
			p, wl := p, wl
			t.Run(p.proto+"/"+wl, func(t *testing.T) {
				t.Parallel()
				pt := testPoint(p.proto, p.topo, wl)
				pt.Ops = 600
				pt.Warmup = 1500
				run, err := Run(pt)
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
				if run.Misses.Issued == 0 {
					t.Error("no coherence misses — workload not exercising the protocol")
				}
				if run.Transactions == 0 {
					t.Error("no transactions completed")
				}
			})
		}
	}
}

// TestPaperShapeSnoopingVsTokenB asserts Figure 4a's qualitative result:
// TokenB on the torus outperforms snooping on the tree, while on the
// same tree snooping is at least as fast as TokenB.
func TestPaperShapeSnoopingVsTokenB(t *testing.T) {
	cpt := func(proto, topo string) float64 {
		run, err := Run(testPoint(proto, topo, "apache"))
		if err != nil {
			t.Fatalf("%s/%s: %v", proto, topo, err)
		}
		return run.CyclesPerTransaction()
	}
	tokenTorus := cpt(ProtoTokenB, TopoTorus)
	tokenTree := cpt(ProtoTokenB, TopoTree)
	snoopTree := cpt(ProtoSnooping, TopoTree)
	if tokenTorus >= snoopTree {
		t.Errorf("TokenB/torus (%.1f) not faster than Snooping/tree (%.1f)", tokenTorus, snoopTree)
	}
	// On the same fabric snooping has no reissues, so TokenB should not
	// be meaningfully faster (allow 5% noise).
	if tokenTree < snoopTree*0.95 {
		t.Errorf("TokenB/tree (%.1f) implausibly beats Snooping/tree (%.1f)", tokenTree, snoopTree)
	}
}

// TestPaperShapeDirectoryAndHammer asserts Figure 5a/5b's qualitative
// results: TokenB is fastest; Directory uses the least traffic; Hammer
// uses by far the most.
func TestPaperShapeDirectoryAndHammer(t *testing.T) {
	type res struct{ cpt, bpm float64 }
	get := func(proto string) res {
		run, err := Run(testPoint(proto, TopoTorus, "oltp"))
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		return res{run.CyclesPerTransaction(), run.BytesPerMiss()}
	}
	token := get(ProtoTokenB)
	dir := get(ProtoDirectory)
	ham := get(ProtoHammer)
	if token.cpt >= dir.cpt {
		t.Errorf("TokenB (%.1f cyc/txn) not faster than Directory (%.1f)", token.cpt, dir.cpt)
	}
	if token.cpt >= ham.cpt {
		t.Errorf("TokenB (%.1f cyc/txn) not faster than Hammer (%.1f)", token.cpt, ham.cpt)
	}
	if dir.bpm >= token.bpm {
		t.Errorf("Directory traffic (%.1f B/miss) not below TokenB (%.1f)", dir.bpm, token.bpm)
	}
	if ham.bpm <= token.bpm {
		t.Errorf("Hammer traffic (%.1f B/miss) not above TokenB (%.1f)", ham.bpm, token.bpm)
	}
}

// TestPaperShapePerfectDirectory asserts the grey-striped bars of
// Figure 5a: removing the DRAM directory lookup speeds Directory up, but
// TokenB stays ahead.
func TestPaperShapePerfectDirectory(t *testing.T) {
	// The TokenB-vs-perfect-directory margin is the finest comparison in
	// the figure (a few percent); short runs leave it inside seed noise,
	// so this test measures more operations than the coarser shapes.
	point := func(proto string) Point {
		pt := testPoint(proto, TopoTorus, "apache")
		pt.Ops = 4800
		return pt
	}
	dram, err := Run(point(ProtoDirectory))
	if err != nil {
		t.Fatal(err)
	}
	perfect := point(ProtoDirectory)
	perfect.PerfectDir = true
	fast, err := Run(perfect)
	if err != nil {
		t.Fatal(err)
	}
	token, err := Run(point(ProtoTokenB))
	if err != nil {
		t.Fatal(err)
	}
	if fast.CyclesPerTransaction() >= dram.CyclesPerTransaction() {
		t.Errorf("perfect directory (%.1f) not faster than DRAM directory (%.1f)",
			fast.CyclesPerTransaction(), dram.CyclesPerTransaction())
	}
	if token.CyclesPerTransaction() >= fast.CyclesPerTransaction() {
		t.Errorf("TokenB (%.1f) not faster than even the perfect directory (%.1f)",
			token.CyclesPerTransaction(), fast.CyclesPerTransaction())
	}
}

// TestPaperShapeUnlimitedBandwidth asserts that removing the bandwidth
// limit helps every protocol (contention exists) and helps Hammer most
// (it has the most traffic).
func TestPaperShapeUnlimitedBandwidth(t *testing.T) {
	speedup := func(proto string) float64 {
		lim, err := Run(testPoint(proto, TopoTorus, "apache"))
		if err != nil {
			t.Fatal(err)
		}
		pt := testPoint(proto, TopoTorus, "apache")
		pt.Unlimited = true
		inf, err := Run(pt)
		if err != nil {
			t.Fatal(err)
		}
		return lim.CyclesPerTransaction() / inf.CyclesPerTransaction()
	}
	tb := speedup(ProtoTokenB)
	hm := speedup(ProtoHammer)
	if tb < 1.0 {
		t.Errorf("unlimited bandwidth slowed TokenB down (speedup %.2f)", tb)
	}
	if hm < tb {
		t.Errorf("Hammer gains less from unlimited bandwidth (%.2f) than TokenB (%.2f)", hm, tb)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.Names()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(workload.Names()))
	}
	for _, r := range rows {
		total := r.NotReissued + r.ReissuedOnce + r.ReissuedMore + r.Persistent
		if total < 99.9 || total > 100.1 {
			t.Errorf("%s: fractions sum to %.2f%%", r.Workload, total)
		}
		if r.NotReissued < 90 {
			t.Errorf("%s: only %.1f%% first-try successes; paper reports ~97%%", r.Workload, r.NotReissued)
		}
		if r.ReissuedOnce > 10 {
			t.Errorf("%s: %.1f%% reissued once; reissues must be rare", r.Workload, r.ReissuedOnce)
		}
	}
}

func TestScalingShape(t *testing.T) {
	rows, err := Scaling(Options{Ops: 400, Warmup: 800}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 4, 8, 16
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// TokenB's broadcast traffic per miss must grow with system size
	// while Directory's stays roughly flat, so the ratio grows.
	if rows[0].TrafficRatio >= rows[len(rows)-1].TrafficRatio {
		t.Errorf("traffic ratio did not grow with system size: %.2f -> %.2f",
			rows[0].TrafficRatio, rows[len(rows)-1].TrafficRatio)
	}
	for _, r := range rows {
		// The new columns must be populated at every size: Hammer
		// broadcasts and collects acks, so it burns the most bandwidth;
		// snooping rides the ordered tree.
		if r.HammerPerMiss <= r.TokenBPerMiss {
			t.Errorf("%dp: Hammer traffic (%.1f B/miss) not above TokenB (%.1f)",
				r.Procs, r.HammerPerMiss, r.TokenBPerMiss)
		}
		if r.SnoopPerMiss <= 0 || r.SnoopCycles <= 0 {
			t.Errorf("%dp: snooping-on-tree column empty (%.1f B/miss, %.1f cyc/txn)",
				r.Procs, r.SnoopPerMiss, r.SnoopCycles)
		}
		if r.Dir2PerMiss <= 0 || r.Dir2Cycles <= 0 {
			t.Errorf("%dp: two-level directory column empty (%.1f B/miss, %.1f cyc/txn)",
				r.Procs, r.Dir2PerMiss, r.Dir2Cycles)
		}
		if r.RegionPerMiss <= 0 || r.RegionCycles <= 0 {
			t.Errorf("%dp: region-filter column empty (%.1f B/miss, %.1f cyc/txn)",
				r.Procs, r.RegionPerMiss, r.RegionCycles)
		}
	}
}

// TestScaling64Smoke is the CI smoke for large ordered-tree systems: the
// full scaling sweep — snooping on the multi-level tree included — must
// carry 64 processors within the -short budget. The snooping run doubles
// as the total-order proof at 64 nodes: the protocol is only correct on
// a fabric that delivers broadcasts in one global order, and its oracle
// audit fails loudly when that order breaks.
func TestScaling64Smoke(t *testing.T) {
	rows, err := Scaling(Options{Ops: 100, Warmup: 100}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // 4, 8, 16, 32, 64
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Procs != 64 {
		t.Fatalf("last row procs = %d, want 64", last.Procs)
	}
	if last.SnoopPerMiss <= 0 || last.SnoopCycles <= 0 {
		t.Errorf("snooping-on-tree empty at 64 procs (%.1f B/miss, %.1f cyc/txn)",
			last.SnoopPerMiss, last.SnoopCycles)
	}
	if last.TrafficRatio <= rows[0].TrafficRatio {
		t.Errorf("TokenB/Directory traffic ratio did not grow: %.2f at 4p -> %.2f at 64p",
			rows[0].TrafficRatio, last.TrafficRatio)
	}
}

// TestScaling256 drives the sweep to its 256-processor ceiling — four
// tree levels, a 16x16 torus — and is skipped in -short mode (the 64p
// smoke covers large trees there).
func TestScaling256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-processor sweep skipped in -short mode")
	}
	rows, err := Scaling(Options{Ops: 30, Warmup: 30}, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || rows[6].Procs != 256 {
		t.Fatalf("rows = %d (last procs %d), want 7 up to 256", len(rows), rows[len(rows)-1].Procs)
	}
	for _, r := range rows {
		if r.SnoopPerMiss <= 0 {
			t.Errorf("%dp: snooping-on-tree column empty", r.Procs)
		}
	}
}

func TestOptionsWarmupSentinel(t *testing.T) {
	// Zero means unset (2x Ops), NoWarmup means an explicitly cold
	// cache — the conflation that made cold-cache measurement
	// impossible is locked out here.
	if got := (Options{Ops: 500}).warmup(); got != 1000 {
		t.Errorf("unset warmup = %d, want 1000 (2x Ops)", got)
	}
	if got := (Options{Ops: 500, Warmup: 250}).warmup(); got != 250 {
		t.Errorf("explicit warmup = %d, want 250", got)
	}
	if got := (Options{Ops: 500, Warmup: NoWarmup}).warmup(); got != 0 {
		t.Errorf("NoWarmup warmup = %d, want 0", got)
	}
	// The engine plan keeps the distinction: explicit cold reaches the
	// jobs as zero warmup ops.
	plan := (Options{Ops: 500, Warmup: NoWarmup}).plan([]engine.Variant{
		{Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp"}},
	})
	jobs, err := plan.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Point.Warmup != 0 {
		t.Errorf("cold plan job warmup = %d, want 0", jobs[0].Point.Warmup)
	}
}

func TestRunExperimentPrints(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "table2", Options{Ops: 400, Warmup: 1000}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "apache", "oltp", "specjbb", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := RunExperiment(&bytes.Buffer{}, "nope", Options{}); err == nil {
		t.Error("unknown experiment not rejected")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run1, err := Run(testPoint(ProtoTokenB, TopoTorus, "specjbb"))
	if err != nil {
		t.Fatal(err)
	}
	run2, err := Run(testPoint(ProtoTokenB, TopoTorus, "specjbb"))
	if err != nil {
		t.Fatal(err)
	}
	if run1.Elapsed != run2.Elapsed || run1.Traffic.TotalBytes() != run2.Traffic.TotalBytes() {
		t.Errorf("identical points diverged: %v/%v bytes %d/%d",
			run1.Elapsed, run2.Elapsed, run1.Traffic.TotalBytes(), run2.Traffic.TotalBytes())
	}
}

func TestSeedsChangeResults(t *testing.T) {
	pt := testPoint(ProtoTokenB, TopoTorus, "specjbb")
	run1, err := Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	pt.Seed = 2
	run2, err := Run(pt)
	if err != nil {
		t.Fatal(err)
	}
	if run1.Elapsed == run2.Elapsed {
		t.Error("different seeds produced identical elapsed time (suspicious)")
	}
}

func TestCustomGeneratorAndMutate(t *testing.T) {
	mutated := false
	pt := Point{
		Protocol: ProtoTokenB, Topo: TopoTorus,
		Gen: workload.NewUniform(256, 0.4, 4*sim.Nanosecond, 8),
		Ops: 400, Procs: 8, Seed: 1,
		Mutate: func(c *machine.Config) {
			mutated = true
			c.MSHRs = 4
		},
	}
	if _, err := Run(pt); err != nil {
		t.Fatal(err)
	}
	if !mutated {
		t.Error("Mutate hook not invoked")
	}
}
