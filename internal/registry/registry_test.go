package registry

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tokencoherence/internal/core"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want panic containing %q", want)
		}
		if s := fmt.Sprint(r); s != want {
			t.Fatalf("panic = %q, want %q", s, want)
		}
	}()
	f()
}

func TestTableRejectsEmptyAndDuplicateNames(t *testing.T) {
	tb := newTable[int]("widget")
	mustPanic(t, `registry: empty widget name`, func() { tb.register("", 1) })
	tb.register("a", 1)
	mustPanic(t, `registry: duplicate widget "a"`, func() { tb.register("a", 2) })
	if v, ok := tb.lookup("a"); !ok || v != 1 {
		t.Errorf("duplicate registration clobbered the entry: %v, %v", v, ok)
	}
}

func TestTableNamesAreRegistrationOrdered(t *testing.T) {
	tb := newTable[int]("widget")
	// Deliberately non-alphabetical: Names must preserve registration
	// order, not sort.
	for i, name := range []string{"zeta", "alpha", "mid"} {
		tb.register(name, i)
	}
	want := []string{"zeta", "alpha", "mid"}
	for i := 0; i < 3; i++ {
		if got := tb.list(); !reflect.DeepEqual(got, want) {
			t.Fatalf("list() = %v, want %v", got, want)
		}
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// table.
	got := tb.list()
	got[0] = "mutated"
	if again := tb.list(); !reflect.DeepEqual(again, want) {
		t.Errorf("list() exposed internal state: %v", again)
	}
}

// TestTableConcurrentAccess exercises Lookup/Names racing with Register;
// CI runs it under -race.
func TestTableConcurrentAccess(t *testing.T) {
	tb := newTable[int]("widget")
	tb.register("seed", 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tb.register(fmt.Sprintf("w%d-%d", w, i), i)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, ok := tb.lookup("seed"); !ok {
					t.Error("seed entry disappeared")
					return
				}
				_ = tb.list()
			}
		}()
	}
	wg.Wait()
	if got := len(tb.list()); got != 1+4*200 {
		t.Errorf("table holds %d entries, want %d", got, 1+4*200)
	}
}

func TestBuiltinRegistrations(t *testing.T) {
	wantProtos := []string{"tokenb", "snooping", "directory", "hammer", "tokend", "tokenm"}
	if got := ProtocolNames(); !hasPrefix(got, wantProtos) {
		t.Errorf("ProtocolNames() = %v, want prefix %v", got, wantProtos)
	}
	wantPolicies := []string{"tokenb", "tokend", "tokenm"}
	if got := PolicyNames(); !hasPrefix(got, wantPolicies) {
		t.Errorf("PolicyNames() = %v, want prefix %v", got, wantPolicies)
	}
	wantTopos := []string{"torus", "tree"}
	if got := TopologyNames(); !hasPrefix(got, wantTopos) {
		t.Errorf("TopologyNames() = %v, want prefix %v", got, wantTopos)
	}
	wantWls := []string{"apache", "oltp", "specjbb", "barnes"}
	if got := WorkloadNames(); !hasPrefix(got, wantWls) {
		t.Errorf("WorkloadNames() = %v, want prefix %v", got, wantWls)
	}

	// Only snooping demands a totally-ordered fabric; only the tree
	// provides one.
	for _, name := range wantProtos {
		p, ok := LookupProtocol(name)
		if !ok || p.Build == nil {
			t.Errorf("protocol %q missing or has no Build", name)
			continue
		}
		if p.RequiresOrdered != (name == "snooping") {
			t.Errorf("protocol %q RequiresOrdered = %v", name, p.RequiresOrdered)
		}
	}
	for _, name := range wantTopos {
		tp, ok := LookupTopology(name)
		if !ok || tp.New == nil {
			t.Errorf("topology %q missing or has no New", name)
			continue
		}
		if tp.Ordered != (name == "tree") {
			t.Errorf("topology %q Ordered = %v", name, tp.Ordered)
		}
		if built := tp.New(16); built.Ordered() != tp.Ordered {
			t.Errorf("topology %q: built Ordered()=%v, registered %v", name, built.Ordered(), tp.Ordered)
		}
	}
}

// hasPrefix reports whether got begins with want. Other tests in the
// binary may append registrations, so the built-in lists are asserted
// as a prefix, which also pins their deterministic order.
func hasPrefix(got, want []string) bool {
	if len(got) < len(want) {
		return false
	}
	return reflect.DeepEqual(got[:len(want)], want)
}

func TestDefaultTopologyFollowsOrderingCapability(t *testing.T) {
	unordered, ok := DefaultTopology(false)
	if !ok || unordered.Name != "torus" {
		t.Errorf("DefaultTopology(false) = %q, %v; want torus", unordered.Name, ok)
	}
	ordered, ok := DefaultTopology(true)
	if !ok || ordered.Name != "tree" {
		t.Errorf("DefaultTopology(true) = %q, %v; want tree", ordered.Name, ok)
	}
	if got := OrderedTopologyNames(); len(got) == 0 || got[0] != "tree" {
		t.Errorf("OrderedTopologyNames() = %v, want tree first", got)
	}
}

func TestRegisterRejectsNilFactories(t *testing.T) {
	mustPanic(t, `registry: protocol "nilbuild" has no Build function`, func() {
		RegisterProtocol(Protocol{Name: "nilbuild"})
	})
	mustPanic(t, `registry: policy "nilnew" has no New function`, func() {
		RegisterPolicy(TokenPolicy{Name: "nilnew"})
	})
	mustPanic(t, `registry: topology "nilnew" has no New function`, func() {
		RegisterTopology(Topology{Name: "nilnew"})
	})
	mustPanic(t, `registry: workload "nilnew" has no New function`, func() {
		RegisterWorkload(Workload{Name: "nilnew"})
	})
	mustPanic(t, `registry: probe "nilnew" has no New function`, func() {
		RegisterProbe(Probe{Name: "nilnew"})
	})
}

// TestBuiltinWorkloadsCarryParams pins the facade's parameter lookup
// path: every built-in workload registers its Params alongside its
// generator factory.
func TestBuiltinWorkloadsCarryParams(t *testing.T) {
	for _, name := range []string{"apache", "oltp", "specjbb", "barnes"} {
		wl, ok := LookupWorkload(name)
		if !ok {
			t.Fatalf("builtin workload %q missing", name)
		}
		if wl.Params == nil || wl.Params.Name != name {
			t.Errorf("workload %q Params = %+v", name, wl.Params)
		}
	}
}

// TestProbeRegistration pins the probe table's ordering and the
// attach-time contract (New receives the run's MetricSet).
func TestProbeRegistration(t *testing.T) {
	names := []string{"probe-b-test", "probe-a-test"}
	for _, n := range names {
		n := n
		RegisterProbe(Probe{
			Name: n,
			New: func(ms *stats.MetricSet) *stats.Observer {
				ms.Counter(stats.Desc{Name: "metric_" + n})
				return nil
			},
		})
	}
	got := ProbeNames()
	// Registration order, not lexical order.
	bi, ai := -1, -1
	for i, n := range got {
		switch n {
		case "probe-b-test":
			bi = i
		case "probe-a-test":
			ai = i
		}
	}
	if bi == -1 || ai == -1 || bi > ai {
		t.Fatalf("ProbeNames() = %v, want probe-b-test before probe-a-test", got)
	}
	ms := stats.NewMetricSet()
	for _, p := range Probes() {
		if p.Name == "probe-b-test" || p.Name == "probe-a-test" {
			p.New(ms)
		}
	}
	for _, want := range []string{"metric_probe-b-test", "metric_probe-a-test"} {
		if _, ok := ms.Lookup(want); !ok {
			t.Errorf("probe did not register %q (have %v)", want, ms.Names())
		}
	}
	mustPanic(t, `registry: duplicate probe "probe-b-test"`, func() {
		RegisterProbe(Probe{Name: "probe-b-test", New: func(ms *stats.MetricSet) *stats.Observer { return nil }})
	})
}

// TestRegisterPolicyCollidingWithProtocolLeavesRegistryUntouched pins
// the cross-table atomicity of RegisterPolicy: a policy whose name is
// already taken in the protocol table must panic without recording the
// policy, so the registry never lists a policy that does not back the
// protocol of the same name.
func TestRegisterPolicyCollidingWithProtocolLeavesRegistryUntouched(t *testing.T) {
	RegisterProtocol(Protocol{
		Name: "collider",
		Build: func(sys *machine.System) ([]machine.Controller, func() error) {
			return nil, nil
		},
	})
	mustPanic(t, `registry: duplicate protocol "collider"`, func() {
		RegisterPolicy(TokenPolicy{Name: "collider", New: func() core.Policy { return core.NewBroadcastPolicy() }})
	})
	if _, ok := LookupPolicy("collider"); ok {
		t.Error("failed RegisterPolicy left a policy entry behind")
	}
}

// TestRegisteredWorkloadBuildsFreshGenerators pins the contract plans
// rely on: every New call returns an independent generator instance.
func TestRegisteredWorkloadBuildsFreshGenerators(t *testing.T) {
	wl, ok := LookupWorkload("oltp")
	if !ok {
		t.Fatal("oltp not registered")
	}
	a, b := wl.New(4), wl.New(4)
	if a == nil || b == nil {
		t.Fatal("workload built nil generator")
	}
	if a == machine.Generator(b) {
		t.Error("New returned the same generator twice")
	}
}

// TestBuiltinTopologySizing pins the constructors behind the entries:
// both fabrics now carry 4..256 processors (the tree multi-level beyond
// 16), and both advertise a Check that rejects sizes New would panic on
// — before construction, so plan expansion can fail with a clear error.
func TestBuiltinTopologySizing(t *testing.T) {
	torus, _ := LookupTopology("torus")
	tree, _ := LookupTopology("tree")
	for _, n := range []int{4, 16, 64, 256} {
		if got := torus.New(n).Nodes(); got != n {
			t.Errorf("torus.New(%d).Nodes() = %d", n, got)
		}
		if got := tree.New(n).Nodes(); got != n {
			t.Errorf("tree.New(%d).Nodes() = %d", n, got)
		}
		if err := torus.Check(n); err != nil {
			t.Errorf("torus.Check(%d) = %v", n, err)
		}
		if err := tree.Check(n); err != nil {
			t.Errorf("tree.Check(%d) = %v", n, err)
		}
	}
	// The tree is capped where the interconnect's O(n^2) path cache and
	// multicast slabs stop being cheap; the torus rejects primes (dead
	// North/South links) and sub-2x2 sizes.
	if err := tree.Check(topology.MaxTreeNodes + 1); err == nil {
		t.Error("tree.Check(257) = nil, want error")
	}
	for _, n := range []int{3, 7} {
		if err := torus.Check(n); err == nil {
			t.Errorf("torus.Check(%d) = nil, want error", n)
		}
	}
}

// TestProtocolCapabilityAnnotations pins the -list surface both CLIs
// print: capability tags mark the ordered-fabric and scope-aware
// protocols, and the clustered-topology listing feeds the engine's
// valid-pairs errors.
func TestProtocolCapabilityAnnotations(t *testing.T) {
	cases := map[string][]string{
		"tokenb":       nil,
		"snooping":     {"ordered-fabric"},
		"dir2":         {"scoped"},
		"regionfilter": {"scoped"},
	}
	for name, want := range cases {
		got := ProtocolTags(name)
		if len(got) != len(want) {
			t.Errorf("ProtocolTags(%q) = %v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("ProtocolTags(%q) = %v, want %v", name, got, want)
			}
		}
	}
	annotated := strings.Join(AnnotatedProtocolNames(), ", ")
	for _, want := range []string{"snooping[ordered-fabric]", "dir2[scoped]", "regionfilter[scoped]"} {
		if !strings.Contains(annotated, want) {
			t.Errorf("annotated listing %q missing %q", annotated, want)
		}
	}
	clustered := ClusteredTopologyNames()
	if len(clustered) < 2 || clustered[0] != "torus" || clustered[1] != "tree" {
		t.Errorf("ClusteredTopologyNames() = %v, want torus, tree prefix", clustered)
	}
}
