// Package registry is the simulator's component registry: the single
// place where protocols, token performance policies, topologies, and
// workloads are published by name so that the engine, the sweeps, the
// experiment harness, and the commands can resolve every component of a
// simulation point without hard-coding its construction.
//
// The registry exists because of the paper's central thesis — the
// decoupling of correctness from performance. The token-counting
// substrate guarantees safety and starvation freedom no matter where
// transient requests are sent, so performance policies, interconnect
// fabrics, and workloads are free design choices (§7). Opening those
// choices behind Register/Lookup tables means a new destination-set
// predictor or a new fabric plugs in without editing the engine: see
// RegisterPolicy, which raises a user-written core.Policy to a complete
// runnable protocol on the unmodified substrate.
//
// Every table has the same contract:
//
//   - Register panics on an empty or duplicate name (component wiring is
//     a programming error, not a runtime condition).
//   - Lookup is safe for concurrent use with other Lookups and Registers.
//   - Names returns the names in registration order, which is
//     deterministic: the built-ins register in a fixed order (see
//     builtin.go) and user registrations append after them. Experiment
//     output that iterates Names is therefore reproducible byte for byte.
//
// Registry resolution happens once per simulation point (engine.RunPoint
// resolves, then simulates); nothing on the discrete-event hot path ever
// consults a registry.
package registry

import (
	"fmt"
	"strings"
	"sync"

	"tokencoherence/internal/core"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/workload"
)

// table is the shared registry mechanism: a named-component map with a
// registration-order name list behind one RWMutex.
type table[T any] struct {
	kind string

	mu    sync.RWMutex
	names []string
	m     map[string]T
}

func newTable[T any](kind string) *table[T] {
	return &table[T]{kind: kind, m: make(map[string]T)}
}

func (t *table[T]) register(name string, v T) {
	if name == "" {
		panic(fmt.Sprintf("registry: empty %s name", t.kind))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.m[name]; dup {
		panic(fmt.Sprintf("registry: duplicate %s %q", t.kind, name))
	}
	t.m[name] = v
	t.names = append(t.names, name)
}

func (t *table[T]) lookup(name string) (T, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.m[name]
	return v, ok
}

// list returns the registered names in registration order.
func (t *table[T]) list() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// first returns the first registered entry satisfying ok.
func (t *table[T]) first(ok func(T) bool) (T, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, name := range t.names {
		if v := t.m[name]; ok(v) {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// --- Protocols ----------------------------------------------------------

// Protocol describes one registered coherence protocol: how to construct
// its controllers on a machine, and the capabilities it demands of the
// interconnect.
type Protocol struct {
	// Name is the identifier Point.Protocol selects.
	Name string

	// RequiresOrdered marks protocols that are only correct on a
	// totally-ordered broadcast fabric (traditional snooping). The engine
	// rejects points that pair such a protocol with an unordered topology
	// and defaults their empty topology to an ordered one.
	RequiresOrdered bool

	// RequiresClusters marks scope-aware protocols that need a topology
	// with cluster metadata (hierarchical coherence realms: the
	// two-level directory, region-filtered token policies). The engine
	// rejects points pairing such a protocol with a topology whose
	// registration does not declare Clustered.
	RequiresClusters bool

	// Build constructs the protocol's per-node controllers on sys. The
	// returned audit, if non-nil, is run after the simulation to verify
	// the protocol's global end-of-run invariants (Token Coherence checks
	// token conservation).
	Build func(sys *machine.System) (ctrls []machine.Controller, audit func() error)
}

var protocols = newTable[Protocol]("protocol")

// RegisterProtocol publishes a protocol. It panics if p.Name is empty or
// already registered, or if p.Build is nil.
func RegisterProtocol(p Protocol) {
	if p.Build == nil {
		panic(fmt.Sprintf("registry: protocol %q has no Build function", p.Name))
	}
	protocols.register(p.Name, p)
}

// LookupProtocol returns the named protocol.
func LookupProtocol(name string) (Protocol, bool) { return protocols.lookup(name) }

// ProtocolNames lists the registered protocols in registration order.
func ProtocolNames() []string { return protocols.list() }

// --- Token performance policies -----------------------------------------

// TokenPolicy describes one registered token performance policy: a
// destination-set selection strategy for the Token Coherence substrate
// (the TokenB/TokenD/TokenM design space of §7). Registering a policy
// also registers the protocol it induces, so a policy name is directly
// runnable as a Point.Protocol.
type TokenPolicy struct {
	// Name is both the policy identifier and the induced protocol's name.
	Name string

	// Hints enables the home memory's soft-state hint tracking, which
	// redirects home-bound transient requests to probable token holders
	// (used by TokenD and TokenM).
	Hints bool

	// Scoped marks a scope-aware policy (one implementing
	// core.ScopedPolicy): the builder binds each cache's cluster realm
	// at construction, so the induced protocol requires a topology with
	// cluster metadata.
	Scoped bool

	// New builds one fresh policy instance; every cache controller gets
	// its own, so stateful predictors need no locking.
	New func() core.Policy
}

var policies = newTable[TokenPolicy]("policy")

// RegisterPolicy publishes a token performance policy and the protocol
// it induces: the full correctness substrate (token-counting caches and
// memories, persistent-request arbiters, conservation audit) steered by
// the policy's destination sets. This is the paper's decoupling as an
// API: a user-written predictor becomes a runnable protocol without
// touching any protocol machinery.
func RegisterPolicy(p TokenPolicy) {
	if p.New == nil {
		panic(fmt.Sprintf("registry: policy %q has no New function", p.Name))
	}
	// A policy claims its name in the protocol table too; check that
	// table before mutating either, so a collision with an existing
	// protocol leaves the registry untouched.
	if _, dup := protocols.lookup(p.Name); dup {
		panic(fmt.Sprintf("registry: duplicate protocol %q", p.Name))
	}
	policies.register(p.Name, p)
	RegisterProtocol(Protocol{
		Name:             p.Name,
		RequiresClusters: p.Scoped,
		Build: func(sys *machine.System) ([]machine.Controller, func() error) {
			ts := core.WithPolicy(p.New, p.Hints)(sys)
			return ts.Controllers(), ts.Audit
		},
	})
}

// LookupPolicy returns the named policy.
func LookupPolicy(name string) (TokenPolicy, bool) { return policies.lookup(name) }

// PolicyNames lists the registered policies in registration order.
func PolicyNames() []string { return policies.list() }

// --- Topologies ---------------------------------------------------------

// Topology describes one registered interconnect fabric.
type Topology struct {
	// Name is the identifier Point.Topo selects.
	Name string

	// Ordered declares whether the fabric delivers broadcasts in a total
	// order. It must match the built topology's Ordered() method; the
	// engine verifies the two agree and uses this flag to pair protocols
	// with fabrics before construction.
	Ordered bool

	// Clustered declares that the fabric's topologies expose cluster
	// metadata (topology.Clustered): natural cluster boundaries that
	// scope-aware protocols build their hierarchical realms from. Both
	// built-ins declare it (tree root-child subtrees, torus rows).
	Clustered bool

	// New builds the fabric for procs processor nodes.
	New func(procs int) topology.Topology

	// Check optionally validates a processor count before construction.
	// The engine consults it at plan-expansion time (Point.Validate), so
	// sizes New would panic on fail early with a clear error instead of
	// mid-run. Nil means every size New accepts.
	Check func(procs int) error
}

var topologies = newTable[Topology]("topology")

// RegisterTopology publishes a topology. It panics if t.Name is empty or
// already registered, or if t.New is nil.
func RegisterTopology(t Topology) {
	if t.New == nil {
		panic(fmt.Sprintf("registry: topology %q has no New function", t.Name))
	}
	topologies.register(t.Name, t)
}

// LookupTopology returns the named topology.
func LookupTopology(name string) (Topology, bool) { return topologies.lookup(name) }

// TopologyNames lists the registered topologies in registration order.
func TopologyNames() []string { return topologies.list() }

// DefaultTopology returns the first registered topology a protocol with
// the given ordering requirement can run on: protocols that require a
// total order get the first ordered fabric, all others get the first
// fabric outright. With the built-ins this resolves to the paper's
// pairings — snooping defaults to the tree, everything else to the
// torus.
func DefaultTopology(requiresOrdered bool) (Topology, bool) {
	return topologies.first(func(t Topology) bool {
		return !requiresOrdered || t.Ordered
	})
}

// OrderedTopologyNames lists the registered totally-ordered fabrics, for
// "valid pairs" diagnostics.
func OrderedTopologyNames() []string {
	var out []string
	for _, name := range topologies.list() {
		if t, ok := topologies.lookup(name); ok && t.Ordered {
			out = append(out, name)
		}
	}
	return out
}

// ClusteredTopologyNames lists the registered fabrics exposing cluster
// metadata, for "valid pairs" diagnostics on scope-aware protocols.
func ClusteredTopologyNames() []string {
	var out []string
	for _, name := range topologies.list() {
		if t, ok := topologies.lookup(name); ok && t.Clustered {
			out = append(out, name)
		}
	}
	return out
}

// ProtocolTags reports the named protocol's capability tags for listing
// surfaces: "ordered-fabric" for protocols requiring a totally-ordered
// interconnect, "scoped" for scope-aware protocols requiring cluster
// metadata. Unknown names and protocols with no special requirements
// report none.
func ProtocolTags(name string) []string {
	p, ok := protocols.lookup(name)
	if !ok {
		return nil
	}
	var tags []string
	if p.RequiresOrdered {
		tags = append(tags, "ordered-fabric")
	}
	if p.RequiresClusters {
		tags = append(tags, "scoped")
	}
	return tags
}

// AnnotatedProtocolNames lists the registered protocols in registration
// order, each suffixed with its capability tags in brackets (e.g.
// "snooping[ordered-fabric]", "dir2[scoped]"), for -list surfaces.
func AnnotatedProtocolNames() []string {
	names := protocols.list()
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = name
		if tags := ProtocolTags(name); len(tags) > 0 {
			out[i] = name + "[" + strings.Join(tags, ",") + "]"
		}
	}
	return out
}

// --- Workloads ----------------------------------------------------------

// Workload describes one registered memory-reference workload.
type Workload struct {
	// Name is the identifier Point.Workload selects.
	Name string

	// New builds a fresh generator for procs processors. Generators carry
	// mutable per-processor state, so every simulation point gets its own.
	New func(procs int) machine.Generator

	// Params optionally carries the synthetic-workload parameters behind
	// New, so parameter-inspection surfaces (the facade's Workload
	// function) resolve through the registry like every lookup. Nil marks
	// an opaque generator factory.
	Params *workload.Params
}

var workloads = newTable[Workload]("workload")

// RegisterWorkload publishes a workload. It panics if w.Name is empty or
// already registered, or if w.New is nil.
func RegisterWorkload(w Workload) {
	if w.New == nil {
		panic(fmt.Sprintf("registry: workload %q has no New function", w.Name))
	}
	workloads.register(w.Name, w)
}

// LookupWorkload returns the named workload.
func LookupWorkload(name string) (Workload, bool) { return workloads.lookup(name) }

// WorkloadNames lists the registered workloads in registration order
// (the paper's three commercial workloads first, then barnes, then any
// user registrations).
func WorkloadNames() []string { return workloads.list() }

// --- Probes -------------------------------------------------------------

// Probe describes one registered measurement probe. Probes are
// cross-cutting: unlike the components above, which a Point selects by
// name, every registered probe attaches to every simulation the engine
// runs. New is called once per simulation point with the run's MetricSet;
// the probe registers the metrics it derives (counters, gauges,
// histograms, derived values) and returns an Observer subscribing to the
// events it needs — or nil, for probes that only re-derive existing
// measurements. Metrics the probe registers reset automatically at the
// warmup boundary. With no probes registered — the default — observers
// stay nil and the simulation hot path is untouched.
type Probe struct {
	// Name identifies the probe in Components listings.
	Name string

	// New attaches the probe to one run. It must not retain state across
	// calls: the engine runs points in parallel, and each call's metrics
	// and observer belong to one simulation.
	New func(ms *stats.MetricSet) *stats.Observer
}

var probes = newTable[Probe]("probe")

// RegisterProbe publishes a probe. It panics if p.Name is empty or
// already registered, or if p.New is nil.
func RegisterProbe(p Probe) {
	if p.New == nil {
		panic(fmt.Sprintf("registry: probe %q has no New function", p.Name))
	}
	probes.register(p.Name, p)
}

// Probes lists the registered probes in registration order.
func Probes() []Probe {
	var out []Probe
	for _, name := range probes.list() {
		if p, ok := probes.lookup(name); ok {
			out = append(out, p)
		}
	}
	return out
}

// ProbeNames lists the registered probe names in registration order.
func ProbeNames() []string { return probes.list() }
