package registry

import (
	"tokencoherence/internal/core"
	"tokencoherence/internal/directory"
	"tokencoherence/internal/hammer"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/snooping"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/workload"
)

// init publishes the built-in components in a fixed order, so the
// registries' deterministic Names() listings match the historical
// protocol/topology/workload orderings the experiment tables and goldens
// were produced with.
func init() {
	// Topologies: the torus first (the default fabric for unordered
	// protocols), then the ordered broadcast tree.
	RegisterTopology(Topology{
		Name:      "torus",
		Ordered:   false,
		Clustered: true, // rows
		New:       func(procs int) topology.Topology { return topology.NewTorusFor(procs) },
		Check:     topology.CheckTorusFor,
	})
	RegisterTopology(Topology{
		Name:      "tree",
		Ordered:   true,
		Clustered: true, // root-child subtrees
		New:       func(procs int) topology.Topology { return topology.NewTree(procs) },
		Check:     func(procs int) error { return topology.CheckTree(procs, topology.TreeFanout) },
	})

	// Protocols, in the order the engine historically enumerated them:
	// tokenb, snooping, directory, hammer, tokend, tokenm. The three
	// Token Coherence variants are registered as policies, which induces
	// their protocol entries on the shared substrate.
	RegisterPolicy(TokenPolicy{
		Name: "tokenb",
		New:  func() core.Policy { return core.NewBroadcastPolicy() },
	})
	RegisterProtocol(Protocol{
		Name:            "snooping",
		RequiresOrdered: true,
		Build: func(sys *machine.System) ([]machine.Controller, func() error) {
			return snooping.Build(sys).Controllers(), nil
		},
	})
	RegisterProtocol(Protocol{
		Name: "directory",
		Build: func(sys *machine.System) ([]machine.Controller, func() error) {
			return directory.Build(sys).Controllers(), nil
		},
	})
	RegisterProtocol(Protocol{
		Name: "hammer",
		Build: func(sys *machine.System) ([]machine.Controller, func() error) {
			return hammer.Build(sys).Controllers(), nil
		},
	})
	RegisterPolicy(TokenPolicy{
		Name:  "tokend",
		Hints: true,
		New:   func() core.Policy { return core.NewHomePolicy() },
	})
	RegisterPolicy(TokenPolicy{
		Name:  "tokenm",
		Hints: true,
		New:   func() core.Policy { return core.NewPredictPolicy() },
	})

	// Hierarchical protocols append after the historical six, so every
	// existing Names() listing keeps its prefix. The two-level directory
	// and the region-filtered token policy both build their realms from
	// topology cluster metadata.
	RegisterProtocol(Protocol{
		Name:             "dir2",
		RequiresClusters: true,
		Build: func(sys *machine.System) ([]machine.Controller, func() error) {
			s, err := directory.Build2(sys)
			if err != nil {
				// Engine validation rejects clusterless topologies before
				// construction; reaching this is a wiring error.
				panic(err)
			}
			return s.Controllers(), nil
		},
	})
	RegisterPolicy(TokenPolicy{
		Name:   "regionfilter",
		Scoped: true,
		New:    func() core.Policy { return core.NewRegionFilterPolicy() },
	})

	// Workloads: the paper's three commercial mixes in paper order, then
	// the scientific barnes mix, exactly as workload.Names() lists them.
	for _, name := range workload.Names() {
		params, err := workload.Commercial(name)
		if err != nil {
			panic(err)
		}
		p := params
		RegisterWorkload(Workload{
			Name:   name,
			New:    func(procs int) machine.Generator { return workload.NewGenerator(p, procs) },
			Params: &p,
		})
	}
}
