package topology

import (
	"fmt"

	"tokencoherence/internal/msg"
)

// Partitioned is implemented by topologies that expose their link graph
// as a set of actors (processor nodes plus switches) so the simulation
// can be partitioned into parallel islands. Every directed link has a
// tail actor that owns its transmission state (serialization queue,
// traffic counter) and a head actor that receives from it; the
// conservative parallel kernel runs each island's actors on one
// goroutine and uses the minimum cross-island link latency as its
// lookahead window (see sim.Cluster).
type Partitioned interface {
	Topology
	// NumActors reports the total actor count: Nodes() leaf processors
	// first (actor i == node i), then switches.
	NumActors() int
	// LinkTail reports the actor transmitting on link l.
	LinkTail(l LinkID) int
	// LinkHead reports the actor receiving from link l.
	LinkHead(l LinkID) int
	// ActorLeaf reports a representative processor node for actor a:
	// itself for leaves, the first covered leaf for switches. Actors
	// are partitioned by assigning their representative's island.
	ActorLeaf(a int) int
}

// PartitionActors assigns every actor of t to one of islands islands by
// contiguous leaf ranges: node i goes to island i*islands/Nodes(), and
// each switch follows its first covered leaf, so subtree- and row-
// aligned partitions fall out naturally for the built-in fabrics. It
// returns the assignment indexed by actor and the cut weight (the
// number of directed links whose tail and head land on different
// islands — every cut link is a barrier-crossing message path).
func PartitionActors(t Partitioned, islands int) (assign []int32, cut int) {
	n := t.Nodes()
	if islands < 1 || islands > n {
		panic(fmt.Sprintf("topology: %d islands for %d nodes", islands, n))
	}
	assign = make([]int32, t.NumActors())
	for a := range assign {
		assign[a] = int32(t.ActorLeaf(a) * islands / n)
	}
	for l := 0; l < t.NumLinks(); l++ {
		if assign[t.LinkTail(LinkID(l))] != assign[t.LinkHead(LinkID(l))] {
			cut++
		}
	}
	return assign, cut
}

// Torus: every actor is a node; link n*4+dir runs from node n to its
// grid neighbor in direction dir.

func (t *Torus) NumActors() int        { return t.Nodes() }
func (t *Torus) LinkTail(l LinkID) int { return int(l) / numDirs }
func (t *Torus) ActorLeaf(a int) int   { return a }

func (t *Torus) LinkHead(l LinkID) int {
	x, y := t.coord(msg.NodeID(int(l) / numDirs))
	switch int(l) % numDirs {
	case dirEast:
		x = (x + 1) % t.w
	case dirWest:
		x = (x - 1 + t.w) % t.w
	case dirSouth:
		y = (y + 1) % t.h
	default: // dirNorth
		y = (y - 1 + t.h) % t.h
	}
	return int(t.node(x, y))
}

// Tree actors: n leaves, then the incoming switch tiers (levels 1 to
// levels-1, bottom up), then the outgoing switch tiers mirrored, then
// the root — n + Switches() actors in total.

// switchBase reports the actor index of the first tier-l switch of the
// up (incoming) or down (outgoing) column.
func (t *Tree) switchBase(l int, down bool) int {
	base := t.n
	if down {
		for m := 1; m < t.levels; m++ {
			base += t.width[m]
		}
	}
	for m := 1; m < l; m++ {
		base += t.width[m]
	}
	return base
}

func (t *Tree) NumActors() int { return t.n + t.Switches() }

func (t *Tree) rootActor() int { return t.NumActors() - 1 }

// linkBank resolves a link ID to (level, index within bank, up/down).
func (t *Tree) linkBank(l LinkID) (level, idx int, up bool) {
	id := int(l)
	for lv := 0; lv < t.levels; lv++ {
		if id >= t.upOff[lv] && id < t.upOff[lv]+t.width[lv] {
			return lv, id - t.upOff[lv], true
		}
		if id >= t.downOff[lv] && id < t.downOff[lv]+t.width[lv] {
			return lv, id - t.downOff[lv], false
		}
	}
	panic(fmt.Sprintf("topology: link %d out of range", id))
}

// tierActor reports the actor of tier-lv entity i in the up or down
// column: a leaf at tier 0, the root at the top tier, a switch between.
func (t *Tree) tierActor(lv, i int, down bool) int {
	switch {
	case lv == 0:
		return i
	case lv == t.levels:
		return t.rootActor()
	default:
		return t.switchBase(lv, down) + i
	}
}

func (t *Tree) LinkTail(l LinkID) int {
	lv, i, up := t.linkBank(l)
	if up {
		return t.tierActor(lv, i, false) // up-column tier-lv entity i
	}
	return t.tierActor(lv+1, i/t.fanout, true) // down-column parent switch
}

func (t *Tree) LinkHead(l LinkID) int {
	lv, i, up := t.linkBank(l)
	if up {
		return t.tierActor(lv+1, i/t.fanout, false) // up-column parent switch
	}
	return t.tierActor(lv, i, true) // down-column tier-lv entity i
}

func (t *Tree) ActorLeaf(a int) int {
	if a < t.n {
		return a
	}
	if a == t.rootActor() {
		return 0
	}
	s := a - t.n
	for pass := 0; pass < 2; pass++ {
		for lv := 1; lv < t.levels; lv++ {
			if s < t.width[lv] {
				return s * t.pow[lv] // first leaf under this switch
			}
			s -= t.width[lv]
		}
	}
	panic(fmt.Sprintf("topology: actor %d out of range", a))
}
