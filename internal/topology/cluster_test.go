package topology

import (
	"testing"

	"tokencoherence/internal/msg"
)

// clusteredCases enumerates the builtin Clustered topologies across the
// sizes the experiments sweep.
func clusteredCases(t *testing.T) map[string]Clustered {
	t.Helper()
	cases := map[string]Clustered{}
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256} {
		cases[sprintName("tree", n)] = NewTree(n)
		cases[sprintName("torus", n)] = NewTorusFor(n)
	}
	return cases
}

func sprintName(kind string, n int) string {
	return kind + "/" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestClustersDisjointCover is the partition property: every node
// appears in exactly one cluster, cluster indices are dense, ClusterOf
// agrees with the materialized member lists, and members are ascending.
func TestClustersDisjointCover(t *testing.T) {
	for name, topo := range clusteredCases(t) {
		t.Run(name, func(t *testing.T) {
			cs := Clusters(topo)
			if len(cs) != topo.NumClusters() {
				t.Fatalf("Clusters returned %d lists, NumClusters says %d", len(cs), topo.NumClusters())
			}
			seen := make(map[msg.NodeID]int)
			for c, members := range cs {
				if len(members) == 0 {
					t.Errorf("cluster %d is empty: indices must be dense", c)
				}
				for i, n := range members {
					if i > 0 && members[i-1] >= n {
						t.Errorf("cluster %d members not ascending: %v", c, members)
					}
					if prev, dup := seen[n]; dup {
						t.Errorf("node %d in clusters %d and %d", n, prev, c)
					}
					seen[n] = c
					if got := topo.ClusterOf(n); got != c {
						t.Errorf("ClusterOf(%d) = %d, but node listed in cluster %d", n, got, c)
					}
				}
			}
			if len(seen) != topo.Nodes() {
				t.Errorf("clusters cover %d nodes, topology has %d", len(seen), topo.Nodes())
			}
		})
	}
}

// TestTreeClustersMatchTierBoundaries pins the tree partition to the
// historical switch-tier boundaries: one cluster per child subtree of
// the root, so the paper's 16-processor tree splits 4x4, the 64- and
// 256-processor trees from the multi-level fabric split 4x16 and 4x64.
func TestTreeClustersMatchTierBoundaries(t *testing.T) {
	for _, tc := range []struct {
		n, clusters, size int
	}{
		{16, 4, 4},
		{64, 4, 16},
		{256, 4, 64},
	} {
		tr := NewTree(tc.n)
		cs := Clusters(tr)
		if len(cs) != tc.clusters {
			t.Fatalf("%d-node tree: %d clusters, want %d", tc.n, len(cs), tc.clusters)
		}
		for c, members := range cs {
			if len(members) != tc.size {
				t.Errorf("%d-node tree cluster %d has %d members, want %d", tc.n, c, len(members), tc.size)
			}
			base := msg.NodeID(c * tc.size)
			for i, n := range members {
				if n != base+msg.NodeID(i) {
					t.Errorf("%d-node tree cluster %d: member %d is node %d, want contiguous block from %d",
						tc.n, c, i, n, base)
				}
			}
		}
	}
}

// TestTreeClustersShareRootSubtree is the tree's link-graph contiguity
// property: all members of one cluster climb into the root over the same
// top-tier up-link (they share a root-child subtree), and members of
// different clusters do not.
func TestTreeClustersShareRootSubtree(t *testing.T) {
	for _, n := range []int{8, 16, 64, 256} {
		tr := NewTree(n)
		top := tr.Levels() - 1
		cs := Clusters(tr)
		rootLink := func(m msg.NodeID) LinkID {
			path := tr.Path(m, m)
			return path[top] // the tier-top up-link into the root
		}
		linkOf := make(map[int]LinkID)
		for c, members := range cs {
			want := rootLink(members[0])
			for _, m := range members[1:] {
				if got := rootLink(m); got != want {
					t.Errorf("%d-node tree cluster %d: nodes %d and %d climb different top-tier links",
						n, c, members[0], m)
				}
			}
			for prev, l := range linkOf {
				if l == want {
					t.Errorf("%d-node tree clusters %d and %d share a top-tier link: not a subtree partition", n, prev, c)
				}
			}
			linkOf[c] = want
		}
	}
}

// TestTorusClustersAreRows is the torus's link-graph contiguity
// property: each cluster is one row — consecutive members (including the
// wraparound pair) are one East/West hop apart, so the cluster is
// connected without leaving its own links.
func TestTorusClustersAreRows(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 256} {
		to := NewTorusFor(n)
		cs := Clusters(to)
		if len(cs) != to.Height() {
			t.Fatalf("%d-node torus: %d clusters, want one per row (%d)", n, len(cs), to.Height())
		}
		for c, members := range cs {
			if len(members) != to.Width() {
				t.Fatalf("%d-node torus cluster %d has %d members, want row width %d", n, c, len(members), to.Width())
			}
			for i, m := range members {
				next := members[(i+1)%len(members)]
				if m == next {
					continue // 1-wide row: nothing to hop
				}
				if hops := len(to.Path(m, next)); hops != 1 {
					t.Errorf("%d-node torus cluster %d: nodes %d -> %d are %d hops apart, want a direct ring link",
						n, c, m, next, hops)
				}
			}
		}
	}
}
