// Package topology models the two interconnect fabrics evaluated in the
// paper (Figure 1): a totally-ordered pipelined broadcast tree built
// from discrete switches (two levels for the paper's 16 processors,
// deeper for larger systems), and a directly-connected two-dimensional
// bidirectional torus with no ordering guarantees.
//
// A topology maps (source node, destination node) to an ordered sequence
// of directed links. Deterministic routing means the union of the paths
// from one source to any destination set is a tree, which lets the
// interconnect layer account multicast bandwidth per tree edge exactly as
// the paper does ("broadcast messages use bandwidth-efficient tree-based
// multicast routing").
package topology

import (
	"fmt"

	"tokencoherence/internal/msg"
)

// LinkID names one directed link. IDs are dense in [0, NumLinks).
type LinkID int

// Topology is a static interconnect graph with deterministic routing.
type Topology interface {
	// Name identifies the topology in reports ("tree", "torus").
	Name() string
	// Nodes reports the number of processor nodes.
	Nodes() int
	// NumLinks reports the number of directed links.
	NumLinks() int
	// Path returns the directed links crossed from src to dst, in order.
	// An empty path means local delivery (no interconnect crossing).
	Path(src, dst msg.NodeID) []LinkID
	// Ordered reports whether the fabric delivers broadcasts in a total
	// order (required by traditional snooping).
	Ordered() bool
}

// AvgHops reports the mean path length over all (src, dst) pairs with
// src != dst; a quick sanity metric (the paper quotes two link crossings
// for the 16-node torus and four for the tree).
func AvgHops(t Topology) float64 {
	n := t.Nodes()
	total, pairs := 0, 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			total += len(t.Path(msg.NodeID(s), msg.NodeID(d)))
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}

// Torus is a w x h bidirectional 2D torus with deterministic
// dimension-order (X then Y) routing and shortest-direction wrap. The
// Alpha 21364 used this fabric; it provides no request ordering.
type Torus struct {
	w, h int
}

// NewTorus constructs a w x h torus. Both dimensions must be positive.
func NewTorus(w, h int) *Torus {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("topology: invalid torus %dx%d", w, h))
	}
	return &Torus{w: w, h: h}
}

// CheckTorusFor reports whether NewTorusFor can build a proper 2D torus
// with exactly n nodes: n must be at least 4 (the smallest torus is 2x2)
// and must factor into two dimensions of at least 2 each. A prime n
// would degenerate to an n x 1 ring whose North/South links are dead yet
// counted by NumLinks, skewing per-link traffic metrics, so it is
// rejected instead.
func CheckTorusFor(n int) error {
	if n < 4 {
		return fmt.Errorf("torus needs at least 4 nodes (2x2), got %d", n)
	}
	if squarestFactor(n) < 2 {
		return fmt.Errorf("torus size %d is prime and would degenerate to a %dx1 ring with dead links; choose a composite size", n, n)
	}
	return nil
}

// squarestFactor returns the largest divisor of n that is at most
// sqrt(n) — the height of the most-square w x h factorization (w >= h).
func squarestFactor(n int) int {
	h := 1
	for h*h <= n {
		h++
	}
	for h--; h > 1; h-- {
		if n%h == 0 {
			return h
		}
	}
	return 1
}

// NewTorusFor returns the most-square torus with exactly n nodes, used
// by the scalability experiment (4=2x2, 8=4x2, ..., 64=8x8, 256=16x16).
// It searches downward from sqrt(n) for the squarest factorization and
// panics on sizes CheckTorusFor rejects (n < 4 or prime).
func NewTorusFor(n int) *Torus {
	if err := CheckTorusFor(n); err != nil {
		panic("topology: " + err.Error())
	}
	h := squarestFactor(n)
	return NewTorus(n/h, h)
}

func (t *Torus) Name() string  { return "torus" }
func (t *Torus) Ordered() bool { return false }
func (t *Torus) Nodes() int    { return t.w * t.h }

// Width and Height expose the grid dimensions.
func (t *Torus) Width() int  { return t.w }
func (t *Torus) Height() int { return t.h }

// Each node has four outgoing links: East, West, South, North.
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	numDirs
)

func (t *Torus) NumLinks() int { return t.Nodes() * numDirs }

func (t *Torus) coord(n msg.NodeID) (x, y int) { return int(n) % t.w, int(n) / t.w }
func (t *Torus) node(x, y int) msg.NodeID      { return msg.NodeID(y*t.w + x) }

// linkFrom returns the outgoing link of node n in direction dir.
func (t *Torus) linkFrom(n msg.NodeID, dir int) LinkID {
	return LinkID(int(n)*numDirs + dir)
}

// ringStep returns the step direction (+1 or -1) and hop count to travel
// from a to b around a ring of size n, preferring the shorter way and
// breaking ties in the positive direction.
func ringStep(a, b, n int) (step, hops int) {
	if a == b {
		return 0, 0
	}
	fwd := (b - a + n) % n
	bwd := (a - b + n) % n
	if fwd <= bwd {
		return +1, fwd
	}
	return -1, bwd
}

// Path implements dimension-order routing: X first, then Y.
func (t *Torus) Path(src, dst msg.NodeID) []LinkID {
	if src == dst {
		return nil
	}
	sx, sy := t.coord(src)
	dx, dy := t.coord(dst)
	var path []LinkID
	// X phase.
	step, hops := ringStep(sx, dx, t.w)
	x := sx
	for i := 0; i < hops; i++ {
		dir := dirEast
		if step < 0 {
			dir = dirWest
		}
		path = append(path, t.linkFrom(t.node(x, sy), dir))
		x = (x + step + t.w) % t.w
	}
	// Y phase.
	step, hops = ringStep(sy, dy, t.h)
	y := sy
	for i := 0; i < hops; i++ {
		dir := dirSouth
		if step < 0 {
			dir = dirNorth
		}
		path = append(path, t.linkFrom(t.node(dx, y), dir))
		y = (y + step + t.h) % t.h
	}
	return path
}

// Tree is the paper's indirect broadcast tree (Figure 1a), generalized
// from the paper's two levels to a k-ary multi-level fabric: n leaf
// nodes, a tier of incoming switches per level funneling up to a single
// root switch, and a mirrored tier of outgoing switches per level
// fanning back down. Every message — unicast or broadcast — climbs
// Levels() links to the root and descends Levels() links to its
// destination, and because all traffic funnels through the single root
// over FIFO links, broadcasts are delivered to every node in one total
// order. That total order is what traditional snooping requires; the
// root is also the fabric's bandwidth bottleneck, which the evaluation
// exposes — more sharply the deeper the tree.
//
// For n = fanout^L the tree is the natural complete k-ary tree; any
// other 4 <= n <= MaxTreeNodes is carried by padding the leaf layer up
// to the next power of the fanout — switch tiers shrink by ceil
// division, so only switches with at least one live descendant (and
// their links) exist, keeping link IDs dense.
type Tree struct {
	n      int
	fanout int
	levels int
	// width[t] is the number of entities at tier t: width[0] = n leaf
	// nodes, then ever-smaller switch tiers up to width[levels] = 1, the
	// root.
	width []int
	// pow[t] = fanout^t, so a node's tier-t ancestor is node/pow[t].
	pow []int
	// upOff[t] and downOff[t] are the first link IDs of the level-t
	// banks (see NumLinks).
	upOff, downOff []int
	numLinks       int
}

// TreeFanout is the paper's switch fan-out of four.
const TreeFanout = 4

// MaxTreeNodes caps the tree (and the sizes the experiments sweep) at
// 256 processors: the interconnect precomputes a per-(src,dst) path
// cache and pools multicast tree slabs, both sized O(n^2), which stay
// comfortably allocation-gated at this bound.
const MaxTreeNodes = 256

// CheckTree reports whether NewTreeFanout can build the ordered
// broadcast tree for n nodes: 4 <= n <= MaxTreeNodes with fanout >= 2.
func CheckTree(n, fanout int) error {
	if fanout < 2 {
		return fmt.Errorf("tree fanout must be at least 2, got %d", fanout)
	}
	if n < 4 || n > MaxTreeNodes {
		return fmt.Errorf("tree supports 4..%d nodes, got %d", MaxTreeNodes, n)
	}
	return nil
}

// NewTree constructs the ordered broadcast tree for n nodes with the
// paper's fan-out of four: two levels for the paper's 16-processor
// configuration (nine switches), three for 64, four for 256.
func NewTree(n int) *Tree { return NewTreeFanout(n, TreeFanout) }

// NewTreeFanout constructs a k-ary ordered broadcast tree. It panics on
// sizes CheckTree rejects.
func NewTreeFanout(n, fanout int) *Tree {
	if err := CheckTree(n, fanout); err != nil {
		panic("topology: " + err.Error())
	}
	t := &Tree{n: n, fanout: fanout}
	// Depth: the smallest L with fanout^L >= n (the padded leaf layer is
	// fanout^L wide; only the first n slots are populated).
	t.levels = 1
	for p := fanout; p < n; p *= fanout {
		t.levels++
	}
	t.width = make([]int, t.levels+1)
	t.pow = make([]int, t.levels+1)
	t.width[0], t.pow[0] = n, 1
	for l := 1; l <= t.levels; l++ {
		t.width[l] = (t.width[l-1] + fanout - 1) / fanout
		t.pow[l] = t.pow[l-1] * fanout
	}
	// Link banks, two per level: the up banks in climbing order, then
	// the down banks from the root back to the leaves, so the paper's
	// 16-node two-level numbering (node->in-switch, in-switch->root,
	// root->out-switch, out-switch->node) is reproduced exactly.
	t.upOff = make([]int, t.levels)
	t.downOff = make([]int, t.levels)
	off := 0
	for l := 0; l < t.levels; l++ {
		t.upOff[l] = off
		off += t.width[l]
	}
	for l := t.levels - 1; l >= 0; l-- {
		t.downOff[l] = off
		off += t.width[l]
	}
	t.numLinks = off
	return t
}

func (t *Tree) Name() string  { return "tree" }
func (t *Tree) Ordered() bool { return true }
func (t *Tree) Nodes() int    { return t.n }

// Fanout reports the per-switch fan-out (the paper uses 4).
func (t *Tree) Fanout() int { return t.fanout }

// Levels reports the tree depth: every path crosses 2*Levels() links.
func (t *Tree) Levels() int { return t.levels }

// Switches reports the number of discrete switch chips ("glue logic"):
// one incoming and one outgoing switch per non-root tier entity, plus
// the single root (9 for the paper's 16-processor system).
func (t *Tree) Switches() int {
	s := 1
	for l := 1; l < t.levels; l++ {
		s += 2 * t.width[l]
	}
	return s
}

// Directed links, numbered in two banks per level:
//
//	up bank l:   tier-l entity i     -> tier-(l+1) switch i/fanout  (width[l] links)
//	down bank l: tier-(l+1) switch   -> tier-l entity i             (width[l] links)
//
// Up banks come first in climbing order, then down banks from the root
// outward, so for the paper's two-level 16-node tree the four banks are
// exactly the historical node->in-switch, in-switch->root,
// root->out-switch, out-switch->node numbering.
func (t *Tree) NumLinks() int { return t.numLinks }

// upLink is the level-l link out of node n's tier-l ancestor.
func (t *Tree) upLink(l int, n msg.NodeID) LinkID {
	return LinkID(t.upOff[l] + int(n)/t.pow[l])
}

// downLink is the level-l link into node n's tier-l ancestor.
func (t *Tree) downLink(l int, n msg.NodeID) LinkID {
	return LinkID(t.downOff[l] + int(n)/t.pow[l])
}

// Path always routes through the root — including src == dst — because
// a node must observe its own broadcast in the global order.
func (t *Tree) Path(src, dst msg.NodeID) []LinkID {
	path := make([]LinkID, 0, 2*t.levels)
	for l := 0; l < t.levels; l++ {
		path = append(path, t.upLink(l, src))
	}
	for l := t.levels - 1; l >= 0; l-- {
		path = append(path, t.downLink(l, dst))
	}
	return path
}
