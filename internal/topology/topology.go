// Package topology models the two interconnect fabrics evaluated in the
// paper (Figure 1): a two-level totally-ordered pipelined broadcast tree
// built from discrete switches, and a directly-connected two-dimensional
// bidirectional torus with no ordering guarantees.
//
// A topology maps (source node, destination node) to an ordered sequence
// of directed links. Deterministic routing means the union of the paths
// from one source to any destination set is a tree, which lets the
// interconnect layer account multicast bandwidth per tree edge exactly as
// the paper does ("broadcast messages use bandwidth-efficient tree-based
// multicast routing").
package topology

import (
	"fmt"

	"tokencoherence/internal/msg"
)

// LinkID names one directed link. IDs are dense in [0, NumLinks).
type LinkID int

// Topology is a static interconnect graph with deterministic routing.
type Topology interface {
	// Name identifies the topology in reports ("tree", "torus").
	Name() string
	// Nodes reports the number of processor nodes.
	Nodes() int
	// NumLinks reports the number of directed links.
	NumLinks() int
	// Path returns the directed links crossed from src to dst, in order.
	// An empty path means local delivery (no interconnect crossing).
	Path(src, dst msg.NodeID) []LinkID
	// Ordered reports whether the fabric delivers broadcasts in a total
	// order (required by traditional snooping).
	Ordered() bool
}

// AvgHops reports the mean path length over all (src, dst) pairs with
// src != dst; a quick sanity metric (the paper quotes two link crossings
// for the 16-node torus and four for the tree).
func AvgHops(t Topology) float64 {
	n := t.Nodes()
	total, pairs := 0, 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			total += len(t.Path(msg.NodeID(s), msg.NodeID(d)))
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}

// Torus is a w x h bidirectional 2D torus with deterministic
// dimension-order (X then Y) routing and shortest-direction wrap. The
// Alpha 21364 used this fabric; it provides no request ordering.
type Torus struct {
	w, h int
}

// NewTorus constructs a w x h torus. Both dimensions must be positive.
func NewTorus(w, h int) *Torus {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("topology: invalid torus %dx%d", w, h))
	}
	return &Torus{w: w, h: h}
}

// NewTorusFor returns a roughly-square torus with exactly n nodes,
// used by the scalability experiment (4=2x2, 8=4x2, ..., 64=8x8).
func NewTorusFor(n int) *Torus {
	if n <= 0 {
		panic("topology: torus size must be positive")
	}
	w := 1
	for w*w < n {
		w++
	}
	for n%w != 0 {
		w++
	}
	return NewTorus(w, n/w)
}

func (t *Torus) Name() string  { return "torus" }
func (t *Torus) Ordered() bool { return false }
func (t *Torus) Nodes() int    { return t.w * t.h }

// Width and Height expose the grid dimensions.
func (t *Torus) Width() int  { return t.w }
func (t *Torus) Height() int { return t.h }

// Each node has four outgoing links: East, West, South, North.
const (
	dirEast = iota
	dirWest
	dirSouth
	dirNorth
	numDirs
)

func (t *Torus) NumLinks() int { return t.Nodes() * numDirs }

func (t *Torus) coord(n msg.NodeID) (x, y int) { return int(n) % t.w, int(n) / t.w }
func (t *Torus) node(x, y int) msg.NodeID      { return msg.NodeID(y*t.w + x) }

// linkFrom returns the outgoing link of node n in direction dir.
func (t *Torus) linkFrom(n msg.NodeID, dir int) LinkID {
	return LinkID(int(n)*numDirs + dir)
}

// ringStep returns the step direction (+1 or -1) and hop count to travel
// from a to b around a ring of size n, preferring the shorter way and
// breaking ties in the positive direction.
func ringStep(a, b, n int) (step, hops int) {
	if a == b {
		return 0, 0
	}
	fwd := (b - a + n) % n
	bwd := (a - b + n) % n
	if fwd <= bwd {
		return +1, fwd
	}
	return -1, bwd
}

// Path implements dimension-order routing: X first, then Y.
func (t *Torus) Path(src, dst msg.NodeID) []LinkID {
	if src == dst {
		return nil
	}
	sx, sy := t.coord(src)
	dx, dy := t.coord(dst)
	var path []LinkID
	// X phase.
	step, hops := ringStep(sx, dx, t.w)
	x := sx
	for i := 0; i < hops; i++ {
		dir := dirEast
		if step < 0 {
			dir = dirWest
		}
		path = append(path, t.linkFrom(t.node(x, sy), dir))
		x = (x + step + t.w) % t.w
	}
	// Y phase.
	step, hops = ringStep(sy, dy, t.h)
	y := sy
	for i := 0; i < hops; i++ {
		dir := dirSouth
		if step < 0 {
			dir = dirNorth
		}
		path = append(path, t.linkFrom(t.node(dx, y), dir))
		y = (y + step + t.h) % t.h
	}
	return path
}

// Tree is the paper's two-level indirect broadcast tree (Figure 1a):
// n leaf nodes, n/fanout incoming switches, one root switch, and
// n/fanout outgoing switches. Every message — unicast or broadcast —
// crosses four links (node, in-switch, root, out-switch, node), and
// because all traffic funnels through the single root over FIFO links,
// broadcasts are delivered to every node in one total order. That total
// order is what traditional snooping requires; the root is also the
// fabric's bandwidth bottleneck, which the evaluation exposes.
type Tree struct {
	n      int
	fanout int
}

// NewTree constructs the ordered broadcast tree for n nodes with the
// paper's fan-out of four. n must be a positive multiple of the fanout
// and at most fanout*fanout (the paper's 16-processor configuration uses
// 9 switches).
func NewTree(n int) *Tree {
	const fanout = 4
	if n <= 0 || n%fanout != 0 || n > fanout*fanout {
		panic(fmt.Sprintf("topology: tree supports multiples of %d up to %d nodes, got %d", fanout, fanout*fanout, n))
	}
	return &Tree{n: n, fanout: fanout}
}

func (t *Tree) Name() string  { return "tree" }
func (t *Tree) Ordered() bool { return true }
func (t *Tree) Nodes() int    { return t.n }

// Switches reports the number of discrete switch chips ("glue logic"):
// in-switches + root + out-switches.
func (t *Tree) Switches() int { return 2*(t.n/t.fanout) + 1 }

// Directed links, numbered in four banks:
//
//	bank 0: node i        -> in-switch i/fanout   (n links)
//	bank 1: in-switch j   -> root                 (n/fanout links)
//	bank 2: root          -> out-switch j         (n/fanout links)
//	bank 3: out-switch    -> node i               (n links)
func (t *Tree) NumLinks() int { return 2*t.n + 2*(t.n/t.fanout) }

func (t *Tree) upLink(n msg.NodeID) LinkID   { return LinkID(n) }
func (t *Tree) inRootLink(sw int) LinkID     { return LinkID(t.n + sw) }
func (t *Tree) rootOutLink(sw int) LinkID    { return LinkID(t.n + t.n/t.fanout + sw) }
func (t *Tree) downLink(n msg.NodeID) LinkID { return LinkID(t.n + 2*(t.n/t.fanout) + int(n)) }

// Path always routes through the root — including src == dst — because
// a node must observe its own broadcast in the global order.
func (t *Tree) Path(src, dst msg.NodeID) []LinkID {
	return []LinkID{
		t.upLink(src),
		t.inRootLink(int(src) / t.fanout),
		t.rootOutLink(int(dst) / t.fanout),
		t.downLink(dst),
	}
}
