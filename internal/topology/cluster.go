package topology

import "tokencoherence/internal/msg"

// Clustered is a topology with natural cluster boundaries: a partition
// of the processor nodes into groups that are tightly connected in the
// link graph. Hierarchical protocols (two-level directories, region
// filters) use the partition as their scope boundaries, the same way the
// island kernel uses Partitioned for its goroutine boundaries.
//
// The partition must be a disjoint cover of [0, Nodes()): every node
// belongs to exactly one cluster, and cluster indices are dense in
// [0, NumClusters()).
type Clustered interface {
	Topology
	// NumClusters reports how many clusters partition the nodes.
	NumClusters() int
	// ClusterOf maps a node to its cluster index in [0, NumClusters()).
	ClusterOf(n msg.NodeID) int
}

// Clusters materializes a Clustered topology's partition as ordered
// member lists: Clusters(t)[c] holds cluster c's nodes in ascending
// order. The result is freshly allocated on each call.
func Clusters(t Clustered) [][]msg.NodeID {
	out := make([][]msg.NodeID, t.NumClusters())
	for i := 0; i < t.Nodes(); i++ {
		n := msg.NodeID(i)
		c := t.ClusterOf(n)
		out[c] = append(out[c], n)
	}
	return out
}

// NumClusters partitions the tree at its top tier: one cluster per child
// subtree of the root switch (4 for the paper's fan-out, so 16 nodes
// split 4x4, 64 split 4x16, 256 split 4x64). Traffic within a cluster
// shares the subtree's switches; only cross-cluster traffic must cross
// the root bottleneck, which is exactly the boundary hierarchical
// protocols want to avoid.
func (t *Tree) NumClusters() int { return t.width[t.levels-1] }

// ClusterOf returns the index of node n's root-child subtree (its
// tier-(levels-1) ancestor).
func (t *Tree) ClusterOf(n msg.NodeID) int { return int(n) / t.pow[t.levels-1] }

// NumClusters partitions the torus into its rows: each row is a
// contiguous block of node IDs connected in a ring by its East/West
// links, mirroring the row-block partition PartitionActors uses for the
// island kernel.
func (t *Torus) NumClusters() int { return t.h }

// ClusterOf returns node n's row index.
func (t *Torus) ClusterOf(n msg.NodeID) int { return int(n) / t.w }
