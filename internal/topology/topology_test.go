package topology

import (
	"testing"
	"testing/quick"

	"tokencoherence/internal/msg"
)

func TestTorusSelfPathEmpty(t *testing.T) {
	torus := NewTorus(4, 4)
	for n := 0; n < 16; n++ {
		if p := torus.Path(msg.NodeID(n), msg.NodeID(n)); len(p) != 0 {
			t.Errorf("self path for node %d has %d links, want 0", n, len(p))
		}
	}
}

func TestTorusNeighborOneHop(t *testing.T) {
	torus := NewTorus(4, 4)
	// Node 0 at (0,0): east neighbor 1, west neighbor 3, south 4, north 12.
	for _, dst := range []msg.NodeID{1, 3, 4, 12} {
		if p := torus.Path(0, dst); len(p) != 1 {
			t.Errorf("path 0->%d = %d hops, want 1", dst, len(p))
		}
	}
}

func TestTorusMaxDistance(t *testing.T) {
	torus := NewTorus(4, 4)
	// Farthest node from 0 in a 4x4 torus is (2,2) = node 10: 2+2 hops.
	if p := torus.Path(0, 10); len(p) != 4 {
		t.Errorf("path 0->10 = %d hops, want 4", len(p))
	}
}

func TestTorusAvgHopsMatchesPaper(t *testing.T) {
	// Paper: "the torus has lower latency (two vs. four chip crossings on
	// average)" for 16 processors.
	got := AvgHops(NewTorus(4, 4))
	// Exact average excluding self: sum of per-dim distances (0+1+2+1)/4=1
	// per dim -> 2.0 including self-pairs; excluding self it is 32/15*...
	// compute directly: total pair distance = 16*15 pairs; verify ~2.13.
	if got < 1.9 || got > 2.2 {
		t.Errorf("4x4 torus avg hops = %v, want ~2 (paper)", got)
	}
}

func TestTreeAlwaysFourHops(t *testing.T) {
	tree := NewTree(16)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if p := tree.Path(msg.NodeID(s), msg.NodeID(d)); len(p) != 4 {
				t.Fatalf("tree path %d->%d = %d hops, want 4", s, d, len(p))
			}
		}
	}
	if got := AvgHops(tree); got != 4 {
		t.Errorf("tree avg hops = %v, want 4 (paper)", got)
	}
}

func TestTreeSwitchCount(t *testing.T) {
	// Paper: "a 16-processor system using this topology has nine switches".
	if got := NewTree(16).Switches(); got != 9 {
		t.Errorf("Switches() = %d, want 9", got)
	}
}

func TestTreeOrderedTorusNot(t *testing.T) {
	if !NewTree(16).Ordered() {
		t.Error("tree must report Ordered")
	}
	if NewTorus(4, 4).Ordered() {
		t.Error("torus must not report Ordered")
	}
}

func TestPathLinksValid(t *testing.T) {
	topos := []Topology{NewTorus(4, 4), NewTorus(8, 8), NewTree(16), NewTree(8)}
	for _, topo := range topos {
		n := topo.Nodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				for _, l := range topo.Path(msg.NodeID(s), msg.NodeID(d)) {
					if l < 0 || int(l) >= topo.NumLinks() {
						t.Fatalf("%s: link %d out of range [0,%d)", topo.Name(), l, topo.NumLinks())
					}
				}
			}
		}
	}
}

// Paths from a single source must be prefix-closed (form a tree): any two
// paths that use the same link must share the entire prefix up to and
// including that link. The interconnect's multicast accounting and
// timing memoization depend on this.
func TestPropertyRoutesArePrefixClosed(t *testing.T) {
	topos := []Topology{NewTorus(4, 4), NewTorus(8, 4), NewTorus(8, 8), NewTree(16)}
	for _, topo := range topos {
		n := topo.Nodes()
		for s := 0; s < n; s++ {
			// For each link, remember the prefix that first reached it.
			prefixOf := make(map[LinkID][]LinkID)
			for d := 0; d < n; d++ {
				path := topo.Path(msg.NodeID(s), msg.NodeID(d))
				for i, l := range path {
					prefix := path[:i+1]
					if prev, ok := prefixOf[l]; ok {
						if len(prev) != len(prefix) {
							t.Fatalf("%s: link %d reached via prefixes of different lengths from src %d", topo.Name(), l, s)
						}
						for j := range prev {
							if prev[j] != prefix[j] {
								t.Fatalf("%s: link %d reached via different prefixes from src %d", topo.Name(), l, s)
							}
						}
					} else {
						prefixOf[l] = append([]LinkID(nil), prefix...)
					}
				}
			}
		}
	}
}

func TestTorusPathEndsAtDestination(t *testing.T) {
	// Walk the links of each path and verify it terminates at dst.
	torus := NewTorus(4, 4)
	linkDst := buildTorusLinkMap(torus)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			path := torus.Path(msg.NodeID(s), msg.NodeID(d))
			cur := msg.NodeID(s)
			for _, l := range path {
				from, to := linkDst[l][0], linkDst[l][1]
				if from != cur {
					t.Fatalf("path %d->%d uses link from %d while at %d", s, d, from, cur)
				}
				cur = to
			}
			if cur != msg.NodeID(d) {
				t.Fatalf("path %d->%d ends at %d", s, d, cur)
			}
		}
	}
}

// buildTorusLinkMap recovers (from, to) node pairs from the torus link
// numbering for verification.
func buildTorusLinkMap(t *Torus) map[LinkID][2]msg.NodeID {
	m := make(map[LinkID][2]msg.NodeID)
	w, h := t.Width(), t.Height()
	for n := 0; n < t.Nodes(); n++ {
		x, y := n%w, n/w
		neighbors := [numDirs]msg.NodeID{
			dirEast:  msg.NodeID(y*w + (x+1)%w),
			dirWest:  msg.NodeID(y*w + (x-1+w)%w),
			dirSouth: msg.NodeID(((y+1)%h)*w + x),
			dirNorth: msg.NodeID(((y-1+h)%h)*w + x),
		}
		for dir := 0; dir < numDirs; dir++ {
			m[LinkID(n*numDirs+dir)] = [2]msg.NodeID{msg.NodeID(n), neighbors[dir]}
		}
	}
	return m
}

func TestTorusShortestDistance(t *testing.T) {
	// Path length must equal the Manhattan distance with wraparound.
	torus := NewTorus(8, 4)
	ringDist := func(a, b, n int) int {
		fwd := (b - a + n) % n
		bwd := (a - b + n) % n
		if fwd < bwd {
			return fwd
		}
		return bwd
	}
	for s := 0; s < 32; s++ {
		for d := 0; d < 32; d++ {
			sx, sy := s%8, s/8
			dx, dy := d%8, d/8
			want := ringDist(sx, dx, 8) + ringDist(sy, dy, 4)
			if got := len(torus.Path(msg.NodeID(s), msg.NodeID(d))); got != want {
				t.Fatalf("path %d->%d = %d hops, want %d", s, d, got, want)
			}
		}
	}
}

func TestNewTorusForSizes(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {32, 8, 4}, {64, 8, 8},
	}
	for _, c := range cases {
		tor := NewTorusFor(c.n)
		if tor.Nodes() != c.n {
			t.Errorf("NewTorusFor(%d).Nodes() = %d", c.n, tor.Nodes())
		}
		if tor.Width() != c.w || tor.Height() != c.h {
			t.Errorf("NewTorusFor(%d) = %dx%d, want %dx%d", c.n, tor.Width(), tor.Height(), c.w, c.h)
		}
	}
}

func TestNewTorusForPrime(t *testing.T) {
	tor := NewTorusFor(7) // falls back to 7x1
	if tor.Nodes() != 7 {
		t.Errorf("Nodes() = %d, want 7", tor.Nodes())
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewTorus(0,4)", func() { NewTorus(0, 4) })
	mustPanic("NewTree(3)", func() { NewTree(3) })
	mustPanic("NewTree(32)", func() { NewTree(32) })
	mustPanic("NewTorusFor(0)", func() { NewTorusFor(0) })
}

// Property: random (src,dst) paths on random torus shapes stay in bounds
// and have length equal to the wrap Manhattan distance.
func TestPropertyTorusPathLength(t *testing.T) {
	f := func(wRaw, hRaw, sRaw, dRaw uint8) bool {
		w := int(wRaw)%8 + 1
		h := int(hRaw)%8 + 1
		n := w * h
		tor := NewTorus(w, h)
		s := msg.NodeID(int(sRaw) % n)
		d := msg.NodeID(int(dRaw) % n)
		path := tor.Path(s, d)
		ringDist := func(a, b, n int) int {
			fwd := (b - a + n) % n
			bwd := (a - b + n) % n
			if fwd < bwd {
				return fwd
			}
			return bwd
		}
		want := ringDist(int(s)%w, int(d)%w, w) + ringDist(int(s)/w, int(d)/w, h)
		return len(path) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
