package topology

import (
	"testing"
	"testing/quick"

	"tokencoherence/internal/msg"
)

func TestTorusSelfPathEmpty(t *testing.T) {
	torus := NewTorus(4, 4)
	for n := 0; n < 16; n++ {
		if p := torus.Path(msg.NodeID(n), msg.NodeID(n)); len(p) != 0 {
			t.Errorf("self path for node %d has %d links, want 0", n, len(p))
		}
	}
}

func TestTorusNeighborOneHop(t *testing.T) {
	torus := NewTorus(4, 4)
	// Node 0 at (0,0): east neighbor 1, west neighbor 3, south 4, north 12.
	for _, dst := range []msg.NodeID{1, 3, 4, 12} {
		if p := torus.Path(0, dst); len(p) != 1 {
			t.Errorf("path 0->%d = %d hops, want 1", dst, len(p))
		}
	}
}

func TestTorusMaxDistance(t *testing.T) {
	torus := NewTorus(4, 4)
	// Farthest node from 0 in a 4x4 torus is (2,2) = node 10: 2+2 hops.
	if p := torus.Path(0, 10); len(p) != 4 {
		t.Errorf("path 0->10 = %d hops, want 4", len(p))
	}
}

func TestTorusAvgHopsMatchesPaper(t *testing.T) {
	// Paper: "the torus has lower latency (two vs. four chip crossings on
	// average)" for 16 processors.
	got := AvgHops(NewTorus(4, 4))
	// Exact average excluding self: sum of per-dim distances (0+1+2+1)/4=1
	// per dim -> 2.0 including self-pairs; excluding self it is 32/15*...
	// compute directly: total pair distance = 16*15 pairs; verify ~2.13.
	if got < 1.9 || got > 2.2 {
		t.Errorf("4x4 torus avg hops = %v, want ~2 (paper)", got)
	}
}

func TestTreeAlwaysFourHops(t *testing.T) {
	tree := NewTree(16)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if p := tree.Path(msg.NodeID(s), msg.NodeID(d)); len(p) != 4 {
				t.Fatalf("tree path %d->%d = %d hops, want 4", s, d, len(p))
			}
		}
	}
	if got := AvgHops(tree); got != 4 {
		t.Errorf("tree avg hops = %v, want 4 (paper)", got)
	}
}

func TestTreeSwitchCount(t *testing.T) {
	// Paper: "a 16-processor system using this topology has nine switches".
	if got := NewTree(16).Switches(); got != 9 {
		t.Errorf("Switches() = %d, want 9", got)
	}
	// Multi-level: 64 = 16 in + 4 mid in, mirrored out, plus the root;
	// 256 adds one more tier.
	if got := NewTree(64).Switches(); got != 41 {
		t.Errorf("NewTree(64).Switches() = %d, want 41", got)
	}
	if got := NewTree(256).Switches(); got != 169 {
		t.Errorf("NewTree(256).Switches() = %d, want 169", got)
	}
}

func TestTreeLevels(t *testing.T) {
	cases := []struct{ n, levels int }{
		{4, 1}, {8, 2}, {16, 2}, {32, 3}, {64, 3}, {100, 4}, {128, 4}, {256, 4},
	}
	for _, c := range cases {
		if got := NewTree(c.n).Levels(); got != c.levels {
			t.Errorf("NewTree(%d).Levels() = %d, want %d", c.n, got, c.levels)
		}
	}
}

func TestTreeOrderedTorusNot(t *testing.T) {
	if !NewTree(16).Ordered() {
		t.Error("tree must report Ordered")
	}
	if NewTorus(4, 4).Ordered() {
		t.Error("torus must not report Ordered")
	}
}

func TestPathLinksValid(t *testing.T) {
	topos := []Topology{NewTorus(4, 4), NewTorus(8, 8), NewTree(16), NewTree(8), NewTree(64), NewTree(100), NewTree(256)}
	for _, topo := range topos {
		n := topo.Nodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				for _, l := range topo.Path(msg.NodeID(s), msg.NodeID(d)) {
					if l < 0 || int(l) >= topo.NumLinks() {
						t.Fatalf("%s: link %d out of range [0,%d)", topo.Name(), l, topo.NumLinks())
					}
				}
			}
		}
	}
}

// Paths from a single source must be prefix-closed (form a tree): any two
// paths that use the same link must share the entire prefix up to and
// including that link. The interconnect's multicast accounting and
// timing memoization depend on this.
func TestPropertyRoutesArePrefixClosed(t *testing.T) {
	topos := []Topology{NewTorus(4, 4), NewTorus(8, 4), NewTorus(8, 8), NewTree(16), NewTree(64), NewTree(100)}
	for _, topo := range topos {
		n := topo.Nodes()
		for s := 0; s < n; s++ {
			// For each link, remember the prefix that first reached it.
			prefixOf := make(map[LinkID][]LinkID)
			for d := 0; d < n; d++ {
				path := topo.Path(msg.NodeID(s), msg.NodeID(d))
				for i, l := range path {
					prefix := path[:i+1]
					if prev, ok := prefixOf[l]; ok {
						if len(prev) != len(prefix) {
							t.Fatalf("%s: link %d reached via prefixes of different lengths from src %d", topo.Name(), l, s)
						}
						for j := range prev {
							if prev[j] != prefix[j] {
								t.Fatalf("%s: link %d reached via different prefixes from src %d", topo.Name(), l, s)
							}
						}
					} else {
						prefixOf[l] = append([]LinkID(nil), prefix...)
					}
				}
			}
		}
	}
}

func TestTorusPathEndsAtDestination(t *testing.T) {
	// Walk the links of each path and verify it terminates at dst.
	torus := NewTorus(4, 4)
	linkDst := buildTorusLinkMap(torus)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			path := torus.Path(msg.NodeID(s), msg.NodeID(d))
			cur := msg.NodeID(s)
			for _, l := range path {
				from, to := linkDst[l][0], linkDst[l][1]
				if from != cur {
					t.Fatalf("path %d->%d uses link from %d while at %d", s, d, from, cur)
				}
				cur = to
			}
			if cur != msg.NodeID(d) {
				t.Fatalf("path %d->%d ends at %d", s, d, cur)
			}
		}
	}
}

// buildTorusLinkMap recovers (from, to) node pairs from the torus link
// numbering for verification.
func buildTorusLinkMap(t *Torus) map[LinkID][2]msg.NodeID {
	m := make(map[LinkID][2]msg.NodeID)
	w, h := t.Width(), t.Height()
	for n := 0; n < t.Nodes(); n++ {
		x, y := n%w, n/w
		neighbors := [numDirs]msg.NodeID{
			dirEast:  msg.NodeID(y*w + (x+1)%w),
			dirWest:  msg.NodeID(y*w + (x-1+w)%w),
			dirSouth: msg.NodeID(((y+1)%h)*w + x),
			dirNorth: msg.NodeID(((y-1+h)%h)*w + x),
		}
		for dir := 0; dir < numDirs; dir++ {
			m[LinkID(n*numDirs+dir)] = [2]msg.NodeID{msg.NodeID(n), neighbors[dir]}
		}
	}
	return m
}

func TestTorusShortestDistance(t *testing.T) {
	// Path length must equal the Manhattan distance with wraparound.
	torus := NewTorus(8, 4)
	ringDist := func(a, b, n int) int {
		fwd := (b - a + n) % n
		bwd := (a - b + n) % n
		if fwd < bwd {
			return fwd
		}
		return bwd
	}
	for s := 0; s < 32; s++ {
		for d := 0; d < 32; d++ {
			sx, sy := s%8, s/8
			dx, dy := d%8, d/8
			want := ringDist(sx, dx, 8) + ringDist(sy, dy, 4)
			if got := len(torus.Path(msg.NodeID(s), msg.NodeID(d))); got != want {
				t.Fatalf("path %d->%d = %d hops, want %d", s, d, got, want)
			}
		}
	}
}

func TestNewTorusForSizes(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {32, 8, 4}, {64, 8, 8},
	}
	for _, c := range cases {
		tor := NewTorusFor(c.n)
		if tor.Nodes() != c.n {
			t.Errorf("NewTorusFor(%d).Nodes() = %d", c.n, tor.Nodes())
		}
		if tor.Width() != c.w || tor.Height() != c.h {
			t.Errorf("NewTorusFor(%d) = %dx%d, want %dx%d", c.n, tor.Width(), tor.Height(), c.w, c.h)
		}
	}
}

func TestNewTorusForMostSquare(t *testing.T) {
	// Composite sizes factor as squarely as possible (w >= h >= 2), so
	// no dimension degenerates to a dead-link ring.
	cases := []struct{ n, w, h int }{
		{6, 3, 2}, {12, 4, 3}, {18, 6, 3}, {24, 6, 4}, {48, 8, 6}, {96, 12, 8}, {100, 10, 10},
	}
	for _, c := range cases {
		tor := NewTorusFor(c.n)
		if tor.Width() != c.w || tor.Height() != c.h {
			t.Errorf("NewTorusFor(%d) = %dx%d, want %dx%d", c.n, tor.Width(), tor.Height(), c.w, c.h)
		}
	}
}

func TestNewTorusForRejectsPrimeAndTiny(t *testing.T) {
	// A prime size would degenerate to an n x 1 ring whose North/South
	// links are dead yet counted by NumLinks; CheckTorusFor rejects it
	// (and anything below the 2x2 minimum) with a clear error instead.
	for _, n := range []int{1, 2, 3, 7, 13, 251} {
		if err := CheckTorusFor(n); err == nil {
			t.Errorf("CheckTorusFor(%d) = nil, want error", n)
		}
	}
	for _, n := range []int{4, 6, 9, 16, 64, 256} {
		if err := CheckTorusFor(n); err != nil {
			t.Errorf("CheckTorusFor(%d) = %v, want nil", n, err)
		}
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewTorus(0,4)", func() { NewTorus(0, 4) })
	mustPanic("NewTree(3)", func() { NewTree(3) })
	mustPanic("NewTree(257)", func() { NewTree(257) })
	mustPanic("NewTreeFanout(16,1)", func() { NewTreeFanout(16, 1) })
	mustPanic("NewTorusFor(0)", func() { NewTorusFor(0) })
	mustPanic("NewTorusFor(7)", func() { NewTorusFor(7) })
}

// treeSizes are the system sizes the multi-level tree properties cover:
// the paper's configurations, the new power-of-fanout sizes, and padded
// (non-power) sizes in between.
var treeSizes = []int{4, 8, 12, 16, 24, 32, 64, 100, 128, 250, 256}

// TestPropertyTreePathsCrossRoot: total order requires every message —
// unicast or broadcast, including src == dst — to funnel through the
// single root switch, entering on the root's in-bank and leaving on its
// out-bank, with path length exactly 2*Levels().
func TestPropertyTreePathsCrossRoot(t *testing.T) {
	for _, n := range treeSizes {
		tree := NewTree(n)
		L := tree.Levels()
		rootIn := tree.upOff[L-1]
		rootOut := tree.downOff[L-1]
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				path := tree.Path(msg.NodeID(s), msg.NodeID(d))
				if len(path) != 2*L {
					t.Fatalf("n=%d: path %d->%d has %d links, want 2*levels = %d", n, s, d, len(path), 2*L)
				}
				if in := int(path[L-1]); in < rootIn || in >= rootIn+tree.width[L-1] {
					t.Fatalf("n=%d: path %d->%d link %d is not a root in-link", n, s, d, in)
				}
				if out := int(path[L]); out < rootOut || out >= rootOut+tree.width[L-1] {
					t.Fatalf("n=%d: path %d->%d link %d is not a root out-link", n, s, d, out)
				}
			}
		}
		if want := float64(2 * L); AvgHops(tree) != want {
			t.Errorf("n=%d: AvgHops = %v, want %v", n, AvgHops(tree), want)
		}
	}
}

// TestPropertyTreeLinkIDsDense: the union of all paths must touch every
// link ID in [0, NumLinks) exactly — padded sizes must not leave dead
// links that would skew per-link traffic accounting.
func TestPropertyTreeLinkIDsDense(t *testing.T) {
	for _, n := range treeSizes {
		tree := NewTree(n)
		used := make([]bool, tree.NumLinks())
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				for _, l := range tree.Path(msg.NodeID(s), msg.NodeID(d)) {
					if l < 0 || int(l) >= len(used) {
						t.Fatalf("n=%d: link %d out of range [0,%d)", n, l, len(used))
					}
					used[l] = true
				}
			}
		}
		for l, u := range used {
			if !u {
				t.Errorf("n=%d: link %d is never used (dead link)", n, l)
			}
		}
	}
}

// TestTreeAvgHopsGolden pins the hop counts the large configurations
// pay: three levels (6 crossings) at 64 processors, four (8 crossings)
// at 256.
func TestTreeAvgHopsGolden(t *testing.T) {
	if got := AvgHops(NewTree(64)); got != 6 {
		t.Errorf("AvgHops(tree-64) = %v, want 6", got)
	}
	if got := AvgHops(NewTree(256)); got != 8 {
		t.Errorf("AvgHops(tree-256) = %v, want 8", got)
	}
}

// TestTreeLinkNumberingCompatible pins the 16-node link numbering to the
// paper's two-level four-bank layout, which the historical goldens and
// the link-metric interpretations assume.
func TestTreeLinkNumberingCompatible(t *testing.T) {
	tree := NewTree(16)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			got := tree.Path(msg.NodeID(s), msg.NodeID(d))
			want := []LinkID{
				LinkID(s),            // node -> in-switch
				LinkID(16 + s/4),     // in-switch -> root
				LinkID(16 + 4 + d/4), // root -> out-switch
				LinkID(16 + 8 + d),   // out-switch -> node
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("path %d->%d = %v, want %v", s, d, got, want)
				}
			}
		}
	}
}

// Property: random (src,dst) paths on random torus shapes stay in bounds
// and have length equal to the wrap Manhattan distance.
func TestPropertyTorusPathLength(t *testing.T) {
	f := func(wRaw, hRaw, sRaw, dRaw uint8) bool {
		w := int(wRaw)%8 + 1
		h := int(hRaw)%8 + 1
		n := w * h
		tor := NewTorus(w, h)
		s := msg.NodeID(int(sRaw) % n)
		d := msg.NodeID(int(dRaw) % n)
		path := tor.Path(s, d)
		ringDist := func(a, b, n int) int {
			fwd := (b - a + n) % n
			bwd := (a - b + n) % n
			if fwd < bwd {
				return fwd
			}
			return bwd
		}
		want := ringDist(int(s)%w, int(d)%w, w) + ringDist(int(s)/w, int(d)/w, h)
		return len(path) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
