package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/sweeps"
)

// TestSweepDeterminismSerialVsParallel locks in the engine's core
// guarantee for every standard sweep kind: a plan executed with one
// worker and with many workers emits byte-identical CSV and JSONL.
// PR 1 verified this by hand; this test makes it a permanent regression
// gate (at reduced point sizes so it stays fast).
func TestSweepDeterminismSerialVsParallel(t *testing.T) {
	for _, kind := range sweeps.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			// apache completes a transaction every 120 operations, so 150
			// measured ops per processor keep every metric finite (a
			// transaction-less run would serialize null cycles_per_txn,
			// hiding the runtime metric this test wants covered).
			plan, cols, err := sweeps.ByKind(kind, "apache", 3)
			if err != nil {
				t.Fatal(err)
			}
			plan.Ops = 150
			plan.Warmup = 150
			plan.Procs = 8
			// The procs sweep scales to 64 processors and the mutation
			// sweeps carry long axes; trim both so the test exercises the
			// same plan shapes at unit-test cost.
			if kind == "procs" {
				var kept []engine.Variant
				for _, v := range plan.Variants {
					if v.Point.Procs <= 8 {
						kept = append(kept, v)
					}
				}
				plan.Variants = kept
			}
			if len(plan.Mutations) > 4 {
				plan.Mutations = plan.Mutations[:4]
			}

			run := func(workers, islands int, format string) []byte {
				var buf bytes.Buffer
				var sink engine.Sink
				if format == "csv" {
					sink = &engine.CSVSink{W: &buf, Columns: cols}
				} else {
					sink = &engine.JSONLSink{W: &buf}
				}
				p := plan
				p.Islands = islands
				eng := engine.Engine{Workers: workers}
				if _, err := eng.Execute(context.Background(), p, sink); err != nil {
					t.Fatalf("workers=%d islands=%d %s: %v", workers, islands, format, err)
				}
				return buf.Bytes()
			}

			for _, format := range []string{"csv", "json"} {
				serial := run(1, 0, format)
				if len(serial) == 0 {
					t.Fatalf("%s: empty serial output", format)
				}
				for _, workers := range []int{0, 4} {
					parallel := run(workers, 0, format)
					if !bytes.Equal(serial, parallel) {
						t.Fatalf("%s output differs between workers=1 and workers=%d:\nserial:\n%s\nparallel:\n%s",
							format, workers, firstDiff(serial, parallel), parallel)
					}
				}
				// The island kernel gives the same guarantee along the other
				// axis: every point split across two conservative-parallel
				// islands must emit the bytes the serial kernel emits.
				islanded := run(1, 2, format)
				if !bytes.Equal(serial, islanded) {
					t.Fatalf("%s output differs between islands=1 and islands=2:\n%s",
						format, firstDiff(serial, islanded))
				}
			}
		})
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d bytes", len(a), len(b))
}
