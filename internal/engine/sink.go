package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/stats"
)

// Sink consumes a plan's successful results in deterministic plan
// order. Begin is called once with the total job count before any Emit.
type Sink interface {
	Begin(total int) error
	Emit(r Result) error
}

// --- CSV ---------------------------------------------------------------

// Column describes one CSV column: a header name and a formatter.
type Column struct {
	Name  string
	Value func(r Result) string
}

// TagColumn reads a mutation tag (see Mutation.Tags), so sweep axes like
// "bandwidth_gbps" appear as their own column.
func TagColumn(name string) Column {
	return Column{Name: name, Value: func(r Result) string { return r.Tags[name] }}
}

// Shared point-identity and metric columns; custom sweeps compose these
// with TagColumn so their output formats stay in sync with
// DefaultColumns.
var (
	ColProtocol     = Column{"protocol", func(r Result) string { return r.Point.Protocol }}
	ColProcs        = Column{"procs", func(r Result) string { return strconv.Itoa(r.Point.Procs) }}
	ColCyclesPerTxn = Column{"cycles_per_txn", func(r Result) string { return fmt.Sprintf("%.2f", r.Run.CyclesPerTransaction()) }}
	ColAvgMissNS    = Column{"avg_miss_ns", func(r Result) string { return fmt.Sprintf("%.1f", r.Run.AvgMissLatency().Nanoseconds()) }}
	ColBytesPerMiss = Column{"bytes_per_miss", func(r Result) string { return fmt.Sprintf("%.1f", r.Run.BytesPerMiss()) }}
	ColReissuedPct  = Column{"reissued_pct", func(r Result) string {
		m := r.Run.Misses
		return fmt.Sprintf("%.2f", m.Frac(m.ReissuedOnce+m.ReissuedMore))
	}}
	ColPersistentPct = Column{"persistent_pct", func(r Result) string {
		m := r.Run.Misses
		return fmt.Sprintf("%.3f", m.Frac(m.Persistent))
	}}
)

// DefaultColumns identify the point and report the headline metrics.
func DefaultColumns() []Column {
	return []Column{
		{"variant", func(r Result) string { return r.Variant }},
		ColProtocol,
		{"topo", func(r Result) string { return r.Point.Topo }},
		{"workload", func(r Result) string { return r.Point.Workload }},
		{"mutation", func(r Result) string { return r.Mutation }},
		{"seed", func(r Result) string { return strconv.FormatUint(r.Point.Seed, 10) }},
		{"unlimited", func(r Result) string { return strconv.FormatBool(r.Point.Unlimited) }},
		ColProcs,
		ColCyclesPerTxn,
		ColAvgMissNS,
		ColBytesPerMiss,
		ColReissuedPct,
		ColPersistentPct,
	}
}

// CSVSink writes a header then one row per successful result.
type CSVSink struct {
	W io.Writer
	// Columns defaults to DefaultColumns when nil.
	Columns []Column
}

// Begin writes the header row.
func (s *CSVSink) Begin(total int) error {
	if s.Columns == nil {
		s.Columns = DefaultColumns()
	}
	return s.writeRow(func(c Column) string { return c.Name })
}

// Emit writes one row.
func (s *CSVSink) Emit(r Result) error {
	return s.writeRow(func(c Column) string { return c.Value(r) })
}

func (s *CSVSink) writeRow(field func(Column) string) error {
	for i, c := range s.Columns {
		if i > 0 {
			if _, err := io.WriteString(s.W, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(s.W, field(c)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(s.W, "\n")
	return err
}

// --- JSON lines --------------------------------------------------------

// JSONLSink writes one JSON object per successful result.
type JSONLSink struct {
	W io.Writer
}

type jsonlRecord struct {
	Variant       string            `json:"variant"`
	Protocol      string            `json:"protocol"`
	Topo          string            `json:"topo"`
	Workload      string            `json:"workload,omitempty"`
	Mutation      string            `json:"mutation,omitempty"`
	Tags          map[string]string `json:"tags,omitempty"`
	Seed          uint64            `json:"seed"`
	Unlimited     bool              `json:"unlimited,omitempty"`
	Procs         int               `json:"procs,omitempty"`
	CyclesPerTxn  float64           `json:"cycles_per_txn"`
	AvgMissNS     float64           `json:"avg_miss_ns"`
	BytesPerMiss  float64           `json:"bytes_per_miss"`
	ReissuedPct   float64           `json:"reissued_pct"`
	PersistentPct float64           `json:"persistent_pct"`
}

// Begin implements Sink.
func (s *JSONLSink) Begin(total int) error { return nil }

// Emit writes one line.
func (s *JSONLSink) Emit(r Result) error {
	m := r.Run.Misses
	rec := jsonlRecord{
		Variant:       r.Variant,
		Protocol:      r.Point.Protocol,
		Topo:          r.Point.Topo,
		Workload:      r.Point.Workload,
		Mutation:      r.Mutation,
		Tags:          r.Tags,
		Seed:          r.Point.Seed,
		Unlimited:     r.Point.Unlimited,
		Procs:         r.Point.Procs,
		CyclesPerTxn:  r.Run.CyclesPerTransaction(),
		AvgMissNS:     r.Run.AvgMissLatency().Nanoseconds(),
		BytesPerMiss:  r.Run.BytesPerMiss(),
		ReissuedPct:   m.Frac(m.ReissuedOnce + m.ReissuedMore),
		PersistentPct: m.Frac(m.Persistent),
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.W.Write(b)
	return err
}

// --- In-memory aggregation ---------------------------------------------

// Aggregate accumulates the per-seed runs of one grid cell — one
// (variant, workload, mutation, unlimited) combination.
type Aggregate struct {
	Variant   string
	Workload  string
	Mutation  string
	Unlimited bool
	// Runs holds the cell's per-seed runs in seed-axis order.
	Runs []*stats.Run
}

// MeanCyclesPerTxn averages the runtime metric over the cell's seeds.
func (a *Aggregate) MeanCyclesPerTxn() float64 {
	var s stats.Sample
	for _, r := range a.Runs {
		s.Add(r.CyclesPerTransaction())
	}
	return s.Mean()
}

// MeanBytesPerMiss averages the traffic metric over the cell's seeds.
func (a *Aggregate) MeanBytesPerMiss() float64 {
	var s stats.Sample
	for _, r := range a.Runs {
		s.Add(r.BytesPerMiss())
	}
	return s.Mean()
}

// MeanCategoryBytesPerMiss averages one message category's bytes/miss.
func (a *Aggregate) MeanCategoryBytesPerMiss(c msg.Category) float64 {
	var s stats.Sample
	for _, r := range a.Runs {
		s.Add(r.CategoryBytesPerMiss(c))
	}
	return s.Mean()
}

// SumMisses sums the miss classification over the cell's seeds.
func (a *Aggregate) SumMisses() stats.Misses {
	var m stats.Misses
	for _, r := range a.Runs {
		m.Issued += r.Misses.Issued
		m.ReissuedOnce += r.Misses.ReissuedOnce
		m.ReissuedMore += r.Misses.ReissuedMore
		m.Persistent += r.Misses.Persistent
	}
	return m
}

type cellKey struct {
	variant, workload, mutation string
	unlimited                   bool
}

// AggregateSink collapses the seed axis: results sharing a grid cell
// accumulate into one Aggregate, in first-seen (plan) order.
type AggregateSink struct {
	cells []*Aggregate
	index map[cellKey]*Aggregate
}

// Begin implements Sink.
func (s *AggregateSink) Begin(total int) error { return nil }

// Emit implements Sink.
func (s *AggregateSink) Emit(r Result) error {
	key := cellKey{r.Variant, r.Point.Workload, r.Mutation, r.Point.Unlimited}
	if s.index == nil {
		s.index = map[cellKey]*Aggregate{}
	}
	cell := s.index[key]
	if cell == nil {
		cell = &Aggregate{
			Variant:   r.Variant,
			Workload:  r.Point.Workload,
			Mutation:  r.Mutation,
			Unlimited: r.Point.Unlimited,
		}
		s.index[key] = cell
		s.cells = append(s.cells, cell)
	}
	cell.Runs = append(cell.Runs, r.Run)
	return nil
}

// Cells returns the aggregates in plan order.
func (s *AggregateSink) Cells() []*Aggregate { return s.cells }

// Find returns the named cell, or nil.
func (s *AggregateSink) Find(variant, workload, mutation string, unlimited bool) *Aggregate {
	return s.index[cellKey{variant, workload, mutation, unlimited}]
}
