package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/stats"
)

// Sink consumes a plan's successful results in deterministic plan
// order. Begin is called once with the total job count before any Emit.
type Sink interface {
	Begin(total int) error
	Emit(r Result) error
}

// --- CSV ---------------------------------------------------------------

// Column describes one CSV column: a header name and a formatter.
type Column struct {
	Name  string
	Value func(r Result) string
}

// TagColumn reads a mutation tag (see Mutation.Tags), so sweep axes like
// "bandwidth_gbps" appear as their own column.
func TagColumn(name string) Column {
	return Column{Name: name, Value: func(r Result) string { return r.Tags[name] }}
}

// MetricColumn selects a metric by name from each result's snapshot,
// rendered with the metric's declared format verb, so any measurement a
// component or probe publishes — not just the hand-picked defaults — can
// appear as a CSV column. A result whose schema lacks the metric (a
// protocol that does not publish it) yields an empty cell.
func MetricColumn(name string) Column {
	return Column{Name: name, Value: func(r Result) string {
		if r.Metrics == nil {
			return ""
		}
		s, _ := r.Metrics.Formatted(name)
		return s
	}}
}

// Point-identity columns, selectable by name alongside metrics.
var (
	colVariant   = Column{"variant", func(r Result) string { return r.Variant }}
	colTopo      = Column{"topo", func(r Result) string { return r.Point.Topo }}
	colWorkload  = Column{"workload", func(r Result) string { return r.Point.Workload }}
	colMutation  = Column{"mutation", func(r Result) string { return r.Mutation }}
	colSeed      = Column{"seed", func(r Result) string { return strconv.FormatUint(r.Point.Seed, 10) }}
	colUnlimited = Column{"unlimited", func(r Result) string { return strconv.FormatBool(r.Point.Unlimited) }}
)

// identityColumns lists them in DefaultColumns order.
var identityColumns = []Column{
	colVariant, ColProtocol, colTopo, colWorkload,
	colMutation, colSeed, colUnlimited, ColProcs,
}

// ColumnByName resolves one column name: first the point-identity
// columns (variant, protocol, topo, workload, mutation, seed, unlimited,
// procs), then the result's metric schema, then its mutation tags. The
// returned column never fails at selection time — an unknown name simply
// renders empty cells — because the metric schema can vary per result in
// a mixed-protocol plan.
func ColumnByName(name string) Column {
	for _, c := range identityColumns {
		if c.Name == name {
			return c
		}
	}
	return Column{Name: name, Value: func(r Result) string {
		if r.Metrics != nil {
			if s, ok := r.Metrics.Formatted(name); ok {
				return s
			}
		}
		return r.Tags[name]
	}}
}

// ColumnsByName resolves a list of column names (see ColumnByName), the
// engine-side implementation of the commands' -columns flag.
func ColumnsByName(names []string) []Column {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = ColumnByName(n)
	}
	return cols
}

// SplitColumnSpec parses a comma-separated column-name list (the
// commands' -columns flag syntax): blanks are trimmed, empty entries
// dropped.
func SplitColumnSpec(spec string) []string {
	var names []string
	for _, n := range strings.Split(spec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// UnknownColumns returns the entries of names that match no identity
// column, no metric in descs, and no tag key in tags — so commands can
// reject a typoed -columns selection up front with the valid names,
// instead of silently rendering empty cells. (Per-result resolution
// still tolerates schema-less names: a mixed-protocol plan legitimately
// lacks some metrics on some results.)
func UnknownColumns(names []string, descs []stats.Desc, tags []string) []string {
	known := make(map[string]bool, len(identityColumns)+len(descs)+len(tags))
	for _, c := range identityColumns {
		known[c.Name] = true
	}
	for _, d := range descs {
		known[d.Name] = true
	}
	for _, t := range tags {
		known[t] = true
	}
	var unknown []string
	for _, n := range names {
		if !known[n] {
			unknown = append(unknown, n)
		}
	}
	return unknown
}

// WriteMetricSchema renders a metric schema as the commands'
// -list-metrics table: name, unit, help, one metric per line.
func WriteMetricSchema(w io.Writer, descs []stats.Desc) error {
	for _, d := range descs {
		if _, err := fmt.Fprintf(w, "%-24s %-12s %s\n", d.Name, d.Unit, d.Help); err != nil {
			return err
		}
	}
	return nil
}

// Shared point-identity and metric columns; custom sweeps compose these
// with TagColumn so their output formats stay in sync with
// DefaultColumns. The metric columns read the run's snapshot by name;
// their formats come from the metric schema (see machine.System).
var (
	ColProtocol      = Column{"protocol", func(r Result) string { return r.Point.Protocol }}
	ColProcs         = Column{"procs", func(r Result) string { return strconv.Itoa(r.Point.Procs) }}
	ColCyclesPerTxn  = MetricColumn("cycles_per_txn")
	ColAvgMissNS     = MetricColumn("avg_miss_ns")
	ColBytesPerMiss  = MetricColumn("bytes_per_miss")
	ColReissuedPct   = MetricColumn("reissued_pct")
	ColPersistentPct = MetricColumn("persistent_pct")
)

// DefaultColumns identify the point and report the headline metrics.
func DefaultColumns() []Column {
	cols := make([]Column, 0, len(identityColumns)+5)
	cols = append(cols, identityColumns...)
	return append(cols,
		ColCyclesPerTxn,
		ColAvgMissNS,
		ColBytesPerMiss,
		ColReissuedPct,
		ColPersistentPct,
	)
}

// CSVSink writes a header then one row per successful result.
type CSVSink struct {
	W io.Writer
	// Columns defaults to DefaultColumns when nil.
	Columns []Column
}

// Begin writes the header row.
func (s *CSVSink) Begin(total int) error {
	if s.Columns == nil {
		s.Columns = DefaultColumns()
	}
	return s.writeRow(func(c Column) string { return c.Name })
}

// Emit writes one row.
func (s *CSVSink) Emit(r Result) error {
	return s.writeRow(func(c Column) string { return c.Value(r) })
}

// End flushes the underlying writer when it buffers (implements
// Flush() error), so interrupted sweeps leave complete rows on disk.
func (s *CSVSink) End() error { return flushWriter(s.W) }

// flushWriter forwards to w's Flush method when it has one (bufio.Writer
// and friends); unbuffered writers need nothing.
func flushWriter(w io.Writer) error {
	if f, ok := w.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

func (s *CSVSink) writeRow(field func(Column) string) error {
	for i, c := range s.Columns {
		if i > 0 {
			if _, err := io.WriteString(s.W, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(s.W, field(c)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(s.W, "\n")
	return err
}

// --- JSON lines --------------------------------------------------------

// JSONLSink writes one JSON object per successful result: the point's
// identity, the headline metrics as top-level fields (null when
// non-finite), and the full metric map (every named metric whose value
// is finite — JSON cannot encode the Inf a transaction-less run
// reports — with keys sorted by the JSON encoder, hence deterministic).
type JSONLSink struct {
	W io.Writer
}

// jsonFloat marshals like a plain float64 except that the non-finite
// values JSON cannot encode (the +Inf a transaction-less run reports)
// become null instead of failing the whole sweep at its last step.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

type jsonlRecord struct {
	Variant       string             `json:"variant"`
	Protocol      string             `json:"protocol"`
	Topo          string             `json:"topo"`
	Workload      string             `json:"workload,omitempty"`
	Mutation      string             `json:"mutation,omitempty"`
	Tags          map[string]string  `json:"tags,omitempty"`
	Seed          uint64             `json:"seed"`
	Unlimited     bool               `json:"unlimited,omitempty"`
	Procs         int                `json:"procs,omitempty"`
	CyclesPerTxn  jsonFloat          `json:"cycles_per_txn"`
	AvgMissNS     jsonFloat          `json:"avg_miss_ns"`
	BytesPerMiss  jsonFloat          `json:"bytes_per_miss"`
	ReissuedPct   jsonFloat          `json:"reissued_pct"`
	PersistentPct jsonFloat          `json:"persistent_pct"`
	Metrics       map[string]float64 `json:"metrics,omitempty"`
}

// Begin implements Sink.
func (s *JSONLSink) Begin(total int) error { return nil }

// End flushes the underlying writer when it buffers (see CSVSink.End).
func (s *JSONLSink) End() error { return flushWriter(s.W) }

// Emit writes one line.
func (s *JSONLSink) Emit(r Result) error {
	m := r.Run.Misses
	rec := jsonlRecord{
		Variant:       r.Variant,
		Protocol:      r.Point.Protocol,
		Topo:          r.Point.Topo,
		Workload:      r.Point.Workload,
		Mutation:      r.Mutation,
		Tags:          r.Tags,
		Seed:          r.Point.Seed,
		Unlimited:     r.Point.Unlimited,
		Procs:         r.Point.Procs,
		CyclesPerTxn:  jsonFloat(r.Run.CyclesPerTransaction()),
		AvgMissNS:     jsonFloat(r.Run.AvgMissLatency().Nanoseconds()),
		BytesPerMiss:  jsonFloat(r.Run.BytesPerMiss()),
		ReissuedPct:   jsonFloat(m.Frac(m.ReissuedOnce + m.ReissuedMore)),
		PersistentPct: jsonFloat(m.Frac(m.Persistent)),
	}
	if r.Metrics != nil {
		rec.Metrics = r.Metrics.FiniteMap()
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.W.Write(b)
	return err
}

// --- In-memory aggregation ---------------------------------------------

// Aggregate accumulates the per-seed runs of one grid cell — one
// (variant, workload, mutation, unlimited) combination.
type Aggregate struct {
	Variant   string
	Workload  string
	Mutation  string
	Unlimited bool
	// Runs holds the cell's per-seed runs in seed-axis order.
	Runs []*stats.Run
}

// MeanCyclesPerTxn averages the runtime metric over the cell's seeds.
func (a *Aggregate) MeanCyclesPerTxn() float64 {
	var s stats.Sample
	for _, r := range a.Runs {
		s.Add(r.CyclesPerTransaction())
	}
	return s.Mean()
}

// MeanBytesPerMiss averages the traffic metric over the cell's seeds.
func (a *Aggregate) MeanBytesPerMiss() float64 {
	var s stats.Sample
	for _, r := range a.Runs {
		s.Add(r.BytesPerMiss())
	}
	return s.Mean()
}

// MeanCategoryBytesPerMiss averages one message category's bytes/miss.
func (a *Aggregate) MeanCategoryBytesPerMiss(c msg.Category) float64 {
	var s stats.Sample
	for _, r := range a.Runs {
		s.Add(r.CategoryBytesPerMiss(c))
	}
	return s.Mean()
}

// SumMisses sums the miss classification over the cell's seeds.
func (a *Aggregate) SumMisses() stats.Misses {
	var m stats.Misses
	for _, r := range a.Runs {
		m.Issued += r.Misses.Issued
		m.ReissuedOnce += r.Misses.ReissuedOnce
		m.ReissuedMore += r.Misses.ReissuedMore
		m.Persistent += r.Misses.Persistent
	}
	return m
}

type cellKey struct {
	variant, workload, mutation string
	unlimited                   bool
}

// AggregateSink collapses the seed axis: results sharing a grid cell
// accumulate into one Aggregate, in first-seen (plan) order.
type AggregateSink struct {
	cells []*Aggregate
	index map[cellKey]*Aggregate
}

// Begin implements Sink.
func (s *AggregateSink) Begin(total int) error { return nil }

// Emit implements Sink.
func (s *AggregateSink) Emit(r Result) error {
	key := cellKey{r.Variant, r.Point.Workload, r.Mutation, r.Point.Unlimited}
	if s.index == nil {
		s.index = map[cellKey]*Aggregate{}
	}
	cell := s.index[key]
	if cell == nil {
		cell = &Aggregate{
			Variant:   r.Variant,
			Workload:  r.Point.Workload,
			Mutation:  r.Mutation,
			Unlimited: r.Point.Unlimited,
		}
		s.index[key] = cell
		s.cells = append(s.cells, cell)
	}
	cell.Runs = append(cell.Runs, r.Run)
	return nil
}

// Cells returns the aggregates in plan order.
func (s *AggregateSink) Cells() []*Aggregate { return s.cells }

// Find returns the named cell, or nil.
func (s *AggregateSink) Find(variant, workload, mutation string, unlimited bool) *Aggregate {
	return s.index[cellKey{variant, workload, mutation, unlimited}]
}
