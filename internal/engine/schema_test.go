package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
)

// commonSchemaPrefix is the machine + interconnect schema every protocol
// exposes, in registration order. This is a golden list: renaming or
// reordering a metric breaks downstream column selections and JSONL
// consumers, so it must fail loudly here and be an explicit decision.
var commonSchemaPrefix = []string{
	"elapsed_ns",
	"transactions",
	"cycles_per_txn",
	"accesses",
	"l1_hits",
	"l2_hits",
	"upgrades",
	"writebacks",
	"misses",
	"misses_not_reissued",
	"misses_reissued_once",
	"misses_reissued_more",
	"misses_persistent",
	"reissued_pct",
	"persistent_pct",
	"avg_miss_ns",
	"miss_latency_p50_ns",
	"miss_latency_p99_ns",
	"miss_latency_max_ns",
	"bytes_per_miss",
	"bytes_per_miss_request",
	"bytes_per_miss_reissue",
	"bytes_per_miss_control",
	"bytes_per_miss_data",
	"events_scheduled",
	"events_executed",
	"bytes_total",
	"bytes_request",
	"bytes_reissue",
	"bytes_control",
	"bytes_data",
	"msgs_request",
	"msgs_reissue",
	"msgs_control",
	"msgs_data",
}

// protocolSchemaSuffix is each built-in protocol's own contribution.
var protocolSchemaSuffix = map[string][]string{
	"tokenb":    {"reissues", "token_transfers", "persistent_activations"},
	"tokend":    {"reissues", "token_transfers", "persistent_activations"},
	"tokenm":    {"reissues", "token_transfers", "persistent_activations"},
	"snooping":  {"snoop_broadcasts"},
	"directory": {"dir_home_requests"},
	"hammer":    {"hammer_home_requests"},
}

// TestMetricSchemaGolden locks the metric schema: deterministic names in
// a deterministic order per protocol. It runs before any test in this
// file registers a probe (tests in a file run in declaration order), so
// the schema here is exactly the built-ins'.
func TestMetricSchemaGolden(t *testing.T) {
	for proto, suffix := range protocolSchemaSuffix {
		descs, err := engine.MetricSchema(engine.Point{Protocol: proto})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		var names []string
		for _, d := range descs {
			names = append(names, d.Name)
			if d.Unit == "" || d.Help == "" || d.Fmt == "" {
				t.Errorf("%s: metric %q missing unit/help/fmt: %+v", proto, d.Name, d)
			}
		}
		want := append(append([]string(nil), commonSchemaPrefix...), suffix...)
		if !reflect.DeepEqual(names, want) {
			t.Errorf("%s schema drifted:\n got %v\nwant %v", proto, names, want)
		}
	}
	// Schema queries resolve through the registry like everything else.
	if _, err := engine.MetricSchema(engine.Point{Protocol: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown protocol schema error = %v", err)
	}
}

// TestMetricSchemaColumnFormats locks the format verbs behind the
// columns DefaultColumns selects, which keep CSV output byte-stable.
func TestMetricSchemaColumnFormats(t *testing.T) {
	descs, err := engine.MetricSchema(engine.Point{Protocol: "tokenb"})
	if err != nil {
		t.Fatal(err)
	}
	fmts := map[string]string{}
	for _, d := range descs {
		fmts[d.Name] = d.Fmt
	}
	for name, want := range map[string]string{
		"cycles_per_txn": "%.2f",
		"avg_miss_ns":    "%.1f",
		"bytes_per_miss": "%.1f",
		"reissued_pct":   "%.2f",
		"persistent_pct": "%.3f",
	} {
		if fmts[name] != want {
			t.Errorf("%s Fmt = %q, want %q", name, fmts[name], want)
		}
	}
}

// TestMetricColumnsMatchRunFields verifies the by-name columns report
// exactly what the Run struct's accessors report, for a real run.
func TestMetricColumnsMatchRunFields(t *testing.T) {
	run, snap, err := engine.RunPointMetrics(engine.Point{
		Protocol: "tokenb", Workload: "oltp", Procs: 4, Ops: 300, Warmup: 300, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := engine.Result{Run: run, Metrics: snap}
	m := run.Misses
	for _, tc := range []struct {
		col  engine.Column
		want string
	}{
		{engine.ColCyclesPerTxn, fmt.Sprintf("%.2f", run.CyclesPerTransaction())},
		{engine.ColAvgMissNS, fmt.Sprintf("%.1f", run.AvgMissLatency().Nanoseconds())},
		{engine.ColBytesPerMiss, fmt.Sprintf("%.1f", run.BytesPerMiss())},
		{engine.ColReissuedPct, fmt.Sprintf("%.2f", m.Frac(m.ReissuedOnce+m.ReissuedMore))},
		{engine.ColPersistentPct, fmt.Sprintf("%.3f", m.Frac(m.Persistent))},
		{engine.MetricColumn("transactions"), fmt.Sprintf("%d", run.Transactions)},
		{engine.MetricColumn("misses"), fmt.Sprintf("%d", m.Issued)},
	} {
		if got := tc.col.Value(r); got != tc.want {
			t.Errorf("column %s = %q, want %q", tc.col.Name, got, tc.want)
		}
	}
	// A metric the snapshot lacks renders an empty cell, not an error.
	if got := engine.MetricColumn("no_such_metric").Value(r); got != "" {
		t.Errorf("missing metric column = %q, want empty", got)
	}
	if got := engine.MetricColumn("anything").Value(engine.Result{Run: run}); got != "" {
		t.Errorf("nil-snapshot column = %q, want empty", got)
	}
}

// TestColumnByNameResolution covers the -columns resolution order:
// identity fields, then metrics, then mutation tags.
func TestColumnByNameResolution(t *testing.T) {
	run, snap, err := engine.RunPointMetrics(engine.Point{
		Protocol: "directory", Workload: "apache", Procs: 4, Ops: 200, Warmup: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := engine.Result{
		Job: engine.Job{
			Variant: "dir-v", Mutation: "m1",
			Tags:  map[string]string{"bandwidth_gbps": "3.2", "misses": "tag-shadowed"},
			Point: engine.Point{Protocol: "directory", Topo: "torus", Workload: "apache", Procs: 4, Seed: 9},
		},
		Run: run, Metrics: snap,
	}
	cols := engine.ColumnsByName([]string{"protocol", "seed", "misses", "bandwidth_gbps", "unknown"})
	got := make([]string, len(cols))
	for i, c := range cols {
		got[i] = c.Value(r)
	}
	want := []string{
		"directory", "9",
		fmt.Sprintf("%d", run.Misses.Issued), // metric wins over the same-named tag
		"3.2",                                // tag fallback
		"",                                   // unknown name: empty cells
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resolved values = %q, want %q", got, want)
	}
	if cols[2].Name != "misses" || cols[4].Name != "unknown" {
		t.Errorf("column headers wrong: %v", []string{cols[2].Name, cols[4].Name})
	}
}

// TestProbeDerivesMetricEndToEnd registers a probe through the registry
// and checks the full path: observer events → probe counter → snapshot →
// by-name CSV column, under a parallel engine run. It is declared last
// in this file because the probe stays registered for the rest of the
// binary (the earlier golden test must see the built-in schema).
func TestProbeDerivesMetricEndToEnd(t *testing.T) {
	registry.RegisterProbe(registry.Probe{
		Name: "engine-test-slow-miss",
		New: func(ms *stats.MetricSet) *stats.Observer {
			slow := ms.Counter(stats.Desc{
				Name: "probe_slow_misses", Unit: "count", Fmt: "%.0f",
				Help: "misses slower than 500ns",
			})
			total := ms.Counter(stats.Desc{
				Name: "probe_completed_misses", Unit: "count", Fmt: "%.0f",
				Help: "misses observed to complete",
			})
			return &stats.Observer{
				MissCompleted: func(proc int, block msg.Block, reissues int, persistent bool, latency sim.Time) {
					total.Inc()
					if latency > 500*sim.Nanosecond {
						slow.Inc()
					}
				},
			}
		},
	})

	// The probe's metrics append to every protocol's schema.
	descs, err := engine.MetricSchema(engine.Point{Protocol: "tokenb"})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(descs))
	for i, d := range descs {
		names[i] = d.Name
	}
	wantTail := []string{"probe_slow_misses", "probe_completed_misses"}
	if got := names[len(names)-2:]; !reflect.DeepEqual(got, wantTail) {
		t.Fatalf("schema tail = %v, want %v", got, wantTail)
	}

	// Run a two-seed plan in parallel and select the probe metric as a
	// CSV column by name.
	plan := engine.Plan{
		Variants: []engine.Variant{{Point: engine.Point{Protocol: "tokenb", Workload: "oltp"}}},
		Seeds:    []uint64{1, 2},
		Ops:      250, Warmup: 250, Procs: 4,
	}
	var buf bytes.Buffer
	sink := &engine.CSVSink{W: &buf, Columns: engine.ColumnsByName(
		[]string{"seed", "probe_completed_misses", "probe_slow_misses"})}
	results, err := engine.Engine{Workers: 2}.Execute(context.Background(), plan, sink)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "seed,probe_completed_misses,probe_slow_misses" {
		t.Fatalf("unexpected CSV:\n%s", buf.String())
	}
	for i, r := range results {
		// The probe counted exactly the measured interval's misses: the
		// MetricSet reset at the warmup boundary covered its counter too.
		v, ok := r.Metrics.Value("probe_completed_misses")
		if !ok || uint64(v) != r.Run.MissLatencyCount {
			t.Errorf("seed %d: probe_completed_misses = %v (ok=%v), run counted %d",
				r.Point.Seed, v, ok, r.Run.MissLatencyCount)
		}
		wantRow := fmt.Sprintf("%d,%.0f,%s", r.Point.Seed, v, mustFormatted(t, r.Metrics, "probe_slow_misses"))
		if lines[i+1] != wantRow {
			t.Errorf("row %d = %q, want %q", i+1, lines[i+1], wantRow)
		}
	}
}

// TestJSONLSinkNonFiniteValues locks the degenerate-run behavior: a
// measured interval with zero transactions reports +Inf cycles/txn,
// which serializes as null instead of aborting the sweep at its last
// step.
func TestJSONLSinkNonFiniteValues(t *testing.T) {
	var buf bytes.Buffer
	sink := &engine.JSONLSink{W: &buf}
	run := &stats.Run{} // zero transactions: CyclesPerTransaction is +Inf
	if err := sink.Emit(engine.Result{
		Job: engine.Job{Point: engine.Point{Protocol: "tokenb", Topo: "torus"}},
		Run: run,
	}); err != nil {
		t.Fatalf("Emit with non-finite metrics: %v", err)
	}
	line := buf.String()
	if !strings.Contains(line, `"cycles_per_txn":null`) {
		t.Errorf("non-finite cycles_per_txn not serialized as null: %s", line)
	}
	if !strings.Contains(line, `"avg_miss_ns":0`) {
		t.Errorf("finite fields disturbed: %s", line)
	}
}

func mustFormatted(t *testing.T, s *stats.Snapshot, name string) string {
	t.Helper()
	v, ok := s.Formatted(name)
	if !ok {
		t.Fatalf("metric %s missing from snapshot", name)
	}
	return v
}
