// Package engine is the experiment-execution subsystem: it defines the
// unit of work (a Point, one deterministic simulation configuration),
// declarative sweep plans that expand cartesian grids of points, a
// bounded-parallelism Engine that executes a plan with per-point panic
// isolation and deterministic result ordering, and Sinks that consume
// the ordered results (CSV, JSON lines, in-memory aggregates).
//
// Every simulation point is an independent deterministic run, so the
// engine parallelizes across points freely: a plan executed with one
// worker and with many workers emits byte-identical output.
package engine

import (
	"fmt"

	"tokencoherence/internal/core"
	"tokencoherence/internal/directory"
	"tokencoherence/internal/hammer"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/snooping"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/workload"
)

// Protocol names.
const (
	ProtoTokenB    = "tokenb"
	ProtoSnooping  = "snooping"
	ProtoDirectory = "directory"
	ProtoHammer    = "hammer"
	ProtoTokenD    = "tokend"
	ProtoTokenM    = "tokenm"
)

// Topology names.
const (
	TopoTree  = "tree"
	TopoTorus = "torus"
)

// Point is one simulation configuration.
type Point struct {
	Protocol string
	Topo     string
	Workload string // commercial workload name, or "" to use Gen/NewGen

	// Gen is a pre-built generator. A generator carries mutable
	// per-processor state, so a Gen-bearing point must expand to exactly
	// one job in a Plan; plans that vary seeds or mutations must use
	// NewGen instead so that every job gets a fresh generator.
	Gen machine.Generator
	// NewGen builds a fresh generator for the point's (defaulted)
	// processor count; it takes precedence over Gen and is safe under
	// parallel execution.
	NewGen func(procs int) machine.Generator

	Procs  int
	Ops    int // operations per processor (measured)
	Warmup int // cache-warming operations per processor (unmeasured)
	Seed   uint64

	// Unlimited removes the bandwidth limit (infinite links).
	Unlimited bool
	// PerfectDir sets the directory lookup latency to zero.
	PerfectDir bool
	// Mutate optionally adjusts the configuration last.
	Mutate func(*machine.Config)
}

// withDefaults fills the sizing fields RunPoint would otherwise default
// internally, so expanded plan jobs report the values that actually ran.
func (pt Point) withDefaults() Point {
	if pt.Procs == 0 {
		pt.Procs = 16
	}
	if pt.Ops == 0 {
		pt.Ops = 4000
	}
	return pt
}

// RunPoint executes one point and returns its statistics. Token
// Coherence points are additionally audited for token conservation.
func RunPoint(pt Point) (*stats.Run, error) {
	pt = pt.withDefaults()
	cfg := machine.DefaultConfig()
	cfg.Procs = pt.Procs
	if cfg.TokensPerBlock < pt.Procs {
		cfg.TokensPerBlock = pt.Procs * 2
	}
	if pt.Unlimited {
		cfg.Net = cfg.Net.Unlimited()
	}
	if pt.PerfectDir {
		cfg.DirLatency = 0
	}
	if pt.Mutate != nil {
		pt.Mutate(&cfg)
	}

	var topo topology.Topology
	switch pt.Topo {
	case TopoTree, "":
		if pt.Topo == TopoTree || pt.Protocol == ProtoSnooping {
			topo = topology.NewTree(pt.Procs)
		} else {
			topo = topology.NewTorusFor(pt.Procs)
		}
	case TopoTorus:
		topo = topology.NewTorusFor(pt.Procs)
	default:
		return nil, fmt.Errorf("engine: unknown topology %q", pt.Topo)
	}

	gen := pt.Gen
	if pt.NewGen != nil {
		gen = pt.NewGen(pt.Procs)
	}
	if gen == nil {
		params, err := workload.Commercial(pt.Workload)
		if err != nil {
			return nil, err
		}
		gen = workload.NewGenerator(params, pt.Procs)
	}

	sys := machine.NewSystem(cfg, topo, pt.Seed)
	var ctrls []machine.Controller
	var audit func() error
	switch pt.Protocol {
	case ProtoTokenB:
		ts := core.BuildTokenB(sys)
		ctrls = ts.Controllers()
		audit = ts.Audit
	case ProtoTokenD:
		ts := core.BuildTokenD(sys)
		ctrls = ts.Controllers()
		audit = ts.Audit
	case ProtoTokenM:
		ts := core.BuildTokenM(sys)
		ctrls = ts.Controllers()
		audit = ts.Audit
	case ProtoSnooping:
		ctrls = snooping.Build(sys).Controllers()
	case ProtoDirectory:
		ctrls = directory.Build(sys).Controllers()
	case ProtoHammer:
		ctrls = hammer.Build(sys).Controllers()
	default:
		return nil, fmt.Errorf("engine: unknown protocol %q", pt.Protocol)
	}

	run, err := sys.ExecuteWarm(ctrls, gen, pt.Warmup, pt.Ops)
	if err != nil {
		return run, fmt.Errorf("%s/%s/%s: %w", pt.Protocol, pt.Topo, pt.Workload, err)
	}
	if audit != nil {
		if err := audit(); err != nil {
			return run, fmt.Errorf("%s/%s/%s: %w", pt.Protocol, pt.Topo, pt.Workload, err)
		}
	}
	return run, nil
}
