// Package engine is the experiment-execution subsystem: it defines the
// unit of work (a Point, one deterministic simulation configuration),
// declarative sweep plans that expand cartesian grids of points, a
// bounded-parallelism Engine that executes a plan with per-point panic
// isolation and deterministic result ordering, and Sinks that consume
// the ordered results (CSV, JSON lines, in-memory aggregates).
//
// Every simulation point is an independent deterministic run, so the
// engine parallelizes across points freely: a plan executed with one
// worker and with many workers emits byte-identical output.
//
// Points name their protocol, topology, and workload; the engine
// resolves those names through internal/registry, so components
// registered by users run exactly like the built-ins. Resolution happens
// once per point — Point.Validate at plan-expansion time, then RunPoint
// before constructing the machine — and never on the simulation hot
// path. Unknown names fail early with the registered names in the
// error.
package engine

import (
	"fmt"
	"strings"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
)

// Built-in protocol names (see internal/registry for the full, possibly
// user-extended, set).
const (
	ProtoTokenB       = "tokenb"
	ProtoSnooping     = "snooping"
	ProtoDirectory    = "directory"
	ProtoHammer       = "hammer"
	ProtoTokenD       = "tokend"
	ProtoTokenM       = "tokenm"
	ProtoDir2         = "dir2"
	ProtoRegionFilter = "regionfilter"
)

// Built-in topology names.
const (
	TopoTree  = "tree"
	TopoTorus = "torus"
)

// Point is one simulation configuration.
type Point struct {
	Protocol string
	// Topo names a registered topology, or "" to use the protocol's
	// default fabric: the first registered topology the protocol can run
	// on (the tree for order-requiring protocols, the torus otherwise).
	Topo     string
	Workload string // registered workload name, or "" to use Gen/NewGen

	// Gen is a pre-built generator. A generator carries mutable
	// per-processor state, so a Gen-bearing point must expand to exactly
	// one job in a Plan; plans that vary seeds or mutations must use
	// NewGen instead so that every job gets a fresh generator.
	Gen machine.Generator
	// NewGen builds a fresh generator for the point's (defaulted)
	// processor count; it takes precedence over Gen and is safe under
	// parallel execution.
	NewGen func(procs int) machine.Generator
	// GenID names what a Gen/NewGen generator computes, giving an
	// otherwise-opaque closure a stable content identity for the result
	// store (see PointKey). Leave it empty to mark the point uncacheable.
	// Callers own its correctness: two different generators sharing one
	// GenID would satisfy each other's cache lookups. Points using a
	// registered Workload ignore it — the workload name and parameters
	// are already the identity.
	GenID string

	Procs int
	// Islands is the number of conservative-parallel kernel islands the
	// point runs on (0 or 1 = serial). Island runs produce byte-identical
	// results to serial runs; the knob trades wall-clock for cores, never
	// output. Above one requires a topology with partition metadata
	// (both builtins) and must not exceed Procs.
	Islands int
	Ops     int // operations per processor (measured)
	// Warmup is the cache-warming operation count per processor
	// (unmeasured). Negative values (canonically NoWarmup) request an
	// explicitly cold start; they normalize to zero warmup operations.
	Warmup int
	Seed   uint64

	// Unlimited removes the bandwidth limit (infinite links).
	Unlimited bool
	// PerfectDir sets the directory lookup latency to zero.
	PerfectDir bool
	// Mutate optionally adjusts the configuration last.
	Mutate func(*machine.Config)
}

// NoWarmup is the explicit-cold sentinel for Point.Warmup, Plan.Warmup,
// and the harness Options: layers that treat a zero warmup count as
// "unset, apply the default" pass NoWarmup to request genuinely zero
// warmup operations (cold-cache measurement).
const NoWarmup = -1

// withDefaults fills the sizing fields RunPoint would otherwise default
// internally, so expanded plan jobs report the values that actually ran.
func (pt Point) withDefaults() Point {
	if pt.Procs == 0 {
		pt.Procs = 16
	}
	if pt.Ops == 0 {
		pt.Ops = 4000
	}
	if pt.Warmup < 0 {
		pt.Warmup = 0 // NoWarmup: explicitly cold
	}
	return pt
}

// components holds a point's registry-resolved parts.
type components struct {
	proto registry.Protocol
	topo  registry.Topology
	// wl is zero when the point carries its own generator (Gen/NewGen).
	wl registry.Workload
}

// resolve looks the point's named components up in the registry,
// applying the topology default and enforcing the protocol's
// interconnect-ordering capability. All name errors report the
// registered alternatives.
func (pt Point) resolve() (components, error) {
	var c components
	proto, ok := registry.LookupProtocol(pt.Protocol)
	if !ok {
		return c, fmt.Errorf("engine: unknown protocol %q (registered: %s)",
			pt.Protocol, strings.Join(registry.ProtocolNames(), ", "))
	}
	c.proto = proto

	if pt.Topo == "" {
		topo, ok := registry.DefaultTopology(proto.RequiresOrdered)
		if !ok {
			return c, fmt.Errorf("engine: no registered topology is compatible with protocol %q (requires ordered: %v)",
				pt.Protocol, proto.RequiresOrdered)
		}
		c.topo = topo
	} else {
		topo, ok := registry.LookupTopology(pt.Topo)
		if !ok {
			return c, fmt.Errorf("engine: unknown topology %q (registered: %s)",
				pt.Topo, strings.Join(registry.TopologyNames(), ", "))
		}
		c.topo = topo
	}
	if c.topo.Check != nil {
		if err := c.topo.Check(pt.Procs); err != nil {
			return c, fmt.Errorf("engine: topology %q cannot carry %d processors: %w", c.topo.Name, pt.Procs, err)
		}
	}
	if pt.Islands > 1 {
		if pt.Islands > pt.Procs {
			return c, fmt.Errorf("engine: %d islands exceed %d processors", pt.Islands, pt.Procs)
		}
		if _, ok := c.topo.New(pt.Procs).(topology.Partitioned); !ok {
			return c, fmt.Errorf("engine: topology %q has no partition metadata; island counts above one need a topology implementing topology.Partitioned", c.topo.Name)
		}
	}
	if proto.RequiresOrdered && !c.topo.Ordered {
		var pairs []string
		for _, name := range registry.OrderedTopologyNames() {
			pairs = append(pairs, pt.Protocol+"/"+name)
		}
		return c, fmt.Errorf("engine: protocol %q requires a totally-ordered interconnect but topology %q is unordered (valid pairs: %s)",
			pt.Protocol, c.topo.Name, strings.Join(pairs, ", "))
	}
	if proto.RequiresClusters && !c.topo.Clustered {
		var pairs []string
		for _, name := range registry.ClusteredTopologyNames() {
			pairs = append(pairs, pt.Protocol+"/"+name)
		}
		return c, fmt.Errorf("engine: scope-aware protocol %q requires a topology with cluster metadata but %q exposes none (valid pairs: %s)",
			pt.Protocol, c.topo.Name, strings.Join(pairs, ", "))
	}

	if pt.Gen == nil && pt.NewGen == nil {
		wl, ok := registry.LookupWorkload(pt.Workload)
		if !ok {
			return c, fmt.Errorf("engine: unknown workload %q (registered: %s)",
				pt.Workload, strings.Join(registry.WorkloadNames(), ", "))
		}
		c.wl = wl
	}
	return c, nil
}

// Validate checks that every component name the point references
// resolves in the registry and that the protocol can run on the chosen
// (or defaulted) topology. Plan expansion validates every job, so
// misspelled names and impossible protocol/topology pairs fail before
// any simulation starts, with the registered names in the error.
func (pt Point) Validate() error {
	_, err := pt.withDefaults().resolve()
	return err
}

// RunPoint executes one point and returns its statistics. Components are
// resolved through the registry once, up front; protocols that declare
// an audit (Token Coherence checks token conservation) are audited after
// the run.
func RunPoint(pt Point) (*stats.Run, error) {
	run, _, err := RunPointMetrics(pt)
	return run, err
}

// RunPointMetrics executes one point and additionally returns its metric
// snapshot: every measurement the machine, interconnect, protocol, and
// registered probes published, captured after the run (and after the
// protocol audit, when one is declared). The snapshot is non-nil
// whenever a simulation actually ran, even one that then failed.
func RunPointMetrics(pt Point) (*stats.Run, *stats.Snapshot, error) {
	return RunPointObserved(pt, nil)
}

// RunPointObserved is RunPointMetrics with a per-run attachment hook:
// attach (if non-nil) is called with the fully assembled System — after
// the protocol's controllers and the registered probes, before any
// simulation — so callers can attach run-scoped observers such as a
// transaction tracer. The engine routes its Attach hook here.
func RunPointObserved(pt Point, attach func(*machine.System)) (*stats.Run, *stats.Snapshot, error) {
	pt = pt.withDefaults()
	comps, err := pt.resolve()
	if err != nil {
		return nil, nil, err
	}
	sys, ctrls, audit, err := buildMachine(pt, comps)
	if err != nil {
		return nil, nil, err
	}
	sys.Recorder.SetLabel(fmt.Sprintf("%s/%s/%s procs=%d seed=%d",
		pt.Protocol, comps.topo.Name, pt.Workload, pt.Procs, pt.Seed))
	if attach != nil {
		attach(sys)
	}

	gen := pt.Gen
	if pt.NewGen != nil {
		gen = pt.NewGen(pt.Procs)
	}
	if gen == nil {
		gen = comps.wl.New(pt.Procs)
	}

	run, err := sys.ExecuteWarm(ctrls, gen, pt.Warmup, pt.Ops)
	if err != nil {
		return run, sys.Metrics.Snapshot(), fmt.Errorf("%s/%s/%s: %w", pt.Protocol, comps.topo.Name, pt.Workload, err)
	}
	if audit != nil {
		if err := audit(); err != nil {
			return run, sys.Metrics.Snapshot(), fmt.Errorf("%s/%s/%s: %w", pt.Protocol, comps.topo.Name, pt.Workload, err)
		}
	}
	return run, sys.Metrics.Snapshot(), nil
}

// effectiveConfig assembles the point's fully-resolved machine
// configuration: the Table 1 defaults, the point's sizing and bandwidth
// fields, then the Mutate closure last. It is the single assembly path
// shared by buildMachine and PointKey, so the configuration that is
// hashed is — by construction, not by convention — the configuration
// that runs.
func (pt Point) effectiveConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Procs = pt.Procs
	cfg.Islands = pt.Islands
	if cfg.TokensPerBlock < pt.Procs {
		cfg.TokensPerBlock = pt.Procs * 2
	}
	if pt.Unlimited {
		cfg.Net = cfg.Net.Unlimited()
	}
	if pt.PerfectDir {
		cfg.DirLatency = 0
	}
	if pt.Mutate != nil {
		pt.Mutate(&cfg)
	}
	return cfg
}

// buildMachine constructs the point's machine: configuration, topology,
// system, the protocol's controllers (whose constructors publish the
// protocol metrics), and finally every registered probe, attached in
// registration order so probe metrics land after the built-ins in the
// schema.
func buildMachine(pt Point, comps components) (*machine.System, []machine.Controller, func() error, error) {
	cfg := pt.effectiveConfig()

	topo := comps.topo.New(pt.Procs)
	if topo.Ordered() != comps.topo.Ordered {
		return nil, nil, nil, fmt.Errorf("engine: topology %q reports Ordered()=%v but is registered with Ordered=%v",
			comps.topo.Name, topo.Ordered(), comps.topo.Ordered)
	}

	sys := machine.NewSystem(cfg, topo, pt.Seed)
	ctrls, audit := comps.proto.Build(sys)
	for _, pr := range registry.Probes() {
		sys.Observe(pr.New(sys.Metrics))
	}
	return sys, ctrls, audit, nil
}

// MetricSchema reports the metric schema the point's simulation will
// expose — machine, interconnect, protocol, and probe metrics, in their
// deterministic registration order — without running it. The schema
// depends on the protocol (each publishes its own metrics) and on the
// registered probes; it does not depend on the workload, so the
// point's workload may be left empty.
func MetricSchema(pt Point) ([]stats.Desc, error) {
	pt = pt.withDefaults()
	if pt.Workload == "" && pt.Gen == nil && pt.NewGen == nil {
		pt.NewGen = func(procs int) machine.Generator { return nil }
	}
	comps, err := pt.resolve()
	if err != nil {
		return nil, err
	}
	sys, _, _, err := buildMachine(pt, comps)
	if err != nil {
		return nil, err
	}
	return sys.Metrics.Descs(), nil
}

// PlanMetricSchema unions MetricSchema over a plan's jobs — one query
// per distinct protocol, first-seen order, deduplicated by name — so
// discovery and column validation for mixed-protocol plans cover every
// protocol-specific metric any row can publish.
func PlanMetricSchema(plan Plan) ([]stats.Desc, error) {
	jobs, err := plan.Jobs()
	if err != nil {
		return nil, err
	}
	seenProto := make(map[string]bool)
	seenName := make(map[string]bool)
	var out []stats.Desc
	for _, j := range jobs {
		if seenProto[j.Point.Protocol] {
			continue
		}
		seenProto[j.Point.Protocol] = true
		descs, err := MetricSchema(j.Point)
		if err != nil {
			return nil, err
		}
		for _, d := range descs {
			if !seenName[d.Name] {
				seenName[d.Name] = true
				out = append(out, d)
			}
		}
	}
	return out, nil
}
