package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
)

// CodeVersion is the simulator-behavior salt mixed into every point
// hash. Any change that can alter a point's results — protocol logic,
// timing parameters, workload generation, the event kernel — MUST bump
// this constant, or result stores recorded before the change would
// satisfy sweeps run after it. Purely observational changes (tracing,
// telemetry, output formatting of values already captured) do not
// require a bump. The engine's determinism suite is what makes this
// contract testable: a given (point, CodeVersion) pair names exactly one
// result.
const CodeVersion = "tokencoherence-sim-v8"

// ErrUncacheable marks a point with no stable content identity: it
// carries a pre-built Gen or a NewGen closure and no GenID naming what
// that generator computes. The engine runs such points normally but
// never consults or fills the result store for them.
var ErrUncacheable = errors.New("engine: point carries Gen/NewGen without a GenID and has no content identity")

// PointKey returns the point's content hash: a hex SHA-256 over the
// fully-resolved simulation inputs — protocol, resolved topology,
// workload identity and parameters, the effective machine configuration
// after every mutation, operation counts, warmup, and seed — salted
// with CodeVersion. Two points with equal keys compute identical
// results, so the key is the result store's address.
//
// Execution-only knobs are deliberately excluded, exactly as the CSV
// schema excludes them: Islands (byte-identical results at any count),
// the flight-recorder configuration, and the debug-log destination
// change how a point runs or is observed, never what it measures.
//
// The key is invariant under registry registration order (components
// enter the hash by resolved name, not table position) and under
// engine parallelism (it is a pure function of the point). Points whose
// generator is an opaque closure return ErrUncacheable unless they name
// their generator with GenID.
func PointKey(pt Point) (string, error) {
	return pointKey(pt, CodeVersion)
}

// pointKey is PointKey with an explicit salt, so tests can prove a salt
// change invalidates every key.
func pointKey(pt Point, salt string) (string, error) {
	pt = pt.withDefaults()
	comps, err := pt.resolve()
	if err != nil {
		return "", err
	}

	h := sha256.New()
	fmt.Fprintf(h, "salt=%s\n", salt)
	fmt.Fprintf(h, "protocol=%s\n", comps.proto.Name)
	fmt.Fprintf(h, "topology=%s\n", comps.topo.Name)
	switch {
	case pt.Gen != nil || pt.NewGen != nil:
		if pt.GenID == "" {
			return "", ErrUncacheable
		}
		fmt.Fprintf(h, "gen=%s\n", pt.GenID)
	default:
		fmt.Fprintf(h, "workload=%s\n", comps.wl.Name)
		if comps.wl.Params != nil {
			canonicalEncode(h, "params", reflect.ValueOf(*comps.wl.Params))
		}
	}
	fmt.Fprintf(h, "ops=%d\nwarmup=%d\nseed=%d\n", pt.Ops, pt.Warmup, pt.Seed)

	// The effective configuration is assembled exactly as buildMachine
	// assembles it (shared helper), then stripped of the excluded
	// execution/observability knobs before encoding.
	cfg := pt.effectiveConfig()
	cfg.Islands = 0
	cfg.RecorderSize = 0
	cfg.StarvationDeadline = 0
	cfg.DebugLog = nil
	canonicalEncode(h, "config", reflect.ValueOf(cfg))

	return hex.EncodeToString(h.Sum(nil)), nil
}

// canonicalEncode writes a deterministic text rendering of v: struct
// fields in declaration order keyed by path, map entries sorted by key,
// floats in shortest-round-trip form. Functions, channels, and
// interfaces (closures, io.Writers — behavior, not content) are
// skipped, so config fields like DebugLog never poison a hash. New
// config fields automatically join the hash; renaming or moving one
// changes keys, which errs toward recomputing — the safe direction.
func canonicalEncode(w io.Writer, path string, v reflect.Value) {
	switch v.Kind() {
	case reflect.Func, reflect.Chan, reflect.Interface, reflect.UnsafePointer:
		return
	case reflect.Ptr:
		if v.IsNil() {
			fmt.Fprintf(w, "%s=nil\n", path)
			return
		}
		canonicalEncode(w, path, v.Elem())
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			canonicalEncode(w, path+"."+t.Field(i).Name, v.Field(i))
		}
	case reflect.Map:
		keys := make([]string, 0, v.Len())
		byKey := make(map[string]reflect.Value, v.Len())
		for _, k := range v.MapKeys() {
			ks := fmt.Sprintf("%v", k.Interface())
			keys = append(keys, ks)
			byKey[ks] = v.MapIndex(k)
		}
		sort.Strings(keys)
		for _, ks := range keys {
			canonicalEncode(w, path+"["+ks+"]", byKey[ks])
		}
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "%s.len=%d\n", path, v.Len())
		for i := 0; i < v.Len(); i++ {
			canonicalEncode(w, path+"["+strconv.Itoa(i)+"]", v.Index(i))
		}
	case reflect.Float32, reflect.Float64:
		fmt.Fprintf(w, "%s=%s\n", path, strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.Bool:
		fmt.Fprintf(w, "%s=%t\n", path, v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "%s=%d\n", path, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		fmt.Fprintf(w, "%s=%d\n", path, v.Uint())
	case reflect.String:
		fmt.Fprintf(w, "%s=%q\n", path, v.String())
	default:
		fmt.Fprintf(w, "%s=%v\n", path, v.Interface())
	}
}
