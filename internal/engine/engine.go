package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/stats"
)

// Result is one executed job: the plan coordinates plus the run's
// statistics or the error (including recovered panics) that stopped it.
type Result struct {
	Job
	Run *stats.Run
	// Metrics is the run's metric snapshot: every named metric the
	// machine, interconnect, protocol, and registered probes published.
	// Sinks and column selectors read results through it by name.
	Metrics *stats.Snapshot
	// Cached marks a result recalled from the Engine's Store instead of
	// simulated: provenance for telemetry (a recalled point cost no
	// events and should not feed ETA rate estimates) and for callers that
	// must know whether any simulation ran. Cached results flow through
	// sinks identically to computed ones.
	Cached bool
	Err    error
}

// Progress describes a plan's execution state after one more job
// finished; the engine passes it to the Progress callback.
type Progress struct {
	// Done counts completed jobs (successes and failures); Total is the
	// plan's deterministic job count, known before the first run starts —
	// which is what makes sweep ETAs possible.
	Done, Total int
	// Failed counts completed jobs whose Err is set.
	Failed int
	// Last is the job that just completed, with its Run/Metrics/Err
	// populated. Completion order is nondeterministic under parallelism;
	// sink emission, not Progress, is the ordered stream.
	Last *Result
	// Workers is the capacity executing the plan when this report was
	// made: the engine's effective pool size, or a distributed
	// coordinator's live worker count. ETA models divide by it; zero
	// means unknown (callers fall back to their own estimate).
	Workers int
}

// Store is a content-addressed result archive keyed by PointKey: the
// engine fills it with every successfully computed point and, in reuse
// mode, recalls archived results instead of simulating. Implementations
// must be safe for concurrent use — workers consult the store in
// parallel. internal/resultstore provides the durable file-backed
// implementation.
type Store interface {
	// Get returns the archived result for key, reporting found=false for
	// a clean miss. An error means the store itself failed (corrupt
	// entry, unreadable directory) and fails the job loudly — a store
	// that silently recomputes would mask corruption.
	Get(key string) (run *stats.Run, metrics *stats.Snapshot, found bool, err error)
	// Put archives a computed result under key. Put must be atomic:
	// concurrent writers of the same key (two sweep shards sharing a
	// store) may race, but they write identical content, so last-rename-
	// wins is correct.
	Put(key string, run *stats.Run, metrics *stats.Snapshot) error
}

// EndSink is the optional Sink extension Execute invokes exactly once
// when emission is over — after the last Emit, on every exit path
// including context cancellation and sink failure. Buffered sinks flush
// here, so an interrupted sweep still leaves a valid, parseable partial
// file; the built-in CSV and JSONL sinks forward End to their writer's
// Flush method when it has one.
type EndSink interface {
	End() error
}

// Engine executes a Plan's jobs on a bounded worker pool. The zero
// value is ready to use and runs one worker per available CPU.
type Engine struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Store, when set, archives every successfully computed cacheable
	// point under its PointKey. With Reuse also set, the store is
	// consulted before each job runs and a hit replays the archived
	// result through the normal sink path — byte-identical output,
	// zero simulation. Uncacheable points (ErrUncacheable) always
	// simulate and are never archived.
	Store Store
	// Reuse enables store lookups (resume mode). Without it a Store is
	// write-through only: every point recomputes and refreshes its entry,
	// which is how a store is (re)populated from scratch.
	Reuse bool
	// Shard/Shards partition a plan across cooperating processes: with
	// Shards = N > 1, this engine runs only the jobs whose plan Index ≡
	// Shard (mod N) — the deterministic plan order is the partition
	// function, so N shards cover every job exactly once with no
	// coordination. Results keep their plan-wide Index for merging;
	// Progress.Total and Sink.Begin report the shard's own job count.
	Shard, Shards int
	// Progress, when set, is called after each job completes. Calls come
	// from the engine's single collector goroutine and never overlap, so
	// a callback that writes output needs no locking against itself —
	// only against writers on other goroutines (see trace.NewSyncWriter).
	Progress func(p Progress)
	// Attach, when set, is consulted once per job before it runs; a
	// non-nil returned function is called with the job's fully assembled
	// System (protocol built, registry probes attached) so per-job
	// observers — transaction tracers, extra recorders — can attach.
	// Attach itself runs on worker goroutines and must be safe for
	// concurrent use; the returned function runs before the job's
	// single-threaded simulation starts and may touch the System freely.
	Attach func(job Job) func(*machine.System)
}

func (e Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Execute runs every job of the plan and returns the results in plan
// order — the same rows regardless of parallelism. Successful results
// are streamed to the sinks in plan order as soon as their contiguous
// prefix completes. A panicking point is isolated to its own job and
// recorded as that result's Err; remaining jobs still run. A failing
// sink, by contrast, stops dispatch of not-yet-started jobs (their
// output would be lost anyway). The returned error is the context's
// error if it was cancelled, otherwise the lowest-index job error
// (with all results still returned), otherwise the first sink error.
func (e Engine) Execute(ctx context.Context, plan Plan, sinks ...Sink) ([]Result, error) {
	jobs, err := plan.Jobs()
	if err != nil {
		return nil, err
	}
	if e.Shards > 1 {
		if e.Shard < 0 || e.Shard >= e.Shards {
			return nil, fmt.Errorf("engine: shard %d out of range [0, %d)", e.Shard, e.Shards)
		}
		owned := make([]Job, 0, (len(jobs)+e.Shards-1)/e.Shards)
		for _, job := range jobs {
			if job.Index%e.Shards == e.Shard {
				owned = append(owned, job)
			}
		}
		jobs = owned
	} else if e.Shards < 0 || (e.Shards == 0 && e.Shard != 0) {
		return nil, fmt.Errorf("engine: invalid shard spec %d/%d", e.Shard, e.Shards)
	}
	for _, s := range sinks {
		if err := s.Begin(len(jobs)); err != nil {
			return nil, err
		}
	}

	results := make([]Result, len(jobs))
	for i, job := range jobs {
		results[i] = Result{Job: job}
	}

	workers := e.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// runCtx stops dispatch early when a sink fails mid-stream, without
	// conflating that with the caller cancelling ctx.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	idxCh := make(chan int)
	doneCh := make(chan int, workers)
	go func() {
		defer close(idxCh)
		for i := range jobs {
			select {
			case idxCh <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if err := runCtx.Err(); err != nil {
					results[i].Err = err
				} else {
					e.runJob(&results[i])
				}
				doneCh <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(doneCh)
	}()

	// Emit to sinks strictly in plan order: results are held until their
	// contiguous prefix is complete, so parallel and serial executions
	// produce byte-identical sink output.
	completed := make([]bool, len(jobs))
	next, done, failed := 0, 0, 0
	var sinkErr error
	for i := range doneCh {
		done++
		completed[i] = true
		if results[i].Err != nil {
			failed++
		}
		for next < len(jobs) && completed[next] {
			r := results[next]
			if r.Err == nil && sinkErr == nil {
				for _, s := range sinks {
					if err := s.Emit(r); err != nil {
						sinkErr = err
						cancel() // stop dispatching work nobody will see
						break
					}
				}
			}
			next++
		}
		if e.Progress != nil {
			e.Progress(Progress{Done: done, Total: len(jobs), Failed: failed, Last: &results[i], Workers: workers})
		}
	}

	// Emission is over on every path — completion, caller cancellation,
	// sink failure — so give each sink its one End call now. A buffered
	// sink flushes here, which is what keeps a Ctrl-C'd sweep's partial
	// output a valid, parseable file rather than a torn one.
	var endErr error
	for _, s := range sinks {
		if es, ok := s.(EndSink); ok {
			if err := es.End(); err != nil && endErr == nil {
				endErr = err
			}
		}
	}
	if sinkErr == nil {
		sinkErr = endErr
	}

	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, r := range results {
		// Skip jobs the engine itself skipped after a sink failure; the
		// sink error below explains those.
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			return results, r.Err
		}
	}
	return results, sinkErr
}

// runJob executes one job on a worker goroutine, consulting and filling
// the result store when one is configured. Store failures are loud: a
// Get that errors (as opposed to cleanly missing) or a Put that cannot
// persist becomes the job's error, because a silently degraded store
// would defeat the resume guarantee callers rely on.
func (e Engine) runJob(r *Result) {
	key := ""
	if e.Store != nil {
		k, err := PointKey(r.Job.Point)
		switch {
		case err == nil:
			key = k
		case errors.Is(err, ErrUncacheable):
			// No content identity: simulate normally, never archive.
		default:
			r.Err = err
			return
		}
	}
	if key != "" && e.Reuse {
		run, snap, found, err := e.Store.Get(key)
		if err != nil {
			r.Err = fmt.Errorf("engine: store get %s: %w", key, err)
			return
		}
		if found {
			r.Run, r.Metrics, r.Cached = run, snap, true
			return
		}
	}
	r.Run, r.Metrics, r.Err = runIsolated(r.Job, e.Attach)
	if key != "" && r.Err == nil {
		if err := e.Store.Put(key, r.Run, r.Metrics); err != nil {
			r.Err = fmt.Errorf("engine: store put %s: %w", key, err)
		}
	}
}

// runIsolated executes one job, converting a panic into an error so a
// single bad configuration cannot take down the whole sweep.
func runIsolated(job Job, attach func(Job) func(*machine.System)) (run *stats.Run, snap *stats.Snapshot, err error) {
	pt := job.Point
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: point %s/%s/%s panicked: %v\n%s",
				pt.Protocol, pt.Topo, pt.Workload, r, debug.Stack())
		}
	}()
	var hook func(*machine.System)
	if attach != nil {
		hook = attach(job)
	}
	return RunPointObserved(pt, hook)
}
