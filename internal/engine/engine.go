package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"tokencoherence/internal/stats"
)

// Result is one executed job: the plan coordinates plus the run's
// statistics or the error (including recovered panics) that stopped it.
type Result struct {
	Job
	Run *stats.Run
	// Metrics is the run's metric snapshot: every named metric the
	// machine, interconnect, protocol, and registered probes published.
	// Sinks and column selectors read results through it by name.
	Metrics *stats.Snapshot
	Err     error
}

// Engine executes a Plan's jobs on a bounded worker pool. The zero
// value is ready to use and runs one worker per available CPU.
type Engine struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when set, is called after each job completes (from a
	// single goroutine) with the number of completed jobs and the total.
	Progress func(done, total int)
}

func (e Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Execute runs every job of the plan and returns the results in plan
// order — the same rows regardless of parallelism. Successful results
// are streamed to the sinks in plan order as soon as their contiguous
// prefix completes. A panicking point is isolated to its own job and
// recorded as that result's Err; remaining jobs still run. A failing
// sink, by contrast, stops dispatch of not-yet-started jobs (their
// output would be lost anyway). The returned error is the context's
// error if it was cancelled, otherwise the lowest-index job error
// (with all results still returned), otherwise the first sink error.
func (e Engine) Execute(ctx context.Context, plan Plan, sinks ...Sink) ([]Result, error) {
	jobs, err := plan.Jobs()
	if err != nil {
		return nil, err
	}
	for _, s := range sinks {
		if err := s.Begin(len(jobs)); err != nil {
			return nil, err
		}
	}

	results := make([]Result, len(jobs))
	for i, job := range jobs {
		results[i] = Result{Job: job}
	}

	workers := e.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// runCtx stops dispatch early when a sink fails mid-stream, without
	// conflating that with the caller cancelling ctx.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	idxCh := make(chan int)
	doneCh := make(chan int, workers)
	go func() {
		defer close(idxCh)
		for i := range jobs {
			select {
			case idxCh <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if err := runCtx.Err(); err != nil {
					results[i].Err = err
				} else {
					results[i].Run, results[i].Metrics, results[i].Err = runIsolated(results[i].Point)
				}
				doneCh <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(doneCh)
	}()

	// Emit to sinks strictly in plan order: results are held until their
	// contiguous prefix is complete, so parallel and serial executions
	// produce byte-identical sink output.
	completed := make([]bool, len(jobs))
	next, done := 0, 0
	var sinkErr error
	for i := range doneCh {
		done++
		completed[i] = true
		for next < len(jobs) && completed[next] {
			r := results[next]
			if r.Err == nil && sinkErr == nil {
				for _, s := range sinks {
					if err := s.Emit(r); err != nil {
						sinkErr = err
						cancel() // stop dispatching work nobody will see
						break
					}
				}
			}
			next++
		}
		if e.Progress != nil {
			e.Progress(done, len(jobs))
		}
	}

	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, r := range results {
		// Skip jobs the engine itself skipped after a sink failure; the
		// sink error below explains those.
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			return results, r.Err
		}
	}
	return results, sinkErr
}

// runIsolated executes one point, converting a panic into an error so a
// single bad configuration cannot take down the whole sweep.
func runIsolated(pt Point) (run *stats.Run, snap *stats.Snapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: point %s/%s/%s panicked: %v\n%s",
				pt.Protocol, pt.Topo, pt.Workload, r, debug.Stack())
		}
	}()
	return RunPointMetrics(pt)
}
