package engine

import (
	"errors"
	"fmt"
	"reflect"

	"tokencoherence/internal/machine"
)

// Variant is one named protocol/topology configuration in a Plan, e.g.
// "snooping-tree" or "directory-perfect". The variant's Point carries
// everything the plan axes do not vary.
type Variant struct {
	Name  string
	Point Point
}

func (v Variant) name() string {
	if v.Name != "" {
		return v.Name
	}
	if v.Point.Topo == "" {
		return v.Point.Protocol
	}
	return v.Point.Protocol + "-" + v.Point.Topo
}

// Grid returns one variant per protocol x topology pair, named
// "protocol-topo", in protocol-major order.
func Grid(protocols, topos []string) []Variant {
	var vs []Variant
	for _, proto := range protocols {
		for _, topo := range topos {
			vs = append(vs, Variant{
				Name:  proto + "-" + topo,
				Point: Point{Protocol: proto, Topo: topo},
			})
		}
	}
	return vs
}

// Mutation is a named machine.Config adjustment applied as a plan axis,
// e.g. one link-bandwidth setting of a bandwidth sweep. Tags optionally
// carry axis values for sinks (see TagColumn).
type Mutation struct {
	Name  string
	Tags  map[string]string
	Apply func(*machine.Config)
}

// Plan declaratively describes a cartesian grid of Points: every
// combination of variant, workload, mutation, bandwidth setting, and
// seed becomes one job. Empty axes keep the corresponding field of each
// variant's Point. Jobs expand in a fixed nesting order — workloads
// (outermost), variants, mutations, unlimited, seeds (innermost) — so a
// plan always yields the same job sequence.
type Plan struct {
	// Variants are the protocol/topology configurations (required).
	Variants []Variant
	// Workloads is the commercial-workload axis ("" keeps the variant's).
	Workloads []string
	// Mutations is the named config-mutation axis.
	Mutations []Mutation
	// Unlimited is the bandwidth axis (e.g. {false, true} measures every
	// point with limited and unlimited links).
	Unlimited []bool
	// Seeds is the random-seed axis.
	Seeds []uint64

	// Ops, Warmup and Procs apply to every job when nonzero, overriding
	// the variant's Point. Warmup distinguishes "unset" (0, keep the
	// variant's) from "explicitly cold" (NoWarmup, run zero warmup
	// operations).
	Ops    int
	Warmup int
	Procs  int
	// Islands applies to every job when nonzero: the number of
	// conservative-parallel kernel islands each point runs on. Purely an
	// execution knob — results are byte-identical at any island count —
	// and validated at expansion time like the component names.
	Islands int
}

// Job is one expanded unit of work: a fully specified Point plus the
// plan coordinates it came from.
type Job struct {
	// Index is the job's position in the plan's deterministic order;
	// results are reported in Index order regardless of parallelism.
	Index    int
	Variant  string
	Mutation string
	// Tags are the job's mutation tags (axis values for sinks).
	Tags  map[string]string
	Point Point
}

// Jobs expands the plan into its deterministic job sequence.
func (p Plan) Jobs() ([]Job, error) {
	if len(p.Variants) == 0 {
		return nil, errors.New("engine: plan has no variants")
	}
	workloads := p.Workloads
	if len(workloads) == 0 {
		workloads = []string{""}
	}
	mutations := p.Mutations
	if len(mutations) == 0 {
		mutations = []Mutation{{}}
	}
	unlimited := p.Unlimited
	hasUnlimited := len(unlimited) > 0
	if !hasUnlimited {
		unlimited = []bool{false}
	}
	seeds := p.Seeds
	hasSeeds := len(seeds) > 0
	if !hasSeeds {
		seeds = []uint64{0}
	}

	// A pre-built Gen carries mutable per-processor state, so it must
	// back exactly one job: reject variants that expand it to several,
	// and distinct variants that share one instance (the engine may run
	// them concurrently).
	perVariant := len(workloads) * len(mutations) * len(unlimited) * len(seeds)
	genSeen := map[machine.Generator]bool{}
	for _, v := range p.Variants {
		if v.Point.Gen == nil || v.Point.NewGen != nil {
			continue
		}
		if perVariant > 1 {
			return nil, fmt.Errorf("engine: variant %q carries a stateful Gen but expands to %d jobs; use NewGen", v.name(), perVariant)
		}
		if reflect.TypeOf(v.Point.Gen).Comparable() {
			if genSeen[v.Point.Gen] {
				return nil, fmt.Errorf("engine: variant %q shares its stateful Gen with another variant; use NewGen", v.name())
			}
			genSeen[v.Point.Gen] = true
		}
	}

	var jobs []Job
	for _, wl := range workloads {
		for _, v := range p.Variants {
			// base is the (workload, variant) cell's point; the inner
			// axes never change component names or sizing, so validating
			// it once here means an unknown name, an impossible
			// protocol/topology pair, or a system size the topology
			// cannot carry fails at expansion time, before any
			// simulation starts.
			base := v.Point
			if wl != "" {
				base.Workload = wl
			}
			if p.Procs != 0 {
				base.Procs = p.Procs
			}
			if p.Islands != 0 {
				base.Islands = p.Islands
			}
			if err := base.Validate(); err != nil {
				return nil, fmt.Errorf("variant %q: %w", v.name(), err)
			}
			for _, mut := range mutations {
				for _, unl := range unlimited {
					for _, seed := range seeds {
						pt := base
						if hasUnlimited {
							pt.Unlimited = unl
						}
						if hasSeeds {
							pt.Seed = seed
						}
						if p.Ops != 0 {
							pt.Ops = p.Ops
						}
						if p.Warmup != 0 {
							pt.Warmup = p.Warmup
						}
						if mut.Apply != nil {
							base, apply := pt.Mutate, mut.Apply
							pt.Mutate = func(c *machine.Config) {
								if base != nil {
									base(c)
								}
								apply(c)
							}
						}
						jobs = append(jobs, Job{
							Index:    len(jobs),
							Variant:  v.name(),
							Mutation: mut.Name,
							Tags:     mut.Tags,
							Point:    pt.withDefaults(),
						})
					}
				}
			}
		}
	}
	return jobs, nil
}
