package engine

import (
	"strings"
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/workload"
)

// uniformTestGen builds a scaling-style microbenchmark generator.
func uniformTestGen(procs int) machine.Generator {
	return workload.NewUniform(256, 0.3, sim.Nanosecond, procs)
}

func TestValidateUnknownNamesListRegistered(t *testing.T) {
	cases := []struct {
		name string
		pt   Point
		want []string // substrings the error must carry
	}{
		{"protocol", Point{Protocol: "nope", Topo: TopoTorus, Workload: "oltp"},
			[]string{`unknown protocol "nope"`, "registered:", ProtoTokenB, ProtoSnooping, ProtoTokenM}},
		{"topology", Point{Protocol: ProtoTokenB, Topo: "mesh", Workload: "oltp"},
			[]string{`unknown topology "mesh"`, "registered:", TopoTorus, TopoTree}},
		{"workload", Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "nope"},
			[]string{`unknown workload "nope"`, "registered:", "apache", "barnes"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := c.pt.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) = nil", c.pt)
			}
			for _, want := range c.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}

func TestValidateOrderingCapability(t *testing.T) {
	// Snooping on the unordered torus is the paper's "not applicable"
	// bar: the engine must reject it up front, naming the valid pairs.
	err := Point{Protocol: ProtoSnooping, Topo: TopoTorus, Workload: "oltp"}.Validate()
	if err == nil {
		t.Fatal("snooping on the torus not rejected")
	}
	for _, want := range []string{"totally-ordered", `"torus" is unordered`, "valid pairs: snooping/tree"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if err := (Point{Protocol: ProtoSnooping, Topo: TopoTree, Workload: "oltp"}).Validate(); err != nil {
		t.Errorf("snooping on the tree rejected: %v", err)
	}
}

func TestValidateClusterCapability(t *testing.T) {
	// A scope-aware protocol on a topology without cluster metadata is
	// the hierarchical "not applicable" bar. Both built-in fabrics expose
	// clusters, so a clusterless test fabric stands in for the rejection.
	registry.RegisterTopology(registry.Topology{
		Name:    "testclusterless",
		Ordered: false,
		New:     func(procs int) topology.Topology { return topology.NewTorusFor(procs) },
		Check:   topology.CheckTorusFor,
	})
	for _, proto := range []string{ProtoDir2, ProtoRegionFilter} {
		err := Point{Protocol: proto, Topo: "testclusterless", Workload: "oltp"}.Validate()
		if err == nil {
			t.Fatalf("%s on a clusterless topology not rejected", proto)
		}
		for _, want := range []string{"cluster metadata", "valid pairs: " + proto + "/torus, " + proto + "/tree"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q missing %q", err, want)
			}
		}
		for _, topo := range []string{TopoTorus, TopoTree} {
			if err := (Point{Protocol: proto, Topo: topo, Workload: "oltp"}).Validate(); err != nil {
				t.Errorf("%s on %s rejected: %v", proto, topo, err)
			}
		}
	}
}

func TestEmptyTopologyDefaultsByCapability(t *testing.T) {
	// An empty Topo resolves through the protocol's ordering capability:
	// order-requiring protocols get the first ordered fabric (tree),
	// everything else the first fabric (torus).
	cases := []struct {
		proto, wantTopo string
	}{
		{ProtoSnooping, "tree"},
		{ProtoTokenB, "torus"},
		{ProtoDirectory, "torus"},
		{ProtoHammer, "torus"},
	}
	for _, c := range cases {
		comps, err := Point{Protocol: c.proto, Workload: "oltp"}.withDefaults().resolve()
		if err != nil {
			t.Errorf("%s: %v", c.proto, err)
			continue
		}
		if comps.topo.Name != c.wantTopo {
			t.Errorf("%s with empty Topo resolved to %q, want %q", c.proto, comps.topo.Name, c.wantTopo)
		}
	}
}

func TestGenBearingPointSkipsWorkloadLookup(t *testing.T) {
	// Scaling-style points carry their own generator and no workload
	// name; validation must not demand one.
	pt := Point{Protocol: ProtoTokenB, Topo: TopoTorus, NewGen: uniformTestGen, Procs: 4}
	if err := pt.Validate(); err != nil {
		t.Errorf("NewGen-bearing point rejected: %v", err)
	}
}

func TestValidateTopologySizeCheck(t *testing.T) {
	// Registered topologies advertise the sizes they can carry; Validate
	// consults the Check hook so impossible system sizes fail at
	// plan-expansion time with a clear error, not with a mid-run panic.
	ok := []Point{
		{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp", Procs: 256},
		{Protocol: ProtoSnooping, Topo: TopoTree, Workload: "oltp", Procs: 64},
		{Protocol: ProtoSnooping, Topo: TopoTree, Workload: "oltp", Procs: 256},
		{Protocol: ProtoSnooping, Topo: TopoTree, Workload: "oltp", Procs: 100}, // padded leaf layer
	}
	for _, pt := range ok {
		if err := pt.Validate(); err != nil {
			t.Errorf("Validate(%s/%s procs=%d) = %v, want nil", pt.Protocol, pt.Topo, pt.Procs, err)
		}
	}
	bad := []struct {
		pt   Point
		want string
	}{
		{Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp", Procs: 7}, "prime"},
		{Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp", Procs: 2}, "at least 4"},
		{Point{Protocol: ProtoSnooping, Topo: TopoTree, Workload: "oltp", Procs: 257}, "4..256"},
	}
	for _, c := range bad {
		err := c.pt.Validate()
		if err == nil {
			t.Errorf("Validate(%s/%s procs=%d) = nil, want size error", c.pt.Protocol, c.pt.Topo, c.pt.Procs)
			continue
		}
		for _, want := range []string{"cannot carry", c.want} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q missing %q", err, want)
			}
		}
	}
}

func TestPlanProcsValidatedEarly(t *testing.T) {
	// The plan-level Procs override participates in expansion-time
	// validation: a size the topology cannot carry fails at Jobs().
	plan := Plan{
		Variants:  []Variant{{Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus}}},
		Workloads: []string{"oltp"},
		Procs:     7,
	}
	if _, err := plan.Jobs(); err == nil || !strings.Contains(err.Error(), "cannot carry 7") {
		t.Errorf("plan with prime torus size: err = %v, want early size rejection", err)
	}
}

func TestWarmupSentinel(t *testing.T) {
	// Plan.Warmup = 0 keeps the variant's warmup; NoWarmup forces an
	// explicitly cold start (zero warmup ops) — previously impossible
	// because zero was conflated with "unset".
	variant := Variant{Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp", Warmup: 50}}

	keep := Plan{Variants: []Variant{variant}, Ops: 100}
	jobs, err := keep.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Point.Warmup != 50 {
		t.Errorf("Plan.Warmup=0 job warmup = %d, want the variant's 50", jobs[0].Point.Warmup)
	}

	cold := Plan{Variants: []Variant{variant}, Ops: 100, Warmup: NoWarmup}
	jobs, err = cold.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Point.Warmup != 0 {
		t.Errorf("Plan.Warmup=NoWarmup job warmup = %d, want 0", jobs[0].Point.Warmup)
	}

	// A negative Warmup on the point itself normalizes the same way.
	if got := (Point{Warmup: NoWarmup}).withDefaults().Warmup; got != 0 {
		t.Errorf("Point{Warmup: NoWarmup}.withDefaults().Warmup = %d, want 0", got)
	}
}

func TestPlanExpansionValidatesEarly(t *testing.T) {
	// Unknown names fail at Jobs() — before any simulation — with the
	// offending variant named.
	bad := Plan{Variants: []Variant{
		{Name: "ok", Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus}},
		{Name: "typo", Point: Point{Protocol: "tokenbb", Topo: TopoTorus}},
	}, Workloads: []string{"oltp"}}
	_, err := bad.Jobs()
	if err == nil {
		t.Fatal("plan with unknown protocol expanded")
	}
	for _, want := range []string{`variant "typo"`, `unknown protocol "tokenbb"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}

	// The workload axis is validated per cell too.
	badWl := Plan{
		Variants:  []Variant{{Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus}}},
		Workloads: []string{"oltp", "oltpp"},
	}
	if _, err := badWl.Jobs(); err == nil || !strings.Contains(err.Error(), `unknown workload "oltpp"`) {
		t.Errorf("unknown workload on the plan axis: %v", err)
	}

	// Capability violations fail at expansion as well.
	snoop := Plan{Variants: Grid([]string{ProtoSnooping}, []string{TopoTorus}), Workloads: []string{"oltp"}}
	if _, err := snoop.Jobs(); err == nil || !strings.Contains(err.Error(), "totally-ordered") {
		t.Errorf("snooping/torus plan: %v", err)
	}
}
