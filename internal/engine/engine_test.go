package engine

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/workload"
)

// testPlan is a small but non-trivial grid: two protocols, two
// workloads, two seeds (8 simulations at 8 procs).
func testPlan() Plan {
	return Plan{
		Variants:  Grid([]string{ProtoTokenB, ProtoDirectory}, []string{TopoTorus}),
		Workloads: []string{"oltp", "specjbb"},
		Seeds:     []uint64{1, 2},
		Ops:       200,
		Warmup:    400,
		Procs:     8,
	}
}

func TestPlanJobsOrderAndCount(t *testing.T) {
	plan := testPlan()
	plan.Unlimited = []bool{false, true}
	plan.Mutations = []Mutation{
		{Name: "base"},
		{Name: "slow", Apply: func(c *machine.Config) { c.MemLatency *= 2 }},
	}
	jobs, err := plan.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 2 * 2 * 2
	if len(jobs) != want {
		t.Fatalf("got %d jobs, want %d", len(jobs), want)
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Errorf("job %d has Index %d", i, j.Index)
		}
		if j.Point.Ops != 200 || j.Point.Warmup != 400 || j.Point.Procs != 8 {
			t.Errorf("job %d sizing not applied: %+v", i, j.Point)
		}
	}
	// Workloads are the outermost axis, seeds the innermost.
	if jobs[0].Point.Workload != "oltp" || jobs[len(jobs)/2].Point.Workload != "specjbb" {
		t.Errorf("workload axis not outermost: %q then %q",
			jobs[0].Point.Workload, jobs[len(jobs)/2].Point.Workload)
	}
	if jobs[0].Point.Seed != 1 || jobs[1].Point.Seed != 2 {
		t.Errorf("seed axis not innermost: %d then %d", jobs[0].Point.Seed, jobs[1].Point.Seed)
	}
	if jobs[0].Variant != "tokenb-torus" || jobs[0].Mutation != "base" {
		t.Errorf("first job = %q/%q", jobs[0].Variant, jobs[0].Mutation)
	}
}

func TestPlanRejectsEmptyAndSharedGen(t *testing.T) {
	if _, err := (Plan{}).Jobs(); err == nil {
		t.Error("empty plan not rejected")
	}
	shared := Plan{
		Variants: []Variant{{Point: Point{
			Protocol: ProtoTokenB, Topo: TopoTorus,
			Gen: workload.NewUniform(64, 0.3, sim.Nanosecond, 4), Procs: 4,
		}}},
		Seeds: []uint64{1, 2},
	}
	if _, err := shared.Jobs(); err == nil {
		t.Error("stateful Gen shared across several jobs not rejected")
	}
	shared.Seeds = shared.Seeds[:1]
	if _, err := shared.Jobs(); err != nil {
		t.Errorf("single-job Gen plan rejected: %v", err)
	}

	// One Gen instance behind two variants would race under parallel
	// execution even though each variant expands to one job.
	g := workload.NewUniform(64, 0.3, sim.Nanosecond, 4)
	crossVariant := Plan{Variants: []Variant{
		{Name: "a", Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus, Gen: g, Procs: 4}},
		{Name: "b", Point: Point{Protocol: ProtoDirectory, Topo: TopoTorus, Gen: g, Procs: 4}},
	}}
	if _, err := crossVariant.Jobs(); err == nil {
		t.Error("one Gen shared by two variants not rejected")
	}
}

// TestEngineDeterministicOutput is the parallelism-invariance contract:
// a grid over two protocols and two seeds must emit byte-identical CSV
// and JSONL whether executed by one worker or eight.
func TestEngineDeterministicOutput(t *testing.T) {
	capture := func(workers int, mkSink func(w *bytes.Buffer) Sink) string {
		var buf bytes.Buffer
		eng := Engine{Workers: workers}
		if _, err := eng.Execute(context.Background(), testPlan(), mkSink(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cases := []struct {
		format string
		mk     func(w *bytes.Buffer) Sink
	}{
		{"csv", func(w *bytes.Buffer) Sink { return &CSVSink{W: w} }},
		{"jsonl", func(w *bytes.Buffer) Sink { return &JSONLSink{W: w} }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.format, func(t *testing.T) {
			t.Parallel()
			serial := capture(1, c.mk)
			parallel := capture(8, c.mk)
			if serial != parallel {
				t.Errorf("%s output differs between 1 and 8 workers:\n--- serial ---\n%s--- parallel ---\n%s",
					c.format, serial, parallel)
			}
			if lines := strings.Count(serial, "\n"); lines < 8 {
				t.Errorf("%s output has %d lines, want at least 8", c.format, lines)
			}
		})
	}
}

// TestEnginePanicIsolation checks that one panicking point is confined
// to its own result while every other job still completes.
func TestEnginePanicIsolation(t *testing.T) {
	plan := Plan{
		Variants: []Variant{
			{Name: "good", Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp"}},
			{Name: "bad", Point: Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp",
				Mutate: func(c *machine.Config) { panic("boom") }}},
		},
		Seeds:  []uint64{1},
		Ops:    150,
		Warmup: 300,
		Procs:  4,
	}
	var agg AggregateSink
	results, err := Engine{Workers: 2}.Execute(context.Background(), plan, &agg)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[0].Run == nil {
		t.Errorf("healthy job did not complete: %+v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "boom") {
		t.Errorf("panicking job's error = %v", results[1].Err)
	}
	if len(agg.Cells()) != 1 {
		t.Errorf("sink saw %d cells, want only the healthy one", len(agg.Cells()))
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Engine{}.Execute(ctx, testPlan())
	if err != context.Canceled {
		t.Errorf("Execute on cancelled context = %v, want context.Canceled", err)
	}
}

func TestEngineUnknownProtocolFails(t *testing.T) {
	plan := Plan{Variants: []Variant{{Point: Point{Protocol: "nope", Topo: TopoTorus, Workload: "oltp"}}}}
	if _, err := (Engine{}).Execute(context.Background(), plan); err == nil {
		t.Error("unknown protocol did not fail the plan")
	}
}

func TestAggregateSinkGroupsSeeds(t *testing.T) {
	var agg AggregateSink
	if _, err := (Engine{}).Execute(context.Background(), testPlan(), &agg); err != nil {
		t.Fatal(err)
	}
	cells := agg.Cells()
	if len(cells) != 4 { // 2 workloads x 2 variants, seeds collapsed
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if len(c.Runs) != 2 {
			t.Errorf("cell %s/%s has %d runs, want 2", c.Variant, c.Workload, len(c.Runs))
		}
		if c.MeanCyclesPerTxn() <= 0 {
			t.Errorf("cell %s/%s mean cycles = %v", c.Variant, c.Workload, c.MeanCyclesPerTxn())
		}
	}
	if got := agg.Find("tokenb-torus", "oltp", "", false); got == nil {
		t.Error("Find did not locate the tokenb/oltp cell")
	}
	if got := agg.Find("tokenb-torus", "nope", "", false); got != nil {
		t.Error("Find located a nonexistent cell")
	}
}

// TestEngineProgress checks the optional progress callback counts every
// job exactly once, ends at the total, and carries the completed result.
func TestEngineProgress(t *testing.T) {
	plan := testPlan()
	plan.Workloads = plan.Workloads[:1]
	var calls []int
	eng := Engine{Workers: 4, Progress: func(p Progress) {
		if p.Total != 4 {
			t.Errorf("total = %d, want 4", p.Total)
		}
		if p.Failed != 0 {
			t.Errorf("failed = %d, want 0", p.Failed)
		}
		if p.Last == nil || p.Last.Run == nil || p.Last.Err != nil {
			t.Errorf("progress %d lacks its completed result: %+v", p.Done, p.Last)
		}
		calls = append(calls, p.Done)
	}}
	if _, err := eng.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 || calls[len(calls)-1] != 4 {
		t.Errorf("progress calls = %v", calls)
	}
}

// TestEngineProgressFailures checks Failed counts errored jobs and the
// failing job's result reaches the callback with its error set.
func TestEngineProgressFailures(t *testing.T) {
	plan := testPlan()
	plan.Workloads = plan.Workloads[:1]
	plan.Variants = append([]Variant(nil), plan.Variants...)
	bad := plan.Variants[0]
	bad.Name = "panicky"
	bad.Point.Mutate = func(c *machine.Config) { panic("forced failure") }
	plan.Variants[0] = bad
	var lastFailed int
	sawErr := false
	eng := Engine{Workers: 2, Progress: func(p Progress) {
		lastFailed = p.Failed
		if p.Last != nil && p.Last.Err != nil {
			sawErr = true
		}
	}}
	if _, err := eng.Execute(context.Background(), plan); err == nil {
		t.Fatal("want error from the panicking variant")
	}
	if lastFailed != 2 { // the bad variant ran under both seeds
		t.Errorf("final Failed = %d, want 2", lastFailed)
	}
	if !sawErr {
		t.Error("no progress report carried the failing result")
	}
}

// TestEngineAttach checks the per-job Attach hook sees every job and its
// returned function receives the assembled system before the run.
func TestEngineAttach(t *testing.T) {
	plan := testPlan()
	plan.Workloads = plan.Workloads[:1]
	var mu sync.Mutex
	attached := map[int]bool{}
	eng := Engine{Workers: 4, Attach: func(job Job) func(*machine.System) {
		return func(sys *machine.System) {
			if sys.Metrics == nil || sys.Net == nil {
				t.Errorf("job %d: attach received a half-built system", job.Index)
			}
			mu.Lock()
			attached[job.Index] = true
			mu.Unlock()
		}
	}}
	results, err := eng.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(attached) != len(results) {
		t.Errorf("attach hook ran for %d of %d jobs", len(attached), len(results))
	}
}
