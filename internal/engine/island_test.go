package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/trace"
)

// islandOutputs runs one point at the given island count with the
// message pool poisoned and returns every byte stream a run can emit:
// the engine's JSONL row (identity + full metric map), the Chrome
// trace-event export of a tracer (hop-level when hops is set), and a
// flight-recorder dump of the final event ring. The island kernel's
// contract is that all three are byte-identical at any island count.
func islandOutputs(t *testing.T, pt engine.Point, islands int, hops bool) (jsonl, traceJSON, dump []byte) {
	t.Helper()
	msg.PoolPoison = true
	defer func() { msg.PoolPoison = false }()

	pt.Islands = islands
	tr := trace.NewTracer(trace.TracerConfig{Hops: hops})
	var sys *machine.System
	var row bytes.Buffer
	eng := engine.Engine{Workers: 1, Attach: func(engine.Job) func(*machine.System) {
		return func(s *machine.System) {
			sys = s
			s.Observe(tr.Observer())
		}
	}}
	plan := engine.Plan{Variants: []engine.Variant{{Name: "pt", Point: pt}}}
	if _, err := eng.Execute(context.Background(), plan, &engine.JSONLSink{W: &row}); err != nil {
		t.Fatalf("islands=%d: %v", islands, err)
	}
	var tb, db bytes.Buffer
	if err := tr.Export(&tb); err != nil {
		t.Fatalf("islands=%d: trace export: %v", islands, err)
	}
	sys.Recorder.WriteTo(&db, "island determinism check")
	return row.Bytes(), tb.Bytes(), db.Bytes()
}

// checkIslandIdentity asserts that a point emits byte-identical JSONL,
// trace, and flight-recorder output at every island count in counts,
// and across repeated runs at the highest count.
func checkIslandIdentity(t *testing.T, pt engine.Point, counts []int, hops bool) {
	t.Helper()
	jsonl, traceJSON, dump := islandOutputs(t, pt, counts[0], hops)
	if len(jsonl) == 0 || len(traceJSON) == 0 || len(dump) == 0 {
		t.Fatalf("empty reference output (jsonl=%d trace=%d dump=%d bytes)", len(jsonl), len(traceJSON), len(dump))
	}
	check := func(label string, islands int) {
		j, tj, d := islandOutputs(t, pt, islands, hops)
		if !bytes.Equal(jsonl, j) {
			t.Errorf("%s: JSONL differs from islands=%d:\n%s", label, counts[0], firstDiff(jsonl, j))
		}
		if !bytes.Equal(traceJSON, tj) {
			t.Errorf("%s: trace export differs from islands=%d:\n%s", label, counts[0], firstDiff(traceJSON, tj))
		}
		if !bytes.Equal(dump, d) {
			t.Errorf("%s: flight-recorder dump differs from islands=%d:\n%s", label, counts[0], firstDiff(dump, d))
		}
	}
	for _, islands := range counts[1:] {
		check(fmt.Sprintf("islands=%d", islands), islands)
	}
	// Repeated runs at the widest partition must also agree: goroutine
	// scheduling may interleave islands differently every time, and none
	// of it may reach the output.
	last := counts[len(counts)-1]
	check(fmt.Sprintf("islands=%d repeat", last), last)
}

// TestIslandKernelByteIdentity64 is the island kernel's determinism
// gate at CI scale: one 64-processor point per fabric class (TokenB on
// the 8x8 torus, snooping on the ordered tree) emits byte-identical
// JSONL rows, hop-level trace exports, and flight-recorder dumps across
// island counts 1, 2, and 4 and across repeated 4-island runs, with the
// message pool poisoned throughout.
func TestIslandKernelByteIdentity64(t *testing.T) {
	for _, tc := range []struct{ proto, topo string }{
		{engine.ProtoTokenB, engine.TopoTorus},
		{engine.ProtoSnooping, engine.TopoTree},
	} {
		tc := tc
		t.Run(tc.proto, func(t *testing.T) {
			t.Parallel()
			checkIslandIdentity(t, engine.Point{
				Protocol: tc.proto, Topo: tc.topo, Workload: "apache",
				Procs: 64, Ops: 120, Warmup: 120, Seed: 5,
			}, []int{1, 2, 4}, true)
		})
	}
}

// TestIslandKernelByteIdentity256 extends the byte-identity gate to one
// 256-processor point — the scale the island kernel exists for —
// comparing a serial run, a 4-island run, and a repeated 4-island run.
// The tracer records transaction spans but not per-link hops: a 256p
// broadcast protocol emits thousands of hop events per miss, which
// multiplies the run cost far past a unit-test budget, and the hop
// stream's byte-identity is already pinned at 64p above. Skipped in
// -short mode.
func TestIslandKernelByteIdentity256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-processor island determinism skipped in -short mode")
	}
	checkIslandIdentity(t, engine.Point{
		Protocol: engine.ProtoTokenB, Topo: engine.TopoTorus, Workload: "apache",
		Procs: 256, Ops: 12, Warmup: 12, Seed: 5,
	}, []int{1, 4}, false)
}

// TestIslandMetricsAllProtocols checks every protocol on its default
// fabric: a 16-processor run at 2 and 4 islands reproduces the serial
// run's metric snapshot exactly, value for value.
func TestIslandMetricsAllProtocols(t *testing.T) {
	for _, proto := range []string{engine.ProtoTokenB, engine.ProtoTokenD, engine.ProtoTokenM,
		engine.ProtoSnooping, engine.ProtoDirectory, engine.ProtoHammer} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			base := engine.Point{Protocol: proto,
				Workload: "apache", Procs: 16, Ops: 200, Warmup: 200, Seed: 1}
			_, ref, err := engine.RunPointMetrics(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, islands := range []int{2, 4} {
				pt := base
				pt.Islands = islands
				_, snap, err := engine.RunPointMetrics(pt)
				if err != nil {
					t.Fatalf("islands=%d: %v", islands, err)
				}
				for _, name := range ref.Names() {
					want, _ := ref.Value(name)
					got, _ := snap.Value(name)
					if want != got {
						t.Errorf("islands=%d: metric %s = %v, want %v", islands, name, got, want)
					}
				}
			}
		})
	}
}

// TestIslandValidation locks the expansion-time checks: island counts
// above the processor count are rejected, and the knob never leaks into
// serialized output (the JSONL schema has no islands field, so a sweep
// rerun on more cores diffs clean against its archive).
func TestIslandValidation(t *testing.T) {
	if err := (engine.Point{Protocol: engine.ProtoTokenB, Workload: "apache",
		Procs: 4, Islands: 8}).Validate(); err == nil {
		t.Error("islands > procs not rejected")
	}
	if err := (engine.Point{Protocol: engine.ProtoTokenB, Workload: "apache",
		Procs: 8, Islands: 8}).Validate(); err != nil {
		t.Errorf("islands == procs rejected: %v", err)
	}
	plan := engine.Plan{
		Variants: []engine.Variant{{Point: engine.Point{Protocol: engine.ProtoTokenB, Workload: "apache"}}},
		Procs:    4, Islands: 9,
	}
	if _, err := plan.Jobs(); err == nil {
		t.Error("plan with islands > procs expanded without error")
	}
	plan.Islands = 2
	jobs, err := plan.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Point.Islands != 2 {
		t.Errorf("plan islands not applied: job has %d", jobs[0].Point.Islands)
	}
}
