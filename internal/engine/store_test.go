package engine

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/resultstore"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/workload"
)

// storePlan is a small cacheable grid: one protocol, one workload, two
// seeds, two bandwidth mutations (4 simulations at 4 procs).
func storePlan() Plan {
	var muts []Mutation
	for _, gbps := range []float64{1.6, 6.4} {
		bw := gbps
		muts = append(muts, Mutation{
			Name:  "bw",
			Tags:  map[string]string{"bandwidth_gbps": "x"},
			Apply: func(c *machine.Config) { c.Net.LinkBandwidth = bw * 1e9 },
		})
	}
	return Plan{
		Variants:  Grid([]string{ProtoTokenB}, []string{TopoTorus}),
		Workloads: []string{"oltp"},
		Mutations: muts,
		Seeds:     []uint64{1, 2},
		Ops:       100,
		Warmup:    100,
		Procs:     4,
	}
}

// --- Point hashing ------------------------------------------------------

// TestPointKeyStability pins what the content hash must and must not
// see. Keys must change with anything that can change results (seed,
// ops, bandwidth, a config mutation) and must NOT change with
// execution/observability knobs (islands, flight-recorder settings,
// debug-log destination) — the same exclusions as the CSV schema, so an
// archived result is valid however the point is executed or observed.
func TestPointKeyStability(t *testing.T) {
	base := Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp", Procs: 4, Ops: 100, Warmup: 100, Seed: 1}
	key := func(pt Point) string {
		t.Helper()
		k, err := PointKey(pt)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	k0 := key(base)
	if k2 := key(base); k2 != k0 {
		t.Errorf("key not deterministic: %s vs %s", k0, k2)
	}

	same := []struct {
		name string
		mod  func(*Point)
	}{
		{"islands", func(pt *Point) { pt.Islands = 4 }},
		{"recorder knobs", func(pt *Point) {
			pt.Mutate = func(c *machine.Config) {
				c.RecorderSize = 4096
				c.StarvationDeadline = -1
				c.DebugLog = &bytes.Buffer{}
			}
		}},
	}
	for _, tc := range same {
		pt := base
		tc.mod(&pt)
		if k := key(pt); k != k0 {
			t.Errorf("%s changed the key: %s vs %s", tc.name, k, k0)
		}
	}

	diff := []struct {
		name string
		mod  func(*Point)
	}{
		{"seed", func(pt *Point) { pt.Seed = 2 }},
		{"ops", func(pt *Point) { pt.Ops = 200 }},
		{"warmup", func(pt *Point) { pt.Warmup = 200 }},
		{"procs", func(pt *Point) { pt.Procs = 16 }},
		{"unlimited", func(pt *Point) { pt.Unlimited = true }},
		{"workload", func(pt *Point) { pt.Workload = "apache" }},
		{"protocol", func(pt *Point) { pt.Protocol = ProtoDirectory }},
		{"mutation", func(pt *Point) {
			pt.Mutate = func(c *machine.Config) { c.MemLatency *= 2 }
		}},
	}
	seen := map[string]string{k0: "base"}
	for _, tc := range diff {
		pt := base
		tc.mod(&pt)
		k := key(pt)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s: %s", tc.name, prev, k)
		}
		seen[k] = tc.name
	}
}

// TestPointKeySaltChange guards stale-cache correctness: bumping the
// code-version salt must invalidate every key, so results archived
// before a simulator-behavior change can never satisfy sweeps run after
// it.
func TestPointKeySaltChange(t *testing.T) {
	pt := Point{Protocol: ProtoTokenB, Workload: "oltp", Seed: 1}
	k1, err := pointKey(pt, CodeVersion)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := pointKey(pt, CodeVersion+"-next")
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Errorf("salt change did not change the key: %s", k1)
	}
	if k3, _ := PointKey(pt); k3 != k1 {
		t.Errorf("PointKey does not use CodeVersion: %s vs %s", k3, k1)
	}
}

// TestPointKeyRegistrationOrderInvariance: components enter the hash by
// resolved name, so registering more components — which shifts every
// table position after them — must not move a single key. Without this,
// a user extension would silently invalidate a whole archive.
func TestPointKeyRegistrationOrderInvariance(t *testing.T) {
	pt := Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp", Seed: 7}
	before, err := PointKey(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Registration is global and permanent within the test process;
	// unique names keep this safe for every other test.
	registry.RegisterWorkload(registry.Workload{
		Name: "hashtest-workload",
		New:  func(procs int) machine.Generator { return workload.NewUniform(64, 0.3, sim.Nanosecond, procs) },
	})
	registry.RegisterProtocol(registry.Protocol{
		Name: "hashtest-protocol",
		Build: func(sys *machine.System) ([]machine.Controller, func() error) {
			return nil, nil
		},
	})
	after, err := PointKey(pt)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("registration order leaked into the key: %s vs %s", before, after)
	}
}

// TestPointKeyParallelism: the key is a pure function of the point —
// many goroutines hashing the same point must agree (run under -race in
// CI, which also proves the registry reads are safe).
func TestPointKeyParallelism(t *testing.T) {
	pt := Point{Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp", Procs: 8, Seed: 3}
	want, err := PointKey(pt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if k, err := PointKey(pt); err != nil || k != want {
					t.Errorf("concurrent key = %s, %v; want %s", k, err, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCanonicalEncodeMapOrder: the canonical encoder must render maps
// (workload parameters, future config fields) identically regardless of
// Go's randomized iteration order.
func TestCanonicalEncodeMapOrder(t *testing.T) {
	m := map[string]float64{"think": 5, "write": 0.3, "blocks": 2048, "alpha": 0.01}
	var want bytes.Buffer
	canonicalEncode(&want, "params", reflect.ValueOf(m))
	for i := 0; i < 100; i++ {
		var got bytes.Buffer
		canonicalEncode(&got, "params", reflect.ValueOf(m))
		if got.String() != want.String() {
			t.Fatalf("iteration %d: encoding varies:\n%s\nvs\n%s", i, got.String(), want.String())
		}
	}
	if !strings.Contains(want.String(), "params[alpha]=0.01\n") {
		t.Errorf("unexpected map encoding:\n%s", want.String())
	}
}

// TestPointKeyGenID: opaque generators have no content identity unless
// the caller names one; naming it makes the point cacheable and the
// name part of the key.
func TestPointKeyGenID(t *testing.T) {
	newGen := func(procs int) machine.Generator {
		return workload.NewUniform(2048, 0.3, 5*sim.Nanosecond, procs)
	}
	pt := Point{Protocol: ProtoTokenB, Topo: TopoTorus, NewGen: newGen, Procs: 4, Seed: 1}
	if _, err := PointKey(pt); !errors.Is(err, ErrUncacheable) {
		t.Fatalf("want ErrUncacheable for anonymous NewGen, got %v", err)
	}
	pt.GenID = "uniform/2048/0.3/5ns"
	k1, err := PointKey(pt)
	if err != nil {
		t.Fatal(err)
	}
	pt.GenID = "uniform/4096/0.3/5ns"
	k2, err := PointKey(pt)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("GenID does not reach the key")
	}
}

// --- Store-backed execution --------------------------------------------

// runWithSinks executes the plan and returns CSV and JSONL output.
func runWithSinks(t *testing.T, eng Engine, plan Plan) (string, string, []Result) {
	t.Helper()
	var csvBuf, jsonBuf bytes.Buffer
	results, err := eng.Execute(context.Background(), plan,
		&CSVSink{W: &csvBuf}, &JSONLSink{W: &jsonBuf})
	if err != nil {
		t.Fatal(err)
	}
	return csvBuf.String(), jsonBuf.String(), results
}

// TestStoreReplayByteIdentity is the tentpole's core guarantee: a fully
// cached re-run recalls every point from the store — zero simulations —
// and its CSV and JSONL output is byte-identical to the computed run's.
func TestStoreReplayByteIdentity(t *testing.T) {
	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan := storePlan()

	var attached int
	counting := func(job Job) func(*machine.System) {
		attached++
		return nil
	}

	cold := Engine{Workers: 1, Store: st, Reuse: true, Attach: counting}
	csv1, json1, res1 := runWithSinks(t, cold, plan)
	if attached != len(res1) {
		t.Fatalf("cold run simulated %d of %d points", attached, len(res1))
	}
	for _, r := range res1 {
		if r.Cached {
			t.Errorf("cold run job %d marked cached", r.Index)
		}
	}
	if n, _ := st.Len(); n != len(res1) {
		t.Fatalf("store holds %d entries after cold run, want %d", n, len(res1))
	}

	attached = 0
	warm := Engine{Workers: 2, Store: st, Reuse: true, Attach: counting}
	csv2, json2, res2 := runWithSinks(t, warm, plan)
	if attached != 0 {
		t.Errorf("warm run simulated %d points, want 0", attached)
	}
	for _, r := range res2 {
		if !r.Cached {
			t.Errorf("warm run job %d not cached", r.Index)
		}
	}
	if csv1 != csv2 {
		t.Errorf("CSV output differs between computed and recalled runs:\n%s\nvs\n%s", csv1, csv2)
	}
	if json1 != json2 {
		t.Errorf("JSONL output differs between computed and recalled runs:\n%s\nvs\n%s", json1, json2)
	}

	// Without Reuse the store is write-through only: points recompute.
	attached = 0
	writeOnly := Engine{Workers: 1, Store: st, Attach: counting}
	csv3, _, _ := runWithSinks(t, writeOnly, plan)
	if attached != len(res1) {
		t.Errorf("write-through run simulated %d of %d points", attached, len(res1))
	}
	if csv3 != csv1 {
		t.Error("write-through run output differs")
	}
}

// TestStoreResumeAfterCancel models a killed sweep: the first execution
// is cancelled mid-plan (completed points already archived), the second
// resumes against the same store and must emit byte-identical output to
// a never-interrupted run, recomputing only what is missing.
func TestStoreResumeAfterCancel(t *testing.T) {
	plan := storePlan()
	golden, goldenJSON, _ := runWithSinks(t, Engine{Workers: 1}, plan)

	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := Engine{
		Workers: 1,
		Store:   st,
		Reuse:   true,
		Progress: func(p Progress) {
			if p.Done == 2 {
				cancel() // die mid-plan with two points archived
			}
		},
	}
	var devnull bytes.Buffer
	if _, err := interrupted.Execute(ctx, plan, &JSONLSink{W: &devnull}); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	n, _ := st.Len()
	if n == 0 || n >= 4 {
		t.Fatalf("store holds %d entries after cancellation, want a strict mid-plan subset", n)
	}

	resumed := Engine{Workers: 2, Store: st, Reuse: true}
	csv2, json2, res := runWithSinks(t, resumed, plan)
	if csv2 != golden || json2 != goldenJSON {
		t.Error("resumed output is not byte-identical to an uninterrupted run")
	}
	var cached int
	for _, r := range res {
		if r.Cached {
			cached++
		}
	}
	if cached != n {
		t.Errorf("resumed run recalled %d points, want %d (the archived ones)", cached, n)
	}
}

// TestShardPartitionEquivalence: two shards of a plan must run disjoint
// job subsets covering every index, each in plan order, and the
// index-merge of their results must equal the single-process run.
func TestShardPartitionEquivalence(t *testing.T) {
	plan := storePlan()
	_, whole, _ := runWithSinks(t, Engine{Workers: 1}, plan)

	lines := map[int]string{} // plan index → JSONL line
	total := 0
	for shard := 0; shard < 2; shard++ {
		var buf bytes.Buffer
		results, err := Engine{Workers: 1, Shard: shard, Shards: 2}.Execute(
			context.Background(), plan, &JSONLSink{W: &buf})
		if err != nil {
			t.Fatal(err)
		}
		out := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
		if len(out) != len(results) {
			t.Fatalf("shard %d emitted %d lines for %d jobs", shard, len(out), len(results))
		}
		for i, r := range results {
			if r.Index%2 != shard {
				t.Errorf("shard %d ran job %d", shard, r.Index)
			}
			if _, dup := lines[r.Index]; dup {
				t.Errorf("job %d ran on both shards", r.Index)
			}
			lines[r.Index] = out[i]
			total++
		}
	}
	jobs, err := plan.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if total != len(jobs) {
		t.Fatalf("shards covered %d of %d jobs", total, len(jobs))
	}
	var merged strings.Builder
	for i := 0; i < total; i++ {
		merged.WriteString(lines[i])
		merged.WriteByte('\n')
	}
	if merged.String() != whole {
		t.Errorf("index-merged shard output differs from single-process run:\n%s\nvs\n%s",
			merged.String(), whole)
	}
}

// TestShardValidation rejects nonsense shard specs up front.
func TestShardValidation(t *testing.T) {
	for _, bad := range []Engine{{Shard: 2, Shards: 2}, {Shard: -1, Shards: 3}, {Shard: 1}} {
		if _, err := bad.Execute(context.Background(), storePlan()); err == nil {
			t.Errorf("shard %d/%d: want error", bad.Shard, bad.Shards)
		}
	}
}

// endRecorder wraps a sink and records End calls.
type endRecorder struct {
	Sink
	ends int
}

func (e *endRecorder) End() error {
	if es, ok := e.Sink.(EndSink); ok {
		if err := es.End(); err != nil {
			return err
		}
	}
	e.ends++
	return nil
}

// TestCancelFlushesSinks is the Ctrl-C regression: a cancelled Execute
// must still End() its sinks, so output buffered in a bufio.Writer
// reaches the file and the partial CSV parses cleanly — a header plus
// whole rows, no torn line.
func TestCancelFlushesSinks(t *testing.T) {
	plan := storePlan()
	ctx, cancel := context.WithCancel(context.Background())
	var raw bytes.Buffer
	bw := bufio.NewWriter(&raw)
	sink := &endRecorder{Sink: &CSVSink{W: bw}}
	eng := Engine{
		Workers: 1,
		Progress: func(p Progress) {
			if p.Done == 2 {
				cancel()
			}
		},
	}
	if _, err := eng.Execute(ctx, plan, sink); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if sink.ends != 1 {
		t.Fatalf("End called %d times, want 1", sink.ends)
	}
	out := raw.String()
	if out == "" || !strings.HasSuffix(out, "\n") {
		t.Fatalf("partial output torn or empty: %q", out)
	}
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("partial CSV does not parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("partial CSV has %d rows, want header plus at least one completed point", len(rows))
	}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			t.Errorf("row %d has %d fields, want %d", i, len(row), len(rows[0]))
		}
	}
}
