package sim

import "testing"

// wheelHorizon is the top level's span: events at curStart+wheelHorizon
// or later cannot be filed in any wheel bucket and wait in the overflow
// heap (about 268 us at the current constants).
const wheelHorizon = Time(1) << (granShift + wheelLevels*wheelBits)

// TestHorizonBoundaryOrdering schedules events straddling the exact
// wheel horizon — the last bucketable picosecond, the first overflow
// picosecond, and one past it — and requires strict time order across
// the wheel/overflow boundary.
func TestHorizonBoundaryOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	at := func(tm Time, id int) {
		k.Schedule(tm, func() { order = append(order, id) })
	}
	at(wheelHorizon+1, 3)
	at(wheelHorizon, 2)
	at(wheelHorizon-1, 1)
	at(5*Nanosecond, 0)
	k.Run()
	for i, id := range order {
		if i != id {
			t.Fatalf("firing order = %v, want [0 1 2 3]", order)
		}
	}
	if k.Now() != wheelHorizon+1 {
		t.Errorf("Now() = %v, want %v", k.Now(), wheelHorizon+1)
	}
}

// TestHorizonBoundaryTieBreak schedules several events at exactly the
// horizon time: they cross the overflow heap yet must still fire in
// scheduling order (the (time, seq) tie-break survives migration).
func TestHorizonBoundaryTieBreak(t *testing.T) {
	k := NewKernel()
	var order []int
	for id := 0; id < 8; id++ {
		id := id
		k.Schedule(wheelHorizon, func() { order = append(order, id) })
	}
	k.Run()
	if len(order) != 8 {
		t.Fatalf("fired %d events, want 8", len(order))
	}
	for i, id := range order {
		if i != id {
			t.Fatalf("same-time overflow events fired as %v, want insertion order", order)
		}
	}
}

// TestHorizonBoundaryAfterAdvance re-checks the boundary from a cursor
// that has moved: after running to an uneven mid-simulation time, the
// horizon is measured from the cursor's region, not from zero.
func TestHorizonBoundaryAfterAdvance(t *testing.T) {
	k := NewKernel()
	k.Schedule(12345*Nanosecond+777, func() {})
	k.Run()
	base := k.Now()
	var order []int
	at := func(tm Time, id int) {
		k.Schedule(tm, func() { order = append(order, id) })
	}
	at(base+wheelHorizon+wheelHorizon/2, 2)
	at(base+wheelHorizon, 1)
	at(base+1*Nanosecond, 0)
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("firing order = %v, want [0 1 2]", order)
	}
}

// TestOverflowCancel cancels an event while it waits in the overflow
// heap; the cancellation must stick across the migration into the wheel.
func TestOverflowCancel(t *testing.T) {
	k := NewKernel()
	var order []int
	at := func(tm Time, id int) *Event {
		return k.Schedule(tm, func() { order = append(order, id) })
	}
	at(wheelHorizon+10*Nanosecond, 0)
	doomed := at(wheelHorizon+20*Nanosecond, 1)
	at(wheelHorizon+30*Nanosecond, 2)
	k.Cancel(doomed)
	if got := k.Pending(); got != 2 {
		t.Fatalf("Pending() after overflow cancel = %d, want 2", got)
	}
	k.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("firing order = %v, want [0 2]", order)
	}
}

// TestOverflowCancelAll drains a kernel whose only events are cancelled
// overflow entries: Run must return without firing anything and without
// sticking on the dead heap entries.
func TestOverflowCancelAll(t *testing.T) {
	k := NewKernel()
	fired := 0
	var evs []*Event
	for i := 0; i < 4; i++ {
		evs = append(evs, k.Schedule(wheelHorizon+Time(i)*Nanosecond, func() { fired++ }))
	}
	for _, e := range evs {
		k.Cancel(e)
	}
	k.Run()
	if fired != 0 || k.Pending() != 0 {
		t.Fatalf("fired=%d Pending=%d after cancelling all overflow events, want 0/0", fired, k.Pending())
	}
}

// TestOverflowSpansEras places events in several distinct top-level
// regions ("eras") beyond the horizon plus near events, interleaving
// schedule order against time order; the per-era batch migration must
// not reorder them.
func TestOverflowSpansEras(t *testing.T) {
	k := NewKernel()
	var order []int
	at := func(tm Time, id int) {
		k.Schedule(tm, func() { order = append(order, id) })
	}
	at(3*wheelHorizon+5*Nanosecond, 3)
	at(1*Nanosecond, 0)
	at(wheelHorizon+5*Nanosecond, 1)
	at(2*wheelHorizon+5*Nanosecond, 2)
	at(5*wheelHorizon, 4)
	k.Run()
	for i, id := range order {
		if i != id {
			t.Fatalf("firing order = %v, want [0 1 2 3 4]", order)
		}
	}
}

// TestOverflowEventSchedulesPastNextEra fires an overflow event whose
// action schedules further ahead than the next era, exercising schedule
// paths from a cursor that has jumped regions.
func TestOverflowEventSchedulesPastNextEra(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(wheelHorizon+1, func() {
		order = append(order, 0)
		k.Schedule(k.Now()+wheelHorizon, func() { order = append(order, 2) })
		k.Schedule(k.Now()+1, func() { order = append(order, 1) })
	})
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("firing order = %v, want [0 1 2]", order)
	}
	if want := wheelHorizon + 1 + wheelHorizon; k.Now() != want {
		t.Errorf("Now() = %v, want %v", k.Now(), want)
	}
}
