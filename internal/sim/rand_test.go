package sim

import (
	"testing"
	"testing/quick"
)

func TestSourceDeterministic(t *testing.T) {
	a, b := NewSource(7), NewSource(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a, b := NewSource(1), NewSource(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 identical draws from different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewSource(9)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p, c := NewSource(9), child
	_ = p.Uint64() // parent advanced once during Split
	diff := false
	for i := 0; i < 16; i++ {
		if p.Uint64() != c.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("Split child replays parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 1000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int63n(-5) did not panic")
		}
	}()
	NewSource(1).Int63n(-5)
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 1000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64RoughlyUniform(t *testing.T) {
	s := NewSource(13)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.47 || mean > 0.53 {
		t.Errorf("mean of %d draws = %v, want ~0.5", n, mean)
	}
}

func TestDurationRange(t *testing.T) {
	s := NewSource(5)
	for i := 0; i < 500; i++ {
		d := s.Duration(100 * Nanosecond)
		if d < 0 || d >= 100*Nanosecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewSource(21)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("Bool(0.25) hit rate = %v, want ~0.25", frac)
	}
}

func TestGeometricMeanAndFloor(t *testing.T) {
	s := NewSource(33)
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Geometric(8)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 6.5 || mean > 9.5 {
		t.Errorf("Geometric(8) sample mean = %v, want ~8", mean)
	}
	if got := s.Geometric(0.5); got != 1 {
		t.Errorf("Geometric(0.5) = %d, want 1", got)
	}
}

// TestGeometricDistribution locks the closed-form inverse-CDF sampler to
// the distribution the O(mean) rejection loop produced: sample mean
// within 2% of the requested mean over 1e5 draws, floor of 1, tail
// capped at 16x the mean. The 6000 case is the workloads' 6 ns mean
// think time in picoseconds — the hot-path case the closed form exists
// for.
func TestGeometricDistribution(t *testing.T) {
	for _, mean := range []float64{2, 8, 100, 6000} {
		s := NewSource(97)
		const n = 100000
		tail := int(mean * 16)
		var sum float64
		for i := 0; i < n; i++ {
			v := s.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", mean, v)
			}
			if v > tail {
				t.Fatalf("Geometric(%v) = %d above the 16x cap %d", mean, v, tail)
			}
			sum += float64(v)
		}
		got := sum / n
		if got < mean*0.98 || got > mean*1.02 {
			t.Errorf("Geometric(%v) sample mean = %v, want within 2%%", mean, got)
		}
	}
}

// TestGeometricSingleDraw pins the O(1) hot-path property: one sample
// consumes exactly one value from the stream, where the rejection loop
// consumed O(mean) (~6000 at the workloads' 6 ns mean think time).
func TestGeometricSingleDraw(t *testing.T) {
	a, b := NewSource(5), NewSource(5)
	for i := 0; i < 100; i++ {
		a.Geometric(6000)
		b.Uint64()
		if a.state != b.state {
			t.Fatalf("draw %d: Geometric(6000) advanced the stream by more than one value", i)
		}
	}
}

func BenchmarkGeometric(b *testing.B) {
	// 6000 is the workloads' 6 ns mean think time in picoseconds; the
	// old rejection loop cost ~6000 RNG draws per sample here.
	s := NewSource(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Geometric(6000)
	}
	benchSink = sink
}

var benchSink int

// Property: Intn(n) is always within bounds for any positive n.
func TestPropertyIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n)%1000 + 1
		s := NewSource(seed)
		for i := 0; i < 20; i++ {
			v := s.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
