// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is single threaded: components schedule events (closures) at
// absolute simulated times and the kernel executes them in time order,
// breaking ties by insertion sequence so that runs are bit-reproducible.
// All randomness used by simulation components must come from Source
// values seeded from the run configuration.
package sim

import "fmt"

// Time is an absolute simulated time in picoseconds.
//
// Picosecond granularity keeps link serialization exact: an 8-byte
// control message on a 3.2 GB/s link occupies the link for exactly
// 2500 ps, which nanosecond granularity would have to round.
type Time int64

// Common durations expressed in Time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a time later than any time a simulation will reach.
const Forever Time = 1<<63 - 1

// Nanoseconds reports t as a floating point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	}
}
