package sim

import (
	"fmt"
	"testing"
)

// benchChurn measures steady-state schedule+fire throughput with the
// given number of events pending: every fired event schedules a
// replacement, so the population stays constant while b.N events fire.
func benchChurn(b *testing.B, pending int) {
	k := NewKernel()
	src := NewSource(42)
	window := Time(pending) * 10 * Nanosecond // ~constant event density
	fired := 0
	var act func()
	act = func() {
		fired++
		if fired >= b.N {
			k.Stop()
			return
		}
		k.After(src.Duration(window), act)
	}
	for i := 0; i < pending; i++ {
		k.After(src.Duration(window), act)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
	if fired < b.N && k.Pending() == 0 {
		b.Fatalf("queue drained after %d events", fired)
	}
}

// BenchmarkKernelChurn is the kernel's headline microbenchmark:
// schedule+fire cycles at 1k to 1M pending events. Near-horizon events
// cost O(1) bucket pushes regardless of population; only events beyond
// the ~268us wheel horizon (the 1M case spreads over 10ms) fall back to
// the overflow heap's log(n).
func BenchmarkKernelChurn(b *testing.B) {
	for _, pending := range []int{1_000, 32_000, 1_000_000} {
		pending := pending
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			benchChurn(b, pending)
		})
	}
}

// BenchmarkKernelSchedule measures pure insertion (no firing) across a
// spread of future times touching every wheel level and the overflow
// heap.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	src := NewSource(7)
	action := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(src.Duration(Millisecond), action)
	}
}

// BenchmarkKernelScheduleCancel measures the schedule+cancel round trip
// (reissue-timer pattern: most timers are cancelled, not fired).
// Cancellation is lazy, so the clock advances periodically to let the
// cursor sweep cancelled events back into the pool, as simulated time
// does in a real run.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := NewKernel()
	src := NewSource(7)
	action := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Cancel(k.Schedule(k.Now()+src.Duration(10*Microsecond), action))
		if i&1023 == 1023 {
			k.RunUntil(k.Now() + 20*Microsecond)
		}
	}
}

// TestKernelSteadyStateAllocs is a hard allocation gate on the hot
// path: once the event pool and bucket heaps are warm, scheduling and
// firing must allocate nothing. A regression here (a new closure, a
// lost pool reuse) fails immediately rather than surfacing as a slow
// drift in the end-to-end benchmarks.
func TestKernelSteadyStateAllocs(t *testing.T) {
	k := NewKernel()
	src := NewSource(9)
	var act func()
	act = func() {
		k.After(src.Duration(10*Microsecond), act)
	}
	for i := 0; i < 512; i++ {
		k.After(src.Duration(10*Microsecond), act)
	}
	k.RunUntil(k.Now() + 200*Microsecond) // warm pools and heap capacity
	allocs := testing.AllocsPerRun(200, func() {
		k.RunUntil(k.Now() + 5*Microsecond)
	})
	if allocs > 0 {
		t.Errorf("steady-state kernel churn allocates %.1f objects per 5us slice, want 0", allocs)
	}
}

// TestKernelCancelAllocs verifies the cancel path is allocation-free in
// steady state. Cancellation is lazy (a mark, no heap surgery), so the
// clock must advance past the cancelled events for the cursor to sweep
// them back into the pool — the timer pattern every protocol follows.
func TestKernelCancelAllocs(t *testing.T) {
	k := NewKernel()
	src := NewSource(11)
	action := func() {}
	step := func() {
		for i := 0; i < 16; i++ {
			k.Cancel(k.Schedule(k.Now()+src.Duration(Microsecond), action))
		}
		k.RunUntil(k.Now() + 2*Microsecond)
	}
	for i := 0; i < 64; i++ {
		step() // warm the event pool
	}
	allocs := testing.AllocsPerRun(200, step)
	if allocs > 0 {
		t.Errorf("schedule+cancel+sweep allocates %.1f objects per 16 timers, want 0", allocs)
	}
}
