package sim

import (
	"encoding/binary"
	"testing"
)

// refEvent is one event in the reference scheduler: a plain slice that
// is linearly scanned for the (time, seq) minimum, the obviously-correct
// model the timing wheel must match.
type refEvent struct {
	at   Time
	seq  uint64
	id   int
	dead bool // fired or cancelled
}

type refKernel struct {
	events []refEvent
	seq    uint64
	order  []int
}

func (r *refKernel) schedule(at Time, id int) {
	r.events = append(r.events, refEvent{at: at, seq: r.seq, id: id})
	r.seq++
}

func (r *refKernel) cancel(id int) {
	for i := range r.events {
		if r.events[i].id == id && !r.events[i].dead {
			r.events[i].dead = true
			return
		}
	}
}

func (r *refKernel) pending() int {
	n := 0
	for i := range r.events {
		if !r.events[i].dead {
			n++
		}
	}
	return n
}

// runUntil fires events at or before limit in (time, seq) order,
// spawning the same derived children the kernel actions spawn.
func (r *refKernel) runUntil(limit Time, spawn func(parent int, at Time) (int, Time, bool)) {
	for {
		best := -1
		for i := range r.events {
			e := &r.events[i]
			if e.dead || e.at > limit {
				continue
			}
			if best < 0 || e.at < r.events[best].at ||
				(e.at == r.events[best].at && e.seq < r.events[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		e := &r.events[best]
		e.dead = true
		r.order = append(r.order, e.id)
		if child, at, ok := spawn(e.id, e.at); ok {
			r.schedule(at, child)
		}
	}
}

// FuzzKernelSchedule drives random schedule/cancel/run-until sequences
// through the timing-wheel kernel and a linear-scan reference model and
// requires identical firing order, pending counts, and clocks. Actions
// also spawn children mid-run, exercising scheduling into the bucket
// currently being drained.
func FuzzKernelSchedule(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 20, 0, 2, 50, 0})
	f.Add([]byte{0, 1, 0, 0, 1, 0, 0, 1, 0, 3})
	// Deltas with high bytes reach the wheel's upper levels and the
	// overflow heap (delta is a uint16 count of 16ns steps below).
	f.Add([]byte{0, 0xff, 0xff, 0, 0x10, 0x27, 0, 5, 0, 2, 0xff, 0x7f, 3})
	f.Add([]byte{0, 7, 0, 1, 0, 0, 0, 7, 0, 2, 100, 0, 0, 9, 0, 3})
	f.Add([]byte{0, 3, 0, 0, 3, 0, 1, 0, 0, 1, 1, 0, 2, 3, 0})
	// Deltas 16777 and 16778 steps (0x4189/0x418A) straddle the wheel's
	// top-level horizon of 2^28 ps: one lands in the last bucketable
	// region, the other in the overflow heap. The exact horizon value is
	// not representable in 16ns steps; horizon_test.go covers it directly.
	f.Add([]byte{0, 0x89, 0x41, 0, 0x8A, 0x41, 0, 5, 0, 1, 1, 0, 3})
	f.Add([]byte{0, 0x8A, 0x41, 2, 0x89, 0x41, 0, 0x8A, 0x41, 3})
	f.Add([]byte{0, 0x8A, 0x41, 0, 0x8A, 0x41, 1, 0, 0, 2, 0xff, 0xff, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		k := NewKernel()
		ref := &refKernel{}
		var kernelOrder []int
		handles := map[int]*Event{}
		nextID := 0

		// spawn derives a deterministic child for roughly a third of
		// fired events; ids above the spawn ceiling never re-spawn.
		const spawnCeil = 1 << 20
		spawn := func(parent int, at Time) (int, Time, bool) {
			if parent%3 != 0 || parent >= spawnCeil {
				return 0, 0, false
			}
			return parent + spawnCeil, at + Time(parent%4096)*Nanosecond/4, true
		}

		var schedule func(at Time, id int)
		schedule = func(at Time, id int) {
			handles[id] = k.Schedule(at, func() {
				delete(handles, id) // fired events recycle; drop the handle
				kernelOrder = append(kernelOrder, id)
				if child, cat, ok := spawn(id, k.Now()); ok {
					schedule(cat, child)
				}
			})
		}

		// alive returns the ids the reference still considers pending,
		// in scheduling order, for cancel targeting.
		alive := func() []int {
			var ids []int
			for i := range ref.events {
				if !ref.events[i].dead {
					ids = append(ids, ref.events[i].id)
				}
			}
			return ids
		}

		for pc := 0; pc+1 <= len(data) && ref.seq < 2048; {
			op := data[pc]
			pc++
			arg := uint16(0)
			if pc+2 <= len(data) {
				arg = binary.LittleEndian.Uint16(data[pc : pc+2])
				pc += 2
			}
			switch op % 4 {
			case 0: // schedule at now + arg*16ns (reaches all wheel levels)
				at := k.Now() + Time(arg)*16*Nanosecond
				id := nextID
				nextID++
				schedule(at, id)
				ref.schedule(at, id)
			case 1: // cancel a pending event
				ids := alive()
				if len(ids) == 0 {
					continue
				}
				id := ids[int(arg)%len(ids)]
				k.Cancel(handles[id])
				delete(handles, id)
				ref.cancel(id)
			case 2: // run until now + arg*16ns
				limit := k.Now() + Time(arg)*16*Nanosecond
				k.RunUntil(limit)
				ref.runUntil(limit, spawn)
			case 3: // drain
				k.Run()
				ref.runUntil(Forever, spawn)
			}
			if got, want := k.Pending(), ref.pending(); got != want {
				t.Fatalf("after op %d: Pending() = %d, reference has %d", op%4, got, want)
			}
		}
		k.Run()
		ref.runUntil(Forever, spawn)

		if len(kernelOrder) != len(ref.order) {
			t.Fatalf("fired %d events, reference fired %d", len(kernelOrder), len(ref.order))
		}
		for i := range kernelOrder {
			if kernelOrder[i] != ref.order[i] {
				t.Fatalf("firing order diverged at %d: kernel %d, reference %d",
					i, kernelOrder[i], ref.order[i])
			}
		}
		if k.Pending() != ref.pending() {
			t.Fatalf("final Pending() = %d, reference %d", k.Pending(), ref.pending())
		}
	})
}
