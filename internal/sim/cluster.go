package sim

import "fmt"

// crossEvent is an event scheduled by one island for execution on
// another. It carries the stamp issued by the scheduling island so the
// merged event order is identical to a serial run.
type crossEvent struct {
	at  Time
	by  int32
	seq uint64
	on  int32
	fn  func()
}

// Cluster partitions one simulation's actors across a set of island
// kernels and runs them under a conservative (Chandy-Misra-style)
// lookahead protocol: all islands execute a window [T, T+lookahead) of
// events concurrently, then synchronize at a barrier where cross-island
// events are exchanged. The model must guarantee that every schedule
// targeting an actor on another island fires at least lookahead after
// the scheduling event (in this codebase the interconnect's link
// latency provides that bound); Run panics if the contract is violated.
//
// Determinism: events are ordered by the (time, actor, seq) stamp (see
// eventLess), which is issued from per-actor counters owned by the
// scheduling island. Because every cross-actor schedule is at least
// lookahead ahead, each actor's event sequence — and therefore every
// stamp — is independent of the partition, so any island count fires
// the same events at the same times in the same per-actor order.
type Cluster struct {
	kernels     []*Kernel
	actorIsland []int32
	aseq        []uint64
	lookahead   Time
	cross       [][][]crossEvent // [source island][target island]
	now         Time             // end of the last completed window
}

// NewCluster builds islands kernels over the given actor-to-island
// assignment. Every actor index an event executes as must be a valid
// index into actorIsland, and every assignment must name a valid
// island. lookahead is the minimum cross-island scheduling delay.
func NewCluster(islands int, actorIsland []int32, lookahead Time) *Cluster {
	if islands < 1 {
		panic("sim: cluster needs at least one island")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	for a, isle := range actorIsland {
		if isle < 0 || int(isle) >= islands {
			panic(fmt.Sprintf("sim: actor %d assigned to island %d of %d", a, isle, islands))
		}
	}
	c := &Cluster{
		actorIsland: actorIsland,
		aseq:        make([]uint64, len(actorIsland)),
		lookahead:   lookahead,
	}
	c.kernels = make([]*Kernel, islands)
	c.cross = make([][][]crossEvent, islands)
	for i := range c.kernels {
		c.kernels[i] = &Kernel{aseq: c.aseq, cl: c, island: int32(i)}
		c.cross[i] = make([][]crossEvent, islands)
	}
	return c
}

// Islands reports the number of islands.
func (c *Cluster) Islands() int { return len(c.kernels) }

// Kernel returns island i's kernel.
func (c *Cluster) Kernel(i int) *Kernel { return c.kernels[i] }

// KernelFor returns the kernel of the island owning actor a.
func (c *Cluster) KernelFor(a int) *Kernel { return c.kernels[c.actorIsland[a]] }

// IslandOf reports which island owns actor a.
func (c *Cluster) IslandOf(a int) int32 { return c.actorIsland[a] }

// Lookahead reports the synchronization window width.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// Now reports the end time of the last completed window.
func (c *Cluster) Now() Time { return c.now }

// push queues a cross-island event. Called only from island src's
// goroutine while a window runs; drained at the next barrier.
func (c *Cluster) push(src, dst int32, ev crossEvent) {
	c.cross[src][dst] = append(c.cross[src][dst], ev)
}

// applyCross injects all queued cross-island events into their target
// kernels. Called between windows, when no island is running.
func (c *Cluster) applyCross() {
	for src := range c.cross {
		for dst, q := range c.cross[src] {
			for i := range q {
				if q[i].at < c.now {
					panic(fmt.Sprintf("sim: cross-island event at %v violates lookahead window ending %v", q[i].at, c.now))
				}
				c.kernels[dst].inject(q[i])
				q[i].fn = nil
			}
			c.cross[src][dst] = q[:0]
		}
	}
}

// nextTime reports the earliest pending event time across all islands.
func (c *Cluster) nextTime() (Time, bool) {
	var min Time
	ok := false
	for _, k := range c.kernels {
		if t, live := k.NextTime(); live && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// Run drives synchronized windows until the event queues drain or the
// barrier callback reports stop. After every window the callback runs
// on the coordinating goroutine with the window's end time; no island
// executes during the callback, so it may inspect and mutate any
// island's state (merge observation journals, reset statistics at the
// warmup boundary, decide completion). Run returns the end time of the
// last window, or the time reached when the queues drained.
func (c *Cluster) Run(barrier func(end Time) bool) Time {
	g := len(c.kernels)
	var starts []chan Time
	var done chan struct{}
	if g > 1 {
		starts = make([]chan Time, g)
		done = make(chan struct{}, g)
		for i := range starts {
			starts[i] = make(chan Time)
			go func(k *Kernel, start <-chan Time) {
				for end := range start {
					k.RunUntil(end - 1)
					done <- struct{}{}
				}
			}(c.kernels[i], starts[i])
		}
		defer func() {
			for _, ch := range starts {
				close(ch)
			}
		}()
	}
	for {
		c.applyCross()
		t, ok := c.nextTime()
		if !ok {
			return c.now
		}
		end := t + c.lookahead
		if g == 1 {
			c.kernels[0].RunUntil(end - 1)
		} else {
			for _, ch := range starts {
				ch <- end
			}
			for i := 0; i < g; i++ {
				<-done
			}
		}
		c.now = end
		if barrier(end) {
			return end
		}
	}
}
