package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelZeroValue(t *testing.T) {
	var k Kernel
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestScheduleRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(30, func() { order = append(order, 3) })
	k.Schedule(10, func() { order = append(order, 1) })
	k.Schedule(20, func() { order = append(order, 2) })
	end := k.Run()
	if end != 30 {
		t.Errorf("Run() = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakByInsertionOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order[%d] = %d, want %d (insertion order must win ties)", i, order[i], i)
		}
	}
}

func TestNowAdvancesDuringEvents(t *testing.T) {
	k := NewKernel()
	var seen []Time
	k.Schedule(7, func() { seen = append(seen, k.Now()) })
	k.Schedule(42, func() { seen = append(seen, k.Now()) })
	k.Run()
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 42 {
		t.Fatalf("seen = %v, want [7 42]", seen)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.Schedule(10, func() {
		k.After(5, func() { fired = append(fired, k.Now()) })
	})
	k.Run()
	if len(fired) != 1 || fired[0] != 15 {
		t.Fatalf("fired = %v, want [15]", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.Schedule(50, func() {})
	})
	k.Run()
}

func TestScheduleNilActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil action did not panic")
		}
	}()
	NewKernel().Schedule(1, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewKernel().After(-1, func() {})
}

func TestCancelPreventsExecution(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.Schedule(10, func() { ran = true })
	k.Cancel(e)
	k.Run()
	if ran {
		t.Error("cancelled event still ran")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	k := NewKernel()
	e := k.Schedule(10, func() {})
	k.Cancel(e)
	k.Cancel(e) // must not panic
	k.Cancel(nil)
	k.Run()
}

func TestCancelDuringRun(t *testing.T) {
	k := NewKernel()
	ran := false
	var victim *Event
	k.Schedule(5, func() { k.Cancel(victim) })
	victim = k.Schedule(10, func() { ran = true })
	k.Run()
	if ran {
		t.Error("event cancelled mid-run still ran")
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.Schedule(10, func() { fired = append(fired, 10) })
	k.Schedule(20, func() { fired = append(fired, 20) })
	k.Schedule(30, func() { fired = append(fired, 30) })
	k.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %v, want 20", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", k.Pending())
	}
	k.Run()
	if len(fired) != 3 {
		t.Errorf("resumed run fired %v, want all three", fired)
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	k := NewKernel()
	k.RunUntil(500)
	if k.Now() != 500 {
		t.Errorf("Now() = %v, want 500", k.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (Stop must halt promptly)", count)
	}
	if k.Pending() != 7 {
		t.Errorf("Pending() = %d, want 7", k.Pending())
	}
}

func TestExecutedCounts(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.Schedule(Time(i), func() {})
	}
	k.Run()
	if k.Executed() != 5 {
		t.Errorf("Executed() = %d, want 5", k.Executed())
	}
}

// TestDeterministicInterleaving replays a pseudo-random scheduling pattern
// twice and requires identical execution order.
func TestDeterministicInterleaving(t *testing.T) {
	replay := func(seed uint64) []int {
		k := NewKernel()
		src := NewSource(seed)
		var order []int
		id := 0
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 3 {
				return
			}
			n := src.Intn(3) + 1
			for i := 0; i < n; i++ {
				myID := id
				id++
				k.After(Time(src.Intn(50)), func() {
					order = append(order, myID)
					spawn(depth + 1)
				})
			}
		}
		spawn(0)
		k.Run()
		return order
	}
	a, b := replay(42), replay(42)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any batch of (time, id) pairs, execution order is sorted by
// time with ties in insertion order.
func TestPropertyExecutionOrderSorted(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		k := NewKernel()
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, raw := range times {
			at := Time(raw)
			i := i
			k.Schedule(at, func() { got = append(got, rec{at, i}) })
		}
		k.Run()
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{5 * Millisecond, "5ms"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeNanoseconds(t *testing.T) {
	if got := (2500 * Picosecond).Nanoseconds(); got != 2.5 {
		t.Errorf("Nanoseconds() = %v, want 2.5", got)
	}
}
