package sim

import "math"

// Source is a small deterministic pseudo-random number generator
// (SplitMix64). Every stochastic decision in the simulator draws from a
// Source seeded by the run configuration so that runs replay exactly.
//
// The zero value is a valid generator (seed 0); use NewSource to derive
// independent streams.
type Source struct {
	state uint64
}

// NewSource returns a generator seeded with seed.
func NewSource(seed uint64) *Source { return &Source{state: seed} }

// Split derives an independent child stream; the parent advances once.
func (s *Source) Split() *Source { return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniformly distributed in [0, n). It panics if
// n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a value uniformly distributed in [0, n). It panics if
// n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Duration returns a time uniformly distributed in [0, d). d must be
// positive.
func (s *Source) Duration(d Time) Time {
	return Time(s.Int63n(int64(d)))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Geometric returns a sample from a geometric distribution with the
// given mean (success probability 1/mean, support {1, 2, ...}), always
// at least 1 and capped at 16x the mean. It is used for think times and
// burst lengths where a long tail is wanted without unbounded values.
//
// The sample is drawn by closed-form inverse-CDF transform — a single
// Float64 per call — rather than by Bernoulli rejection, which costs
// O(mean) draws per sample and dominated large-system runs at the
// workloads' nanosecond-scale mean think times (~6000 draws per
// generated op at a 6 ns mean).
func (s *Source) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	// For U uniform in [0,1), 1 + floor(log(1-U) / log(1-p)) is
	// geometric with P(n=k) = p(1-p)^(k-1), exactly the distribution
	// the rejection loop sampled.
	n := 1 + int(math.Log(1-s.Float64())/math.Log(1-1/mean))
	if n < 1 {
		n = 1
	}
	if tail := int(mean * 16); n > tail {
		n = tail
	}
	return n
}
