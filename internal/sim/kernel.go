package sim

import (
	"fmt"
	"math/bits"
)

// Event is a scheduled action. Events are created by Kernel.Schedule and
// may be cancelled before they fire.
//
// Event objects are owned by the kernel and recycled through a free list
// once they fire or a cancellation is drained, so callers must drop
// their reference to an event no later than when its action runs (the
// usual pattern is for the action itself to clear the field holding the
// event). Cancel is safe only on events that have not fired yet.
type Event struct {
	at     Time
	seq    uint64
	by     int32 // actor whose event scheduled this one (stamp)
	on     int32 // actor this event executes as
	action func()
	next   *Event // wheel-slot chain / free-list link
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.action == nil }

// The event queue is a hierarchical timing wheel: wheelLevels levels of
// wheelSlots buckets each, with a bucket granularity of 1<<granShift
// picoseconds at level 0 and wheelSlots times coarser per level. A
// bucket holds an unsorted chain of events; exact (time, sequence)
// ordering is recovered by a small binary heap ("cur") that holds only
// the events of the bucket the cursor is standing on. Events beyond the
// top level's horizon (about 268 us) wait in an overflow heap and are
// migrated into the wheel when the cursor reaches their region.
//
// Scheduling and cancelling are O(1); firing pays O(log b) for a bucket
// of b events, which stays tiny because buckets subdivide time finely.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 buckets per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	granShift   = 10 // level-0 bucket spans 1024 ps ~ 1 ns
)

// levelShift returns the right-shift that maps a time to its bucket
// quotient at level l.
func levelShift(l int) uint { return uint(granShift + l*wheelBits) }

// slotList is a FIFO chain of events within one wheel bucket.
type slotList struct {
	head, tail *Event
}

func (s *slotList) push(e *Event) {
	e.next = nil
	if s.tail == nil {
		s.head = e
	} else {
		s.tail.next = e
	}
	s.tail = e
}

// take empties the list and returns its head.
func (s *slotList) take() *Event {
	h := s.head
	s.head, s.tail = nil, nil
	return h
}

// Kernel is a deterministic discrete-event scheduler. The zero value is
// ready to use at time 0.
type Kernel struct {
	now       Time
	seq       uint64
	scheduled uint64
	executed  uint64
	stopped   bool
	live      int // scheduled events not yet fired or cancelled

	// Actor stamping. Every event carries a (time, actor, sequence)
	// stamp where actor is the actor whose event issued the schedule
	// and sequence is that actor's private out-counter. The stamp is a
	// total order that does not depend on how actors are partitioned
	// into islands, which is what makes island runs byte-identical to
	// serial runs (see cluster.go). A standalone kernel (aseq == nil)
	// stamps everything with actor 0 and the global seq counter,
	// reproducing the classic single-queue insertion order exactly.
	curBy  int32  // stamp actor of the event currently executing
	curOn  int32  // exec actor of the event currently executing
	curSeq uint64 // stamp sequence of the event currently executing
	aseq   []uint64
	cl     *Cluster
	island int32

	// curStart is the start time of the bucket the cursor stands on;
	// cur holds that bucket's events as a min-heap by (time, sequence).
	curStart Time
	cur      []*Event

	levels [wheelLevels][wheelSlots]slotList
	occ    [wheelLevels]uint64 // per-level bucket-occupancy bitmaps

	overflow []*Event // min-heap by (time, sequence), beyond the wheel horizon

	free *Event // recycled Event objects
}

// NewKernel returns a kernel positioned at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Scheduled reports how many events have ever been scheduled (fired,
// cancelled, still pending, or handed to another island). Together with
// Executed it is the kernel's contribution to the run's metric schema.
func (k *Kernel) Scheduled() uint64 { return k.scheduled }

// Pending reports how many events are waiting in the queue.
func (k *Kernel) Pending() int { return k.live }

// SetExecActor sets the actor context used to stamp schedules made
// outside any event (model construction, processor start staggering).
func (k *Kernel) SetExecActor(a int32) { k.curOn = a }

// CurStamp reports the (time, actor, sequence) stamp of the event
// currently executing. The stamp is unique per event and totally
// ordered across all islands of a cluster, so it is the key used to
// merge per-island observation journals deterministically.
func (k *Kernel) CurStamp() (Time, int32, uint64) { return k.now, k.curBy, k.curSeq }

// stamp issues the next (actor, sequence) stamp for a schedule made
// from the current execution context.
func (k *Kernel) stamp() (int32, uint64) {
	k.scheduled++
	if k.aseq == nil {
		s := k.seq
		k.seq++
		return 0, s
	}
	by := k.curOn
	s := k.aseq[by]
	k.aseq[by] = s + 1
	return by, s
}

// alloc takes an event from the free list or the heap.
func (k *Kernel) alloc(at Time, by int32, seq uint64, on int32, action func()) *Event {
	e := k.free
	if e == nil {
		e = &Event{}
	} else {
		k.free = e.next
	}
	e.at = at
	e.seq = seq
	e.by = by
	e.on = on
	e.action = action
	e.next = nil
	return e
}

// release recycles a fired or cancellation-drained event.
func (k *Kernel) release(e *Event) {
	e.action = nil
	e.next = k.free
	k.free = e
}

// Schedule arranges for action to run at absolute time at, executing as
// the current actor. Scheduling in the past panics: it always indicates
// a model bug, and silently clamping would hide it.
func (k *Kernel) Schedule(at Time, action func()) *Event {
	return k.ScheduleExec(k.curOn, at, action)
}

// ScheduleExec arranges for action to run at absolute time at, executing
// as actor on. When the kernel belongs to a cluster and on lives on a
// different island, the event is queued for barrier hand-off and nil is
// returned (cross-island events cannot be cancelled; the model only
// cancels self-scheduled timers). Cross-island schedules must satisfy
// at >= now + lookahead; the cluster checks this when applying them.
func (k *Kernel) ScheduleExec(on int32, at Time, action func()) *Event {
	if action == nil {
		panic("sim: Schedule with nil action")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	by, seq := k.stamp()
	if c := k.cl; c != nil {
		if isle := c.actorIsland[on]; isle != k.island {
			c.push(k.island, isle, crossEvent{at: at, by: by, seq: seq, on: on, fn: action})
			return nil
		}
	}
	e := k.alloc(at, by, seq, on, action)
	k.live++
	k.place(e)
	return e
}

// inject files a cross-island event carrying an already-issued stamp.
// Only the cluster calls this, between windows, when no island runs.
func (k *Kernel) inject(ev crossEvent) {
	e := k.alloc(ev.at, ev.by, ev.seq, ev.on, ev.fn)
	k.live++
	k.place(e)
}

// place files an event into the cur heap, a wheel bucket, or the
// overflow heap. An event lands at the finest level whose bucket
// quotient still matches the cursor's at the next level up, which keeps
// every occupied bucket strictly ahead of the cursor index at its level
// (no wrap-around aliasing).
func (k *Kernel) place(e *Event) {
	q := e.at >> granShift
	cq := k.curStart >> granShift
	if q <= cq {
		// Current bucket, or behind a cursor that overshot during an
		// idle advance: only the heap can order it.
		k.heapPush(&k.cur, e)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		if (q >> uint((l+1)*wheelBits)) == (cq >> uint((l+1)*wheelBits)) {
			slot := int((q >> uint(l*wheelBits)) & wheelMask)
			k.levels[l][slot].push(e)
			k.occ[l] |= 1 << uint(slot)
			return
		}
	}
	k.heapPush(&k.overflow, e)
}

// After schedules action to run delay after the current time.
func (k *Kernel) After(delay Time, action func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return k.Schedule(k.now+delay, action)
}

// Cancel removes a previously scheduled event. Cancelling an event that
// has already fired or been cancelled is a no-op. The cancellation is
// lazy: the event stays in its bucket until the cursor drains it.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.action == nil {
		return
	}
	e.action = nil
	k.live--
}

// Stop makes the currently running Run/RunUntil call return after the
// current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// advance moves the cursor to the next occupied bucket, cascading
// coarser levels and the overflow heap into finer ones as boundaries
// are crossed. It reports false when no events remain anywhere.
func (k *Kernel) advance() bool {
	for {
		if len(k.cur) > 0 {
			return true
		}
		// Next occupied bucket at the finest level that has one. The
		// cursor index at each level only ever moves forward within
		// its parent bucket, so the scan never wraps.
		cascaded := false
		for l := 0; l < wheelLevels; l++ {
			sh := levelShift(l)
			idx := int((k.curStart >> sh) & wheelMask)
			above := k.occ[l] >> uint(idx+1) << uint(idx+1)
			if above == 0 {
				continue
			}
			slot := bits.TrailingZeros64(above)
			q := (k.curStart>>sh)&^Time(wheelMask) | Time(slot)
			k.curStart = q << sh
			k.occ[l] &^= 1 << uint(slot)
			for e := k.levels[l][slot].take(); e != nil; {
				next := e.next
				if e.action == nil {
					k.release(e)
				} else if l == 0 {
					k.heapPush(&k.cur, e)
				} else {
					k.place(e)
				}
				e = next
			}
			cascaded = true
			break
		}
		if cascaded {
			continue
		}
		if len(k.overflow) == 0 {
			return false
		}
		// Jump the cursor to the overflow's earliest region and pull
		// in everything that now fits under the wheel horizon.
		k.curStart = (k.overflow[0].at >> granShift) << granShift
		top := levelShift(wheelLevels)
		era := k.curStart >> top
		for len(k.overflow) > 0 && k.overflow[0].at>>top == era {
			e := k.heapPop(&k.overflow)
			if e.action == nil {
				k.release(e)
			} else {
				k.place(e)
			}
		}
	}
}

// step fires the earliest event. It reports false when no event at or
// before limit remains.
func (k *Kernel) step(limit Time) bool {
	for {
		for len(k.cur) > 0 {
			e := k.cur[0]
			if e.action == nil {
				k.heapPop(&k.cur)
				k.release(e)
				continue
			}
			if e.at > limit {
				return false
			}
			k.heapPop(&k.cur)
			k.now = e.at
			k.curBy, k.curOn, k.curSeq = e.by, e.on, e.seq
			action := e.action
			e.action = nil
			k.live--
			k.release(e)
			action()
			k.executed++
			return true
		}
		if !k.advance() {
			return false
		}
	}
}

// Run executes events until the queue drains or Stop is called. It
// reports the final simulated time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.step(Forever) {
	}
	return k.now
}

// RunUntil executes events with firing times at or before limit. Events
// scheduled after limit remain queued. The clock is advanced to limit if
// the queue drained earlier.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.stopped && k.step(limit) {
	}
	if !k.stopped && k.now < limit {
		k.now = limit
	}
	return k.now
}

// NextTime peeks the firing time of the earliest live event, advancing
// the cursor past cancelled entries and cascading buckets as needed. It
// reports false when the queue is empty.
func (k *Kernel) NextTime() (Time, bool) {
	for {
		for len(k.cur) > 0 {
			e := k.cur[0]
			if e.action == nil {
				k.heapPop(&k.cur)
				k.release(e)
				continue
			}
			return e.at, true
		}
		if !k.advance() {
			return 0, false
		}
	}
}

// heapPush inserts e into an (at, actor, seq)-ordered min-heap.
func (k *Kernel) heapPush(h *[]*Event, e *Event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

// heapPop removes and returns the minimum of the heap.
func (k *Kernel) heapPop(h *[]*Event) *Event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && eventLess(q[c+1], q[c]) {
			c++
		}
		if !eventLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	*h = q
	return top
}

// eventLess orders events by (time, stamp actor, stamp sequence). Each
// actor's out-counter is private to the island executing it, so the
// triple is unique and identical no matter how actors are partitioned:
// island and serial runs fire events in exactly the same order.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.by != b.by {
		return a.by < b.by
	}
	return a.seq < b.seq
}
