package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled action. Events are created by Kernel.Schedule and
// may be cancelled before they fire.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index, -1 when not queued
	action func()
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.action == nil }

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event scheduler. The zero value is
// ready to use at time 0.
type Kernel struct {
	now      Time
	seq      uint64
	queue    eventQueue
	executed uint64
	stopped  bool
}

// NewKernel returns a kernel positioned at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule arranges for action to run at absolute time at. Scheduling in
// the past panics: it always indicates a model bug, and silently clamping
// would hide it.
func (k *Kernel) Schedule(at Time, action func()) *Event {
	if action == nil {
		panic("sim: Schedule with nil action")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	e := &Event{at: at, seq: k.seq, action: action}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules action to run delay after the current time.
func (k *Kernel) After(delay Time, action func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return k.Schedule(k.now+delay, action)
}

// Cancel removes a previously scheduled event. Cancelling an event that
// has already fired or been cancelled is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.action == nil {
		return
	}
	e.action = nil
	if e.index >= 0 {
		heap.Remove(&k.queue, e.index)
		e.index = -1
	}
}

// Stop makes the currently running Run/RunUntil call return after the
// current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// step fires the earliest event. It reports false when the queue is empty.
func (k *Kernel) step(limit Time) bool {
	for len(k.queue) > 0 {
		next := k.queue[0]
		if next.at > limit {
			return false
		}
		heap.Pop(&k.queue)
		if next.action == nil {
			continue // cancelled while queued
		}
		k.now = next.at
		action := next.action
		next.action = nil
		action()
		k.executed++
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It
// reports the final simulated time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.step(Forever) {
	}
	return k.now
}

// RunUntil executes events with firing times at or before limit. Events
// scheduled after limit remain queued. The clock is advanced to limit if
// the queue drained earlier.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.stopped && k.step(limit) {
	}
	if !k.stopped && k.now < limit {
		k.now = limit
	}
	return k.now
}
