package sim

import (
	"fmt"
	"math/bits"
)

// Event is a scheduled action. Events are created by Kernel.Schedule and
// may be cancelled before they fire.
//
// Event objects are owned by the kernel and recycled through a free list
// once they fire or a cancellation is drained, so callers must drop
// their reference to an event no later than when its action runs (the
// usual pattern is for the action itself to clear the field holding the
// event). Cancel is safe only on events that have not fired yet.
type Event struct {
	at     Time
	seq    uint64
	action func()
	next   *Event // wheel-slot chain / free-list link
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.action == nil }

// The event queue is a hierarchical timing wheel: wheelLevels levels of
// wheelSlots buckets each, with a bucket granularity of 1<<granShift
// picoseconds at level 0 and wheelSlots times coarser per level. A
// bucket holds an unsorted chain of events; exact (time, sequence)
// ordering is recovered by a small binary heap ("cur") that holds only
// the events of the bucket the cursor is standing on. Events beyond the
// top level's horizon (about 268 us) wait in an overflow heap and are
// migrated into the wheel when the cursor reaches their region.
//
// Scheduling and cancelling are O(1); firing pays O(log b) for a bucket
// of b events, which stays tiny because buckets subdivide time finely.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 buckets per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	granShift   = 10 // level-0 bucket spans 1024 ps ~ 1 ns
)

// levelShift returns the right-shift that maps a time to its bucket
// quotient at level l.
func levelShift(l int) uint { return uint(granShift + l*wheelBits) }

// slotList is a FIFO chain of events within one wheel bucket.
type slotList struct {
	head, tail *Event
}

func (s *slotList) push(e *Event) {
	e.next = nil
	if s.tail == nil {
		s.head = e
	} else {
		s.tail.next = e
	}
	s.tail = e
}

// take empties the list and returns its head.
func (s *slotList) take() *Event {
	h := s.head
	s.head, s.tail = nil, nil
	return h
}

// Kernel is a deterministic discrete-event scheduler. The zero value is
// ready to use at time 0.
type Kernel struct {
	now      Time
	seq      uint64
	executed uint64
	stopped  bool
	live     int // scheduled events not yet fired or cancelled

	// curStart is the start time of the bucket the cursor stands on;
	// cur holds that bucket's events as a min-heap by (time, sequence).
	curStart Time
	cur      []*Event

	levels [wheelLevels][wheelSlots]slotList
	occ    [wheelLevels]uint64 // per-level bucket-occupancy bitmaps

	overflow []*Event // min-heap by (time, sequence), beyond the wheel horizon

	free *Event // recycled Event objects
}

// NewKernel returns a kernel positioned at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have fired so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Scheduled reports how many events have ever been scheduled (fired,
// cancelled, or still pending). Together with Executed it is the
// kernel's contribution to the run's metric schema.
func (k *Kernel) Scheduled() uint64 { return k.seq }

// Pending reports how many events are waiting in the queue.
func (k *Kernel) Pending() int { return k.live }

// alloc takes an event from the free list or the heap.
func (k *Kernel) alloc(at Time, action func()) *Event {
	e := k.free
	if e == nil {
		e = &Event{}
	} else {
		k.free = e.next
	}
	e.at = at
	e.seq = k.seq
	e.action = action
	e.next = nil
	k.seq++
	return e
}

// release recycles a fired or cancellation-drained event.
func (k *Kernel) release(e *Event) {
	e.action = nil
	e.next = k.free
	k.free = e
}

// Schedule arranges for action to run at absolute time at. Scheduling in
// the past panics: it always indicates a model bug, and silently clamping
// would hide it.
func (k *Kernel) Schedule(at Time, action func()) *Event {
	if action == nil {
		panic("sim: Schedule with nil action")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	e := k.alloc(at, action)
	k.live++
	k.place(e)
	return e
}

// place files an event into the cur heap, a wheel bucket, or the
// overflow heap. An event lands at the finest level whose bucket
// quotient still matches the cursor's at the next level up, which keeps
// every occupied bucket strictly ahead of the cursor index at its level
// (no wrap-around aliasing).
func (k *Kernel) place(e *Event) {
	q := e.at >> granShift
	cq := k.curStart >> granShift
	if q <= cq {
		// Current bucket, or behind a cursor that overshot during an
		// idle advance: only the heap can order it.
		k.heapPush(&k.cur, e)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		if (q >> uint((l+1)*wheelBits)) == (cq >> uint((l+1)*wheelBits)) {
			slot := int((q >> uint(l*wheelBits)) & wheelMask)
			k.levels[l][slot].push(e)
			k.occ[l] |= 1 << uint(slot)
			return
		}
	}
	k.heapPush(&k.overflow, e)
}

// After schedules action to run delay after the current time.
func (k *Kernel) After(delay Time, action func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return k.Schedule(k.now+delay, action)
}

// Cancel removes a previously scheduled event. Cancelling an event that
// has already fired or been cancelled is a no-op. The cancellation is
// lazy: the event stays in its bucket until the cursor drains it.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.action == nil {
		return
	}
	e.action = nil
	k.live--
}

// Stop makes the currently running Run/RunUntil call return after the
// current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// advance moves the cursor to the next occupied bucket, cascading
// coarser levels and the overflow heap into finer ones as boundaries
// are crossed. It reports false when no events remain anywhere.
func (k *Kernel) advance() bool {
	for {
		if len(k.cur) > 0 {
			return true
		}
		// Next occupied bucket at the finest level that has one. The
		// cursor index at each level only ever moves forward within
		// its parent bucket, so the scan never wraps.
		cascaded := false
		for l := 0; l < wheelLevels; l++ {
			sh := levelShift(l)
			idx := int((k.curStart >> sh) & wheelMask)
			above := k.occ[l] >> uint(idx+1) << uint(idx+1)
			if above == 0 {
				continue
			}
			slot := bits.TrailingZeros64(above)
			q := (k.curStart>>sh)&^Time(wheelMask) | Time(slot)
			k.curStart = q << sh
			k.occ[l] &^= 1 << uint(slot)
			for e := k.levels[l][slot].take(); e != nil; {
				next := e.next
				if e.action == nil {
					k.release(e)
				} else if l == 0 {
					k.heapPush(&k.cur, e)
				} else {
					k.place(e)
				}
				e = next
			}
			cascaded = true
			break
		}
		if cascaded {
			continue
		}
		if len(k.overflow) == 0 {
			return false
		}
		// Jump the cursor to the overflow's earliest region and pull
		// in everything that now fits under the wheel horizon.
		k.curStart = (k.overflow[0].at >> granShift) << granShift
		top := levelShift(wheelLevels)
		era := k.curStart >> top
		for len(k.overflow) > 0 && k.overflow[0].at>>top == era {
			e := k.heapPop(&k.overflow)
			if e.action == nil {
				k.release(e)
			} else {
				k.place(e)
			}
		}
	}
}

// step fires the earliest event. It reports false when no event at or
// before limit remains.
func (k *Kernel) step(limit Time) bool {
	for {
		for len(k.cur) > 0 {
			e := k.cur[0]
			if e.action == nil {
				k.heapPop(&k.cur)
				k.release(e)
				continue
			}
			if e.at > limit {
				return false
			}
			k.heapPop(&k.cur)
			k.now = e.at
			action := e.action
			e.action = nil
			k.live--
			k.release(e)
			action()
			k.executed++
			return true
		}
		if !k.advance() {
			return false
		}
	}
}

// Run executes events until the queue drains or Stop is called. It
// reports the final simulated time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.step(Forever) {
	}
	return k.now
}

// RunUntil executes events with firing times at or before limit. Events
// scheduled after limit remain queued. The clock is advanced to limit if
// the queue drained earlier.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.stopped && k.step(limit) {
	}
	if !k.stopped && k.now < limit {
		k.now = limit
	}
	return k.now
}

// heapPush inserts e into an (at, seq)-ordered min-heap.
func (k *Kernel) heapPush(h *[]*Event, e *Event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

// heapPop removes and returns the minimum of the heap.
func (k *Kernel) heapPop(h *[]*Event) *Event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && eventLess(q[c+1], q[c]) {
			c++
		}
		if !eventLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	*h = q
	return top
}

func eventLess(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}
