// Package sweeps defines the simulator's standard parameter-sweep plans
// as declarative engine.Plan grids: runtime vs link bandwidth, runtime
// and traffic vs system size, TokenB sensitivity to tokens per block,
// and sensitivity to memory-level parallelism. Command sweep executes
// them from the command line; the engine's determinism regression test
// executes every kind serially and in parallel and requires
// byte-identical output.
package sweeps

import (
	"fmt"
	"strings"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/harness"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/workload"
)

// Kind is one named sweep: a plan builder taking the workload and seed
// (kinds that sweep the workload axis themselves ignore wl).
type Kind struct {
	Name string
	Plan func(wl string, seed uint64) (engine.Plan, []engine.Column)
}

// kinds is the ordered sweep table ByKind and Kinds resolve through.
var kinds = []Kind{
	{"bandwidth", Bandwidth},
	{"procs", func(_ string, seed uint64) (engine.Plan, []engine.Column) { return Procs(seed) }},
	{"tokens", Tokens},
	{"mshr", MSHR},
}

// Kinds lists the available sweep kinds.
func Kinds() []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.Name
	}
	return out
}

// ByKind returns the named sweep's plan and output columns.
func ByKind(kind, wl string, seed uint64) (engine.Plan, []engine.Column, error) {
	for _, k := range kinds {
		if k.Name == kind {
			p, c := k.Plan(wl, seed)
			return p, c, nil
		}
	}
	return engine.Plan{}, nil, fmt.Errorf("unknown sweep kind %q (registered: %s)",
		kind, strings.Join(Kinds(), ", "))
}

// Bandwidth shows where each protocol becomes bandwidth-bound: the
// paper argues TokenB's extra traffic is harmless on high-bandwidth
// links but matters on starved ones.
func Bandwidth(wl string, seed uint64) (engine.Plan, []engine.Column) {
	var muts []engine.Mutation
	for _, gbps := range []float64{0.4, 0.8, 1.6, 3.2, 6.4, 12.8} {
		bw := gbps
		muts = append(muts, engine.Mutation{
			Name:  fmt.Sprintf("%.1fgbps", bw),
			Tags:  map[string]string{"bandwidth_gbps": fmt.Sprintf("%.1f", bw)},
			Apply: func(c *machine.Config) { c.Net.LinkBandwidth = bw * 1e9 },
		})
	}
	plan := engine.Plan{
		Variants: engine.Grid(
			[]string{harness.ProtoTokenB, harness.ProtoDirectory, harness.ProtoHammer},
			[]string{harness.TopoTorus}),
		Workloads: []string{wl},
		Mutations: muts,
		Seeds:     []uint64{seed},
	}
	return plan, []engine.Column{engine.ColProtocol, engine.TagColumn("bandwidth_gbps"),
		engine.ColCyclesPerTxn, engine.ColAvgMissNS, engine.ColBytesPerMiss}
}

// Procs extends the question 5 scalability study with runtime.
func Procs(seed uint64) (engine.Plan, []engine.Column) {
	var variants []engine.Variant
	for _, proto := range []string{harness.ProtoTokenB, harness.ProtoDirectory} {
		for procs := 4; procs <= 64; procs *= 2 {
			variants = append(variants, engine.Variant{
				Name: fmt.Sprintf("%s-%dp", proto, procs),
				Point: harness.Point{
					Protocol: proto, Topo: harness.TopoTorus, Procs: procs,
					NewGen: func(n int) machine.Generator {
						return workload.NewUniform(2048, 0.3, 5*sim.Nanosecond, n)
					},
					// GenID names the closure's content so the point stays
					// cacheable (engine.PointKey); it must change whenever the
					// NewUniform arguments above do.
					GenID: "uniform/blocks=2048/pwrite=0.3/think=5ns",
				},
			})
		}
	}
	plan := engine.Plan{Variants: variants, Seeds: []uint64{seed}}
	return plan, []engine.Column{engine.ColProtocol, engine.ColProcs,
		engine.ColCyclesPerTxn, engine.ColBytesPerMiss}
}

// Tokens varies T per block for TokenB.
func Tokens(wl string, seed uint64) (engine.Plan, []engine.Column) {
	var muts []engine.Mutation
	for _, tokens := range []int{16, 24, 32, 64, 128, 256} {
		tk := tokens
		muts = append(muts, engine.Mutation{
			Name:  fmt.Sprintf("T=%d", tk),
			Tags:  map[string]string{"tokens_per_block": fmt.Sprintf("%d", tk)},
			Apply: func(c *machine.Config) { c.TokensPerBlock = tk },
		})
	}
	plan := engine.Plan{
		Variants:  engine.Grid([]string{harness.ProtoTokenB}, []string{harness.TopoTorus}),
		Workloads: []string{wl},
		Mutations: muts,
		Seeds:     []uint64{seed},
	}
	return plan, []engine.Column{engine.TagColumn("tokens_per_block"),
		engine.ColCyclesPerTxn, engine.ColReissuedPct, engine.ColPersistentPct}
}

// MSHR varies the processor's miss- and load-level parallelism.
func MSHR(wl string, seed uint64) (engine.Plan, []engine.Column) {
	var muts []engine.Mutation
	for _, mshrs := range []int{2, 4, 8, 16} {
		for _, loads := range []int{1, 2, 4} {
			ms, ld := mshrs, loads
			muts = append(muts, engine.Mutation{
				Name: fmt.Sprintf("mshr=%d/loads=%d", ms, ld),
				Tags: map[string]string{
					"mshrs":     fmt.Sprintf("%d", ms),
					"max_loads": fmt.Sprintf("%d", ld),
				},
				Apply: func(c *machine.Config) {
					c.MSHRs = ms
					c.MaxLoads = ld
				},
			})
		}
	}
	plan := engine.Plan{
		Variants:  engine.Grid([]string{harness.ProtoTokenB}, []string{harness.TopoTorus}),
		Workloads: []string{wl},
		Mutations: muts,
		Seeds:     []uint64{seed},
	}
	return plan, []engine.Column{engine.TagColumn("mshrs"), engine.TagColumn("max_loads"),
		engine.ColCyclesPerTxn, engine.ColAvgMissNS}
}
