package sweeps_test

import (
	"testing"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/sweeps"
)

// TestAllKindsAreCacheable: every built-in sweep's points must carry a
// content identity (engine.PointKey), so sweep -store archives them and
// -resume recalls them. The procs sweep's opaque generator closure is
// the regression case — it needs its GenID to stay cacheable.
func TestAllKindsAreCacheable(t *testing.T) {
	for _, kind := range sweeps.Kinds() {
		plan, _, err := sweeps.ByKind(kind, "oltp", 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		plan.Ops, plan.Warmup = 100, 100
		jobs, err := plan.Jobs()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, job := range jobs {
			if _, err := engine.PointKey(job.Point); err != nil {
				t.Errorf("%s: job %d (%s) is uncacheable: %v", kind, job.Index, job.Variant, err)
			}
		}
	}
}
