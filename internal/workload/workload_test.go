package workload

import (
	"testing"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

func TestCommercialLookup(t *testing.T) {
	for _, name := range Names() {
		p, err := Commercial(name)
		if err != nil {
			t.Fatalf("Commercial(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("Commercial(%q).Name = %q", name, p.Name)
		}
		p.Validate()
	}
	if _, err := Commercial("nope"); err == nil {
		t.Error("unknown workload did not error")
	}
}

func TestValidateRejectsOverfullProbabilities(t *testing.T) {
	p := Apache()
	p.PShared = 0.9
	p.PStream = 0.9
	defer func() {
		if recover() == nil {
			t.Error("overfull probabilities did not panic")
		}
	}()
	p.Validate()
}

func TestRegionsAreDisjoint(t *testing.T) {
	for _, name := range Names() {
		p, _ := Commercial(name)
		g := NewGenerator(p, 16)
		// Generate many ops per processor and bucket them by region.
		rng := sim.NewSource(1)
		seen := map[msg.Block]int{} // block -> owning proc for private/stream
		for proc := 0; proc < 16; proc++ {
			for i := 0; i < 2000; i++ {
				op := g.Next(proc, rng)
				b := msg.BlockOf(op.Addr)
				if b >= g.privBase {
					if prev, ok := seen[b]; ok && prev != proc {
						t.Fatalf("%s: private/stream block %d touched by procs %d and %d", name, b, prev, proc)
					}
					seen[b] = proc
				}
			}
		}
	}
}

func TestTransactionBoundaries(t *testing.T) {
	p := SPECjbb()
	g := NewGenerator(p, 4)
	rng := sim.NewSource(2)
	txns := 0
	const ops = 10 * 90 // OpsPerTxn = 90
	for i := 0; i < ops; i++ {
		if g.Next(0, rng).EndTxn {
			txns++
		}
	}
	if txns != 10 {
		t.Errorf("%d transactions in %d ops, want 10", txns, ops)
	}
}

func TestThinkTimesPositive(t *testing.T) {
	g := NewGenerator(OLTP(), 2)
	rng := sim.NewSource(3)
	for i := 0; i < 1000; i++ {
		op := g.Next(1, rng)
		if op.Think <= 0 {
			t.Fatalf("op %d has non-positive think time %v", i, op.Think)
		}
	}
}

func TestMigratoryBurstsAreRMW(t *testing.T) {
	// Force migratory accesses by zeroing other categories.
	p := OLTP()
	p.PLock, p.PProdCons, p.PShared, p.PStream = 0, 0, 0, 0
	p.PMigratory = 1.0
	g := NewGenerator(p, 2)
	rng := sim.NewSource(4)
	// The stream must consist of read-then-write(s) bursts: every read is
	// immediately followed by a write to the same block, and writes only
	// follow an access to the same block.
	var ops []machine.Op
	for i := 0; i < 400; i++ {
		ops = append(ops, g.Next(0, rng))
	}
	for i, op := range ops {
		if !op.Write {
			if i+1 >= len(ops) {
				break
			}
			next := ops[i+1]
			if !next.Write || next.Addr != op.Addr {
				t.Fatalf("op %d: read of %d not followed by write to it (%+v)", i, op.Addr, next)
			}
		} else if i > 0 && ops[i-1].Addr != op.Addr {
			t.Fatalf("op %d: write to %d does not continue a burst", i, op.Addr)
		}
	}
}

func TestSharedAccessesHitSharedRegion(t *testing.T) {
	p := Apache()
	p.PLock, p.PProdCons, p.PMigratory, p.PStream = 0, 0, 0, 0
	p.PShared = 1.0
	g := NewGenerator(p, 4)
	rng := sim.NewSource(5)
	for i := 0; i < 500; i++ {
		op := g.Next(2, rng)
		b := msg.BlockOf(op.Addr)
		if b < g.sharedBase || b >= g.sharedBase+msg.Block(p.SharedBlocks) {
			t.Fatalf("shared access hit block %d outside [%d, %d)", b, g.sharedBase, g.sharedBase+msg.Block(p.SharedBlocks))
		}
	}
}

func TestStreamWalksSequentially(t *testing.T) {
	p := Apache()
	p.PLock, p.PProdCons, p.PMigratory, p.PShared = 0, 0, 0, 0
	p.PStream = 1.0
	g := NewGenerator(p, 2)
	rng := sim.NewSource(6)
	prev := msg.BlockOf(g.Next(0, rng).Addr)
	for i := 0; i < 100; i++ {
		cur := msg.BlockOf(g.Next(0, rng).Addr)
		if cur != prev+1 && cur != g.streamBase {
			t.Fatalf("stream jumped from %d to %d", prev, cur)
		}
		prev = cur
	}
}

func TestUniformGenerator(t *testing.T) {
	u := NewUniform(8, 0.5, 2*sim.Nanosecond, 4)
	rng := sim.NewSource(7)
	writes := 0
	for i := 0; i < 2000; i++ {
		op := u.Next(0, rng)
		b := msg.BlockOf(op.Addr)
		if b < 1 || b > 8 {
			t.Fatalf("block %d out of pool", b)
		}
		if op.Write {
			writes++
		}
		if !op.EndTxn {
			t.Fatal("OpsPerTxn=1 must mark every op EndTxn")
		}
	}
	if writes < 800 || writes > 1200 {
		t.Errorf("write fraction = %d/2000, want ~50%%", writes)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() []machine.Op {
		g := NewGenerator(Apache(), 4)
		rng := sim.NewSource(42)
		var ops []machine.Op
		for i := 0; i < 200; i++ {
			ops = append(ops, g.Next(i%4, rng))
		}
		return ops
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
