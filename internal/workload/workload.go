// Package workload provides the memory-reference generators that drive
// the simulated processors.
//
// The paper evaluates three commercial workloads (Apache static web
// serving, OLTP on-line transaction processing, SPECjbb Java middleware)
// running under Simics full-system simulation. Those binaries and traces
// are not available, so this package substitutes synthetic generators
// that reproduce the *sharing patterns* that exercise a coherence
// protocol — the mix of private accesses, read-mostly shared data,
// migratory (read-modify-write) records, producer-consumer buffers, and
// highly-contended locks — with per-workload parameters tuned so that
// miss rates and race frequencies land in the regime the paper reports
// (Table 2: ~97% of TokenB misses succeed on the first attempt, a few
// percent reissue, a fraction of a percent go persistent). A fourth
// synthetic workload, barnes, adds a scientific producer-consumer/
// migratory mix beyond the paper's three.
package workload

import (
	"fmt"

	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
)

// Params describes one synthetic commercial workload.
type Params struct {
	Name string

	// Working-set sizes, in blocks.
	PrivateBlocks   int // per-processor private data (heap, stack)
	StreamBlocks    int // per-processor streaming region (capacity misses)
	SharedBlocks    int // read-mostly shared pool (code, file cache)
	MigratoryBlocks int // records updated by one processor at a time
	ProdConsBlocks  int // producer-consumer buffers
	LockBlocks      int // highly-contended locks

	// Access-category probabilities (remainder goes to private data).
	PStream    float64
	PShared    float64
	PMigratory float64
	PProdCons  float64
	PLock      float64

	// PWriteShared is the store fraction on the shared pool; private
	// data uses a fixed 30% store ratio; migratory and lock accesses are
	// read-modify-write bursts by construction.
	PWriteShared float64

	// MeanThink is the average non-memory work between operations.
	MeanThink sim.Time

	// OpsPerTxn defines the transaction boundary for the runtime metric.
	OpsPerTxn int
}

// Validate panics on nonsensical parameters.
func (p Params) Validate() {
	sum := p.PStream + p.PShared + p.PMigratory + p.PProdCons + p.PLock
	if sum > 1 {
		panic(fmt.Sprintf("workload %s: category probabilities sum to %v > 1", p.Name, sum))
	}
	if p.OpsPerTxn <= 0 {
		panic("workload: OpsPerTxn must be positive")
	}
}

// Apache models static web serving: a large read-mostly shared file
// cache, frequent producer-consumer hand-offs between worker processes,
// and contended accept/logging locks — the highest sharing intensity of
// the three (it shows the most reissued requests in Table 2).
func Apache() Params {
	return Params{
		Name:            "apache",
		PrivateBlocks:   1024,
		StreamBlocks:    8192,
		SharedBlocks:    1024,
		MigratoryBlocks: 96,
		ProdConsBlocks:  64,
		LockBlocks:      2,
		PStream:         0.010,
		PShared:         0.060,
		PMigratory:      0.012,
		PProdCons:       0.015,
		PLock:           0.012,
		PWriteShared:    0.10,
		MeanThink:       6 * sim.Nanosecond,
		OpsPerTxn:       120,
	}
}

// OLTP models an on-line transaction processing database: migratory
// row/index records dominate communication, with a big streaming buffer
// pool producing memory misses.
func OLTP() Params {
	return Params{
		Name:            "oltp",
		PrivateBlocks:   1280,
		StreamBlocks:    12288,
		SharedBlocks:    900,
		MigratoryBlocks: 256,
		ProdConsBlocks:  32,
		LockBlocks:      2,
		PStream:         0.016,
		PShared:         0.040,
		PMigratory:      0.022,
		PProdCons:       0.007,
		PLock:           0.008,
		PWriteShared:    0.12,
		MeanThink:       8 * sim.Nanosecond,
		OpsPerTxn:       200,
	}
}

// SPECjbb models Java middleware: warehouse-partitioned (mostly private)
// heaps with occasional shared structures — the least contended workload
// (fewest persistent requests in Table 2).
func SPECjbb() Params {
	return Params{
		Name:            "specjbb",
		PrivateBlocks:   1536,
		StreamBlocks:    6144,
		SharedBlocks:    768,
		MigratoryBlocks: 128,
		ProdConsBlocks:  24,
		LockBlocks:      3,
		PStream:         0.008,
		PShared:         0.035,
		PMigratory:      0.015,
		PProdCons:       0.005,
		PLock:           0.005,
		PWriteShared:    0.08,
		MeanThink:       5 * sim.Nanosecond,
		OpsPerTxn:       90,
	}
}

// Barnes models a scientific N-body code (Barnes-Hut, SPLASH-2 family):
// body records migrate between processors as the tree is rebuilt each
// timestep (migratory read-modify-write), force results flow through
// producer-consumer exchange buffers, and the upper octree levels are a
// read-mostly shared structure. It widens the evaluation beyond the
// paper's three commercial workloads with a heavier
// producer-consumer/migratory mix and a smaller streaming footprint.
func Barnes() Params {
	return Params{
		Name:            "barnes",
		PrivateBlocks:   1152,
		StreamBlocks:    4096,
		SharedBlocks:    640,
		MigratoryBlocks: 192,
		ProdConsBlocks:  96,
		LockBlocks:      2,
		PStream:         0.006,
		PShared:         0.045,
		PMigratory:      0.018,
		PProdCons:       0.012,
		PLock:           0.006,
		PWriteShared:    0.07,
		MeanThink:       7 * sim.Nanosecond,
		OpsPerTxn:       150,
	}
}

// Commercial returns the named workload parameters (apache, oltp,
// specjbb, barnes).
func Commercial(name string) (Params, error) {
	switch name {
	case "apache":
		return Apache(), nil
	case "oltp":
		return OLTP(), nil
	case "specjbb":
		return SPECjbb(), nil
	case "barnes":
		return Barnes(), nil
	}
	return Params{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the workloads: the paper's three commercial workloads in
// the paper's order, then the scientific barnes mix.
func Names() []string { return []string{"apache", "oltp", "specjbb", "barnes"} }

// Generator produces the operation stream for Params. It implements
// machine.Generator and is deterministic given the per-processor rng
// streams.
type Generator struct {
	p     Params
	procs int
	state []procState

	// Region base block numbers.
	lockBase, migBase, pcBase, sharedBase, privBase, streamBase msg.Block
}

type procState struct {
	pending []machine.Op
	opCount int
	stream  int
	// privInit tracks which private blocks have been touched: the first
	// access to a private block is a store (allocation/initialization),
	// so MOSI private data settles into M instead of paying a read miss
	// plus an upgrade miss forever.
	privInit []uint64
}

// NewGenerator builds a generator for procs processors.
func NewGenerator(p Params, procs int) *Generator {
	p.Validate()
	g := &Generator{p: p, procs: procs, state: make([]procState, procs)}
	// Lay out disjoint regions of the block address space.
	next := msg.Block(1) // block 0 left unused
	place := func(n int) msg.Block {
		base := next
		next += msg.Block(n)
		return base
	}
	g.lockBase = place(p.LockBlocks)
	g.migBase = place(p.MigratoryBlocks)
	g.pcBase = place(p.ProdConsBlocks)
	g.sharedBase = place(p.SharedBlocks)
	g.privBase = place(p.PrivateBlocks * procs)
	g.streamBase = place(p.StreamBlocks * procs)
	return g
}

// Params returns the workload's parameters.
func (g *Generator) Params() Params { return g.p }

// Next implements machine.Generator.
func (g *Generator) Next(proc int, rng *sim.Source) machine.Op {
	ps := &g.state[proc]
	var op machine.Op
	if len(ps.pending) > 0 {
		op = ps.pending[0]
		ps.pending = ps.pending[1:]
	} else {
		op = g.generate(proc, ps, rng)
	}
	ps.opCount++
	if ps.opCount%g.p.OpsPerTxn == 0 {
		op.EndTxn = true
	}
	if op.Think == 0 {
		op.Think = sim.Time(rng.Geometric(float64(g.p.MeanThink))) * sim.Picosecond
	}
	return op
}

// generate rolls an access category and may queue a burst continuation.
func (g *Generator) generate(proc int, ps *procState, rng *sim.Source) machine.Op {
	p := g.p
	r := rng.Float64()
	switch {
	case r < p.PLock && p.LockBlocks > 0:
		// Lock acquire/release: read-modify-write on a hot block.
		b := g.lockBase + msg.Block(rng.Intn(p.LockBlocks))
		ps.pending = append(ps.pending, machine.Op{Addr: b.Base(), Write: true})
		return machine.Op{Addr: b.Base(), Write: false}
	case r < p.PLock+p.PMigratory && p.MigratoryBlocks > 0:
		// Migratory record: read, then update, sometimes twice.
		b := g.migBase + msg.Block(rng.Intn(p.MigratoryBlocks))
		ps.pending = append(ps.pending, machine.Op{Addr: b.Base(), Write: true})
		if rng.Bool(0.4) {
			ps.pending = append(ps.pending, machine.Op{Addr: b.Base(), Write: true})
		}
		return machine.Op{Addr: b.Base(), Write: false}
	case r < p.PLock+p.PMigratory+p.PProdCons && p.ProdConsBlocks > 0:
		// Producer-consumer buffer: writers fill, readers drain.
		b := g.pcBase + msg.Block(rng.Intn(p.ProdConsBlocks))
		return machine.Op{Addr: b.Base(), Write: rng.Bool(0.5)}
	case r < p.PLock+p.PMigratory+p.PProdCons+p.PShared && p.SharedBlocks > 0:
		b := g.sharedBase + msg.Block(rng.Intn(p.SharedBlocks))
		return machine.Op{Addr: b.Base(), Write: rng.Bool(p.PWriteShared)}
	case r < p.PLock+p.PMigratory+p.PProdCons+p.PShared+p.PStream && p.StreamBlocks > 0:
		// Sequential streaming through a large per-processor region:
		// capacity misses that go to memory.
		ps.stream = (ps.stream + 1) % p.StreamBlocks
		b := g.streamBase + msg.Block(proc*p.StreamBlocks+ps.stream)
		return machine.Op{Addr: b.Base(), Write: rng.Bool(0.2)}
	default:
		idx := rng.Intn(p.PrivateBlocks)
		b := g.privBase + msg.Block(proc*p.PrivateBlocks+idx)
		write := rng.Bool(0.3)
		if ps.privInit == nil {
			ps.privInit = make([]uint64, (p.PrivateBlocks+63)/64)
		}
		if ps.privInit[idx/64]&(1<<uint(idx%64)) == 0 {
			ps.privInit[idx/64] |= 1 << uint(idx%64)
			write = true // allocation: first touch initializes the block
		}
		return machine.Op{Addr: b.Base(), Write: write}
	}
}

// Uniform is the microbenchmark generator used by the scalability
// experiment (paper §6 question 5) and by many tests: uniform random
// accesses over a shared pool.
type Uniform struct {
	// Blocks is the pool size; PWrite the store fraction; Think the
	// fixed think time; OpsPerTxn the transaction size (default 1).
	Blocks    int
	PWrite    float64
	Think     sim.Time
	OpsPerTxn int

	counts []int
}

// NewUniform builds the microbenchmark for procs processors.
func NewUniform(blocks int, pWrite float64, think sim.Time, procs int) *Uniform {
	return &Uniform{Blocks: blocks, PWrite: pWrite, Think: think, OpsPerTxn: 1, counts: make([]int, procs)}
}

// Next implements machine.Generator.
func (u *Uniform) Next(proc int, rng *sim.Source) machine.Op {
	op := machine.Op{
		Addr:  msg.Addr(rng.Intn(u.Blocks)+1) * msg.BlockSize,
		Write: rng.Bool(u.PWrite),
		Think: u.Think,
	}
	if u.counts != nil {
		u.counts[proc]++
		opsPerTxn := u.OpsPerTxn
		if opsPerTxn <= 0 {
			opsPerTxn = 1
		}
		op.EndTxn = u.counts[proc]%opsPerTxn == 0
	} else {
		op.EndTxn = true
	}
	return op
}
