package msg

import (
	"testing"
	"testing/quick"
)

func TestBlockOfAndBase(t *testing.T) {
	cases := []struct {
		addr  Addr
		block Block
		base  Addr
	}{
		{0, 0, 0},
		{63, 0, 0},
		{64, 1, 64},
		{65, 1, 64},
		{1<<20 + 7, 1 << 14, 1 << 20},
	}
	for _, c := range cases {
		if got := BlockOf(c.addr); got != c.block {
			t.Errorf("BlockOf(%d) = %d, want %d", c.addr, got, c.block)
		}
		if got := c.block.Base(); got != c.base {
			t.Errorf("Block(%d).Base() = %d, want %d", c.block, got, c.base)
		}
	}
}

func TestPropertyBlockRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		b := BlockOf(a)
		base := b.Base()
		return base <= a && a < base+BlockSize && BlockOf(base) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHomeOfInterleaves(t *testing.T) {
	const n = 16
	counts := make([]int, n)
	for b := Block(0); b < 16*n; b++ {
		h := HomeOf(b, n)
		if h < 0 || int(h) >= n {
			t.Fatalf("HomeOf(%d, %d) = %d out of range", b, n, h)
		}
		counts[h]++
	}
	for i, c := range counts {
		if c != 16 {
			t.Errorf("home %d got %d blocks, want 16 (uniform interleave)", i, c)
		}
	}
}

func TestMessageBytes(t *testing.T) {
	m := &Message{Kind: KindGetS}
	if m.Bytes() != ControlBytes {
		t.Errorf("control message Bytes() = %d, want %d", m.Bytes(), ControlBytes)
	}
	m.HasData = true
	if m.Bytes() != DataBytes {
		t.Errorf("data message Bytes() = %d, want %d", m.Bytes(), DataBytes)
	}
	if DataBytes != 72 {
		t.Errorf("DataBytes = %d, want 72 (8B header + 64B block)", DataBytes)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := &Message{Kind: KindData, Tokens: 3, Owner: true, HasData: true, Data: 9}
	var pool Pool
	c := pool.Clone(m)
	c.Tokens = 1
	c.Data = 10
	if m.Tokens != 3 || m.Data != 9 {
		t.Error("mutating clone affected original")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		KindGetS, KindGetM, KindData, KindDataShared, KindTokens, KindAck,
		KindInv, KindFwdGetS, KindFwdGetM, KindPutM, KindPutS, KindWBAck,
		KindWBStale, KindUnblock, KindMemData, KindProbe, KindProbeAck,
		KindProbeData, KindPersistentReq, KindPersistentActivate,
		KindPersistentActivateAck, KindPersistentDeactivate,
		KindPersistentDeactivateAck,
	}
	seen := make(map[string]Kind)
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Errorf("Kind %d has empty String()", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share String %q", prev, k, s)
		}
		seen[s] = k
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestCategoryStrings(t *testing.T) {
	for c := Category(0); int(c) < NumCategories; c++ {
		if c.String() == "" {
			t.Errorf("category %d has empty String()", c)
		}
	}
}

func TestUnitStrings(t *testing.T) {
	units := []Unit{UnitCache, UnitMem, UnitArbiter, UnitProc}
	for _, u := range units {
		if u.String() == "" {
			t.Errorf("unit %d has empty String()", u)
		}
	}
	p := Port{Node: 3, Unit: UnitMem}
	if p.String() != "mem@3" {
		t.Errorf("Port.String() = %q, want mem@3", p.String())
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{
		Kind: KindData, Src: Port{1, UnitCache}, Dst: Port{2, UnitCache},
		Addr: 128, Tokens: 4, Owner: true, HasData: true, Data: 7,
	}
	s := m.String()
	for _, want := range []string{"Data", "tok=4", "+O", "v7"} {
		if !contains(s, want) {
			t.Errorf("Message.String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
