// Package msg defines the coherence-message vocabulary shared by every
// protocol in the simulator: node/unit addressing, block naming, message
// kinds, wire sizes, and traffic categories.
//
// The paper's protocols exchange 8-byte control messages and 72-byte data
// messages (8-byte header + 64-byte cache block). Every protocol package
// builds its messages from the kinds declared here so that the traffic
// accounting in package stats can classify them uniformly.
package msg

import "fmt"

// NodeID identifies one highly-integrated node (processor + caches +
// memory controller + coherence controllers), 0..N-1.
type NodeID int

// Unit selects a controller within a node.
type Unit uint8

const (
	// UnitCache is the node's cache coherence controller.
	UnitCache Unit = iota
	// UnitMem is the node's memory controller (home for an address slice).
	UnitMem
	// UnitArbiter is the persistent-request arbiter co-located with the
	// home memory controller (Token Coherence only).
	UnitArbiter
	// UnitProc is the processor-side port, used only for completion
	// notifications in tests.
	UnitProc
)

func (u Unit) String() string {
	switch u {
	case UnitCache:
		return "cache"
	case UnitMem:
		return "mem"
	case UnitArbiter:
		return "arbiter"
	case UnitProc:
		return "proc"
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Port addresses one controller in the system.
type Port struct {
	Node NodeID
	Unit Unit
}

func (p Port) String() string { return fmt.Sprintf("%v@%d", p.Unit, p.Node) }

// Addr is a physical byte address.
type Addr uint64

// Block is a cache-block number (Addr >> BlockShift).
type Block uint64

// Cache-block geometry (Table 1: 64-byte blocks).
const (
	BlockShift = 6
	BlockSize  = 1 << BlockShift
)

// BlockOf returns the block containing a.
func BlockOf(a Addr) Block { return Block(a >> BlockShift) }

// Base returns the first byte address of the block.
func (b Block) Base() Addr { return Addr(b) << BlockShift }

// HomeOf returns the node whose memory controller is home for block b in
// an n-node system (block-interleaved, as in the Alpha 21364 and Origin).
func HomeOf(b Block, n int) NodeID { return NodeID(uint64(b) % uint64(n)) }

// Wire sizes (paper §5.1): "All request, acknowledgment, invalidation,
// and dataless token messages are 8 bytes in size ...; data messages
// include this 8 byte header and 64 bytes of data."
const (
	ControlBytes = 8
	DataBytes    = ControlBytes + BlockSize // 72
)

// Kind enumerates every message type used by the four protocols. Keeping
// them in one enum lets the network and statistics layers stay
// protocol-agnostic.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Transient/ordinary requests (all protocols).
	KindGetS // request read permission
	KindGetM // request write permission

	// Responses and token carriers.
	KindData       // data (+ tokens for Token Coherence)
	KindDataShared // data granting read-only (directory/hammer/snooping)
	KindTokens     // dataless token transfer (Token Coherence)
	KindAck        // invalidation acknowledgment / probe ack
	KindInv        // invalidation (directory)
	KindFwdGetS    // forwarded GetS (directory)
	KindFwdGetM    // forwarded GetM (directory)

	// Writebacks.
	KindPutM      // writeback of owned/modified data
	KindPutS      // clean eviction notice (directory variants; unused by some)
	KindWBAck     // writeback acknowledgment
	KindWBStale   // writeback arrived stale; drop without writing
	KindUnblock   // transaction-complete notification to home
	KindMemData   // data from memory (hammer: parallel DRAM fetch)
	KindProbe     // broadcast probe (hammer)
	KindProbeAck  // probe miss acknowledgment (hammer)
	KindProbeData // probe hit: data to requester (hammer)

	// Persistent requests (Token Coherence correctness substrate).
	KindPersistentReq           // starving processor -> home arbiter
	KindPersistentActivate      // arbiter -> all nodes
	KindPersistentActivateAck   // node -> arbiter
	KindPersistentDeactivate    // arbiter -> all nodes
	KindPersistentDeactivateAck // node -> arbiter

	// Hierarchical coherence (two-level directory authority tier).
	KindAuthReq   // cluster home -> global authority: request block authority
	KindAuthGrant // global authority -> cluster home: authority + current data
	KindRecall    // global authority -> holding cluster home: give authority back
	KindRecallAck // cluster home -> global authority: authority + data returned
)

func (k Kind) String() string {
	switch k {
	case KindGetS:
		return "GetS"
	case KindGetM:
		return "GetM"
	case KindData:
		return "Data"
	case KindDataShared:
		return "DataShared"
	case KindTokens:
		return "Tokens"
	case KindAck:
		return "Ack"
	case KindInv:
		return "Inv"
	case KindFwdGetS:
		return "FwdGetS"
	case KindFwdGetM:
		return "FwdGetM"
	case KindPutM:
		return "PutM"
	case KindPutS:
		return "PutS"
	case KindWBAck:
		return "WBAck"
	case KindWBStale:
		return "WBStale"
	case KindUnblock:
		return "Unblock"
	case KindMemData:
		return "MemData"
	case KindProbe:
		return "Probe"
	case KindProbeAck:
		return "ProbeAck"
	case KindProbeData:
		return "ProbeData"
	case KindPersistentReq:
		return "PersistentReq"
	case KindPersistentActivate:
		return "PersistentActivate"
	case KindPersistentActivateAck:
		return "PersistentActivateAck"
	case KindPersistentDeactivate:
		return "PersistentDeactivate"
	case KindPersistentDeactivateAck:
		return "PersistentDeactivateAck"
	case KindAuthReq:
		return "AuthReq"
	case KindAuthGrant:
		return "AuthGrant"
	case KindRecall:
		return "Recall"
	case KindRecallAck:
		return "RecallAck"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Category classifies messages for the traffic breakdowns in Figures 4b
// and 5b.
type Category uint8

const (
	// CatRequest covers first-issue transient requests, directory
	// requests, forwarded requests and invalidations.
	CatRequest Category = iota
	// CatReissue covers reissued transient requests and all persistent
	// request machinery (Token Coherence only).
	CatReissue
	// CatControl covers other non-data messages: acknowledgments,
	// dataless token transfers, unblocks, writeback acks.
	CatControl
	// CatData covers data responses and writebacks.
	CatData
	numCategories = 4
)

// NumCategories is the number of traffic categories.
const NumCategories = int(numCategories)

func (c Category) String() string {
	switch c {
	case CatRequest:
		return "requests"
	case CatReissue:
		return "reissues+persistent"
	case CatControl:
		return "other-control"
	case CatData:
		return "data"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Slug returns the category's identifier-safe short name, used to build
// per-category metric names like "bytes_request".
func (c Category) Slug() string {
	switch c {
	case CatRequest:
		return "request"
	case CatReissue:
		return "reissue"
	case CatControl:
		return "control"
	case CatData:
		return "data"
	}
	return fmt.Sprintf("category%d", uint8(c))
}

// Message is one coherence message. A message is owned by the network
// from Send/Multicast until delivery; each destination receives its own
// copy and may mutate it freely during Handle. The network recycles the
// copy when the handler returns unless the handler called Retain, which
// transfers ownership to the retainer (who frees it when done).
type Message struct {
	Kind Kind
	Cat  Category
	Src  Port
	Dst  Port
	Addr Addr

	// Requester is the port that should receive the eventual response
	// (used by forwarded requests, probes and persistent activations).
	Requester Port

	// Tokens and Owner implement the token-counting substrate: Tokens is
	// the number of tokens carried (including the owner token when Owner
	// is set). Non-token protocols leave these zero.
	Tokens int
	Owner  bool

	// HasData marks a 72-byte message carrying the cache block.
	HasData bool
	// Data is the block payload, modelled as a write-version number so
	// the safety oracle can detect stale reads.
	Data uint64

	// Acks is the number of acknowledgments the requester must collect
	// (directory protocol), or a generic small counter.
	Acks int

	// Dirty marks data that has been modified relative to memory, so
	// migratory-sharing grants can be detected by the receiver.
	Dirty bool

	// Seq carries a protocol-defined sequence number (persistent request
	// identifiers, snooping order tags in tests).
	Seq uint64

	// Pool bookkeeping (see Pool): free-list link, receiver-retention
	// mark, and a double-free guard.
	next     *Message
	retained bool
	pooled   bool
}

// Retain marks a delivered message as kept by its receiver: the network
// will not recycle it when the handler returns. The retainer owns the
// message afterwards and should hand it to Pool.Put (via the network's
// FreeMessage) once done with it. Retain returns m for call-site
// convenience.
func (m *Message) Retain() *Message {
	m.retained = true
	return m
}

// Pool is a free list of Message objects. The simulator allocates every
// hot-path message from a pool and recycles it when its receiver is done,
// so steady-state simulation creates no per-message garbage. A Pool is
// single-threaded, like the kernel whose network owns it.
type Pool struct {
	free *Message
}

// PoolPoison, when set (by tests), scrambles messages as they are
// recycled so that any use-after-free surfaces as loudly wrong values
// instead of silently stale ones.
var PoolPoison bool

// Get returns a zeroed message from the pool, allocating if empty.
func (p *Pool) Get() *Message {
	m := p.free
	if m == nil {
		return &Message{}
	}
	p.free = m.next
	*m = Message{}
	return m
}

// Put recycles a message. Putting the same message twice panics: it
// always indicates an ownership bug.
func (p *Pool) Put(m *Message) {
	if m.pooled {
		panic("msg: message freed twice")
	}
	if PoolPoison {
		*m = Message{
			Kind: Kind(0xEE), Cat: Category(0xEE),
			Addr: ^Addr(0), Tokens: -1 << 20, Acks: -1 << 20,
			Data: ^uint64(0), Seq: ^uint64(0),
		}
	}
	m.pooled = true
	m.retained = false
	m.next = p.free
	p.free = m
}

// Clone returns a pooled copy of m with fresh pool bookkeeping.
func (p *Pool) Clone(m *Message) *Message {
	c := p.Get()
	*c = *m
	c.next, c.retained, c.pooled = nil, false, false
	return c
}

// Release is what the network calls after a handler returns: recycle the
// message unless the handler retained it, in which case ownership has
// transferred to the retainer.
func (p *Pool) Release(m *Message) {
	if m.retained {
		m.retained = false
		return
	}
	p.Put(m)
}

// Bytes reports the wire size of the message.
func (m *Message) Bytes() int {
	if m.HasData {
		return DataBytes
	}
	return ControlBytes
}

func (m *Message) String() string {
	s := fmt.Sprintf("%v %v->%v blk=%d", m.Kind, m.Src, m.Dst, BlockOf(m.Addr))
	if m.Tokens > 0 {
		s += fmt.Sprintf(" tok=%d", m.Tokens)
		if m.Owner {
			s += "+O"
		}
	}
	if m.HasData {
		s += fmt.Sprintf(" data=v%d", m.Data)
	}
	return s
}
