// Package msg defines the coherence-message vocabulary shared by every
// protocol in the simulator: node/unit addressing, block naming, message
// kinds, wire sizes, and traffic categories.
//
// The paper's protocols exchange 8-byte control messages and 72-byte data
// messages (8-byte header + 64-byte cache block). Every protocol package
// builds its messages from the kinds declared here so that the traffic
// accounting in package stats can classify them uniformly.
package msg

import "fmt"

// NodeID identifies one highly-integrated node (processor + caches +
// memory controller + coherence controllers), 0..N-1.
type NodeID int

// Unit selects a controller within a node.
type Unit uint8

const (
	// UnitCache is the node's cache coherence controller.
	UnitCache Unit = iota
	// UnitMem is the node's memory controller (home for an address slice).
	UnitMem
	// UnitArbiter is the persistent-request arbiter co-located with the
	// home memory controller (Token Coherence only).
	UnitArbiter
	// UnitProc is the processor-side port, used only for completion
	// notifications in tests.
	UnitProc
)

func (u Unit) String() string {
	switch u {
	case UnitCache:
		return "cache"
	case UnitMem:
		return "mem"
	case UnitArbiter:
		return "arbiter"
	case UnitProc:
		return "proc"
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Port addresses one controller in the system.
type Port struct {
	Node NodeID
	Unit Unit
}

func (p Port) String() string { return fmt.Sprintf("%v@%d", p.Unit, p.Node) }

// Addr is a physical byte address.
type Addr uint64

// Block is a cache-block number (Addr >> BlockShift).
type Block uint64

// Cache-block geometry (Table 1: 64-byte blocks).
const (
	BlockShift = 6
	BlockSize  = 1 << BlockShift
)

// BlockOf returns the block containing a.
func BlockOf(a Addr) Block { return Block(a >> BlockShift) }

// Base returns the first byte address of the block.
func (b Block) Base() Addr { return Addr(b) << BlockShift }

// HomeOf returns the node whose memory controller is home for block b in
// an n-node system (block-interleaved, as in the Alpha 21364 and Origin).
func HomeOf(b Block, n int) NodeID { return NodeID(uint64(b) % uint64(n)) }

// Wire sizes (paper §5.1): "All request, acknowledgment, invalidation,
// and dataless token messages are 8 bytes in size ...; data messages
// include this 8 byte header and 64 bytes of data."
const (
	ControlBytes = 8
	DataBytes    = ControlBytes + BlockSize // 72
)

// Kind enumerates every message type used by the four protocols. Keeping
// them in one enum lets the network and statistics layers stay
// protocol-agnostic.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Transient/ordinary requests (all protocols).
	KindGetS // request read permission
	KindGetM // request write permission

	// Responses and token carriers.
	KindData       // data (+ tokens for Token Coherence)
	KindDataShared // data granting read-only (directory/hammer/snooping)
	KindTokens     // dataless token transfer (Token Coherence)
	KindAck        // invalidation acknowledgment / probe ack
	KindInv        // invalidation (directory)
	KindFwdGetS    // forwarded GetS (directory)
	KindFwdGetM    // forwarded GetM (directory)

	// Writebacks.
	KindPutM      // writeback of owned/modified data
	KindPutS      // clean eviction notice (directory variants; unused by some)
	KindWBAck     // writeback acknowledgment
	KindWBStale   // writeback arrived stale; drop without writing
	KindUnblock   // transaction-complete notification to home
	KindMemData   // data from memory (hammer: parallel DRAM fetch)
	KindProbe     // broadcast probe (hammer)
	KindProbeAck  // probe miss acknowledgment (hammer)
	KindProbeData // probe hit: data to requester (hammer)

	// Persistent requests (Token Coherence correctness substrate).
	KindPersistentReq           // starving processor -> home arbiter
	KindPersistentActivate      // arbiter -> all nodes
	KindPersistentActivateAck   // node -> arbiter
	KindPersistentDeactivate    // arbiter -> all nodes
	KindPersistentDeactivateAck // node -> arbiter
)

func (k Kind) String() string {
	switch k {
	case KindGetS:
		return "GetS"
	case KindGetM:
		return "GetM"
	case KindData:
		return "Data"
	case KindDataShared:
		return "DataShared"
	case KindTokens:
		return "Tokens"
	case KindAck:
		return "Ack"
	case KindInv:
		return "Inv"
	case KindFwdGetS:
		return "FwdGetS"
	case KindFwdGetM:
		return "FwdGetM"
	case KindPutM:
		return "PutM"
	case KindPutS:
		return "PutS"
	case KindWBAck:
		return "WBAck"
	case KindWBStale:
		return "WBStale"
	case KindUnblock:
		return "Unblock"
	case KindMemData:
		return "MemData"
	case KindProbe:
		return "Probe"
	case KindProbeAck:
		return "ProbeAck"
	case KindProbeData:
		return "ProbeData"
	case KindPersistentReq:
		return "PersistentReq"
	case KindPersistentActivate:
		return "PersistentActivate"
	case KindPersistentActivateAck:
		return "PersistentActivateAck"
	case KindPersistentDeactivate:
		return "PersistentDeactivate"
	case KindPersistentDeactivateAck:
		return "PersistentDeactivateAck"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Category classifies messages for the traffic breakdowns in Figures 4b
// and 5b.
type Category uint8

const (
	// CatRequest covers first-issue transient requests, directory
	// requests, forwarded requests and invalidations.
	CatRequest Category = iota
	// CatReissue covers reissued transient requests and all persistent
	// request machinery (Token Coherence only).
	CatReissue
	// CatControl covers other non-data messages: acknowledgments,
	// dataless token transfers, unblocks, writeback acks.
	CatControl
	// CatData covers data responses and writebacks.
	CatData
	numCategories = 4
)

// NumCategories is the number of traffic categories.
const NumCategories = int(numCategories)

func (c Category) String() string {
	switch c {
	case CatRequest:
		return "requests"
	case CatReissue:
		return "reissues+persistent"
	case CatControl:
		return "other-control"
	case CatData:
		return "data"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Message is one coherence message. Messages are values owned by the
// network once sent; receivers get their own copy, so handlers may retain
// or mutate them freely.
type Message struct {
	Kind Kind
	Cat  Category
	Src  Port
	Dst  Port
	Addr Addr

	// Requester is the port that should receive the eventual response
	// (used by forwarded requests, probes and persistent activations).
	Requester Port

	// Tokens and Owner implement the token-counting substrate: Tokens is
	// the number of tokens carried (including the owner token when Owner
	// is set). Non-token protocols leave these zero.
	Tokens int
	Owner  bool

	// HasData marks a 72-byte message carrying the cache block.
	HasData bool
	// Data is the block payload, modelled as a write-version number so
	// the safety oracle can detect stale reads.
	Data uint64

	// Acks is the number of acknowledgments the requester must collect
	// (directory protocol), or a generic small counter.
	Acks int

	// Dirty marks data that has been modified relative to memory, so
	// migratory-sharing grants can be detected by the receiver.
	Dirty bool

	// Seq carries a protocol-defined sequence number (persistent request
	// identifiers, snooping order tags in tests).
	Seq uint64
}

// Bytes reports the wire size of the message.
func (m *Message) Bytes() int {
	if m.HasData {
		return DataBytes
	}
	return ControlBytes
}

// Clone returns a copy of m, used by the network when multicasting.
func (m *Message) Clone() *Message {
	c := *m
	return &c
}

func (m *Message) String() string {
	s := fmt.Sprintf("%v %v->%v blk=%d", m.Kind, m.Src, m.Dst, BlockOf(m.Addr))
	if m.Tokens > 0 {
		s += fmt.Sprintf(" tok=%d", m.Tokens)
		if m.Owner {
			s += "+O"
		}
	}
	if m.HasData {
		s += fmt.Sprintf(" data=v%d", m.Data)
	}
	return s
}
