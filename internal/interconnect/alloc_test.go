package interconnect

import (
	"testing"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/trace"
)

// forwarder circulates a single token message around the ring (one
// reply per delivery, so the population stays constant) and, every 16th
// hop through node 0, fires a broadcast whose copies are absorbed on
// delivery. That covers the unicast hop chain, the local path, and the
// multicast tree walk without amplifying traffic.
type forwarder struct {
	n     *Network
	id    msg.NodeID
	nodes int
	hops  int
	dsts  []msg.Port
	total *int
}

func (f *forwarder) Handle(m *msg.Message) {
	*f.total++
	if m.Kind == msg.KindProbe {
		return // broadcast copy: absorbed, recycled by the network
	}
	out := f.n.NewMessage()
	*out = msg.Message{
		Kind: msg.KindGetS, Cat: msg.CatRequest,
		Src: msg.Port{Node: f.id, Unit: msg.UnitCache},
		Dst: msg.Port{Node: (f.id + 3) % msg.NodeID(f.nodes), Unit: msg.UnitCache},
	}
	f.n.Send(out)
	if f.id == 0 {
		f.hops++
		if f.hops%16 == 0 {
			bc := f.n.NewMessage()
			*bc = msg.Message{
				Kind: msg.KindProbe, Cat: msg.CatRequest,
				Src: msg.Port{Node: f.id, Unit: msg.UnitCache},
			}
			f.n.Multicast(bc, f.dsts)
		}
	}
}

// TestNetworkSteadyStateAllocs is the interconnect's hard allocation
// gate: with the message pool, netOp records, multicast slabs and path
// cache warm, sustained traffic (unicast, local, and broadcast) must
// allocate nothing per message. The gate covers the paper's 16-node
// fabrics and both 256-node configurations — the un-capped four-level
// ordered tree and the 16x16 torus — so the O(n^2) precomputed path
// cache and the pooled multicast slabs stay allocation-free at the
// largest size the experiments sweep.
func TestNetworkSteadyStateAllocs(t *testing.T) {
	fabrics := []struct {
		name string
		topo topology.Topology
	}{
		{"torus-16", topology.NewTorus(4, 4)},
		{"tree-16", topology.NewTree(16)},
		{"torus-256", topology.NewTorusFor(256)},
		{"tree-256", topology.NewTree(256)},
	}
	for _, f := range fabrics {
		f := f
		t.Run(f.name, func(t *testing.T) { testSteadyStateAllocs(t, f.topo) })
	}
}

func testSteadyStateAllocs(t *testing.T, topo topology.Topology) {
	k := sim.NewKernel()
	var tr stats.Traffic
	n := New(k, topo, DefaultConfig(), &tr)
	nodes := topo.Nodes()
	var dsts []msg.Port
	for i := 0; i < nodes; i++ {
		dsts = append(dsts, msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache})
	}
	total := 0
	for i := 0; i < nodes; i++ {
		n.Register(msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache},
			&forwarder{n: n, id: msg.NodeID(i), nodes: nodes, dsts: dsts, total: &total})
	}
	// Seed one token per node and warm all pools.
	for i := 0; i < nodes; i++ {
		m := n.NewMessage()
		*m = msg.Message{
			Kind: msg.KindGetS, Cat: msg.CatRequest,
			Src: msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache},
			Dst: msg.Port{Node: msg.NodeID((i + 1) % nodes), Unit: msg.UnitCache},
		}
		n.Send(m)
	}
	k.RunUntil(k.Now() + 200*sim.Microsecond)
	if total == 0 {
		t.Fatal("no messages delivered during warmup")
	}
	before := total
	allocs := testing.AllocsPerRun(100, func() {
		k.RunUntil(k.Now() + 5*sim.Microsecond)
	})
	if total == before {
		t.Fatal("no messages delivered during measurement")
	}
	if allocs > 0 {
		t.Errorf("steady-state traffic allocates %.1f objects per 5us slice, want 0", allocs)
	}

	// A counting observer must not break the zero-alloc guarantee either:
	// the per-hop event is a pooled-free callback into probe code.
	var hops uint64
	n.SetObserver(&stats.Observer{
		NetworkHop: func(link int, cat msg.Category, bytes int, at sim.Time) { hops++ },
	})
	allocs = testing.AllocsPerRun(100, func() {
		k.RunUntil(k.Now() + 5*sim.Microsecond)
	})
	n.SetObserver(nil)
	if hops == 0 {
		t.Fatal("observer saw no hops")
	}
	if allocs > 0 {
		t.Errorf("traffic with a counting observer allocates %.1f objects per 5us slice, want 0", allocs)
	}

	// The always-armed flight recorder must be just as free: hop recording
	// into the pooled ring is the worst case (hops vastly outnumber
	// protocol events), so arm it with Hops on and re-measure.
	rec := trace.NewFlightRecorder(trace.RecorderConfig{Hops: true})
	n.SetObserver(rec.Observer())
	allocs = testing.AllocsPerRun(100, func() {
		k.RunUntil(k.Now() + 5*sim.Microsecond)
	})
	n.SetObserver(nil)
	if rec.Total() == 0 {
		t.Fatal("recorder saw no hops")
	}
	if allocs > 0 {
		t.Errorf("traffic with an armed flight recorder allocates %.1f objects per 5us slice, want 0", allocs)
	}
}
