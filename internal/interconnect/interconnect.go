// Package interconnect models message timing on a topology: per-link
// cut-through serialization, work-conserving FIFO contention, and
// bandwidth-efficient tree multicast.
//
// Timing model. A message travels hop by hop: when its head reaches a
// link it departs at d = max(arrival, link free time), the link is then
// busy for the serialization time (bytes/bandwidth), and the head
// reaches the next vertex after the link latency. Delivery happens when
// the tail arrives — one serialization time after the head (cut-through
// charges serialization once on the critical path, while every crossed
// link still pays the bandwidth cost). Because links are reserved when
// the message actually arrives at them, the fabric is work-conserving.
//
// A multicast follows the deterministic-routing tree: the message is
// replicated at each branching vertex in a single simulation event, and
// each tree edge is charged exactly once, matching the paper's
// "bandwidth-efficient tree-based multicast routing". Atomic per-vertex
// replication also gives the indirect tree topology its total order of
// broadcasts: every broadcast claims the root's output links in one
// event, so all nodes observe all broadcasts in the same order — the
// property traditional snooping requires.
package interconnect

import (
	"fmt"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
)

// Config sets the link parameters (Table 1: 3.2 GB/s links, 15 ns
// latency including wire, synchronization and routing).
type Config struct {
	// LinkBandwidth in bytes per second; 0 means unlimited (no
	// serialization delay and no contention).
	LinkBandwidth float64
	// LinkLatency is the per-hop latency.
	LinkLatency sim.Time
	// LocalLatency is the delivery latency between units on the same
	// node (no interconnect crossing).
	LocalLatency sim.Time
}

// DefaultConfig returns the paper's interconnect parameters.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth: 3.2e9,
		LinkLatency:   15 * sim.Nanosecond,
		LocalLatency:  1 * sim.Nanosecond,
	}
}

// Unlimited returns a copy of c with infinite bandwidth, used for the
// paper's unlimited-bandwidth runtime bars.
func (c Config) Unlimited() Config {
	c.LinkBandwidth = 0
	return c
}

// Handler consumes delivered messages.
type Handler interface {
	Handle(m *msg.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *msg.Message)

// Handle calls f(m).
func (f HandlerFunc) Handle(m *msg.Message) { f(m) }

// Network delivers messages between registered ports over a topology.
type Network struct {
	kernel    *sim.Kernel
	topo      topology.Topology
	cfg       Config
	traffic   *stats.Traffic
	handlers  map[msg.Port]Handler
	nextFree  []sim.Time
	linkBytes []uint64
	sent      uint64
}

// New builds a network. traffic may be nil to skip accounting.
func New(k *sim.Kernel, topo topology.Topology, cfg Config, traffic *stats.Traffic) *Network {
	if cfg.LinkLatency <= 0 {
		panic("interconnect: LinkLatency must be positive")
	}
	return &Network{
		kernel:    k,
		topo:      topo,
		cfg:       cfg,
		traffic:   traffic,
		handlers:  make(map[msg.Port]Handler),
		nextFree:  make([]sim.Time, topo.NumLinks()),
		linkBytes: make([]uint64, topo.NumLinks()),
	}
}

// Topology exposes the underlying fabric.
func (n *Network) Topology() topology.Topology { return n.topo }

// Register attaches a handler to a port. Registering a port twice
// panics: it always indicates mis-wiring during system construction.
func (n *Network) Register(p msg.Port, h Handler) {
	if h == nil {
		panic("interconnect: Register with nil handler")
	}
	if _, dup := n.handlers[p]; dup {
		panic(fmt.Sprintf("interconnect: port %v registered twice", p))
	}
	n.handlers[p] = h
}

// Sent reports the number of message deliveries scheduled.
func (n *Network) Sent() uint64 { return n.sent }

// serialization returns the time the message occupies one link.
func (n *Network) serialization(bytes int) sim.Time {
	if n.cfg.LinkBandwidth <= 0 {
		return 0
	}
	ps := float64(bytes) / n.cfg.LinkBandwidth * 1e12
	return sim.Time(ps + 0.5)
}

// deliver schedules the handler for m at time at.
func (n *Network) deliver(m *msg.Message, at sim.Time) {
	h, ok := n.handlers[m.Dst]
	if !ok {
		panic(fmt.Sprintf("interconnect: no handler for %v (message %v)", m.Dst, m))
	}
	n.sent++
	n.kernel.Schedule(at, func() { h.Handle(m) })
}

// mcNode is one edge of a multicast (or unicast) routing tree.
type mcNode struct {
	link     topology.LinkID
	children []*mcNode
	dests    []msg.Port // destinations whose path ends on this edge
}

// buildTree folds the per-destination paths into their prefix tree.
// Deterministic routing guarantees prefix closure (verified by the
// topology tests), so paths sharing a link share the entire prefix.
func buildTree(paths [][]topology.LinkID, dsts []msg.Port) []*mcNode {
	var roots []*mcNode
	findOrAdd := func(nodes *[]*mcNode, link topology.LinkID) *mcNode {
		for _, nd := range *nodes {
			if nd.link == link {
				return nd
			}
		}
		nd := &mcNode{link: link}
		*nodes = append(*nodes, nd)
		return nd
	}
	for i, path := range paths {
		level := &roots
		var nd *mcNode
		for _, l := range path {
			nd = findOrAdd(level, l)
			level = &nd.children
		}
		nd.dests = append(nd.dests, dsts[i])
	}
	return roots
}

// walk reserves the given edges at time t, schedules deliveries for
// destinations reached, and chains child edges at the head's arrival.
// Each edge of the tree is reserved in exactly one event, in arrival
// order, which keeps links work-conserving FIFOs.
func (n *Network) walk(m *msg.Message, nodes []*mcNode, t sim.Time, ser sim.Time) {
	for _, nd := range nodes {
		d := t
		n.linkBytes[nd.link] += uint64(m.Bytes())
		if n.cfg.LinkBandwidth > 0 {
			if free := n.nextFree[nd.link]; free > d {
				d = free
			}
			n.nextFree[nd.link] = d + ser
		}
		arrival := d + n.cfg.LinkLatency
		for _, dst := range nd.dests {
			mc := m.Clone()
			mc.Dst = dst
			n.deliver(mc, arrival+ser) // tail arrives one serialization later
		}
		if len(nd.children) > 0 {
			nd := nd
			n.kernel.Schedule(arrival, func() { n.walk(m, nd.children, arrival, ser) })
		}
	}
}

// countEdges reports the number of edges in a routing tree.
func countEdges(nodes []*mcNode) int {
	total := 0
	for _, nd := range nodes {
		total += 1 + countEdges(nd.children)
	}
	return total
}

// Send delivers m to m.Dst. Same-node delivery bypasses the fabric and
// costs no interconnect bandwidth.
func (n *Network) Send(m *msg.Message) {
	n.Multicast(m, []msg.Port{m.Dst})
}

// Multicast delivers a copy of m to every port in dsts. Bandwidth is
// charged once per multicast-tree edge; destinations on the source node
// receive a local delivery. The message's Dst field is set per copy.
func (n *Network) Multicast(m *msg.Message, dsts []msg.Port) {
	now := n.kernel.Now()
	var paths [][]topology.LinkID
	var remote []msg.Port
	for _, dst := range dsts {
		path := n.topo.Path(m.Src.Node, dst.Node)
		if len(path) == 0 {
			mc := m.Clone()
			mc.Dst = dst
			n.deliver(mc, now+n.cfg.LocalLatency)
			continue
		}
		paths = append(paths, path)
		remote = append(remote, dst)
	}
	if len(remote) == 0 {
		return
	}
	roots := buildTree(paths, remote)
	if n.traffic != nil {
		n.traffic.Record(m, countEdges(roots))
	}
	n.walk(m, roots, now, n.serialization(m.Bytes()))
}

// LinkBytes reports the bytes that crossed each link, indexed by
// topology.LinkID. Useful for hotspot analysis: on the indirect tree the
// root links carry every broadcast, which is the central bottleneck the
// paper's evaluation exposes.
func (n *Network) LinkBytes() []uint64 {
	out := make([]uint64, len(n.linkBytes))
	copy(out, n.linkBytes)
	return out
}

// HottestLink returns the link that carried the most bytes.
func (n *Network) HottestLink() (topology.LinkID, uint64) {
	var best topology.LinkID
	var bytes uint64
	for l, b := range n.linkBytes {
		if b > bytes {
			best, bytes = topology.LinkID(l), b
		}
	}
	return best, bytes
}

// Utilization reports a link's average utilization over elapsed time
// (0..1; 0 when bandwidth is unlimited or elapsed is zero).
func (n *Network) Utilization(l topology.LinkID, elapsed sim.Time) float64 {
	if n.cfg.LinkBandwidth <= 0 || elapsed <= 0 {
		return 0
	}
	seconds := float64(elapsed) / 1e12
	return float64(n.linkBytes[l]) / (n.cfg.LinkBandwidth * seconds)
}

// UnicastLatency estimates the uncontended delivery time from src to dst
// for a message of the given size; used by controllers to size timeout
// intervals and by tests.
func (n *Network) UnicastLatency(src, dst msg.NodeID, bytes int) sim.Time {
	path := n.topo.Path(src, dst)
	if len(path) == 0 {
		return n.cfg.LocalLatency
	}
	return sim.Time(len(path))*n.cfg.LinkLatency + n.serialization(bytes)
}
