// Package interconnect models message timing on a topology: per-link
// cut-through serialization, work-conserving FIFO contention, and
// bandwidth-efficient tree multicast.
//
// Timing model. A message travels hop by hop: when its head reaches a
// link it departs at d = max(arrival, link free time), the link is then
// busy for the serialization time (bytes/bandwidth), and the head
// reaches the next vertex after the link latency. Delivery happens when
// the tail arrives — one serialization time after the head (cut-through
// charges serialization once on the critical path, while every crossed
// link still pays the bandwidth cost). Because links are reserved when
// the message actually arrives at them, the fabric is work-conserving.
//
// A multicast follows the deterministic-routing tree: the message is
// replicated at each branching vertex in a single simulation event, and
// each tree edge is charged exactly once, matching the paper's
// "bandwidth-efficient tree-based multicast routing". Atomic per-vertex
// replication also gives the indirect tree topology its total order of
// broadcasts: every broadcast claims the root's output links in one
// event, so all nodes observe all broadcasts in the same order — the
// property traditional snooping requires.
//
// Allocation model. The network is on the simulator's innermost loop,
// so everything it schedules per message is recycled: message copies
// come from a msg.Pool (returned when the receiving handler is done,
// see Handler), and the callbacks for deliveries, unicast hops,
// multicast tree walks and delayed sends are pooled netOp records whose
// closure is bound once. Steady-state traffic therefore allocates
// nothing.
package interconnect

import (
	"fmt"
	"sync/atomic"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
)

// Config sets the link parameters (Table 1: 3.2 GB/s links, 15 ns
// latency including wire, synchronization and routing).
type Config struct {
	// LinkBandwidth in bytes per second; 0 means unlimited (no
	// serialization delay and no contention).
	LinkBandwidth float64
	// LinkLatency is the per-hop latency.
	LinkLatency sim.Time
	// LocalLatency is the delivery latency between units on the same
	// node (no interconnect crossing).
	LocalLatency sim.Time
}

// DefaultConfig returns the paper's interconnect parameters.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth: 3.2e9,
		LinkLatency:   15 * sim.Nanosecond,
		LocalLatency:  1 * sim.Nanosecond,
	}
}

// Unlimited returns a copy of c with infinite bandwidth, used for the
// paper's unlimited-bandwidth runtime bars.
func (c Config) Unlimited() Config {
	c.LinkBandwidth = 0
	return c
}

// Handler consumes delivered messages. The delivered message is owned by
// the network: it may be read and mutated freely during Handle, but it is
// recycled when Handle returns. A handler that keeps the message past its
// return must call Message.Retain and later hand it to Network.FreeMessage.
type Handler interface {
	Handle(m *msg.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *msg.Message)

// Handle calls f(m).
func (f HandlerFunc) Handle(m *msg.Message) { f(m) }

// shared is the fabric state common to every island view of one
// network: the immutable routing/handler tables, plus the per-link
// transmission state. The link arrays are written without locks, which
// is safe because each link is touched only by the island owning its
// tail actor (links are reserved by the event executing at their tail).
type shared struct {
	handlers  map[msg.Port]Handler
	nextFree  []sim.Time
	linkBytes []uint64
	paths     [][]topology.LinkID // deterministic routes, per (src, dst)
	linkTail  []int32             // actor transmitting on each link
	linkHead  []int32             // actor receiving from each link
	views     []*Network          // per-island views, indexed by island
	islandOf  []int32             // actor -> island; nil = single view
}

// Network delivers messages between registered ports over a topology.
// A Network is one island's view of the fabric: it owns the message
// pool, callback free lists, traffic shard and observer of that island,
// while routing tables and link state live in the shared fabric. A
// network built by New is a complete single-view fabric; Split adds
// views for parallel island execution.
type Network struct {
	kernel  *sim.Kernel
	topo    topology.Topology
	cfg     Config
	traffic *stats.Traffic
	sh      *shared
	sent    uint64

	nodes   int // topo.Nodes(), for path-cache indexing
	pool    msg.Pool
	freeOps *netOp
	freeMcs *mcast

	// obs receives per-link-traversal events; nil (the default) keeps
	// the message path free of observer work.
	obs *stats.Observer
}

// New builds a network. traffic may be nil to skip accounting.
func New(k *sim.Kernel, topo topology.Topology, cfg Config, traffic *stats.Traffic) *Network {
	if cfg.LinkLatency <= 0 {
		panic("interconnect: LinkLatency must be positive")
	}
	nn := topo.Nodes()
	nl := topo.NumLinks()
	sh := &shared{
		handlers:  make(map[msg.Port]Handler),
		nextFree:  make([]sim.Time, nl),
		linkBytes: make([]uint64, nl),
		paths:     make([][]topology.LinkID, nn*nn),
		linkTail:  make([]int32, nl),
		linkHead:  make([]int32, nl),
	}
	for s := 0; s < nn; s++ {
		for d := 0; d < nn; d++ {
			sh.paths[s*nn+d] = topo.Path(msg.NodeID(s), msg.NodeID(d))
		}
	}
	// Link ownership doubles as the execution-actor context for event
	// stamping, so it is wired whenever the topology describes it —
	// even single-island runs use it, keeping event stamps identical
	// at any island count.
	if pt, ok := topo.(topology.Partitioned); ok {
		for l := 0; l < nl; l++ {
			sh.linkTail[l] = int32(pt.LinkTail(topology.LinkID(l)))
			sh.linkHead[l] = int32(pt.LinkHead(topology.LinkID(l)))
		}
	}
	n := &Network{
		kernel:  k,
		topo:    topo,
		cfg:     cfg,
		traffic: traffic,
		sh:      sh,
		nodes:   nn,
	}
	sh.views = []*Network{n}
	return n
}

// Split partitions the fabric into island views. View 0 is the
// receiver (which must have been built on kernels[0]); each additional
// view shares the routing tables and link state but owns its island's
// kernel, message pool, callback free lists and traffic shard.
// islandOf maps every actor (see topology.Partitioned) to its island.
func (n *Network) Split(islandOf []int32, kernels []*sim.Kernel, traffics []*stats.Traffic) []*Network {
	sh := n.sh
	sh.islandOf = islandOf
	sh.views = make([]*Network, len(kernels))
	sh.views[0] = n
	n.traffic = traffics[0]
	for i := 1; i < len(kernels); i++ {
		sh.views[i] = &Network{
			kernel:  kernels[i],
			topo:    n.topo,
			cfg:     n.cfg,
			traffic: traffics[i],
			sh:      sh,
			nodes:   n.nodes,
		}
	}
	return sh.views
}

// viewFor returns the view of the island owning actor a.
func (n *Network) viewFor(a int32) *Network {
	if n.sh.islandOf == nil {
		return n
	}
	return n.sh.views[n.sh.islandOf[a]]
}

// Topology exposes the underlying fabric.
func (n *Network) Topology() topology.Topology { return n.topo }

// SetObserver attaches (or clears) the observer that receives NetworkHop
// events. The machine layer calls this when probes attach; with no
// observer the hot path pays only a nil check per link traversal.
func (n *Network) SetObserver(o *stats.Observer) { n.obs = o }

// PublishMetrics registers the network's traffic accounting in ms: total
// and per-category interconnect bytes and link traversals, read from the
// same Traffic the run resets at the warmup boundary. It is a no-op for
// networks built without traffic accounting.
func (n *Network) PublishMetrics(ms *stats.MetricSet) {
	n.PublishMetricsFor(ms, n.traffic)
}

// PublishMetricsFor registers the traffic metrics reading from tr
// rather than this view's shard. The machine passes the merged run's
// Traffic: island shards are folded into it after the run, before
// metrics are snapshotted.
func (n *Network) PublishMetricsFor(ms *stats.MetricSet, tr *stats.Traffic) {
	if tr == nil {
		return
	}
	ms.Derived(stats.Desc{
		Name: "bytes_total", Unit: "bytes", Fmt: "%.0f",
		Help: "interconnect bytes, weighted by links traversed",
	}, func() float64 { return float64(tr.TotalBytes()) })
	for c := 0; c < msg.NumCategories; c++ {
		cat := msg.Category(c)
		ms.Derived(stats.Desc{
			Name: "bytes_" + cat.Slug(), Unit: "bytes", Fmt: "%.0f",
			Help: "interconnect bytes in category " + cat.String(),
		}, func() float64 { return float64(tr.Bytes(cat)) })
	}
	for c := 0; c < msg.NumCategories; c++ {
		cat := msg.Category(c)
		ms.Derived(stats.Desc{
			Name: "msgs_" + cat.Slug(), Unit: "count", Fmt: "%.0f",
			Help: "link traversals by messages in category " + cat.String(),
		}, func() float64 { return float64(tr.Messages(cat)) })
	}
}

// Register attaches a handler to a port. Registering a port twice
// panics: it always indicates mis-wiring during system construction.
func (n *Network) Register(p msg.Port, h Handler) {
	if h == nil {
		panic("interconnect: Register with nil handler")
	}
	if _, dup := n.sh.handlers[p]; dup {
		panic(fmt.Sprintf("interconnect: port %v registered twice", p))
	}
	n.sh.handlers[p] = h
}

// Sent reports the number of message deliveries handled on this view's
// island.
func (n *Network) Sent() uint64 { return n.sent }

// NewMessage returns a zeroed message from the network's pool. Senders
// fill it and pass it to Send/Multicast, which take ownership.
func (n *Network) NewMessage() *msg.Message { return n.pool.Get() }

// CloneMessage returns a pooled copy of m (pool bookkeeping reset).
func (n *Network) CloneMessage(m *msg.Message) *msg.Message {
	return n.pool.Clone(m)
}

// FreeMessage recycles a message previously retained by a handler (or
// allocated with NewMessage and never sent).
func (n *Network) FreeMessage(m *msg.Message) { n.pool.Put(m) }

// path returns the precomputed deterministic route from src to dst.
func (n *Network) path(src, dst msg.NodeID) []topology.LinkID {
	return n.sh.paths[int(src)*n.nodes+int(dst)]
}

// serialization returns the time the message occupies one link.
func (n *Network) serialization(bytes int) sim.Time {
	if n.cfg.LinkBandwidth <= 0 {
		return 0
	}
	ps := float64(bytes) / n.cfg.LinkBandwidth * 1e12
	return sim.Time(ps + 0.5)
}

// netOp is a pooled callback record for everything the network schedules
// on the kernel. Its fire closure is bound once when the record is first
// allocated, so rescheduling recycled records is allocation-free.
type netOp struct {
	n     *Network
	kind  uint8
	m     *msg.Message
	h     Handler
	path  []topology.LinkID
	nodes []*mcNode
	mc    *mcast
	dsts  []msg.Port
	t     sim.Time
	ser   sim.Time
	fire  func()
	next  *netOp
}

const (
	opDeliver uint8 = iota
	opHop
	opWalk
	opSend
	opMulticast
)

func (n *Network) getOp() *netOp {
	op := n.freeOps
	if op == nil {
		op = &netOp{n: n}
		op.fire = op.run
	} else {
		n.freeOps = op.next
		op.n = n
	}
	return op
}

func (n *Network) putOp(op *netOp) {
	op.m, op.h, op.path, op.nodes, op.mc, op.dsts = nil, nil, nil, nil, nil, nil
	op.next = n.freeOps
	n.freeOps = op
}

// run dispatches a scheduled network operation. The record is recycled
// before the work runs so that nested scheduling can reuse it. Ops
// scheduled across islands carry the target island's view in op.n, so
// run executes entirely with island-local state (free lists, message
// pool, traffic shard, observer) of the island firing the event.
func (op *netOp) run() {
	n := op.n
	kind, m, h := op.kind, op.m, op.h
	path, nodes, mc, dsts := op.path, op.nodes, op.mc, op.dsts
	t, ser := op.t, op.ser
	n.putOp(op)
	switch kind {
	case opDeliver:
		n.sent++
		h.Handle(m)
		n.pool.Release(m)
	case opHop:
		n.hop(m, path, t, ser)
	case opWalk:
		n.walk(mc, nodes, t, ser)
	case opSend:
		n.Send(m)
	case opMulticast:
		n.Multicast(m, dsts)
	}
}

// deliver schedules the handler for m at time at. The message executes
// as (and on the island of) the destination node's actor. The network
// owns m until the handler returns (see Handler).
func (n *Network) deliver(m *msg.Message, at sim.Time) {
	h, ok := n.sh.handlers[m.Dst]
	if !ok {
		panic(fmt.Sprintf("interconnect: no handler for %v (message %v)", m.Dst, m))
	}
	dst := int32(m.Dst.Node)
	op := n.getOp()
	op.n = n.viewFor(dst)
	op.kind, op.m, op.h = opDeliver, m, h
	n.kernel.ScheduleExec(dst, at, op.fire)
}

// hop advances a unicast message across path[0] at time t and chains the
// remaining hops; the final hop schedules delivery of the tail.
func (n *Network) hop(m *msg.Message, path []topology.LinkID, t, ser sim.Time) {
	link := path[0]
	n.sh.linkBytes[link] += uint64(m.Bytes())
	d := t
	if n.cfg.LinkBandwidth > 0 {
		if free := n.sh.nextFree[link]; free > d {
			d = free
		}
		n.sh.nextFree[link] = d + ser
	}
	arrival := d + n.cfg.LinkLatency
	if n.obs != nil {
		n.obs.OnNetworkHop(int(link), m.Cat, m.Bytes(), d)
	}
	if len(path) == 1 {
		n.deliver(m, arrival+ser) // tail arrives one serialization later
		return
	}
	next := n.sh.linkTail[path[1]]
	op := n.getOp()
	op.n = n.viewFor(next)
	op.kind, op.m, op.path, op.t, op.ser = opHop, m, path[1:], arrival, ser
	n.kernel.ScheduleExec(next, arrival, op.fire)
}

// mcNode is one edge of a multicast routing tree. Nodes live in their
// mcast's slab and are recycled with it.
type mcNode struct {
	link     topology.LinkID
	children []*mcNode
	dests    []msg.Port // destinations whose path ends on this edge
}

// mcast tracks one in-flight multicast: the template message, the
// routing tree (slab-allocated), and the count of tree edges not yet
// walked. When the last edge is walked every destination has its own
// copy, so the template and the tree are recycled. The edge count is
// decremented atomically because subtrees of one multicast may be
// walked concurrently on different islands; all other fields are
// written before the first walk and read-only afterwards.
type mcast struct {
	m     *msg.Message
	edges int32
	slab  []mcNode
	roots []*mcNode
	paths [][]topology.LinkID
	dsts  []msg.Port
	next  *mcast
}

func (n *Network) getMcast() *mcast {
	mc := n.freeMcs
	if mc == nil {
		mc = &mcast{}
	} else {
		n.freeMcs = mc.next
	}
	mc.paths = mc.paths[:0]
	mc.dsts = mc.dsts[:0]
	mc.roots = mc.roots[:0]
	return mc
}

func (n *Network) putMcast(mc *mcast) {
	mc.m = nil
	mc.slab = mc.slab[:0]
	mc.next = n.freeMcs
	n.freeMcs = mc
}

// node takes the next tree node from the slab, keeping the capacity of
// its child/destination slices from earlier multicasts. The slab is
// pre-sized by Multicast, so taking never reallocates (which would
// invalidate earlier *mcNode pointers).
func (mc *mcast) node(l topology.LinkID) *mcNode {
	i := len(mc.slab)
	mc.slab = mc.slab[:i+1]
	nd := &mc.slab[i]
	nd.link = l
	nd.children = nd.children[:0]
	nd.dests = nd.dests[:0]
	return nd
}

// build folds the per-destination paths into their prefix tree.
// Deterministic routing guarantees prefix closure (verified by the
// topology tests), so paths sharing a link share the entire prefix.
func (mc *mcast) build() {
	for i, path := range mc.paths {
		level := &mc.roots
		var nd *mcNode
		for _, l := range path {
			nd = mc.findOrAdd(level, l)
			level = &nd.children
		}
		nd.dests = append(nd.dests, mc.dsts[i])
	}
	mc.edges = int32(len(mc.slab))
}

func (mc *mcast) findOrAdd(nodes *[]*mcNode, link topology.LinkID) *mcNode {
	for _, nd := range *nodes {
		if nd.link == link {
			return nd
		}
	}
	nd := mc.node(link)
	*nodes = append(*nodes, nd)
	return nd
}

// walk reserves the given edges at time t, schedules deliveries for
// destinations reached, and chains child edges at the head's arrival.
// Each edge of the tree is reserved in exactly one event, in arrival
// order, which keeps links work-conserving FIFOs. Walking the last edge
// recycles the multicast.
func (n *Network) walk(mc *mcast, nodes []*mcNode, t sim.Time, ser sim.Time) {
	m := mc.m
	for _, nd := range nodes {
		d := t
		n.sh.linkBytes[nd.link] += uint64(m.Bytes())
		if n.cfg.LinkBandwidth > 0 {
			if free := n.sh.nextFree[nd.link]; free > d {
				d = free
			}
			n.sh.nextFree[nd.link] = d + ser
		}
		arrival := d + n.cfg.LinkLatency
		if n.obs != nil {
			n.obs.OnNetworkHop(int(nd.link), m.Cat, m.Bytes(), d)
		}
		for _, dst := range nd.dests {
			cp := n.CloneMessage(m)
			cp.Dst = dst
			n.deliver(cp, arrival+ser) // tail arrives one serialization later
		}
		if len(nd.children) > 0 {
			// Child edges all emanate from this link's head vertex.
			next := n.sh.linkHead[nd.link]
			op := n.getOp()
			op.n = n.viewFor(next)
			op.kind, op.mc, op.nodes, op.t, op.ser = opWalk, mc, nd.children, arrival, ser
			n.kernel.ScheduleExec(next, arrival, op.fire)
		}
	}
	// The island walking the last edge recycles the multicast into its
	// own free lists; the template message and slab migrate with it.
	if atomic.AddInt32(&mc.edges, -int32(len(nodes))) == 0 {
		n.pool.Put(mc.m)
		n.putMcast(mc)
	}
}

// Send delivers m to m.Dst, taking ownership of m. Same-node delivery
// bypasses the fabric and costs no interconnect bandwidth.
func (n *Network) Send(m *msg.Message) {
	now := n.kernel.Now()
	path := n.path(m.Src.Node, m.Dst.Node)
	if len(path) == 0 {
		n.deliver(m, now+n.cfg.LocalLatency)
		return
	}
	if n.traffic != nil {
		n.traffic.Record(m, len(path))
	}
	n.hop(m, path, now, n.serialization(m.Bytes()))
}

// SendAfter schedules Send(m) after delay, without allocating a closure.
func (n *Network) SendAfter(m *msg.Message, delay sim.Time) {
	op := n.getOp()
	op.kind, op.m = opSend, m
	n.kernel.After(delay, op.fire)
}

// Multicast delivers a copy of m to every port in dsts, taking ownership
// of m. Bandwidth is charged once per multicast-tree edge; destinations
// on the source node receive a local delivery. The message's Dst field
// is set per copy.
func (n *Network) Multicast(m *msg.Message, dsts []msg.Port) {
	now := n.kernel.Now()
	mc := n.getMcast()
	need := 0
	for _, dst := range dsts {
		path := n.path(m.Src.Node, dst.Node)
		if len(path) == 0 {
			cp := n.CloneMessage(m)
			cp.Dst = dst
			n.deliver(cp, now+n.cfg.LocalLatency)
			continue
		}
		mc.paths = append(mc.paths, path)
		mc.dsts = append(mc.dsts, dst)
		need += len(path)
	}
	if len(mc.dsts) == 0 {
		n.pool.Put(m)
		n.putMcast(mc)
		return
	}
	if cap(mc.slab) < need {
		mc.slab = make([]mcNode, 0, need)
	}
	mc.m = m
	mc.build()
	if n.traffic != nil {
		n.traffic.Record(m, int(mc.edges))
	}
	n.walk(mc, mc.roots, now, n.serialization(m.Bytes()))
}

// MulticastAfter schedules Multicast(m, dsts) after delay, without
// allocating a closure. The caller must not mutate dsts afterwards.
func (n *Network) MulticastAfter(m *msg.Message, dsts []msg.Port, delay sim.Time) {
	op := n.getOp()
	op.kind, op.m, op.dsts = opMulticast, m, dsts
	n.kernel.After(delay, op.fire)
}

// LinkBytes reports the bytes that crossed each link, indexed by
// topology.LinkID. Useful for hotspot analysis: on the indirect tree the
// root links carry every broadcast, which is the central bottleneck the
// paper's evaluation exposes.
func (n *Network) LinkBytes() []uint64 {
	out := make([]uint64, len(n.sh.linkBytes))
	copy(out, n.sh.linkBytes)
	return out
}

// HottestLink returns the link that carried the most bytes.
func (n *Network) HottestLink() (topology.LinkID, uint64) {
	var best topology.LinkID
	var bytes uint64
	for l, b := range n.sh.linkBytes {
		if b > bytes {
			best, bytes = topology.LinkID(l), b
		}
	}
	return best, bytes
}

// Utilization reports a link's average utilization over elapsed time
// (0..1; 0 when bandwidth is unlimited or elapsed is zero).
func (n *Network) Utilization(l topology.LinkID, elapsed sim.Time) float64 {
	if n.cfg.LinkBandwidth <= 0 || elapsed <= 0 {
		return 0
	}
	seconds := float64(elapsed) / 1e12
	return float64(n.sh.linkBytes[l]) / (n.cfg.LinkBandwidth * seconds)
}

// UnicastLatency estimates the uncontended delivery time from src to dst
// for a message of the given size; used by controllers to size timeout
// intervals and by tests.
func (n *Network) UnicastLatency(src, dst msg.NodeID, bytes int) sim.Time {
	path := n.path(src, dst)
	if len(path) == 0 {
		return n.cfg.LocalLatency
	}
	return sim.Time(len(path))*n.cfg.LinkLatency + n.serialization(bytes)
}
