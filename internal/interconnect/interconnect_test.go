package interconnect

import (
	"testing"

	"tokencoherence/internal/msg"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
)

// collector records deliveries with their times.
type collector struct {
	k   *sim.Kernel
	got []*msg.Message
	at  []sim.Time
}

func (c *collector) Handle(m *msg.Message) {
	c.got = append(c.got, m.Retain())
	c.at = append(c.at, c.k.Now())
}

func newTorusNet(t *testing.T, cfg Config) (*sim.Kernel, *Network, *stats.Traffic) {
	t.Helper()
	k := sim.NewKernel()
	var tr stats.Traffic
	n := New(k, topology.NewTorus(4, 4), cfg, &tr)
	return k, n, &tr
}

func registerAll(k *sim.Kernel, n *Network, unit msg.Unit) map[msg.NodeID]*collector {
	cs := make(map[msg.NodeID]*collector)
	for i := 0; i < n.Topology().Nodes(); i++ {
		c := &collector{k: k}
		cs[msg.NodeID(i)] = c
		n.Register(msg.Port{Node: msg.NodeID(i), Unit: unit}, c)
	}
	return cs
}

func TestUnicastLatencyUncontended(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	m := &msg.Message{
		Kind: msg.KindGetS,
		Src:  msg.Port{Node: 0, Unit: msg.UnitCache},
		Dst:  msg.Port{Node: 1, Unit: msg.UnitCache},
	}
	n.Send(m)
	k.Run()
	// 1 hop x 15ns + 8B/3.2GB/s = 2.5ns -> 17.5ns
	want := 17500 * sim.Picosecond
	if len(cs[1].at) != 1 || cs[1].at[0] != want {
		t.Errorf("delivery at %v, want %v", cs[1].at, want)
	}
}

func TestDataMessageSerialization(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	m := &msg.Message{
		Kind: msg.KindData, HasData: true,
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
		Dst: msg.Port{Node: 2, Unit: msg.UnitCache},
	}
	n.Send(m)
	k.Run()
	// 2 hops x 15ns + 72B/3.2GB/s = 22.5ns -> 52.5ns
	want := 52500 * sim.Picosecond
	if cs[2].at[0] != want {
		t.Errorf("delivery at %v, want %v", cs[2].at[0], want)
	}
}

func TestUnlimitedBandwidthNoSerialization(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig().Unlimited())
	cs := registerAll(k, n, msg.UnitCache)
	m := &msg.Message{
		Kind: msg.KindData, HasData: true,
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
		Dst: msg.Port{Node: 2, Unit: msg.UnitCache},
	}
	n.Send(m)
	k.Run()
	want := 30 * sim.Nanosecond
	if cs[2].at[0] != want {
		t.Errorf("delivery at %v, want %v (pure link latency)", cs[2].at[0], want)
	}
}

func TestLocalDeliveryBypassesFabric(t *testing.T) {
	k, n, tr := newTorusNet(t, DefaultConfig())
	c := &collector{k: k}
	n.Register(msg.Port{Node: 3, Unit: msg.UnitMem}, c)
	m := &msg.Message{
		Kind: msg.KindGetS,
		Src:  msg.Port{Node: 3, Unit: msg.UnitCache},
		Dst:  msg.Port{Node: 3, Unit: msg.UnitMem},
	}
	n.Send(m)
	k.Run()
	if c.at[0] != 1*sim.Nanosecond {
		t.Errorf("local delivery at %v, want 1ns", c.at[0])
	}
	if tr.TotalBytes() != 0 {
		t.Errorf("local delivery recorded %d bytes, want 0", tr.TotalBytes())
	}
}

func TestContentionSerializesOnSharedLink(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	// Two data messages 0->1 sent at the same instant share link 0-east.
	for i := 0; i < 2; i++ {
		n.Send(&msg.Message{
			Kind: msg.KindData, HasData: true,
			Src: msg.Port{Node: 0, Unit: msg.UnitCache},
			Dst: msg.Port{Node: 1, Unit: msg.UnitCache},
		})
	}
	k.Run()
	if len(cs[1].at) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(cs[1].at))
	}
	first, second := cs[1].at[0], cs[1].at[1]
	// First: 15ns + 22.5ns = 37.5ns. Second queues 22.5ns behind.
	if first != 37500*sim.Picosecond {
		t.Errorf("first delivery at %v, want 37.5ns", first)
	}
	if second != 60000*sim.Picosecond {
		t.Errorf("second delivery at %v, want 60ns (22.5ns queuing)", second)
	}
}

func TestMulticastChargesTreeEdgesOnce(t *testing.T) {
	k, n, tr := newTorusNet(t, DefaultConfig())
	registerAll(k, n, msg.UnitCache)
	var dsts []msg.Port
	for i := 1; i < 16; i++ {
		dsts = append(dsts, msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache})
	}
	m := &msg.Message{
		Kind: msg.KindGetM, Cat: msg.CatRequest,
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
	}
	n.Multicast(m, dsts)
	k.Run()
	// The XY multicast tree from one source to all 15 others spans exactly
	// 15 links on a 4x4 torus (one per destination reached, tree property).
	wantLinks := uint64(15)
	if got := tr.Messages(msg.CatRequest); got != wantLinks {
		t.Errorf("multicast used %d link traversals, want %d", got, wantLinks)
	}
	if got := tr.Bytes(msg.CatRequest); got != wantLinks*8 {
		t.Errorf("multicast bytes = %d, want %d", got, wantLinks*8)
	}
}

func TestMulticastDeliversToEveryDestinationOnce(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	var dsts []msg.Port
	for i := 0; i < 16; i++ { // include self
		dsts = append(dsts, msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache})
	}
	n.Multicast(&msg.Message{
		Kind: msg.KindGetS,
		Src:  msg.Port{Node: 5, Unit: msg.UnitCache},
	}, dsts)
	k.Run()
	for i := 0; i < 16; i++ {
		if got := len(cs[msg.NodeID(i)].got); got != 1 {
			t.Errorf("node %d received %d copies, want 1", i, got)
		}
	}
}

func TestMulticastCopiesAreIndependent(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	orig := &msg.Message{
		Kind: msg.KindData, HasData: true, Tokens: 5,
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
	}
	n.Multicast(orig, []msg.Port{
		{Node: 1, Unit: msg.UnitCache},
		{Node: 2, Unit: msg.UnitCache},
	})
	k.Run()
	cs[1].got[0].Tokens = 99
	if cs[2].got[0].Tokens != 5 {
		t.Error("multicast copies alias each other")
	}
	if cs[1].got[0].Dst.Node != 1 || cs[2].got[0].Dst.Node != 2 {
		t.Error("multicast did not set per-copy Dst")
	}
}

func TestTreeBroadcastTotalOrder(t *testing.T) {
	k := sim.NewKernel()
	tree := topology.NewTree(16)
	n := New(k, tree, DefaultConfig(), nil)
	cs := registerAll(k, n, msg.UnitCache)
	allPorts := func() []msg.Port {
		var ps []msg.Port
		for i := 0; i < 16; i++ {
			ps = append(ps, msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache})
		}
		return ps
	}()
	// Fire 20 broadcasts from different sources at staggered times that
	// still overlap in the fabric; every node must observe the same order.
	for i := 0; i < 20; i++ {
		i := i
		src := msg.NodeID(i % 16)
		k.Schedule(sim.Time(i)*2*sim.Nanosecond, func() {
			n.Multicast(&msg.Message{
				Kind: msg.KindGetM,
				Seq:  uint64(i),
				Src:  msg.Port{Node: src, Unit: msg.UnitCache},
			}, allPorts)
		})
	}
	k.Run()
	ref := cs[0]
	if len(ref.got) != 20 {
		t.Fatalf("node 0 received %d broadcasts, want 20", len(ref.got))
	}
	for node := msg.NodeID(1); node < 16; node++ {
		c := cs[node]
		if len(c.got) != len(ref.got) {
			t.Fatalf("node %d received %d, node 0 received %d", node, len(c.got), len(ref.got))
		}
		for i := range ref.got {
			if c.got[i].Seq != ref.got[i].Seq {
				t.Fatalf("total order violated: node %d saw seq %d at slot %d, node 0 saw %d",
					node, c.got[i].Seq, i, ref.got[i].Seq)
			}
		}
	}
}

func TestTreeSelfDeliveryGoesThroughRoot(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, topology.NewTree(16), DefaultConfig(), nil)
	c := &collector{k: k}
	n.Register(msg.Port{Node: 7, Unit: msg.UnitCache}, c)
	n.Send(&msg.Message{
		Kind: msg.KindGetS,
		Src:  msg.Port{Node: 7, Unit: msg.UnitCache},
		Dst:  msg.Port{Node: 7, Unit: msg.UnitCache},
	})
	k.Run()
	// 4 hops x 15ns + 2.5ns serialization.
	want := 62500 * sim.Picosecond
	if c.at[0] != want {
		t.Errorf("self broadcast delivered at %v, want %v (must cross root)", c.at[0], want)
	}
}

func TestUnregisteredPortPanics(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("send to unregistered port did not panic")
		}
	}()
	n.Send(&msg.Message{
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
		Dst: msg.Port{Node: 1, Unit: msg.UnitCache},
	})
	k.Run()
}

func TestDoubleRegisterPanics(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	c := &collector{k: k}
	n.Register(msg.Port{Node: 0, Unit: msg.UnitCache}, c)
	defer func() {
		if recover() == nil {
			t.Error("double register did not panic")
		}
	}()
	n.Register(msg.Port{Node: 0, Unit: msg.UnitCache}, c)
}

func TestUnicastLatencyHelper(t *testing.T) {
	_, n, _ := newTorusNet(t, DefaultConfig())
	if got := n.UnicastLatency(0, 0, 8); got != 1*sim.Nanosecond {
		t.Errorf("local latency = %v, want 1ns", got)
	}
	if got := n.UnicastLatency(0, 2, 72); got != 52500*sim.Picosecond {
		t.Errorf("0->2 data latency = %v, want 52.5ns", got)
	}
}

func TestSentCounter(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	registerAll(k, n, msg.UnitCache)
	n.Send(&msg.Message{
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
		Dst: msg.Port{Node: 1, Unit: msg.UnitCache},
	})
	n.Multicast(&msg.Message{Src: msg.Port{Node: 0, Unit: msg.UnitCache}},
		[]msg.Port{{Node: 2, Unit: msg.UnitCache}, {Node: 3, Unit: msg.UnitCache}})
	k.Run()
	if n.Sent() != 3 {
		t.Errorf("Sent() = %d, want 3", n.Sent())
	}
}

// TestWorkConservingLinks verifies that a message does not wait behind a
// reservation for a message that has not physically reached the shared
// link yet: B (sent slightly later, one hop) must cross link 1-east
// before A (sent first, but arriving at that link only after its first
// hop).
func TestWorkConservingLinks(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	// A: 0 -> 2 (east, east). B: 1 -> 2 (east), sent at t=1ns.
	n.Send(&msg.Message{
		Kind: msg.KindData, HasData: true,
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
		Dst: msg.Port{Node: 2, Unit: msg.UnitCache},
	})
	k.Schedule(1*sim.Nanosecond, func() {
		n.Send(&msg.Message{
			Kind: msg.KindGetS,
			Src:  msg.Port{Node: 1, Unit: msg.UnitCache},
			Dst:  msg.Port{Node: 2, Unit: msg.UnitCache},
		})
	})
	k.Run()
	if len(cs[2].got) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(cs[2].got))
	}
	// B (control, 8B): departs link1E at 1ns, arrives 16ns, +2.5 = 18.5ns.
	// A reaches link 1E only at 37.5ns (after its first hop completes).
	if cs[2].got[0].Kind != msg.KindGetS {
		t.Errorf("first delivery = %v, want the later-sent one-hop message (work conservation)", cs[2].got[0].Kind)
	}
	if cs[2].at[0] != 18500*sim.Picosecond {
		t.Errorf("B delivered at %v, want 18.5ns", cs[2].at[0])
	}
}

// TestMulticastSharedPrefixTiming verifies that destinations sharing a
// path prefix see one serialization per shared link, not one per copy.
func TestMulticastSharedPrefixTiming(t *testing.T) {
	k, n, tr := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	// From node 0: east to 1, continue east to 2. Paths share link 0E.
	n.Multicast(&msg.Message{
		Kind: msg.KindGetM, Cat: msg.CatRequest,
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
	}, []msg.Port{
		{Node: 1, Unit: msg.UnitCache},
		{Node: 2, Unit: msg.UnitCache},
	})
	k.Run()
	// Node 1: 15ns + 2.5; node 2: 30ns + 2.5 — no double serialization on 0E.
	if cs[1].at[0] != 17500*sim.Picosecond {
		t.Errorf("node 1 delivery at %v, want 17.5ns", cs[1].at[0])
	}
	if cs[2].at[0] != 32500*sim.Picosecond {
		t.Errorf("node 2 delivery at %v, want 32.5ns", cs[2].at[0])
	}
	if got := tr.Messages(msg.CatRequest); got != 2 {
		t.Errorf("link traversals = %d, want 2 (0E shared, 1E)", got)
	}
}

// TestInteriorDestinationDelivered covers a destination that lies on the
// path to a farther destination.
func TestInteriorDestinationDelivered(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	n.Multicast(&msg.Message{
		Kind: msg.KindGetS,
		Src:  msg.Port{Node: 0, Unit: msg.UnitCache},
	}, []msg.Port{
		{Node: 2, Unit: msg.UnitCache}, // farther listed first
		{Node: 1, Unit: msg.UnitCache},
	})
	k.Run()
	if len(cs[1].got) != 1 || len(cs[2].got) != 1 {
		t.Fatalf("deliveries: node1=%d node2=%d, want 1 each", len(cs[1].got), len(cs[2].got))
	}
	if !(cs[1].at[0] < cs[2].at[0]) {
		t.Errorf("interior node delivered at %v, after farther node at %v", cs[1].at[0], cs[2].at[0])
	}
}

// TestMixedLocalAndRemoteMulticast exercises a destination set that
// includes the source node itself.
func TestMixedLocalAndRemoteMulticast(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	cs := registerAll(k, n, msg.UnitCache)
	local := &collector{k: k}
	n.Register(msg.Port{Node: 0, Unit: msg.UnitMem}, local)
	n.Multicast(&msg.Message{
		Kind: msg.KindGetS,
		Src:  msg.Port{Node: 0, Unit: msg.UnitCache},
	}, []msg.Port{
		{Node: 0, Unit: msg.UnitMem}, // local
		{Node: 3, Unit: msg.UnitCache},
	})
	k.Run()
	if len(local.got) != 1 || local.at[0] != 1*sim.Nanosecond {
		t.Errorf("local delivery %v at %v, want 1 at 1ns", len(local.got), local.at)
	}
	if len(cs[3].got) != 1 {
		t.Errorf("remote deliveries = %d, want 1", len(cs[3].got))
	}
}

// TestTreeRootIsTheBottleneck reproduces the paper's structural point:
// on the indirect tree every broadcast crosses the root, so the root's
// links run far hotter than any torus link under the same load.
func TestTreeRootIsTheBottleneck(t *testing.T) {
	load := func(topo topology.Topology) (max uint64, total uint64) {
		k := sim.NewKernel()
		n := New(k, topo, DefaultConfig(), nil)
		cs := registerAll(k, n, msg.UnitCache)
		_ = cs
		var all []msg.Port
		for i := 0; i < 16; i++ {
			all = append(all, msg.Port{Node: msg.NodeID(i), Unit: msg.UnitCache})
		}
		for i := 0; i < 16; i++ {
			src := msg.NodeID(i)
			k.Schedule(sim.Time(i)*sim.Nanosecond, func() {
				n.Multicast(&msg.Message{Kind: msg.KindGetM, Src: msg.Port{Node: src, Unit: msg.UnitCache}}, all)
			})
		}
		k.Run()
		for _, b := range n.LinkBytes() {
			total += b
			if b > max {
				max = b
			}
		}
		return max, total
	}
	treeMax, _ := load(topology.NewTree(16))
	torusMax, _ := load(topology.NewTorus(4, 4))
	if treeMax <= torusMax {
		t.Errorf("tree hottest link (%dB) not hotter than torus hottest (%dB)", treeMax, torusMax)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	k, n, _ := newTorusNet(t, DefaultConfig())
	registerAll(k, n, msg.UnitCache)
	n.Send(&msg.Message{
		Kind: msg.KindData, HasData: true,
		Src: msg.Port{Node: 0, Unit: msg.UnitCache},
		Dst: msg.Port{Node: 1, Unit: msg.UnitCache},
	})
	k.Run()
	link, bytes := n.HottestLink()
	if bytes != 72 {
		t.Fatalf("hottest link carried %d bytes, want 72", bytes)
	}
	// 72 bytes over 37.5ns at 3.2 GB/s = 60% utilization.
	got := n.Utilization(link, 37500*sim.Picosecond)
	if got < 0.59 || got > 0.61 {
		t.Errorf("utilization = %v, want ~0.6", got)
	}
	if n.Utilization(link, 0) != 0 {
		t.Error("zero elapsed should report zero utilization")
	}
}
