// Benchmarks that regenerate every table and figure of the paper's
// evaluation (reduced problem sizes; use cmd/tokensim for full-size
// runs) plus ablation studies over the design choices DESIGN.md calls
// out. Custom metrics are attached with b.ReportMetric so `go test
// -bench=.` prints the quantities the paper reports next to the usual
// ns/op.
package tokencoherence

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/harness"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/workload"
)

// benchOpt keeps one benchmark iteration around a hundred milliseconds.
func benchOpt() harness.Options {
	return harness.Options{Ops: 800, Warmup: 2500, Seeds: []uint64{1}}
}

// benchPoint builds a reduced-size point.
func benchPoint(proto, topo, wl string, seed uint64) harness.Point {
	return harness.Point{
		Protocol: proto, Topo: topo, Workload: wl,
		Ops: 800, Warmup: 2500, Seed: seed,
	}
}

// BenchmarkTable2 regenerates Table 2: the fraction of TokenB misses
// that are reissued or escalate to persistent requests.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		var once, pers float64
		for _, r := range rows {
			once += r.ReissuedOnce / float64(len(rows))
			pers += r.Persistent / float64(len(rows))
		}
		b.ReportMetric(once, "%reissued-once")
		b.ReportMetric(pers, "%persistent")
	}
}

// BenchmarkFig4a regenerates Figure 4a: Snooping (tree) vs TokenB (tree
// and torus) runtime. The reported metric is TokenB-torus runtime
// normalized to Snooping-tree (the paper: 0.74-0.85 with unlimited
// bandwidth, lower with limited).
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bars, err := harness.Fig4a(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		norm := normalizedMean(bars, "tokenb-torus", "snooping-tree")
		b.ReportMetric(norm, "tokenb-torus/snooping-tree")
	}
}

// BenchmarkFig4b regenerates Figure 4b: TokenB vs Snooping traffic on
// the tree (the paper: approximately equal).
func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bars, err := harness.Fig4b(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		var tokenb, snooping float64
		for _, bar := range bars {
			switch bar.Config {
			case "tokenb":
				tokenb += bar.Total
			case "snooping":
				snooping += bar.Total
			}
		}
		b.ReportMetric(tokenb/snooping, "traffic-ratio")
	}
}

// BenchmarkFig5a regenerates Figure 5a: TokenB vs Hammer vs Directory
// runtime on the torus (the paper: TokenB 17-54% faster than Directory,
// 8-29% faster than Hammer).
func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bars, err := harness.Fig5a(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(normalizedMean(bars, "directory", "tokenb"), "directory/tokenb")
		b.ReportMetric(normalizedMean(bars, "hammer", "tokenb"), "hammer/tokenb")
	}
}

// BenchmarkFig5b regenerates Figure 5b: traffic on the torus (the
// paper: Hammer 1.79-1.90x TokenB; Directory 0.75-0.79x TokenB).
func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bars, err := harness.Fig5b(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		totals := map[string]float64{}
		for _, bar := range bars {
			totals[bar.Config] += bar.Total
		}
		b.ReportMetric(totals["hammer"]/totals["tokenb"], "hammer/tokenb")
		b.ReportMetric(totals["directory"]/totals["tokenb"], "directory/tokenb")
	}
}

// BenchmarkScaling regenerates the §6 question 5 microbenchmark: TokenB
// vs Directory traffic from 4 to 64 processors (the paper: roughly 2x
// at 64).
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Scaling(harness.Options{Ops: 500, Warmup: 1200}, 64)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.TrafficRatio, fmt.Sprintf("ratio@%dp", r.Procs))
		}
	}
}

// normalizedMean averages cfg's runtime normalized to base per workload.
func normalizedMean(bars []harness.RuntimeBar, cfg, base string) float64 {
	baseline := map[string]float64{}
	for _, bar := range bars {
		if bar.Config == base {
			baseline[bar.Workload] = bar.Cycles
		}
	}
	var sum float64
	var n int
	for _, bar := range bars {
		if bar.Config == cfg && baseline[bar.Workload] > 0 {
			sum += bar.Cycles / baseline[bar.Workload]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationTokenCount varies T, the tokens per block (DESIGN.md
// decision 3). More tokens allow more concurrent readers per block but
// cost nothing on this metric scale; fewer than Procs is illegal.
func BenchmarkAblationTokenCount(b *testing.B) {
	for _, tokens := range []int{16, 32, 64, 128} {
		tokens := tokens
		b.Run(fmt.Sprintf("T=%d", tokens), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt := benchPoint(harness.ProtoTokenB, harness.TopoTorus, "oltp", 1)
				pt.Mutate = func(c *machine.Config) { c.TokensPerBlock = tokens }
				run, err := harness.Run(pt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.CyclesPerTransaction(), "cyc/txn")
			}
		})
	}
}

// BenchmarkAblationReissuePolicy varies the reissue policy (DESIGN.md
// decision 4): how many reissues before a persistent request, and the
// timeout multiplier.
func BenchmarkAblationReissuePolicy(b *testing.B) {
	cases := []struct {
		name        string
		maxReissues int
		factor      int
	}{
		{"persistent-immediately", 0, 2},
		{"one-reissue", 1, 2},
		{"paper-4-reissues", 4, 2},
		{"aggressive-timeout", 4, 1},
		{"patient-timeout", 4, 4},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt := benchPoint(harness.ProtoTokenB, harness.TopoTorus, "apache", 1)
				pt.Mutate = func(cfg *machine.Config) {
					cfg.MaxReissues = c.maxReissues
					cfg.BackoffFactor = c.factor
				}
				run, err := harness.Run(pt)
				if err != nil {
					b.Fatal(err)
				}
				m := run.Misses
				b.ReportMetric(run.CyclesPerTransaction(), "cyc/txn")
				b.ReportMetric(m.Frac(m.ReissuedOnce+m.ReissuedMore), "%reissued")
				b.ReportMetric(m.Frac(m.Persistent), "%persistent")
			}
		})
	}
}

// BenchmarkAblationMigratory toggles the migratory-sharing optimization
// (DESIGN.md decision 5) for TokenB on the migratory-heavy OLTP
// workload.
func BenchmarkAblationMigratory(b *testing.B) {
	for _, enabled := range []bool{true, false} {
		enabled := enabled
		b.Run(fmt.Sprintf("migratory=%v", enabled), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt := benchPoint(harness.ProtoTokenB, harness.TopoTorus, "oltp", 1)
				pt.Mutate = func(c *machine.Config) { c.Migratory = enabled }
				run, err := harness.Run(pt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.CyclesPerTransaction(), "cyc/txn")
				b.ReportMetric(float64(run.Misses.Issued), "misses")
			}
		})
	}
}

// BenchmarkAblationProcessorMLP varies the processor's outstanding-load
// bound, which controls how much miss latency is exposed.
func BenchmarkAblationProcessorMLP(b *testing.B) {
	for _, loads := range []int{1, 2, 4, 16} {
		loads := loads
		b.Run(fmt.Sprintf("maxloads=%d", loads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt := benchPoint(harness.ProtoTokenB, harness.TopoTorus, "apache", 1)
				pt.Mutate = func(c *machine.Config) { c.MaxLoads = loads }
				run, err := harness.Run(pt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.CyclesPerTransaction(), "cyc/txn")
			}
		})
	}
}

// BenchmarkAblationPerformancePolicy compares the three performance
// protocols on the same substrate (paper §7).
func BenchmarkAblationPerformancePolicy(b *testing.B) {
	for _, proto := range []string{harness.ProtoTokenB, harness.ProtoTokenM, harness.ProtoTokenD} {
		proto := proto
		b.Run(proto, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := harness.Run(benchPoint(proto, harness.TopoTorus, "specjbb", 1))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(run.CyclesPerTransaction(), "cyc/txn")
				b.ReportMetric(run.BytesPerMiss(), "B/miss")
			}
		})
	}
}

// BenchmarkEngineParallel measures the experiment-execution engine on a
// small protocol x seed grid at parallelism 1 vs GOMAXPROCS. On a
// multi-core host the parallel variant's ns/op drops roughly linearly
// with the core count (each grid point is an independent simulation);
// the outputs are identical either way.
func BenchmarkEngineParallel(b *testing.B) {
	plan := engine.Plan{
		Variants: engine.Grid(
			[]string{harness.ProtoTokenB, harness.ProtoDirectory, harness.ProtoHammer},
			[]string{harness.TopoTorus}),
		Workloads: []string{"oltp"},
		Seeds:     []uint64{1, 2},
		Ops:       400,
		Warmup:    1000,
		Procs:     8,
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{fmt.Sprintf("workers=max-%d", runtime.GOMAXPROCS(0)), 0},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			eng := engine.Engine{Workers: bc.workers}
			for i := 0; i < b.N; i++ {
				results, err := eng.Execute(context.Background(), plan)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(results)), "points/iter")
			}
		})
	}
}

// --- Microbenchmarks of the substrate -----------------------------------

// BenchmarkSimulatePoint measures one end-to-end simulation point per
// protocol: wall time and allocations for a fixed reduced-size run.
// This is the benchmark the CI regression harness tracks (see
// BENCH_kernel.json): the hot path through kernel, interconnect,
// machine, and protocol must stay allocation-lean.
func BenchmarkSimulatePoint(b *testing.B) {
	cases := []struct {
		proto, topo string
	}{
		{harness.ProtoTokenB, harness.TopoTorus},
		{harness.ProtoTokenD, harness.TopoTorus},
		{harness.ProtoTokenM, harness.TopoTorus},
		{harness.ProtoSnooping, harness.TopoTree},
		{harness.ProtoDirectory, harness.TopoTorus},
		{harness.ProtoHammer, harness.TopoTorus},
		{harness.ProtoDir2, harness.TopoTorus},
		{harness.ProtoRegionFilter, harness.TopoTorus},
	}
	for _, c := range cases {
		c := c
		b.Run(c.proto, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run, err := harness.Run(benchPoint(c.proto, c.topo, "oltp", 1))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(run.Accesses), "ops/iter")
			}
		})
	}
}

// BenchmarkSimulatePointIslands measures one 64-processor TokenB point
// under the conservative-parallel island kernel at increasing island
// counts. The output is byte-identical at every count (see
// internal/engine/island_test.go); what varies is wall time —
// proportional to available cores — and a small, deterministic
// allocation overhead for per-island kernels, stat shards, and barrier
// queues, which BENCH_parallel.json gates. On a single-core host the
// island counts are expected to run slightly slower than serial: the
// barrier overhead buys nothing without parallel hardware.
func BenchmarkSimulatePointIslands(b *testing.B) {
	for _, islands := range []int{1, 2, 4} {
		islands := islands
		b.Run(fmt.Sprintf("islands%d", islands), func(b *testing.B) {
			b.ReportAllocs()
			pt := benchPoint(harness.ProtoTokenB, harness.TopoTorus, "oltp", 1)
			pt.Procs = 64
			pt.Ops = 200
			pt.Warmup = 600
			pt.Islands = islands
			for i := 0; i < b.N; i++ {
				run, err := harness.Run(pt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(run.Accesses), "ops/iter")
			}
		})
	}
}

// BenchmarkSimKernel measures raw event throughput of the DES kernel.
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			k.After(sim.Nanosecond, tick)
		}
	}
	b.ResetTimer()
	k.After(0, tick)
	k.Run()
}

// BenchmarkUniformTokenB measures end-to-end simulation speed: simulated
// operations per host second for the uniform microbenchmark.
func BenchmarkUniformTokenB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt := harness.Point{
			Protocol: harness.ProtoTokenB, Topo: harness.TopoTorus,
			Gen: workload.NewUniform(1024, 0.3, 6*sim.Nanosecond, 16),
			Ops: 2000, Warmup: 0, Seed: 1,
		}
		run, err := harness.Run(pt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.Accesses), "ops/iter")
	}
}
