package tokencoherence

import (
	"fmt"
	"testing"

	"tokencoherence/internal/core"
	"tokencoherence/internal/directory"
	"tokencoherence/internal/hammer"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/snooping"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/workload"
)

// TestCrossProtocolDifferentialInvariant is the repository's strongest
// correctness net: all six protocols execute the same workload with the
// same seed (hence the exact same per-processor operation streams), on
// both interconnects, and every run must (a) pass the coherence oracle,
// (b) pass the token-conservation audit where applicable, and (c) end
// with the same final memory image — the last committed version of every
// block — pairwise across all runs. Timing differs wildly between
// protocols; the committed write history must not.
//
// The message pool is poisoned for the duration, so any use-after-free
// in the pooled hot path shows up as a loudly wrong image or an oracle
// violation rather than silently stale data.
func TestCrossProtocolDifferentialInvariant(t *testing.T) {
	msg.PoolPoison = true
	defer func() { msg.PoolPoison = false }()

	const (
		procs  = 8
		ops    = 400
		warmup = 400
		seed   = 7
		wl     = "oltp"
	)

	type result struct {
		name  string
		image map[msg.Block]uint64
	}
	var results []result

	for _, topo := range []string{"tree", "torus"} {
		for _, proto := range []string{"tokenb", "tokend", "tokenm", "snooping", "directory", "hammer"} {
			if proto == "snooping" && topo == "torus" {
				continue // snooping requires the totally-ordered tree
			}
			name := fmt.Sprintf("%s/%s", proto, topo)
			image := runDifferentialPoint(t, proto, topo, procs, ops, warmup, seed, wl)
			results = append(results, result{name, image})
		}
	}

	ref := results[0]
	for _, r := range results[1:] {
		if len(r.image) != len(ref.image) {
			t.Fatalf("%s wrote %d blocks, %s wrote %d", r.name, len(r.image), ref.name, len(ref.image))
		}
		for b, v := range ref.image {
			if got := r.image[b]; got != v {
				t.Fatalf("memory image diverges at block %d: %s ended at v%d, %s at v%d",
					b, ref.name, v, r.name, got)
			}
		}
	}
}

// TestCrossProtocolDifferentialInvariant64 extends the differential net
// to a 64-processor system — one point per fabric class: snooping on
// the three-level ordered tree (whose oracle-clean run is the
// total-order proof at that scale), TokenB and Directory on the 8x8
// torus. All three must agree on the final memory image.
func TestCrossProtocolDifferentialInvariant64(t *testing.T) {
	msg.PoolPoison = true
	defer func() { msg.PoolPoison = false }()

	const (
		procs  = 64
		ops    = 150
		warmup = 150
		seed   = 11
		wl     = "oltp"
	)
	points := []struct{ proto, topo string }{
		{"snooping", "tree"}, // ordered fabric class
		{"tokenb", "torus"},  // unordered fabric class
		{"directory", "torus"},
	}
	type result struct {
		name  string
		image map[msg.Block]uint64
	}
	var results []result
	for _, p := range points {
		name := fmt.Sprintf("%s/%s", p.proto, p.topo)
		image := runDifferentialPoint(t, p.proto, p.topo, procs, ops, warmup, seed, wl)
		results = append(results, result{name, image})
	}
	ref := results[0]
	for _, r := range results[1:] {
		if len(r.image) != len(ref.image) {
			t.Fatalf("%s wrote %d blocks, %s wrote %d", r.name, len(r.image), ref.name, len(ref.image))
		}
		for b, v := range ref.image {
			if got := r.image[b]; got != v {
				t.Fatalf("memory image diverges at block %d: %s ended at v%d, %s at v%d",
					b, ref.name, v, r.name, got)
			}
		}
	}
}

// runDifferentialPoint builds and runs one protocol/topology system
// directly (rather than through harness.Run) so the test can read the
// oracle's final memory image.
func runDifferentialPoint(t *testing.T, proto, topoName string, procs, ops, warmup int, seed uint64, wl string) map[msg.Block]uint64 {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Procs = procs
	if cfg.TokensPerBlock < procs {
		cfg.TokensPerBlock = procs * 2
	}

	var topo topology.Topology
	if topoName == "tree" {
		topo = topology.NewTree(procs)
	} else {
		topo = topology.NewTorusFor(procs)
	}

	params, err := workload.Commercial(wl)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(params, procs)

	sys := machine.NewSystem(cfg, topo, seed)
	var ctrls []machine.Controller
	var audit func() error
	switch proto {
	case "tokenb":
		ts := core.BuildTokenB(sys)
		ctrls, audit = ts.Controllers(), ts.Audit
	case "tokend":
		ts := core.BuildTokenD(sys)
		ctrls, audit = ts.Controllers(), ts.Audit
	case "tokenm":
		ts := core.BuildTokenM(sys)
		ctrls, audit = ts.Controllers(), ts.Audit
	case "snooping":
		ctrls = snooping.Build(sys).Controllers()
	case "directory":
		ctrls = directory.Build(sys).Controllers()
	case "hammer":
		ctrls = hammer.Build(sys).Controllers()
	default:
		t.Fatalf("unknown protocol %q", proto)
	}

	if _, err := sys.ExecuteWarm(ctrls, gen, warmup, ops); err != nil {
		t.Fatalf("%s/%s: %v", proto, topoName, err)
	}
	if audit != nil {
		if err := audit(); err != nil {
			t.Fatalf("%s/%s token audit: %v", proto, topoName, err)
		}
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("%s/%s oracle: %v", proto, topoName, err)
	}
	return sys.Oracle.Image()
}
