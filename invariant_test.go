package tokencoherence

import (
	"fmt"
	"testing"

	"tokencoherence/internal/core"
	"tokencoherence/internal/directory"
	"tokencoherence/internal/hammer"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/snooping"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/workload"
)

// TestCrossProtocolDifferentialInvariant is the repository's strongest
// correctness net: all eight protocols — the six flat ones plus the
// hierarchical dir2 and regionfilter — execute the same workload with
// the same seed (hence the exact same per-processor operation streams),
// on both interconnects, and every run must (a) pass the coherence oracle,
// (b) pass the token-conservation audit where applicable, and (c) end
// with the same final memory image — the last committed version of every
// block — pairwise across all runs. Timing differs wildly between
// protocols; the committed write history must not.
//
// The message pool is poisoned for the duration, so any use-after-free
// in the pooled hot path shows up as a loudly wrong image or an oracle
// violation rather than silently stale data.
func TestCrossProtocolDifferentialInvariant(t *testing.T) {
	msg.PoolPoison = true
	defer func() { msg.PoolPoison = false }()

	const (
		procs  = 8
		ops    = 400
		warmup = 400
		seed   = 7
		wl     = "oltp"
	)

	type result struct {
		name  string
		image map[msg.Block]uint64
	}
	var results []result

	for _, topo := range []string{"tree", "torus"} {
		for _, proto := range []string{"tokenb", "tokend", "tokenm", "snooping", "directory", "hammer", "dir2", "regionfilter"} {
			if proto == "snooping" && topo == "torus" {
				continue // snooping requires the totally-ordered tree
			}
			// Each point runs serially and on four kernel islands; the
			// island run must land on the same image as everything else.
			for _, islands := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/i%d", proto, topo, islands)
				image := runDifferentialPoint(t, proto, topo, procs, ops, warmup, seed, wl, islands)
				results = append(results, result{name, image})
			}
		}
	}

	ref := results[0]
	for _, r := range results[1:] {
		if len(r.image) != len(ref.image) {
			t.Fatalf("%s wrote %d blocks, %s wrote %d", r.name, len(r.image), ref.name, len(ref.image))
		}
		for b, v := range ref.image {
			if got := r.image[b]; got != v {
				t.Fatalf("memory image diverges at block %d: %s ended at v%d, %s at v%d",
					b, ref.name, v, r.name, got)
			}
		}
	}
}

// TestCrossProtocolDifferentialInvariant64 extends the differential net
// to a 64-processor system — one point per fabric class: snooping on
// the three-level ordered tree (whose oracle-clean run is the
// total-order proof at that scale), TokenB and Directory on the 8x8
// torus. All three must agree on the final memory image.
func TestCrossProtocolDifferentialInvariant64(t *testing.T) {
	msg.PoolPoison = true
	defer func() { msg.PoolPoison = false }()

	const (
		procs  = 64
		ops    = 150
		warmup = 150
		seed   = 11
		wl     = "oltp"
	)
	points := []struct{ proto, topo string }{
		{"snooping", "tree"}, // ordered fabric class
		{"tokenb", "torus"},  // unordered fabric class
		{"directory", "torus"},
		{"dir2", "torus"},         // hierarchical: two-level directory over torus rows
		{"regionfilter", "torus"}, // hierarchical: region-filtered token broadcast
	}
	type result struct {
		name  string
		image map[msg.Block]uint64
	}
	var results []result
	for _, p := range points {
		for _, islands := range []int{1, 4} {
			name := fmt.Sprintf("%s/%s/i%d", p.proto, p.topo, islands)
			image := runDifferentialPoint(t, p.proto, p.topo, procs, ops, warmup, seed, wl, islands)
			results = append(results, result{name, image})
		}
	}
	ref := results[0]
	for _, r := range results[1:] {
		if len(r.image) != len(ref.image) {
			t.Fatalf("%s wrote %d blocks, %s wrote %d", r.name, len(r.image), ref.name, len(ref.image))
		}
		for b, v := range ref.image {
			if got := r.image[b]; got != v {
				t.Fatalf("memory image diverges at block %d: %s ended at v%d, %s at v%d",
					b, ref.name, v, r.name, got)
			}
		}
	}
}

// runDifferentialPoint builds and runs one protocol/topology system
// directly (rather than through harness.Run) so the test can read the
// oracle's final memory image.
func runDifferentialPoint(t *testing.T, proto, topoName string, procs, ops, warmup int, seed uint64, wl string, islands int) map[msg.Block]uint64 {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Procs = procs
	cfg.Islands = islands
	if cfg.TokensPerBlock < procs {
		cfg.TokensPerBlock = procs * 2
	}

	var topo topology.Topology
	if topoName == "tree" {
		topo = topology.NewTree(procs)
	} else {
		topo = topology.NewTorusFor(procs)
	}

	params, err := workload.Commercial(wl)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(params, procs)

	sys := machine.NewSystem(cfg, topo, seed)
	var ctrls []machine.Controller
	var audit func() error
	switch proto {
	case "tokenb":
		ts := core.BuildTokenB(sys)
		ctrls, audit = ts.Controllers(), ts.Audit
	case "tokend":
		ts := core.BuildTokenD(sys)
		ctrls, audit = ts.Controllers(), ts.Audit
	case "tokenm":
		ts := core.BuildTokenM(sys)
		ctrls, audit = ts.Controllers(), ts.Audit
	case "snooping":
		ctrls = snooping.Build(sys).Controllers()
	case "directory":
		ctrls = directory.Build(sys).Controllers()
	case "hammer":
		ctrls = hammer.Build(sys).Controllers()
	case "dir2":
		s2, err := directory.Build2(sys)
		if err != nil {
			t.Fatal(err)
		}
		ctrls = s2.Controllers()
	case "regionfilter":
		ts := core.WithPolicy(core.NewRegionFilterPolicy, false)(sys)
		ctrls, audit = ts.Controllers(), ts.Audit
	default:
		t.Fatalf("unknown protocol %q", proto)
	}

	if _, err := sys.ExecuteWarm(ctrls, gen, warmup, ops); err != nil {
		t.Fatalf("%s/%s: %v", proto, topoName, err)
	}
	if audit != nil {
		if err := audit(); err != nil {
			t.Fatalf("%s/%s token audit: %v", proto, topoName, err)
		}
	}
	if err := sys.Oracle.Err(); err != nil {
		t.Fatalf("%s/%s oracle: %v", proto, topoName, err)
	}
	return sys.Oracle.Image()
}

// TestCrossProtocolDifferentialInvariant256 drives the differential net
// to the 256-processor ceiling on four kernel islands: all eight
// protocols (snooping on the four-level ordered tree, the rest on the
// 16x16 torus) execute the same streams and must agree on the final memory
// image, oracle- and audit-clean. Skipped in -short mode; the
// 64-processor variant covers islands there.
func TestCrossProtocolDifferentialInvariant256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-processor differential invariant skipped in -short mode")
	}
	msg.PoolPoison = true
	defer func() { msg.PoolPoison = false }()

	const (
		procs  = 256
		ops    = 15
		warmup = 15
		seed   = 13
		wl     = "oltp"
	)
	type result struct {
		name  string
		image map[msg.Block]uint64
	}
	var results []result
	for _, proto := range []string{"tokenb", "tokend", "tokenm", "snooping", "directory", "hammer", "dir2", "regionfilter"} {
		topo := "torus"
		if proto == "snooping" {
			topo = "tree"
		}
		name := fmt.Sprintf("%s/%s/i4", proto, topo)
		image := runDifferentialPoint(t, proto, topo, procs, ops, warmup, seed, wl, 4)
		results = append(results, result{name, image})
	}
	// One serial reference pins the island runs to the single-kernel
	// universe: identical streams must commit identical write histories
	// whether or not the kernel is parallel.
	results = append(results, result{"tokenb/torus/i1",
		runDifferentialPoint(t, "tokenb", "torus", procs, ops, warmup, seed, wl, 1)})
	ref := results[0]
	for _, r := range results[1:] {
		if len(r.image) != len(ref.image) {
			t.Fatalf("%s wrote %d blocks, %s wrote %d", r.name, len(r.image), ref.name, len(ref.image))
		}
		for b, v := range ref.image {
			if got := r.image[b]; got != v {
				t.Fatalf("memory image diverges at block %d: %s ended at v%d, %s at v%d",
					b, ref.name, v, r.name, got)
			}
		}
	}
}
