package tokencoherence

import (
	"encoding/json"
	"os"
	"testing"

	"tokencoherence/internal/harness"
)

// benchBaseline mirrors BENCH_kernel.json.
type benchBaseline struct {
	Points map[string]struct {
		AllocsPerOp    float64 `json:"allocs_per_op"`
		MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
	} `json:"points"`
}

// TestBenchmarkRegression is the benchmark-regression harness CI runs on
// every push: it executes one end-to-end simulation point per protocol
// (the exact configuration BenchmarkSimulatePoint measures) under
// testing.AllocsPerRun and fails if the allocation count exceeds the
// ceiling recorded in BENCH_kernel.json. Allocation counts are
// deterministic, unlike ns/op, so this gate holds on any hardware; the
// ceilings carry ~35% headroom over the recorded baseline for runtime
// and Go-version drift. If an intentional change raises allocations,
// regenerate the baseline (see BENCH_kernel.json) in the same PR.
func TestBenchmarkRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark regression in -short mode")
	}
	raw, err := os.ReadFile("BENCH_kernel.json")
	if err != nil {
		t.Fatalf("missing benchmark baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("bad BENCH_kernel.json: %v", err)
	}
	topoFor := map[string]string{
		harness.ProtoTokenB:    harness.TopoTorus,
		harness.ProtoTokenD:    harness.TopoTorus,
		harness.ProtoTokenM:    harness.TopoTorus,
		harness.ProtoSnooping:  harness.TopoTree,
		harness.ProtoDirectory: harness.TopoTorus,
		harness.ProtoHammer:    harness.TopoTorus,
	}
	for proto, limits := range base.Points {
		proto, limits := proto, limits
		t.Run(proto, func(t *testing.T) {
			topo, ok := topoFor[proto]
			if !ok {
				t.Fatalf("baseline names unknown protocol %q", proto)
			}
			pt := benchPoint(proto, topo, "oltp", 1)
			allocs := testing.AllocsPerRun(1, func() {
				if _, err := harness.Run(pt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > limits.MaxAllocsPerOp {
				t.Errorf("%s point allocated %.0f objects, baseline ceiling is %.0f (recorded %.0f); "+
					"if intentional, regenerate BENCH_kernel.json in this PR",
					proto, allocs, limits.MaxAllocsPerOp, limits.AllocsPerOp)
			}
		})
	}
}
