package tokencoherence

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"tokencoherence/internal/harness"
)

// benchBaseline mirrors the points table of BENCH_kernel.json and
// BENCH_parallel.json, plus the recording-host metadata the parallel
// gate cross-checks.
type benchBaseline struct {
	Description string `json:"description"`
	// Cpus is the recording host's CPU count. BENCH_parallel.json's
	// ns_per_op values only demonstrate parallel speedup when this is
	// greater than one; TestBenchmarkRegressionParallel enforces that the
	// description's single-CPU caveat and this field stay consistent.
	Cpus   int `json:"cpus"`
	Points map[string]struct {
		AllocsPerOp    float64 `json:"allocs_per_op"`
		MaxAllocsPerOp float64 `json:"max_allocs_per_op"`
	} `json:"points"`
}

// loadBaseline reads one baseline file or fails the test.
func loadBaseline(t *testing.T, path string) benchBaseline {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing benchmark baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("bad %s: %v", path, err)
	}
	return base
}

// TestBenchmarkRegression is the benchmark-regression harness CI runs on
// every push: it executes one end-to-end simulation point per protocol
// (the exact configuration BenchmarkSimulatePoint measures) under
// testing.AllocsPerRun and fails if the allocation count exceeds the
// ceiling recorded in BENCH_kernel.json. Allocation counts are
// deterministic, unlike ns/op, so this gate holds on any hardware; the
// ceilings carry ~35% headroom over the recorded baseline for runtime
// and Go-version drift. If an intentional change raises allocations,
// regenerate the baseline (see BENCH_kernel.json) in the same PR.
func TestBenchmarkRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark regression in -short mode")
	}
	base := loadBaseline(t, "BENCH_kernel.json")
	topoFor := map[string]string{
		harness.ProtoTokenB:    harness.TopoTorus,
		harness.ProtoTokenD:    harness.TopoTorus,
		harness.ProtoTokenM:    harness.TopoTorus,
		harness.ProtoSnooping:  harness.TopoTree,
		harness.ProtoDirectory: harness.TopoTorus,
		harness.ProtoHammer:    harness.TopoTorus,

		harness.ProtoDir2:         harness.TopoTorus,
		harness.ProtoRegionFilter: harness.TopoTorus,
	}
	for proto, limits := range base.Points {
		proto, limits := proto, limits
		t.Run(proto, func(t *testing.T) {
			topo, ok := topoFor[proto]
			if !ok {
				t.Fatalf("baseline names unknown protocol %q", proto)
			}
			pt := benchPoint(proto, topo, "oltp", 1)
			allocs := testing.AllocsPerRun(1, func() {
				if _, err := harness.Run(pt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > limits.MaxAllocsPerOp {
				t.Errorf("%s point allocated %.0f objects, baseline ceiling is %.0f (recorded %.0f); "+
					"if intentional, regenerate BENCH_kernel.json in this PR",
					proto, allocs, limits.MaxAllocsPerOp, limits.AllocsPerOp)
			}
		})
	}
}

// TestBenchmarkRegressionParallel gates the island kernel's overhead
// against BENCH_parallel.json: one 64-processor TokenB point (the
// BenchmarkSimulatePointIslands configuration) is run at each recorded
// island count and must stay under its allocation ceiling. Wall-clock
// speedup is NOT gated — it depends on the host's core count (the
// baseline was recorded on a single-core host; see the baseline file) —
// but allocation counts are deterministic, so per-island kernels, stat
// shards, observer journals, and barrier queues cannot silently grow.
func TestBenchmarkRegressionParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark regression in -short mode")
	}
	base := loadBaseline(t, "BENCH_parallel.json")
	// The single-CPU caveat is machine-checked: the baseline must record
	// its host's CPU count, and the description's warning must match it.
	// Re-recording on a multi-core host (cpus > 1) obliges whoever does
	// it to delete the caveat — and vice versa, the caveat cannot be
	// dropped while the numbers still come from one core.
	const caveat = "single CPU"
	switch {
	case base.Cpus < 1:
		t.Errorf("BENCH_parallel.json records no cpus field; regenerate it with the recording host's CPU count")
	case base.Cpus == 1 && !strings.Contains(base.Description, caveat):
		t.Errorf("BENCH_parallel.json was recorded on 1 CPU but its description lost the %q caveat", caveat)
	case base.Cpus > 1 && strings.Contains(base.Description, caveat):
		t.Errorf("BENCH_parallel.json was recorded on %d CPUs; drop the stale %q caveat from its description", base.Cpus, caveat)
	}
	for name, limits := range base.Points {
		name, limits := name, limits
		var islands int
		if _, err := fmt.Sscanf(name, "islands%d", &islands); err != nil || islands < 1 {
			t.Fatalf("baseline names unparseable island count %q", name)
		}
		t.Run(name, func(t *testing.T) {
			pt := benchPoint(harness.ProtoTokenB, harness.TopoTorus, "oltp", 1)
			pt.Procs = 64
			pt.Ops = 200
			pt.Warmup = 600
			pt.Islands = islands
			allocs := testing.AllocsPerRun(1, func() {
				if _, err := harness.Run(pt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > limits.MaxAllocsPerOp {
				t.Errorf("%s point allocated %.0f objects, baseline ceiling is %.0f (recorded %.0f); "+
					"if intentional, regenerate BENCH_parallel.json in this PR",
					name, allocs, limits.MaxAllocsPerOp, limits.AllocsPerOp)
			}
		})
	}
}
