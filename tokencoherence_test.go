package tokencoherence

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimulateSmoke(t *testing.T) {
	run, err := Simulate(Point{
		Protocol: ProtoTokenB,
		Topo:     TopoTorus,
		Workload: "specjbb",
		Ops:      500,
		Warmup:   1200,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Transactions == 0 || run.Misses.Issued == 0 {
		t.Errorf("implausible run: %d transactions, %d misses", run.Transactions, run.Misses.Issued)
	}
	if run.CyclesPerTransaction() <= 0 {
		t.Errorf("CyclesPerTransaction = %v", run.CyclesPerTransaction())
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	want := map[string]bool{"table2": true, "fig4a": true, "fig4b": true, "fig5a": true, "fig5b": true, "scaling": true}
	if len(exps) != len(want) {
		t.Fatalf("Experiments() = %v", exps)
	}
	for _, e := range exps {
		if !want[e] {
			t.Errorf("unexpected experiment %q", e)
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "table2", Options{Ops: 300, Warmup: 800}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Errorf("unexpected output: %s", buf.String())
	}
}

func TestWorkloadFacade(t *testing.T) {
	if got := Workloads(); len(got) != 4 {
		t.Fatalf("Workloads() = %v", got)
	}
	if got := Workloads(); got[3] != "barnes" {
		t.Errorf("Workloads()[3] = %q, want barnes", got[3])
	}
	p, err := Workload("apache")
	if err != nil || p.Name != "apache" {
		t.Fatalf("Workload(apache) = %+v, %v", p, err)
	}
	if _, err := Workload("nope"); err == nil {
		t.Error("unknown workload not rejected")
	}
}

func TestDefaultConfigFacade(t *testing.T) {
	c := DefaultConfig()
	if c.Procs != 16 {
		t.Errorf("Procs = %d, want 16", c.Procs)
	}
	c.Validate()
}

func TestAllProtocolConstantsDistinct(t *testing.T) {
	protos := []string{ProtoTokenB, ProtoSnooping, ProtoDirectory, ProtoHammer, ProtoTokenD, ProtoTokenM}
	seen := map[string]bool{}
	for _, p := range protos {
		if seen[p] {
			t.Errorf("duplicate protocol constant %q", p)
		}
		seen[p] = true
	}
}
