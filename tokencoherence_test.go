package tokencoherence

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestSimulateSmoke(t *testing.T) {
	run, err := Simulate(Point{
		Protocol: ProtoTokenB,
		Topo:     TopoTorus,
		Workload: "specjbb",
		Ops:      500,
		Warmup:   1200,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Transactions == 0 || run.Misses.Issued == 0 {
		t.Errorf("implausible run: %d transactions, %d misses", run.Transactions, run.Misses.Issued)
	}
	if run.CyclesPerTransaction() <= 0 {
		t.Errorf("CyclesPerTransaction = %v", run.CyclesPerTransaction())
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	want := map[string]bool{"table2": true, "fig4a": true, "fig4b": true, "fig5a": true, "fig5b": true, "scaling": true}
	if len(exps) != len(want) {
		t.Fatalf("Experiments() = %v", exps)
	}
	for _, e := range exps {
		if !want[e] {
			t.Errorf("unexpected experiment %q", e)
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "table2", Options{Ops: 300, Warmup: 800}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Errorf("unexpected output: %s", buf.String())
	}
}

func TestWorkloadFacade(t *testing.T) {
	// The built-ins are a registration-order prefix; other tests in this
	// binary may append registrations of their own, so do not assert the
	// exact length.
	got := Workloads()
	if len(got) < 4 {
		t.Fatalf("Workloads() = %v", got)
	}
	for i, want := range []string{"apache", "oltp", "specjbb", "barnes"} {
		if got[i] != want {
			t.Errorf("Workloads()[%d] = %q, want %q", i, got[i], want)
		}
	}
	p, err := Workload("apache")
	if err != nil || p.Name != "apache" {
		t.Fatalf("Workload(apache) = %+v, %v", p, err)
	}
	if _, err := Workload("nope"); err == nil {
		t.Error("unknown workload not rejected")
	}
}

// fixedStrideGen is a trivial custom workload: every processor strides
// through its own private region (no sharing, fully deterministic).
type fixedStrideGen struct {
	next []Addr
}

func newFixedStrideGen(procs int) *fixedStrideGen {
	g := &fixedStrideGen{next: make([]Addr, procs)}
	for i := range g.next {
		g.next[i] = Addr(i) << 20
	}
	return g
}

func (g *fixedStrideGen) Next(proc int, rng *Source) Op {
	a := g.next[proc]
	g.next[proc] += 64
	return Op{Addr: a, Write: proc%2 == 0, Think: 2 * Nanosecond, EndTxn: a%1024 == 0}
}

// TestWorkloadRegistryResolution locks in the registry fix: a workload
// added through the public facade must be fully visible through it —
// listed by Workloads, runnable by name, and distinguished by Workload()
// from a workload that does not exist at all. (It previously reported
// registered-but-opaque workloads as unknown because it bypassed the
// registry and consulted only the built-in parameter table.)
func TestWorkloadRegistryResolution(t *testing.T) {
	RegisterWorkload(WorkloadSpec{
		Name: "stride-test",
		New:  func(procs int) Generator { return newFixedStrideGen(procs) },
	})

	found := false
	for _, name := range Workloads() {
		if name == "stride-test" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered workload missing from Workloads()")
	}

	// Workload() resolves through the registry: an opaque registration
	// is reported as parameterless, not as unknown.
	_, err := Workload("stride-test")
	if err == nil || !strings.Contains(err.Error(), "opaque generator factory") {
		t.Fatalf("Workload(stride-test) = %v, want opaque-factory error", err)
	}
	if _, err := Workload("never-registered"); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") ||
		!strings.Contains(err.Error(), "stride-test") {
		t.Fatalf("Workload(never-registered) = %v, want unknown error listing registered names", err)
	}

	// The registered name is runnable end to end by name.
	run, err := Simulate(Point{
		Protocol: ProtoTokenB, Workload: "stride-test",
		Procs: 4, Ops: 200, Warmup: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Accesses == 0 || run.Transactions == 0 {
		t.Errorf("implausible custom-workload run: %d accesses, %d transactions", run.Accesses, run.Transactions)
	}

	// A registration that does carry parameters is inspectable.
	params, err := Workload("oltp")
	if err != nil || params.Name != "oltp" {
		t.Errorf("Workload(oltp) = %+v, %v", params, err)
	}
}

func TestDefaultConfigFacade(t *testing.T) {
	c := DefaultConfig()
	if c.Procs != 16 {
		t.Errorf("Procs = %d, want 16", c.Procs)
	}
	c.Validate()
}

func TestAllProtocolConstantsDistinct(t *testing.T) {
	protos := []string{ProtoTokenB, ProtoSnooping, ProtoDirectory, ProtoHammer, ProtoTokenD, ProtoTokenM}
	seen := map[string]bool{}
	for _, p := range protos {
		if seen[p] {
			t.Errorf("duplicate protocol constant %q", p)
		}
		seen[p] = true
	}
}

// TestTracingFacade drives the tracing surface entirely through this
// package: a tracer attached via Engine.Attach, a flight recorder with
// a forced starvation trip, and MergeObservers fan-out.
func TestTracingFacade(t *testing.T) {
	var dumps bytes.Buffer
	plan := Plan{
		Variants: []Variant{{Name: "facade", Point: Point{
			Protocol: ProtoTokenB, Topo: TopoTorus, Workload: "oltp",
			Mutate: func(c *Config) {
				c.StarvationDeadline = Picosecond // trip on the first measured miss
				c.DebugLog = &dumps
			},
		}}},
		Seeds:  []uint64{1},
		Ops:    150,
		Warmup: 150,
		Procs:  4,
	}
	var tracer *Tracer
	var progressDone int
	eng := Engine{
		Attach: func(job Job) func(*System) {
			tracer = NewTracer(TracerConfig{})
			return func(sys *System) { sys.Observe(tracer.Observer()) }
		},
		Progress: func(p Progress) { progressDone = p.Done },
	}
	results, err := eng.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	misses, ok := results[0].Metrics.Value("misses")
	if !ok || misses == 0 {
		t.Fatalf("misses metric = %v, %v", misses, ok)
	}
	if got := tracer.Spans(); float64(got) != misses {
		t.Errorf("tracer spans = %d, misses = %.0f", got, misses)
	}
	var buf bytes.Buffer
	if err := tracer.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Errorf("export is not trace-event JSON:\n%.200s", buf.String())
	}
	if !strings.Contains(dumps.String(), "flight recorder") {
		t.Error("1 ps starvation deadline produced no recorder dump")
	}
	if progressDone != 1 {
		t.Errorf("Progress reported Done=%d, want 1", progressDone)
	}

	calls := 0
	m := MergeObservers(nil,
		&Observer{MeasurementStarted: func(Time) { calls++ }},
		&Observer{MeasurementStarted: func(Time) { calls++ }})
	m.OnMeasurementStarted(0)
	if calls != 2 {
		t.Errorf("MergeObservers fan-out reached %d of 2", calls)
	}
	if NewFlightRecorder(RecorderConfig{}).Observer() == nil {
		t.Error("facade recorder returned no observer")
	}
	if DefaultRecorderSize <= 0 || DefaultStarvationDeadline <= 0 {
		t.Error("implausible recorder defaults")
	}
}
