package tokencoherence

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimulateSmoke(t *testing.T) {
	run, err := Simulate(Point{
		Protocol: ProtoTokenB,
		Topo:     TopoTorus,
		Workload: "specjbb",
		Ops:      500,
		Warmup:   1200,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Transactions == 0 || run.Misses.Issued == 0 {
		t.Errorf("implausible run: %d transactions, %d misses", run.Transactions, run.Misses.Issued)
	}
	if run.CyclesPerTransaction() <= 0 {
		t.Errorf("CyclesPerTransaction = %v", run.CyclesPerTransaction())
	}
}

func TestExperimentsList(t *testing.T) {
	exps := Experiments()
	want := map[string]bool{"table2": true, "fig4a": true, "fig4b": true, "fig5a": true, "fig5b": true, "scaling": true}
	if len(exps) != len(want) {
		t.Fatalf("Experiments() = %v", exps)
	}
	for _, e := range exps {
		if !want[e] {
			t.Errorf("unexpected experiment %q", e)
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "table2", Options{Ops: 300, Warmup: 800}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Errorf("unexpected output: %s", buf.String())
	}
}

func TestWorkloadFacade(t *testing.T) {
	// The built-ins are a registration-order prefix; other tests in this
	// binary may append registrations of their own, so do not assert the
	// exact length.
	got := Workloads()
	if len(got) < 4 {
		t.Fatalf("Workloads() = %v", got)
	}
	for i, want := range []string{"apache", "oltp", "specjbb", "barnes"} {
		if got[i] != want {
			t.Errorf("Workloads()[%d] = %q, want %q", i, got[i], want)
		}
	}
	p, err := Workload("apache")
	if err != nil || p.Name != "apache" {
		t.Fatalf("Workload(apache) = %+v, %v", p, err)
	}
	if _, err := Workload("nope"); err == nil {
		t.Error("unknown workload not rejected")
	}
}

// fixedStrideGen is a trivial custom workload: every processor strides
// through its own private region (no sharing, fully deterministic).
type fixedStrideGen struct {
	next []Addr
}

func newFixedStrideGen(procs int) *fixedStrideGen {
	g := &fixedStrideGen{next: make([]Addr, procs)}
	for i := range g.next {
		g.next[i] = Addr(i) << 20
	}
	return g
}

func (g *fixedStrideGen) Next(proc int, rng *Source) Op {
	a := g.next[proc]
	g.next[proc] += 64
	return Op{Addr: a, Write: proc%2 == 0, Think: 2 * Nanosecond, EndTxn: a%1024 == 0}
}

// TestWorkloadRegistryResolution locks in the registry fix: a workload
// added through the public facade must be fully visible through it —
// listed by Workloads, runnable by name, and distinguished by Workload()
// from a workload that does not exist at all. (It previously reported
// registered-but-opaque workloads as unknown because it bypassed the
// registry and consulted only the built-in parameter table.)
func TestWorkloadRegistryResolution(t *testing.T) {
	RegisterWorkload(WorkloadSpec{
		Name: "stride-test",
		New:  func(procs int) Generator { return newFixedStrideGen(procs) },
	})

	found := false
	for _, name := range Workloads() {
		if name == "stride-test" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered workload missing from Workloads()")
	}

	// Workload() resolves through the registry: an opaque registration
	// is reported as parameterless, not as unknown.
	_, err := Workload("stride-test")
	if err == nil || !strings.Contains(err.Error(), "opaque generator factory") {
		t.Fatalf("Workload(stride-test) = %v, want opaque-factory error", err)
	}
	if _, err := Workload("never-registered"); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") ||
		!strings.Contains(err.Error(), "stride-test") {
		t.Fatalf("Workload(never-registered) = %v, want unknown error listing registered names", err)
	}

	// The registered name is runnable end to end by name.
	run, err := Simulate(Point{
		Protocol: ProtoTokenB, Workload: "stride-test",
		Procs: 4, Ops: 200, Warmup: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Accesses == 0 || run.Transactions == 0 {
		t.Errorf("implausible custom-workload run: %d accesses, %d transactions", run.Accesses, run.Transactions)
	}

	// A registration that does carry parameters is inspectable.
	params, err := Workload("oltp")
	if err != nil || params.Name != "oltp" {
		t.Errorf("Workload(oltp) = %+v, %v", params, err)
	}
}

func TestDefaultConfigFacade(t *testing.T) {
	c := DefaultConfig()
	if c.Procs != 16 {
		t.Errorf("Procs = %d, want 16", c.Procs)
	}
	c.Validate()
}

func TestAllProtocolConstantsDistinct(t *testing.T) {
	protos := []string{ProtoTokenB, ProtoSnooping, ProtoDirectory, ProtoHammer, ProtoTokenD, ProtoTokenM}
	seen := map[string]bool{}
	for _, p := range protos {
		if seen[p] {
			t.Errorf("duplicate protocol constant %q", p)
		}
		seen[p] = true
	}
}
