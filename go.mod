module tokencoherence

go 1.24
