package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestPerformancePoliciesSmoke runs the three-policy comparison tiny.
func TestPerformancePoliciesSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 150, 150); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, proto := range []string{"tokenb", "tokend", "tokenm"} {
		if !strings.Contains(out, proto) {
			t.Fatalf("output missing policy %q:\n%s", proto, out)
		}
	}
}
