// Performancepolicies demonstrates the decoupling that gives the paper
// its title: three different performance protocols — TokenB (broadcast),
// TokenD (home-redirected, directory-like traffic) and TokenM
// (destination-set prediction) — run on the *same unmodified correctness
// substrate*. Changing the request policy trades latency against
// bandwidth but can never break safety: every run below passes the token
// conservation audit and the coherence oracle.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"tokencoherence"
)

func main() {
	if err := run(os.Stdout, 2500, 6000); err != nil {
		log.Fatal(err)
	}
}

// run compares the three performance policies at the given size; main
// and the smoke test call it.
func run(out io.Writer, ops, warmup int) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tcycles/txn\tavg miss\trequest bytes/miss\ttotal bytes/miss\treissued")
	for _, proto := range []string{
		tokencoherence.ProtoTokenB,
		tokencoherence.ProtoTokenM,
		tokencoherence.ProtoTokenD,
	} {
		run, err := tokencoherence.Simulate(tokencoherence.Point{
			Protocol: proto,
			Topo:     tokencoherence.TopoTorus,
			Workload: "specjbb",
			Ops:      ops,
			Warmup:   warmup,
			Seed:     9,
		})
		if err != nil {
			return err
		}
		m := run.Misses
		fmt.Fprintf(w, "%s\t%.1f\t%v\t%.1f\t%.1f\t%.2f%%\n",
			proto, run.CyclesPerTransaction(), run.AvgMissLatency(),
			run.CategoryBytesPerMiss(0), // requests
			run.BytesPerMiss(),
			m.Frac(m.ReissuedOnce+m.ReissuedMore+m.Persistent))
	}
	w.Flush()

	fmt.Fprintln(out, "\nAll three policies ran on the identical correctness substrate;")
	fmt.Fprintln(out, "the audit verified token conservation and coherent data in every case.")
	fmt.Fprintln(out, "TokenB buys the lowest latency with broadcast bandwidth; TokenD")
	fmt.Fprintln(out, "approaches directory-protocol traffic; TokenM sits in between —")
	fmt.Fprintln(out, "exactly the design space §7 of the paper describes.")
	return nil
}
