package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRaceSmoke drives the Figure 2 race and checks that both accesses
// resolved and the narration printed.
func TestRaceSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"P0's store commits", "P1's load commits", "conservation audit: passed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
