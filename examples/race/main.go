// Race reproduces the paper's Figure 2: a GetM from P0 racing a GetS
// from P1 on the same block over an unordered interconnect. With token
// counting there is no ordering point: the race may split the tokens,
// the loser times out and reissues, and in the pathological limit the
// persistent-request substrate guarantees completion. The example drives
// the race directly against the protocol controllers and narrates what
// each processor ended up holding.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"

	"tokencoherence/internal/core"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/topology"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run drives the Figure 2 race; main and the smoke test call it.
func run(w io.Writer) error {
	cfg := machine.DefaultConfig()
	cfg.Procs = 4
	cfg.TokensPerBlock = 4
	sys := machine.NewSystem(cfg, topology.NewTorusFor(4), 7)
	ts := core.BuildTokenB(sys)

	const addr = msg.Addr(0x1000)
	block := msg.BlockOf(addr)
	fmt.Fprintf(w, "Block %d starts with all %d tokens at its home memory (node %d).\n\n",
		block, cfg.TokensPerBlock, msg.HomeOf(block, cfg.Procs))

	var writeDone, readDone bool
	sys.K.Schedule(0, func() {
		fmt.Fprintln(w, "t=0: P0 issues a transient GetM (wants all tokens) ...")
		ts.Caches[0].Access(machine.Op{Addr: addr, Write: true}, func() {
			writeDone = true
			fmt.Fprintf(w, "t=%v: P0's store commits (it gathered all tokens)\n", sys.K.Now())
		})
	})
	sys.K.Schedule(0, func() {
		fmt.Fprintln(w, "t=0: P1 issues a transient GetS (wants one token) — the race of Figure 2")
		ts.Caches[1].Access(machine.Op{Addr: addr, Write: false}, func() {
			readDone = true
			fmt.Fprintf(w, "t=%v: P1's load commits (it has a token and valid data)\n", sys.K.Now())
		})
	})
	sys.K.Run()

	if !writeDone || !readDone {
		return errors.New("race did not resolve — the substrate failed")
	}
	if err := sys.Oracle.Err(); err != nil {
		return err
	}
	if err := ts.Audit(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nFinal token distribution:")
	for i, c := range ts.Caches {
		if l := c.L2.Lookup(block); l != nil && l.Tokens > 0 {
			fmt.Fprintf(w, "  P%d holds %d token(s), owner=%v, data=v%d\n", i, l.Tokens, l.Owner, l.Data)
		}
	}
	if tokens, owner := ts.Mems[msg.HomeOf(block, cfg.Procs)].Tokens(block); tokens > 0 {
		fmt.Fprintf(w, "  home memory holds %d token(s), owner=%v\n", tokens, owner)
	}
	m := sys.Run.Misses
	fmt.Fprintf(w, "\nMisses: %d issued, %d reissued, %d persistent — safety held without any ordering point.\n",
		m.Issued, m.ReissuedOnce+m.ReissuedMore, m.Persistent)
	fmt.Fprintln(w, "Token conservation audit: passed.")
	return nil
}
