package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestProtocolCompareSmoke runs the four-protocol comparison tiny.
func TestProtocolCompareSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 150, 150); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, proto := range []string{"snooping", "tokenb", "hammer", "directory"} {
		if !strings.Contains(out, proto) {
			t.Fatalf("output missing protocol %q:\n%s", proto, out)
		}
	}
}
