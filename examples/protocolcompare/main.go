// Protocolcompare runs all four protocols of the paper's evaluation on
// the Apache workload and prints the latency/bandwidth trade-off in one
// table — a miniature of Figures 4 and 5. Snooping runs on the ordered
// tree (it cannot run on the torus); the others use the torus.
//
// The five simulations are declared as one plan and executed
// concurrently on the parallel engine; results come back in plan order.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tokencoherence"
)

func main() {
	plan := tokencoherence.Plan{
		Variants: []tokencoherence.Variant{
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoSnooping, Topo: tokencoherence.TopoTree}},
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoTokenB, Topo: tokencoherence.TopoTree}},
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoTokenB, Topo: tokencoherence.TopoTorus}},
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoHammer, Topo: tokencoherence.TopoTorus}},
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoDirectory, Topo: tokencoherence.TopoTorus}},
		},
		Workloads: []string{"apache"},
		Seeds:     []uint64{3},
		Ops:       2500,
		Warmup:    6000,
	}

	var eng tokencoherence.Engine // zero value: one worker per CPU
	results, err := eng.Execute(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tfabric\tcycles/txn\tavg miss\tbytes/miss\treissued")
	for _, r := range results {
		run := r.Run
		m := run.Misses
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%v\t%.0f\t%.2f%%\n",
			r.Point.Protocol, r.Point.Topo, run.CyclesPerTransaction(), run.AvgMissLatency(),
			run.BytesPerMiss(), m.Frac(m.ReissuedOnce+m.ReissuedMore+m.Persistent))
	}
	w.Flush()

	fmt.Println("\nReadings (the paper's headline results):")
	fmt.Println("  - TokenB on the torus runs fastest: no ordering point, no indirection.")
	fmt.Println("  - Snooping matches TokenB on the tree but cannot use the faster torus.")
	fmt.Println("  - Directory adds home indirection + directory latency to every cache-to-cache miss.")
	fmt.Println("  - Hammer avoids the directory lookup but pays broadcast + per-node acks in bandwidth.")
}
