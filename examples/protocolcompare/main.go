// Protocolcompare runs all four protocols of the paper's evaluation on
// the Apache workload and prints the latency/bandwidth trade-off in one
// table — a miniature of Figures 4 and 5. Snooping runs on the ordered
// tree (it cannot run on the torus); the others use the torus.
//
// The five simulations are declared as one plan and executed
// concurrently on the parallel engine; results come back in plan order.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"tokencoherence"
)

func main() {
	if err := run(os.Stdout, 2500, 6000); err != nil {
		log.Fatal(err)
	}
}

// run executes the four-protocol comparison at the given size; main and
// the smoke test call it.
func run(out io.Writer, ops, warmup int) error {
	plan := tokencoherence.Plan{
		Variants: []tokencoherence.Variant{
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoSnooping, Topo: tokencoherence.TopoTree}},
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoTokenB, Topo: tokencoherence.TopoTree}},
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoTokenB, Topo: tokencoherence.TopoTorus}},
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoHammer, Topo: tokencoherence.TopoTorus}},
			{Point: tokencoherence.Point{Protocol: tokencoherence.ProtoDirectory, Topo: tokencoherence.TopoTorus}},
		},
		Workloads: []string{"apache"},
		Seeds:     []uint64{3},
		Ops:       ops,
		Warmup:    warmup,
	}

	var eng tokencoherence.Engine // zero value: one worker per CPU
	results, err := eng.Execute(context.Background(), plan)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tfabric\tcycles/txn\tavg miss\tbytes/miss\treissued")
	for _, r := range results {
		run := r.Run
		m := run.Misses
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%v\t%.0f\t%.2f%%\n",
			r.Point.Protocol, r.Point.Topo, run.CyclesPerTransaction(), run.AvgMissLatency(),
			run.BytesPerMiss(), m.Frac(m.ReissuedOnce+m.ReissuedMore+m.Persistent))
	}
	w.Flush()

	fmt.Fprintln(out, "\nReadings (the paper's headline results):")
	fmt.Fprintln(out, "  - TokenB on the torus runs fastest: no ordering point, no indirection.")
	fmt.Fprintln(out, "  - Snooping matches TokenB on the tree but cannot use the faster torus.")
	fmt.Fprintln(out, "  - Directory adds home indirection + directory latency to every cache-to-cache miss.")
	fmt.Fprintln(out, "  - Hammer avoids the directory lookup but pays broadcast + per-node acks in bandwidth.")
	return nil
}
