// Protocolcompare runs all four protocols of the paper's evaluation on
// the Apache workload and prints the latency/bandwidth trade-off in one
// table — a miniature of Figures 4 and 5. Snooping runs on the ordered
// tree (it cannot run on the torus); the others use the torus.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tokencoherence"
)

func main() {
	type row struct {
		proto, topo string
	}
	rows := []row{
		{tokencoherence.ProtoSnooping, tokencoherence.TopoTree},
		{tokencoherence.ProtoTokenB, tokencoherence.TopoTree},
		{tokencoherence.ProtoTokenB, tokencoherence.TopoTorus},
		{tokencoherence.ProtoHammer, tokencoherence.TopoTorus},
		{tokencoherence.ProtoDirectory, tokencoherence.TopoTorus},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tfabric\tcycles/txn\tavg miss\tbytes/miss\treissued")
	for _, r := range rows {
		run, err := tokencoherence.Simulate(tokencoherence.Point{
			Protocol: r.proto,
			Topo:     r.topo,
			Workload: "apache",
			Ops:      2500,
			Warmup:   6000,
			Seed:     3,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := run.Misses
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%v\t%.0f\t%.2f%%\n",
			r.proto, r.topo, run.CyclesPerTransaction(), run.AvgMissLatency(),
			run.BytesPerMiss(), m.Frac(m.ReissuedOnce+m.ReissuedMore+m.Persistent))
	}
	w.Flush()

	fmt.Println("\nReadings (the paper's headline results):")
	fmt.Println("  - TokenB on the torus runs fastest: no ordering point, no indirection.")
	fmt.Println("  - Snooping matches TokenB on the tree but cannot use the faster torus.")
	fmt.Println("  - Directory adds home indirection + directory latency to every cache-to-cache miss.")
	fmt.Println("  - Hammer avoids the directory lookup but pays broadcast + per-node acks in bandwidth.")
}
