package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestScalingSmoke runs the scaling study on a tiny grid (4-8 procs).
func TestScalingSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 150, 150, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "broadcast does not scale") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
