// Scaling reproduces the paper's §6 question 5 answer interactively:
// "Can the TokenB protocol scale to an unlimited number of processors?
// No." It runs the uniform-sharing microbenchmark from 4 to 64
// processors — the paper's endpoint; the harness sweeps to 256 with
// `tokensim -experiment scaling -maxprocs 256` — and shows TokenB's
// broadcast traffic overtaking Directory's as the system grows, with
// Hammer's all-points traffic and the snooping-on-tree baseline
// (carried past 16 processors by the multi-level ordered tree)
// alongside for reference.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"tokencoherence/internal/harness"
)

func main() {
	if err := run(os.Stdout, 800, 1600, 64); err != nil {
		log.Fatal(err)
	}
}

// run executes the scaling study up to maxProcs; main and the smoke
// test call it.
func run(w io.Writer, ops, warmup, maxProcs int) error {
	// The grid (2 protocols x N system sizes) executes on the parallel
	// engine; Parallel: 0 uses one worker per CPU.
	rows, err := harness.Scaling(harness.Options{Ops: ops, Warmup: warmup, Parallel: 0}, maxProcs)
	if err != nil {
		return err
	}
	harness.PrintScaling(w, rows)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "TokenB's per-miss bytes grow with the broadcast fan-out (Θ(n) on the")
	fmt.Fprintln(w, "torus) while Directory's stay nearly flat, so the ratio marches toward")
	fmt.Fprintln(w, "the paper's 2x at 64 processors — broadcast does not scale, which is")
	fmt.Fprintln(w, "why §7 proposes TokenD and TokenM on the same correctness substrate.")
	fmt.Fprintln(w, "Hammer broadcasts and acks every miss, so it burns the most bandwidth")
	fmt.Fprintln(w, "of all; snooping rides the ordered tree past the paper's 16-processor")
	fmt.Fprintln(w, "cap, paying the root bottleneck instead of the broadcast fan-out.")
	return nil
}
