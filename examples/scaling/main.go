// Scaling reproduces the paper's §6 question 5 answer interactively:
// "Can the TokenB protocol scale to an unlimited number of processors?
// No." It runs the uniform-sharing microbenchmark from 4 to 32
// processors (64 in the full harness) and shows TokenB's broadcast
// traffic overtaking Directory's as the system grows, while its latency
// advantage shrinks.
package main

import (
	"fmt"
	"log"
	"os"

	"tokencoherence/internal/harness"
)

func main() {
	// The grid (2 protocols x 4 system sizes) executes on the parallel
	// engine; Parallel: 0 uses one worker per CPU.
	rows, err := harness.Scaling(harness.Options{Ops: 1200, Warmup: 2500, Parallel: 0}, 32)
	if err != nil {
		log.Fatal(err)
	}
	harness.PrintScaling(os.Stdout, rows)
	fmt.Println()
	fmt.Println("TokenB's per-miss bytes grow with the broadcast fan-out (Θ(n) on the")
	fmt.Println("torus) while Directory's stay nearly flat, so the ratio marches toward")
	fmt.Println("the paper's 2x at 64 processors — broadcast does not scale, which is")
	fmt.Println("why §7 proposes TokenD and TokenM on the same correctness substrate.")
}
