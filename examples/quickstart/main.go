// Quickstart: simulate the paper's 16-processor system running the OLTP
// workload under TokenB on the unordered torus, and print the headline
// statistics. This is the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"tokencoherence"
)

func main() {
	run, err := tokencoherence.Simulate(tokencoherence.Point{
		Protocol: tokencoherence.ProtoTokenB,
		Topo:     tokencoherence.TopoTorus,
		Workload: "oltp",
		Ops:      3000,
		Warmup:   6000,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := run.Misses
	fmt.Println("TokenB / torus / OLTP (16 processors)")
	fmt.Printf("  runtime:           %.1f cycles per transaction\n", run.CyclesPerTransaction())
	fmt.Printf("  avg miss latency:  %v\n", run.AvgMissLatency())
	fmt.Printf("  traffic:           %.1f bytes per miss\n", run.BytesPerMiss())
	fmt.Printf("  transient success: %.2f%% of %d misses on first attempt\n",
		m.Frac(m.NotReissued()), m.Issued)
	fmt.Printf("  reissued:          %.2f%% once, %.2f%% more than once\n",
		m.Frac(m.ReissuedOnce), m.Frac(m.ReissuedMore))
	fmt.Printf("  persistent:        %.3f%% fell back to the correctness substrate\n",
		m.Frac(m.Persistent))
}
