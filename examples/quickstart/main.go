// Quickstart: simulate the paper's 16-processor system running the OLTP
// workload under TokenB on the unordered torus, and print the headline
// statistics. This is the smallest complete use of the public API.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"tokencoherence"
)

func main() {
	if err := run(os.Stdout, 3000, 6000); err != nil {
		log.Fatal(err)
	}
}

// run simulates the quickstart point at the given size and prints the
// headline statistics; main and the smoke test call it.
func run(w io.Writer, ops, warmup int) error {
	run, err := tokencoherence.Simulate(tokencoherence.Point{
		Protocol: tokencoherence.ProtoTokenB,
		Topo:     tokencoherence.TopoTorus,
		Workload: "oltp",
		Ops:      ops,
		Warmup:   warmup,
		Seed:     42,
	})
	if err != nil {
		return err
	}

	m := run.Misses
	fmt.Fprintln(w, "TokenB / torus / OLTP (16 processors)")
	fmt.Fprintf(w, "  runtime:           %.1f cycles per transaction\n", run.CyclesPerTransaction())
	fmt.Fprintf(w, "  avg miss latency:  %v\n", run.AvgMissLatency())
	fmt.Fprintf(w, "  traffic:           %.1f bytes per miss\n", run.BytesPerMiss())
	fmt.Fprintf(w, "  transient success: %.2f%% of %d misses on first attempt\n",
		m.Frac(m.NotReissued()), m.Issued)
	fmt.Fprintf(w, "  reissued:          %.2f%% once, %.2f%% more than once\n",
		m.Frac(m.ReissuedOnce), m.Frac(m.ReissuedMore))
	fmt.Fprintf(w, "  persistent:        %.3f%% fell back to the correctness substrate\n",
		m.Frac(m.Persistent))
	return nil
}
