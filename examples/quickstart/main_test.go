package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartSmoke runs the example end to end at a tiny size.
func TestQuickstartSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 200, 200); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TokenB / torus / OLTP") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}
