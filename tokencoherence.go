// Package tokencoherence is a Go reproduction of "Token Coherence:
// Decoupling Performance and Correctness" (Martin, Hill & Wood, ISCA
// 2003): a deterministic discrete-event simulator of a glueless
// shared-memory multiprocessor with four cache-coherence protocols —
// TokenB (the paper's contribution), traditional Snooping, a full-map
// Directory, and an AMD-Hammer-like broadcast protocol — on ordered-tree
// and unordered-torus interconnects, plus the TokenD and TokenM
// performance protocols the paper sketches.
//
// This file is the public facade: it re-exports the configuration,
// experiment harness, and workload types from the internal packages so
// that downstream users never import tokencoherence/internal/... paths.
//
// # Quick start
//
// Simulate one point (see ExampleSimulate for the compiled version):
//
//	run, err := tokencoherence.Simulate(tokencoherence.Point{
//	    Protocol: tokencoherence.ProtoTokenB,
//	    Topo:     tokencoherence.TopoTorus,
//	    Workload: "oltp",
//	    Ops:      4000,
//	    Warmup:   8000,
//	    Seed:     1,
//	})
//	fmt.Println(run.CyclesPerTransaction(), run.BytesPerMiss())
//
// or reproduce a whole table/figure:
//
//	tokencoherence.RunExperiment(os.Stdout, "table2", tokencoherence.Options{})
//
// # Extending the simulator
//
// Every component of a simulation point — protocol, token performance
// policy, topology, workload — resolves through a component registry,
// so new components plug in without touching the engine. This is the
// paper's thesis as an API: the token-counting substrate guarantees
// safety and starvation freedom no matter where requests are sent, so
// the performance side is an open design space (§7).
//
//   - RegisterPolicy publishes a destination-set policy (an
//     implementation of Policy) and makes it runnable as a protocol of
//     the same name on the unmodified correctness substrate.
//   - RegisterTopology publishes an interconnect fabric (an
//     implementation of Topology).
//   - RegisterWorkload publishes a memory-reference generator.
//   - RegisterProtocol publishes a from-scratch protocol for users who
//     build their own controllers.
//   - RegisterProbe publishes a measurement probe that subscribes to
//     simulation events and derives new named metrics, selectable in
//     CSV output via MetricColumn (see MetricSchema for discovery).
//
// Components lists everything registered; Point.Validate (run
// automatically at plan expansion) rejects unknown names with the
// registered alternatives. See Example_extension for a custom
// destination-set predictor and a ring topology registered and run
// entirely through this package.
package tokencoherence

import (
	"fmt"
	"io"
	"strings"

	"tokencoherence/internal/core"
	"tokencoherence/internal/engine"
	"tokencoherence/internal/harness"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/resultstore"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/trace"
	"tokencoherence/internal/workload"
)

// Protocol identifiers accepted by Point.Protocol. These are the
// built-in registrations; Components().Protocols lists the full set
// including user-registered protocols.
const (
	ProtoTokenB    = engine.ProtoTokenB
	ProtoSnooping  = engine.ProtoSnooping
	ProtoDirectory = engine.ProtoDirectory
	ProtoHammer    = engine.ProtoHammer
	ProtoTokenD    = engine.ProtoTokenD
	ProtoTokenM    = engine.ProtoTokenM

	// Hierarchical protocols, built from topology cluster metadata
	// (both built-in fabrics expose it: tree root-child subtrees,
	// torus rows).
	ProtoDir2         = engine.ProtoDir2
	ProtoRegionFilter = engine.ProtoRegionFilter
)

// Topology identifiers accepted by Point.Topo (built-ins; see
// Components().Topologies for the full set).
const (
	TopoTree  = engine.TopoTree
	TopoTorus = engine.TopoTorus
)

// Config holds the simulated machine's parameters (paper Table 1).
type Config = machine.Config

// DefaultConfig returns the paper's 16-processor target system.
func DefaultConfig() Config { return machine.DefaultConfig() }

// Point describes one simulation configuration. Its Protocol, Topo and
// Workload name registered components; Validate reports unknown names
// with the registered alternatives.
type Point = harness.Point

// Options tunes experiment sizes (operations, warmup, seeds, processors).
type Options = harness.Options

// Run holds one simulation's statistics.
type Run = stats.Run

// Simulate executes one simulation point; Token Coherence runs are
// audited for token conservation and every run is checked by the
// coherence oracle.
func Simulate(pt Point) (*Run, error) { return harness.Run(pt) }

// SimulateMetrics executes one simulation point and additionally returns
// its metric snapshot: every named metric the machine, interconnect,
// protocol, and registered probes published, readable by name (see
// MetricSchema for discovery).
func SimulateMetrics(pt Point) (*Run, *MetricSnapshot, error) { return harness.RunMetrics(pt) }

// MetricSchema reports the named metrics the point's simulation will
// expose — without running it. The schema is deterministic for a fixed
// set of registered components and probes; different protocols publish
// different protocol-specific metrics.
func MetricSchema(pt Point) ([]MetricDesc, error) { return engine.MetricSchema(pt) }

// Experiments lists the reproducible paper experiments.
func Experiments() []string { return harness.Experiments() }

// RunExperiment reproduces one paper table or figure and prints its rows
// to w. Valid names are returned by Experiments.
func RunExperiment(w io.Writer, name string, opt Options) error {
	return harness.RunExperiment(w, name, opt)
}

// Plan declaratively describes a cartesian grid of simulation points
// (variants x workloads x mutations x bandwidth x seeds). Expansion
// validates every point's component names against the registry.
type Plan = engine.Plan

// Variant is one named protocol/topology configuration in a Plan.
type Variant = engine.Variant

// Mutation is a named Config adjustment used as a Plan axis.
type Mutation = engine.Mutation

// Engine executes a Plan on a bounded worker pool with deterministic
// result ordering; the zero value runs one worker per CPU.
type Engine = engine.Engine

// Job is one expanded plan job.
type Job = engine.Job

// Result is one executed plan job.
type Result = engine.Result

// Sink consumes a plan's results in deterministic order.
type Sink = engine.Sink

// CSVSink, JSONLSink and AggregateSink are the built-in sinks.
type (
	CSVSink       = engine.CSVSink
	JSONLSink     = engine.JSONLSink
	AggregateSink = engine.AggregateSink
)

// Column describes one CSVSink column.
type Column = engine.Column

// TagColumn reads a mutation tag as its own CSV column.
func TagColumn(name string) Column { return engine.TagColumn(name) }

// MetricColumn selects any published metric by name as a CSV column,
// rendered with the metric's declared format.
func MetricColumn(name string) Column { return engine.MetricColumn(name) }

// ColumnByName resolves a column name: point-identity columns first,
// then metrics, then mutation tags.
func ColumnByName(name string) Column { return engine.ColumnByName(name) }

// ColumnsByName resolves a list of column names (see ColumnByName).
func ColumnsByName(names []string) []Column { return engine.ColumnsByName(names) }

// DefaultColumns are CSVSink's standard point-identity and metric
// columns.
func DefaultColumns() []Column { return engine.DefaultColumns() }

// Grid returns one Plan variant per protocol x topology pair.
func Grid(protocols, topos []string) []Variant { return engine.Grid(protocols, topos) }

// WorkloadParams describes a synthetic commercial workload.
type WorkloadParams = workload.Params

// Workloads lists the registered workloads: the paper's three commercial
// mixes, barnes, and any workloads added with RegisterWorkload.
func Workloads() []string { return registry.WorkloadNames() }

// Workload returns the named workload's parameters for inspection or
// customization. It resolves through the component registry, so the
// answer is consistent with Workloads(): an unregistered name errors
// with the registered alternatives, and a registered workload whose
// generator factory carries no parameters (most RegisterWorkload
// registrations) errors with a message saying exactly that instead of
// pretending the workload does not exist.
func Workload(name string) (WorkloadParams, error) {
	w, ok := registry.LookupWorkload(name)
	if !ok {
		return WorkloadParams{}, fmt.Errorf("tokencoherence: unknown workload %q (registered: %s)",
			name, strings.Join(registry.WorkloadNames(), ", "))
	}
	if w.Params == nil {
		return WorkloadParams{}, fmt.Errorf("tokencoherence: workload %q is an opaque generator factory with no inspectable parameters", name)
	}
	return *w.Params, nil
}

// --- Extension API -------------------------------------------------------
//
// The aliases below expose exactly the internal types an extension
// needs, so custom policies, topologies, workloads, and protocols are
// written against this package alone.

// NodeID identifies one processor node.
type NodeID = msg.NodeID

// Unit addresses a controller within a node (cache, memory, arbiter).
type Unit = msg.Unit

// Unit values a policy's destination sets use.
const (
	UnitCache = msg.UnitCache
	UnitMem   = msg.UnitMem
)

// Port addresses one controller on the interconnect: a (node, unit)
// pair.
type Port = msg.Port

// Addr is a byte address; Block a cache-block number.
type (
	Addr  = msg.Addr
	Block = msg.Block
)

// BlockOf returns the cache block containing a byte address.
func BlockOf(a Addr) Block { return msg.BlockOf(a) }

// Message is one interconnect message; policies observe incoming
// token-carrying messages to train predictors.
type Message = msg.Message

// MSHR is an outstanding miss's state (the block being requested and the
// progress of its token collection).
type MSHR = machine.MSHR

// TokenController is the Token Coherence cache controller a Policy
// steers; it exposes the node's ID, the machine Config, and HomePort for
// building destination sets.
type TokenController = core.TokenB

// Policy decides where the Token Coherence substrate sends transient
// requests (the TokenB/TokenD/TokenM design space of paper §7). A policy
// that guesses wrong only causes reissues — the substrate keeps every
// destination set safe. Register implementations with RegisterPolicy.
type Policy = core.Policy

// Topology is a static interconnect graph with deterministic routing;
// see the package documentation of the built-in tree and torus for the
// multicast-tree requirement. Register implementations with
// RegisterTopology.
type Topology = topology.Topology

// LinkID names one directed interconnect link (dense in [0, NumLinks)).
type LinkID = topology.LinkID

// Op is one processor memory operation produced by a Generator.
type Op = machine.Op

// Source is the deterministic per-processor random stream generators
// draw from.
type Source = sim.Source

// Time is a simulated time or duration in picoseconds (observer events
// carry it).
type Time = sim.Time

// Common durations expressed in Time units.
const (
	Picosecond  = sim.Picosecond
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// Category classifies interconnect messages for traffic accounting.
type Category = msg.Category

// Traffic categories (paper Figures 4b, 5b).
const (
	CatRequest = msg.CatRequest
	CatReissue = msg.CatReissue
	CatControl = msg.CatControl
	CatData    = msg.CatData
)

// Generator produces the per-processor operation stream of a workload.
// Register implementations with RegisterWorkload.
type Generator = machine.Generator

// System is the simulated machine under construction, passed to a
// ProtocolSpec's Build.
type System = machine.System

// Controller is the processor-facing side of a coherence controller.
type Controller = machine.Controller

// PolicySpec registers a token performance policy: a name, whether the
// home memories keep soft-state hints, and a factory producing one fresh
// Policy per cache controller.
type PolicySpec = registry.TokenPolicy

// ProtocolSpec registers a from-scratch protocol: a name, the
// interconnect-ordering capability it requires, and a Build function
// constructing its controllers (plus an optional end-of-run audit).
type ProtocolSpec = registry.Protocol

// TopologySpec registers an interconnect fabric: a name, whether it
// delivers broadcasts in a total order, and a factory building it for a
// processor count.
type TopologySpec = registry.Topology

// WorkloadSpec registers a workload: a name and a factory building a
// fresh Generator for a processor count (plus optional inspectable
// Params).
type WorkloadSpec = registry.Workload

// --- Metrics & observability ---------------------------------------------

// MetricDesc is one metric's schema entry: name, unit, help text, and
// CSV format verb.
type MetricDesc = stats.Desc

// MetricSet is a run's named-metric registry; probes register the
// metrics they derive into it.
type MetricSet = stats.MetricSet

// MetricSnapshot is an immutable capture of a run's metrics, readable by
// name (Result.Metrics carries one per executed plan job).
type MetricSnapshot = stats.Snapshot

// CounterMetric is a monotonically increasing event count registered in
// a MetricSet.
type CounterMetric = stats.Counter

// GaugeMetric is a point-in-time value registered in a MetricSet.
type GaugeMetric = stats.Gauge

// LatencyHistogram is a power-of-two-bucketed latency histogram;
// MetricSet.Histogram registers one whose snapshot value is its mean.
type LatencyHistogram = stats.Histogram

// Observer subscribes to simulation events (miss issue/complete,
// reissue, persistent-request activation/deactivation, token transfer,
// network hop, measurement start). All fields are optional; with no
// observers attached the simulation hot path is untouched.
type Observer = stats.Observer

// MergeObservers fans events out to any number of observers with one
// dispatch level; nil operands are skipped and events nobody watches
// stay on the nil-field fast path.
func MergeObservers(obs ...*Observer) *Observer { return stats.MergeAllObservers(obs...) }

// --- Tracing & debugging -------------------------------------------------

// Tracer stitches observer events into per-transaction spans and
// exports them as Chrome trace-event JSON (chrome://tracing, Perfetto).
// Attach its Observer() to a simulation; warmup events are discarded at
// the measurement boundary, so the exported span count equals the run's
// misses metric.
type Tracer = trace.Tracer

// TracerConfig tunes a Tracer (Hops opts into per-link network-hop
// instants, roughly 100x more events).
type TracerConfig = trace.TracerConfig

// NewTracer returns a transaction tracer for one simulation.
func NewTracer(cfg TracerConfig) *Tracer { return trace.NewTracer(cfg) }

// FlightRecorder keeps the last N protocol events in a fixed ring with
// zero steady-state allocations and dumps them when a run fails or a
// transaction exceeds its starvation deadline. Every simulation built
// by this package arms one by default (Config.RecorderSize,
// Config.StarvationDeadline, Config.DebugLog tune it; a negative size
// disables it).
type FlightRecorder = trace.FlightRecorder

// RecorderConfig configures a standalone FlightRecorder.
type RecorderConfig = trace.RecorderConfig

// NewFlightRecorder returns an armed flight recorder.
func NewFlightRecorder(cfg RecorderConfig) *FlightRecorder { return trace.NewFlightRecorder(cfg) }

// Flight-recorder defaults (see RecorderConfig).
const (
	DefaultRecorderSize       = trace.DefaultRecorderSize
	DefaultStarvationDeadline = trace.DefaultStarvationDeadline
)

// Progress is one engine progress report, delivered after each
// completed plan job (Engine.Progress receives it on a single
// goroutine).
type Progress = engine.Progress

// --- Result store (sweep-as-a-service) -----------------------------------

// Store is the engine's content-addressed result archive interface:
// set Engine.Store (and Engine.Reuse for resume semantics) to archive
// every computed point under its PointKey and recall archived points
// instead of re-simulating them, with byte-identical sink output.
type Store = engine.Store

// ResultStore is the durable file-backed Store: one JSON file per
// result, written atomically, safe for concurrent engines and
// cooperating processes sharing the directory (the sweep command's
// -store/-resume/-shard flags build on it).
type ResultStore = resultstore.Store

// OpenResultStore creates (if needed) and opens the result store rooted
// at dir.
func OpenResultStore(dir string) (*ResultStore, error) { return resultstore.Open(dir) }

// PointKey returns a Point's content hash — a hex SHA-256 over its
// fully-resolved simulation inputs salted with CodeVersion — which is
// its address in a Store. Points carrying an opaque Gen/NewGen return
// ErrUncacheable unless Point.GenID names the generator's content.
func PointKey(pt Point) (string, error) { return engine.PointKey(pt) }

// CodeVersion is the simulator-behavior salt mixed into every PointKey;
// it changes whenever simulation results can change, invalidating older
// archives.
const CodeVersion = engine.CodeVersion

// ErrUncacheable marks a Point with no stable content identity (an
// anonymous generator closure); the engine simulates such points
// normally but never archives them.
var ErrUncacheable = engine.ErrUncacheable

// ProbeSpec registers a measurement probe: a name plus a New function
// called once per simulation with the run's MetricSet, returning the
// observer the probe wants attached (or nil for derived-only probes).
// Registered probes attach to every simulation run through this package.
type ProbeSpec = registry.Probe

// RegisterProbe publishes a measurement probe. Probes derive new named
// metrics from observer events — latency CDFs, per-category message
// rates, anything the fixed statistics do not carry — and their metrics
// are selectable in CSV output via MetricColumn and serialized by
// JSONLSink like the built-ins. It panics on a duplicate or empty name.
func RegisterProbe(spec ProbeSpec) { registry.RegisterProbe(spec) }

// RegisterPolicy publishes a token performance policy and makes it
// runnable as a protocol of the same name on the unmodified correctness
// substrate: Point{Protocol: spec.Name} builds token-counting caches and
// memories, persistent-request arbiters, and the conservation audit,
// with spec.New's policies steering transient requests. It panics on a
// duplicate or empty name.
func RegisterPolicy(spec PolicySpec) { registry.RegisterPolicy(spec) }

// RegisterProtocol publishes a protocol built from scratch. Most
// extensions want RegisterPolicy instead, which inherits the substrate's
// correctness guarantees. It panics on a duplicate or empty name.
func RegisterProtocol(spec ProtocolSpec) { registry.RegisterProtocol(spec) }

// RegisterTopology publishes an interconnect fabric under spec.Name;
// spec.Ordered must match the built fabric's Ordered() (the engine
// verifies this). It panics on a duplicate or empty name.
func RegisterTopology(spec TopologySpec) { registry.RegisterTopology(spec) }

// RegisterWorkload publishes a workload under spec.Name. It panics on a
// duplicate or empty name.
func RegisterWorkload(spec WorkloadSpec) { registry.RegisterWorkload(spec) }

// ComponentSet enumerates the registered component names, in
// deterministic registration order (built-ins first).
type ComponentSet struct {
	Protocols  []string
	Policies   []string
	Topologies []string
	Workloads  []string
	Probes     []string
}

// Components lists every registered protocol, token performance policy,
// topology, workload, and probe.
func Components() ComponentSet {
	return ComponentSet{
		Protocols:  registry.ProtocolNames(),
		Policies:   registry.PolicyNames(),
		Topologies: registry.TopologyNames(),
		Workloads:  registry.WorkloadNames(),
		Probes:     registry.ProbeNames(),
	}
}
