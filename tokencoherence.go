// Package tokencoherence is a Go reproduction of "Token Coherence:
// Decoupling Performance and Correctness" (Martin, Hill & Wood, ISCA
// 2003): a deterministic discrete-event simulator of a glueless
// shared-memory multiprocessor with four cache-coherence protocols —
// TokenB (the paper's contribution), traditional Snooping, a full-map
// Directory, and an AMD-Hammer-like broadcast protocol — on ordered-tree
// and unordered-torus interconnects, plus the TokenD and TokenM
// performance protocols the paper sketches.
//
// This file is the public facade: it re-exports the configuration,
// experiment harness, and workload types from the internal packages so
// that downstream users never import tokencoherence/internal/... paths.
//
// # Quick start
//
//	run, err := tokencoherence.Simulate(tokencoherence.Point{
//	    Protocol: tokencoherence.ProtoTokenB,
//	    Topo:     tokencoherence.TopoTorus,
//	    Workload: "oltp",
//	    Ops:      4000,
//	    Warmup:   8000,
//	    Seed:     1,
//	})
//	fmt.Println(run.CyclesPerTransaction(), run.BytesPerMiss())
//
// or reproduce a whole table/figure:
//
//	tokencoherence.RunExperiment(os.Stdout, "table2", tokencoherence.Options{})
package tokencoherence

import (
	"io"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/harness"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/workload"
)

// Protocol identifiers accepted by Point.Protocol.
const (
	ProtoTokenB    = harness.ProtoTokenB
	ProtoSnooping  = harness.ProtoSnooping
	ProtoDirectory = harness.ProtoDirectory
	ProtoHammer    = harness.ProtoHammer
	ProtoTokenD    = harness.ProtoTokenD
	ProtoTokenM    = harness.ProtoTokenM
)

// Topology identifiers accepted by Point.Topo.
const (
	TopoTree  = harness.TopoTree
	TopoTorus = harness.TopoTorus
)

// Config holds the simulated machine's parameters (paper Table 1).
type Config = machine.Config

// DefaultConfig returns the paper's 16-processor target system.
func DefaultConfig() Config { return machine.DefaultConfig() }

// Point describes one simulation configuration.
type Point = harness.Point

// Options tunes experiment sizes (operations, warmup, seeds, processors).
type Options = harness.Options

// Run holds one simulation's statistics.
type Run = stats.Run

// Simulate executes one simulation point; Token Coherence runs are
// audited for token conservation and every run is checked by the
// coherence oracle.
func Simulate(pt Point) (*Run, error) { return harness.Run(pt) }

// Experiments lists the reproducible paper experiments.
func Experiments() []string { return harness.Experiments() }

// RunExperiment reproduces one paper table or figure and prints its rows
// to w. Valid names are returned by Experiments.
func RunExperiment(w io.Writer, name string, opt Options) error {
	return harness.RunExperiment(w, name, opt)
}

// Plan declaratively describes a cartesian grid of simulation points
// (variants x workloads x mutations x bandwidth x seeds).
type Plan = engine.Plan

// Variant is one named protocol/topology configuration in a Plan.
type Variant = engine.Variant

// Mutation is a named Config adjustment used as a Plan axis.
type Mutation = engine.Mutation

// Engine executes a Plan on a bounded worker pool with deterministic
// result ordering; the zero value runs one worker per CPU.
type Engine = engine.Engine

// Job is one expanded plan job.
type Job = engine.Job

// Result is one executed plan job.
type Result = engine.Result

// Sink consumes a plan's results in deterministic order.
type Sink = engine.Sink

// CSVSink, JSONLSink and AggregateSink are the built-in sinks.
type (
	CSVSink       = engine.CSVSink
	JSONLSink     = engine.JSONLSink
	AggregateSink = engine.AggregateSink
)

// Column describes one CSVSink column.
type Column = engine.Column

// TagColumn reads a mutation tag as its own CSV column.
func TagColumn(name string) Column { return engine.TagColumn(name) }

// DefaultColumns are CSVSink's standard point-identity and metric
// columns.
func DefaultColumns() []Column { return engine.DefaultColumns() }

// Grid returns one Plan variant per protocol x topology pair.
func Grid(protocols, topos []string) []Variant { return engine.Grid(protocols, topos) }

// WorkloadParams describes a synthetic commercial workload.
type WorkloadParams = workload.Params

// Workloads lists the paper's commercial workloads (apache, oltp,
// specjbb).
func Workloads() []string { return workload.Names() }

// Workload returns the named workload's parameters for inspection or
// customization.
func Workload(name string) (WorkloadParams, error) { return workload.Commercial(name) }
