// Package tokencoherence is a Go reproduction of "Token Coherence:
// Decoupling Performance and Correctness" (Martin, Hill & Wood, ISCA
// 2003): a deterministic discrete-event simulator of a glueless
// shared-memory multiprocessor with four cache-coherence protocols —
// TokenB (the paper's contribution), traditional Snooping, a full-map
// Directory, and an AMD-Hammer-like broadcast protocol — on ordered-tree
// and unordered-torus interconnects, plus the TokenD and TokenM
// performance protocols the paper sketches.
//
// This file is the public facade: it re-exports the configuration,
// experiment harness, and workload types from the internal packages so
// that downstream users never import tokencoherence/internal/... paths.
//
// # Quick start
//
// Simulate one point (see ExampleSimulate for the compiled version):
//
//	run, err := tokencoherence.Simulate(tokencoherence.Point{
//	    Protocol: tokencoherence.ProtoTokenB,
//	    Topo:     tokencoherence.TopoTorus,
//	    Workload: "oltp",
//	    Ops:      4000,
//	    Warmup:   8000,
//	    Seed:     1,
//	})
//	fmt.Println(run.CyclesPerTransaction(), run.BytesPerMiss())
//
// or reproduce a whole table/figure:
//
//	tokencoherence.RunExperiment(os.Stdout, "table2", tokencoherence.Options{})
//
// # Extending the simulator
//
// Every component of a simulation point — protocol, token performance
// policy, topology, workload — resolves through a component registry,
// so new components plug in without touching the engine. This is the
// paper's thesis as an API: the token-counting substrate guarantees
// safety and starvation freedom no matter where requests are sent, so
// the performance side is an open design space (§7).
//
//   - RegisterPolicy publishes a destination-set policy (an
//     implementation of Policy) and makes it runnable as a protocol of
//     the same name on the unmodified correctness substrate.
//   - RegisterTopology publishes an interconnect fabric (an
//     implementation of Topology).
//   - RegisterWorkload publishes a memory-reference generator.
//   - RegisterProtocol publishes a from-scratch protocol for users who
//     build their own controllers.
//
// Components lists everything registered; Point.Validate (run
// automatically at plan expansion) rejects unknown names with the
// registered alternatives. See Example_extension for a custom
// destination-set predictor and a ring topology registered and run
// entirely through this package.
package tokencoherence

import (
	"io"

	"tokencoherence/internal/core"
	"tokencoherence/internal/engine"
	"tokencoherence/internal/harness"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/topology"
	"tokencoherence/internal/workload"
)

// Protocol identifiers accepted by Point.Protocol. These are the
// built-in registrations; Components().Protocols lists the full set
// including user-registered protocols.
const (
	ProtoTokenB    = engine.ProtoTokenB
	ProtoSnooping  = engine.ProtoSnooping
	ProtoDirectory = engine.ProtoDirectory
	ProtoHammer    = engine.ProtoHammer
	ProtoTokenD    = engine.ProtoTokenD
	ProtoTokenM    = engine.ProtoTokenM
)

// Topology identifiers accepted by Point.Topo (built-ins; see
// Components().Topologies for the full set).
const (
	TopoTree  = engine.TopoTree
	TopoTorus = engine.TopoTorus
)

// Config holds the simulated machine's parameters (paper Table 1).
type Config = machine.Config

// DefaultConfig returns the paper's 16-processor target system.
func DefaultConfig() Config { return machine.DefaultConfig() }

// Point describes one simulation configuration. Its Protocol, Topo and
// Workload name registered components; Validate reports unknown names
// with the registered alternatives.
type Point = harness.Point

// Options tunes experiment sizes (operations, warmup, seeds, processors).
type Options = harness.Options

// Run holds one simulation's statistics.
type Run = stats.Run

// Simulate executes one simulation point; Token Coherence runs are
// audited for token conservation and every run is checked by the
// coherence oracle.
func Simulate(pt Point) (*Run, error) { return harness.Run(pt) }

// Experiments lists the reproducible paper experiments.
func Experiments() []string { return harness.Experiments() }

// RunExperiment reproduces one paper table or figure and prints its rows
// to w. Valid names are returned by Experiments.
func RunExperiment(w io.Writer, name string, opt Options) error {
	return harness.RunExperiment(w, name, opt)
}

// Plan declaratively describes a cartesian grid of simulation points
// (variants x workloads x mutations x bandwidth x seeds). Expansion
// validates every point's component names against the registry.
type Plan = engine.Plan

// Variant is one named protocol/topology configuration in a Plan.
type Variant = engine.Variant

// Mutation is a named Config adjustment used as a Plan axis.
type Mutation = engine.Mutation

// Engine executes a Plan on a bounded worker pool with deterministic
// result ordering; the zero value runs one worker per CPU.
type Engine = engine.Engine

// Job is one expanded plan job.
type Job = engine.Job

// Result is one executed plan job.
type Result = engine.Result

// Sink consumes a plan's results in deterministic order.
type Sink = engine.Sink

// CSVSink, JSONLSink and AggregateSink are the built-in sinks.
type (
	CSVSink       = engine.CSVSink
	JSONLSink     = engine.JSONLSink
	AggregateSink = engine.AggregateSink
)

// Column describes one CSVSink column.
type Column = engine.Column

// TagColumn reads a mutation tag as its own CSV column.
func TagColumn(name string) Column { return engine.TagColumn(name) }

// DefaultColumns are CSVSink's standard point-identity and metric
// columns.
func DefaultColumns() []Column { return engine.DefaultColumns() }

// Grid returns one Plan variant per protocol x topology pair.
func Grid(protocols, topos []string) []Variant { return engine.Grid(protocols, topos) }

// WorkloadParams describes a synthetic commercial workload.
type WorkloadParams = workload.Params

// Workloads lists the registered workloads: the paper's three commercial
// mixes, barnes, and any workloads added with RegisterWorkload.
func Workloads() []string { return registry.WorkloadNames() }

// Workload returns the named built-in workload's parameters for
// inspection or customization (workloads added with RegisterWorkload
// are opaque generator factories and have no Params).
func Workload(name string) (WorkloadParams, error) { return workload.Commercial(name) }

// --- Extension API -------------------------------------------------------
//
// The aliases below expose exactly the internal types an extension
// needs, so custom policies, topologies, workloads, and protocols are
// written against this package alone.

// NodeID identifies one processor node.
type NodeID = msg.NodeID

// Unit addresses a controller within a node (cache, memory, arbiter).
type Unit = msg.Unit

// Unit values a policy's destination sets use.
const (
	UnitCache = msg.UnitCache
	UnitMem   = msg.UnitMem
)

// Port addresses one controller on the interconnect: a (node, unit)
// pair.
type Port = msg.Port

// Addr is a byte address; Block a cache-block number.
type (
	Addr  = msg.Addr
	Block = msg.Block
)

// BlockOf returns the cache block containing a byte address.
func BlockOf(a Addr) Block { return msg.BlockOf(a) }

// Message is one interconnect message; policies observe incoming
// token-carrying messages to train predictors.
type Message = msg.Message

// MSHR is an outstanding miss's state (the block being requested and the
// progress of its token collection).
type MSHR = machine.MSHR

// TokenController is the Token Coherence cache controller a Policy
// steers; it exposes the node's ID, the machine Config, and HomePort for
// building destination sets.
type TokenController = core.TokenB

// Policy decides where the Token Coherence substrate sends transient
// requests (the TokenB/TokenD/TokenM design space of paper §7). A policy
// that guesses wrong only causes reissues — the substrate keeps every
// destination set safe. Register implementations with RegisterPolicy.
type Policy = core.Policy

// Topology is a static interconnect graph with deterministic routing;
// see the package documentation of the built-in tree and torus for the
// multicast-tree requirement. Register implementations with
// RegisterTopology.
type Topology = topology.Topology

// LinkID names one directed interconnect link (dense in [0, NumLinks)).
type LinkID = topology.LinkID

// Op is one processor memory operation produced by a Generator.
type Op = machine.Op

// Source is the deterministic per-processor random stream generators
// draw from.
type Source = sim.Source

// Generator produces the per-processor operation stream of a workload.
// Register implementations with RegisterWorkload.
type Generator = machine.Generator

// System is the simulated machine under construction, passed to a
// ProtocolSpec's Build.
type System = machine.System

// Controller is the processor-facing side of a coherence controller.
type Controller = machine.Controller

// PolicySpec registers a token performance policy: a name, whether the
// home memories keep soft-state hints, and a factory producing one fresh
// Policy per cache controller.
type PolicySpec = registry.TokenPolicy

// ProtocolSpec registers a from-scratch protocol: a name, the
// interconnect-ordering capability it requires, and a Build function
// constructing its controllers (plus an optional end-of-run audit).
type ProtocolSpec = registry.Protocol

// TopologySpec registers an interconnect fabric: a name, whether it
// delivers broadcasts in a total order, and a factory building it for a
// processor count.
type TopologySpec = registry.Topology

// WorkloadSpec registers a workload: a name and a factory building a
// fresh Generator for a processor count.
type WorkloadSpec = registry.Workload

// RegisterPolicy publishes a token performance policy and makes it
// runnable as a protocol of the same name on the unmodified correctness
// substrate: Point{Protocol: spec.Name} builds token-counting caches and
// memories, persistent-request arbiters, and the conservation audit,
// with spec.New's policies steering transient requests. It panics on a
// duplicate or empty name.
func RegisterPolicy(spec PolicySpec) { registry.RegisterPolicy(spec) }

// RegisterProtocol publishes a protocol built from scratch. Most
// extensions want RegisterPolicy instead, which inherits the substrate's
// correctness guarantees. It panics on a duplicate or empty name.
func RegisterProtocol(spec ProtocolSpec) { registry.RegisterProtocol(spec) }

// RegisterTopology publishes an interconnect fabric under spec.Name;
// spec.Ordered must match the built fabric's Ordered() (the engine
// verifies this). It panics on a duplicate or empty name.
func RegisterTopology(spec TopologySpec) { registry.RegisterTopology(spec) }

// RegisterWorkload publishes a workload under spec.Name. It panics on a
// duplicate or empty name.
func RegisterWorkload(spec WorkloadSpec) { registry.RegisterWorkload(spec) }

// ComponentSet enumerates the registered component names, in
// deterministic registration order (built-ins first).
type ComponentSet struct {
	Protocols  []string
	Policies   []string
	Topologies []string
	Workloads  []string
}

// Components lists every registered protocol, token performance policy,
// topology, and workload.
func Components() ComponentSet {
	return ComponentSet{
		Protocols:  registry.ProtocolNames(),
		Policies:   registry.PolicyNames(),
		Topologies: registry.TopologyNames(),
		Workloads:  registry.WorkloadNames(),
	}
}
