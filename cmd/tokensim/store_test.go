package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestTokensimStoreRecall: a custom point run twice against the same
// -store must print identical statistics, with the second run's seeds
// recalled from the archive instead of re-simulated.
func TestTokensimStoreRecall(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-protocol", "tokenb", "-workload", "apache",
		"-procs", "4", "-ops", "120", "-warmup", "120", "-seeds", "1,2", "-store", dir}
	var out1, out2, errw bytes.Buffer
	if err := run(args, &out1, &errw); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("store holds %d entries (err %v), want one per seed", len(entries), err)
	}
	if err := run(args, &out2, &errw); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Errorf("recalled statistics differ from computed:\n%s\nvs\n%s", out1.String(), out2.String())
	}
}

// TestTokensimStoreRejectsExperiment: experiments print fixed
// paper-style tables through the harness, outside the store path.
func TestTokensimStoreRejectsExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-experiment", "table2", "-store", t.TempDir()}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-store") {
		t.Errorf("want -store/-experiment conflict error, got %v", err)
	}
}
