package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListConfig(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list-config"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "tokens per block", "link bandwidth"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("config output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCustomPointSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-protocol", "tokenb", "-topo", "torus", "-workload", "oltp",
		"-procs", "4", "-ops", "200", "-warmup", "200", "-seeds", "1,2"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "tokenb/torus/oltp seed=1") || !strings.Contains(got, "seed=2") {
		t.Fatalf("missing per-seed sections:\n%s", got)
	}
	if !strings.Contains(got, "avg miss latency") {
		t.Fatalf("missing statistics block:\n%s", got)
	}
}

func TestBadFlagValues(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-seeds", "nope"}, &out, &errw); err == nil {
		t.Fatal("bad seed list did not error")
	}
	if err := run([]string{"-experiment", "no-such-experiment"}, &out, &errw); err == nil {
		t.Fatal("unknown experiment did not error")
	}
	if err := run([]string{"-protocol", "bogus", "-ops", "50", "-procs", "4"}, &out, &errw); err == nil {
		t.Fatal("unknown protocol did not error")
	}
	if err := run([]string{"-not-a-flag"}, &out, &errw); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

func TestListComponents(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"protocols:", "tokenb", "snooping", "directory", "hammer", "tokend", "tokenm",
		"policies:",
		"topologies:", "torus", "tree",
		"workloads:", "apache", "oltp", "specjbb", "barnes",
		"experiments:", "table2", "fig4a", "fig4b", "fig5a", "fig5b", "scaling",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
	// -list must not run a simulation.
	if strings.Contains(got, "avg miss latency") {
		t.Errorf("-list unexpectedly simulated:\n%s", got)
	}
}

func TestUnknownNamesReportRegistered(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-protocol", "bogus", "-ops", "50", "-procs", "4"}, &out, &errw)
	if err == nil {
		t.Fatal("unknown protocol did not error")
	}
	if !strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "tokenb") {
		t.Errorf("error does not list registered protocols: %v", err)
	}
	err = run([]string{"-topo", "ring", "-ops", "50", "-procs", "4"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), `unknown topology "ring"`) {
		t.Errorf("unknown topology: %v", err)
	}
	// Snooping needs the ordered tree; pointing it at the torus must
	// fail fast with the valid pairs.
	err = run([]string{"-protocol", "snooping", "-topo", "torus", "-ops", "50", "-procs", "4"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "valid pairs: snooping/tree") {
		t.Errorf("snooping/torus: %v", err)
	}
}
