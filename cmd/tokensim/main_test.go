package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListConfig(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list-config"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "tokens per block", "link bandwidth"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("config output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCustomPointSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-protocol", "tokenb", "-topo", "torus", "-workload", "oltp",
		"-procs", "4", "-ops", "200", "-warmup", "200", "-seeds", "1,2"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "tokenb/torus/oltp seed=1") || !strings.Contains(got, "seed=2") {
		t.Fatalf("missing per-seed sections:\n%s", got)
	}
	if !strings.Contains(got, "avg miss latency") {
		t.Fatalf("missing statistics block:\n%s", got)
	}
}

// TestScalingMaxProcsFlag drives the scaling experiment through the new
// -maxprocs axis: the sweep must stop at the requested size and carry
// the snooping-on-tree column.
func TestScalingMaxProcsFlag(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-experiment", "scaling", "-maxprocs", "8", "-ops", "60", "-warmup", "60"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "snoop B/miss") {
		t.Errorf("scaling output missing the snooping-on-tree column:\n%s", got)
	}
	if !strings.Contains(got, "\n     8 ") {
		t.Errorf("scaling output missing the 8-processor row:\n%s", got)
	}
	if strings.Contains(got, "\n    16 ") {
		t.Errorf("-maxprocs 8 sweep ran past 8 processors:\n%s", got)
	}
}

// TestColdWarmupFlag: a negative -warmup requests an explicitly cold
// cache (zero warmup operations), which a plain 0 cannot express (it
// means "default to 2x ops").
func TestColdWarmupFlag(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-protocol", "tokenb", "-topo", "torus", "-workload", "oltp",
		"-procs", "4", "-ops", "200", "-warmup", "-1", "-seeds", "1"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "avg miss latency") {
		t.Fatalf("cold run produced no statistics:\n%s", out.String())
	}
}

func TestBadFlagValues(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-seeds", "nope"}, &out, &errw); err == nil {
		t.Fatal("bad seed list did not error")
	}
	if err := run([]string{"-experiment", "no-such-experiment"}, &out, &errw); err == nil {
		t.Fatal("unknown experiment did not error")
	}
	if err := run([]string{"-protocol", "bogus", "-ops", "50", "-procs", "4"}, &out, &errw); err == nil {
		t.Fatal("unknown protocol did not error")
	}
	if err := run([]string{"-not-a-flag"}, &out, &errw); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

func TestListComponents(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"protocols:", "tokenb", "snooping[ordered-fabric]", "directory", "hammer", "tokend", "tokenm",
		"dir2[scoped]", "regionfilter[scoped]",
		"policies:",
		"topologies:", "torus", "tree",
		"workloads:", "apache", "oltp", "specjbb", "barnes",
		"experiments:", "table2", "fig4a", "fig4b", "fig5a", "fig5b", "scaling",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
	// -list must not run a simulation.
	if strings.Contains(got, "avg miss latency") {
		t.Errorf("-list unexpectedly simulated:\n%s", got)
	}
}

func TestListMetricsFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list-metrics", "-protocol", "directory"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"cycles_per_txn", "avg_miss_ns", "dir_home_requests"} {
		if !strings.Contains(got, want) {
			t.Errorf("-list-metrics output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "avg miss latency") {
		t.Errorf("-list-metrics unexpectedly simulated:\n%s", got)
	}
	// The schema query goes through the registry: unknown names fail.
	if err := run([]string{"-list-metrics", "-protocol", "bogus"}, &out, &errw); err == nil {
		t.Error("-list-metrics with unknown protocol did not error")
	}
}

func TestColumnsFlag(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-protocol", "tokenb", "-workload", "oltp",
		"-procs", "4", "-ops", "200", "-warmup", "200", "-seeds", "2,5",
		"-columns", "seed,cycles_per_txn,misses,reissues"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 || lines[0] != "seed,cycles_per_txn,misses,reissues" {
		t.Fatalf("-columns output wrong:\n%s", out.String())
	}
	if !strings.HasPrefix(lines[1], "2,") || !strings.HasPrefix(lines[2], "5,") {
		t.Fatalf("-columns rows not in seed order:\n%s", out.String())
	}
	if strings.Contains(out.String(), "avg miss latency") {
		t.Errorf("-columns also printed the statistics block:\n%s", out.String())
	}
}

func TestColumnsFlagConflictsAndTypos(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-experiment", "table2", "-columns", "seed"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-experiment") {
		t.Fatalf("-columns with -experiment: err = %v, want rejection", err)
	}
	err = run([]string{"-protocol", "tokenb", "-columns", "seed,cycles_per_tx"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "cycles_per_tx") {
		t.Fatalf("typoed column: err = %v, want unknown-column rejection", err)
	}
	if err := run([]string{"-protocol", "tokenb", "-columns", ","}, &out, &errw); err == nil {
		t.Fatal("all-blank -columns spec not rejected")
	}
}

func TestUnknownNamesReportRegistered(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-protocol", "bogus", "-ops", "50", "-procs", "4"}, &out, &errw)
	if err == nil {
		t.Fatal("unknown protocol did not error")
	}
	if !strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "tokenb") {
		t.Errorf("error does not list registered protocols: %v", err)
	}
	err = run([]string{"-topo", "ring", "-ops", "50", "-procs", "4"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), `unknown topology "ring"`) {
		t.Errorf("unknown topology: %v", err)
	}
	// Snooping needs the ordered tree; pointing it at the torus must
	// fail fast with the valid pairs.
	err = run([]string{"-protocol", "snooping", "-topo", "torus", "-ops", "50", "-procs", "4"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "valid pairs: snooping/tree") {
		t.Errorf("snooping/torus: %v", err)
	}
}
