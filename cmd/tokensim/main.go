// Command tokensim runs the Token Coherence reproduction's experiments
// and custom simulation points from the command line.
//
// Usage:
//
//	tokensim -experiment table2|fig4a|fig4b|fig5a|fig5b|scaling|all
//	tokensim -protocol tokenb -topo torus -workload oltp -ops 4000
//	tokensim -protocol tokenb -columns seed,cycles_per_txn,reissues
//	tokensim -list
//	tokensim -list-config
//	tokensim -list-metrics
//
// Experiments print the corresponding paper table/figure rows; a custom
// point prints its full statistics, or — with -columns — one CSV row per
// seed selecting any published metric by name (-list-metrics shows the
// schema). With -store DIR the custom point reads and fills the same
// content-addressed result store the sweep command uses: seeds already
// archived print instantly from the store, byte-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/harness"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/msg"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/resultstore"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/stats"
	"tokencoherence/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "tokensim:", err)
		os.Exit(1)
	}
}

// run parses args and executes the requested experiment or custom point,
// writing to stdout. It is the testable body of main.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tokensim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "", "experiment to reproduce: "+strings.Join(harness.Experiments(), ", ")+", or 'all'")
		protocol   = fs.String("protocol", "tokenb", "protocol for a custom run: "+strings.Join(registry.ProtocolNames(), ", "))
		topo       = fs.String("topo", "torus", "interconnect: "+strings.Join(registry.TopologyNames(), ", "))
		wl         = fs.String("workload", "oltp", "workload: "+strings.Join(registry.WorkloadNames(), ", "))
		procs      = fs.Int("procs", 16, "number of processors")
		maxProcs   = fs.Int("maxprocs", 0, "largest system size the scaling experiment sweeps, up to 256 (default 64)")
		ops        = fs.Int("ops", 4000, "measured operations per processor")
		warmup     = fs.Int("warmup", 0, "warmup operations per processor (default 2x ops; negative for a cold-cache run)")
		seeds      = fs.String("seeds", "1", "comma-separated seeds")
		parallel   = fs.Int("parallel", 0, "worker pool size for multi-point runs (0 = one per CPU)")
		islands    = fs.Int("islands", 0, "conservative-parallel islands per point (0 or 1 = serial kernel; results are byte-identical at any count)")
		unlimited  = fs.Bool("unlimited", false, "unlimited link bandwidth")
		perfectDir = fs.Bool("perfect-dir", false, "zero-latency directory lookup")
		listConfig = fs.Bool("list-config", false, "print the Table 1 system parameters and exit")
		list       = fs.Bool("list", false, "list registered protocols, policies, topologies, workloads, probes, and experiments, then exit")
		columns    = fs.String("columns", "", "emit the custom point as CSV with these comma-separated columns (identity fields and metric names) instead of the statistics block")
		listMet    = fs.Bool("list-metrics", false, "list the metric schema of the selected protocol/topo/workload, then exit")
		traceOut   = fs.String("trace", "", "write the custom point's transaction trace to this file as Chrome trace-event JSON (load in chrome://tracing or Perfetto); multiple seeds write one file each with a -seedN suffix")
		traceHops  = fs.Bool("trace-hops", false, "include per-link network hops in -trace output (roughly 100x more events)")
		recorder   = fs.Int("flight-recorder", 0, "flight-recorder ring size in events for the custom point (0 = default 512, negative disables)")
		deadline   = fs.Duration("deadline", 0, "starvation deadline for the custom point's flight recorder: a transaction exceeding this simulated latency dumps the recorder (0 = default 50ms, negative disables)")
		storeDir   = fs.String("store", "", "content-addressed result store for the custom point: archived seeds are recalled instead of re-simulated, computed ones are archived (shared with sweep -store)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		printComponents(stdout)
		return nil
	}
	if *listConfig {
		printConfig(stdout)
		return nil
	}
	if *listMet {
		descs, err := engine.MetricSchema(harness.Point{
			Protocol: *protocol, Topo: *topo, Workload: *wl, Procs: *procs,
		})
		if err != nil {
			return err
		}
		return engine.WriteMetricSchema(stdout, descs)
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		return err
	}

	opt := harness.Options{Ops: *ops, Warmup: *warmup, Procs: *procs, MaxProcs: *maxProcs, Seeds: seedList, Parallel: *parallel, Islands: *islands}
	if *experiment != "" {
		if *columns != "" {
			return fmt.Errorf("-columns applies to custom points and cannot be combined with -experiment (experiments print fixed paper-style tables)")
		}
		if *traceOut != "" || *recorder != 0 || *deadline != 0 {
			return fmt.Errorf("-trace, -flight-recorder, and -deadline apply to custom points and cannot be combined with -experiment")
		}
		if *storeDir != "" {
			return fmt.Errorf("-store applies to custom points and cannot be combined with -experiment (archive experiment grids with sweep -store)")
		}
		names := []string{*experiment}
		if *experiment == "all" {
			names = harness.Experiments()
		}
		for _, name := range names {
			if err := harness.RunExperiment(stdout, name, opt); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
		}
		return nil
	}

	// A custom point is a one-variant plan over the seed axis, executed
	// on the engine's worker pool (results are printed in seed order
	// regardless of parallelism).
	w := *warmup
	switch {
	case w < 0:
		w = engine.NoWarmup // explicitly cold: zero warmup operations
	case w == 0:
		w = 2 * *ops
	}
	point := harness.Point{
		Protocol: *protocol, Topo: *topo, Workload: *wl,
		Unlimited: *unlimited, PerfectDir: *perfectDir,
	}
	// Flight-recorder dumps from parallel seeds go to stderr through one
	// mutex-serialized writer, each dump as a single write.
	errw := trace.NewSyncWriter(stderr)
	size, dl := *recorder, *deadline
	point.Mutate = func(c *machine.Config) {
		c.DebugLog = errw
		if size != 0 {
			c.RecorderSize = size
		}
		if dl != 0 {
			c.StarvationDeadline = sim.Time(dl.Nanoseconds()) * sim.Nanosecond
		}
	}
	plan := engine.Plan{
		Variants: []engine.Variant{{Point: point}},
		Seeds:    opt.Seeds,
		Ops:      *ops,
		Warmup:   w,
		Procs:    *procs,
		Islands:  *islands,
	}
	eng := engine.Engine{Workers: *parallel}
	if *storeDir != "" {
		st, serr := resultstore.Open(*storeDir)
		if serr != nil {
			return serr
		}
		// Version-stamp new entries so `sweep store gc` can prune them
		// once the simulator version moves on.
		st.SetVersion(engine.CodeVersion)
		eng.Store = st
		eng.Reuse = true
	}
	var tracers *jobTracers
	if *traceOut != "" {
		tracers = &jobTracers{hops: *traceHops, m: make(map[int]*trace.Tracer)}
		eng.Attach = tracers.attach
	}

	var results []engine.Result
	if *columns != "" {
		// CSV mode: stream the selected identity/metric columns per seed,
		// rejecting names the point's schema cannot satisfy.
		names := engine.SplitColumnSpec(*columns)
		if len(names) == 0 {
			return fmt.Errorf("-columns %q names no columns", *columns)
		}
		descs, merr := engine.MetricSchema(plan.Variants[0].Point)
		if merr != nil {
			return merr
		}
		if unknown := engine.UnknownColumns(names, descs, nil); len(unknown) > 0 {
			return fmt.Errorf("unknown column(s) %s (identity fields or metric names from -list-metrics)",
				strings.Join(unknown, ", "))
		}
		sink := &engine.CSVSink{W: stdout, Columns: engine.ColumnsByName(names)}
		results, err = eng.Execute(context.Background(), plan, sink)
	} else {
		results, err = eng.Execute(context.Background(), plan)
		// Print the completed seeds up to the first failure even when a
		// later seed errored, as the serial loop used to.
		for _, r := range results {
			if r.Err != nil || r.Run == nil {
				break
			}
			printRun(stdout, fmt.Sprintf("%s/%s/%s seed=%d", *protocol, *topo, *wl, r.Point.Seed), r.Run)
		}
	}
	if tracers != nil {
		if terr := tracers.writeFiles(*traceOut, results); terr != nil && err == nil {
			err = terr
		}
	}
	return err
}

// jobTracers attaches one transaction tracer per seed and writes the
// trace files after the run. Attach runs on the engine's worker
// goroutines, so the map is mutex-protected.
type jobTracers struct {
	hops bool
	mu   sync.Mutex
	m    map[int]*trace.Tracer
}

func (jt *jobTracers) attach(job engine.Job) func(*machine.System) {
	t := trace.NewTracer(trace.TracerConfig{Hops: jt.hops})
	jt.mu.Lock()
	jt.m[job.Index] = t
	jt.mu.Unlock()
	return func(sys *machine.System) { sys.Observe(t.Observer()) }
}

// writeFiles writes one trace per executed job: to base itself for a
// single seed, to base with a -seedN suffix (before the extension) when
// several seeds ran.
func (jt *jobTracers) writeFiles(base string, results []engine.Result) error {
	for _, r := range results {
		jt.mu.Lock()
		t := jt.m[r.Index]
		jt.mu.Unlock()
		if t == nil {
			continue // job never ran
		}
		name := base
		if len(results) > 1 {
			ext := filepath.Ext(base)
			name = strings.TrimSuffix(base, ext) + fmt.Sprintf("-seed%d", r.Point.Seed) + ext
		}
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := t.Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func printRun(w io.Writer, label string, run *stats.Run) {
	m := run.Misses
	fmt.Fprintf(w, "%s\n", label)
	fmt.Fprintf(w, "  elapsed          %v\n", run.Elapsed)
	fmt.Fprintf(w, "  transactions     %d (%.1f cycles/txn)\n", run.Transactions, run.CyclesPerTransaction())
	fmt.Fprintf(w, "  accesses         %d (L1 %.1f%%, L2 %.1f%%, miss %.2f%%)\n",
		run.Accesses,
		pct(run.L1Hits, run.Accesses), pct(run.L2Hits, run.Accesses), pct(m.Issued, run.Accesses))
	fmt.Fprintf(w, "  avg miss latency %v\n", run.AvgMissLatency())
	fmt.Fprintf(w, "  misses           %d: %.2f%% first try, %.2f%% reissued once, %.2f%% more, %.3f%% persistent\n",
		m.Issued, m.Frac(m.NotReissued()), m.Frac(m.ReissuedOnce), m.Frac(m.ReissuedMore), m.Frac(m.Persistent))
	fmt.Fprintf(w, "  traffic          %.1f bytes/miss (requests %.1f, reissue+persistent %.1f, control %.1f, data %.1f)\n",
		run.BytesPerMiss(),
		run.CategoryBytesPerMiss(msg.CatRequest), run.CategoryBytesPerMiss(msg.CatReissue),
		run.CategoryBytesPerMiss(msg.CatControl), run.CategoryBytesPerMiss(msg.CatData))
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// printComponents enumerates the registry-resolved components and the
// harness experiments, so users discover what the flags accept —
// including anything registered beyond the built-ins.
func printComponents(w io.Writer) {
	fmt.Fprintf(w, "protocols:   %s\n", strings.Join(registry.AnnotatedProtocolNames(), ", "))
	fmt.Fprintf(w, "policies:    %s\n", strings.Join(registry.PolicyNames(), ", "))
	fmt.Fprintf(w, "topologies:  %s\n", strings.Join(registry.TopologyNames(), ", "))
	fmt.Fprintf(w, "workloads:   %s\n", strings.Join(registry.WorkloadNames(), ", "))
	fmt.Fprintf(w, "probes:      %s\n", strings.Join(registry.ProbeNames(), ", "))
	fmt.Fprintf(w, "experiments: %s\n", strings.Join(harness.Experiments(), ", "))
}

func printConfig(w io.Writer) {
	c := machine.DefaultConfig()
	fmt.Fprintln(w, "Target system parameters (paper Table 1):")
	fmt.Fprintf(w, "  processors          %d in-order-issue models, MSHRs=%d, max outstanding loads=%d\n", c.Procs, c.MSHRs, c.MaxLoads)
	fmt.Fprintf(w, "  L1 cache            %d kB, %d-way, %v\n", c.L1Size>>10, c.L1Assoc, c.L1Latency)
	fmt.Fprintf(w, "  L2 cache            %d MB, %d-way, %v\n", c.L2Size>>20, c.L2Assoc, c.L2Latency)
	fmt.Fprintf(w, "  block size          %d bytes\n", msg.BlockSize)
	fmt.Fprintf(w, "  DRAM latency        %v\n", c.MemLatency)
	fmt.Fprintf(w, "  controller latency  %v\n", c.CtrlLatency)
	fmt.Fprintf(w, "  directory latency   %v (DRAM full map)\n", c.DirLatency)
	fmt.Fprintf(w, "  link bandwidth      %.1f GB/s\n", c.Net.LinkBandwidth/1e9)
	fmt.Fprintf(w, "  link latency        %v\n", c.Net.LinkLatency)
	fmt.Fprintf(w, "  tokens per block    %d\n", c.TokensPerBlock)
	fmt.Fprintf(w, "  reissue policy      %dx avg miss latency + backoff (base %v), persistent after %d reissues\n",
		c.BackoffFactor, c.BackoffBase, c.MaxReissues)
}
